// oak-rules: operator tooling for rule files.
//
//   rule_tool check  <rules-file>            validate and summarize
//   rule_tool fmt    <rules-file>            parse and re-emit canonically
//   rule_tool apply  <rules-file> <html>     dry-run: apply every rule to an
//                                            HTML file and show the effects
//
// With no arguments, runs a self-demo on a built-in rule file and page.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/modifier.h"
#include "core/rule_parser.h"

using namespace oak;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int cmd_check(const std::string& text) {
  std::vector<core::Rule> rules;
  try {
    rules = core::parse_rules(text);
  } catch (const core::RuleParseError& e) {
    std::fprintf(stderr, "INVALID: %s\n", e.what());
    return 1;
  }
  std::printf("OK: %zu rule(s)\n", rules.size());
  for (const auto& r : rules) {
    std::printf("  \"%s\" type=%s alternatives=%zu ttl=%s scope=%s%s\n",
                r.name.c_str(), core::to_string(r.type).c_str(),
                r.alternatives.size(),
                r.ttl_s == 0 ? "never-expire"
                             : (std::to_string(int(r.ttl_s)) + "s").c_str(),
                r.scope.pattern().c_str(),
                r.is_domain_rule() ? " (domain-wide)" : "");
  }
  return 0;
}

int cmd_fmt(const std::string& text) {
  try {
    std::fputs(core::format_rules(core::parse_rules(text)).c_str(), stdout);
  } catch (const core::RuleParseError& e) {
    std::fprintf(stderr, "INVALID: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_apply(const std::string& rules_text, const std::string& html,
              const std::string& path) {
  auto rules = core::parse_rules(rules_text);
  std::vector<core::AppliedRule> applied;
  for (auto& r : rules) {
    static int next_id = 1;
    if (r.id == 0) r.id = next_id++;
    applied.push_back({&r, 0});
  }
  core::ModifiedPage out = core::apply_rules(html, path, applied);
  std::printf("dry-run on %s (%zu bytes -> %zu bytes)\n", path.c_str(),
              html.size(), out.html.size());
  for (std::size_t i = 0; i < out.records.size(); ++i) {
    std::printf("  rule \"%s\": %zu replacement(s)\n",
                rules[i].name.c_str(), out.records[i].replacements);
  }
  for (const auto& alias : out.aliases) {
    std::printf("  cache alias: %s\n", alias.c_str());
  }
  std::printf("---- rewritten page ----\n%s", out.html.c_str());
  return 0;
}

const char* kDemoRules = R"(
rule "jquery-cdn" {
  type: 2
  default: "<script src=\"http://s1.com/jquery.js\"></script>"
  alt: "<script src=\"http://s2.net/jquery.js\"></script>"
  ttl: 0
  scope: "*"
}
rule "drop-tracker" {
  type: 1
  default: "<img src=\"http://trk.pixel.io/p.gif\"/>"
}
)";

const char* kDemoPage =
    "<html><body>\n"
    "<script src=\"http://s1.com/jquery.js\"></script>\n"
    "<img src=\"http://trk.pixel.io/p.gif\"/>\n"
    "<p>content</p>\n"
    "</body></html>\n";

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::printf("== check ==\n");
    cmd_check(kDemoRules);
    std::printf("\n== apply ==\n");
    return cmd_apply(kDemoRules, kDemoPage, "/index.html");
  }
  const std::string cmd = argv[1];
  if (cmd == "check" && argc == 3) return cmd_check(read_file(argv[2]));
  if (cmd == "fmt" && argc == 3) return cmd_fmt(read_file(argv[2]));
  if (cmd == "apply" && argc == 4) {
    return cmd_apply(read_file(argv[2]), read_file(argv[3]), argv[3]);
  }
  std::fprintf(stderr,
               "usage: rule_tool [check <rules> | fmt <rules> | "
               "apply <rules> <html>]\n");
  return 2;
}
