// What-if analysis on a recorded report trace.
//
// A day of live traffic is recorded with core::recording_handler. The
// operator then replays the same trace into offline Oak instances with
// different configurations — no new measurements needed — and compares how
// many switches each configuration would have made. This is the §6
// "offline auditing tool" turned into a tuning workflow.
//
// Run: build/examples/what_if_replay
#include <cstdio>

#include "browser/browser.h"
#include "core/trace.h"

using namespace oak;

namespace {

struct World {
  std::unique_ptr<page::WebUniverse> web;
  net::ServerId origin = net::kInvalidServer;
  page::Site site;
};

World build_world() {
  World w;
  w.web = std::make_unique<page::WebUniverse>(
      net::NetworkConfig{.seed = 321, .horizon_s = 86400.0});
  net::Network& net = w.web->network();
  w.origin = net.add_server(net::ServerConfig{.name = "origin"});
  w.web->dns().bind("shop.example", net.server(w.origin).addr());

  net::ServerConfig mild;  // borderline: ~2.5x, flickers around 2 MADs
  mild.name = "mild";
  mild.chronic_degradation = 2.5;
  w.web->dns().bind("mild.cdn.net", net.server(net.add_server(mild)).addr());
  net::ServerConfig severe;
  severe.name = "severe";
  severe.chronic_degradation = 12.0;
  w.web->dns().bind("severe.ads.net",
                    net.server(net.add_server(severe)).addr());
  w.web->dns().bind("alt.net",
                    net.server(net.add_server(net::ServerConfig{})).addr());
  for (int i = 0; i < 4; ++i) {
    w.web->dns().bind("p" + std::to_string(i) + ".net",
                      net.server(net.add_server(net::ServerConfig{})).addr());
  }

  page::SiteBuilder b(*w.web, "shop.example", w.origin);
  b.add_direct("mild.cdn.net", "/a.js", html::RefKind::kScript, 14'000,
               page::Category::kCdn);
  b.add_direct("severe.ads.net", "/b.js", html::RefKind::kScript, 14'000,
               page::Category::kAds);
  for (int i = 0; i < 4; ++i) {
    b.add_direct("p" + std::to_string(i) + ".net", "/c.js",
                 html::RefKind::kScript, 14'000, page::Category::kCdn);
  }
  w.site = b.finish();
  w.web->store().replicate("http://mild.cdn.net/a.js", "http://alt.net/a.js");
  w.web->store().replicate("http://severe.ads.net/b.js",
                           "http://alt.net/b.js");
  return w;
}

std::unique_ptr<core::OakServer> make_oak(World& w, double k,
                                          int min_violations) {
  core::OakConfig cfg;
  cfg.detector.k = k;
  cfg.policy.default_min_violations = min_violations;
  auto oak = std::make_unique<core::OakServer>(*w.web, "shop.example", cfg);
  oak->add_rule(core::make_domain_rule("mild", "mild.cdn.net", {"alt.net"}));
  oak->add_rule(
      core::make_domain_rule("severe", "severe.ads.net", {"alt.net"}));
  return oak;
}

}  // namespace

int main() {
  World w = build_world();

  // --- Phase 1: record a day of traffic under the production config.
  auto production = make_oak(w, 2.0, 1);
  core::ReportTrace trace;
  w.web->set_handler("shop.example",
                     core::recording_handler(*production, trace));
  for (int user = 0; user < 8; ++user) {
    net::ClientConfig cc;
    cc.name = "user" + std::to_string(user);
    browser::BrowserConfig bc;
    bc.use_cache = false;
    browser::Browser b(*w.web, w.web->network().add_client(cc), bc);
    for (int load = 0; load < 6; ++load) {
      b.load(w.site.index_url(), user * 300.0 + load * 3600.0);
    }
  }
  std::printf("recorded %zu reports (%zu KB of JSONL)\n\n", trace.size(),
              trace.to_jsonl().size() / 1024);

  // --- Phase 2: replay under candidate configurations.
  std::printf("%-28s %12s %14s\n", "configuration", "activations",
              "deactivations");
  struct Candidate {
    const char* label;
    double k;
    int min_violations;
  };
  for (const Candidate& c : {Candidate{"k=2, switch on 1st (prod)", 2.0, 1},
                             Candidate{"k=2, switch on 3rd", 2.0, 3},
                             Candidate{"k=1 (aggressive)", 1.0, 1},
                             Candidate{"k=4 (conservative)", 4.0, 1}}) {
    auto oak = make_oak(w, c.k, c.min_violations);
    trace.replay_into(*oak);
    std::printf("%-28s %12zu %14zu\n", c.label,
                oak->decision_log().count(core::DecisionType::kActivate),
                oak->decision_log().count(core::DecisionType::kDeactivate));
  }
  std::printf(
      "\nsame traffic, four policies — tuned without touching a single "
      "user.\n"
      "caveat: the trace embeds the production policy's own effects (after\n"
      "it switched a user, later reports show the alternative, not the\n"
      "default) — a policy that waits longer than production sees fewer\n"
      "violations than it would have live. Replay bounds, not simulates,\n"
      "counterfactuals.\n");
  return 0;
}
