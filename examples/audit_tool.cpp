// Offline auditing (paper §6): "examining which rules are being activated by
// clients enables site operators to determine which components of their
// sites are performing poorly, effectively using the performance reports of
// Oak as an offline auditing tool."
//
// This tool loads a slice of the corpus from several vantage points, runs
// violator detection on every report, and prints an operator-facing audit:
// the worst third-party providers ranked by how often and how severely they
// under-perform, with their content category.
//
// Run: build/examples/audit_tool [num_sites] [num_vantage_points]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "page/corpus.h"
#include "workload/survey.h"

using namespace oak;

int main(int argc, char** argv) {
  const std::size_t num_sites =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  const std::size_t num_vps =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;

  page::CorpusConfig cfg;
  cfg.seed = 42;
  cfg.num_sites = num_sites;
  page::Corpus corpus(cfg);
  auto vps = workload::make_vantage_points(corpus.universe().network(),
                                           num_vps);

  workload::SurveyOptions opt;
  opt.start_time = 10 * 3600.0;
  auto loads = workload::run_outlier_survey(corpus, vps, opt);

  struct Tally {
    std::size_t violations = 0;
    double worst_distance = 0;
    std::size_t sites = 0;
  };
  std::map<std::string, Tally> tally;
  std::map<std::string, std::set<std::size_t>> sites_hit;
  std::size_t loads_with_outliers = 0;
  for (const auto& l : loads) {
    if (!l.detection.violators.empty()) ++loads_with_outliers;
    for (const auto& v : l.detection.violators) {
      for (const auto& d : v.domains) {
        if (!corpus.provider_of(d)) continue;  // skip origins
        Tally& t = tally[d];
        t.violations++;
        t.worst_distance = std::max(t.worst_distance, v.severity());
        sites_hit[d].insert(l.site_index);
      }
    }
  }
  for (auto& [d, t] : tally) t.sites = sites_hit[d].size();

  std::printf("audit: %zu sites x %zu vantage points = %zu loads; "
              "%.0f%% of loads saw at least one under-performer\n\n",
              num_sites, num_vps, loads.size(),
              100.0 * double(loads_with_outliers) / double(loads.size()));

  std::vector<std::pair<std::string, Tally>> ranked(tally.begin(),
                                                    tally.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.violations > b.second.violations;
  });

  std::printf("%-32s %-18s %10s %8s %12s\n", "provider domain", "category",
              "violations", "sites", "worst (MADs)");
  for (std::size_t i = 0; i < ranked.size() && i < 15; ++i) {
    const auto& [domain, t] = ranked[i];
    std::printf("%-32s %-18s %10zu %8zu %12.1f\n", domain.c_str(),
                page::to_string(corpus.category_of(domain)).c_str(),
                t.violations, t.sites, t.worst_distance);
  }
  return 0;
}
