// Ad replacement: type-1 (remove) and type-3 (different object) rules with
// sub-rules — the paper's motivating use case of taking control over
// under-performing third-party advertising.
//
// The page carries two ad slots:
//  * a sidebar iframe from a hopeless ad network -> type-1 rule removes it
//    outright when it under-performs, plus a sub-rule that swaps the slot's
//    placeholder class so the layout collapses gracefully;
//  * a banner script from a slow network -> type-3 rule replaces it with a
//    house ad (a *different* object from a different provider).
//
// Run: build/examples/ad_replacement
#include <cstdio>

#include "browser/browser.h"
#include "core/oak_server.h"

using namespace oak;

int main() {
  page::WebUniverse web(net::NetworkConfig{.seed = 99, .horizon_s = 0});
  net::Network& net = web.network();

  net::ServerConfig origin_cfg;
  origin_cfg.name = "origin";
  const net::ServerId origin = net.add_server(origin_cfg);
  web.dns().bind("blog.example.net", net.server(origin).addr());

  net::ServerConfig bad_ads;
  bad_ads.name = "bad-ads";
  bad_ads.chronic_degradation = 15.0;
  web.dns().bind("slots.bad-ads.com",
                 net.server(net.add_server(bad_ads)).addr());
  net::ServerConfig slow_ads;
  slow_ads.name = "slow-ads";
  slow_ads.chronic_degradation = 8.0;
  web.dns().bind("banner.slow-ads.net",
                 net.server(net.add_server(slow_ads)).addr());
  net::ServerConfig house;
  house.name = "house-ads";
  web.dns().bind("house.example.net",
                 net.server(net.add_server(house)).addr());
  for (int i = 0; i < 5; ++i) {
    net::ServerConfig peer;
    peer.name = "peer" + std::to_string(i);
    web.dns().bind("c" + std::to_string(i) + ".content.net",
                   net.server(net.add_server(peer)).addr());
  }

  const std::string sidebar =
      "<iframe src=\"http://slots.bad-ads.com/sidebar\"></iframe>";
  const std::string banner =
      "<script src=\"http://banner.slow-ads.net/banner.js\"></script>";
  const std::string house_ad =
      "<img src=\"http://house.example.net/promo.png\"/>";

  page::SiteBuilder builder(web, "blog.example.net", origin);
  builder.add_markup("<div class=\"sidebar with-ad\">" + sidebar + "</div>");
  builder.add_markup(banner);
  // Several objects per content host: averaging keeps the page's MAD tight
  // enough that the ad providers stand out.
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) {
      builder.add_direct("c" + std::to_string(i) + ".content.net",
                         "/art" + std::to_string(j) + ".png",
                         html::RefKind::kImage, 25'000, page::Category::kCdn);
    }
  }
  page::Site site = builder.finish();
  // Back the ad objects and the house ad.
  page::WebObject obj;
  obj.url = "http://slots.bad-ads.com/sidebar";
  obj.kind = html::RefKind::kFrame;
  obj.size = 30'000;
  web.store().put(obj);
  obj.url = "http://banner.slow-ads.net/banner.js";
  obj.kind = html::RefKind::kScript;
  obj.size = 22'000;
  web.store().put(obj);
  obj.url = "http://house.example.net/promo.png";
  obj.kind = html::RefKind::kImage;
  obj.size = 18'000;
  web.store().put(obj);

  core::OakServer oak(web, "blog.example.net", core::OakConfig{});
  // Type 1: drop the sidebar ad; the sub-rule fixes the layout class.
  core::Rule remove = core::make_removal_rule("drop-sidebar-ad", sidebar);
  remove.sub_rules.push_back({"sidebar with-ad", "sidebar"});
  oak.add_rule(remove);
  // Type 3: swap the banner for a house ad (non-identical object).
  core::Rule swap;
  swap.name = "banner-to-house-ad";
  swap.type = core::RuleType::kAlternativeObject;
  swap.default_text = banner;
  swap.alternatives = {house_ad};
  oak.add_rule(swap);
  oak.install();

  net::ClientConfig cc;
  cc.name = "reader";
  browser::BrowserConfig bcfg;
  bcfg.use_cache = false;
  browser::Browser reader(web, net.add_client(cc), bcfg);

  auto before = reader.load(site.index_url(), 0.0);
  // A couple of loads give Oak reports covering both ad providers (a single
  // noisy sample can let one of them slip under the 2-MAD bar).
  reader.load(site.index_url(), 120.0);
  reader.load(site.index_url(), 240.0);
  auto after = reader.load(site.index_url(), 360.0);
  std::printf("before Oak: %.0f ms, %zu objects\n", before.plt_s * 1000,
              before.report.entries.size());
  std::printf("after Oak : %.0f ms, %zu objects (%.1fx faster)\n",
              after.plt_s * 1000, after.report.entries.size(),
              before.plt_s / after.plt_s);
  std::printf("sidebar iframe removed : %s\n",
              after.page_html.find("slots.bad-ads.com") == std::string::npos
                  ? "yes"
                  : "no");
  std::printf("layout class collapsed : %s\n",
              after.page_html.find("class=\"sidebar\"") != std::string::npos
                  ? "yes"
                  : "no");
  std::printf("banner swapped to house: %s\n",
              after.page_html.find("house.example.net") != std::string::npos
                  ? "yes"
                  : "no");
  std::printf("\ndecision log:\n");
  for (const auto& d : oak.decision_log().entries()) {
    std::printf("  t=%4.0fs %-16s rule=%d violator=%s (%.1f MADs)\n", d.time,
                core::to_string(d.type).c_str(), d.rule_id,
                d.violator_ip.c_str(), d.distance);
  }
  return 0;
}
