// Operator dashboard: the auditing workflow of paper §6 on a live site.
//
// Twenty users browse a site fronted by Oak for a simulated day. The
// operator then pulls a SiteAnalytics audit — which rules fired, for what
// share of users (Fig. 14's individual/common split), which servers were
// blamed — saves a state snapshot, "restarts" the server, and shows the
// restored instance still serving personalized pages.
//
// Run: build/examples/operator_dashboard
#include <cstdio>

#include "browser/browser.h"
#include "core/analytics.h"
#include "core/oak_server.h"

using namespace oak;

int main() {
  page::WebUniverse web(net::NetworkConfig{.seed = 1234,
                                           .horizon_s = 2 * 86400.0});
  net::Network& net = web.network();

  net::ServerConfig origin_cfg;
  origin_cfg.name = "origin";
  const net::ServerId origin = net.add_server(origin_cfg);
  web.dns().bind("portal.example.com", net.server(origin).addr());

  // A provider mix: one chronically sick ad network (a "common" problem),
  // one regional image host (far users only — "individual" problems), and
  // healthy peers.
  net::ServerConfig ads;
  ads.name = "ads";
  ads.chronic_degradation = 9.0;
  web.dns().bind("tags.adnet.io", net.server(net.add_server(ads)).addr());
  net::ServerConfig regional;
  regional.name = "regional-images";
  regional.region = net::Region::kAsia;  // not globally distributed
  web.dns().bind("img.asia-host.cn",
                 net.server(net.add_server(regional)).addr());
  for (int i = 0; i < 4; ++i) {
    net::ServerConfig peer;
    peer.name = "peer" + std::to_string(i);
    peer.global_pops = true;
    web.dns().bind("s" + std::to_string(i) + ".peer.net",
                   net.server(net.add_server(peer)).addr());
  }
  net::ServerConfig alt;
  alt.name = "alt";
  alt.global_pops = true;
  web.dns().bind("alt.mirror.net", net.server(net.add_server(alt)).addr());

  page::SiteBuilder builder(web, "portal.example.com", origin);
  builder.add_direct("tags.adnet.io", "/tag.js", html::RefKind::kScript,
                     15'000, page::Category::kAds);
  builder.add_direct("img.asia-host.cn", "/hero.jpg", html::RefKind::kImage,
                     40'000, page::Category::kImages);
  for (int i = 0; i < 4; ++i) {
    builder.add_direct("s" + std::to_string(i) + ".peer.net", "/w.js",
                       html::RefKind::kScript, 20'000, page::Category::kCdn);
  }
  page::Site site = builder.finish();
  web.store().replicate("http://tags.adnet.io/tag.js",
                        "http://alt.mirror.net/tag.js");
  web.store().replicate("http://img.asia-host.cn/hero.jpg",
                        "http://alt.mirror.net/hero.jpg");

  core::OakConfig oak_cfg;
  // Hold back 25% of users as an A/B control so the audit can report Oak's
  // measured lift from the same telemetry.
  oak_cfg.policy.holdback_fraction = 0.25;
  core::OakServer oak(web, "portal.example.com", oak_cfg);
  oak.add_rule(core::make_domain_rule("ad-tags", "tags.adnet.io",
                                      {"alt.mirror.net"}));
  oak.add_rule(core::make_domain_rule("hero-images", "img.asia-host.cn",
                                      {"alt.mirror.net"}));
  oak.install();

  // Twenty users, region mix like the paper's vantage points, browsing over
  // a day.
  std::vector<std::unique_ptr<browser::Browser>> users;
  for (int u = 0; u < 20; ++u) {
    net::ClientConfig cc;
    cc.name = "user" + std::to_string(u);
    cc.region = u < 10 ? net::Region::kNorthAmerica
                       : (u < 15 ? net::Region::kEurope : net::Region::kAsia);
    browser::BrowserConfig bc;
    bc.use_cache = false;
    users.push_back(std::make_unique<browser::Browser>(
        web, net.add_client(cc), bc));
  }
  for (int round = 0; round < 5; ++round) {
    for (std::size_t u = 0; u < users.size(); ++u) {
      users[u]->load(site.index_url(), round * 7200.0 + double(u) * 60.0);
    }
  }

  // --- The audit.
  core::SiteAnalytics audit(oak);
  std::printf("%s\n", audit.to_report().c_str());
  std::printf("common rules (>18%% of users): %zu, individual: %zu\n",
              audit.common_rules().size(), audit.individual_rules().size());

  // --- Restart drill: snapshot, new instance, verify continuity.
  const std::string snapshot = oak.export_state().dump();
  std::printf("\nstate snapshot: %zu bytes\n", snapshot.size());
  core::OakServer restarted(web, "portal.example.com", oak_cfg);
  restarted.add_rule(core::make_domain_rule("ad-tags", "tags.adnet.io",
                                            {"alt.mirror.net"}));
  restarted.add_rule(core::make_domain_rule("hero-images", "img.asia-host.cn",
                                            {"alt.mirror.net"}));
  restarted.import_state(util::Json::parse(snapshot));
  restarted.install();

  // user0 may be in the holdback group; find a treated user.
  std::size_t treated_user = 0;
  for (std::size_t u = 0; u < users.size(); ++u) {
    const std::string uid = "u" + std::to_string(u + 1);
    if (!oak_cfg.policy.in_holdback(uid)) {
      treated_user = u;
      break;
    }
  }
  auto res = users[treated_user]->load(site.index_url(), 86400.0);
  const bool still_personalized =
      res.page_html.find("alt.mirror.net") != std::string::npos;
  std::printf("after restart, a treated user's page is still personalized: %s\n",
              still_personalized ? "yes" : "no");
  return still_personalized ? 0 : 1;
}
