// Multi-CDN failover: rules loaded from the text DSL, multiple alternatives
// per rule, client-aware selection, and the §4.2.3 history mechanism
// advancing past a bad first alternative.
//
// A news site serves its static assets from "cdn-a". The operator has
// contracted two backups: cdn-b (which, unknown to them, has a blind spot
// for European clients) and cdn-c (healthy everywhere). A European user
// should end up on cdn-c: Oak first switches to cdn-b, observes it is also
// a violator *and worse than the original violation*, and advances.
//
// Run: build/examples/multi_cdn_failover
#include <cstdio>

#include "browser/browser.h"
#include "core/oak_server.h"
#include "core/rule_parser.h"

using namespace oak;

int main() {
  page::WebUniverse web(net::NetworkConfig{.seed = 7, .horizon_s = 0});
  net::Network& net = web.network();

  net::ServerConfig origin_cfg;
  origin_cfg.name = "origin";
  origin_cfg.region = net::Region::kEurope;
  const net::ServerId origin = net.add_server(origin_cfg);
  web.dns().bind("news.example.org", net.server(origin).addr());

  // cdn-a: the default, chronically overloaded.
  net::ServerConfig a;
  a.name = "cdn-a";
  a.region = net::Region::kEurope;
  a.chronic_degradation = 12.0;
  web.dns().bind("assets.cdn-a.net", net.server(net.add_server(a)).addr());
  // cdn-b: fine in general, but its European PoP is broken.
  net::ServerConfig b;
  b.name = "cdn-b";
  b.region = net::Region::kNorthAmerica;
  b.global_pops = true;
  b.blind_spot_regions = {net::Region::kEurope};
  b.blind_spot_penalty = 20.0;
  web.dns().bind("assets.cdn-b.net", net.server(net.add_server(b)).addr());
  // cdn-c: healthy.
  net::ServerConfig c;
  c.name = "cdn-c";
  c.region = net::Region::kEurope;
  c.global_pops = true;
  web.dns().bind("assets.cdn-c.net", net.server(net.add_server(c)).addr());

  // Peers for a meaningful in-page population.
  for (int i = 0; i < 4; ++i) {
    net::ServerConfig peer;
    peer.name = "peer" + std::to_string(i);
    peer.region = net::Region::kEurope;
    web.dns().bind("p" + std::to_string(i) + ".peers.net",
                   net.server(net.add_server(peer)).addr());
  }

  page::SiteBuilder builder(web, "news.example.org", origin);
  builder.add_direct("assets.cdn-a.net", "/bundle.js", html::RefKind::kScript,
                     45'000, page::Category::kCdn);
  builder.add_direct("assets.cdn-a.net", "/style.css",
                     html::RefKind::kStylesheet, 12'000, page::Category::kCdn);
  for (int i = 0; i < 4; ++i) {
    builder.add_direct("p" + std::to_string(i) + ".peers.net", "/w.js",
                       html::RefKind::kScript, 20'000, page::Category::kCdn);
  }
  page::Site site = builder.finish();
  for (const char* path : {"/bundle.js", "/style.css"}) {
    web.store().replicate(std::string("http://assets.cdn-a.net") + path,
                          std::string("http://assets.cdn-b.net") + path);
    web.store().replicate(std::string("http://assets.cdn-a.net") + path,
                          std::string("http://assets.cdn-c.net") + path);
  }

  // Rules come from the operator's config file, in the rule DSL. A
  // domain-wide type-2 rule with a linear alternative list.
  const std::string rule_file = R"(
    # Static asset CDN with two contracted backups.
    rule "asset-cdn" {
      type: 2
      default: "assets.cdn-a.net"
      alt: "assets.cdn-b.net"
      alt: "assets.cdn-c.net"
      ttl: 0        # never expires
      scope: "*"    # site-wide
    }
  )";
  core::OakServer oak(web, "news.example.org", core::OakConfig{});
  oak.add_rules(core::parse_rules(rule_file));
  oak.install();

  net::ClientConfig cc;
  cc.name = "eu-user";
  cc.region = net::Region::kEurope;
  browser::BrowserConfig bcfg;
  bcfg.use_cache = false;
  browser::Browser user(web, net.add_client(cc), bcfg);

  const char* expect[] = {"assets.cdn-a.net", "assets.cdn-b.net",
                          "assets.cdn-c.net"};
  for (int load = 0; load < 4; ++load) {
    auto res = user.load(site.index_url(), load * 600.0);
    std::string serving = "?";
    for (const auto& e : res.report.entries) {
      if (e.url.find("/bundle.js") != std::string::npos) serving = e.host;
    }
    std::printf("load %d: %.0f ms, bundle.js served by %s\n", load + 1,
                res.plt_s * 1000, serving.c_str());
    if (load < 3 && serving != expect[load]) {
      std::printf("  (expected %s at this step)\n", expect[load]);
    }
  }

  std::printf("\nOak's decision log:\n");
  for (const auto& d : oak.decision_log().entries()) {
    if (d.type == core::DecisionType::kServeModified) continue;
    std::printf("  t=%5.0fs %-20s alt#%zu violator=%s (%.1f MADs)\n", d.time,
                core::to_string(d.type).c_str(), d.alternative_index,
                d.violator_ip.c_str(), d.distance);
  }
  return 0;
}
