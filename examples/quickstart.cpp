// Quickstart: the smallest complete Oak deployment.
//
//  1. Build a simulated web: one site, two interchangeable CDNs (one of
//     which is chronically slow), a few healthy providers.
//  2. Put an OakServer in front of the site with a single type-2 rule.
//  3. Load the page twice from one user and watch Oak switch the slow
//     provider out after the first performance report.
//
// Run: build/examples/quickstart
#include <cstdio>

#include "browser/browser.h"
#include "core/oak_server.h"

using namespace oak;

int main() {
  // --- The web universe: network, DNS, objects.
  page::WebUniverse web(net::NetworkConfig{.seed = 2024, .horizon_s = 0});
  net::Network& net = web.network();

  net::ServerConfig origin_cfg;
  origin_cfg.name = "origin";
  const net::ServerId origin = net.add_server(origin_cfg);
  web.dns().bind("shop.example.com", net.server(origin).addr());

  // A chronically slow CDN and a healthy alternative serving identical
  // content.
  net::ServerConfig slow_cfg;
  slow_cfg.name = "slow-cdn";
  slow_cfg.chronic_degradation = 10.0;
  web.dns().bind("cdn.slow.net", net.server(net.add_server(slow_cfg)).addr());
  net::ServerConfig fast_cfg;
  fast_cfg.name = "fast-cdn";
  web.dns().bind("cdn.fast.net", net.server(net.add_server(fast_cfg)).addr());

  // Three more healthy providers so the MAD population is meaningful.
  for (int i = 0; i < 3; ++i) {
    net::ServerConfig cfg;
    cfg.name = "peer" + std::to_string(i);
    web.dns().bind("static" + std::to_string(i) + ".peer.net",
                   net.server(net.add_server(cfg)).addr());
  }

  // --- The page: a product page pulling from all of the above.
  page::SiteBuilder builder(web, "shop.example.com", origin);
  builder.add_direct("cdn.slow.net", "/app.js", html::RefKind::kScript,
                     40'000, page::Category::kCdn);
  for (int i = 0; i < 3; ++i) {
    builder.add_direct("static" + std::to_string(i) + ".peer.net",
                       "/lib.js", html::RefKind::kScript, 30'000,
                       page::Category::kCdn);
  }
  page::Site site = builder.finish();
  // The alternative CDN carries an identical copy (type-2 prerequisite).
  web.store().replicate("http://cdn.slow.net/app.js",
                        "http://cdn.fast.net/app.js");

  // --- Oak in front of the site, with one operator rule.
  core::OakServer oak(web, "shop.example.com", core::OakConfig{});
  oak.add_rule(core::make_source_rule(
      "app-js-cdn",
      "<script src=\"http://cdn.slow.net/app.js\"></script>",
      {"<script src=\"http://cdn.fast.net/app.js\"></script>"}));
  oak.install();

  // --- One user, two page loads.
  net::ClientConfig client_cfg;
  client_cfg.name = "alice";
  browser::BrowserConfig bcfg;
  bcfg.use_cache = false;
  browser::Browser alice(web, net.add_client(client_cfg), bcfg);

  auto first = alice.load(site.index_url(), /*now=*/0.0);
  std::printf("first load : %.0f ms  (report: %zu objects, %zu bytes)\n",
              first.plt_s * 1000, first.report.entries.size(),
              first.report_bytes);

  const core::UserProfile* profile = oak.profile(first.report.user_id);
  std::printf("after report: %zu rule(s) active for %s\n",
              profile->active.size(), first.report.user_id.c_str());
  for (const auto& d : oak.decision_log().entries()) {
    std::printf("  decision: %s rule=%d violator=%s distance=%.1f MADs\n",
                core::to_string(d.type).c_str(), d.rule_id,
                d.violator_ip.c_str(), d.distance);
  }

  auto second = alice.load(site.index_url(), /*now=*/300.0);
  std::printf("second load: %.0f ms  (%.1fx faster)\n", second.plt_s * 1000,
              first.plt_s / second.plt_s);
  const bool switched =
      second.page_html.find("cdn.fast.net") != std::string::npos;
  std::printf("page now references: %s\n",
              switched ? "cdn.fast.net (rewritten by Oak)" : "cdn.slow.net");
  return switched ? 0 : 1;
}
