# Empty compiler generated dependencies file for oak_browser.
# This may be replaced when dependencies are built.
