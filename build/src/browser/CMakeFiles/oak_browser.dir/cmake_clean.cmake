file(REMOVE_RECURSE
  "CMakeFiles/oak_browser.dir/browser.cc.o"
  "CMakeFiles/oak_browser.dir/browser.cc.o.d"
  "CMakeFiles/oak_browser.dir/report.cc.o"
  "CMakeFiles/oak_browser.dir/report.cc.o.d"
  "liboak_browser.a"
  "liboak_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oak_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
