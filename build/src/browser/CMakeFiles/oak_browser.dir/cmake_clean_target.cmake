file(REMOVE_RECURSE
  "liboak_browser.a"
)
