file(REMOVE_RECURSE
  "CMakeFiles/oak_html.dir/build.cc.o"
  "CMakeFiles/oak_html.dir/build.cc.o.d"
  "CMakeFiles/oak_html.dir/extract.cc.o"
  "CMakeFiles/oak_html.dir/extract.cc.o.d"
  "CMakeFiles/oak_html.dir/tokenizer.cc.o"
  "CMakeFiles/oak_html.dir/tokenizer.cc.o.d"
  "liboak_html.a"
  "liboak_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oak_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
