# Empty dependencies file for oak_html.
# This may be replaced when dependencies are built.
