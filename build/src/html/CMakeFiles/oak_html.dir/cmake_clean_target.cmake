file(REMOVE_RECURSE
  "liboak_html.a"
)
