file(REMOVE_RECURSE
  "CMakeFiles/oak_core.dir/analytics.cc.o"
  "CMakeFiles/oak_core.dir/analytics.cc.o.d"
  "CMakeFiles/oak_core.dir/decision_log.cc.o"
  "CMakeFiles/oak_core.dir/decision_log.cc.o.d"
  "CMakeFiles/oak_core.dir/fleet.cc.o"
  "CMakeFiles/oak_core.dir/fleet.cc.o.d"
  "CMakeFiles/oak_core.dir/grouping.cc.o"
  "CMakeFiles/oak_core.dir/grouping.cc.o.d"
  "CMakeFiles/oak_core.dir/matcher.cc.o"
  "CMakeFiles/oak_core.dir/matcher.cc.o.d"
  "CMakeFiles/oak_core.dir/modifier.cc.o"
  "CMakeFiles/oak_core.dir/modifier.cc.o.d"
  "CMakeFiles/oak_core.dir/oak_server.cc.o"
  "CMakeFiles/oak_core.dir/oak_server.cc.o.d"
  "CMakeFiles/oak_core.dir/persistence.cc.o"
  "CMakeFiles/oak_core.dir/persistence.cc.o.d"
  "CMakeFiles/oak_core.dir/policy.cc.o"
  "CMakeFiles/oak_core.dir/policy.cc.o.d"
  "CMakeFiles/oak_core.dir/rule.cc.o"
  "CMakeFiles/oak_core.dir/rule.cc.o.d"
  "CMakeFiles/oak_core.dir/rule_parser.cc.o"
  "CMakeFiles/oak_core.dir/rule_parser.cc.o.d"
  "CMakeFiles/oak_core.dir/trace.cc.o"
  "CMakeFiles/oak_core.dir/trace.cc.o.d"
  "CMakeFiles/oak_core.dir/violator.cc.o"
  "CMakeFiles/oak_core.dir/violator.cc.o.d"
  "liboak_core.a"
  "liboak_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oak_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
