file(REMOVE_RECURSE
  "liboak_core.a"
)
