# Empty dependencies file for oak_core.
# This may be replaced when dependencies are built.
