
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytics.cc" "src/core/CMakeFiles/oak_core.dir/analytics.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/analytics.cc.o.d"
  "/root/repo/src/core/decision_log.cc" "src/core/CMakeFiles/oak_core.dir/decision_log.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/decision_log.cc.o.d"
  "/root/repo/src/core/fleet.cc" "src/core/CMakeFiles/oak_core.dir/fleet.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/fleet.cc.o.d"
  "/root/repo/src/core/grouping.cc" "src/core/CMakeFiles/oak_core.dir/grouping.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/grouping.cc.o.d"
  "/root/repo/src/core/matcher.cc" "src/core/CMakeFiles/oak_core.dir/matcher.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/matcher.cc.o.d"
  "/root/repo/src/core/modifier.cc" "src/core/CMakeFiles/oak_core.dir/modifier.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/modifier.cc.o.d"
  "/root/repo/src/core/oak_server.cc" "src/core/CMakeFiles/oak_core.dir/oak_server.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/oak_server.cc.o.d"
  "/root/repo/src/core/persistence.cc" "src/core/CMakeFiles/oak_core.dir/persistence.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/persistence.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/oak_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/policy.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/core/CMakeFiles/oak_core.dir/rule.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/rule.cc.o.d"
  "/root/repo/src/core/rule_parser.cc" "src/core/CMakeFiles/oak_core.dir/rule_parser.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/rule_parser.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/oak_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/trace.cc.o.d"
  "/root/repo/src/core/violator.cc" "src/core/CMakeFiles/oak_core.dir/violator.cc.o" "gcc" "src/core/CMakeFiles/oak_core.dir/violator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oak_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oak_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/oak_http.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/oak_html.dir/DependInfo.cmake"
  "/root/repo/build/src/page/CMakeFiles/oak_page.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/oak_browser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
