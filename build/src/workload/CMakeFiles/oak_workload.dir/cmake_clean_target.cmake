file(REMOVE_RECURSE
  "liboak_workload.a"
)
