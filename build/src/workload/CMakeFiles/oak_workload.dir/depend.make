# Empty dependencies file for oak_workload.
# This may be replaced when dependencies are built.
