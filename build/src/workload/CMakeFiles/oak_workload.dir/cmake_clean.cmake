file(REMOVE_RECURSE
  "CMakeFiles/oak_workload.dir/benchmark_site.cc.o"
  "CMakeFiles/oak_workload.dir/benchmark_site.cc.o.d"
  "CMakeFiles/oak_workload.dir/existing_experiment.cc.o"
  "CMakeFiles/oak_workload.dir/existing_experiment.cc.o.d"
  "CMakeFiles/oak_workload.dir/existing_sites.cc.o"
  "CMakeFiles/oak_workload.dir/existing_sites.cc.o.d"
  "CMakeFiles/oak_workload.dir/harness.cc.o"
  "CMakeFiles/oak_workload.dir/harness.cc.o.d"
  "CMakeFiles/oak_workload.dir/sensitivity.cc.o"
  "CMakeFiles/oak_workload.dir/sensitivity.cc.o.d"
  "CMakeFiles/oak_workload.dir/survey.cc.o"
  "CMakeFiles/oak_workload.dir/survey.cc.o.d"
  "CMakeFiles/oak_workload.dir/vantage.cc.o"
  "CMakeFiles/oak_workload.dir/vantage.cc.o.d"
  "liboak_workload.a"
  "liboak_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oak_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
