file(REMOVE_RECURSE
  "CMakeFiles/oak_page.dir/corpus.cc.o"
  "CMakeFiles/oak_page.dir/corpus.cc.o.d"
  "CMakeFiles/oak_page.dir/inline_eval.cc.o"
  "CMakeFiles/oak_page.dir/inline_eval.cc.o.d"
  "CMakeFiles/oak_page.dir/object.cc.o"
  "CMakeFiles/oak_page.dir/object.cc.o.d"
  "CMakeFiles/oak_page.dir/site.cc.o"
  "CMakeFiles/oak_page.dir/site.cc.o.d"
  "liboak_page.a"
  "liboak_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oak_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
