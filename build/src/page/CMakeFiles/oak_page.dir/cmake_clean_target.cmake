file(REMOVE_RECURSE
  "liboak_page.a"
)
