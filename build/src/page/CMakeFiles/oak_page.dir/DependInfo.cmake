
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/page/corpus.cc" "src/page/CMakeFiles/oak_page.dir/corpus.cc.o" "gcc" "src/page/CMakeFiles/oak_page.dir/corpus.cc.o.d"
  "/root/repo/src/page/inline_eval.cc" "src/page/CMakeFiles/oak_page.dir/inline_eval.cc.o" "gcc" "src/page/CMakeFiles/oak_page.dir/inline_eval.cc.o.d"
  "/root/repo/src/page/object.cc" "src/page/CMakeFiles/oak_page.dir/object.cc.o" "gcc" "src/page/CMakeFiles/oak_page.dir/object.cc.o.d"
  "/root/repo/src/page/site.cc" "src/page/CMakeFiles/oak_page.dir/site.cc.o" "gcc" "src/page/CMakeFiles/oak_page.dir/site.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oak_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oak_net.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/oak_html.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
