# Empty compiler generated dependencies file for oak_page.
# This may be replaced when dependencies are built.
