file(REMOVE_RECURSE
  "liboak_http.a"
)
