# Empty compiler generated dependencies file for oak_http.
# This may be replaced when dependencies are built.
