file(REMOVE_RECURSE
  "CMakeFiles/oak_http.dir/cache.cc.o"
  "CMakeFiles/oak_http.dir/cache.cc.o.d"
  "CMakeFiles/oak_http.dir/cookies.cc.o"
  "CMakeFiles/oak_http.dir/cookies.cc.o.d"
  "CMakeFiles/oak_http.dir/headers.cc.o"
  "CMakeFiles/oak_http.dir/headers.cc.o.d"
  "CMakeFiles/oak_http.dir/message.cc.o"
  "CMakeFiles/oak_http.dir/message.cc.o.d"
  "liboak_http.a"
  "liboak_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oak_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
