file(REMOVE_RECURSE
  "liboak_net.a"
)
