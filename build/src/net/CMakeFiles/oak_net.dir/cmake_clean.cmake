file(REMOVE_RECURSE
  "CMakeFiles/oak_net.dir/address.cc.o"
  "CMakeFiles/oak_net.dir/address.cc.o.d"
  "CMakeFiles/oak_net.dir/dns.cc.o"
  "CMakeFiles/oak_net.dir/dns.cc.o.d"
  "CMakeFiles/oak_net.dir/geo.cc.o"
  "CMakeFiles/oak_net.dir/geo.cc.o.d"
  "CMakeFiles/oak_net.dir/network.cc.o"
  "CMakeFiles/oak_net.dir/network.cc.o.d"
  "CMakeFiles/oak_net.dir/server.cc.o"
  "CMakeFiles/oak_net.dir/server.cc.o.d"
  "liboak_net.a"
  "liboak_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oak_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
