# Empty dependencies file for oak_net.
# This may be replaced when dependencies are built.
