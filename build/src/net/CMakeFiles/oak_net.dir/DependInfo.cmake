
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cc" "src/net/CMakeFiles/oak_net.dir/address.cc.o" "gcc" "src/net/CMakeFiles/oak_net.dir/address.cc.o.d"
  "/root/repo/src/net/dns.cc" "src/net/CMakeFiles/oak_net.dir/dns.cc.o" "gcc" "src/net/CMakeFiles/oak_net.dir/dns.cc.o.d"
  "/root/repo/src/net/geo.cc" "src/net/CMakeFiles/oak_net.dir/geo.cc.o" "gcc" "src/net/CMakeFiles/oak_net.dir/geo.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/oak_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/oak_net.dir/network.cc.o.d"
  "/root/repo/src/net/server.cc" "src/net/CMakeFiles/oak_net.dir/server.cc.o" "gcc" "src/net/CMakeFiles/oak_net.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oak_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
