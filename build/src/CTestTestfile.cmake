# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("http")
subdirs("html")
subdirs("page")
subdirs("browser")
subdirs("core")
subdirs("workload")
