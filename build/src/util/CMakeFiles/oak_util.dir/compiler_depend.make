# Empty compiler generated dependencies file for oak_util.
# This may be replaced when dependencies are built.
