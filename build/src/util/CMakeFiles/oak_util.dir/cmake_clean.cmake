file(REMOVE_RECURSE
  "CMakeFiles/oak_util.dir/cdf.cc.o"
  "CMakeFiles/oak_util.dir/cdf.cc.o.d"
  "CMakeFiles/oak_util.dir/json.cc.o"
  "CMakeFiles/oak_util.dir/json.cc.o.d"
  "CMakeFiles/oak_util.dir/rng.cc.o"
  "CMakeFiles/oak_util.dir/rng.cc.o.d"
  "CMakeFiles/oak_util.dir/scope.cc.o"
  "CMakeFiles/oak_util.dir/scope.cc.o.d"
  "CMakeFiles/oak_util.dir/stats.cc.o"
  "CMakeFiles/oak_util.dir/stats.cc.o.d"
  "CMakeFiles/oak_util.dir/strings.cc.o"
  "CMakeFiles/oak_util.dir/strings.cc.o.d"
  "CMakeFiles/oak_util.dir/url.cc.o"
  "CMakeFiles/oak_util.dir/url.cc.o.d"
  "liboak_util.a"
  "liboak_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oak_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
