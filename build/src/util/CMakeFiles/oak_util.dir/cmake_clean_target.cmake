file(REMOVE_RECURSE
  "liboak_util.a"
)
