# Empty compiler generated dependencies file for ablate_report_mechanism.
# This may be replaced when dependencies are built.
