file(REMOVE_RECURSE
  "CMakeFiles/ablate_report_mechanism.dir/ablate_report_mechanism.cc.o"
  "CMakeFiles/ablate_report_mechanism.dir/ablate_report_mechanism.cc.o.d"
  "ablate_report_mechanism"
  "ablate_report_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_report_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
