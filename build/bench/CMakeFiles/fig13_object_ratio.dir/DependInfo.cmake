
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_object_ratio.cc" "bench/CMakeFiles/fig13_object_ratio.dir/fig13_object_ratio.cc.o" "gcc" "bench/CMakeFiles/fig13_object_ratio.dir/fig13_object_ratio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/oak_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/oak_core.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/oak_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/page/CMakeFiles/oak_page.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/oak_html.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/oak_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oak_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oak_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
