# Empty dependencies file for fig13_object_ratio.
# This may be replaced when dependencies are built.
