# Empty compiler generated dependencies file for fig09_sensitivity.
# This may be replaced when dependencies are built.
