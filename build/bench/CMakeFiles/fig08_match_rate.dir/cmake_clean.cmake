file(REMOVE_RECURSE
  "CMakeFiles/fig08_match_rate.dir/fig08_match_rate.cc.o"
  "CMakeFiles/fig08_match_rate.dir/fig08_match_rate.cc.o.d"
  "fig08_match_rate"
  "fig08_match_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_match_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
