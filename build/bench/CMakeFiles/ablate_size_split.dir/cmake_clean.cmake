file(REMOVE_RECURSE
  "CMakeFiles/ablate_size_split.dir/ablate_size_split.cc.o"
  "CMakeFiles/ablate_size_split.dir/ablate_size_split.cc.o.d"
  "ablate_size_split"
  "ablate_size_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_size_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
