file(REMOVE_RECURSE
  "CMakeFiles/fig03_outlier_persistence.dir/fig03_outlier_persistence.cc.o"
  "CMakeFiles/fig03_outlier_persistence.dir/fig03_outlier_persistence.cc.o.d"
  "fig03_outlier_persistence"
  "fig03_outlier_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_outlier_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
