# Empty dependencies file for fig03_outlier_persistence.
# This may be replaced when dependencies are built.
