# Empty dependencies file for fig11_plt_timeline.
# This may be replaced when dependencies are built.
