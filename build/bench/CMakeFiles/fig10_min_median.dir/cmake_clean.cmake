file(REMOVE_RECURSE
  "CMakeFiles/fig10_min_median.dir/fig10_min_median.cc.o"
  "CMakeFiles/fig10_min_median.dir/fig10_min_median.cc.o.d"
  "fig10_min_median"
  "fig10_min_median.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_min_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
