# Empty dependencies file for fig10_min_median.
# This may be replaced when dependencies are built.
