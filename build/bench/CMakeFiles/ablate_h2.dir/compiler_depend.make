# Empty compiler generated dependencies file for ablate_h2.
# This may be replaced when dependencies are built.
