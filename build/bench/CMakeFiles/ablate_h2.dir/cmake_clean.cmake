file(REMOVE_RECURSE
  "CMakeFiles/ablate_h2.dir/ablate_h2.cc.o"
  "CMakeFiles/ablate_h2.dir/ablate_h2.cc.o.d"
  "ablate_h2"
  "ablate_h2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_h2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
