file(REMOVE_RECURSE
  "CMakeFiles/ablate_detection_mode.dir/ablate_detection_mode.cc.o"
  "CMakeFiles/ablate_detection_mode.dir/ablate_detection_mode.cc.o.d"
  "ablate_detection_mode"
  "ablate_detection_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_detection_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
