# Empty dependencies file for ablate_detection_mode.
# This may be replaced when dependencies are built.
