# Empty dependencies file for fig14_activation_cdf.
# This may be replaced when dependencies are built.
