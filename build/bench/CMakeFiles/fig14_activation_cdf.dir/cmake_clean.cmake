file(REMOVE_RECURSE
  "CMakeFiles/fig14_activation_cdf.dir/fig14_activation_cdf.cc.o"
  "CMakeFiles/fig14_activation_cdf.dir/fig14_activation_cdf.cc.o.d"
  "fig14_activation_cdf"
  "fig14_activation_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_activation_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
