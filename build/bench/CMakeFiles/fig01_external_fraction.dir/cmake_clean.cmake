file(REMOVE_RECURSE
  "CMakeFiles/fig01_external_fraction.dir/fig01_external_fraction.cc.o"
  "CMakeFiles/fig01_external_fraction.dir/fig01_external_fraction.cc.o.d"
  "fig01_external_fraction"
  "fig01_external_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_external_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
