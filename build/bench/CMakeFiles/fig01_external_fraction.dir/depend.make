# Empty dependencies file for fig01_external_fraction.
# This may be replaced when dependencies are built.
