file(REMOVE_RECURSE
  "CMakeFiles/ablate_history.dir/ablate_history.cc.o"
  "CMakeFiles/ablate_history.dir/ablate_history.cc.o.d"
  "ablate_history"
  "ablate_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
