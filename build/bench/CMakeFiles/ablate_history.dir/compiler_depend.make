# Empty compiler generated dependencies file for ablate_history.
# This may be replaced when dependencies are built.
