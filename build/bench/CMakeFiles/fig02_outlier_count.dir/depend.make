# Empty dependencies file for fig02_outlier_count.
# This may be replaced when dependencies are built.
