file(REMOVE_RECURSE
  "CMakeFiles/fig02_outlier_count.dir/fig02_outlier_count.cc.o"
  "CMakeFiles/fig02_outlier_count.dir/fig02_outlier_count.cc.o.d"
  "fig02_outlier_count"
  "fig02_outlier_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_outlier_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
