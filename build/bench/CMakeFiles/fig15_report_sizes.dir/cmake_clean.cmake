file(REMOVE_RECURSE
  "CMakeFiles/fig15_report_sizes.dir/fig15_report_sizes.cc.o"
  "CMakeFiles/fig15_report_sizes.dir/fig15_report_sizes.cc.o.d"
  "fig15_report_sizes"
  "fig15_report_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_report_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
