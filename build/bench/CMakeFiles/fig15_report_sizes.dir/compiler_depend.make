# Empty compiler generated dependencies file for fig15_report_sizes.
# This may be replaced when dependencies are built.
