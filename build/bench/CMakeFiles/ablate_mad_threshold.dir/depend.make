# Empty dependencies file for ablate_mad_threshold.
# This may be replaced when dependencies are built.
