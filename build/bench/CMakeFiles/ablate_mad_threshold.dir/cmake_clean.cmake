file(REMOVE_RECURSE
  "CMakeFiles/ablate_mad_threshold.dir/ablate_mad_threshold.cc.o"
  "CMakeFiles/ablate_mad_threshold.dir/ablate_mad_threshold.cc.o.d"
  "ablate_mad_threshold"
  "ablate_mad_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mad_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
