file(REMOVE_RECURSE
  "CMakeFiles/fig12_correct_choices.dir/fig12_correct_choices.cc.o"
  "CMakeFiles/fig12_correct_choices.dir/fig12_correct_choices.cc.o.d"
  "fig12_correct_choices"
  "fig12_correct_choices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_correct_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
