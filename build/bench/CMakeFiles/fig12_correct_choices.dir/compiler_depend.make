# Empty compiler generated dependencies file for fig12_correct_choices.
# This may be replaced when dependencies are built.
