# Empty compiler generated dependencies file for holdback_test.
# This may be replaced when dependencies are built.
