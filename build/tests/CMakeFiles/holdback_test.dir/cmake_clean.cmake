file(REMOVE_RECURSE
  "CMakeFiles/holdback_test.dir/holdback_test.cc.o"
  "CMakeFiles/holdback_test.dir/holdback_test.cc.o.d"
  "holdback_test"
  "holdback_test.pdb"
  "holdback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holdback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
