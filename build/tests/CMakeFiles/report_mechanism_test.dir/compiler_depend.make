# Empty compiler generated dependencies file for report_mechanism_test.
# This may be replaced when dependencies are built.
