file(REMOVE_RECURSE
  "CMakeFiles/report_mechanism_test.dir/report_mechanism_test.cc.o"
  "CMakeFiles/report_mechanism_test.dir/report_mechanism_test.cc.o.d"
  "report_mechanism_test"
  "report_mechanism_test.pdb"
  "report_mechanism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_mechanism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
