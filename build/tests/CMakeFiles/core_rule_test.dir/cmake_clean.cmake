file(REMOVE_RECURSE
  "CMakeFiles/core_rule_test.dir/core_rule_test.cc.o"
  "CMakeFiles/core_rule_test.dir/core_rule_test.cc.o.d"
  "core_rule_test"
  "core_rule_test.pdb"
  "core_rule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
