# Empty compiler generated dependencies file for core_rule_test.
# This may be replaced when dependencies are built.
