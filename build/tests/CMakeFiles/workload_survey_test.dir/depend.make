# Empty dependencies file for workload_survey_test.
# This may be replaced when dependencies are built.
