file(REMOVE_RECURSE
  "CMakeFiles/workload_survey_test.dir/workload_survey_test.cc.o"
  "CMakeFiles/workload_survey_test.dir/workload_survey_test.cc.o.d"
  "workload_survey_test"
  "workload_survey_test.pdb"
  "workload_survey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_survey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
