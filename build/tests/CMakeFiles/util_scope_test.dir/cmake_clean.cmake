file(REMOVE_RECURSE
  "CMakeFiles/util_scope_test.dir/util_scope_test.cc.o"
  "CMakeFiles/util_scope_test.dir/util_scope_test.cc.o.d"
  "util_scope_test"
  "util_scope_test.pdb"
  "util_scope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_scope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
