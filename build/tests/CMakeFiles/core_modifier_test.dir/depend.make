# Empty dependencies file for core_modifier_test.
# This may be replaced when dependencies are built.
