file(REMOVE_RECURSE
  "CMakeFiles/core_modifier_test.dir/core_modifier_test.cc.o"
  "CMakeFiles/core_modifier_test.dir/core_modifier_test.cc.o.d"
  "core_modifier_test"
  "core_modifier_test.pdb"
  "core_modifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_modifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
