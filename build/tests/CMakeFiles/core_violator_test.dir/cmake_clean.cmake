file(REMOVE_RECURSE
  "CMakeFiles/core_violator_test.dir/core_violator_test.cc.o"
  "CMakeFiles/core_violator_test.dir/core_violator_test.cc.o.d"
  "core_violator_test"
  "core_violator_test.pdb"
  "core_violator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_violator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
