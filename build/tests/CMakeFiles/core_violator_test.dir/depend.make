# Empty dependencies file for core_violator_test.
# This may be replaced when dependencies are built.
