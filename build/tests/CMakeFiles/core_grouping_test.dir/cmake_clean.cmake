file(REMOVE_RECURSE
  "CMakeFiles/core_grouping_test.dir/core_grouping_test.cc.o"
  "CMakeFiles/core_grouping_test.dir/core_grouping_test.cc.o.d"
  "core_grouping_test"
  "core_grouping_test.pdb"
  "core_grouping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
