file(REMOVE_RECURSE
  "CMakeFiles/multi_page_test.dir/multi_page_test.cc.o"
  "CMakeFiles/multi_page_test.dir/multi_page_test.cc.o.d"
  "multi_page_test"
  "multi_page_test.pdb"
  "multi_page_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
