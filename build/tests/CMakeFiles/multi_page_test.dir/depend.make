# Empty dependencies file for multi_page_test.
# This may be replaced when dependencies are built.
