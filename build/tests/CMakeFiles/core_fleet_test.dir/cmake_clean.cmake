file(REMOVE_RECURSE
  "CMakeFiles/core_fleet_test.dir/core_fleet_test.cc.o"
  "CMakeFiles/core_fleet_test.dir/core_fleet_test.cc.o.d"
  "core_fleet_test"
  "core_fleet_test.pdb"
  "core_fleet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fleet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
