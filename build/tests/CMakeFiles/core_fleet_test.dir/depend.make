# Empty dependencies file for core_fleet_test.
# This may be replaced when dependencies are built.
