file(REMOVE_RECURSE
  "CMakeFiles/concurrent_server_test.dir/concurrent_server_test.cc.o"
  "CMakeFiles/concurrent_server_test.dir/concurrent_server_test.cc.o.d"
  "concurrent_server_test"
  "concurrent_server_test.pdb"
  "concurrent_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
