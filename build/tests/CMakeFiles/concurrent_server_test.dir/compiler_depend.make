# Empty compiler generated dependencies file for concurrent_server_test.
# This may be replaced when dependencies are built.
