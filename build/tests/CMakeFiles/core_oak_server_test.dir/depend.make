# Empty dependencies file for core_oak_server_test.
# This may be replaced when dependencies are built.
