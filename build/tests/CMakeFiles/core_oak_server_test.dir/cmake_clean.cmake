file(REMOVE_RECURSE
  "CMakeFiles/core_oak_server_test.dir/core_oak_server_test.cc.o"
  "CMakeFiles/core_oak_server_test.dir/core_oak_server_test.cc.o.d"
  "core_oak_server_test"
  "core_oak_server_test.pdb"
  "core_oak_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_oak_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
