# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_cdn_failover "/root/repo/build/examples/multi_cdn_failover")
set_tests_properties(example_multi_cdn_failover PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ad_replacement "/root/repo/build/examples/ad_replacement")
set_tests_properties(example_ad_replacement PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_audit_tool "/root/repo/build/examples/audit_tool")
set_tests_properties(example_audit_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_operator_dashboard "/root/repo/build/examples/operator_dashboard")
set_tests_properties(example_operator_dashboard PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rule_tool "/root/repo/build/examples/rule_tool")
set_tests_properties(example_rule_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_what_if_replay "/root/repo/build/examples/what_if_replay")
set_tests_properties(example_what_if_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
