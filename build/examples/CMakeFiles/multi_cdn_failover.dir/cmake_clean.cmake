file(REMOVE_RECURSE
  "CMakeFiles/multi_cdn_failover.dir/multi_cdn_failover.cpp.o"
  "CMakeFiles/multi_cdn_failover.dir/multi_cdn_failover.cpp.o.d"
  "multi_cdn_failover"
  "multi_cdn_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cdn_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
