# Empty compiler generated dependencies file for multi_cdn_failover.
# This may be replaced when dependencies are built.
