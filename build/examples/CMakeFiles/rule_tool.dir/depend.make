# Empty dependencies file for rule_tool.
# This may be replaced when dependencies are built.
