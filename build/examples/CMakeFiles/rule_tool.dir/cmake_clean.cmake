file(REMOVE_RECURSE
  "CMakeFiles/rule_tool.dir/rule_tool.cpp.o"
  "CMakeFiles/rule_tool.dir/rule_tool.cpp.o.d"
  "rule_tool"
  "rule_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
