# Empty compiler generated dependencies file for ad_replacement.
# This may be replaced when dependencies are built.
