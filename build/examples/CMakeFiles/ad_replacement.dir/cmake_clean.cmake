file(REMOVE_RECURSE
  "CMakeFiles/ad_replacement.dir/ad_replacement.cpp.o"
  "CMakeFiles/ad_replacement.dir/ad_replacement.cpp.o.d"
  "ad_replacement"
  "ad_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
