# Empty dependencies file for audit_tool.
# This may be replaced when dependencies are built.
