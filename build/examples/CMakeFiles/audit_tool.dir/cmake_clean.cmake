file(REMOVE_RECURSE
  "CMakeFiles/audit_tool.dir/audit_tool.cpp.o"
  "CMakeFiles/audit_tool.dir/audit_tool.cpp.o.d"
  "audit_tool"
  "audit_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
