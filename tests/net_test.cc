#include <gtest/gtest.h>

#include "net/address.h"
#include "net/dns.h"
#include "net/geo.h"
#include "net/network.h"
#include "net/server.h"

namespace oak::net {
namespace {

TEST(Geo, RttSymmetricAndLocalSmallest) {
  for (Region a : all_regions()) {
    for (Region b : all_regions()) {
      EXPECT_DOUBLE_EQ(base_rtt(a, b), base_rtt(b, a));
      if (a != b) {
        EXPECT_LT(base_rtt(a, a), base_rtt(a, b));
      }
    }
    EXPECT_GT(base_rtt(a, a), 0.0);
  }
}

TEST(Geo, Codes) {
  EXPECT_EQ(region_code(Region::kNorthAmerica), "NA");
  EXPECT_EQ(region_code(Region::kAsia), "AS");
  EXPECT_EQ(to_string(Region::kEurope), "Europe");
}

TEST(IpAddr, FormatAndParseRoundTrip) {
  IpAddr a(10, 1, 2, 3);
  EXPECT_EQ(a.to_string(), "10.1.2.3");
  EXPECT_EQ(IpAddr::parse("10.1.2.3"), a);
  EXPECT_EQ(IpAddr::parse("255.255.255.255")->to_string(), "255.255.255.255");
}

TEST(IpAddr, ParseRejections) {
  EXPECT_FALSE(IpAddr::parse(""));
  EXPECT_FALSE(IpAddr::parse("1.2.3"));
  EXPECT_FALSE(IpAddr::parse("1.2.3.4.5"));
  EXPECT_FALSE(IpAddr::parse("256.1.1.1"));
  EXPECT_FALSE(IpAddr::parse("a.b.c.d"));
}

TEST(IpAddr, Subnets) {
  IpAddr base(24, 0, 0, 0);
  EXPECT_TRUE(IpAddr(24, 5, 6, 7).in_subnet(base, 8));
  EXPECT_FALSE(IpAddr(25, 0, 0, 1).in_subnet(base, 8));
  EXPECT_TRUE(IpAddr(25, 0, 0, 1).in_subnet(base, 0));
  EXPECT_TRUE(base.in_subnet(base, 32));
  EXPECT_FALSE(IpAddr(24, 0, 0, 1).in_subnet(base, 32));
}

TEST(Dns, BindResolveReverse) {
  Dns dns;
  dns.bind("a.com", IpAddr(1, 2, 3, 4));
  dns.bind("b.com", IpAddr(1, 2, 3, 4));
  dns.bind("c.com", IpAddr(9, 9, 9, 9));
  EXPECT_EQ(dns.resolve("a.com"), IpAddr(1, 2, 3, 4));
  EXPECT_FALSE(dns.resolve("missing.com"));
  // Grouping "keeping track of all related domain names": two hosts on one
  // front-end IP reverse-resolve together.
  EXPECT_EQ(dns.reverse(IpAddr(1, 2, 3, 4)),
            (std::vector<std::string>{"a.com", "b.com"}));
  EXPECT_TRUE(dns.has("c.com"));
  dns.unbind("c.com");
  EXPECT_FALSE(dns.has("c.com"));
}

TEST(Dns, RebindReplaces) {
  Dns dns;
  dns.bind("a.com", IpAddr(1, 1, 1, 1));
  dns.bind("a.com", IpAddr(2, 2, 2, 2));
  EXPECT_EQ(dns.resolve("a.com"), IpAddr(2, 2, 2, 2));
  EXPECT_TRUE(dns.reverse(IpAddr(1, 1, 1, 1)).empty());
}

TEST(Diurnal, ShapePeaksMiddayZeroAtNight) {
  EXPECT_DOUBLE_EQ(diurnal_shape(14.0), 1.0);
  EXPECT_EQ(diurnal_shape(2.0), 0.0);
  EXPECT_GT(diurnal_shape(10.0), 0.0);
  EXPECT_LT(diurnal_shape(10.0), 1.0);
}

TEST(Diurnal, LocalHourUsesRegionOffset) {
  // t = 0 is UTC midnight; NA local is in the evening of the prior day,
  // Asia is morning.
  const double na = local_hour(Region::kNorthAmerica, 0.0);
  const double as = local_hour(Region::kAsia, 0.0);
  EXPECT_NEAR(na, 18.0, 1e-9);
  EXPECT_NEAR(as, 8.0, 1e-9);
}

ServerConfig basic_server(Region r = Region::kNorthAmerica) {
  ServerConfig cfg;
  cfg.name = "s";
  cfg.region = r;
  cfg.base_processing_s = 0.020;
  cfg.bandwidth_bps = 100e6;
  cfg.diurnal_amplitude = 1.0;
  return cfg;
}

TEST(Server, DiurnalLoadVaries) {
  Server s(0, IpAddr(10, 0, 0, 1), basic_server(), /*seed=*/1,
           /*horizon=*/86400.0);
  // NA local 14:00 == UTC 20:00.
  const double midday = 20 * 3600.0;
  const double night = 8 * 3600.0;  // NA local 02:00
  EXPECT_GT(s.load(midday), s.load(night));
  EXPECT_DOUBLE_EQ(s.load(night), 0.0);
}

TEST(Server, InjectedDelayAddsToProcessing) {
  Server s(0, IpAddr(10, 0, 0, 1), basic_server(), 1, 0.0);
  const double base = s.processing_delay(0.0, Region::kNorthAmerica);
  s.set_injected_delay(0.75);
  EXPECT_NEAR(s.processing_delay(0.0, Region::kNorthAmerica), base + 0.75,
              1e-12);
}

TEST(Server, ChronicDegradationScalesBoth) {
  ServerConfig cfg = basic_server();
  cfg.diurnal_amplitude = 0.0;
  Server healthy(0, IpAddr(10, 0, 0, 1), cfg, 1, 0.0);
  cfg.chronic_degradation = 4.0;
  Server sick(1, IpAddr(10, 0, 0, 2), cfg, 1, 0.0);
  EXPECT_NEAR(sick.processing_delay(0, Region::kNorthAmerica),
              4.0 * healthy.processing_delay(0, Region::kNorthAmerica), 1e-12);
  EXPECT_NEAR(sick.effective_bandwidth_bps(0),
              healthy.effective_bandwidth_bps(0) / 4.0, 1e-3);
}

TEST(Server, BlindSpotOnlyHitsListedRegions) {
  ServerConfig cfg = basic_server();
  cfg.diurnal_amplitude = 0.0;
  cfg.blind_spot_regions = {Region::kAsia};
  cfg.blind_spot_penalty = 5.0;
  Server s(0, IpAddr(10, 0, 0, 1), cfg, 1, 0.0);
  EXPECT_DOUBLE_EQ(s.rtt_multiplier(Region::kAsia), 5.0);
  EXPECT_DOUBLE_EQ(s.rtt_multiplier(Region::kEurope), 1.0);
  EXPECT_GT(s.processing_delay(0, Region::kAsia),
            s.processing_delay(0, Region::kEurope));
}

TEST(Server, CongestionScheduleDeterministicAndBounded) {
  ServerConfig cfg = basic_server();
  cfg.congestion_rate_per_day = 2.0;
  cfg.congestion_mean_duration_s = 3600.0;
  const double horizon = 5 * 86400.0;
  Server a(3, IpAddr(10, 0, 0, 3), cfg, 99, horizon);
  Server b(3, IpAddr(10, 0, 0, 3), cfg, 99, horizon);
  ASSERT_EQ(a.congestion_schedule().size(), b.congestion_schedule().size());
  ASSERT_FALSE(a.congestion_schedule().empty());
  for (std::size_t i = 0; i < a.congestion_schedule().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.congestion_schedule()[i].start,
                     b.congestion_schedule()[i].start);
    EXPECT_LT(a.congestion_schedule()[i].start, horizon);
    EXPECT_GT(a.congestion_schedule()[i].end,
              a.congestion_schedule()[i].start);
  }
  // Load is elevated inside an event.
  const auto& ev = a.congestion_schedule().front();
  EXPECT_TRUE(a.congested((ev.start + ev.end) / 2));
  EXPECT_GE(a.load((ev.start + ev.end) / 2), ev.severity);
}

TEST(Network, AddressesAreUniqueAndResolvable) {
  Network net;
  ServerId s1 = net.add_server(basic_server());
  ServerId s2 = net.add_server(basic_server());
  EXPECT_NE(net.server(s1).addr(), net.server(s2).addr());
  EXPECT_EQ(net.server_by_ip(net.server(s2).addr()), s2);
  EXPECT_EQ(net.server_by_ip(IpAddr(9, 9, 9, 9)), kInvalidServer);
}

TEST(Network, ClientBlocksByRegion) {
  Network net;
  ClientConfig na;
  na.region = Region::kNorthAmerica;
  ClientConfig eu;
  eu.region = Region::kEurope;
  ClientId c1 = net.add_client(na);
  ClientId c2 = net.add_client(eu);
  EXPECT_TRUE(net.client(c1).addr.in_subnet(IpAddr(24, 0, 0, 0), 8));
  EXPECT_TRUE(net.client(c2).addr.in_subnet(IpAddr(81, 0, 0, 0), 8));
}

TEST(Network, PathRttGrowsWithDistance) {
  NetworkConfig cfg;
  cfg.seed = 5;
  Network net(cfg);
  ServerId s = net.add_server(basic_server(Region::kNorthAmerica));
  ClientConfig na, as;
  na.region = Region::kNorthAmerica;
  as.region = Region::kAsia;
  ClientId cn = net.add_client(na);
  ClientId ca = net.add_client(as);
  EXPECT_LT(net.path_rtt(cn, s), net.path_rtt(ca, s));
}

TEST(Network, FetchComponentsBehave) {
  NetworkConfig cfg;
  cfg.seed = 5;
  Network net(cfg);
  ServerId s = net.add_server(basic_server());
  ClientConfig cc;
  cc.region = Region::kNorthAmerica;
  cc.jitter_sigma = 0.0;  // deterministic components
  ClientId c = net.add_client(cc);
  util::Rng rng(1);
  FetchTiming cold = net.fetch(c, s, 10'000, 0.0, rng, true, true);
  EXPECT_GT(cold.dns, 0.0);
  EXPECT_GT(cold.connect, 0.0);
  EXPECT_GT(cold.ttfb, 0.0);
  EXPECT_GT(cold.download, 0.0);
  FetchTiming warm = net.fetch(c, s, 10'000, 0.0, rng, false, false);
  EXPECT_EQ(warm.dns, 0.0);
  EXPECT_EQ(warm.connect, 0.0);
  EXPECT_LT(warm.total(), cold.total());
}

TEST(Network, LargerObjectsTakeLonger) {
  NetworkConfig cfg;
  cfg.seed = 6;
  Network net(cfg);
  ServerId s = net.add_server(basic_server());
  ClientConfig cc;
  cc.jitter_sigma = 0.0;
  ClientId c = net.add_client(cc);
  util::Rng rng(1);
  FetchTiming small = net.fetch(c, s, 10'000, 0, rng, false, false);
  FetchTiming large = net.fetch(c, s, 1'000'000, 0, rng, false, false);
  EXPECT_LT(small.download, large.download);
}

TEST(Network, InjectedDelayRaisesTtfb) {
  NetworkConfig cfg;
  Network net(cfg);
  ServerId s = net.add_server(basic_server());
  ClientConfig cc;
  cc.jitter_sigma = 0.0;
  ClientId c = net.add_client(cc);
  // Identical rng state for both fetches isolates the injected delay from
  // per-request service-time noise.
  util::Rng rng_before(1), rng_after(1);
  FetchTiming before = net.fetch(c, s, 1000, 0, rng_before, false, false);
  net.server(s).set_injected_delay(2.0);
  FetchTiming after = net.fetch(c, s, 1000, 0, rng_after, false, false);
  EXPECT_NEAR(after.ttfb - before.ttfb, 2.0, 1e-9);
}

}  // namespace
}  // namespace oak::net
