// Compile-time guarantee that the umbrella header stays self-contained and
// the advertised entry points exist.
#include "oak.h"

#include <gtest/gtest.h>

TEST(Umbrella, PublicApiIsReachable) {
  oak::page::WebUniverse web(oak::net::NetworkConfig{.seed = 1});
  oak::net::ServerId origin = web.network().add_server({});
  web.dns().bind("umbrella.test", web.network().server(origin).addr());

  oak::core::OakServer server(web, "umbrella.test", {});
  server.add_rules(oak::core::parse_rules(
      R"(rule "r" { type: 2 default: "a.net" alt: "b.net" })"));
  EXPECT_EQ(server.rules().size(), 1u);

  oak::core::SiteAnalytics audit(server);
  EXPECT_EQ(audit.summary().rules, 1u);

  oak::core::ReportTrace trace;
  EXPECT_TRUE(trace.empty());

  oak::browser::Browser user(web, web.network().add_client({}));
  EXPECT_EQ(user.client(), 0u);

  oak::util::Cdf cdf;
  cdf.add(1.0);
  EXPECT_EQ(cdf.size(), 1u);
}
