#include <gtest/gtest.h>

#include "util/cdf.h"
#include "workload/harness.h"

namespace oak::workload {
namespace {

std::string capture(const std::function<void()>& fn) {
  ::testing::internal::CaptureStdout();
  fn();
  return ::testing::internal::GetCapturedStdout();
}

TEST(Harness, BannerFormat) {
  std::string out = capture([] { print_banner("Figure 1", "a title"); });
  EXPECT_NE(out.find("==== Figure 1: a title ===="), std::string::npos);
}

TEST(Harness, CdfOutputHasHeaderRowsAndSummary) {
  util::Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  std::string out = capture([&] { print_cdf("series-x", cdf, 10); });
  EXPECT_NE(out.find("# CDF: series-x (n=100)"), std::string::npos);
  EXPECT_NE(out.find("# value\tfraction"), std::string::npos);
  EXPECT_NE(out.find("median=50.5"), std::string::npos);
  // Final row reaches fraction 1.0000.
  EXPECT_NE(out.find("\t1.0000"), std::string::npos);
}

TEST(Harness, SeriesOutput) {
  std::string out = capture([] {
    print_series("s", {{1.0, 2.0}, {3.0, 4.5}}, "x", "y");
  });
  EXPECT_NE(out.find("# series: s"), std::string::npos);
  EXPECT_NE(out.find("# x\ty"), std::string::npos);
  EXPECT_NE(out.find("1\t2"), std::string::npos);
  EXPECT_NE(out.find("3\t4.5"), std::string::npos);
}

TEST(Harness, TableAlignsColumns) {
  std::string out = capture([] {
    print_table("t", {"Col", "LongerHeader"},
                {{"aaaa", "b"}, {"c", "dddd"}});
  });
  EXPECT_NE(out.find("# table: t"), std::string::npos);
  // Header and rows present; column two begins at the same offset in each
  // printed line (padded by the widest cell).
  EXPECT_NE(out.find("Col   LongerHeader"), std::string::npos);
  EXPECT_NE(out.find("aaaa  b"), std::string::npos);
  EXPECT_NE(out.find("c     dddd"), std::string::npos);
}

TEST(Harness, StatLine) {
  std::string out = capture([] { print_stat("answer", 42.0); });
  EXPECT_EQ(out, "# stat: answer = 42\n");
}

}  // namespace
}  // namespace oak::workload
