#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/json.h"
#include "util/json_stream.h"

namespace oak::util {
namespace {

// Flatten a document into a readable event trace for whole-document checks.
std::string trace(std::string_view doc) {
  JsonScanner s(doc);
  std::string out;
  for (;;) {
    switch (s.next()) {
      case JsonEvent::kBeginObject: out += "{"; break;
      case JsonEvent::kEndObject: out += "}"; break;
      case JsonEvent::kBeginArray: out += "["; break;
      case JsonEvent::kEndArray: out += "]"; break;
      case JsonEvent::kKey:
        out += "K(" + std::string(s.text()) + ")";
        break;
      case JsonEvent::kString:
        out += "S(" + std::string(s.text()) + ")";
        break;
      case JsonEvent::kNumber:
        out += "N(" + std::to_string(s.number()) + ")";
        break;
      case JsonEvent::kBool: out += s.boolean() ? "T" : "F"; break;
      case JsonEvent::kNull: out += "0"; break;
      case JsonEvent::kEnd: return out;
    }
  }
}

TEST(JsonScanner, ScalarDocuments) {
  EXPECT_EQ(trace("42"), "N(42.000000)");
  EXPECT_EQ(trace("\"hi\""), "S(hi)");
  EXPECT_EQ(trace("true"), "T");
  EXPECT_EQ(trace("false"), "F");
  EXPECT_EQ(trace("null"), "0");
}

TEST(JsonScanner, NestedDocument) {
  EXPECT_EQ(trace(R"({"a":[1,{"b":"c"}],"d":null})"),
            "{K(a)[N(1.000000){K(b)S(c)}]K(d)0}");
}

TEST(JsonScanner, EmptyContainers) {
  EXPECT_EQ(trace("{}"), "{}");
  EXPECT_EQ(trace("[]"), "[]");
  EXPECT_EQ(trace(R"({"a":{},"b":[]})"), "{K(a){}K(b)[]}");
}

TEST(JsonScanner, EndIsSticky) {
  JsonScanner s("1");
  EXPECT_EQ(s.next(), JsonEvent::kNumber);
  EXPECT_EQ(s.next(), JsonEvent::kEnd);
  EXPECT_EQ(s.next(), JsonEvent::kEnd);
}

TEST(JsonScanner, UnescapedStringsAreViewsIntoInput) {
  const std::string doc = R"({"key":"value"})";
  JsonScanner s(doc);
  ASSERT_EQ(s.next(), JsonEvent::kBeginObject);
  ASSERT_EQ(s.next(), JsonEvent::kKey);
  EXPECT_FALSE(s.string_escaped());
  EXPECT_GE(s.text().data(), doc.data());
  EXPECT_LT(s.text().data(), doc.data() + doc.size());
  ASSERT_EQ(s.next(), JsonEvent::kString);
  EXPECT_FALSE(s.string_escaped());
  EXPECT_EQ(s.text(), "value");
  EXPECT_GE(s.text().data(), doc.data());
  EXPECT_LT(s.text().data(), doc.data() + doc.size());
}

TEST(JsonScanner, EscapedStringsDecodeIntoScratch) {
  const std::string doc = R"(["a\nb","tab\tend","q\"q","u\u0041\u00e9"])";
  JsonScanner s(doc);
  ASSERT_EQ(s.next(), JsonEvent::kBeginArray);
  ASSERT_EQ(s.next(), JsonEvent::kString);
  EXPECT_TRUE(s.string_escaped());
  EXPECT_EQ(s.text(), "a\nb");
  // Decoded payload must NOT alias the input buffer.
  EXPECT_TRUE(s.text().data() < doc.data() ||
              s.text().data() >= doc.data() + doc.size());
  ASSERT_EQ(s.next(), JsonEvent::kString);
  EXPECT_EQ(s.text(), "tab\tend");
  ASSERT_EQ(s.next(), JsonEvent::kString);
  EXPECT_EQ(s.text(), "q\"q");
  ASSERT_EQ(s.next(), JsonEvent::kString);
  EXPECT_EQ(s.text(), "uA\xc3\xa9");  // \u0041='A', \u00e9=é in UTF-8
  ASSERT_EQ(s.next(), JsonEvent::kEndArray);
  ASSERT_EQ(s.next(), JsonEvent::kEnd);
}

TEST(JsonScanner, SurrogatePairDecodes) {
  JsonScanner s(R"("\ud83d\ude00")");  // U+1F600
  ASSERT_EQ(s.next(), JsonEvent::kString);
  EXPECT_EQ(s.text(), "\xf0\x9f\x98\x80");
}

TEST(JsonScanner, SkipValueSkipsWholeSubtrees) {
  JsonScanner s(R"({"skip":[{"deep":[1,2,{"x":null}]},"s"],"keep":7})");
  ASSERT_EQ(s.next(), JsonEvent::kBeginObject);
  ASSERT_EQ(s.next(), JsonEvent::kKey);
  EXPECT_EQ(s.text(), "skip");
  s.skip_value();
  ASSERT_EQ(s.next(), JsonEvent::kKey);
  EXPECT_EQ(s.text(), "keep");
  ASSERT_EQ(s.next(), JsonEvent::kNumber);
  EXPECT_EQ(s.number(), 7.0);
  ASSERT_EQ(s.next(), JsonEvent::kEndObject);
  ASSERT_EQ(s.next(), JsonEvent::kEnd);
}

TEST(JsonScanner, SkipValueValidates) {
  JsonScanner s(R"({"skip":[1,)");
  ASSERT_EQ(s.next(), JsonEvent::kBeginObject);
  ASSERT_EQ(s.next(), JsonEvent::kKey);
  EXPECT_THROW(s.skip_value(), JsonError);
}

TEST(JsonScanner, DepthTracksNesting) {
  JsonScanner s(R"([[{"a":[]}]])");
  EXPECT_EQ(s.depth(), 0u);
  s.next();  // [
  EXPECT_EQ(s.depth(), 1u);
  s.next();  // [
  s.next();  // {
  EXPECT_EQ(s.depth(), 3u);
  s.next();  // key
  s.next();  // [
  EXPECT_EQ(s.depth(), 4u);
  s.next();  // ]
  s.next();  // }
  EXPECT_EQ(s.depth(), 2u);
}

// --- Hardening limits, mirrored between scanner and DOM parser.

std::string nested_arrays(std::size_t depth) {
  return std::string(depth, '[') + "1" + std::string(depth, ']');
}

TEST(JsonScanner, DepthLimitMatchesDomParser) {
  const std::string ok = nested_arrays(kMaxJsonDepth);
  const std::string too_deep = nested_arrays(kMaxJsonDepth + 1);
  EXPECT_NO_THROW(trace(ok));
  EXPECT_NO_THROW(Json::parse(ok));
  EXPECT_THROW(trace(too_deep), JsonError);
  EXPECT_THROW(Json::parse(too_deep), JsonError);
}

TEST(JsonScanner, RejectsNonFiniteNumbersLikeDomParser) {
  for (const char* doc : {"1e999", "-1e999", "[1e400]"}) {
    EXPECT_THROW(trace(doc), JsonError) << doc;
    EXPECT_THROW(Json::parse(doc), JsonError) << doc;
  }
}

TEST(JsonScanner, ErrorsMirrorDomParser) {
  // Every malformed document the DOM parser rejects must be rejected by the
  // scanner too (and vice versa for these accept cases).
  const char* bad[] = {
      "",       "{",       "[",         "{\"a\"}",  "{\"a\":}",
      "[1,]",   "{,}",     "tru",       "nul",      "\"unterminated",
      "\"\\q\"", "\"\\u12\"", "[1 2]",  "{\"a\":1,}", "1 trailing",
      "[]]",    "\x01",
  };
  for (const char* doc : bad) {
    EXPECT_THROW(trace(doc), JsonError) << doc;
    EXPECT_THROW(Json::parse(doc), JsonError) << doc;
  }
  const char* good[] = {
      "  1  ", "[1+2]",  // from_chars prefix parse quirk, kept bit-compatible
      R"({"a":1,"a":2})", "-0.5e2", "\"\\u0000\"",
      // The DOM parser is lenient about lone/dangling surrogates; the
      // scanner mirrors that too — agreement, not strictness, is the
      // contract.
      "\"\\ud800\"", "\"\\ud83d\\u0041\"",
  };
  for (const char* doc : good) {
    EXPECT_NO_THROW(trace(doc)) << doc;
    EXPECT_NO_THROW(Json::parse(doc)) << doc;
  }
}

// --- JsonSink push API.

class Collector : public JsonSink {
 public:
  void on_begin_object() override { events.push_back("{"); }
  void on_end_object() override { events.push_back("}"); }
  void on_begin_array() override { events.push_back("["); }
  void on_end_array() override { events.push_back("]"); }
  void on_key(std::string_view k) override {
    events.push_back("K:" + std::string(k));
  }
  void on_string(std::string_view v) override {
    events.push_back("S:" + std::string(v));
  }
  void on_number(double d) override {
    events.push_back("N:" + std::to_string(d));
  }
  void on_bool(bool b) override { events.push_back(b ? "T" : "F"); }
  void on_null() override { events.push_back("0"); }

  std::vector<std::string> events;
};

TEST(JsonSink, ReceivesAllEvents) {
  Collector c;
  scan_json(R"({"a":[1,true,null],"b":"x"})", c);
  const std::vector<std::string> want = {"{", "K:a", "[", "N:1.000000", "T",
                                         "0", "]", "K:b", "S:x", "}"};
  EXPECT_EQ(c.events, want);
}

TEST(JsonSink, PropagatesErrors) {
  Collector c;
  EXPECT_THROW(scan_json("[1,", c), JsonError);
}

}  // namespace
}  // namespace oak::util
