#include "util/scope.h"

#include <gtest/gtest.h>

namespace oak::util {
namespace {

TEST(GlobMatch, Literals) {
  EXPECT_TRUE(glob_match("/index.html", "/index.html"));
  EXPECT_FALSE(glob_match("/index.html", "/other.html"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(GlobMatch, Star) {
  EXPECT_TRUE(glob_match("*", "/anything/at/all"));
  EXPECT_TRUE(glob_match("/news/*", "/news/2016/06/01"));
  EXPECT_FALSE(glob_match("/news/*", "/sports/x"));
  EXPECT_TRUE(glob_match("*.html", "/a/b/c.html"));
  EXPECT_TRUE(glob_match("/a*z", "/az"));
  EXPECT_TRUE(glob_match("/a*z", "/a-middle-z"));
}

TEST(GlobMatch, MultipleStars) {
  EXPECT_TRUE(glob_match("/a/*/c/*", "/a/b/c/d/e"));
  EXPECT_FALSE(glob_match("/a/*/c/*", "/a/b/d/e"));
}

TEST(GlobMatch, QuestionMark) {
  EXPECT_TRUE(glob_match("/p?ge", "/page"));
  EXPECT_FALSE(glob_match("/p?ge", "/pge"));
}

TEST(GlobMatch, Alternation) {
  EXPECT_TRUE(glob_match("/{news,sports}/*", "/news/today"));
  EXPECT_TRUE(glob_match("/{news,sports}/*", "/sports/today"));
  EXPECT_FALSE(glob_match("/{news,sports}/*", "/weather/today"));
  EXPECT_TRUE(glob_match("*.{js,css}", "/x/app.css"));
  EXPECT_FALSE(glob_match("*.{js,css}", "/x/app.png"));
}

TEST(GlobMatch, AlternationAtEnd) {
  EXPECT_TRUE(glob_match("/a/{x,y}", "/a/x"));
  EXPECT_FALSE(glob_match("/a/{x,y}", "/a/z"));
}

TEST(GlobMatch, MalformedBraceFailsClosed) {
  EXPECT_FALSE(glob_match("/{unclosed", "/x"));
}

TEST(Scope, SiteWide) {
  // The paper's example rule uses scope "*" for "site wide".
  Scope s("*");
  EXPECT_TRUE(s.is_site_wide());
  EXPECT_TRUE(s.matches("/index.html"));
  EXPECT_TRUE(s.matches("/any/sub/page"));
  Scope empty("");
  EXPECT_TRUE(empty.is_site_wide());
  EXPECT_TRUE(empty.matches("/x"));
}

TEST(Scope, PathRestricted) {
  Scope s("/articles/*");
  EXPECT_FALSE(s.is_site_wide());
  EXPECT_TRUE(s.matches("/articles/2016/june"));
  EXPECT_FALSE(s.matches("/index.html"));
}

}  // namespace
}  // namespace oak::util
