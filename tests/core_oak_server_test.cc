#include <gtest/gtest.h>

#include "core/analytics.h"
#include "core/oak_server.h"
#include "http/cookies.h"

namespace oak::core {
namespace {

class OakServerFixture : public ::testing::Test {
 protected:
  OakServerFixture() : universe_(net::NetworkConfig{.seed = 3, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("shop.com", net.server(origin_).addr());
    for (int i = 0; i < 3; ++i) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      const std::string host = "ext" + std::to_string(i) + ".cdn.net";
      universe_.dns().bind(host, net.server(sid).addr());
      ext_hosts_.push_back(host);
      ext_ips_.push_back(net.server(sid).addr().to_string());
    }
    net::ServerId alt = net.add_server(net::ServerConfig{});
    universe_.dns().bind("alt.cdn.net", net.server(alt).addr());
    alt_ip_ = net.server(alt).addr().to_string();

    page::SiteBuilder b(universe_, "shop.com", origin_);
    for (const auto& h : ext_hosts_) {
      b.add_direct(h, "/obj.png", html::RefKind::kImage, 10'000,
                   page::Category::kCdn);
    }
    site_ = b.finish();
    universe_.store().replicate("http://" + ext_hosts_[0] + "/obj.png",
                                "http://alt.cdn.net/obj.png");

    OakConfig ocfg;
    // The fixture's synthetic reports cover 4 servers (origin + 3
    // externals); lower the population floor accordingly.
    ocfg.detector.min_population = 4;
    oak_ = std::make_unique<OakServer>(universe_, "shop.com", ocfg);
    rule_id_ = oak_->add_rule(
        make_domain_rule("switch-ext0", ext_hosts_[0], {"alt.cdn.net"}));
    oak_->install();
  }

  // A report where `slow_host` is clearly the violator among the three
  // external hosts plus origin.
  browser::PerfReport make_report(const std::string& slow_host,
                                  const std::string& slow_ip,
                                  double slow_time = 3.0) {
    browser::PerfReport r;
    r.user_id = "u1";
    r.page_url = site_.index_url();
    r.entries.push_back({site_.index_url(), "shop.com", "10.0.0.1", 5000, 0,
                         0.09});
    for (std::size_t i = 0; i < ext_hosts_.size(); ++i) {
      const bool slow = ext_hosts_[i] == slow_host;
      // Slightly varied baselines keep the MAD non-degenerate.
      r.entries.push_back({"http://" + ext_hosts_[i] + "/obj.png",
                           ext_hosts_[i], ext_ips_[i], 10'000, 0.1,
                           slow ? slow_time : 0.10 + 0.01 * double(i)});
    }
    if (slow_host == "alt.cdn.net") {
      r.entries.push_back({"http://alt.cdn.net/obj.png", "alt.cdn.net",
                           slow_ip, 10'000, 0.1, slow_time});
    }
    return r;
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::vector<std::string> ext_hosts_;
  std::vector<std::string> ext_ips_;
  std::string alt_ip_;
  page::Site site_;
  std::unique_ptr<OakServer> oak_;
  int rule_id_ = 0;
};

TEST_F(OakServerFixture, IssuesCookieOnFirstContact) {
  http::Request req = http::Request::get(site_.index_url());
  http::Response resp = oak_->handle(req, 0.0);
  EXPECT_TRUE(resp.ok());
  auto cookies = resp.headers.get_all("Set-Cookie");
  ASSERT_EQ(cookies.size(), 1u);
  EXPECT_NE(cookies[0].find("oak_uid="), std::string::npos);
  // A request presenting the cookie gets no new one.
  http::Request req2 = http::Request::get(site_.index_url());
  req2.headers.set("Cookie", cookies[0]);
  http::Response resp2 = oak_->handle(req2, 1.0);
  EXPECT_TRUE(resp2.headers.get_all("Set-Cookie").empty());
}

TEST_F(OakServerFixture, ViolationActivatesMatchingRule) {
  auto detection = oak_->analyze("u1", make_report(ext_hosts_[0], ""), 0.0);
  ASSERT_EQ(detection.violators.size(), 1u);
  const UserProfile* p = oak_->profile("u1");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->active.count(rule_id_), 1u);
  EXPECT_EQ(oak_->decision_log().count(DecisionType::kActivate), 1u);
}

TEST_F(OakServerFixture, UnrelatedViolatorDoesNotActivate) {
  oak_->analyze("u1", make_report(ext_hosts_[1], ""), 0.0);
  const UserProfile* p = oak_->profile("u1");
  EXPECT_TRUE(p->active.empty());
}

TEST_F(OakServerFixture, ActivationIsPerUser) {
  oak_->analyze("u1", make_report(ext_hosts_[0], ""), 0.0);
  oak_->analyze("u2", make_report(ext_hosts_[1], ""), 0.0);
  EXPECT_EQ(oak_->profile("u1")->active.count(rule_id_), 1u);
  EXPECT_TRUE(oak_->profile("u2")->active.empty());
  EXPECT_EQ(oak_->user_count(), 2u);
}

TEST_F(OakServerFixture, ServedPageRewrittenOnlyForAffectedUser) {
  oak_->analyze("u1", make_report(ext_hosts_[0], ""), 0.0);
  http::Request req1 = http::Request::get(site_.index_url());
  req1.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u1");
  http::Response r1 = oak_->handle(req1, 1.0);
  EXPECT_NE(r1.body.find("alt.cdn.net"), std::string::npos);
  EXPECT_EQ(r1.body.find(ext_hosts_[0]), std::string::npos);
  // Type-2 host alias header present.
  auto aliases = r1.headers.get_all(http::kOakAliasHeader);
  ASSERT_EQ(aliases.size(), 1u);
  EXPECT_EQ(aliases[0], "host:alt.cdn.net host:" + ext_hosts_[0]);

  http::Request req2 = http::Request::get(site_.index_url());
  req2.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u2");
  http::Response r2 = oak_->handle(req2, 1.0);
  EXPECT_NE(r2.body.find(ext_hosts_[0]), std::string::npos);
}

TEST_F(OakServerFixture, MinViolationsDelaysActivation) {
  oak_->config().policy.default_min_violations = 3;
  oak_->analyze("u1", make_report(ext_hosts_[0], ""), 0.0);
  EXPECT_TRUE(oak_->profile("u1")->active.empty());
  oak_->analyze("u1", make_report(ext_hosts_[0], ""), 10.0);
  EXPECT_TRUE(oak_->profile("u1")->active.empty());
  oak_->analyze("u1", make_report(ext_hosts_[0], ""), 20.0);
  EXPECT_EQ(oak_->profile("u1")->active.count(rule_id_), 1u);
}

TEST_F(OakServerFixture, TtlExpiresActivation) {
  Rule r = make_domain_rule("ttl-rule", ext_hosts_[1], {"alt.cdn.net"});
  r.ttl_s = 100.0;
  int id = oak_->add_rule(r);
  oak_->analyze("u1", make_report(ext_hosts_[1], ""), 0.0);
  EXPECT_EQ(oak_->profile("u1")->active.count(id), 1u);
  // A page request after the TTL removes it.
  http::Request req = http::Request::get(site_.index_url());
  req.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u1");
  oak_->handle(req, 150.0);
  EXPECT_EQ(oak_->profile("u1")->active.count(id), 0u);
  EXPECT_EQ(oak_->decision_log().count(DecisionType::kExpire), 1u);
}

// Regression: the TTL lifetime is half-open [activated_at, expires_at) — at
// exactly now == expires_at the rule is already expired (rule.h). The serve
// plane used to apply the rule at the boundary instant while the audit plane
// counted it expired; both now agree on >=.
TEST_F(OakServerFixture, TtlBoundaryIsHalfOpenAtExactExpiry) {
  Rule r = make_domain_rule("ttl-rule", ext_hosts_[1], {"alt.cdn.net"});
  r.ttl_s = 100.0;
  int id = oak_->add_rule(r);
  oak_->analyze("u1", make_report(ext_hosts_[1], ""), 0.0);
  ASSERT_EQ(oak_->profile("u1")->active.count(id), 1u);
  ASSERT_DOUBLE_EQ(oak_->profile("u1")->active.at(id).expires_at, 100.0);

  http::Request req = http::Request::get(site_.index_url());
  req.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u1");

  // Strictly inside the lifetime the rewrite applies.
  http::Response before = oak_->handle(req, 99.0);
  EXPECT_NE(before.body.find("alt.cdn.net"), std::string::npos);
  EXPECT_EQ(oak_->profile("u1")->active.count(id), 1u);

  // At exactly expires_at the rule must NOT apply and must be reaped.
  http::Response at = oak_->handle(req, 100.0);
  EXPECT_EQ(at.body.find("alt.cdn.net"), std::string::npos);
  EXPECT_NE(at.body.find(ext_hosts_[1]), std::string::npos);
  EXPECT_EQ(oak_->profile("u1")->active.count(id), 0u);
  EXPECT_EQ(oak_->decision_log().count(DecisionType::kExpire), 1u);
}

// Regression: expired rules were only reaped on the oak-applies serve path,
// so holdback (and policy-filtered) users carried stale "active" entries
// forever — the audit kept counting them as live. expire_rules now runs on
// every serve while Oak is enabled, before the holdback early-return.
TEST_F(OakServerFixture, ExpiredRulesReapedForHoldbackUsers) {
  Rule r = make_domain_rule("ttl-rule", ext_hosts_[1], {"alt.cdn.net"});
  r.ttl_s = 100.0;
  int id = oak_->add_rule(r);
  oak_->analyze("u1", make_report(ext_hosts_[1], ""), 0.0);
  ASSERT_EQ(oak_->profile("u1")->active.count(id), 1u);

  // From now on every user is in the holdback group.
  oak_->config().policy.holdback_fraction = 1.0;
  http::Request req = http::Request::get(site_.index_url());
  req.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u1");
  http::Response resp = oak_->handle(req, 150.0);
  // Holdback users get the default page...
  EXPECT_EQ(resp.body.find("alt.cdn.net"), std::string::npos);
  // ...and their expired rules are still reaped.
  EXPECT_EQ(oak_->profile("u1")->active.count(id), 0u);
  EXPECT_EQ(oak_->decision_log().count(DecisionType::kExpire), 1u);
}

// The audit plane must classify an expired-but-unreaped rule exactly as the
// server would: expired at the audit instant, active strictly before it.
TEST_F(OakServerFixture, AuditAgreesWithServerAtTtlBoundary) {
  Rule r = make_domain_rule("ttl-rule", ext_hosts_[1], {"alt.cdn.net"});
  r.ttl_s = 100.0;
  int id = oak_->add_rule(r);
  oak_->analyze("u1", make_report(ext_hosts_[1], ""), 0.0);
  ASSERT_EQ(oak_->profile("u1")->active.count(id), 1u);
  // No serve happens, so the server never reaps the entry itself.

  SiteAnalytics timeless(*oak_);
  EXPECT_EQ(timeless.rule(id)->currently_active, 1u);
  EXPECT_EQ(timeless.rule(id)->expirations, 0u);

  SiteAnalytics just_before(*oak_, 99.999);
  EXPECT_EQ(just_before.rule(id)->currently_active, 1u);
  EXPECT_EQ(just_before.rule(id)->expirations, 0u);

  SiteAnalytics at_boundary(*oak_, 100.0);
  EXPECT_EQ(at_boundary.rule(id)->currently_active, 0u);
  EXPECT_EQ(at_boundary.rule(id)->expirations, 1u);
}

// One report + one rejected body + one rewritten serve must light up every
// stage of the obs pipeline: all five stage histograms and the serve/ingest
// counters (compile-time disabled builds keep the names but record zeros).
TEST_F(OakServerFixture, MetricsCoverAllFiveIngestStages) {
  const std::string cookie = std::string(http::kOakUserCookie) + "=u1";
  http::Request post = http::Request::post(
      "http://shop.com/oak/report", make_report(ext_hosts_[0], "").serialize());
  post.headers.set("Cookie", cookie);
  ASSERT_EQ(oak_->handle(post, 0.0).status, 204);

  http::Request bad = http::Request::post("http://shop.com/oak/report",
                                          "{broken");
  bad.headers.set("Cookie", cookie);
  ASSERT_EQ(oak_->handle(bad, 0.5).status, 400);

  http::Request get = http::Request::get(site_.index_url());
  get.headers.set("Cookie", cookie);
  http::Response page = oak_->handle(get, 1.0);
  ASSERT_TRUE(page.ok());
  ASSERT_NE(page.body.find("alt.cdn.net"), std::string::npos);

  obs::MetricsSnapshot snap = oak_->metrics_snapshot();
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(snap.counter("oak_reports_ingested_total"), 1u);
    EXPECT_EQ(snap.counter("oak_reports_rejected_total"), 1u);
    EXPECT_EQ(snap.counter("oak_rule_activations_total"), 1u);
    EXPECT_EQ(snap.counter("oak_pages_served_total"), 1u);
    EXPECT_EQ(snap.counter("oak_pages_modified_total"), 1u);
    for (const char* name :
         {"oak_ingest_decode_seconds", "oak_ingest_group_seconds",
          "oak_ingest_detect_seconds", "oak_ingest_match_seconds",
          "oak_serve_modify_seconds"}) {
      const obs::HistogramSnapshot* h = snap.histogram(name);
      ASSERT_NE(h, nullptr) << name;
      EXPECT_GE(h->count(), 1u) << name;
    }
    // Both bodies (valid + malformed) are sized before decoding.
    ASSERT_NE(snap.histogram("oak_ingest_report_bytes"), nullptr);
    EXPECT_EQ(snap.histogram("oak_ingest_report_bytes")->count(), 2u);
    // The match-cache counters are folded into the same snapshot.
    EXPECT_GT(snap.counter("oak_match_memo_misses_total") +
                  snap.counter("oak_match_memo_hits_total"),
              0u);
    const std::string text = snap.to_prometheus();
    EXPECT_NE(text.find("# TYPE oak_ingest_decode_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("oak_reports_ingested_total 1"), std::string::npos);
  }
}

TEST_F(OakServerFixture, HistoryKeepsBetterAlternative) {
  // Activate with a severe violation, then report the alternative violating
  // mildly: Oak keeps the alternative (closer to the median).
  oak_->analyze("u1", make_report(ext_hosts_[0], "", /*slow=*/10.0), 0.0);
  const double original = oak_->profile("u1")->active.at(rule_id_)
                              .violation_distance;
  auto mild = make_report("alt.cdn.net", alt_ip_, /*slow=*/0.5);
  oak_->analyze("u1", mild, 10.0);
  EXPECT_EQ(oak_->profile("u1")->active.count(rule_id_), 1u)
      << "alternative should be retained";
  EXPECT_GT(original, 0.0);
  EXPECT_EQ(oak_->decision_log().count(DecisionType::kKeepAlternative), 1u);
}

TEST_F(OakServerFixture, HistoryDeactivatesWorseAlternative) {
  oak_->analyze("u1", make_report(ext_hosts_[0], "", /*slow=*/0.6), 0.0);
  ASSERT_EQ(oak_->profile("u1")->active.count(rule_id_), 1u);
  auto worse = make_report("alt.cdn.net", alt_ip_, /*slow=*/20.0);
  oak_->analyze("u1", worse, 10.0);
  EXPECT_EQ(oak_->profile("u1")->active.count(rule_id_), 0u);
  EXPECT_EQ(oak_->decision_log().count(DecisionType::kDeactivate), 1u);
}

TEST_F(OakServerFixture, MultipleAlternativesAdvanceBeforeDeactivating) {
  Rule r = make_domain_rule("multi", ext_hosts_[2],
                            {"alt.cdn.net", "ext1.cdn.net"});
  int id = oak_->add_rule(r);
  oak_->analyze("u1", make_report(ext_hosts_[2], "", 0.5), 0.0);
  ASSERT_EQ(oak_->profile("u1")->active.at(id).alternative_index, 0u);
  // First alternative turns out much worse -> advance to the second.
  oak_->analyze("u1", make_report("alt.cdn.net", alt_ip_, 30.0), 10.0);
  ASSERT_EQ(oak_->profile("u1")->active.count(id), 1u);
  EXPECT_EQ(oak_->profile("u1")->active.at(id).alternative_index, 1u);
  EXPECT_EQ(oak_->decision_log().count(DecisionType::kAdvanceAlternative), 1u);
}

TEST_F(OakServerFixture, ReactivationBanRespected) {
  oak_->config().policy.allow_reactivation = false;
  oak_->analyze("u1", make_report(ext_hosts_[0], "", 0.5), 0.0);
  oak_->analyze("u1", make_report("alt.cdn.net", alt_ip_, 30.0), 1.0);
  EXPECT_TRUE(oak_->profile("u1")->active.empty());
  // A new violation of the default must NOT re-activate.
  oak_->analyze("u1", make_report(ext_hosts_[0], "", 5.0), 2.0);
  EXPECT_TRUE(oak_->profile("u1")->active.empty());
}

TEST_F(OakServerFixture, SubnetPolicyFiltersClients) {
  oak_->config().policy.client_filter =
      Subnet{net::IpAddr(24, 0, 0, 0), 8};  // NA block only
  browser::PerfReport report = make_report(ext_hosts_[0], "");
  // EU client (81.x) is ignored end to end.
  http::Request post = http::Request::post(
      "http://shop.com/oak/report", report.serialize());
  post.client_ip = "81.0.0.2";
  post.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u_eu");
  oak_->handle(post, 0.0);
  EXPECT_EQ(oak_->reports_processed(), 0u);

  post.client_ip = "24.0.0.2";
  post.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u_na");
  oak_->handle(post, 0.0);
  EXPECT_EQ(oak_->reports_processed(), 1u);
  EXPECT_EQ(oak_->profile("u_na")->active.count(rule_id_), 1u);
}

TEST_F(OakServerFixture, DisabledServerServesDefaultAndIgnoresReports) {
  oak_->config().enabled = false;
  oak_->analyze("u1", make_report(ext_hosts_[0], ""), 0.0);
  // analyze() bypasses the HTTP enabled-check by design; go through HTTP.
  http::Request post = http::Request::post("http://shop.com/oak/report",
                                           make_report(ext_hosts_[0], "")
                                               .serialize());
  post.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u9");
  oak_->handle(post, 0.0);
  EXPECT_EQ(oak_->profile("u9"), nullptr);
}

TEST_F(OakServerFixture, MalformedReportRejected) {
  http::Request post =
      http::Request::post("http://shop.com/oak/report", "{broken");
  EXPECT_EQ(oak_->handle(post, 0.0).status, 400);
}

// All three ingest decode modes must accept the same wire bytes, reject the
// same malformed bodies, and leave the user profile in the same state; the
// differential mode additionally cross-checks both decoders on every body.
TEST_F(OakServerFixture, IngestDecodeModesAgree) {
  const std::string body = make_report(ext_hosts_[0], "").serialize();
  const IngestDecode modes[] = {IngestDecode::kStreaming, IngestDecode::kDom,
                                IngestDecode::kDifferential};
  int n = 0;
  for (IngestDecode mode : modes) {
    oak_->config().ingest_decode = mode;
    const std::string uid = "decode-u" + std::to_string(n++);
    const std::string cookie = std::string(http::kOakUserCookie) + "=" + uid;

    http::Request post = http::Request::post("http://shop.com/oak/report",
                                             body);
    post.headers.set("Cookie", cookie);
    EXPECT_EQ(oak_->handle(post, 0.0).status, 204);
    const UserProfile* p = oak_->profile(uid);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->active.count(rule_id_), 1u);

    http::Request bad = http::Request::post("http://shop.com/oak/report",
                                            "{broken");
    bad.headers.set("Cookie", cookie);
    EXPECT_EQ(oak_->handle(bad, 0.0).status, 400);
  }
}

TEST_F(OakServerFixture, UnknownPathIs404) {
  http::Request req = http::Request::get("http://shop.com/missing.html");
  EXPECT_EQ(oak_->handle(req, 0.0).status, 404);
}

TEST_F(OakServerFixture, RootPathServesIndex) {
  http::Request req = http::Request::get("http://shop.com/");
  http::Response resp = oak_->handle(req, 0.0);
  EXPECT_TRUE(resp.ok());
  EXPECT_NE(resp.body.find("<html>"), std::string::npos);
}

TEST_F(OakServerFixture, ForceAllRulesAppliesWithoutReports) {
  oak_->config().force_all_rules = true;
  http::Request req = http::Request::get(site_.index_url());
  http::Response resp = oak_->handle(req, 0.0);
  EXPECT_NE(resp.body.find("alt.cdn.net"), std::string::npos);
}

TEST_F(OakServerFixture, InvalidRuleRejected) {
  Rule bad;  // empty default text
  EXPECT_THROW(oak_->add_rule(bad), std::invalid_argument);
}

TEST_F(OakServerFixture, RuleLookup) {
  EXPECT_NE(oak_->rule(rule_id_), nullptr);
  EXPECT_EQ(oak_->rule(9999), nullptr);
  EXPECT_EQ(oak_->rules().size(), 1u);
}

}  // namespace
}  // namespace oak::core
