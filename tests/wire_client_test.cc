// wire::BlockingClient against canned byte streams: the keep-alive
// decision must parse Connection as a comma-separated token list (RFC
// 7230 §6.1), exactly as the server-side parser does. The regression
// here: a substring test read any value *containing* "close" — e.g. a
// token like "close-notify" — as a close directive and tore down a
// perfectly good keep-alive connection.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include "wire/client.h"

namespace oak::wire {
namespace {

// One-shot canned server: accepts a single connection, swallows one
// request head, writes the canned response verbatim, then holds the
// connection open until the client side is done (so a keep-alive verdict
// is the client's parse, not an observed close).
class CannedServer {
 public:
  explicit CannedServer(std::string response, bool v6 = false)
      : response_(std::move(response)) {
    listen_fd_ = ::socket(v6 ? AF_INET6 : AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return;
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    int rc = -1;
    if (v6) {
      sockaddr_in6 addr{};
      addr.sin6_family = AF_INET6;
      addr.sin6_addr = in6addr_loopback;
      rc = ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr);
    } else {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      rc = ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr);
    }
    if (rc < 0 || ::listen(listen_fd_, 1) < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    sockaddr_storage bound{};
    socklen_t blen = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
    port_ = ntohs(
        bound.ss_family == AF_INET6
            ? reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port
            : reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    th_ = std::thread([this] { serve(); });
  }

  ~CannedServer() {
    if (th_.joinable()) th_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  bool ok() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

 private:
  void serve() {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    // Swallow the request head (the client always sends one full head).
    std::string head;
    char buf[4096];
    while (head.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      head.append(buf, static_cast<std::size_t>(n));
    }
    std::size_t off = 0;
    while (off < response_.size()) {
      const ssize_t n = ::send(fd, response_.data() + off,
                               response_.size() - off, MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    // Wait for the peer to close so the client's verdict comes from the
    // header parse alone.
    while (::recv(fd, buf, sizeof buf, 0) > 0) {
    }
    ::close(fd);
  }

  std::string response_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread th_;
};

std::string canned(const std::string& connection_value) {
  std::string resp = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n";
  if (!connection_value.empty()) {
    resp += "Connection: " + connection_value + "\r\n";
  }
  resp += "\r\nok";
  return resp;
}

// Run one request against a canned response and return the keep-alive
// verdict the client parsed.
bool keep_alive_verdict(const std::string& connection_value) {
  CannedServer server(canned(connection_value));
  EXPECT_TRUE(server.ok());
  BlockingClient cli;
  EXPECT_TRUE(cli.connect("127.0.0.1", server.port(), 5.0));
  auto resp = cli.request("GET", "/", {{"Host", "t"}});
  EXPECT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "ok");
  return resp->keep_alive;
}

TEST(WireClient, PlainCloseTokenCloses) {
  EXPECT_FALSE(keep_alive_verdict("close"));
  EXPECT_FALSE(keep_alive_verdict("Close"));
  EXPECT_FALSE(keep_alive_verdict("CLOSE"));
}

TEST(WireClient, CloseSubstringTokensStayKeepAlive) {
  // The regression: these contain the letters "close" but are not the
  // close token, and must not tear down the connection.
  EXPECT_TRUE(keep_alive_verdict("close-notify"));
  EXPECT_TRUE(keep_alive_verdict("x-close"));
  EXPECT_TRUE(keep_alive_verdict("closed"));
  EXPECT_TRUE(keep_alive_verdict("pre-close-upgrade"));
}

TEST(WireClient, TokenListHonorsEveryToken) {
  EXPECT_FALSE(keep_alive_verdict("foo, Close"));
  EXPECT_FALSE(keep_alive_verdict("close, x-custom"));
  EXPECT_FALSE(keep_alive_verdict(" close "));  // OWS-trimmed
  EXPECT_TRUE(keep_alive_verdict("foo, bar"));
  EXPECT_TRUE(keep_alive_verdict("Keep-Alive"));
  // Later directives win, as in the server-side parser.
  EXPECT_TRUE(keep_alive_verdict("close, keep-alive"));
  EXPECT_FALSE(keep_alive_verdict("keep-alive, close"));
}

TEST(WireClient, MissingConnectionHeaderDefaultsKeepAlive) {
  EXPECT_TRUE(keep_alive_verdict(""));
}

TEST(WireClient, ConnectsOverIPv6Loopback) {
  CannedServer server(canned("keep-alive"), /*v6=*/true);
  if (!server.ok()) GTEST_SKIP() << "IPv6 loopback unavailable";
  BlockingClient cli;
  ASSERT_TRUE(cli.connect("::1", server.port(), 5.0));
  auto resp = cli.request("GET", "/", {{"Host", "t"}});
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_TRUE(resp->keep_alive);
}

}  // namespace
}  // namespace oak::wire
