#include "util/strings.h"

#include <gtest/gtest.h>

namespace oak::util {
namespace {

TEST(Split, Basic) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitNonempty, DropsEmpties) {
  EXPECT_EQ(split_nonempty("a,,b,", ','),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_nonempty(",,,", ',').empty());
}

TEST(Trim, Basic) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("x", "http://"));
  EXPECT_TRUE(ends_with("file.js", ".js"));
  EXPECT_FALSE(ends_with("js", "file.js"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_TRUE(ends_with("abc", ""));
}

TEST(Contains, CaseSensitivity) {
  EXPECT_TRUE(contains("Hello World", "o W"));
  EXPECT_FALSE(contains("Hello", "hello"));
  EXPECT_TRUE(icontains("Hello", "hello"));
  EXPECT_TRUE(icontains("xScRiPtx", "script"));
  EXPECT_FALSE(icontains("scrip", "script"));
  EXPECT_TRUE(icontains("anything", ""));
}

TEST(ReplaceAll, CountsAndReplaces) {
  std::string s = "aXbXc";
  EXPECT_EQ(replace_all(s, "X", "--"), 2u);
  EXPECT_EQ(s, "a--b--c");
}

TEST(ReplaceAll, NoRecursionOnExpandedText) {
  std::string s = "aa";
  EXPECT_EQ(replace_all(s, "a", "aa"), 2u);
  EXPECT_EQ(s, "aaaa");
}

TEST(ReplaceAll, EmptyNeedleIsNoop) {
  std::string s = "abc";
  EXPECT_EQ(replace_all(s, "", "x"), 0u);
  EXPECT_EQ(s, "abc");
}

TEST(ReplaceAll, RemovalViaEmptyReplacement) {
  std::string s = "<b>x</b>";
  EXPECT_EQ(replace_all(s, "<b>", ""), 1u);
  EXPECT_EQ(s, "x</b>");
}

TEST(CountOccurrences, NonOverlapping) {
  EXPECT_EQ(count_occurrences("aaaa", "aa"), 2u);
  EXPECT_EQ(count_occurrences("abc", "d"), 0u);
  EXPECT_EQ(count_occurrences("abc", ""), 0u);
}

TEST(Format, Printf) {
  EXPECT_EQ(format("x=%d s=%s", 42, "hi"), "x=42 s=hi");
  EXPECT_EQ(format("%.2f", 1.5), "1.50");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

}  // namespace
}  // namespace oak::util
