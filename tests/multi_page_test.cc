// Multi-page sites and rule scopes end-to-end (paper §4.1 scope field and
// §4.2.4 "rules can be set with very wide scope ... the information Oak
// learns when a user first navigates to a site could be effectively
// implemented on all subsequent pages").
#include <gtest/gtest.h>

#include "browser/browser.h"
#include "core/oak_server.h"

namespace oak {
namespace {

class MultiPageFixture : public ::testing::Test {
 protected:
  MultiPageFixture()
      : universe_(net::NetworkConfig{.seed = 44, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("paper.news", net.server(origin_).addr());

    net::ServerConfig sick;
    sick.chronic_degradation = 20.0;
    universe_.dns().bind("widgets.slow.net",
                         net.server(net.add_server(sick)).addr());
    universe_.dns().bind(
        "widgets.fast.net",
        net.server(net.add_server(net::ServerConfig{})).addr());
    for (int i = 0; i < 4; ++i) {
      universe_.dns().bind(
          "p" + std::to_string(i) + ".peer.net",
          net.server(net.add_server(net::ServerConfig{})).addr());
    }

    // Two pages on the same site, both pulling the slow widget.
    for (const char* path : {"/index.html", "/article.html"}) {
      page::SiteBuilder b(universe_, "paper.news", origin_, path);
      b.add_direct("widgets.slow.net", "/w.js", html::RefKind::kScript,
                   15'000, page::Category::kCdn);
      for (int i = 0; i < 4; ++i) {
        b.add_direct("p" + std::to_string(i) + ".peer.net", "/lib.js",
                     html::RefKind::kScript, 15'000, page::Category::kCdn);
      }
      pages_.push_back(b.finish());
    }
    universe_.store().replicate("http://widgets.slow.net/w.js",
                                "http://widgets.fast.net/w.js");
  }

  browser::Browser make_browser() {
    browser::BrowserConfig bc;
    bc.use_cache = false;
    return browser::Browser(
        universe_, universe_.network().add_client(net::ClientConfig{}), bc);
  }

  bool page_uses(const std::string& html, const std::string& host) {
    return html.find(host) != std::string::npos;
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::vector<page::Site> pages_;
};

TEST_F(MultiPageFixture, SiteWideRuleLearnedOnIndexAppliesToArticle) {
  core::OakServer oak(universe_, "paper.news", core::OakConfig{});
  oak.add_rule(core::make_domain_rule("widgets", "widgets.slow.net",
                                      {"widgets.fast.net"}, 0.0, "*"));
  oak.install();
  auto browser = make_browser();
  // Learn on the index...
  browser.load("http://paper.news/index.html", 0.0);
  // ...benefit on the article the user never reported about.
  auto article = browser.load("http://paper.news/article.html", 60.0);
  EXPECT_TRUE(page_uses(article.page_html, "widgets.fast.net"));
  EXPECT_FALSE(page_uses(article.page_html, "widgets.slow.net"));
}

TEST_F(MultiPageFixture, NarrowScopeOnlyRewritesMatchingPaths) {
  core::OakServer oak(universe_, "paper.news", core::OakConfig{});
  oak.add_rule(core::make_domain_rule("widgets", "widgets.slow.net",
                                      {"widgets.fast.net"}, 0.0,
                                      "/article*"));
  oak.install();
  auto browser = make_browser();
  browser.load("http://paper.news/index.html", 0.0);  // activates the rule
  auto index = browser.load("http://paper.news/index.html", 60.0);
  auto article = browser.load("http://paper.news/article.html", 120.0);
  // The index stays on the default (out of scope) even though the rule is
  // active; the article is rewritten.
  EXPECT_TRUE(page_uses(index.page_html, "widgets.slow.net"));
  EXPECT_TRUE(page_uses(article.page_html, "widgets.fast.net"));
}

TEST_F(MultiPageFixture, BothPagesServeIndependently) {
  auto browser = make_browser();
  auto a = browser.load("http://paper.news/index.html", 0.0);
  auto b = browser.load("http://paper.news/article.html", 1.0);
  EXPECT_EQ(a.page_status, 200);
  EXPECT_EQ(b.page_status, 200);
  EXPECT_EQ(a.missing_objects, 0u);
  EXPECT_EQ(b.missing_objects, 0u);
  EXPECT_EQ(pages_[1].index_path, "/article.html");
}

}  // namespace
}  // namespace oak
