#include <gtest/gtest.h>

#include "core/modifier.h"

namespace oak::core {
namespace {

TEST(Modifier, Type1RemovesBlock) {
  Rule r = make_removal_rule("kill-ad",
                             "<iframe src=\"http://ads.x.com/a\"></iframe>");
  r.id = 1;
  const std::string html =
      "<p>before</p><iframe src=\"http://ads.x.com/a\"></iframe><p>after</p>";
  ModifiedPage out = apply_rules(html, "/index.html", {{&r, 0}});
  EXPECT_EQ(out.html, "<p>before</p><p>after</p>");
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].replacements, 1u);
  EXPECT_TRUE(out.aliases.empty());
}

TEST(Modifier, Type2ReplacesAndEmitsUrlAlias) {
  Rule r = make_source_rule(
      "jquery", "<script src=\"http://s1.com/jquery.js\"></script>",
      {"<script src=\"http://s2.net/jquery.js\"></script>"});
  r.id = 2;
  const std::string html =
      "<head><script src=\"http://s1.com/jquery.js\"></script></head>";
  ModifiedPage out = apply_rules(html, "/", {{&r, 0}});
  EXPECT_NE(out.html.find("s2.net"), std::string::npos);
  EXPECT_EQ(out.html.find("s1.com"), std::string::npos);
  ASSERT_EQ(out.aliases.size(), 1u);
  EXPECT_EQ(out.aliases[0],
            "http://s2.net/jquery.js http://s1.com/jquery.js");
}

TEST(Modifier, DomainRuleRewritesEverywhereIncludingInlineScripts) {
  Rule r = make_domain_rule("switch", "slow.cdn.net", {"na.mirror.slow.cdn.net"});
  r.id = 3;
  const std::string html =
      "<img src=\"http://slow.cdn.net/a.png\"/>"
      "<script>var h=\"slow.cdn.net\";load(h);</script>";
  ModifiedPage out = apply_rules(html, "/", {{&r, 0}});
  EXPECT_EQ(out.html.find("\"slow.cdn.net"), std::string::npos);
  EXPECT_EQ(out.records[0].replacements, 2u);
  ASSERT_EQ(out.aliases.size(), 1u);
  EXPECT_EQ(out.aliases[0], "host:na.mirror.slow.cdn.net host:slow.cdn.net");
}

TEST(Modifier, Type3NoAliasEmitted) {
  Rule r;
  r.id = 4;
  r.type = RuleType::kAlternativeObject;
  r.default_text = "<img src=\"http://a.com/1.png\"/>";
  r.alternatives = {"<img src=\"http://b.net/other.png\"/>"};
  const std::string html = "<img src=\"http://a.com/1.png\"/>";
  ModifiedPage out = apply_rules(html, "/", {{&r, 0}});
  EXPECT_NE(out.html.find("b.net"), std::string::npos);
  EXPECT_TRUE(out.aliases.empty());  // the object is NOT identical
}

TEST(Modifier, ScopeRestrictsApplication) {
  Rule r = make_domain_rule("scoped", "x.com", {"y.com"}, 0.0, "/blog/*");
  r.id = 5;
  const std::string html = "<img src=\"http://x.com/a.png\"/>";
  EXPECT_NE(apply_rules(html, "/index.html", {{&r, 0}}).html.find("x.com"),
            std::string::npos);
  EXPECT_EQ(apply_rules(html, "/blog/post1", {{&r, 0}}).html.find("x.com"),
            std::string::npos);
}

TEST(Modifier, AlternativeIndexSelectsAndClamps) {
  Rule r = make_domain_rule("multi", "x.com", {"alt0.com", "alt1.com"});
  r.id = 6;
  const std::string html = "<img src=\"http://x.com/a.png\"/>";
  EXPECT_NE(apply_rules(html, "/", {{&r, 1}}).html.find("alt1.com"),
            std::string::npos);
  // Out-of-range index clamps to the last alternative.
  EXPECT_NE(apply_rules(html, "/", {{&r, 9}}).html.find("alt1.com"),
            std::string::npos);
}

TEST(Modifier, SubRulesOnlyFireWhenParentMatched) {
  Rule r = make_domain_rule("parent", "x.com", {"y.com"});
  r.id = 7;
  r.sub_rules.push_back({"THEME", "dark"});
  ModifiedPage hit = apply_rules("<img src=\"http://x.com/\"/> THEME", "/",
                                 {{&r, 0}});
  EXPECT_NE(hit.html.find("dark"), std::string::npos);
  ModifiedPage miss = apply_rules("no match here THEME", "/", {{&r, 0}});
  EXPECT_NE(miss.html.find("THEME"), std::string::npos);
  EXPECT_EQ(miss.html.find("dark"), std::string::npos);
}

TEST(Modifier, MultipleRulesApplyInOrder) {
  Rule a = make_domain_rule("a", "one.com", {"two.com"});
  a.id = 8;
  Rule b = make_domain_rule("b", "two.com", {"three.com"});
  b.id = 9;
  const std::string html = "<img src=\"http://one.com/x\"/>";
  ModifiedPage out = apply_rules(html, "/", {{&a, 0}, {&b, 0}});
  // Rule b sees rule a's output: one.com -> two.com -> three.com.
  EXPECT_NE(out.html.find("three.com"), std::string::npos);
  EXPECT_EQ(out.total_replacements(), 2u);
}

TEST(Modifier, NoMatchLeavesPageUntouched) {
  Rule r = make_domain_rule("r", "absent.com", {"alt.com"});
  r.id = 10;
  const std::string html = "<p>static content</p>";
  ModifiedPage out = apply_rules(html, "/", {{&r, 0}});
  EXPECT_EQ(out.html, html);
  EXPECT_EQ(out.total_replacements(), 0u);
  EXPECT_TRUE(out.aliases.empty());
}

TEST(Modifier, MultiUrlBlockEmitsPairwiseAliases) {
  Rule r = make_source_rule(
      "block",
      "<img src=\"http://d.com/1.png\"/><img src=\"http://d.com/2.png\"/>",
      {"<img src=\"http://m.com/1.png\"/><img src=\"http://m.com/2.png\"/>"});
  r.id = 11;
  ModifiedPage out = apply_rules(
      "<img src=\"http://d.com/1.png\"/><img src=\"http://d.com/2.png\"/>",
      "/", {{&r, 0}});
  ASSERT_EQ(out.aliases.size(), 2u);
  EXPECT_EQ(out.aliases[0], "http://m.com/1.png http://d.com/1.png");
  EXPECT_EQ(out.aliases[1], "http://m.com/2.png http://d.com/2.png");
}

}  // namespace
}  // namespace oak::core
