#include <gtest/gtest.h>

#include "browser/browser.h"
#include "browser/report.h"
#include "page/site.h"

namespace oak::browser {
namespace {

TEST(PerfReport, SerializeDeserializeRoundTrip) {
  PerfReport r;
  r.user_id = "u7";
  r.page_url = "http://site.com/index.html";
  r.plt_s = 1.25;
  r.entries.push_back(
      {"http://a.com/x.png", "a.com", "10.0.0.1", 12345, 0.1, 0.33});
  r.entries.push_back(
      {"http://b.com/y.js", "b.com", "10.0.1.1", 999, 0.0, 0.05});
  PerfReport back = PerfReport::deserialize(r.serialize());
  EXPECT_EQ(back.user_id, "u7");
  EXPECT_EQ(back.page_url, r.page_url);
  EXPECT_DOUBLE_EQ(back.plt_s, 1.25);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].url, "http://a.com/x.png");
  EXPECT_EQ(back.entries[0].ip, "10.0.0.1");
  EXPECT_EQ(back.entries[0].size, 12345u);
  EXPECT_DOUBLE_EQ(back.entries[1].time_s, 0.05);
}

TEST(PerfReport, MalformedInputThrows) {
  EXPECT_THROW(PerfReport::deserialize("not json"), util::JsonError);
  EXPECT_THROW(PerfReport::deserialize("{}"), util::JsonError);
  EXPECT_THROW(PerfReport::deserialize(R"({"uid":"x"})"), util::JsonError);
}

TEST(PerfReport, EmptyEntriesAllowed) {
  PerfReport r;
  r.user_id = "u";
  r.page_url = "p";
  PerfReport back = PerfReport::deserialize(r.serialize());
  EXPECT_TRUE(back.entries.empty());
}

class BrowserFixture : public ::testing::Test {
 protected:
  BrowserFixture() : universe_(net::NetworkConfig{.seed = 21, .horizon_s = 0}) {
    net::ServerConfig origin_cfg;
    origin_cfg.name = "origin";
    origin_ = universe_.network().add_server(origin_cfg);
    universe_.dns().bind("site.com",
                         universe_.network().server(origin_).addr());

    net::ServerConfig ext_cfg;
    ext_cfg.name = "ext";
    ext_ = universe_.network().add_server(ext_cfg);
    universe_.dns().bind("cdn.ext.net",
                         universe_.network().server(ext_).addr());
    universe_.dns().bind("js.ext.net",
                         universe_.network().server(ext_).addr());

    page::SiteBuilder b(universe_, "site.com", origin_);
    b.add_origin_object("/style.css", html::RefKind::kStylesheet, 2000);
    b.add_direct("cdn.ext.net", "/big.png", html::RefKind::kImage, 80'000,
                 page::Category::kCdn);
    b.add_inline_loader("js.ext.net", "/m.js", 5'000,
                        page::Category::kAnalytics);
    b.add_script_with_induced("js.ext.net", "/agg.js", 4'000,
                              page::Category::kAds,
                              {{"cdn.ext.net", "/induced.png",
                                html::RefKind::kImage, 9'000,
                                page::Category::kAds}});
    b.add_hidden("cdn.ext.net", "/hidden.gif", html::RefKind::kImage, 100,
                 page::Category::kAnalytics);
    site_ = b.finish();
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  net::ServerId ext_ = net::kInvalidServer;
  page::Site site_;
};

TEST_F(BrowserFixture, LoadsEveryReachableObject) {
  net::ClientConfig cc;
  cc.name = "c";
  net::ClientId cid = universe_.network().add_client(cc);
  Browser browser(universe_, cid);
  LoadResult res = browser.load(site_.index_url(), 0.0);
  EXPECT_EQ(res.page_status, 200);
  EXPECT_EQ(res.missing_objects, 0u);
  // index + css + big.png + m.js (inline loader) + agg.js + induced.png +
  // hidden.gif = 7 entries.
  EXPECT_EQ(res.report.entries.size(), 7u);
  EXPECT_GT(res.plt_s, 0.0);
  // Every entry carries a resolved IP and positive timing.
  for (const auto& e : res.report.entries) {
    EXPECT_FALSE(e.ip.empty());
    EXPECT_GT(e.time_s, 0.0);
    EXPECT_GE(e.start_s, 0.0);
  }
  // PLT >= finish of every object.
  for (const auto& e : res.report.entries) {
    EXPECT_LE(e.start_s + e.time_s, res.plt_s + 1e-9);
  }
}

TEST_F(BrowserFixture, InducedLoadsStartAfterTheirScript) {
  net::ClientId cid = universe_.network().add_client(net::ClientConfig{});
  Browser browser(universe_, cid);
  LoadResult res = browser.load(site_.index_url(), 0.0);
  double script_done = -1, induced_start = -1;
  for (const auto& e : res.report.entries) {
    if (e.url == "http://js.ext.net/agg.js") script_done = e.start_s + e.time_s;
    if (e.url == "http://cdn.ext.net/induced.png") induced_start = e.start_s;
  }
  ASSERT_GE(script_done, 0.0);
  ASSERT_GE(induced_start, 0.0);
  EXPECT_GE(induced_start, script_done - 1e-9);
}

TEST_F(BrowserFixture, CacheSuppressesRefetch) {
  net::ClientId cid = universe_.network().add_client(net::ClientConfig{});
  Browser browser(universe_, cid);
  LoadResult first = browser.load(site_.index_url(), 0.0);
  EXPECT_EQ(first.cache_hits, 0u);
  LoadResult second = browser.load(site_.index_url(), 10.0);
  EXPECT_GT(second.cache_hits, 0u);
  EXPECT_LT(second.report.entries.size(), first.report.entries.size());
}

TEST_F(BrowserFixture, CacheDisabledFetchesEverything) {
  net::ClientId cid = universe_.network().add_client(net::ClientConfig{});
  BrowserConfig cfg;
  cfg.use_cache = false;
  Browser browser(universe_, cid, cfg);
  LoadResult first = browser.load(site_.index_url(), 0.0);
  LoadResult second = browser.load(site_.index_url(), 10.0);
  EXPECT_EQ(second.cache_hits, 0u);
  EXPECT_EQ(second.report.entries.size(), first.report.entries.size());
}

TEST_F(BrowserFixture, ReportBytesMatchSerialization) {
  net::ClientId cid = universe_.network().add_client(net::ClientConfig{});
  Browser browser(universe_, cid);
  LoadResult res = browser.load(site_.index_url(), 0.0);
  EXPECT_EQ(res.report_bytes, res.report.serialize().size());
  // No handler registered -> nothing delivered.
  EXPECT_FALSE(res.report_delivered);
}

TEST_F(BrowserFixture, HandlerReceivesReportPost) {
  int posts = 0;
  std::string last_body;
  universe_.set_handler(
      "site.com",
      [&](const http::Request& req, double) -> http::Response {
        if (req.method == http::Method::kPost) {
          ++posts;
          last_body = req.body;
          return http::Response::text("", 204);
        }
        const page::WebObject* obj =
            universe_.store().find("http://site.com/index.html");
        return http::Response::html(obj->body);
      });
  net::ClientId cid = universe_.network().add_client(net::ClientConfig{});
  Browser browser(universe_, cid);
  LoadResult res = browser.load(site_.index_url(), 0.0);
  EXPECT_TRUE(res.report_delivered);
  EXPECT_EQ(posts, 1);
  PerfReport posted = PerfReport::deserialize(last_body);
  EXPECT_EQ(posted.entries.size(), res.report.entries.size());
  EXPECT_GT(res.report_upload_s, 0.0);
}

TEST_F(BrowserFixture, MissingObjectsCounted) {
  page::SiteBuilder b(universe_, "site.com", origin_);
  b.add_direct("cdn.ext.net", "/exists.png", html::RefKind::kImage, 1000,
               page::Category::kCdn);
  b.add_markup("<img src=\"http://cdn.ext.net/never-stored.png\"/>");
  b.add_markup("<img src=\"http://unbound-host.net/x.png\"/>");
  page::Site site = b.finish();
  net::ClientId cid = universe_.network().add_client(net::ClientConfig{});
  Browser browser(universe_, cid);
  LoadResult res = browser.load(site.index_url(), 0.0);
  EXPECT_EQ(res.missing_objects, 2u);
}

TEST_F(BrowserFixture, DistantClientsLoadSlower) {
  net::ClientConfig na;
  na.region = net::Region::kNorthAmerica;
  net::ClientConfig as;
  as.region = net::Region::kAsia;
  net::ClientId c_na = universe_.network().add_client(na);
  net::ClientId c_as = universe_.network().add_client(as);
  double plt_na = 0, plt_as = 0;
  for (int i = 0; i < 5; ++i) {
    BrowserConfig cfg;
    cfg.use_cache = false;
    Browser bn(universe_, c_na, cfg), ba(universe_, c_as, cfg);
    plt_na += bn.load(site_.index_url(), i * 100.0).plt_s;
    plt_as += ba.load(site_.index_url(), i * 100.0).plt_s;
  }
  EXPECT_LT(plt_na, plt_as);
}

TEST_F(BrowserFixture, BadUrlAndUnknownHost) {
  net::ClientId cid = universe_.network().add_client(net::ClientConfig{});
  Browser browser(universe_, cid);
  EXPECT_EQ(browser.load("garbage", 0.0).page_status, 400);
  EXPECT_EQ(browser.load("http://nxdomain.example/", 0.0).page_status, 502);
}

}  // namespace
}  // namespace oak::browser
