// Flat container semantics (util/flat_map.h): these back per-user state and
// the matcher memo, so map-parity — sorted iteration, erase-during-iteration,
// operator[] default construction — is load-bearing for snapshot stability.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>

#include "util/flat_map.h"

namespace oak::util {
namespace {

TEST(FlatMap, SortedIterationMatchesStdMap) {
  SmallFlatMap<int, std::string> flat;
  std::map<int, std::string> ref;
  std::mt19937 rng(7);
  for (int i = 0; i < 200; ++i) {
    const int k = int(rng() % 64);
    const std::string v = "v" + std::to_string(i);
    flat[k] = v;
    ref[k] = v;
  }
  ASSERT_EQ(flat.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [k, v] : flat) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(FlatMap, FindCountErase) {
  SmallFlatMap<int, int> m;
  m[3] = 30;
  m[1] = 10;
  m[2] = 20;
  EXPECT_EQ(m.count(2), 1u);
  EXPECT_EQ(m.find(2)->second, 20);
  EXPECT_EQ(m.find(9), m.end());
  EXPECT_EQ(m.erase(2), 1u);
  EXPECT_EQ(m.erase(2), 0u);
  EXPECT_EQ(m.count(2), 0u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, EraseDuringIteration) {
  // The expire-rules pattern: it = m.erase(it) must yield the next element
  // in key order.
  SmallFlatMap<int, int> m;
  for (int k : {5, 1, 4, 2, 3}) m[k] = k * 10;
  std::vector<int> kept;
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 2 == 0) {
      it = m.erase(it);
    } else {
      kept.push_back(it->first);
      ++it;
    }
  }
  EXPECT_EQ(kept, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(m.size(), 3u);
}

TEST(FlatMap, InsertOrAssign) {
  SmallFlatMap<int, int> m;
  auto [it1, fresh1] = m.insert_or_assign(7, 70);
  EXPECT_TRUE(fresh1);
  auto [it2, fresh2] = m.insert_or_assign(7, 71);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(m.find(7)->second, 71);
}

TEST(FlatSet, SortedDedupInsertErase) {
  SmallFlatSet<int> s;
  std::set<int> ref;
  std::mt19937 rng(11);
  for (int i = 0; i < 100; ++i) {
    const int k = int(rng() % 32);
    EXPECT_EQ(s.insert(k).second, ref.insert(k).second);
  }
  ASSERT_EQ(s.size(), ref.size());
  auto it = ref.begin();
  for (int k : s) EXPECT_EQ(k, *it++);
  const int victim = *ref.begin();
  EXPECT_EQ(s.erase(victim), 1u);
  EXPECT_EQ(s.erase(victim), 0u);
  EXPECT_EQ(s.count(victim), 0u);
}

TEST(FlatHashMap, BehavesLikeUnorderedMap) {
  FlatHashMap<int, int> flat;
  std::map<int, int> ref;
  std::mt19937 rng(13);
  for (int i = 0; i < 5000; ++i) {
    const int k = int(rng() % 1024);
    flat[k] = i;
    ref[k] = i;
  }
  EXPECT_EQ(flat.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(flat.find(k), nullptr) << k;
    EXPECT_EQ(*flat.find(k), v) << k;
  }
  EXPECT_EQ(flat.find(99999), nullptr);
}

TEST(FlatHashMap, ClearKeepsWorkingAndFindOnEmptyIsSafe) {
  FlatHashMap<std::string, int> m;
  EXPECT_EQ(m.find("nothing"), nullptr);  // pre-first-insert lookup
  for (int i = 0; i < 100; ++i) m["k" + std::to_string(i)] = i;
  EXPECT_EQ(m.size(), 100u);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find("k5"), nullptr);
  m["again"] = 1;
  EXPECT_EQ(*m.find("again"), 1);
}

TEST(FlatHashMap, StringViewKeysAndReserve) {
  FlatHashMap<std::string_view, int> m;
  m.reserve(64);
  std::vector<std::string> owners;
  owners.reserve(32);
  for (int i = 0; i < 32; ++i) {
    owners.push_back("user-" + std::to_string(i));
    m[std::string_view(owners.back())] = i;
  }
  for (int i = 0; i < 32; ++i) {
    ASSERT_NE(m.find(std::string_view(owners[i])), nullptr);
    EXPECT_EQ(*m.find(std::string_view(owners[i])), i);
  }
}

TEST(FlatHashMap, EraseBasics) {
  FlatHashMap<std::string, int> m;
  m["a"] = 1;
  m["b"] = 2;
  m["c"] = 3;
  EXPECT_EQ(m.erase("b"), 1u);
  EXPECT_EQ(m.erase("b"), 0u);
  EXPECT_EQ(m.erase("missing"), 0u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.find("b"), nullptr);
  ASSERT_NE(m.find("a"), nullptr);
  ASSERT_NE(m.find("c"), nullptr);
  FlatHashMap<int, int> empty;
  EXPECT_EQ(empty.erase(1), 0u);
}

TEST(FlatHashMap, EraseBackwardShiftFuzzAgainstStdMap) {
  // The demote/fault-in lifecycle: interleaved insert/erase/lookup must
  // keep every surviving key findable — backward-shift deletion must never
  // break a probe chain (the failure mode of naive "mark unused" erase).
  FlatHashMap<int, int> flat;
  std::map<int, int> ref;
  std::mt19937 rng(41);
  for (int i = 0; i < 20000; ++i) {
    const int k = int(rng() % 512);  // small key space forces collisions
    switch (rng() % 3) {
      case 0:
        flat[k] = i;
        ref[k] = i;
        break;
      case 1:
        EXPECT_EQ(flat.erase(k), ref.erase(k));
        break;
      default: {
        int* v = flat.find(k);
        auto it = ref.find(k);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v != nullptr) {
          EXPECT_EQ(*v, it->second);
        }
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    ASSERT_NE(flat.find(k), nullptr);
    EXPECT_EQ(*flat.find(k), v);
  }
}

}  // namespace
}  // namespace oak::util
