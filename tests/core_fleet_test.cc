#include <gtest/gtest.h>

#include "browser/browser.h"
#include "core/fleet.h"

namespace oak::core {
namespace {

class FleetFixture : public ::testing::Test {
 protected:
  FleetFixture() : universe_(net::NetworkConfig{.seed = 61, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    net::ServerConfig sick;
    sick.chronic_degradation = 20.0;
    universe_.dns().bind("bad.net", net.server(net.add_server(sick)).addr());
    universe_.dns().bind(
        "good.net", net.server(net.add_server(net::ServerConfig{})).addr());
    for (int i = 0; i < 4; ++i) {
      universe_.dns().bind(
          "p" + std::to_string(i) + ".net",
          net.server(net.add_server(net::ServerConfig{})).addr());
    }
    for (const char* host : {"alpha.com", "beta.com"}) {
      net::ServerId origin = net.add_server(net::ServerConfig{});
      universe_.dns().bind(host, net.server(origin).addr());
      page::SiteBuilder b(universe_, host, origin);
      b.add_direct("bad.net", "/x.js", html::RefKind::kScript, 12'000,
                   page::Category::kCdn);
      for (int i = 0; i < 4; ++i) {
        b.add_direct("p" + std::to_string(i) + ".net", "/x.js",
                     html::RefKind::kScript, 12'000, page::Category::kCdn);
      }
      sites_.push_back(b.finish());
    }
    universe_.store().replicate("http://bad.net/x.js", "http://good.net/x.js");
  }

  page::WebUniverse universe_;
  std::vector<page::Site> sites_;
};

TEST_F(FleetFixture, SitesAreCreatedOnDemandWithBaseConfig) {
  OakConfig base;
  base.detector.k = 3.0;
  Fleet fleet(universe_, base);
  EXPECT_FALSE(fleet.has("alpha.com"));
  ShardedOakServer& alpha = fleet.site("alpha.com");
  EXPECT_DOUBLE_EQ(alpha.config().detector.k, 3.0);
  EXPECT_EQ(alpha.shard_count(), ShardedOakServer::kDefaultShards);
  EXPECT_EQ(&alpha, &fleet.site("alpha.com"));  // idempotent
  EXPECT_EQ(fleet.size(), 1u);
  fleet.site("beta.com");
  EXPECT_EQ(fleet.hosts(), (std::vector<std::string>{"alpha.com", "beta.com"}));
  EXPECT_EQ(fleet.find("nope.com"), nullptr);
}

TEST_F(FleetFixture, ProfilesAreIsolatedPerSite) {
  Fleet fleet(universe_);
  for (const auto& site : sites_) {
    fleet.site(site.host)
        .add_rule(make_domain_rule("switch", "bad.net", {"good.net"}));
  }
  fleet.install_all();

  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser user(universe_, universe_.network().add_client({}), bc);
  // The user reports on alpha only.
  user.load(sites_[0].index_url(), 0.0);
  auto alpha2 = user.load(sites_[0].index_url(), 300.0);
  EXPECT_NE(alpha2.page_html.find("good.net"), std::string::npos);
  // beta, which shares the same sick provider, has learned nothing about
  // this user — per-site identity, exactly like per-site cookies.
  auto beta1 = user.load(sites_[1].index_url(), 600.0);
  EXPECT_NE(beta1.page_html.find("bad.net"), std::string::npos);
  EXPECT_EQ(fleet.find("alpha.com")->user_count(), 1u);
  EXPECT_EQ(fleet.find("beta.com")->user_count(), 1u);
}

TEST_F(FleetFixture, SummaryAndAuditAggregate) {
  Fleet fleet(universe_);
  for (const auto& site : sites_) {
    fleet.site(site.host)
        .add_rule(make_domain_rule("switch", "bad.net", {"good.net"}));
  }
  fleet.install_all();
  browser::BrowserConfig bc;
  bc.use_cache = false;
  for (int u = 0; u < 3; ++u) {
    browser::Browser b(universe_, universe_.network().add_client({}), bc);
    for (const auto& site : sites_) b.load(site.index_url(), u * 100.0);
  }
  auto summary = fleet.summary();
  EXPECT_EQ(summary.sites, 2u);
  EXPECT_EQ(summary.users, 6u);    // 3 users x 2 sites
  EXPECT_EQ(summary.reports, 6u);
  EXPECT_EQ(summary.rules, 2u);
  EXPECT_GT(summary.total_activations, 0u);

  auto audits = fleet.audit_all();
  ASSERT_EQ(audits.size(), 2u);
  EXPECT_EQ(audits.at("alpha.com").summary().users, 3u);
}

TEST_F(FleetFixture, FleetSnapshotRoundTrips) {
  auto build_fleet = [&](Fleet& fleet) {
    for (const auto& site : sites_) {
      fleet.site(site.host)
          .add_rule(make_domain_rule("switch", "bad.net", {"good.net"}));
    }
  };
  Fleet before(universe_);
  build_fleet(before);
  before.install_all();
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser user(universe_, universe_.network().add_client({}), bc);
  for (const auto& site : sites_) user.load(site.index_url(), 0.0);

  const std::string snapshot = before.export_state().dump();
  Fleet after(universe_);
  build_fleet(after);
  after.import_state(util::Json::parse(snapshot));
  EXPECT_EQ(after.summary().users, before.summary().users);
  EXPECT_EQ(after.find("alpha.com")->merged_decision_log().size(),
            before.find("alpha.com")->merged_decision_log().size());

  // Unknown hosts are rejected before anything is applied.
  Fleet partial(universe_);
  partial.site("alpha.com")
      .add_rule(make_domain_rule("switch", "bad.net", {"good.net"}));
  EXPECT_THROW(partial.import_state(util::Json::parse(snapshot)),
               util::JsonError);
  EXPECT_EQ(partial.find("alpha.com")->user_count(), 0u);
}

}  // namespace
}  // namespace oak::core
