// RequestParser under friendly and hostile input: framing strictness,
// incremental feeds, pipelining, and the cap → status mapping the fuzz
// harness (bench/wire_fuzz) later gates at scale.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "wire/parser.h"

namespace oak::wire {
namespace {

using State = RequestParser::State;

State feed_all(RequestParser& p, const std::string& bytes) {
  return p.feed(bytes);
}

TEST(WireParser, SimpleGetParsesAllFields) {
  RequestParser p;
  ASSERT_EQ(feed_all(p,
                     "GET /index.html?tab=2 HTTP/1.1\r\n"
                     "Host: Busy.COM:8080\r\n"
                     "Accept: */*\r\n\r\n"),
            State::kComplete);
  const WireRequest& r = p.request();
  EXPECT_EQ(r.method_text, "GET");
  ASSERT_TRUE(r.method.has_value());
  EXPECT_EQ(*r.method, http::Method::kGet);
  EXPECT_EQ(r.target, "/index.html?tab=2");
  EXPECT_EQ(r.path, "/index.html");
  EXPECT_EQ(r.query, "tab=2");
  EXPECT_EQ(r.host, "busy.com");  // lowercased, port stripped
  EXPECT_EQ(r.minor_version, 1);
  EXPECT_TRUE(r.keep_alive);
  EXPECT_EQ(r.body, "");
}

TEST(WireParser, ByteAtATimeFeedReachesSameResult) {
  const std::string wire =
      "POST /oak/report HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello";
  RequestParser p;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(p.feed(wire.substr(i, 1)), State::kNeedMore) << "at byte " << i;
  }
  ASSERT_EQ(p.feed(wire.substr(wire.size() - 1)), State::kComplete);
  EXPECT_EQ(p.request().body, "hello");
  EXPECT_EQ(*p.request().method, http::Method::kPost);
}

TEST(WireParser, PipelinedRequestsResetReparsesResidue) {
  RequestParser p;
  ASSERT_EQ(feed_all(p,
                     "GET /a HTTP/1.1\r\nHost: h\r\n\r\n"
                     "GET /b HTTP/1.1\r\nHost: h\r\n\r\n"),
            State::kComplete);
  EXPECT_EQ(p.request().path, "/a");
  p.reset();
  ASSERT_EQ(p.state(), State::kComplete);  // residue re-parsed immediately
  EXPECT_EQ(p.request().path, "/b");
  p.reset();
  EXPECT_EQ(p.state(), State::kNeedMore);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(WireParser, UnknownMethodTokenCompletesWithoutEnum) {
  RequestParser p;
  ASSERT_EQ(feed_all(p, "BREW /pot HTTP/1.1\r\nHost: h\r\n\r\n"),
            State::kComplete);
  EXPECT_FALSE(p.request().method.has_value());  // router answers 405
  EXPECT_EQ(p.request().method_text, "BREW");
}

TEST(WireParser, MethodsAreCaseSensitive) {
  RequestParser p;
  ASSERT_EQ(feed_all(p, "get / HTTP/1.1\r\nHost: h\r\n\r\n"),
            State::kComplete);
  EXPECT_FALSE(p.request().method.has_value());
}

TEST(WireParser, KeepAliveDefaultsByVersionAndConnectionOverrides) {
  struct Case {
    const char* wire;
    bool keep;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\nHost: h\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nHost: h\r\nConnection: x, Close\r\n\r\n", false},
  };
  for (const Case& c : cases) {
    RequestParser p;
    ASSERT_EQ(feed_all(p, c.wire), State::kComplete) << c.wire;
    EXPECT_EQ(p.request().keep_alive, c.keep) << c.wire;
  }
}

// --- Malformed framing: every case must land in kError with the right
// status, and the parser must stay terminal afterwards.

struct BadCase {
  const char* label;
  std::string wire;
  int status;
};

class WireParserBad : public ::testing::TestWithParam<BadCase> {};

TEST_P(WireParserBad, RejectsWithStatus) {
  const BadCase& c = GetParam();
  RequestParser p;
  ASSERT_EQ(p.feed(c.wire), State::kError) << c.label;
  EXPECT_EQ(p.error().status, c.status) << c.label;
  // Terminal: further bytes cannot resurrect the connection.
  EXPECT_EQ(p.feed("GET / HTTP/1.1\r\nHost: h\r\n\r\n"), State::kError);
}

INSTANTIATE_TEST_SUITE_P(
    Framing, WireParserBad,
    ::testing::Values(
        BadCase{"bare lf", "GET / HTTP/1.1\nHost: h\r\n\r\n", 400},
        BadCase{"stray cr", "GET / HTTP/1.1\r\nHo\rst: h\r\n\r\n", 400},
        BadCase{"obs fold", "GET / HTTP/1.1\r\nHost: h\r\n folded\r\n\r\n",
                400},
        BadCase{"space before colon",
                "GET / HTTP/1.1\r\nHost : h\r\n\r\n", 400},
        BadCase{"no colon", "GET / HTTP/1.1\r\nHost h\r\n\r\n", 400},
        BadCase{"three-part line missing",
                "GET /index.html\r\nHost: h\r\n\r\n", 400},
        BadCase{"double space", "GET  / HTTP/1.1\r\nHost: h\r\n\r\n", 400},
        BadCase{"relative target", "GET index HTTP/1.1\r\nHost: h\r\n\r\n",
                400},
        BadCase{"http2 version", "GET / HTTP/2.0\r\nHost: h\r\n\r\n", 400},
        BadCase{"http09 version", "GET / HTTP/0.9\r\nHost: h\r\n\r\n", 400},
        BadCase{"missing host", "GET / HTTP/1.1\r\n\r\n", 400},
        BadCase{"duplicate host",
                "GET / HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\n", 400},
        BadCase{"bad host port", "GET / HTTP/1.1\r\nHost: a:http\r\n\r\n",
                400},
        BadCase{"control in value",
                std::string("GET / HTTP/1.1\r\nHost: h\r\nX: a\x01b\r\n\r\n"),
                400},
        BadCase{"nul in target",
                std::string("GET /\0x HTTP/1.1\r\nHost: h\r\n\r\n", 29), 400}),
    [](const auto& info) {
      std::string name = info.param.label;
      for (char& ch : name) {
        if (ch == ' ' || ch == '-') ch = '_';
      }
      return name;
    });

INSTANTIATE_TEST_SUITE_P(
    Smuggling, WireParserBad,
    ::testing::Values(
        BadCase{"transfer encoding chunked",
                "POST /r HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: "
                "chunked\r\n\r\n0\r\n\r\n",
                400},
        BadCase{"te plus cl",
                "POST /r HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: "
                "chunked\r\nContent-Length: 4\r\n\r\nbody",
                400},
        BadCase{"duplicate cl",
                "POST /r HTTP/1.1\r\nHost: h\r\nContent-Length: "
                "4\r\nContent-Length: 4\r\n\r\nbody",
                400},
        BadCase{"signed cl",
                "POST /r HTTP/1.1\r\nHost: h\r\nContent-Length: +4\r\n\r\n",
                400},
        BadCase{"comma cl",
                "POST /r HTTP/1.1\r\nHost: h\r\nContent-Length: 4,4\r\n\r\n",
                400},
        BadCase{"hex cl",
                "POST /r HTTP/1.1\r\nHost: h\r\nContent-Length: 0x4\r\n\r\n",
                400},
        BadCase{"overflow cl",
                "POST /r HTTP/1.1\r\nHost: h\r\nContent-Length: "
                "99999999999999999999999\r\n\r\n",
                400}),
    [](const auto& info) {
      std::string name = info.param.label;
      for (char& ch : name) {
        if (ch == ' ' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(WireParser, CapRequestLine414) {
  ParserLimits lim;
  lim.max_request_line = 64;
  RequestParser p(lim);
  // The cap must fire on the unterminated prefix — no CRLF ever arrives.
  EXPECT_EQ(p.feed("GET /" + std::string(128, 'a')), State::kError);
  EXPECT_EQ(p.error().status, 414);
}

TEST(WireParser, CapHeaderBytes431) {
  ParserLimits lim;
  lim.max_header_bytes = 128;
  RequestParser p(lim);
  ASSERT_EQ(p.feed("GET / HTTP/1.1\r\n"), State::kNeedMore);
  EXPECT_EQ(p.feed("X: " + std::string(256, 'v')), State::kError);
  EXPECT_EQ(p.error().status, 431);
}

TEST(WireParser, CapHeaderCount431) {
  ParserLimits lim;
  lim.max_header_count = 4;
  RequestParser p(lim);
  std::string wire = "GET / HTTP/1.1\r\nHost: h\r\n";
  for (int i = 0; i < 8; ++i) {
    wire += "X" + std::to_string(i) + ": v\r\n";
  }
  wire += "\r\n";
  ASSERT_EQ(p.feed(wire), State::kError);
  EXPECT_EQ(p.error().status, 431);
}

TEST(WireParser, CapBody413) {
  ParserLimits lim;
  lim.max_body_bytes = 16;
  RequestParser p(lim);
  ASSERT_EQ(
      p.feed("POST /r HTTP/1.1\r\nHost: h\r\nContent-Length: 1000\r\n\r\n"),
      State::kError);
  EXPECT_EQ(p.error().status, 413);
}

TEST(WireParser, LeadingEmptyLinesSkipped) {
  RequestParser p;
  ASSERT_EQ(p.feed("\r\n\r\nGET / HTTP/1.1\r\nHost: h\r\n\r\n"),
            State::kComplete);
  EXPECT_EQ(p.request().path, "/");
}

TEST(WireParser, SplitHeaderLineAcrossFeeds) {
  // A header split mid-name across feeds must parse identically.
  RequestParser p;
  ASSERT_EQ(p.feed("GET / HTTP/1.1\r\nHo"), State::kNeedMore);
  ASSERT_EQ(p.feed("st: busy.com\r\nX-Lon"), State::kNeedMore);
  ASSERT_EQ(p.feed("g: v\r\n\r\n"), State::kComplete);
  EXPECT_EQ(p.request().host, "busy.com");
  EXPECT_EQ(p.request().headers.get("X-Long").value_or(""), "v");
}

TEST(WireParser, ToHttpMapsMethodUrlAndBody) {
  RequestParser p;
  ASSERT_EQ(p.feed("POST /oak/report HTTP/1.1\r\nHost: busy.com\r\n"
                   "Content-Length: 2\r\n\r\nok"),
            State::kComplete);
  http::Request req = p.request().to_http("10.1.2.3");
  EXPECT_EQ(req.method, http::Method::kPost);
  EXPECT_EQ(req.url.host, "busy.com");
  EXPECT_EQ(req.url.path, "/oak/report");
  EXPECT_EQ(req.body, "ok");
  EXPECT_EQ(req.client_ip, "10.1.2.3");
}

TEST(WireParser, BufferedCountsResidue) {
  RequestParser p;
  ASSERT_EQ(p.feed("GET / HTTP/1.1\r\nHost: h\r\n\r\nGET"),
            State::kComplete);
  EXPECT_EQ(p.buffered(), 3u);
}

}  // namespace
}  // namespace oak::wire
