#include <gtest/gtest.h>

#include <set>

#include "page/corpus.h"
#include "util/stats.h"
#include "util/url.h"

namespace oak::page {
namespace {

// One shared small corpus: construction is the expensive part.
const Corpus& small_corpus() {
  static Corpus* corpus = [] {
    CorpusConfig cfg;
    cfg.seed = 123;
    cfg.num_sites = 40;
    cfg.num_providers = 80;
    return new Corpus(cfg);
  }();
  return *corpus;
}

TEST(Corpus, BuildsRequestedCounts) {
  const Corpus& c = small_corpus();
  EXPECT_EQ(c.sites().size(), 40u);
  EXPECT_GE(c.providers().size(), 80u);
}

TEST(Corpus, PaperSitesPresentWithH1H2Structure) {
  const Corpus& c = small_corpus();
  const Site* youtube = c.site_by_host("youtube.com");
  ASSERT_NE(youtube, nullptr);
  EXPECT_GT(youtube->external_host_count(), 5u);
  EXPECT_LT(youtube->external_host_count(), 15u);
  const Site* flipkart = c.site_by_host("flipkart.com");
  ASSERT_NE(flipkart, nullptr);
  EXPECT_GT(flipkart->external_host_count(), 15u);
  EXPECT_EQ(c.site_by_host("nonexistent.example"), nullptr);
}

TEST(Corpus, EveryReferencedHostResolves) {
  const Corpus& c = small_corpus();
  for (const auto& site : c.sites()) {
    EXPECT_TRUE(c.universe().dns().resolve(site.host)) << site.host;
    for (const auto& hu : site.external_hosts) {
      EXPECT_TRUE(c.universe().dns().resolve(hu.host)) << hu.host;
    }
  }
}

TEST(Corpus, EveryObjectUrlBacked) {
  const Corpus& c = small_corpus();
  for (const auto& site : c.sites()) {
    EXPECT_TRUE(c.universe().store().has(site.index_url()));
    for (const auto& hu : site.external_hosts) {
      for (const auto& url : hu.object_urls) {
        EXPECT_TRUE(c.universe().store().has(url)) << url;
      }
    }
  }
}

TEST(Corpus, ExternalFractionCentersNearPaperMedian) {
  // Fig. 1: median external-object fraction ~= 0.75.
  const Corpus& c = small_corpus();
  std::vector<double> fracs;
  for (const auto& site : c.sites()) {
    const double ext = static_cast<double>(site.external_object_count());
    const double total = ext + static_cast<double>(site.origin_object_count);
    if (total > 0) fracs.push_back(ext / total);
  }
  const double med = util::median(fracs);
  EXPECT_GT(med, 0.55);
  EXPECT_LT(med, 0.9);
}

TEST(Corpus, TierMixRoughlyMatchesFig8Targets) {
  const Corpus& c = small_corpus();
  std::size_t direct = 0, inline_t = 0, script = 0, hidden = 0;
  for (const auto& site : c.sites()) {
    for (const auto& hu : site.external_hosts) {
      switch (hu.tier) {
        case RefTier::kDirect: ++direct; break;
        case RefTier::kInlineScript: ++inline_t; break;
        case RefTier::kViaExternalScript: ++script; break;
        case RefTier::kHidden: ++hidden; break;
      }
    }
  }
  const double total = double(direct + inline_t + script + hidden);
  ASSERT_GT(total, 0);
  // Wide tolerances: per-site jitter is intentional.
  EXPECT_NEAR(direct / total, 0.45, 0.20);
  EXPECT_GT(inline_t / total, 0.05);
  EXPECT_GT(script / total, 0.05);
  EXPECT_GT(hidden / total, 0.05);
}

TEST(Corpus, ProvidersCarryCategoriesAndDomains) {
  const Corpus& c = small_corpus();
  EXPECT_EQ(c.category_of("stats.g.doubleclick.net"), Category::kAds);
  EXPECT_EQ(c.category_of("fonts.googleapis.com"), Category::kFonts);
  EXPECT_EQ(c.category_of("unknown.example"), Category::kOrigin);
  const Provider* p = c.provider_of("insights.hotjar.com");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->category, Category::kAnalytics);
  EXPECT_EQ(c.provider_of("youtube.com"), nullptr);  // site, not provider
}

TEST(Corpus, SomeProvidersAreUnhealthy) {
  const Corpus& c = small_corpus();
  std::size_t unhealthy = 0;
  for (const auto& p : c.providers()) {
    if (p.chronically_degraded || p.has_blind_spot) ++unhealthy;
  }
  // Failure draws are rank-scaled and rare, but a provider universe with
  // nobody sick would make the outlier survey vacuous.
  EXPECT_GT(unhealthy, 0u);
  EXPECT_LT(unhealthy, c.providers().size() / 2);
}

TEST(Corpus, DeterministicForSameSeed) {
  CorpusConfig cfg;
  cfg.seed = 9;
  cfg.num_sites = 12;
  cfg.num_providers = 50;
  Corpus a(cfg), b(cfg);
  ASSERT_EQ(a.sites().size(), b.sites().size());
  for (std::size_t i = 0; i < a.sites().size(); ++i) {
    EXPECT_EQ(a.sites()[i].host, b.sites()[i].host);
    EXPECT_EQ(a.sites()[i].external_host_count(),
              b.sites()[i].external_host_count());
    EXPECT_EQ(a.universe().store().find(a.sites()[i].index_url())->body,
              b.universe().store().find(b.sites()[i].index_url())->body);
  }
}

TEST(Corpus, DifferentSeedsDiffer) {
  CorpusConfig cfg;
  cfg.num_sites = 12;
  cfg.num_providers = 50;
  cfg.seed = 1;
  Corpus a(cfg);
  cfg.seed = 2;
  Corpus b(cfg);
  bool any_diff = false;
  for (std::size_t i = 10; i < a.sites().size(); ++i) {  // skip paper sites
    if (a.sites()[i].external_host_count() !=
        b.sites()[i].external_host_count()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Corpus, ExternalHostsAreTrulyExternal) {
  const Corpus& c = small_corpus();
  for (const auto& site : c.sites()) {
    for (const auto& hu : site.external_hosts) {
      EXPECT_FALSE(util::same_site(hu.host, site.host))
          << hu.host << " vs " << site.host;
    }
  }
}

}  // namespace
}  // namespace oak::page
