#include <gtest/gtest.h>

#include "http/cache.h"
#include "http/cookies.h"
#include "http/headers.h"
#include "http/message.h"

namespace oak::http {
namespace {

TEST(Headers, CaseInsensitiveGet) {
  Headers h;
  h.add("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(h.get("Other"));
  EXPECT_TRUE(h.has("Content-type"));
}

TEST(Headers, AddKeepsDuplicatesSetReplaces) {
  Headers h;
  h.add("X-Oak-Alias", "a b");
  h.add("X-Oak-Alias", "c d");
  EXPECT_EQ(h.get_all("x-oak-alias").size(), 2u);
  h.set("X-Oak-Alias", "only");
  EXPECT_EQ(h.get_all("X-Oak-Alias"), (std::vector<std::string>{"only"}));
}

TEST(Headers, RemoveAndWireSize) {
  Headers h;
  h.add("A", "1");
  h.add("B", "22");
  EXPECT_EQ(h.wire_size(), (1 + 2 + 1 + 2) + (1 + 2 + 2 + 2));
  h.remove("a");
  EXPECT_EQ(h.size(), 1u);
}

TEST(Cookies, ParseHeader) {
  auto jar = parse_cookie_header("a=1; b = 2 ;c=three");
  EXPECT_EQ(jar["a"], "1");
  EXPECT_EQ(jar["b"], "2");
  EXPECT_EQ(jar["c"], "three");
  EXPECT_TRUE(parse_cookie_header("garbage").empty());
}

TEST(Cookies, RoundTrip) {
  std::map<std::string, std::string> jar = {{"x", "1"}, {"y", "2"}};
  EXPECT_EQ(parse_cookie_header(to_cookie_header(jar)), jar);
}

TEST(CookieJar, IngestAndAttachPerSite) {
  CookieJar jar;
  Headers resp;
  resp.add("Set-Cookie", "oak_uid=u42; Path=/");
  jar.ingest("site.com", resp);
  EXPECT_EQ(jar.get("site.com", "oak_uid"), "u42");
  EXPECT_FALSE(jar.get("other.com", "oak_uid"));

  Headers req;
  jar.attach("site.com", req);
  EXPECT_EQ(req.get("Cookie"), "oak_uid=u42");
  Headers req2;
  jar.attach("other.com", req2);
  EXPECT_FALSE(req2.has("Cookie"));
}

// --- Header hardening (wire front-end backstop): caps and the
// response-splitting byte classes are enforced by the collection itself.

struct HeaderRejectCase {
  const char* label;
  const char* name;
  const char* value;
  bool accepted;
};

TEST(HeadersHardening, TableDrivenValidation) {
  const HeaderRejectCase cases[] = {
      {"plain", "X-A", "v", true},
      {"empty value ok", "X-A", "", true},
      {"utf8 value ok", "X-A", "\xc3\xa9", true},
      {"empty name", "", "v", false},
      {"cr in value", "X-A", "a\rb", false},
      {"lf in value", "X-A", "a\nb", false},
      {"crlf injection", "X-A", "a\r\nSet-Cookie: evil=1", false},
      {"nul in value", "X-A", "placeholder", false},
      {"cr in name", "X\rA", "v", false},
      {"lf in name", "X\nA", "v", false},
  };
  for (const auto& c : cases) {
    Headers h;
    // Re-materialize the NUL case (c-string truncates it).
    std::string value = c.value;
    if (std::string(c.label) == "nul in value") value = std::string("a\0b", 3);
    EXPECT_EQ(h.add(c.name, value), c.accepted) << c.label;
    EXPECT_EQ(h.set(c.name, value), c.accepted) << c.label << " (set)";
    EXPECT_EQ(h.size(), c.accepted ? 1u : 0u) << c.label;
  }
}

TEST(HeadersHardening, MaxCountCap) {
  Headers h;
  for (std::size_t i = 0; i < Headers::kMaxCount; ++i) {
    ASSERT_TRUE(h.add("X-N", "v")) << i;
  }
  EXPECT_FALSE(h.add("X-Over", "v"));
  EXPECT_EQ(h.size(), Headers::kMaxCount);
  // set() frees a slot first, so replacing still works at the cap.
  EXPECT_TRUE(h.set("X-N", "replaced"));
}

TEST(HeadersHardening, MaxWireBytesCap) {
  Headers h;
  const std::string big(Headers::kMaxWireBytes / 4, 'x');
  std::size_t accepted = 0;
  while (h.add("X-Big", big)) ++accepted;
  EXPECT_GT(accepted, 0u);
  EXPECT_LE(h.wire_size(), Headers::kMaxWireBytes);
  // A small header that still fits is accepted after a big one is refused.
  EXPECT_TRUE(h.add("X-Small", "v"));
}

TEST(HeadersHardening, WireSizeIncrementalMatchesDefinition) {
  Headers h;
  h.add("A", "1");
  h.add("Bee", "value");
  std::size_t expect = (1 + 2 + 1 + 2) + (3 + 2 + 5 + 2);
  EXPECT_EQ(h.wire_size(), expect);
  h.remove("a");
  EXPECT_EQ(h.wire_size(), 3 + 2 + 5 + 2u);
  h.set("Bee", "v");
  EXPECT_EQ(h.wire_size(), 3 + 2 + 1 + 2u);
}

// --- Method: exhaustive round-trip, no "?" fallback.

TEST(Method, RoundTripAllRouted) {
  const Method all[] = {Method::kGet, Method::kHead, Method::kPost,
                        Method::kPut, Method::kDelete};
  for (Method m : all) {
    auto parsed = parse_method(to_string(m));
    ASSERT_TRUE(parsed) << to_string(m);
    EXPECT_EQ(*parsed, m);
    // Every routed method is advertised in the Allow header.
    EXPECT_NE(std::string(kAllowedMethods).find(to_string(m)),
              std::string::npos);
  }
}

TEST(Method, ParseRejectsUnknownAndCase) {
  EXPECT_FALSE(parse_method("BREW"));
  EXPECT_FALSE(parse_method("get"));   // methods are case-sensitive
  EXPECT_FALSE(parse_method("GETX"));
  EXPECT_FALSE(parse_method(""));
}

TEST(Response, JsonFactoryAndReasons) {
  Response r = Response::json("{\"ok\":true}", 201);
  EXPECT_EQ(r.status, 201);
  EXPECT_EQ(r.headers.get("Content-Type"), "application/json");
  EXPECT_EQ(std::string(status_reason(200)), "OK");
  EXPECT_EQ(std::string(status_reason(405)), "Method Not Allowed");
  EXPECT_EQ(std::string(status_reason(431)),
            "Request Header Fields Too Large");
  EXPECT_EQ(std::string(status_reason(299)), "Status");
}

// --- Cookie edge cases (src/http/cookies.cc): hostile or degenerate
// fragments must parse to something sane and round-trip stably.

TEST(CookiesEdge, EmptyNamesAndFragments) {
  // "=v" has an empty name — dropped; "a=" keeps an empty value.
  auto jar = parse_cookie_header("=v; a=; ; ;;");
  EXPECT_EQ(jar.size(), 1u);
  EXPECT_EQ(jar.at("a"), "");
  EXPECT_TRUE(parse_cookie_header("").empty());
  EXPECT_TRUE(parse_cookie_header("   ").empty());
  EXPECT_TRUE(parse_cookie_header(";;;").empty());
}

TEST(CookiesEdge, EqualsInValueKeptVerbatim) {
  auto jar = parse_cookie_header("tok=a=b=c; b64=Zm9vPQ==");
  EXPECT_EQ(jar.at("tok"), "a=b=c");
  EXPECT_EQ(jar.at("b64"), "Zm9vPQ==");
}

TEST(CookiesEdge, AttributeOnlyFragmentsIgnored) {
  // Attribute words without '=' ("Secure", "HttpOnly") carry no pair.
  auto jar = parse_cookie_header("Secure; HttpOnly; a=1");
  EXPECT_EQ(jar.size(), 1u);
  EXPECT_EQ(jar.at("a"), "1");
}

TEST(CookiesEdge, OversizedHeaderStillTerminates) {
  // A pathological jar-sized header parses without quadratic blowup or
  // crash; spot-check both ends.
  std::string big;
  for (int i = 0; i < 2000; ++i) {
    big += "k" + std::to_string(i) + "=" + std::string(16, 'v') + "; ";
  }
  auto jar = parse_cookie_header(big);
  EXPECT_EQ(jar.size(), 2000u);
  EXPECT_EQ(jar.at("k0"), std::string(16, 'v'));
  EXPECT_EQ(jar.at("k1999"), std::string(16, 'v'));
}

TEST(CookiesEdge, RoundTripStability) {
  // parse(serialize(parse(x))) == parse(x) for messy inputs.
  const char* inputs[] = {
      "a=1; b = 2 ;c=three",
      "tok=a=b=c; z=",
      "Secure; a=%20%3B; HttpOnly",
  };
  for (const char* in : inputs) {
    auto once = parse_cookie_header(in);
    auto twice = parse_cookie_header(to_cookie_header(once));
    EXPECT_EQ(once, twice) << in;
  }
}

TEST(CookieJarEdge, IngestSkipsNamelessSetCookie) {
  CookieJar jar;
  Headers resp;
  resp.add("Set-Cookie", "=orphan; Path=/");
  resp.add("Set-Cookie", "");
  resp.add("Set-Cookie", "ok=yes");
  jar.ingest("site.com", resp);
  EXPECT_FALSE(jar.get("site.com", ""));
  EXPECT_EQ(jar.get("site.com", "ok"), "yes");
}

TEST(Request, Factories) {
  Request g = Request::get("http://a.com/x");
  EXPECT_EQ(g.method, Method::kGet);
  EXPECT_EQ(g.url.host, "a.com");
  Request p = Request::post("http://a.com/oak/report", "{}");
  EXPECT_EQ(p.method, Method::kPost);
  EXPECT_EQ(p.body, "{}");
  EXPECT_EQ(p.headers.get("Content-Type"), "application/json");
  EXPECT_THROW(Request::get("bogus"), std::invalid_argument);
}

TEST(Response, Factories) {
  EXPECT_EQ(Response::not_found().status, 404);
  EXPECT_FALSE(Response::not_found().ok());
  Response h = Response::html("<html/>");
  EXPECT_TRUE(h.ok());
  EXPECT_EQ(h.headers.get("Content-Type"), "text/html");
}

TEST(BrowserCache, StoreLookupFreshness) {
  BrowserCache cache;
  cache.store("http://a.com/x.png", 1000, /*now=*/100.0, /*max_age=*/60.0);
  EXPECT_TRUE(cache.lookup("http://a.com/x.png", 120.0));
  EXPECT_FALSE(cache.lookup("http://a.com/x.png", 161.0));  // expired
  EXPECT_FALSE(cache.lookup("http://a.com/other.png", 120.0));
}

TEST(BrowserCache, UncacheableNeverStored) {
  BrowserCache cache;
  cache.store("http://a.com/x", 10, 0.0, 0.0);
  EXPECT_FALSE(cache.lookup("http://a.com/x", 0.0));
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(BrowserCache, UrlAliasServesRewrittenUrl) {
  // The §4.3 pathological case: a type-2 rewrite must not defeat the cache.
  BrowserCache cache;
  cache.store("http://s1.com/jquery.js", 30000, 0.0, 600.0);
  cache.add_alias("http://s2.net/jquery.js", "http://s1.com/jquery.js");
  auto hit = cache.lookup("http://s2.net/jquery.js", 10.0);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->size, 30000u);
  // Alias does not outlive the canonical entry's freshness.
  EXPECT_FALSE(cache.lookup("http://s2.net/jquery.js", 700.0));
}

TEST(BrowserCache, HostAliasMapsWholeDomain) {
  BrowserCache cache;
  cache.store("http://cdn.a.com/img/1.png", 5, 0.0, 600.0);
  cache.add_host_alias("na.mirror.cdn.a.com", "cdn.a.com");
  EXPECT_TRUE(cache.lookup("http://na.mirror.cdn.a.com/img/1.png", 1.0));
  EXPECT_FALSE(cache.lookup("http://na.mirror.cdn.a.com/img/2.png", 1.0));
}

TEST(BrowserCache, SelfAliasIgnoredAndClear) {
  BrowserCache cache;
  cache.add_alias("http://x/1", "http://x/1");
  EXPECT_EQ(cache.alias_count(), 0u);
  cache.store("http://x/1", 1, 0, 60);
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(cache.lookup("http://x/1", 0));
}

}  // namespace
}  // namespace oak::http
