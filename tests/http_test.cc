#include <gtest/gtest.h>

#include "http/cache.h"
#include "http/cookies.h"
#include "http/headers.h"
#include "http/message.h"

namespace oak::http {
namespace {

TEST(Headers, CaseInsensitiveGet) {
  Headers h;
  h.add("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(h.get("Other"));
  EXPECT_TRUE(h.has("Content-type"));
}

TEST(Headers, AddKeepsDuplicatesSetReplaces) {
  Headers h;
  h.add("X-Oak-Alias", "a b");
  h.add("X-Oak-Alias", "c d");
  EXPECT_EQ(h.get_all("x-oak-alias").size(), 2u);
  h.set("X-Oak-Alias", "only");
  EXPECT_EQ(h.get_all("X-Oak-Alias"), (std::vector<std::string>{"only"}));
}

TEST(Headers, RemoveAndWireSize) {
  Headers h;
  h.add("A", "1");
  h.add("B", "22");
  EXPECT_EQ(h.wire_size(), (1 + 2 + 1 + 2) + (1 + 2 + 2 + 2));
  h.remove("a");
  EXPECT_EQ(h.size(), 1u);
}

TEST(Cookies, ParseHeader) {
  auto jar = parse_cookie_header("a=1; b = 2 ;c=three");
  EXPECT_EQ(jar["a"], "1");
  EXPECT_EQ(jar["b"], "2");
  EXPECT_EQ(jar["c"], "three");
  EXPECT_TRUE(parse_cookie_header("garbage").empty());
}

TEST(Cookies, RoundTrip) {
  std::map<std::string, std::string> jar = {{"x", "1"}, {"y", "2"}};
  EXPECT_EQ(parse_cookie_header(to_cookie_header(jar)), jar);
}

TEST(CookieJar, IngestAndAttachPerSite) {
  CookieJar jar;
  Headers resp;
  resp.add("Set-Cookie", "oak_uid=u42; Path=/");
  jar.ingest("site.com", resp);
  EXPECT_EQ(jar.get("site.com", "oak_uid"), "u42");
  EXPECT_FALSE(jar.get("other.com", "oak_uid"));

  Headers req;
  jar.attach("site.com", req);
  EXPECT_EQ(req.get("Cookie"), "oak_uid=u42");
  Headers req2;
  jar.attach("other.com", req2);
  EXPECT_FALSE(req2.has("Cookie"));
}

TEST(Request, Factories) {
  Request g = Request::get("http://a.com/x");
  EXPECT_EQ(g.method, Method::kGet);
  EXPECT_EQ(g.url.host, "a.com");
  Request p = Request::post("http://a.com/oak/report", "{}");
  EXPECT_EQ(p.method, Method::kPost);
  EXPECT_EQ(p.body, "{}");
  EXPECT_EQ(p.headers.get("Content-Type"), "application/json");
  EXPECT_THROW(Request::get("bogus"), std::invalid_argument);
}

TEST(Response, Factories) {
  EXPECT_EQ(Response::not_found().status, 404);
  EXPECT_FALSE(Response::not_found().ok());
  Response h = Response::html("<html/>");
  EXPECT_TRUE(h.ok());
  EXPECT_EQ(h.headers.get("Content-Type"), "text/html");
}

TEST(BrowserCache, StoreLookupFreshness) {
  BrowserCache cache;
  cache.store("http://a.com/x.png", 1000, /*now=*/100.0, /*max_age=*/60.0);
  EXPECT_TRUE(cache.lookup("http://a.com/x.png", 120.0));
  EXPECT_FALSE(cache.lookup("http://a.com/x.png", 161.0));  // expired
  EXPECT_FALSE(cache.lookup("http://a.com/other.png", 120.0));
}

TEST(BrowserCache, UncacheableNeverStored) {
  BrowserCache cache;
  cache.store("http://a.com/x", 10, 0.0, 0.0);
  EXPECT_FALSE(cache.lookup("http://a.com/x", 0.0));
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(BrowserCache, UrlAliasServesRewrittenUrl) {
  // The §4.3 pathological case: a type-2 rewrite must not defeat the cache.
  BrowserCache cache;
  cache.store("http://s1.com/jquery.js", 30000, 0.0, 600.0);
  cache.add_alias("http://s2.net/jquery.js", "http://s1.com/jquery.js");
  auto hit = cache.lookup("http://s2.net/jquery.js", 10.0);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->size, 30000u);
  // Alias does not outlive the canonical entry's freshness.
  EXPECT_FALSE(cache.lookup("http://s2.net/jquery.js", 700.0));
}

TEST(BrowserCache, HostAliasMapsWholeDomain) {
  BrowserCache cache;
  cache.store("http://cdn.a.com/img/1.png", 5, 0.0, 600.0);
  cache.add_host_alias("na.mirror.cdn.a.com", "cdn.a.com");
  EXPECT_TRUE(cache.lookup("http://na.mirror.cdn.a.com/img/1.png", 1.0));
  EXPECT_FALSE(cache.lookup("http://na.mirror.cdn.a.com/img/2.png", 1.0));
}

TEST(BrowserCache, SelfAliasIgnoredAndClear) {
  BrowserCache cache;
  cache.add_alias("http://x/1", "http://x/1");
  EXPECT_EQ(cache.alias_count(), 0u);
  cache.store("http://x/1", 1, 0, 60);
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(cache.lookup("http://x/1", 0));
}

}  // namespace
}  // namespace oak::http
