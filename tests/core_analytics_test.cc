#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/analytics.h"
#include "http/cookies.h"

namespace oak::core {
namespace {

// Reuse the oak-server fixture shape: origin + 3 externals + alt.
class AnalyticsFixture : public ::testing::Test {
 protected:
  AnalyticsFixture()
      : universe_(net::NetworkConfig{.seed = 5, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("site.com", net.server(origin_).addr());
    for (int i = 0; i < 3; ++i) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      const std::string host = "ext" + std::to_string(i) + ".net";
      universe_.dns().bind(host, net.server(sid).addr());
      hosts_.push_back(host);
      ips_.push_back(net.server(sid).addr().to_string());
    }
    universe_.dns().bind("alt.net",
                         net.server(net.add_server(net::ServerConfig{})).addr());

    page::SiteBuilder b(universe_, "site.com", origin_);
    for (const auto& h : hosts_) {
      b.add_direct(h, "/o.js", html::RefKind::kScript, 9'000,
                   page::Category::kCdn);
    }
    site_ = b.finish();
    universe_.store().replicate("http://" + hosts_[0] + "/o.js",
                                "http://alt.net/o.js");

    OakConfig cfg;
    cfg.detector.min_population = 4;
    oak_ = std::make_unique<OakServer>(universe_, "site.com", cfg);
    rule0_ = oak_->add_rule(make_domain_rule("r0", hosts_[0], {"alt.net"}));
    rule1_ = oak_->add_rule(make_domain_rule("r1", hosts_[1], {"alt.net"}));
  }

  browser::PerfReport report_with_slow(std::size_t slow_index) {
    browser::PerfReport r;
    r.entries.push_back(
        {site_.index_url(), "site.com", "10.0.0.1", 4000, 0, 0.09});
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      r.entries.push_back({"http://" + hosts_[i] + "/o.js", hosts_[i],
                           ips_[i], 9'000, 0.1,
                           i == slow_index ? 4.0 : 0.10 + 0.01 * double(i)});
    }
    return r;
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::vector<std::string> hosts_;
  std::vector<std::string> ips_;
  page::Site site_;
  std::unique_ptr<OakServer> oak_;
  int rule0_ = 0, rule1_ = 0;
};

TEST_F(AnalyticsFixture, EmptyServerProducesZeroedAudit) {
  SiteAnalytics a(*oak_);
  EXPECT_EQ(a.summary().users, 0u);
  EXPECT_EQ(a.summary().rules, 2u);
  EXPECT_EQ(a.summary().rules_ever_activated, 0u);
  ASSERT_EQ(a.rules().size(), 2u);
  EXPECT_EQ(a.rules()[0].activations, 0u);
  EXPECT_TRUE(a.violators().empty());
  // Never-activated rules count as individual.
  EXPECT_DOUBLE_EQ(a.summary().individual_rule_fraction, 1.0);
}

TEST_F(AnalyticsFixture, AggregatesActivationsPerRuleAndUser) {
  // Three users hit ext0; one of them also hits ext1.
  oak_->analyze("u1", report_with_slow(0), 0.0);
  oak_->analyze("u2", report_with_slow(0), 1.0);
  oak_->analyze("u3", report_with_slow(0), 2.0);
  oak_->analyze("u3", report_with_slow(1), 3.0);

  SiteAnalytics a(*oak_);
  EXPECT_EQ(a.summary().users, 3u);
  EXPECT_EQ(a.summary().reports, 4u);
  EXPECT_EQ(a.summary().rules_ever_activated, 2u);
  EXPECT_EQ(a.summary().total_activations, 4u);

  const RuleStats* r0 = a.rule(rule0_);
  ASSERT_NE(r0, nullptr);
  EXPECT_EQ(r0->activations, 3u);
  EXPECT_EQ(r0->distinct_users, 3u);
  EXPECT_DOUBLE_EQ(r0->user_fraction, 1.0);
  EXPECT_TRUE(r0->is_common());
  EXPECT_EQ(r0->currently_active, 3u);
  EXPECT_GT(r0->worst_distance, 0.0);

  const RuleStats* r1 = a.rule(rule1_);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->distinct_users, 1u);
  EXPECT_NEAR(r1->user_fraction, 1.0 / 3.0, 1e-9);

  // Sorted most-activated first.
  EXPECT_EQ(a.rules()[0].rule_id, rule0_);
  EXPECT_EQ(a.rule(999), nullptr);
}

TEST_F(AnalyticsFixture, ViolatorsRankedByBlame) {
  oak_->analyze("u1", report_with_slow(0), 0.0);
  oak_->analyze("u2", report_with_slow(0), 1.0);
  oak_->analyze("u2", report_with_slow(1), 2.0);
  SiteAnalytics a(*oak_);
  ASSERT_EQ(a.violators().size(), 2u);
  EXPECT_EQ(a.violators()[0].ip, ips_[0]);
  EXPECT_EQ(a.violators()[0].times_blamed, 2u);
  EXPECT_EQ(a.violators()[0].rules_triggered,
            (std::vector<int>{rule0_}));
  EXPECT_EQ(a.violators()[1].times_blamed, 1u);
}

TEST_F(AnalyticsFixture, CommonIndividualSplit) {
  for (int u = 0; u < 10; ++u) {
    oak_->analyze("user" + std::to_string(u), report_with_slow(0), u);
  }
  oak_->analyze("user0", report_with_slow(1), 100.0);
  SiteAnalytics a(*oak_);
  auto common = a.common_rules();
  auto individual = a.individual_rules();
  ASSERT_EQ(common.size(), 1u);
  EXPECT_EQ(common[0]->rule_id, rule0_);  // 100% of users
  ASSERT_EQ(individual.size(), 1u);
  EXPECT_EQ(individual[0]->rule_id, rule1_);  // 10% of users
  EXPECT_DOUBLE_EQ(a.summary().individual_rule_fraction, 0.5);
}

// Regression: a single wire report carrying plt_s = Inf/NaN/0 used to poison
// plt_sum_s, after which every derived mean — and the holdback/treated lift
// ratio — became Inf or NaN and leaked into the JSON export. The ingest
// accumulator now drops non-finite and non-positive samples.
TEST_F(AnalyticsFixture, NonFinitePltSamplesNeverReachLift) {
  oak_->config().policy.holdback_fraction = 0.5;
  const Policy& pol = oak_->config().policy;
  std::string hold, treated;
  for (int i = 0; i < 1000 && (hold.empty() || treated.empty()); ++i) {
    const std::string uid = "user" + std::to_string(i);
    (pol.in_holdback(uid) ? hold : treated) = uid;
  }
  ASSERT_FALSE(hold.empty());
  ASSERT_FALSE(treated.empty());

  // The holdback flag is stamped on serve; give the holdback user a page.
  http::Request get = http::Request::get(site_.index_url());
  get.headers.set("Cookie", std::string(http::kOakUserCookie) + "=" + hold);
  oak_->handle(get, 0.0);
  browser::PerfReport hr = report_with_slow(0);
  hr.plt_s = 2.0;
  oak_->analyze(hold, hr, 0.5);

  // Treated user first sends only garbage PLTs: all dropped, so the user
  // contributes no samples and the lift stays invalid.
  for (double bad : {std::numeric_limits<double>::infinity(),
                     std::nan(""), 0.0, -3.0}) {
    browser::PerfReport r = report_with_slow(0);
    r.plt_s = bad;
    oak_->analyze(treated, r, 1.0);
  }
  {
    SiteAnalytics a(*oak_);
    EXPECT_EQ(a.lift().treated_users, 0u);
    EXPECT_EQ(a.lift().holdback_users, 1u);
    EXPECT_FALSE(a.lift().valid());
    const std::string dump = a.to_json().dump();
    EXPECT_EQ(dump.find("\"lift\""), std::string::npos);
    EXPECT_EQ(dump.find("inf"), std::string::npos);
    EXPECT_EQ(dump.find("nan"), std::string::npos);
    EXPECT_EQ(dump.find("null"), std::string::npos);
  }

  // One finite sample later the lift is well-defined and finite.
  browser::PerfReport tr = report_with_slow(0);
  tr.plt_s = 1.0;
  oak_->analyze(treated, tr, 2.0);
  SiteAnalytics a(*oak_);
  ASSERT_TRUE(a.lift().valid());
  EXPECT_DOUBLE_EQ(a.lift().treated_mean_plt_s, 1.0);
  EXPECT_DOUBLE_EQ(a.lift().holdback_mean_plt_s, 2.0);
  EXPECT_DOUBLE_EQ(a.lift().ratio, 2.0);
  util::Json j = util::Json::parse(a.to_json().dump());
  EXPECT_DOUBLE_EQ(j.at("lift").at("ratio").as_number(), 2.0);
}

// Regression: two *finite* but huge samples (1e308 each) can still overflow
// the running sum to +Inf. LiftEstimate::valid() now requires finite means,
// so an overflowed group invalidates the estimate instead of exporting
// "ratio": inf (which util::Json would render as null or garbage).
TEST_F(AnalyticsFixture, OverflowedPltSumInvalidatesLiftInsteadOfEmittingInf) {
  oak_->config().policy.holdback_fraction = 0.5;
  const Policy& pol = oak_->config().policy;
  std::string hold, treated;
  for (int i = 0; i < 1000 && (hold.empty() || treated.empty()); ++i) {
    const std::string uid = "user" + std::to_string(i);
    (pol.in_holdback(uid) ? hold : treated) = uid;
  }
  ASSERT_FALSE(hold.empty());
  ASSERT_FALSE(treated.empty());

  http::Request get = http::Request::get(site_.index_url());
  get.headers.set("Cookie", std::string(http::kOakUserCookie) + "=" + hold);
  oak_->handle(get, 0.0);
  browser::PerfReport hr = report_with_slow(0);
  hr.plt_s = 2.0;
  oak_->analyze(hold, hr, 0.5);

  for (int i = 0; i < 2; ++i) {
    browser::PerfReport r = report_with_slow(0);
    r.plt_s = 1e308;  // finite — passes the ingest guard
    oak_->analyze(treated, r, 1.0 + i);
  }

  SiteAnalytics a(*oak_);
  EXPECT_EQ(a.lift().treated_users, 1u);
  EXPECT_EQ(a.lift().holdback_users, 1u);
  EXPECT_FALSE(std::isfinite(a.lift().treated_mean_plt_s));
  EXPECT_FALSE(a.lift().valid());
  EXPECT_DOUBLE_EQ(a.lift().ratio, 0.0);  // never Inf/NaN
  const std::string dump = a.to_json().dump();
  EXPECT_EQ(dump.find("\"lift\""), std::string::npos);
  EXPECT_EQ(dump.find("inf"), std::string::npos);
  EXPECT_EQ(dump.find("nan"), std::string::npos);
  EXPECT_EQ(dump.find("null"), std::string::npos);
  // The human-readable report also omits the lift line.
  EXPECT_EQ(a.to_report().find("lift:"), std::string::npos);
}

TEST_F(AnalyticsFixture, JsonExportRoundTripsThroughParser) {
  oak_->analyze("u1", report_with_slow(0), 0.0);
  SiteAnalytics a(*oak_);
  util::Json j = util::Json::parse(a.to_json().dump());
  EXPECT_EQ(j.at("summary").at("site").as_string(), "site.com");
  EXPECT_EQ(j.at("summary").at("users").as_int(), 1);
  EXPECT_EQ(j.at("rules").as_array().size(), 2u);
  EXPECT_EQ(j.at("violators").as_array().size(), 1u);
}

TEST_F(AnalyticsFixture, TextReportMentionsActivatedRules) {
  oak_->analyze("u1", report_with_slow(0), 0.0);
  SiteAnalytics a(*oak_);
  std::string report = a.to_report();
  EXPECT_NE(report.find("site.com"), std::string::npos);
  EXPECT_NE(report.find("r0"), std::string::npos);
  // Never-activated r1 is omitted from the activation list.
  EXPECT_EQ(report.find("[  2] r1"), std::string::npos);
}

}  // namespace
}  // namespace oak::core
