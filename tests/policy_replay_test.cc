// PolicyReplayer: fidelity against the live decision stream, determinism,
// scoring sanity, and racing-cohort stability across export/import.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/oak_server.h"
#include "core/policy_replay.h"

namespace oak::core {
namespace {

// Synthetic-report scaffolding in the core_oak_server_test.cc mold: origin
// plus three external hosts, one rule switching ext0 to alt.cdn.net, and
// context recording on.
class ReplayFixture : public ::testing::Test {
 protected:
  ReplayFixture()
      : universe_(net::NetworkConfig{.seed = 11, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("shop.com", net.server(origin_).addr());
    for (int i = 0; i < 3; ++i) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      const std::string host = "ext" + std::to_string(i) + ".cdn.net";
      universe_.dns().bind(host, net.server(sid).addr());
      ext_hosts_.push_back(host);
      ext_ips_.push_back(net.server(sid).addr().to_string());
    }
    net::ServerId alt = net.add_server(net::ServerConfig{});
    universe_.dns().bind("alt.cdn.net", net.server(alt).addr());
    alt_ip_ = net.server(alt).addr().to_string();
    net::ServerId alt2 = net.add_server(net::ServerConfig{});
    universe_.dns().bind("alt2.cdn.net", net.server(alt2).addr());

    page::SiteBuilder b(universe_, "shop.com", origin_);
    for (const auto& h : ext_hosts_) {
      b.add_direct(h, "/obj.png", html::RefKind::kImage, 10'000,
                   page::Category::kCdn);
    }
    site_ = b.finish();
    universe_.store().replicate("http://" + ext_hosts_[0] + "/obj.png",
                                "http://alt.cdn.net/obj.png");
    universe_.store().replicate("http://" + ext_hosts_[0] + "/obj.png",
                                "http://alt2.cdn.net/obj.png");
  }

  std::unique_ptr<OakServer> make_server(Policy policy) {
    OakConfig cfg;
    cfg.detector.min_population = 4;
    cfg.policy = std::move(policy);
    cfg.policy.record_context = true;
    auto oak = std::make_unique<OakServer>(universe_, "shop.com", cfg);
    // Two alternatives so the racing strategy actually races (it falls
    // back to seed selection on degenerate single-alternative rules).
    oak->add_rule(make_domain_rule("switch-ext0", ext_hosts_[0],
                                   {"alt.cdn.net", "alt2.cdn.net"}));
    oak->install();
    return oak;
  }

  browser::PerfReport make_report(const std::string& slow_host,
                                  const std::string& user,
                                  double slow_time = 3.0,
                                  double plt_s = 1.0) {
    browser::PerfReport r;
    r.user_id = user;
    r.page_url = site_.index_url();
    r.plt_s = plt_s;
    r.entries.push_back(
        {site_.index_url(), "shop.com", "10.0.0.1", 5000, 0, 0.09});
    for (std::size_t i = 0; i < ext_hosts_.size(); ++i) {
      const bool slow = ext_hosts_[i] == slow_host;
      r.entries.push_back({"http://" + ext_hosts_[i] + "/obj.png",
                           ext_hosts_[i], ext_ips_[i], 10'000, 0.1,
                           slow ? slow_time : 0.10 + 0.01 * double(i)});
    }
    if (slow_host == "alt.cdn.net") {
      r.entries.push_back({"http://alt.cdn.net/obj.png", "alt.cdn.net",
                           alt_ip_, 10'000, 0.1, slow_time});
    }
    return r;
  }

  // A deterministic mixed workload: per user, a violating report (ext0
  // slow), a healthy report, an alternative-violating report (alt slow),
  // then another ext0 violation — exercising activate, keep/deactivate and
  // re-activation paths.
  void drive(OakServer& oak) {
    const char* users[] = {"u-a", "u-b", "u-c"};
    double t = 0.0;
    for (const char* u : users) {
      oak.analyze(u, make_report(ext_hosts_[0], u, 3.0, 2.5), t);
      t += 10.0;
      oak.analyze(u, make_report("", u, 0.0, 0.8), t);
      t += 10.0;
      oak.analyze(u, make_report("alt.cdn.net", u, 4.0, 3.0), t);
      t += 10.0;
      oak.analyze(u, make_report(ext_hosts_[0], u, 3.5, 2.8), t);
      t += 10.0;
    }
  }

  static std::vector<Decision> minus_serve(const DecisionLog& log) {
    std::vector<Decision> out;
    for (const auto& d : log.entries()) {
      if (d.type != DecisionType::kServeModified) out.push_back(d);
    }
    return out;
  }

  static std::string dump_decisions(const std::vector<Decision>& ds) {
    util::JsonArray a;
    for (const auto& d : ds) a.push_back(decision_to_json(d));
    return util::Json(std::move(a)).dump();
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::vector<std::string> ext_hosts_;
  std::vector<std::string> ext_ips_;
  std::string alt_ip_;
  page::Site site_;
};

TEST_F(ReplayFixture, ReproducesLiveDecisionStream) {
  auto oak = make_server(Policy{});
  drive(*oak);
  const auto& contexts = oak->decision_log().contexts();
  ASSERT_FALSE(contexts.empty());
  const auto live = minus_serve(oak->decision_log());
  ASSERT_FALSE(live.empty());

  PolicyReplayer replayer(oak->rules(), oak->config().policy,
                          oak->config().history);
  for (const auto& c : contexts) replayer.step(c);
  EXPECT_EQ(dump_decisions(replayer.log().entries()), dump_decisions(live));
}

TEST_F(ReplayFixture, ReproducesLiveStreamUnderRacing) {
  Policy p;
  p.default_strategy = "racing";
  auto oak = make_server(p);
  drive(*oak);
  const auto live = minus_serve(oak->decision_log());

  PolicyReplayer replayer(oak->rules(), oak->config().policy,
                          oak->config().history);
  for (const auto& c : oak->decision_log().contexts()) replayer.step(c);
  EXPECT_EQ(dump_decisions(replayer.log().entries()), dump_decisions(live));
}

TEST_F(ReplayFixture, ReplayIsDeterministic) {
  auto oak = make_server(Policy{});
  drive(*oak);
  const auto& contexts = oak->decision_log().contexts();

  PolicyReplayer a(oak->rules(), oak->config().policy,
                   oak->config().history);
  PolicyReplayer b(oak->rules(), oak->config().policy,
                   oak->config().history);
  for (const auto& c : contexts) {
    a.step(c);
    b.step(c);
  }
  EXPECT_EQ(a.result_json().dump(), b.result_json().dump());
}

TEST_F(ReplayFixture, ScoreCountsViolationsAndMitigations) {
  auto oak = make_server(Policy{});
  drive(*oak);
  const auto& contexts = oak->decision_log().contexts();

  PolicyReplayer replayer(oak->rules(), oak->config().policy,
                          oak->config().history);
  for (const auto& c : contexts) replayer.step(c);
  const ReplayScore s = replayer.score();
  EXPECT_EQ(s.reports, contexts.size());  // no serve ticks in analyze()
  EXPECT_GT(s.violation_reports, 0u);
  EXPECT_EQ(s.violation_reports, s.mitigated_reports + s.unmitigated_reports);
  EXPECT_GT(s.activations, 0u);
  EXPECT_GT(s.observed_mean_plt_s, 0.0);
  EXPECT_GT(s.estimated_mean_plt_s, 0.0);
  EXPECT_EQ(s.to_json().at("reports").as_int(),
            std::int64_t(contexts.size()));
}

TEST_F(ReplayFixture, RejectsUnknownRuleStrategy) {
  auto oak = make_server(Policy{});
  std::vector<Rule> rules = oak->rules();
  rules[0].policy = "not-a-strategy";
  EXPECT_THROW(PolicyReplayer(rules, oak->config().policy,
                              oak->config().history),
               std::invalid_argument);
}

// Racing cohorts and accumulators survive an export/import round-trip:
// the re-imported server reports identical race state and re-exports
// byte-identically (the satellite determinism check for derived state).
TEST_F(ReplayFixture, RaceStateSurvivesExportImport) {
  Policy p;
  p.default_strategy = "racing";
  auto oak = make_server(p);
  drive(*oak);
  const int rule_id = oak->rules()[0].id;
  const auto live = oak->policy_engine().race_state(rule_id);
  ASSERT_TRUE(live.has_value());
  ASSERT_GT(live->count[0] + live->count[1], 0u);

  const util::Json snapshot = oak->export_state();
  auto other = make_server(p);
  other->import_state(snapshot);

  const auto imported = other->policy_engine().race_state(rule_id);
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->decided, live->decided);
  EXPECT_EQ(imported->winner, live->winner);
  EXPECT_EQ(imported->count[0], live->count[0]);
  EXPECT_EQ(imported->count[1], live->count[1]);
  EXPECT_DOUBLE_EQ(imported->plt_sum[0], live->plt_sum[0]);
  EXPECT_DOUBLE_EQ(imported->plt_sum[1], live->plt_sum[1]);
  EXPECT_EQ(other->export_state().dump(), snapshot.dump());

  // Cohort assignment is a pure hash: identical on both sides, per user.
  const UserProfile* before = oak->profile("u-a");
  const UserProfile* after = other->profile("u-a");
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  const RaceStat* rb = before->race.at_ptr(rule_id);
  const RaceStat* ra = after->race.at_ptr(rule_id);
  ASSERT_NE(rb, nullptr);
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->cohort, rb->cohort);
  EXPECT_EQ(ra->cohort, PolicyEngine::cohort_of("u-a", rule_id));
}

}  // namespace
}  // namespace oak::core
