// Stress tests for the sharded serving plane: many client threads hammering
// one site with interleaved page serves and report POSTs, checked against a
// single-threaded replay of the identical request streams. Per-user state is
// independent by design (§4.3), so the sharded outcome must be byte-equal to
// the sequential one, regardless of interleaving.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "core/concurrent_server.h"
#include "core/sharded_server.h"
#include "http/cookies.h"

namespace oak::core {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 40;

class ShardedFixture : public ::testing::Test {
 protected:
  ShardedFixture()
      : universe_(net::NetworkConfig{.seed = 17, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("busy.com", net.server(origin_).addr());
    for (const char* host : {"x0.net", "x1.net", "x2.net", "x3.net",
                             "agg.net", "hidden.cdn.net", "alt.net",
                             "alt2.net"}) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      universe_.dns().bind(host, net.server(sid).addr());
      ips_[host] = net.server(sid).addr().to_string();
    }

    page::SiteBuilder b(universe_, "busy.com", origin_);
    for (int i = 0; i < 4; ++i) {
      b.add_direct("x" + std::to_string(i) + ".net", "/o.js",
                   html::RefKind::kScript, 9000, page::Category::kCdn);
    }
    // Tier-3 material: the aggregator script induces the hidden CDN object.
    b.add_script_with_induced(
        "agg.net", "/loader.js", 4000, page::Category::kAds,
        {{"hidden.cdn.net", "/pix.png", html::RefKind::kImage, 7000,
          page::Category::kAds}});
    site_ = b.finish();
    universe_.store().replicate("http://x0.net/o.js", "http://alt.net/o.js");

    cfg_.detector.min_population = 4;
    // Contexts ride the merged log too (policy replay over a sharded
    // deployment) — recording them must not perturb decisions.
    cfg_.policy.record_context = true;
  }

  std::vector<Rule> rules() const {
    return {make_domain_rule("direct", "x0.net", {"alt.net"}),
            // Activates only through the loader.js body (tier 3).
            make_domain_rule("via-script", "agg.net", {"alt2.net"})};
  }

  // One synthetic report: x0.net and hidden.cdn.net are violators; the
  // aggregator script rides along as the tier-3 candidate.
  std::string report_wire() {
    browser::PerfReport r;
    r.page_url = site_.index_url();
    r.entries.push_back(
        {site_.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    for (int i = 0; i < 4; ++i) {
      const std::string host = "x" + std::to_string(i) + ".net";
      r.entries.push_back({"http://" + host + "/o.js", host, ips_[host], 9000,
                           0.1, i == 0 ? 4.0 : 0.10 + 0.01 * i});
    }
    r.entries.push_back({"http://agg.net/loader.js", "agg.net",
                         ips_["agg.net"], 4000, 0.1, 0.12});
    r.entries.push_back({"http://hidden.cdn.net/pix.png", "hidden.cdn.net",
                         ips_["hidden.cdn.net"], 7000, 0.1, 3.5});
    return r.serialize();
  }

  static std::string uid_for(int thread, int user) {
    return "w" + std::to_string(thread) + "u" + std::to_string(user);
  }

  // The request stream one user issues: page serve then report, per tick.
  template <typename ServerT>
  void drive_user(ServerT& server, const std::string& uid,
                  const std::string& wire) {
    const std::string cookie = std::string(http::kOakUserCookie) + "=" + uid;
    for (int i = 0; i < kIterations; ++i) {
      http::Request get = http::Request::get(site_.index_url());
      get.headers.set("Cookie", cookie);
      ASSERT_TRUE(server.handle(get, double(i)).ok());
      http::Request post =
          http::Request::post("http://busy.com/oak/report", wire);
      post.headers.set("Cookie", cookie);
      ASSERT_LT(server.handle(post, double(i) + 0.5).status, 400);
    }
  }

  // Hammer the sharded server from kThreads threads (2 users per thread).
  void run_concurrent(ShardedOakServer& server) {
    const std::string wire = report_wire();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int u = 0; u < 2; ++u) {
          drive_user(server, uid_for(t, u), wire);
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  // The same requests, sequentially, against the single-threaded core.
  void run_replay(OakServer& server) {
    const std::string wire = report_wire();
    for (int t = 0; t < kThreads; ++t) {
      for (int u = 0; u < 2; ++u) drive_user(server, uid_for(t, u), wire);
    }
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::map<std::string, std::string> ips_;
  page::Site site_;
  OakConfig cfg_;
};

TEST_F(ShardedFixture, StressMatchesSingleThreadedReplay) {
  ShardedOakServer sharded(universe_, "busy.com", cfg_, 8);
  sharded.add_rules(rules());
  run_concurrent(sharded);

  OakServer replay(universe_, "busy.com", cfg_);
  replay.add_rules(rules());
  run_replay(replay);

  constexpr std::size_t kUsers = std::size_t(kThreads) * 2;
  constexpr std::size_t kReports = kUsers * kIterations;
  EXPECT_EQ(sharded.user_count(), kUsers);
  EXPECT_EQ(sharded.reports_processed(), kReports);
  EXPECT_EQ(replay.reports_processed(), kReports);

  // Profiles must be byte-identical to the sequential outcome: per-user
  // state never crosses users, so interleaving cannot change it.
  util::Json sharded_snap = sharded.export_state();
  util::Json replay_snap = replay.export_state();
  EXPECT_TRUE(sharded_snap.at("users") == replay_snap.at("users"));

  // Both rules end active for every user (tier 2 and tier 3 paths).
  for (int t = 0; t < kThreads; ++t) {
    for (int u = 0; u < 2; ++u) {
      auto p = sharded.profile(uid_for(t, u));
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(p->active.size(), 2u);
      EXPECT_EQ(p->reports_received, std::size_t(kIterations));
      EXPECT_EQ(p->pages_served, std::size_t(kIterations));
    }
  }

  // Decision totals match the replay type-for-type, and the replay
  // contexts merge alongside them in one global time order.
  const DecisionLog merged = sharded.merged_decision_log();
  EXPECT_EQ(merged.size(), replay.decision_log().size());
  EXPECT_EQ(merged.contexts().size(), replay.decision_log().contexts().size());
  EXPECT_FALSE(merged.contexts().empty());
  for (std::size_t i = 1; i < merged.contexts().size(); ++i) {
    EXPECT_LE(merged.contexts()[i - 1].time, merged.contexts()[i].time);
  }
  for (DecisionType type :
       {DecisionType::kActivate, DecisionType::kDeactivate,
        DecisionType::kAdvanceAlternative, DecisionType::kKeepAlternative,
        DecisionType::kExpire, DecisionType::kServeModified}) {
    EXPECT_EQ(merged.count(type), replay.decision_log().count(type))
        << to_string(type);
  }
}

TEST_F(ShardedFixture, ExportImportRoundTripsAcrossShardCounts) {
  ShardedOakServer sharded(universe_, "busy.com", cfg_, 8);
  sharded.add_rules(rules());
  run_concurrent(sharded);
  // Through the wire format, as a real restart would go. (dump() rounds
  // doubles to 12 significant digits, so the parsed snapshot — what an
  // importer actually sees — is the equality baseline.)
  const util::Json snapshot =
      util::Json::parse(sharded.export_state().dump());

  // Into a differently-sharded server…
  ShardedOakServer reborn(universe_, "busy.com", cfg_, 3);
  reborn.add_rules(rules());
  reborn.import_state(snapshot);
  EXPECT_EQ(reborn.user_count(), sharded.user_count());
  EXPECT_EQ(reborn.reports_processed(), sharded.reports_processed());
  EXPECT_EQ(reborn.merged_decision_log().size(),
            sharded.merged_decision_log().size());
  EXPECT_TRUE(reborn.export_state().at("users") == snapshot.at("users"));

  // …and into the plain single-threaded core.
  OakServer single(universe_, "busy.com", cfg_);
  single.add_rules(rules());
  single.import_state(snapshot);
  EXPECT_EQ(single.user_count(), sharded.user_count());
  EXPECT_TRUE(single.export_state().at("users") == snapshot.at("users"));

  // The reborn server keeps serving: traffic lands on restored profiles.
  const std::string wire = report_wire();
  http::Request post = http::Request::post("http://busy.com/oak/report", wire);
  post.headers.set("Cookie",
                   std::string(http::kOakUserCookie) + "=" + uid_for(0, 0));
  EXPECT_LT(reborn.handle(post, 1000.0).status, 400);
  EXPECT_EQ(reborn.profile(uid_for(0, 0))->reports_received,
            std::size_t(kIterations) + 1);
}

TEST_F(ShardedFixture, RuleChurnRacesWithTraffic) {
  ShardedOakServer sharded(universe_, "busy.com", cfg_, 4);
  sharded.add_rules(rules());
  std::atomic<bool> stop{false};
  std::thread operator_thread([&] {
    int next = 100;
    while (!stop.load()) {
      Rule r = make_domain_rule("tmp" + std::to_string(next), "x1.net",
                                {"alt.net"});
      r.id = next;
      int id = sharded.add_rule(std::move(r));
      sharded.remove_rule(id, 0.0);
      ++next;
    }
  });
  std::thread auditor([&] {
    while (!stop.load()) {
      SiteAnalytics audit = sharded.audit();
      (void)audit.summary();
      util::Json snap = sharded.export_state();
      EXPECT_EQ(util::Json::parse(snap.dump()).at("site").as_string(),
                "busy.com");
    }
  });
  const std::string wire = report_wire();
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      const std::string cookie =
          std::string(http::kOakUserCookie) + "=c" + std::to_string(t);
      for (int i = 0; i < 100; ++i) {
        http::Request post =
            http::Request::post("http://busy.com/oak/report", wire);
        post.headers.set("Cookie", cookie);
        EXPECT_LT(sharded.handle(post, double(i)).status, 400);
      }
    });
  }
  for (auto& th : clients) th.join();
  stop = true;
  operator_thread.join();
  auditor.join();
  // The permanent rules survived the churn and are active for the users.
  EXPECT_EQ(sharded.rules().size(), 2u);
  EXPECT_EQ(sharded.profile("c0")->active.count(1), 1u);
}

TEST_F(ShardedFixture, FreshUsersMintDistinctCookies) {
  ShardedOakServer sharded(universe_, "busy.com", cfg_, 8);
  sharded.add_rules(rules());
  std::atomic<int> cookies_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        http::Request get = http::Request::get(site_.index_url());
        http::Response resp = sharded.handle(get, double(i));
        ASSERT_TRUE(resp.ok());
        if (resp.headers.get("Set-Cookie")) cookies_seen++;
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every cookie-less request minted a distinct identity.
  EXPECT_EQ(cookies_seen.load(), kThreads * 25);
  EXPECT_EQ(sharded.user_count(), std::size_t(kThreads) * 25);
}

TEST_F(ShardedFixture, AuditExposesConcurrencyCounters) {
  ShardedOakServer sharded(universe_, "busy.com", cfg_, 8);
  sharded.add_rules(rules());
  run_concurrent(sharded);

  SiteAnalytics audit = sharded.audit();
  const ConcurrencyCounters& c = audit.concurrency();
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.shards, 8u);
  // 2 requests per iteration per user.
  EXPECT_EQ(c.requests_handled,
            std::uint64_t(kThreads) * 2 * kIterations * 2);
  // The workload repeats identical questions: the memo must absorb most of
  // the matching, and each shard fetches loader.js at most once.
  EXPECT_GT(c.memo_hit_rate(), 0.5);
  EXPECT_LE(c.script_fetches, 8u);
  EXPECT_TRUE(audit.to_json().find("concurrency") != nullptr);
  // Summary still reflects the merged traffic.
  EXPECT_EQ(audit.summary().users, std::size_t(kThreads) * 2);
}

// The merged snapshot must cover every pipeline stage with the exact event
// totals from all 8 shards — nothing lost, nothing double-counted — and the
// wrapper-level serving-plane tallies fold into the same exposition. Runs
// under TSan in CI: concurrent snapshots race against live recording.
TEST_F(ShardedFixture, MergedMetricsCoverAllStagesUnderConcurrency) {
  ShardedOakServer sharded(universe_, "busy.com", cfg_, 8);
  sharded.add_rules(rules());

  // Snapshot while traffic is in flight (the exposure TSan cares about).
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      obs::MetricsSnapshot s = sharded.metrics_snapshot();
      (void)s.to_prometheus();
    }
  });
  run_concurrent(sharded);
  stop = true;
  snapshotter.join();

  constexpr std::uint64_t kUsers = std::uint64_t(kThreads) * 2;
  constexpr std::uint64_t kReports = kUsers * kIterations;
  obs::MetricsSnapshot snap = sharded.metrics_snapshot();

  // The wrapper tallies are plain atomics folded in at snapshot time; they
  // hold with or without compiled-in obs.
  EXPECT_EQ(snap.counter("oak_requests_total"), kReports * 2);
  EXPECT_DOUBLE_EQ(snap.gauge("oak_shards"), 8.0);

  if constexpr (obs::kEnabled) {
    EXPECT_EQ(snap.counter("oak_reports_ingested_total"), kReports);
    EXPECT_EQ(snap.counter("oak_pages_served_total"), kReports);
    EXPECT_GT(snap.counter("oak_rule_activations_total"), 0u);
    // All five stages, merged across the per-shard registries. decode,
    // group, detect, and match run once per report; modify once per serve
    // that actually rewrote the page.
    for (const char* name :
         {"oak_ingest_decode_seconds", "oak_ingest_group_seconds",
          "oak_ingest_detect_seconds", "oak_ingest_match_seconds"}) {
      const obs::HistogramSnapshot* h = snap.histogram(name);
      ASSERT_NE(h, nullptr) << name;
      EXPECT_EQ(h->count(), kReports) << name;
    }
    const obs::HistogramSnapshot* modify =
        snap.histogram("oak_serve_modify_seconds");
    ASSERT_NE(modify, nullptr);
    EXPECT_GT(modify->count(), 0u);
    EXPECT_EQ(snap.histogram("oak_ingest_report_bytes")->count(), kReports);
    // Match-cache counters ride in the same snapshot, and the legacy view
    // projects from it without disagreement.
    const ConcurrencyCounters c =
        ConcurrencyCounters::from_metrics(snap, 8);
    EXPECT_EQ(c.requests_handled, kReports * 2);
    EXPECT_GT(c.memo_hit_rate(), 0.5);
    // Both expositions render the merged data.
    const std::string text = sharded.metrics_text();
    EXPECT_NE(text.find("# TYPE oak_ingest_decode_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("oak_shards 8"), std::string::npos);
    const util::Json j = util::Json::parse(sharded.metrics_json().dump());
    EXPECT_EQ(j.at("counters").at("oak_reports_ingested_total").as_int(),
              static_cast<std::int64_t>(kReports));
  }
}

// --- Ingest-queue variants. The batched hand-off (DESIGN.md §6) must be
// invisible to state: per-shard FIFO execution plus one-request-in-flight
// per user means every queue shape below produces the byte-identical
// profiles of a sequential replay.

// depth=2 / max_batch=1 maximizes contention on the queue itself: producers
// hit the backpressure wait constantly and every op is its own batch.
TEST_F(ShardedFixture, TinyQueueBackpressureMatchesReplay) {
  OakConfig cfg = cfg_;
  cfg.ingest_queue.depth = 2;
  cfg.ingest_queue.max_batch = 1;
  ShardedOakServer sharded(universe_, "busy.com", cfg, 8);
  sharded.add_rules(rules());
  run_concurrent(sharded);

  OakServer replay(universe_, "busy.com", cfg_);
  replay.add_rules(rules());
  run_replay(replay);
  EXPECT_TRUE(sharded.export_state().at("users") ==
              replay.export_state().at("users"));

  if constexpr (obs::kEnabled) {
    constexpr std::uint64_t kRequests =
        std::uint64_t(kThreads) * 2 * kIterations * 2;
    obs::MetricsSnapshot snap = sharded.metrics_snapshot();
    EXPECT_EQ(snap.counter("oak_ingest_enqueued_total"), kRequests);
    // max_batch=1: the combiner claims exactly one op per batch.
    EXPECT_EQ(snap.counter("oak_ingest_batches_total"), kRequests);
  }
}

// One shard funnels all 16 users through a single queue with wide batches —
// the shape where the combiner actually amortizes: many ops per shard-lock
// acquisition.
TEST_F(ShardedFixture, LargeBatchSingleShardMatchesReplay) {
  OakConfig cfg = cfg_;
  cfg.ingest_queue.depth = 512;
  cfg.ingest_queue.max_batch = 64;
  ShardedOakServer sharded(universe_, "busy.com", cfg, 1);
  sharded.add_rules(rules());
  run_concurrent(sharded);

  OakServer replay(universe_, "busy.com", cfg_);
  replay.add_rules(rules());
  run_replay(replay);
  EXPECT_TRUE(sharded.export_state().at("users") ==
              replay.export_state().at("users"));

  if constexpr (obs::kEnabled) {
    constexpr std::uint64_t kRequests =
        std::uint64_t(kThreads) * 2 * kIterations * 2;
    obs::MetricsSnapshot snap = sharded.metrics_snapshot();
    EXPECT_EQ(snap.counter("oak_ingest_enqueued_total"), kRequests);
    const std::uint64_t batches = snap.counter("oak_ingest_batches_total");
    EXPECT_GE(batches, 1u);
    EXPECT_LE(batches, kRequests);
    // Every enqueued op lands in exactly one batch.
    const obs::HistogramSnapshot* sizes =
        snap.histogram("oak_ingest_batch_size");
    ASSERT_NE(sizes, nullptr);
    EXPECT_EQ(sizes->count(), batches);
    EXPECT_DOUBLE_EQ(sizes->sum, double(kRequests));
  }
}

// Kill switch: ingest_queue.enabled=false reverts to lock-per-request and
// must still match the replay — and register no queue instruments.
TEST_F(ShardedFixture, QueueDisabledDirectModeMatchesReplay) {
  OakConfig cfg = cfg_;
  cfg.ingest_queue.enabled = false;
  ShardedOakServer sharded(universe_, "busy.com", cfg, 8);
  sharded.add_rules(rules());
  run_concurrent(sharded);

  OakServer replay(universe_, "busy.com", cfg_);
  replay.add_rules(rules());
  run_replay(replay);
  EXPECT_TRUE(sharded.export_state().at("users") ==
              replay.export_state().at("users"));

  obs::MetricsSnapshot snap = sharded.metrics_snapshot();
  EXPECT_EQ(snap.counter("oak_ingest_enqueued_total"), 0u);
  EXPECT_EQ(snap.histogram("oak_ingest_batch_size"), nullptr);
}

// Default queue configuration: every request is accounted for exactly once
// across the queue-health instruments, and the depth gauge drains to zero
// once the fleet goes quiet.
TEST_F(ShardedFixture, QueueMetricsAccountForEveryRequest) {
  ShardedOakServer sharded(universe_, "busy.com", cfg_, 8);
  sharded.add_rules(rules());
  run_concurrent(sharded);

  if constexpr (obs::kEnabled) {
    constexpr std::uint64_t kRequests =
        std::uint64_t(kThreads) * 2 * kIterations * 2;
    obs::MetricsSnapshot snap = sharded.metrics_snapshot();
    EXPECT_EQ(snap.counter("oak_ingest_enqueued_total"), kRequests);
    const std::uint64_t batches = snap.counter("oak_ingest_batches_total");
    EXPECT_GE(batches, 1u);
    EXPECT_LE(batches, kRequests);
    const obs::HistogramSnapshot* sizes =
        snap.histogram("oak_ingest_batch_size");
    ASSERT_NE(sizes, nullptr);
    EXPECT_EQ(sizes->count(), batches);
    EXPECT_DOUBLE_EQ(sizes->sum, double(kRequests));
    // All queues are empty at rest (per-shard gauges merge by addition).
    EXPECT_DOUBLE_EQ(snap.gauge("oak_ingest_queue_depth"), 0.0);
    // Backpressure is workload-dependent; the counter just has to exist and
    // render (it does, at zero or more).
    EXPECT_LE(snap.counter("oak_ingest_backpressure_total"), kRequests);
  }
}

}  // namespace
}  // namespace oak::core
