// TimerWheel: the slowloris-deadline primitive. Single-threaded, driven
// with synthetic time — correctness here is what keeps a stalled peer from
// outliving its budget (or a healthy one from being cut off early).
#include <gtest/gtest.h>

#include <vector>

#include "wire/timer_wheel.h"

namespace oak::wire {
namespace {

std::vector<std::uint64_t> fire(TimerWheel& w, double now) {
  std::vector<std::uint64_t> out;
  w.advance(now, [&](std::uint64_t id) { out.push_back(id); });
  return out;
}

TEST(TimerWheel, FiresAtDeadlineNotBefore) {
  TimerWheel w(0.05);
  w.schedule(1, 1.0);
  EXPECT_TRUE(fire(w, 0.9).empty());
  EXPECT_TRUE(w.armed(1));
  const auto fired = fire(w, 1.1);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  EXPECT_FALSE(w.armed(1));
}

TEST(TimerWheel, CancelSuppresses) {
  TimerWheel w(0.05);
  w.schedule(7, 0.5);
  w.cancel(7);
  EXPECT_TRUE(fire(w, 1.0).empty());
}

TEST(TimerWheel, RearmSupersedesOldDeadline) {
  TimerWheel w(0.05);
  w.schedule(3, 0.5);
  w.schedule(3, 2.0);  // pushed out: the 0.5 entry is stale
  EXPECT_TRUE(fire(w, 1.0).empty());
  EXPECT_EQ(fire(w, 2.1).size(), 1u);
}

TEST(TimerWheel, WrapAroundBeyondOneRevolution) {
  // 0.05 * 256 slots = 12.8 s per revolution; a 30 s deadline wraps.
  TimerWheel w(0.05, 256);
  w.schedule(9, 30.0);
  double t = 0.0;
  while (t < 29.9) {
    ASSERT_TRUE(fire(w, t).empty()) << "early fire at " << t;
    t += 0.5;
  }
  EXPECT_EQ(fire(w, 30.1).size(), 1u);
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel w(0.05);
  fire(w, 10.0);        // establish the cursor
  w.schedule(4, 9.0);   // already in the past (loop lag)
  EXPECT_EQ(fire(w, 10.1).size(), 1u);  // not a revolution later
}

TEST(TimerWheel, ManyIdsShareSlots) {
  TimerWheel w(0.05, 8);  // tiny wheel: heavy slot sharing
  for (std::uint64_t id = 0; id < 100; ++id) {
    w.schedule(id, 0.1 + 0.01 * double(id));
  }
  std::size_t total = 0;
  for (double t = 0.0; t <= 1.3; t += 0.05) total += fire(w, t).size();
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(w.armed_count(), 0u);
}

TEST(TimerWheel, MultiRevolutionDeadlineFiresOnCorrectRevolution) {
  // 0.05 * 64 slots = 3.2 s per revolution; 10 s is three revolutions out.
  // The entry's slot is visited on every revolution and must be re-filed —
  // not fired — until its deadline actually arrives.
  TimerWheel w(0.05, 64);
  w.schedule(11, 10.0);
  double t = 0.0;
  while (t < 9.95) {
    ASSERT_TRUE(fire(w, t).empty()) << "early fire at " << t;
    ASSERT_TRUE(w.armed(11)) << "dropped at " << t;
    t += 0.1;
  }
  const auto fired = fire(w, 10.05);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 11u);
  EXPECT_EQ(w.armed_count(), 0u);
}

TEST(TimerWheel, WrappedEntrySurvivesSparseAdvances) {
  // Advance in jumps bigger than a tick (a laggy loop): the wrapped entry
  // must still fire exactly once, on its own revolution, never early.
  TimerWheel w(0.05, 32);  // 1.6 s per revolution
  w.schedule(21, 5.0);     // three revolutions out
  std::size_t fired = 0;
  double fired_at = 0.0;
  for (double t = 0.0; t < 6.0; t += 0.73) {
    const auto out = fire(w, t);
    if (!out.empty()) {
      fired += out.size();
      fired_at = t;
    }
  }
  EXPECT_EQ(fired, 1u);
  EXPECT_GE(fired_at, 5.0);
}

TEST(TimerWheel, RearmChurnLeavesNoStaleSlotEntries) {
  // The wire front-end's idle↔header dance: every keep-alive request
  // cancels one deadline and arms another. Stale entries are dropped
  // lazily, so churn briefly accretes slot garbage — but one full
  // revolution later every stale entry must have been visited and
  // dropped. A wheel that leaks slot entries here grows without bound
  // under steady keep-alive traffic.
  TimerWheel w(0.05, 16);  // 0.8 s per revolution
  double t = 0.0;
  fire(w, t);  // establish the cursor
  for (int req = 0; req < 200; ++req) {
    // header deadline while the head arrives...
    w.schedule(1, t + 0.3);
    t += 0.01;
    fire(w, t);
    // ...then the idle deadline between requests.
    w.schedule(1, t + 0.5);
    t += 0.01;
    fire(w, t);
  }
  EXPECT_EQ(w.armed_count(), 1u);  // only the live idle deadline
  // Cancel it (conn closed) and sweep one full revolution: every stale
  // entry the churn filed must be gone.
  w.cancel(1);
  for (double sweep = t; sweep <= t + 0.85; sweep += 0.05) fire(w, sweep);
  EXPECT_EQ(w.armed_count(), 0u);
  EXPECT_EQ(w.slot_entries(), 0u);
}

TEST(TimerWheel, ChurnAcrossManyConnsBoundsSlotGarbage) {
  // Same churn, many ids: after the sweep the wheel is empty even though
  // thousands of schedule() calls were filed into only 16 slots.
  TimerWheel w(0.05, 16);
  double t = 0.0;
  fire(w, t);
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t id = 1; id <= 20; ++id) {
      w.schedule(id, t + 0.4);
    }
    t += 0.02;
    fire(w, t);
  }
  EXPECT_EQ(w.armed_count(), 20u);
  for (std::uint64_t id = 1; id <= 20; ++id) w.cancel(id);
  for (double sweep = t; sweep <= t + 0.85; sweep += 0.05) fire(w, sweep);
  EXPECT_EQ(w.armed_count(), 0u);
  EXPECT_EQ(w.slot_entries(), 0u);
}

}  // namespace
}  // namespace oak::wire
