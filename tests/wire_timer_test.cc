// TimerWheel: the slowloris-deadline primitive. Single-threaded, driven
// with synthetic time — correctness here is what keeps a stalled peer from
// outliving its budget (or a healthy one from being cut off early).
#include <gtest/gtest.h>

#include <vector>

#include "wire/timer_wheel.h"

namespace oak::wire {
namespace {

std::vector<std::uint64_t> fire(TimerWheel& w, double now) {
  std::vector<std::uint64_t> out;
  w.advance(now, [&](std::uint64_t id) { out.push_back(id); });
  return out;
}

TEST(TimerWheel, FiresAtDeadlineNotBefore) {
  TimerWheel w(0.05);
  w.schedule(1, 1.0);
  EXPECT_TRUE(fire(w, 0.9).empty());
  EXPECT_TRUE(w.armed(1));
  const auto fired = fire(w, 1.1);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  EXPECT_FALSE(w.armed(1));
}

TEST(TimerWheel, CancelSuppresses) {
  TimerWheel w(0.05);
  w.schedule(7, 0.5);
  w.cancel(7);
  EXPECT_TRUE(fire(w, 1.0).empty());
}

TEST(TimerWheel, RearmSupersedesOldDeadline) {
  TimerWheel w(0.05);
  w.schedule(3, 0.5);
  w.schedule(3, 2.0);  // pushed out: the 0.5 entry is stale
  EXPECT_TRUE(fire(w, 1.0).empty());
  EXPECT_EQ(fire(w, 2.1).size(), 1u);
}

TEST(TimerWheel, WrapAroundBeyondOneRevolution) {
  // 0.05 * 256 slots = 12.8 s per revolution; a 30 s deadline wraps.
  TimerWheel w(0.05, 256);
  w.schedule(9, 30.0);
  double t = 0.0;
  while (t < 29.9) {
    ASSERT_TRUE(fire(w, t).empty()) << "early fire at " << t;
    t += 0.5;
  }
  EXPECT_EQ(fire(w, 30.1).size(), 1u);
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel w(0.05);
  fire(w, 10.0);        // establish the cursor
  w.schedule(4, 9.0);   // already in the past (loop lag)
  EXPECT_EQ(fire(w, 10.1).size(), 1u);  // not a revolution later
}

TEST(TimerWheel, ManyIdsShareSlots) {
  TimerWheel w(0.05, 8);  // tiny wheel: heavy slot sharing
  for (std::uint64_t id = 0; id < 100; ++id) {
    w.schedule(id, 0.1 + 0.01 * double(id));
  }
  std::size_t total = 0;
  for (double t = 0.0; t <= 1.3; t += 0.05) total += fire(w, t).size();
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(w.armed_count(), 0u);
}

}  // namespace
}  // namespace oak::wire
