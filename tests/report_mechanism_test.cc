// Tests for the §6 Resource Timing API fallback: cross-origin entries are
// visible only when the provider opted in with Timing-Allow-Origin.
#include <gtest/gtest.h>

#include "browser/browser.h"
#include "page/corpus.h"
#include "page/site.h"

namespace oak::browser {
namespace {

class MechanismFixture : public ::testing::Test {
 protected:
  MechanismFixture()
      : universe_(net::NetworkConfig{.seed = 31, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("rta.com", net.server(origin_).addr());
    universe_.dns().bind("static.rta.com", net.server(origin_).addr());
    for (const char* host : {"optin.cdn.net", "silent.ads.net"}) {
      universe_.dns().bind(
          host, net.server(net.add_server(net::ServerConfig{})).addr());
    }

    page::SiteBuilder b(universe_, "rta.com", origin_);
    b.add_origin_object("/main.css", html::RefKind::kStylesheet, 3000);
    b.add_origin_object("/logo.png", html::RefKind::kImage, 3000,
                        "static.rta.com");
    b.add_direct("optin.cdn.net", "/lib.js", html::RefKind::kScript, 8000,
                 page::Category::kCdn);
    b.add_direct("silent.ads.net", "/ad.js", html::RefKind::kScript, 8000,
                 page::Category::kAds);
    site_ = b.finish();
    universe_.store().find_mutable("http://optin.cdn.net/lib.js")
        ->timing_allow_origin = true;
  }

  LoadResult load_with(ReportMechanism mechanism) {
    net::ClientId cid = universe_.network().add_client(net::ClientConfig{});
    BrowserConfig cfg;
    cfg.use_cache = false;
    cfg.send_report = false;
    cfg.report_mechanism = mechanism;
    Browser b(universe_, cid, cfg);
    return b.load(site_.index_url(), 0.0);
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  page::Site site_;
};

TEST_F(MechanismFixture, ModifiedClientSeesEverything) {
  auto res = load_with(ReportMechanism::kModifiedClient);
  EXPECT_EQ(res.report.entries.size(), 5u);  // index + 4 objects
}

TEST_F(MechanismFixture, RtaHidesNonOptedInThirdParties) {
  auto res = load_with(ReportMechanism::kResourceTimingApi);
  std::set<std::string> hosts;
  for (const auto& e : res.report.entries) hosts.insert(e.host);
  // Same-origin (incl. sub-domain) always visible; opted-in CDN visible;
  // the silent ad network is not.
  EXPECT_TRUE(hosts.count("rta.com"));
  EXPECT_TRUE(hosts.count("static.rta.com"));
  EXPECT_TRUE(hosts.count("optin.cdn.net"));
  EXPECT_FALSE(hosts.count("silent.ads.net"));
  EXPECT_EQ(res.report.entries.size(), 4u);
  // The page load itself is unaffected — only the report shrinks.
  EXPECT_EQ(res.missing_objects, 0u);
  auto full = load_with(ReportMechanism::kModifiedClient);
  EXPECT_NEAR(res.plt_s, full.plt_s, full.plt_s);  // same order of magnitude
}

TEST(CorpusOptIn, CategoriesDifferInAdoption) {
  page::CorpusConfig cfg;
  cfg.seed = 77;
  cfg.num_sites = 1;
  cfg.num_providers = 200;
  page::Corpus corpus(cfg);
  std::map<page::Category, std::pair<int, int>> counts;  // opted, total
  for (const auto& p : corpus.providers()) {
    auto& [opted, total] = counts[p.category];
    ++total;
    if (p.timing_opt_in) ++opted;
  }
  auto rate = [&](page::Category c) {
    auto [opted, total] = counts[c];
    return total == 0 ? 0.0 : double(opted) / double(total);
  };
  // Fonts/CDNs opt in far more than ad networks — the §6 argument.
  EXPECT_GT(rate(page::Category::kCdn), rate(page::Category::kAds));
  EXPECT_LT(rate(page::Category::kAds), 0.35);
}

}  // namespace
}  // namespace oak::browser
