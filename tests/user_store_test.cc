// TieredUserStore (core/user_store.h): the contract under test is
// *transparency* — a profile that was demoted to the cold spill file and
// faulted back must be indistinguishable, byte-for-byte in export_state(),
// from one that never left the hot tier. Plus the supporting invariants:
// bounded hot tier, bit-exact codec, sorted hot+cold visitation, garbage
// compaction, and pointer discipline under churn (the ASan stress).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_server.h"
#include "core/user_store.h"
#include "http/cookies.h"

namespace oak::core {
namespace {

UserProfile sample_profile(const std::string& uid) {
  UserProfile p;
  p.user_id = uid;
  p.client_ip = "10.1.2.3";
  p.reports_received = 17;
  p.pages_served = 123456789;
  p.plt_sum_s = 0.1 + 0.2;  // not representable exactly: bit-exactness matters
  p.plt_count = 3;
  p.holdback = true;
  ActiveRule ar;
  ar.rule_id = 42;
  ar.alternative_index = 2;
  ar.activated_at = 1e-17;
  ar.expires_at = 9.75e300;
  ar.violation_distance = 3.999999999999999;
  ar.violator_ip = "203.0.113.9";
  p.active.insert_or_assign(42, ar);
  ActiveRule ar2;
  ar2.rule_id = -7;  // negative ids survive zigzag
  p.active.insert_or_assign(-7, ar2);
  p.pending_violations.insert_or_assign(5, 2);
  p.next_alternative.insert_or_assign(42, std::size_t(3));
  p.banned.insert(13);
  p.banned.insert(-1);
  return p;
}

TEST(UserStoreCodec, RoundTripIsBitExact) {
  const UserProfile original = sample_profile("u99");
  std::string bytes;
  encode_profile(original, bytes);
  UserProfile decoded;
  ASSERT_TRUE(decode_profile(bytes, decoded));
  decoded.user_id = original.user_id;  // uid travels beside the blob
  // Field spot checks...
  EXPECT_EQ(decoded.client_ip, original.client_ip);
  EXPECT_EQ(decoded.reports_received, original.reports_received);
  EXPECT_EQ(decoded.plt_count, original.plt_count);
  EXPECT_EQ(decoded.holdback, original.holdback);
  ASSERT_EQ(decoded.active.size(), 2u);
  EXPECT_EQ(decoded.active.at(42).violator_ip, "203.0.113.9");
  EXPECT_EQ(decoded.banned.count(-1), 1u);
  // ...and the real contract: re-encoding reproduces the identical bytes,
  // doubles included.
  std::string bytes2;
  encode_profile(decoded, bytes2);
  EXPECT_EQ(bytes, bytes2);
}

TEST(UserStoreCodec, TruncatedInputIsRejected) {
  const UserProfile original = sample_profile("u1");
  std::string bytes;
  encode_profile(original, bytes);
  UserProfile scratch;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_profile(std::string_view(bytes).substr(0, cut),
                                scratch))
        << "cut=" << cut;
  }
  // Trailing garbage is rejected too (pos must land exactly at the end).
  EXPECT_FALSE(decode_profile(bytes + "x", scratch));
}

TEST(UserStore, UntieredKeepsEverythingHot) {
  TieredUserStore store;  // hot_capacity = 0
  EXPECT_FALSE(store.tiered());
  for (int i = 0; i < 100; ++i) {
    store.get_or_create("u" + std::to_string(i), double(i));
  }
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.hot_count(), 100u);
  EXPECT_EQ(store.cold_count(), 0u);
  EXPECT_EQ(store.stats().demotions, 0u);
  EXPECT_EQ(store.cold_file_bytes(), 0u);
  EXPECT_EQ(store.find("unknown", 0.0, true), nullptr);
  EXPECT_EQ(store.demote_lru(), 0u);
  EXPECT_EQ(store.demote_idle(1e9), 0u);
}

TEST(UserStore, DemotesAtCapacityAndFaultsBackIn) {
  UserStoreConfig cfg;
  cfg.hot_capacity = 4;
  cfg.cold_buckets = 64;
  TieredUserStore store(cfg);
  for (int i = 0; i < 10; ++i) {
    UserProfile& p = store.get_or_create("u" + std::to_string(i), double(i));
    p.pages_served = std::size_t(i) + 1;
    p.plt_sum_s = 0.5 * double(i);
    p.plt_count = 1;
  }
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.hot_count(), 4u);
  EXPECT_EQ(store.cold_count(), 6u);
  EXPECT_GE(store.stats().demotions, 6u);
  // Every user — demoted or not — comes back with identical state.
  for (int i = 0; i < 10; ++i) {
    UserProfile* p = store.find("u" + std::to_string(i), 100.0, true);
    ASSERT_NE(p, nullptr) << i;
    EXPECT_EQ(p->user_id, "u" + std::to_string(i));
    EXPECT_EQ(p->pages_served, std::size_t(i) + 1);
    EXPECT_EQ(p->plt_count, 1u);
  }
  EXPECT_GT(store.stats().faultins, 0u);
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.find("never-seen", 0.0, true), nullptr);
}

TEST(UserStore, SortedVisitationCoversBothTiers) {
  UserStoreConfig cfg;
  cfg.hot_capacity = 3;
  TieredUserStore store(cfg);
  // Insertion order deliberately unsorted; uids chosen so lexicographic
  // order differs from it.
  for (const char* uid : {"u9", "u03", "u5", "u21", "u1", "u44", "u2"}) {
    store.get_or_create(uid, 1.0).client_ip = uid;
  }
  std::vector<std::string> visited;
  store.for_each_sorted([&](const UserProfile& p) {
    visited.push_back(p.user_id);
    EXPECT_EQ(p.client_ip, p.user_id);  // cold decode restored the state
  });
  const std::vector<std::string> expect = {"u03", "u1",  "u2", "u21",
                                           "u44", "u5",  "u9"};
  EXPECT_EQ(visited, expect);

  // Mutating sweep writes back through the cold tier: flip every client_ip,
  // then re-read via fault-in.
  store.for_each_sorted_mut([](UserProfile& p) {
    p.client_ip = "x-" + p.user_id;
    return true;
  });
  for (const std::string& uid : expect) {
    UserProfile* p = store.find(uid, 2.0, true);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->client_ip, "x-" + uid);
  }
}

TEST(UserStore, CompactionDropsGarbageAndPreservesState) {
  UserStoreConfig cfg;
  cfg.hot_capacity = 2;
  cfg.cold_buckets = 64;
  TieredUserStore store(cfg);
  // Churn the same small population through demote/fault-in cycles so the
  // spill file accumulates stale records.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 6; ++i) {
      UserProfile& p =
          store.get_or_create("u" + std::to_string(i), double(round));
      p.reports_received = std::size_t(round);
    }
  }
  EXPECT_EQ(store.size(), 6u);
  EXPECT_GT(store.cold_file_bytes(), store.cold_live_bytes());
  const std::uint64_t before = store.cold_file_bytes();
  store.compact_cold();
  EXPECT_LT(store.cold_file_bytes(), before);
  EXPECT_EQ(store.cold_file_bytes(), store.cold_live_bytes());
  EXPECT_EQ(store.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    UserProfile* p = store.find("u" + std::to_string(i), 1000.0, true);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->reports_received, 49u);
  }
}

TEST(UserStore, ClearTruncatesSpillFile) {
  UserStoreConfig cfg;
  cfg.hot_capacity = 2;
  TieredUserStore store(cfg);
  for (int i = 0; i < 20; ++i) {
    store.get_or_create("u" + std::to_string(i), double(i));
  }
  EXPECT_GT(store.cold_file_bytes(), 0u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.cold_file_bytes(), 0u);
  EXPECT_EQ(store.find("u1", 0.0, true), nullptr);
  // The store keeps working after a clear (import_state's lifecycle).
  store.get_or_create("u1", 0.0).pages_served = 7;
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find("u1", 0.0, true)->pages_served, 7u);
}

TEST(UserStore, DemoteIdleEvictsOnlyStaleUsers) {
  UserStoreConfig cfg;
  cfg.hot_capacity = 100;
  cfg.idle_after_s = 10.0;
  TieredUserStore store(cfg);
  store.get_or_create("old", 0.0);
  store.get_or_create("fresh", 95.0);
  EXPECT_EQ(store.demote_idle(100.0), 1u);
  EXPECT_EQ(store.hot_count(), 1u);
  EXPECT_EQ(store.cold_count(), 1u);
  // The idle user is still reachable — demotion is transparent.
  ASSERT_NE(store.find("old", 101.0, true), nullptr);
  EXPECT_EQ(store.hot_count(), 2u);
}

TEST(UserStore, DemoteLruPrefersCold) {
  UserStoreConfig cfg;
  cfg.hot_capacity = 8;
  TieredUserStore store(cfg);
  for (int i = 0; i < 8; ++i) {
    store.get_or_create("u" + std::to_string(i), double(i));
  }
  // Touch u7 so its reference bit survives the first clock pass; a forced
  // eviction must pick one of the untouched users first.
  store.find("u7", 9.0, true);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(store.demote_lru(), 1u);
    ASSERT_NE(store.find("u7", 10.0, false), nullptr);
    EXPECT_EQ(store.find("u7", 10.0, false)->user_id, "u7");
  }
}

// The ISSUE's ASan stress: 10k users through a hot tier of 8. The pointer
// contract — returned UserProfile*/string_view aliases are valid only until
// the next store mutation — means every access here uses the pointer
// immediately and re-looks-up after churn. Under ASan, any dangling alias
// (slot reuse, index rehash, scratch-buffer recycling) turns into a
// use-after-free/poison report.
TEST(UserStoreStress, PointerDisciplineUnderChurn10kUsersCapacity8) {
  UserStoreConfig cfg;
  cfg.hot_capacity = 8;
  cfg.cold_buckets = 256;
  TieredUserStore store(cfg);
  std::mt19937 rng(7);
  constexpr std::size_t kUsers = 10'000;
  for (std::size_t i = 0; i < kUsers; ++i) {
    const std::string uid = "u" + std::to_string(i);
    UserProfile& p = store.get_or_create(uid, double(i));
    ASSERT_EQ(p.user_id, uid);
    p.pages_served = i;
    p.plt_sum_s = 0.25 * double(i);
    p.plt_count = 1;
    // Interleaved lookup of a random earlier user: likely faults it in,
    // demoting someone else (possibly the profile just written above).
    const std::size_t j = rng() % (i + 1);
    UserProfile* q = store.find("u" + std::to_string(j), double(i), true);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->pages_served, j);
    EXPECT_EQ(q->user_id, "u" + std::to_string(j));
  }
  EXPECT_EQ(store.size(), kUsers);
  EXPECT_LE(store.hot_count(), 8u);
  EXPECT_GE(store.stats().demotions, kUsers - 8);
  // Sweep every profile (reads every cold record) and compact, then verify
  // a sample faults back intact.
  std::size_t seen = 0;
  store.for_each_sorted([&](const UserProfile& p) {
    ++seen;
    EXPECT_EQ(p.plt_count, 1u);
  });
  EXPECT_EQ(seen, kUsers);
  store.compact_cold();
  EXPECT_EQ(store.size(), kUsers);
  for (std::size_t i = 0; i < kUsers; i += 997) {
    UserProfile* p = store.find("u" + std::to_string(i), 1e6, true);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->pages_served, i);
  }
}

// --- Server-level transparency -------------------------------------------

class TieredServerFixture : public ::testing::Test {
 protected:
  TieredServerFixture()
      : universe_(net::NetworkConfig{.seed = 23, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("busy.com", net.server(origin_).addr());
    for (const char* host :
         {"x0.net", "x1.net", "x2.net", "x3.net", "alt.net"}) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      universe_.dns().bind(host, net.server(sid).addr());
      ips_[host] = net.server(sid).addr().to_string();
    }
    page::SiteBuilder b(universe_, "busy.com", origin_);
    for (int i = 0; i < 4; ++i) {
      b.add_direct("x" + std::to_string(i) + ".net", "/o.js",
                   html::RefKind::kScript, 9000, page::Category::kCdn);
    }
    site_ = b.finish();
    universe_.store().replicate("http://x0.net/o.js", "http://alt.net/o.js");
    cfg_.detector.min_population = 4;
    wire_ = report_wire();
  }

  std::string report_wire() {
    browser::PerfReport r;
    r.page_url = site_.index_url();
    r.entries.push_back(
        {site_.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    for (int i = 0; i < 4; ++i) {
      const std::string host = "x" + std::to_string(i) + ".net";
      r.entries.push_back({"http://" + host + "/o.js", host, ips_[host], 9000,
                           0.1, i == 0 ? 4.0 : 0.10 + 0.01 * i});
    }
    return r.serialize();
  }

  static std::string cookie(std::size_t user) {
    return std::string(http::kOakUserCookie) + "=tz" + std::to_string(user);
  }

  // Mixed deterministic workload over `span` cookie users: serves, reports,
  // rule add/remove, fresh mints, 404s. Same stream → same observable state,
  // which is what the parity assertions compare.
  template <typename Server>
  void apply_ops(Server& s, std::size_t count, std::size_t span) {
    int rule_id = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t kind = i % 10;
      const double t = double(i) * 0.25;
      if (kind == 3 && rule_id == 0) {
        rule_id = s.add_rule(make_domain_rule("direct", "x0.net", {"alt.net"}));
      } else if (kind == 8 && rule_id != 0 && i % 40 == 8) {
        s.remove_rule(rule_id, t);
        rule_id = 0;
      } else if (kind == 6) {
        http::Request req = http::Request::get(
            i % 20 == 6 ? "http://busy.com/absent" : site_.index_url());
        s.handle(req, t);
      } else if (kind % 2 == 0) {
        http::Request get = http::Request::get(site_.index_url());
        get.headers.set("Cookie", cookie(i % span));
        s.handle(get, t);
      } else {
        http::Request post =
            http::Request::post("http://busy.com/oak/report", wire_);
        post.headers.set("Cookie", cookie(i % span));
        s.handle(post, t);
      }
    }
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::map<std::string, std::string> ips_;
  page::Site site_;
  OakConfig cfg_;
  std::string wire_;
};

// The acceptance criterion, single-threaded form: a hot tier far smaller
// than the population must leave export_state() byte-identical to an
// untiered run of the same stream — through demotions, fault-ins,
// remove_rule sweeps over cold users, and spill-file compaction.
TEST_F(TieredServerFixture, ExportParityTieredVsUntiered) {
  OakServer plain(universe_, "busy.com", cfg_);
  OakConfig tiered_cfg = cfg_;
  tiered_cfg.user_store.hot_capacity = 4;
  tiered_cfg.user_store.cold_buckets = 64;
  OakServer tiered(universe_, "busy.com", tiered_cfg);

  apply_ops(plain, 400, 40);
  apply_ops(tiered, 400, 40);

  EXPECT_EQ(tiered.user_count(), plain.user_count());
  EXPECT_LE(tiered.user_store().hot_count(), 4u);
  EXPECT_GT(tiered.user_store().stats().demotions, 0u);
  EXPECT_GT(tiered.user_store().stats().faultins, 0u);
  EXPECT_EQ(tiered.export_state().dump(), plain.export_state().dump());

  // Compaction is invisible to the export too.
  tiered.compact_user_store();
  EXPECT_EQ(tiered.export_state().dump(), plain.export_state().dump());

  // And the tiering metrics reached the registry snapshot.
  obs::MetricsSnapshot snap = tiered.metrics_snapshot();
  EXPECT_GT(snap.counters["oak_user_demotions_total"], 0u);
  EXPECT_GT(snap.counters["oak_user_faultins_total"], 0u);
  EXPECT_GT(snap.gauges["oak_users_cold"], 0.0);
}

TEST_F(TieredServerFixture, ImportStateRebuildsTieredStore) {
  OakServer source(universe_, "busy.com", cfg_);
  apply_ops(source, 200, 30);
  const std::string want = source.export_state().dump();

  OakConfig tiered_cfg = cfg_;
  tiered_cfg.user_store.hot_capacity = 3;
  OakServer dst(universe_, "busy.com", tiered_cfg);
  apply_ops(dst, 50, 5);  // pre-existing state must be fully replaced
  dst.import_state(source.export_state());
  EXPECT_LE(dst.user_store().hot_count(), 3u);
  EXPECT_EQ(dst.export_state().dump(), want);
}

// Sharded form of the parity contract, plus spill_dir: per-shard named
// spill files under one directory.
TEST_F(TieredServerFixture, ShardedExportParityWithSpillDir) {
  ShardedOakServer plain(universe_, "busy.com", cfg_, 4);
  OakConfig tiered_cfg = cfg_;
  tiered_cfg.user_store.hot_capacity = 2;  // per shard
  tiered_cfg.user_store.cold_buckets = 64;
  tiered_cfg.user_store.spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "oak_spill_test")
          .string();
  ShardedOakServer tiered(universe_, "busy.com", tiered_cfg, 4);

  apply_ops(plain, 400, 40);
  apply_ops(tiered, 400, 40);
  EXPECT_EQ(tiered.export_state().dump(), plain.export_state().dump());
  // compact() folds the spill files even with durability off.
  tiered.compact();
  EXPECT_EQ(tiered.export_state().dump(), plain.export_state().dump());
  std::error_code ec;
  std::filesystem::remove_all(tiered_cfg.user_store.spill_dir, ec);
}

// Concurrency smoke for the tiered store behind the shard locks: request
// threads churn a population 50× the total hot capacity while audit/metrics
// readers take consistent cuts. TSan covers the locking; the final
// assertions cover counts surviving the churn.
TEST_F(TieredServerFixture, ShardedConcurrentChurnKeepsCountsConsistent) {
  OakConfig tiered_cfg = cfg_;
  tiered_cfg.user_store.hot_capacity = 8;  // per shard; 4 shards ⇒ 32 hot
  tiered_cfg.user_store.cold_buckets = 64;
  ShardedOakServer s(universe_, "busy.com", tiered_cfg, 4);
  s.add_rule(make_domain_rule("direct", "x0.net", {"alt.net"}));

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kUsersPerThread = 400;
  std::vector<std::thread> threads;
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (std::size_t i = 0; i < kUsersPerThread; ++i) {
        const std::string c =
            std::string(http::kOakUserCookie) + "=c" + std::to_string(tid) +
            "-" + std::to_string(i);
        http::Request get = http::Request::get(site_.index_url());
        get.headers.set("Cookie", c);
        s.handle(get, double(i));
        http::Request post =
            http::Request::post("http://busy.com/oak/report", wire_);
        post.headers.set("Cookie", c);
        s.handle(post, double(i) + 0.5);
      }
    });
  }
  std::thread auditor([&] {
    for (int i = 0; i < 20; ++i) {
      (void)s.metrics_snapshot();
      (void)s.user_count();
      (void)s.audit(double(i));
    }
  });
  for (auto& t : threads) t.join();
  auditor.join();

  EXPECT_EQ(s.user_count(), kThreads * kUsersPerThread);
  obs::MetricsSnapshot snap = s.metrics_snapshot();
  EXPECT_GT(snap.counters["oak_user_demotions_total"], 0u);
  EXPECT_EQ(snap.gauges["oak_users_hot"] + snap.gauges["oak_users_cold"],
            double(kThreads * kUsersPerThread));
  // Export → import round trip stays intact after heavy churn.
  ShardedOakServer copy(universe_, "busy.com", cfg_, 4);
  copy.add_rules(s.rules());
  copy.import_state(s.export_state());
  EXPECT_EQ(copy.user_count(), s.user_count());
  EXPECT_EQ(copy.export_state().dump(), s.export_state().dump());
}

}  // namespace
}  // namespace oak::core
