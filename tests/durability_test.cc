// oak::durability functional coverage: journal encode/scan round-trips,
// torn-tail handling, the manifest/snapshot version gates, legacy (pre-
// journal) snapshot upgrade, compaction, shard-count pinning, and the core
// promise — a restart reproduces the uninterrupted server's export_state()
// byte for byte.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/durability.h"
#include "core/sharded_server.h"
#include "http/cookies.h"
#include "util/framing.h"

namespace oak::core {
namespace {

namespace fs = std::filesystem;
using durability::Record;
using durability::RecordKind;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Fresh per-test scratch directory under the gtest temp root.
class DurabilityFixture : public ::testing::Test {
 protected:
  DurabilityFixture()
      : universe_(net::NetworkConfig{.seed = 17, .horizon_s = 0}) {
    dir_ = fs::path(::testing::TempDir()) /
           ("oak_dur_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);

    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("busy.com", net.server(origin_).addr());
    for (const char* host : {"x0.net", "x1.net", "x2.net", "x3.net",
                             "alt.net"}) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      universe_.dns().bind(host, net.server(sid).addr());
      ips_[host] = net.server(sid).addr().to_string();
    }
    page::SiteBuilder b(universe_, "busy.com", origin_);
    for (int i = 0; i < 4; ++i) {
      b.add_direct("x" + std::to_string(i) + ".net", "/o.js",
                   html::RefKind::kScript, 9000, page::Category::kCdn);
    }
    site_ = b.finish();
    universe_.store().replicate("http://x0.net/o.js", "http://alt.net/o.js");
    cfg_.detector.min_population = 4;
  }

  ~DurabilityFixture() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  OakConfig durable_config() const {
    OakConfig cfg = cfg_;
    cfg.durability.enabled = true;
    cfg.durability.dir = dir_.string();
    return cfg;
  }

  Rule the_rule() const {
    return make_domain_rule("direct", "x0.net", {"alt.net"});
  }

  std::string report_wire() {
    browser::PerfReport r;
    r.page_url = site_.index_url();
    r.entries.push_back(
        {site_.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    for (int i = 0; i < 4; ++i) {
      const std::string host = "x" + std::to_string(i) + ".net";
      r.entries.push_back({"http://" + host + "/o.js", host, ips_[host], 9000,
                           0.1, i == 0 ? 4.0 : 0.10 + 0.01 * i});
    }
    return r.serialize();
  }

  // One user's page-serve + report tick against any server type.
  template <typename ServerT>
  void drive(ServerT& server, const std::string& uid, double t,
             const std::string& wire) {
    const std::string cookie = std::string(http::kOakUserCookie) + "=" + uid;
    http::Request get = http::Request::get(site_.index_url());
    get.headers.set("Cookie", cookie);
    ASSERT_TRUE(server.handle(get, t).ok());
    http::Request post =
        http::Request::post("http://busy.com/oak/report", wire);
    post.headers.set("Cookie", cookie);
    ASSERT_LT(server.handle(post, t + 0.5).status, 400);
  }

  template <typename ServerT>
  void run_workload(ServerT& server) {
    const std::string wire = report_wire();
    for (int tick = 0; tick < 6; ++tick) {
      for (int u = 0; u < 5; ++u) {
        drive(server, "user" + std::to_string(u), double(tick), wire);
      }
    }
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::map<std::string, std::string> ips_;
  page::Site site_;
  OakConfig cfg_;
  fs::path dir_;
};

TEST(DurabilityRecords, EncodeDecodeRoundTrip) {
  Record req;
  req.kind = RecordKind::kRequest;
  req.request = {42, 1.5, true, 7, "u7", "10.0.0.9",
                 "http://busy.com/oak/report", std::string("body\0bytes", 10)};
  Record add;
  add.kind = RecordKind::kAddRule;
  add.add_rule = {43, 3, "rule text\n"};
  Record rem;
  rem.kind = RecordKind::kRemoveRule;
  rem.remove_rule = {44, 9.25, 3};

  for (const Record& r : {req, add, rem}) {
    Record out;
    ASSERT_TRUE(durability::decode_record(durability::encode_record(r), out));
    EXPECT_EQ(out.kind, r.kind);
    EXPECT_EQ(out.seq(), r.seq());
  }
  Record out;
  ASSERT_TRUE(durability::decode_record(durability::encode_record(req), out));
  EXPECT_EQ(out.request.now, 1.5);
  EXPECT_TRUE(out.request.post);
  EXPECT_EQ(out.request.minted, 7u);
  EXPECT_EQ(out.request.uid, "u7");
  EXPECT_EQ(out.request.client_ip, "10.0.0.9");
  EXPECT_EQ(out.request.path, "http://busy.com/oak/report");
  EXPECT_EQ(out.request.body, std::string("body\0bytes", 10));

  // Trailing garbage after a well-formed record is corruption, not slack.
  std::string padded = durability::encode_record(rem) + "x";
  EXPECT_FALSE(durability::decode_record(padded, out));
  EXPECT_FALSE(durability::decode_record("", out));
  EXPECT_FALSE(durability::decode_record("\x09", out));  // unknown kind
}

TEST_F(DurabilityFixture, JournalScanStopsCleanAtTornTail) {
  fs::create_directories(dir_);
  const std::string path = (dir_ / "wal-test.log").string();
  std::vector<std::string> payloads;
  {
    durability::Journal j(path, durability::PosixFile::open_append(path), 0);
    for (int i = 0; i < 5; ++i) {
      Record r;
      r.kind = RecordKind::kRequest;
      r.request.seq = std::uint64_t(i) + 1;
      r.request.uid = "user" + std::to_string(i);
      r.request.path = "http://busy.com/";
      payloads.push_back(durability::encode_record(r));
      j.append(payloads.back());
    }
  }
  const std::string whole = read_file(path);

  // Clean scan: all five records, fully consumed, not torn.
  auto scan = durability::scan_journal_file(path, 0);
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.bytes_consumed, whole.size());
  EXPECT_FALSE(scan.torn);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(scan.records[std::size_t(i)].seq(), std::uint64_t(i) + 1);
  }

  // Scan from a mid-file offset replays only the suffix.
  std::size_t third_start = 0;
  {
    std::size_t pos = 0;
    std::string_view p;
    ASSERT_EQ(util::read_frame(whole, pos, p), util::FrameStatus::kOk);
    ASSERT_EQ(util::read_frame(whole, pos, p), util::FrameStatus::kOk);
    third_start = pos;
  }
  scan = durability::scan_journal_file(path, third_start);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].seq(), 3u);

  // Cut the file at every byte inside the last record: the first four must
  // always survive, the tail must read as torn, never as a fifth record
  // with different contents.
  std::size_t fourth_end = 0;
  {
    std::size_t pos = 0;
    std::string_view p;
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(util::read_frame(whole, pos, p), util::FrameStatus::kOk);
    }
    fourth_end = pos;
  }
  for (std::size_t cut = fourth_end; cut < whole.size(); ++cut) {
    write_file(path, whole.substr(0, cut));
    scan = durability::scan_journal_file(path, 0);
    EXPECT_EQ(scan.records.size(), 4u) << cut;
    EXPECT_EQ(scan.bytes_consumed, fourth_end) << cut;
    EXPECT_EQ(scan.torn, cut != fourth_end) << cut;
  }

  // Offset past EOF (the compaction crash window): empty suffix, no error.
  write_file(path, whole.substr(0, fourth_end));
  scan = durability::scan_journal_file(path, whole.size() + 100);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.torn);

  // Missing file: empty suffix.
  scan = durability::scan_journal_file((dir_ / "absent.log").string(), 0);
  EXPECT_TRUE(scan.records.empty());
}

TEST_F(DurabilityFixture, RestartReproducesExportByteForByte) {
  const std::string oracle = [&] {
    ShardedOakServer plain(universe_, "busy.com", cfg_, 4);
    plain.add_rule(the_rule());
    run_workload(plain);
    return plain.export_state().dump();
  }();

  {
    ShardedOakServer durable(universe_, "busy.com", durable_config(), 4);
    durable.add_rule(the_rule());
    run_workload(durable);
    EXPECT_EQ(durable.export_state().dump(), oracle);
    // No shutdown hook, no final compaction: everything past the bootstrap
    // snapshot lives only in the journals, exactly like a kill -9.
  }

  ShardedOakServer recovered(universe_, "busy.com", durable_config(), 4);
  const durability::RecoveryReport report = recovered.recovery_report();
  EXPECT_TRUE(report.performed);
  EXPECT_FALSE(report.legacy);
  EXPECT_FALSE(report.bootstrapped);
  EXPECT_GT(report.records_replayed, 0u);
  EXPECT_EQ(report.rules_loaded, 0u);  // rule arrived via the control journal
  EXPECT_EQ(recovered.export_state().dump(), oracle);
  ASSERT_EQ(recovered.rules().size(), 1u);
  EXPECT_EQ(recovered.rules()[0].id, 1);

  // The recovered server is live: more traffic, then another restart.
  drive(recovered, "user1", 50.0, report_wire());
  const std::string extended = recovered.export_state().dump();
  ShardedOakServer again(universe_, "busy.com", durable_config(), 4);
  EXPECT_EQ(again.export_state().dump(), extended);
}

TEST_F(DurabilityFixture, FreshMintSurvivesRestartEvenWhenUntracked) {
  {
    ShardedOakServer durable(universe_, "busy.com", durable_config(), 4);
    // A cookie-less request that 404s: no profile is kept, no Set-Cookie
    // goes out — but the mint must still be durable or the next incarnation
    // would hand the same uid to a different person.
    http::Request missing = http::Request::get("http://busy.com/absent");
    EXPECT_EQ(durable.handle(missing, 1.0).status, 404);
    EXPECT_EQ(durable.user_count(), 0u);
    EXPECT_EQ(durable.export_state().at("next_user").as_int(), 2);
  }
  ShardedOakServer recovered(universe_, "busy.com", durable_config(), 4);
  EXPECT_EQ(recovered.export_state().at("next_user").as_int(), 2);
}

TEST_F(DurabilityFixture, RuleChurnReplaysInOrder) {
  const std::string wire = report_wire();
  auto churn = [&](ShardedOakServer& s) {
    const int id = s.add_rule(the_rule());
    for (int u = 0; u < 5; ++u) drive(s, "user" + std::to_string(u), 0, wire);
    EXPECT_TRUE(s.remove_rule(id, 1.0));
    for (int u = 0; u < 5; ++u) drive(s, "user" + std::to_string(u), 2, wire);
    // Re-added after removal: must get a fresh id, not recycle the old one.
    const int id2 = s.add_rule(the_rule());
    EXPECT_GT(id2, id);
    for (int u = 0; u < 5; ++u) drive(s, "user" + std::to_string(u), 3, wire);
  };

  const std::string oracle = [&] {
    ShardedOakServer plain(universe_, "busy.com", cfg_, 4);
    churn(plain);
    return plain.export_state().dump();
  }();
  {
    ShardedOakServer durable(universe_, "busy.com", durable_config(), 4);
    churn(durable);
    EXPECT_EQ(durable.export_state().dump(), oracle);
  }
  ShardedOakServer recovered(universe_, "busy.com", durable_config(), 4);
  EXPECT_EQ(recovered.export_state().dump(), oracle);
  ASSERT_EQ(recovered.rules().size(), 1u);
  EXPECT_EQ(recovered.rules()[0].id, 2);
  // And the id allocator is past both historical ids.
  EXPECT_EQ(recovered.add_rule(make_domain_rule("next", "x1.net", {"alt.net"})),
            3);
}

TEST_F(DurabilityFixture, CompactionTruncatesJournalsAndBumpsEpoch) {
  OakConfig cfg = durable_config();
  // Tiny threshold: the workload crosses it many times; the compacting_
  // flag keeps the passes serialized.
  cfg.durability.compact_threshold_bytes = 1;

  const std::string oracle = [&] {
    ShardedOakServer plain(universe_, "busy.com", cfg_, 4);
    plain.add_rule(the_rule());
    run_workload(plain);
    return plain.export_state().dump();
  }();

  std::uint64_t final_epoch = 0;
  {
    ShardedOakServer durable(universe_, "busy.com", cfg, 4);
    durable.add_rule(the_rule());
    run_workload(durable);
    EXPECT_EQ(durable.export_state().dump(), oracle);
    const auto snap = durable.metrics_snapshot();
    auto it = snap.counters.find("oak_journal_compactions_total");
    ASSERT_NE(it, snap.counters.end());
    EXPECT_GE(it->second, 2u);  // bootstrap + at least one threshold pass
    final_epoch = std::uint64_t(snap.gauges.at("oak_journal_epoch"));
    EXPECT_GE(final_epoch, 2u);
  }

  // On disk: one snapshot for the final epoch, a manifest pointing at it.
  const auto manifest = durability::Manifest::from_json(
      util::Json::parse(read_file((dir_ / "MANIFEST").string())));
  EXPECT_EQ(manifest.epoch, final_epoch);
  EXPECT_EQ(manifest.shards, 4u);
  EXPECT_TRUE(fs::exists(dir_ / manifest.snapshot_file));
  EXPECT_FALSE(
      fs::exists(dir_ / ("snapshot-" + std::to_string(final_epoch - 1) +
                         ".json")));

  ShardedOakServer recovered(universe_, "busy.com", cfg, 4);
  EXPECT_EQ(recovered.export_state().dump(), oracle);
  EXPECT_EQ(recovered.recovery_report().rules_loaded, 1u);
}

TEST_F(DurabilityFixture, NewerManifestVersionIsRejected) {
  {
    ShardedOakServer durable(universe_, "busy.com", durable_config(), 4);
    run_workload(durable);
  }
  util::Json manifest =
      util::Json::parse(read_file((dir_ / "MANIFEST").string()));
  manifest["format_version"] = durability::kManifestFormatVersion + 1;
  write_file((dir_ / "MANIFEST").string(), manifest.dump());
  EXPECT_THROW(ShardedOakServer(universe_, "busy.com", durable_config(), 4),
               std::runtime_error);
}

TEST_F(DurabilityFixture, NewerSnapshotEnvelopeVersionIsRejected) {
  {
    ShardedOakServer durable(universe_, "busy.com", durable_config(), 4);
    run_workload(durable);
  }
  const auto manifest = durability::Manifest::from_json(
      util::Json::parse(read_file((dir_ / "MANIFEST").string())));
  const std::string snap_path = (dir_ / manifest.snapshot_file).string();
  util::Json env = util::Json::parse(read_file(snap_path));
  env["envelope_version"] = durability::kSnapshotEnvelopeVersion + 1;
  write_file(snap_path, env.dump());
  EXPECT_THROW(ShardedOakServer(universe_, "busy.com", durable_config(), 4),
               std::runtime_error);
}

// Pin the on-disk format versions: bumping either is a compatibility event
// that must be deliberate (and come with an upgrade path), not a side
// effect of a refactor.
TEST(DurabilityVersioning, FormatVersionsArePinned) {
  EXPECT_EQ(durability::kManifestFormatVersion, 1);
  EXPECT_EQ(durability::kSnapshotEnvelopeVersion, 1);
}

TEST_F(DurabilityFixture, LegacyBareSnapshotLoadsAsDegradedColdStart) {
  // A PR-era deployment persisted raw export_state() JSON with no manifest,
  // no rules, no journals. Recovery must accept it: state restored, rules
  // left to operator configuration, journal baseline committed on the spot.
  const std::string legacy = [&] {
    ShardedOakServer plain(universe_, "busy.com", cfg_, 4);
    plain.add_rule(the_rule());
    run_workload(plain);
    return plain.export_state().dump();
  }();
  fs::create_directories(dir_);
  write_file((dir_ / "snapshot.json").string(), legacy);

  ShardedOakServer upgraded(universe_, "busy.com", durable_config(), 4);
  const durability::RecoveryReport report = upgraded.recovery_report();
  EXPECT_TRUE(report.performed);
  EXPECT_TRUE(report.legacy);
  EXPECT_TRUE(report.bootstrapped);
  EXPECT_EQ(report.records_replayed, 0u);
  // Degraded: user state is back…
  EXPECT_EQ(upgraded.export_state().dump(), legacy);
  // …but rules are configuration, re-added by the operator as before.
  EXPECT_TRUE(upgraded.rules().empty());
  upgraded.add_rule(the_rule());
  run_workload(upgraded);
  const std::string extended = upgraded.export_state().dump();

  // The upgrade is one-way: the next restart recovers through the manifest.
  ShardedOakServer next(universe_, "busy.com", durable_config(), 4);
  EXPECT_FALSE(next.recovery_report().legacy);
  EXPECT_EQ(next.export_state().dump(), extended);
}

TEST_F(DurabilityFixture, ShardCountMismatchIsRejected) {
  {
    ShardedOakServer durable(universe_, "busy.com", durable_config(), 4);
    run_workload(durable);
  }
  // Journals are per shard and the uid→shard map depends on the count, so
  // recovery refuses to guess; resizing goes through export/import.
  EXPECT_THROW(ShardedOakServer(universe_, "busy.com", durable_config(), 8),
               std::runtime_error);
  ShardedOakServer same(universe_, "busy.com", durable_config(), 4);
  EXPECT_TRUE(same.recovery_report().performed);
}

TEST_F(DurabilityFixture, JournalMetricsAreExported) {
  ShardedOakServer durable(universe_, "busy.com", durable_config(), 4);
  durable.add_rule(the_rule());
  run_workload(durable);
  const auto snap = durable.metrics_snapshot();
  EXPECT_GT(snap.counters.at("oak_journal_appends_total"), 0u);
  EXPECT_GT(snap.gauges.at("oak_journal_live_bytes"), 0.0);
  EXPECT_EQ(snap.counters.at("oak_journal_compactions_total"), 1u);
  ASSERT_TRUE(snap.histograms.count("oak_journal_append_bytes"));
  EXPECT_GT(snap.histograms.at("oak_journal_append_bytes").count(), 0u);

  // With metrics off the journal still works, it just reports nothing.
  OakConfig quiet = durable_config();
  quiet.metrics = false;
  quiet.durability.dir = (dir_ / "quiet").string();
  ShardedOakServer silent(universe_, "busy.com", quiet, 2);
  silent.add_rule(the_rule());
  run_workload(silent);
  const auto empty = silent.metrics_snapshot();
  EXPECT_EQ(empty.counters.count("oak_journal_appends_total"), 0u);
  ShardedOakServer silent_back(universe_, "busy.com", quiet, 2);
  EXPECT_EQ(silent_back.export_state().dump(),
            silent.export_state().dump());
}

// A compaction that throws (disk trouble mid-snapshot) must not wedge the
// compacting_ flag: the failure is counted, serving continues, and a later
// pass — once the disk recovers — compacts successfully. The fault is a
// directory squatting on the snapshot's tmp path, which makes the atomic
// write's fopen fail deterministically.
TEST_F(DurabilityFixture, ThrowingCompactionDoesNotWedgeCompaction) {
  OakConfig cfg = durable_config();
  cfg.durability.compact_threshold_bytes = 1;  // every report trips a pass

  ShardedOakServer durable(universe_, "busy.com", cfg, 4);
  durable.add_rule(the_rule());
  // Bootstrap compaction already ran: epoch 1 on disk. The next pass will
  // try to stage snapshot-2.json.tmp — block it.
  ASSERT_TRUE(fs::exists(dir_ / "snapshot-1.json"));
  fs::create_directories(dir_ / "snapshot-2.json.tmp");

  run_workload(durable);
  const auto broken = durable.metrics_snapshot();
  EXPECT_GE(broken.counter("oak_compact_failures_total"), 1u);
  // Still epoch 1: no pass succeeded while the tmp path was blocked.
  EXPECT_FALSE(fs::exists(dir_ / "snapshot-2.json"));

  // "Disk" recovers. If a throwing pass had left compacting_ stuck true,
  // no further compaction could ever run; instead the next report's pass
  // succeeds and the epoch advances.
  fs::remove_all(dir_ / "snapshot-2.json.tmp");
  const std::string wire = report_wire();
  drive(durable, "user0", 100.0, wire);
  const auto manifest = durability::Manifest::from_json(
      util::Json::parse(read_file((dir_ / "MANIFEST").string())));
  EXPECT_GE(manifest.epoch, 2u);
  EXPECT_TRUE(fs::exists(dir_ / manifest.snapshot_file));
  const auto healed = durable.metrics_snapshot();
  EXPECT_GE(healed.counter("oak_journal_compactions_total"), 2u);

  // The failed passes never corrupted recovery state.
  ShardedOakServer recovered(universe_, "busy.com", cfg, 4);
  EXPECT_EQ(recovered.export_state().dump(), durable.export_state().dump());
}

}  // namespace
}  // namespace oak::core
