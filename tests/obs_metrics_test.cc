// oak::obs — registry, instruments, snapshots, expositions, and the
// multi-threaded recording contract (this suite runs under TSan in CI).
// Recording-behaviour tests skip under -DOAK_OBS_DISABLED, where every
// record is compiled to a no-op; the Timer and Concurrency tests assert the
// disabled contract explicitly instead.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace oak::obs {
namespace {

TEST(Counter, IncrementsAndReads) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";

  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";

  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, BucketPlacementAndSum) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";

  Histogram h(HistogramSpec{1.0, 2.0, 4});  // bounds 1, 2, 4, 8
  h.observe(0.5);   // bucket 0 (le 1)
  h.observe(1.0);   // bucket 0 (le 1, inclusive upper bound)
  h.observe(3.0);   // bucket 2 (le 4)
  h.observe(100.0); // overflow
  HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 5u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 0u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 0u);
  EXPECT_EQ(s.counts[4], 1u);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum, 104.5);
  EXPECT_DOUBLE_EQ(s.mean(), 104.5 / 4.0);
}

TEST(Histogram, NanDroppedInfOverflowsWithFiniteSum) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";

  Histogram h(HistogramSpec{1.0, 2.0, 4});
  h.observe(std::nan(""));
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(2.0);
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 2u);       // NaN vanished, Inf counted in overflow
  EXPECT_EQ(s.counts.back(), 1u);
  EXPECT_TRUE(std::isfinite(s.sum));
  EXPECT_DOUBLE_EQ(s.sum, 2.0);
}

TEST(Histogram, QuantilesAreMonotoneAndWithinRange) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";

  Histogram h(HistogramSpec::latency());
  for (int i = 1; i <= 1000; ++i) h.observe(i * 1e-4);  // 0.1ms … 100ms
  HistogramSnapshot s = h.snapshot();
  const double p50 = s.quantile(0.50);
  const double p90 = s.quantile(0.90);
  const double p99 = s.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Estimates stay within a bucket's width of the true values.
  EXPECT_GT(p50, 0.02);
  EXPECT_LT(p50, 0.11);
  EXPECT_GT(p99, 0.05);
  EXPECT_LT(p99, 0.21);
}

TEST(Histogram, MergeAddsCountsAndRejectsSpecMismatch) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";

  Histogram a(HistogramSpec{1.0, 2.0, 4});
  Histogram b(HistogramSpec{1.0, 2.0, 4});
  a.observe(1.0);
  b.observe(3.0);
  b.observe(100.0);
  HistogramSnapshot sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.count(), 3u);
  EXPECT_DOUBLE_EQ(sa.sum, 104.0);

  Histogram c(HistogramSpec{2.0, 2.0, 4});
  EXPECT_THROW(sa.merge(c.snapshot()), std::invalid_argument);

  // Merging into an empty snapshot adopts the other's spec wholesale.
  HistogramSnapshot empty;
  empty.merge(a.snapshot());
  EXPECT_EQ(empty.count(), 1u);
}

TEST(Registry, FindOrCreateReturnsStableInstruments) {
  MetricsRegistry r;
  Counter& c1 = r.counter("x_total");
  Counter& c2 = r.counter("x_total");
  EXPECT_EQ(&c1, &c2);
  Histogram& h1 = r.histogram("lat_seconds");
  // Re-request with a different spec keeps the original.
  Histogram& h2 = r.histogram("lat_seconds", HistogramSpec{9.0, 3.0, 2});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.spec().least_bound, HistogramSpec::latency().least_bound);
}

TEST(Registry, SnapshotCapturesEverything) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";

  MetricsRegistry r;
  r.counter("a_total").inc(3);
  r.gauge("b").set(1.5);
  r.histogram("c_seconds").observe(0.01);
  MetricsSnapshot s = r.snapshot();
  EXPECT_EQ(s.counter("a_total"), 3u);
  EXPECT_DOUBLE_EQ(s.gauge("b"), 1.5);
  ASSERT_NE(s.histogram("c_seconds"), nullptr);
  EXPECT_EQ(s.histogram("c_seconds")->count(), 1u);
  // Absent names answer zero / null, never throw.
  EXPECT_EQ(s.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(s.gauge("missing"), 0.0);
  EXPECT_EQ(s.histogram("missing"), nullptr);
}

TEST(Snapshot, MergeAcrossRegistries) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";

  MetricsRegistry a, b;
  a.counter("n_total").inc(1);
  b.counter("n_total").inc(2);
  b.counter("only_b_total").inc(7);
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  a.histogram("h_seconds").observe(0.001);
  b.histogram("h_seconds").observe(0.002);
  MetricsSnapshot m = a.snapshot();
  m.merge(b.snapshot());
  EXPECT_EQ(m.counter("n_total"), 3u);
  EXPECT_EQ(m.counter("only_b_total"), 7u);
  EXPECT_DOUBLE_EQ(m.gauge("g"), 3.0);  // gauges merge by addition
  EXPECT_EQ(m.histogram("h_seconds")->count(), 2u);
}

TEST(Exposition, PrometheusTextShape) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";

  MetricsRegistry r;
  r.counter("oak_reports_ingested_total").inc(5);
  r.gauge("oak_shards").set(8.0);
  Histogram& h = r.histogram("oak_ingest_decode_seconds",
                             HistogramSpec{1.0, 2.0, 2});  // bounds 1, 2
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);  // overflow
  const std::string text = r.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE oak_reports_ingested_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("oak_reports_ingested_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE oak_shards gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE oak_ingest_decode_seconds histogram"),
            std::string::npos);
  // Cumulative buckets with the +Inf bucket always present.
  EXPECT_NE(text.find("oak_ingest_decode_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("oak_ingest_decode_seconds_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("oak_ingest_decode_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("oak_ingest_decode_seconds_count 3"), std::string::npos);
}

TEST(Exposition, JsonShapeIsFiniteAndCompact) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";

  MetricsRegistry r;
  r.counter("c_total").inc(2);
  Histogram& h = r.histogram("h_seconds", HistogramSpec{1.0, 2.0, 8});
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  const util::Json j = r.snapshot().to_json();
  EXPECT_EQ(j.at("counters").at("c_total").as_int(), 2);
  const util::Json& hist = j.at("histograms").at("h_seconds");
  EXPECT_EQ(hist.at("count").as_int(), 100);
  EXPECT_GT(hist.at("p50").as_number(), 0.0);
  // Only the one non-empty bucket is listed.
  EXPECT_EQ(hist.at("buckets").as_array().size(), 1u);
  // Nothing non-finite sneaks into the serialization as "null".
  EXPECT_EQ(j.dump().find("null"), std::string::npos);
}

TEST(Timer, RecordsOnceAndNullIsNoop) {
  MetricsRegistry r;
  Histogram& h = r.histogram("t_seconds");
  {
    ScopedTimer t(&h);
    t.stop();
    t.stop();  // idempotent
  }
  if constexpr (kEnabled) {
    EXPECT_EQ(h.snapshot().count(), 1u);
  } else {
    EXPECT_EQ(h.snapshot().count(), 0u);
  }
  { ScopedTimer t(nullptr); }  // must not crash or record
}

TEST(Concurrency, EightThreadsRecordLosslessly) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  Counter& c = r.counter("n_total");
  Histogram& h = r.histogram("v_seconds", HistogramSpec{1e-6, 2.0, 28});
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(1e-6 * ((t * kPerThread + i) % 1000 + 1));
        if (i % 1024 == 0) {
          // Concurrent snapshots must be safe against writers.
          MetricsSnapshot s = r.snapshot();
          (void)s;
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  if constexpr (kEnabled) {
    EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(h.snapshot().count(), std::uint64_t(kThreads) * kPerThread);
    EXPECT_TRUE(std::isfinite(h.snapshot().sum));
  }
}

}  // namespace
}  // namespace oak::obs
