// Property-style tests over randomized inputs (parameterized gtest):
// invariants that must hold for *every* seed, not just crafted examples.
#include <gtest/gtest.h>

#include <cmath>

#include "browser/browser.h"
#include "core/modifier.h"
#include "core/rule_parser.h"
#include "core/violator.h"
#include "http/cookies.h"
#include "util/scope.h"
#include "html/tokenizer.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/sensitivity.h"

namespace oak {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

// --- MAD detector invariants -------------------------------------------

TEST_P(SeededProperty, MadScaleInvariance) {
  // Scaling all observations by a constant must not change who violates:
  // the criterion is relative (§4.2.1). This is the property behind Oak's
  // indifference to slow access links.
  util::Rng rng(GetParam());
  std::vector<core::ServerObservation> base;
  for (int i = 0; i < 8; ++i) {
    core::ServerObservation o;
    o.ip = "10.0.0." + std::to_string(i + 1);
    o.domains = {"h" + std::to_string(i) + ".com"};
    const int n = 1 + int(rng.uniform_int(0, 3));
    for (int j = 0; j < n; ++j) {
      o.small_times.push_back(rng.uniform(0.05, 0.3) *
                              (i == 0 ? rng.uniform(3.0, 20.0) : 1.0));
    }
    base.push_back(o);
  }
  const double scale = rng.uniform(2.0, 50.0);
  std::vector<core::ServerObservation> scaled = base;
  for (auto& o : scaled) {
    for (auto& t : o.small_times) t *= scale;
  }
  auto v1 = core::detect_violators(base);
  auto v2 = core::detect_violators(scaled);
  ASSERT_EQ(v1.violators.size(), v2.violators.size());
  for (std::size_t i = 0; i < v1.violators.size(); ++i) {
    EXPECT_EQ(v1.violators[i].ip, v2.violators[i].ip);
  }
}

TEST_P(SeededProperty, MadMonotoneInK) {
  // A larger k can only shrink the violator set.
  util::Rng rng(GetParam() * 31);
  std::vector<core::ServerObservation> obs;
  for (int i = 0; i < 10; ++i) {
    core::ServerObservation o;
    o.ip = "10.0.0." + std::to_string(i + 1);
    o.small_times.push_back(rng.pareto(0.05, 5.0, 0.9));
    obs.push_back(o);
  }
  std::size_t prev = SIZE_MAX;
  for (double k : {1.0, 2.0, 3.0, 4.0, 6.0}) {
    core::DetectorConfig cfg;
    cfg.k = k;
    auto res = core::detect_violators(obs, cfg);
    EXPECT_LE(res.violators.size(), prev);
    prev = res.violators.size();
  }
}

TEST_P(SeededProperty, MedianBetweenMinAndMax) {
  util::Rng rng(GetParam() * 7);
  std::vector<double> v;
  for (int i = 0; i < 25; ++i) v.push_back(rng.normal(10, 5));
  const double med = util::median(v);
  EXPECT_GE(med, util::min_of(v));
  EXPECT_LE(med, util::max_of(v));
  EXPECT_GE(util::mad(v), 0.0);
}

// --- Rewrite engine invariants ------------------------------------------

TEST_P(SeededProperty, DomainRewriteIsCompleteAndReversible) {
  util::Rng rng(GetParam() * 101);
  // Build a page mentioning the default domain in several contexts.
  std::string html;
  const std::string def = "slow.cdn-x.net";
  const std::string alt = "mirror.cdn-y.org";
  const int mentions = 1 + int(rng.uniform_int(0, 9));
  for (int i = 0; i < mentions; ++i) {
    switch (rng.uniform_int(0, 2)) {
      case 0: html += "<img src=\"http://" + def + "/i.png\"/>"; break;
      case 1: html += "<script>var h=\"" + def + "\";</script>"; break;
      default: html += "<p>text " + def + " more</p>"; break;
    }
  }
  core::Rule r = core::make_domain_rule("r", def, {alt});
  r.id = 1;
  auto out = core::apply_rules(html, "/", {{&r, 0}});
  EXPECT_EQ(out.html.find(def), std::string::npos);
  EXPECT_EQ(out.records[0].replacements, static_cast<std::size_t>(mentions));
  // Applying the inverse rule restores the original byte-for-byte.
  core::Rule inverse = core::make_domain_rule("inv", alt, {def});
  inverse.id = 2;
  auto back = core::apply_rules(out.html, "/", {{&inverse, 0}});
  EXPECT_EQ(back.html, html);
}

TEST_P(SeededProperty, RemovalIsIdempotent) {
  util::Rng rng(GetParam() * 211);
  std::string block = "<iframe src=\"http://ads.example.net/u" +
                      std::to_string(rng.uniform_int(0, 999)) +
                      "\"></iframe>";
  std::string html = "<p>a</p>" + block + "<p>b</p>" + block;
  core::Rule r = core::make_removal_rule("kill", block);
  r.id = 1;
  auto once = core::apply_rules(html, "/", {{&r, 0}});
  auto twice = core::apply_rules(once.html, "/", {{&r, 0}});
  EXPECT_EQ(once.html, twice.html);
  EXPECT_EQ(twice.records[0].replacements, 0u);
}

// --- Serialization round trips -------------------------------------------

TEST_P(SeededProperty, ReportSerializationRoundTrips) {
  util::Rng rng(GetParam() * 307);
  browser::PerfReport r;
  r.user_id = "u" + std::to_string(rng.uniform_int(0, 1 << 20));
  r.page_url = "http://site" + std::to_string(rng.uniform_int(0, 99)) +
               ".com/index.html";
  r.plt_s = rng.uniform(0.01, 30.0);
  const int n = int(rng.uniform_int(0, 40));
  for (int i = 0; i < n; ++i) {
    browser::ReportEntry e;
    e.url = "http://h" + std::to_string(i) + ".net/o" +
            std::to_string(rng.uniform_int(0, 999));
    e.host = "h" + std::to_string(i) + ".net";
    e.ip = net::IpAddr(static_cast<std::uint32_t>(
                           rng.uniform_int(0, 0xffffffffll)))
               .to_string();
    e.size = static_cast<std::uint64_t>(rng.pareto(100, 1e6, 1.1));
    e.start_s = rng.uniform(0, 5);
    e.time_s = rng.uniform(0.001, 10);
    r.entries.push_back(e);
  }
  browser::PerfReport back = browser::PerfReport::deserialize(r.serialize());
  ASSERT_EQ(back.entries.size(), r.entries.size());
  EXPECT_EQ(back.user_id, r.user_id);
  for (std::size_t i = 0; i < r.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].url, r.entries[i].url);
    EXPECT_EQ(back.entries[i].ip, r.entries[i].ip);
    EXPECT_EQ(back.entries[i].size, r.entries[i].size);
    EXPECT_NEAR(back.entries[i].time_s, r.entries[i].time_s, 1e-9);
  }
}

TEST_P(SeededProperty, RuleFileRoundTrips) {
  util::Rng rng(GetParam() * 401);
  std::vector<core::Rule> rules;
  const int n = 1 + int(rng.uniform_int(0, 5));
  for (int i = 0; i < n; ++i) {
    core::Rule r;
    r.name = "rule" + std::to_string(i);
    const int type = 1 + int(rng.uniform_int(0, 2));
    r.type = static_cast<core::RuleType>(type);
    r.default_text = "block \"" + std::to_string(rng.uniform_int(0, 999)) +
                     "\"\nwith newline\tand tab";
    if (type != 1) {
      r.alternatives.push_back("alt-" + std::to_string(i));
    }
    r.ttl_s = rng.chance(0.5) ? 0.0 : double(rng.uniform_int(1, 86400));
    r.min_violations = 1 + int(rng.uniform_int(0, 4));
    rules.push_back(r);
  }
  auto reparsed = core::parse_rules(core::format_rules(rules));
  ASSERT_EQ(reparsed.size(), rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(reparsed[i].default_text, rules[i].default_text);
    EXPECT_EQ(reparsed[i].type, rules[i].type);
    EXPECT_EQ(reparsed[i].alternatives, rules[i].alternatives);
    EXPECT_EQ(reparsed[i].min_violations, rules[i].min_violations);
  }
}

// --- Tokenizer totality ---------------------------------------------------

TEST_P(SeededProperty, TokenizerNeverLosesBytes) {
  // Token ranges partition the source for arbitrary (even broken) input.
  util::Rng rng(GetParam() * 503);
  static const char* kPieces[] = {
      "<div>", "</div>", "text ", "<img src=\"u\"/>", "<", ">", "\"",
      "<script>x<y</script>", "<!-- c -->", "<!doctype html>", "&amp;",
      "<a href='q'>", "=", " ", "<broken", "attr=val"};
  std::string doc;
  const int n = int(rng.uniform_int(0, 60));
  for (int i = 0; i < n; ++i) {
    doc += kPieces[rng.uniform_int(0, std::size(kPieces) - 1)];
  }
  auto tokens = html::tokenize(doc);
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (const auto& t : tokens) {
    EXPECT_EQ(t.begin, prev_end);
    EXPECT_GE(t.end, t.begin);
    covered += t.end - t.begin;
    prev_end = t.end;
  }
  EXPECT_EQ(covered, doc.size());
}

// --- Detection monotonicity in injected delay -----------------------------

TEST_P(SeededProperty, SensitivityDetectionMonotoneInDelay) {
  // If Oak switches at delay d, it must also switch at 4d (same seed).
  const std::uint64_t seed = GetParam();
  auto switched_at = [&](double delay) {
    workload::SensitivityScenario scenario(seed);
    scenario.set_injected_delay(delay);
    net::ClientConfig cc;
    cc.region = net::Region::kNorthAmerica;
    net::ClientId cid = scenario.universe().network().add_client(cc);
    browser::BrowserConfig bc;
    bc.use_cache = false;
    browser::Browser b(scenario.universe(), cid, bc);
    b.load(scenario.oak_site_url(), 0.0);
    auto second = b.load(scenario.oak_site_url(), 60.0);
    for (const auto& e : second.report.entries) {
      if (e.host == "alt0.sensnet.net") return true;
    }
    return false;
  };
  if (switched_at(1.0)) {
    EXPECT_TRUE(switched_at(4.0));
  }
  EXPECT_TRUE(switched_at(8.0));  // an 8s stall must always be caught
}

// --- JSON fuzz round trip ---------------------------------------------

util::Json random_json(util::Rng& rng, int depth) {
  const int kind = int(rng.uniform_int(0, depth > 0 ? 5 : 3));
  switch (kind) {
    case 0: return util::Json(nullptr);
    case 1: return util::Json(rng.chance(0.5));
    case 2: return util::Json(rng.uniform(-1e6, 1e6));
    case 3: {
      std::string s;
      const int len = int(rng.uniform_int(0, 12));
      for (int i = 0; i < len; ++i) {
        s += static_cast<char>(rng.uniform_int(1, 126));
      }
      return util::Json(std::move(s));
    }
    case 4: {
      util::JsonArray a;
      const int n = int(rng.uniform_int(0, 4));
      for (int i = 0; i < n; ++i) a.push_back(random_json(rng, depth - 1));
      return util::Json(std::move(a));
    }
    default: {
      util::JsonObject o;
      const int n = int(rng.uniform_int(0, 4));
      for (int i = 0; i < n; ++i) {
        o["k" + std::to_string(i)] = random_json(rng, depth - 1);
      }
      return util::Json(std::move(o));
    }
  }
}

TEST_P(SeededProperty, JsonFuzzRoundTrips) {
  util::Rng rng(GetParam() * 601);
  for (int i = 0; i < 50; ++i) {
    util::Json j = random_json(rng, 4);
    const std::string wire = j.dump();
    util::Json back = util::Json::parse(wire);
    EXPECT_EQ(back.dump(), wire);
    // Pretty form parses to the same value.
    EXPECT_EQ(util::Json::parse(j.dump_pretty()).dump(), wire);
  }
}

// --- Glob properties -------------------------------------------------

TEST_P(SeededProperty, GlobLiteralAndWildcardProperties) {
  util::Rng rng(GetParam() * 701);
  for (int i = 0; i < 100; ++i) {
    std::string path = "/";
    const int len = int(rng.uniform_int(1, 14));
    for (int c = 0; c < len; ++c) {
      path += static_cast<char>('a' + rng.uniform_int(0, 25));
    }
    // A literal matches itself; '*' matches everything; a prefix glob
    // matches; a wrong-prefix glob does not.
    EXPECT_TRUE(util::glob_match(path, path));
    EXPECT_TRUE(util::glob_match("*", path));
    EXPECT_TRUE(util::glob_match(path.substr(0, 3) + "*", path));
    EXPECT_FALSE(util::glob_match("/zzz-nope/*", path));
    // Replacing any single character with '?' still matches.
    std::string q = path;
    q[std::size_t(rng.uniform_int(0, std::int64_t(path.size()) - 1))] = '?';
    EXPECT_TRUE(util::glob_match(q, path));
  }
}

// --- Cookie round trips ------------------------------------------------

TEST_P(SeededProperty, CookieHeaderRoundTrips) {
  util::Rng rng(GetParam() * 801);
  std::map<std::string, std::string> jar;
  const int n = int(rng.uniform_int(1, 6));
  for (int i = 0; i < n; ++i) {
    std::string key = "k" + std::to_string(rng.uniform_int(0, 1 << 16));
    std::string value;
    const int len = int(rng.uniform_int(1, 20));
    for (int c = 0; c < len; ++c) {
      value += static_cast<char>('0' + rng.uniform_int(0, 9));
    }
    jar[key] = value;
  }
  EXPECT_EQ(http::parse_cookie_header(http::to_cookie_header(jar)), jar);
}

// --- MAD against a reference implementation ---------------------------

TEST_P(SeededProperty, MadMatchesNaiveReference) {
  util::Rng rng(GetParam() * 901);
  std::vector<double> xs;
  const int n = int(rng.uniform_int(2, 60));
  for (int i = 0; i < n; ++i) xs.push_back(rng.pareto(0.01, 100.0, 0.8));

  // Reference: full sorts, textbook definition.
  auto ref_median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t m = v.size() / 2;
    return v.size() % 2 ? v[m] : (v[m - 1] + v[m]) / 2.0;
  };
  const double med = ref_median(xs);
  std::vector<double> dev;
  for (double x : xs) dev.push_back(std::fabs(x - med));
  EXPECT_NEAR(util::median(xs), med, 1e-12 * std::max(1.0, med));
  EXPECT_NEAR(util::mad(xs), ref_median(dev), 1e-9);
}

// --- Parser robustness: arbitrary bytes never crash ---------------------

std::string random_bytes(util::Rng& rng, int max_len) {
  std::string s;
  const int len = int(rng.uniform_int(0, max_len));
  for (int i = 0; i < len; ++i) {
    s += static_cast<char>(rng.uniform_int(1, 255));
  }
  return s;
}

// Fragments that steer the fuzz toward interesting parser states.
std::string random_rule_soup(util::Rng& rng) {
  static const char* kPieces[] = {
      "rule", "\"name\"", "{", "}", "type:", "1", "2", "99", "default:",
      "\"text\"", "alt:", "ttl:", "-3", "scope:", "sub:", "->", "#c\n",
      "\"unterminated", "\\", "\"\\q\"", "min_violations:", "0.5"};
  std::string s;
  const int n = int(rng.uniform_int(0, 30));
  for (int i = 0; i < n; ++i) {
    s += kPieces[rng.uniform_int(0, std::size(kPieces) - 1)];
    s += ' ';
  }
  return s;
}

TEST_P(SeededProperty, RuleParserNeverCrashesOnGarbage) {
  util::Rng rng(GetParam() * 1009);
  for (int i = 0; i < 200; ++i) {
    const std::string input =
        rng.chance(0.5) ? random_rule_soup(rng) : random_bytes(rng, 120);
    try {
      auto rules = core::parse_rules(input);
      for (const auto& r : rules) EXPECT_TRUE(r.validate());
    } catch (const core::RuleParseError&) {
      // The only acceptable failure mode.
    }
  }
}

TEST_P(SeededProperty, JsonParserNeverCrashesOnGarbage) {
  util::Rng rng(GetParam() * 1103);
  static const char* kPieces[] = {"{", "}", "[", "]", "\"", ":", ",",
                                  "null", "true", "1e", "-", "\\u12",
                                  "\\", "0.5", "x"};
  for (int i = 0; i < 300; ++i) {
    std::string input;
    if (rng.chance(0.5)) {
      const int n = int(rng.uniform_int(0, 25));
      for (int p = 0; p < n; ++p) {
        input += kPieces[rng.uniform_int(0, std::size(kPieces) - 1)];
      }
    } else {
      input = random_bytes(rng, 80);
    }
    try {
      util::Json j = util::Json::parse(input);
      // Whatever parsed must re-serialize and re-parse to itself.
      EXPECT_EQ(util::Json::parse(j.dump()), j);
    } catch (const util::JsonError&) {
    }
  }
}

TEST_P(SeededProperty, ReportDeserializeNeverCrashesOnGarbage) {
  util::Rng rng(GetParam() * 1201);
  // Mutate a valid report wire image: flip bytes, truncate, duplicate.
  browser::PerfReport r;
  r.user_id = "u";
  r.page_url = "http://x.com/";
  r.entries.push_back({"http://h.net/o", "h.net", "10.0.0.1", 100, 0, 0.1});
  const std::string wire = r.serialize();
  for (int i = 0; i < 200; ++i) {
    std::string mutated = wire;
    const int mutations = 1 + int(rng.uniform_int(0, 4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.uniform_int(0, 2)) {
        case 0: {  // flip a byte
          std::size_t at = std::size_t(
              rng.uniform_int(0, std::int64_t(mutated.size()) - 1));
          mutated[at] = static_cast<char>(rng.uniform_int(1, 255));
          break;
        }
        case 1:  // truncate
          mutated.resize(std::size_t(
              rng.uniform_int(0, std::int64_t(mutated.size()))));
          break;
        default:  // duplicate a chunk
          mutated += mutated.substr(
              std::size_t(rng.uniform_int(0, std::int64_t(mutated.size()))));
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    try {
      auto parsed = browser::PerfReport::deserialize(mutated);
      (void)parsed;
    } catch (const util::JsonError&) {
    }
  }
}

}  // namespace
}  // namespace oak
