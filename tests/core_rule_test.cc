#include <gtest/gtest.h>

#include "core/rule.h"
#include "core/rule_parser.h"

namespace oak::core {
namespace {

TEST(Rule, ValidationAcceptsPaperExample) {
  // The §4.1 example: a type-2 rule swapping a jquery source, TTL 0
  // (never expire), site-wide scope.
  Rule r = make_source_rule(
      "jquery", "<script src=\"http://s1.com/jquery.js\"></script>",
      {"<script src=\"http://s2.net/jquery.js\"></script>"}, 0.0, "*");
  std::string why;
  EXPECT_TRUE(r.validate(&why)) << why;
  EXPECT_EQ(r.type, RuleType::kAlternativeSource);
  EXPECT_TRUE(r.scope.is_site_wide());
  EXPECT_FALSE(r.is_domain_rule());
}

TEST(Rule, ValidationRejections) {
  std::string why;
  Rule empty_default;
  EXPECT_FALSE(empty_default.validate(&why));

  Rule t1 = make_removal_rule("r", "<div>ad</div>");
  t1.alternatives.push_back("x");
  EXPECT_FALSE(t1.validate(&why));  // type-1 takes no alternatives

  Rule t2 = make_source_rule("r", "a", {"b"});
  t2.alternatives.clear();
  EXPECT_FALSE(t2.validate(&why));  // type-2 needs alternatives

  Rule same = make_source_rule("r", "a", {"a"});
  EXPECT_FALSE(same.validate(&why));  // alternative must differ

  Rule neg = make_source_rule("r", "a", {"b"}, -1.0);
  EXPECT_FALSE(neg.validate(&why));

  Rule minv = make_source_rule("r", "a", {"b"});
  minv.min_violations = 0;
  EXPECT_FALSE(minv.validate(&why));

  Rule badsub = make_source_rule("r", "a", {"b"});
  badsub.sub_rules.push_back({"", "x"});
  EXPECT_FALSE(badsub.validate(&why));
}

TEST(Rule, DomainRuleDetection) {
  EXPECT_TRUE(make_domain_rule("r", "cdn.a.net", {"alt.a.net"})
                  .is_domain_rule());
  EXPECT_FALSE(make_source_rule("r", "<img src=\"http://a/b\"/>", {"x"})
                   .is_domain_rule());
  EXPECT_FALSE(make_source_rule("r", "noDotsHere", {"x"}).is_domain_rule());
}

TEST(RuleParser, ParsesFullBlock) {
  const std::string text = R"(
    # switch jquery to the backup CDN
    rule "jquery-cdn" {
      type: 2
      default: "<script src=\"http://s1.com/jquery.js\"></script>"
      alt: "<script src=\"http://s2.net/jquery.js\"></script>"
      alt: "<script src=\"http://s3.org/jquery.js\"></script>"
      ttl: 3600
      scope: "/blog/*"
      min_violations: 3
      sub: "s1.com/skin.css" -> "s2.net/skin.css"
    }
  )";
  auto rules = parse_rules(text);
  ASSERT_EQ(rules.size(), 1u);
  const Rule& r = rules[0];
  EXPECT_EQ(r.name, "jquery-cdn");
  EXPECT_EQ(r.type, RuleType::kAlternativeSource);
  EXPECT_EQ(r.default_text,
            "<script src=\"http://s1.com/jquery.js\"></script>");
  ASSERT_EQ(r.alternatives.size(), 2u);
  EXPECT_DOUBLE_EQ(r.ttl_s, 3600.0);
  EXPECT_EQ(r.scope.pattern(), "/blog/*");
  EXPECT_EQ(r.min_violations, 3);
  ASSERT_EQ(r.sub_rules.size(), 1u);
  EXPECT_EQ(r.sub_rules[0].from, "s1.com/skin.css");
  EXPECT_EQ(r.sub_rules[0].to, "s2.net/skin.css");
}

TEST(RuleParser, MultipleRulesAndComments) {
  const std::string text = R"(
    rule "a" { type: 1 default: "<div>ad</div>" }  # remove the ad
    rule "b" { type: 3 default: "x" alt: "y" }
  )";
  auto rules = parse_rules(text);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].type, RuleType::kRemove);
  EXPECT_TRUE(rules[0].alternatives.empty());
  EXPECT_EQ(rules[1].type, RuleType::kAlternativeObject);
}

TEST(RuleParser, EmptyInputYieldsNoRules) {
  EXPECT_TRUE(parse_rules("").empty());
  EXPECT_TRUE(parse_rules("  # only a comment\n").empty());
}

TEST(RuleParser, StringEscapes) {
  auto rules = parse_rules(R"(rule "r" { type: 1 default: "a\"b\\c\nd\te" })");
  EXPECT_EQ(rules[0].default_text, "a\"b\\c\nd\te");
}

TEST(RuleParser, ErrorsCarryLineNumbers) {
  try {
    parse_rules("rule \"x\" {\n  type: 9\n}");
    FAIL() << "expected RuleParseError";
  } catch (const RuleParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(RuleParser, Rejections) {
  EXPECT_THROW(parse_rules("notrule \"x\" {}"), RuleParseError);
  EXPECT_THROW(parse_rules("rule \"x\" { type: 2 }"), RuleParseError);
  EXPECT_THROW(parse_rules("rule \"x\" { default: \"d\" }"), RuleParseError);
  EXPECT_THROW(parse_rules("rule \"x\" { type: 1 default: \"d\" "),
               RuleParseError);
  EXPECT_THROW(parse_rules("rule \"x\" { bogus: 1 }"), RuleParseError);
  EXPECT_THROW(parse_rules(R"(rule "x" { type: 1 default: "a" sub: "f" "t" })"),
               RuleParseError);
  EXPECT_THROW(parse_rules("rule \"x\" { type: 1 default: \"unterminated"),
               RuleParseError);
}

TEST(RuleParser, FormatRoundTrips) {
  const std::string text = R"(
    rule "r1" {
      type: 2
      default: "block with \"quotes\" and\nnewlines"
      alt: "alt1"
      alt: "alt2"
      ttl: 60
      scope: "/x/*"
      min_violations: 2
      sub: "a" -> "b"
    }
    rule "r2" { type: 1 default: "<iframe src=\"http://ads.x.com/\"></iframe>" }
  )";
  auto rules = parse_rules(text);
  auto reparsed = parse_rules(format_rules(rules));
  ASSERT_EQ(reparsed.size(), rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(reparsed[i].name, rules[i].name);
    EXPECT_EQ(reparsed[i].type, rules[i].type);
    EXPECT_EQ(reparsed[i].default_text, rules[i].default_text);
    EXPECT_EQ(reparsed[i].alternatives, rules[i].alternatives);
    EXPECT_DOUBLE_EQ(reparsed[i].ttl_s, rules[i].ttl_s);
    EXPECT_EQ(reparsed[i].scope.pattern(), rules[i].scope.pattern());
    EXPECT_EQ(reparsed[i].min_violations, rules[i].min_violations);
    EXPECT_EQ(reparsed[i].sub_rules.size(), rules[i].sub_rules.size());
  }
}

TEST(RuleTypeNames, Strings) {
  EXPECT_EQ(to_string(RuleType::kRemove), "remove");
  EXPECT_EQ(to_string(RuleType::kAlternativeSource), "alternative-source");
  EXPECT_EQ(to_string(RuleType::kAlternativeObject), "alternative-object");
}

}  // namespace
}  // namespace oak::core
