#include <gtest/gtest.h>

#include "html/build.h"
#include "html/extract.h"
#include "page/inline_eval.h"
#include "page/object.h"
#include "page/site.h"

namespace oak::page {
namespace {

TEST(ObjectStore, PutFindReplace) {
  ObjectStore store;
  WebObject o;
  o.url = "http://a.com/x.png";
  o.size = 100;
  store.put(o);
  ASSERT_TRUE(store.has("http://a.com/x.png"));
  EXPECT_EQ(store.find("http://a.com/x.png")->size, 100u);
  o.size = 200;
  store.put(o);  // replace
  EXPECT_EQ(store.find("http://a.com/x.png")->size, 200u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find("http://missing/"), nullptr);
}

TEST(ObjectStore, ReplicatePreservesBodyAndInduction) {
  ObjectStore store;
  WebObject o;
  o.url = "http://a.com/s.js";
  o.body = "load(\"http://b.com/x.png\")";
  o.induced = {"http://b.com/x.png"};
  store.put(o);
  ASSERT_TRUE(store.replicate("http://a.com/s.js", "http://alt.com/s.js"));
  const WebObject* copy = store.find("http://alt.com/s.js");
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->url, "http://alt.com/s.js");
  EXPECT_EQ(copy->body, o.body);
  EXPECT_EQ(copy->induced, o.induced);
  EXPECT_FALSE(store.replicate("http://missing/", "http://x/"));
}

TEST(MakeScriptBody, MentionsUrlsAndPads) {
  auto body = make_script_body({"http://a.com/1.png", "http://b.com/2.png"},
                               4000);
  EXPECT_NE(body.find("http://a.com/1.png"), std::string::npos);
  EXPECT_NE(body.find("http://b.com/2.png"), std::string::npos);
  EXPECT_GE(body.size(), 4000u);
}

TEST(InlineEval, RecognizesLoaderIdiom) {
  const std::string html =
      html::programmatic_loader_script("metrics.x.io", "/ping.js");
  auto loads = evaluate_inline_scripts(html);
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0].host, "metrics.x.io");
  EXPECT_EQ(loads[0].path, "/ping.js");
  EXPECT_EQ(loads[0].url(), "http://metrics.x.io/ping.js");
}

TEST(InlineEval, FollowsRewrittenHost) {
  // The critical property: Oak's text rewrite changes what the browser
  // loads, exactly as executing the modified script would.
  std::string html =
      html::programmatic_loader_script("slow.ads.net", "/a.js");
  std::size_t pos;
  while ((pos = html.find("slow.ads.net")) != std::string::npos) {
    html.replace(pos, 12, "fast.ads.net");
  }
  auto loads = evaluate_inline_scripts(html);
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0].host, "fast.ads.net");
}

TEST(InlineEval, IgnoresPlainScripts) {
  EXPECT_TRUE(evaluate_inline_scripts("<script>var x=1;</script>").empty());
  EXPECT_FALSE(evaluate_loader("var h=\"\"; +h+\"/x\""));
  EXPECT_FALSE(evaluate_loader("var h=\"a.com\"; no path"));
  EXPECT_FALSE(evaluate_loader("var h=\"a.com\";e.src=x+h+\"nopath\""));
}

TEST(DefaultMaxAge, ByKindAndCategory) {
  EXPECT_EQ(default_max_age(html::RefKind::kScript, Category::kAds), 0.0);
  EXPECT_EQ(default_max_age(html::RefKind::kScript, Category::kAnalytics),
            0.0);
  EXPECT_GT(default_max_age(html::RefKind::kImage, Category::kCdn), 0.0);
  EXPECT_GT(default_max_age(html::RefKind::kScript, Category::kCdn), 0.0);
}

class SiteBuilderTest : public ::testing::Test {
 protected:
  SiteBuilderTest() : universe_(net::NetworkConfig{}) {
    origin_ = universe_.network().add_server(net::ServerConfig{});
    universe_.dns().bind("test.com",
                         universe_.network().server(origin_).addr());
  }
  WebUniverse universe_;
  net::ServerId origin_;
};

TEST_F(SiteBuilderTest, AllTiersAppearCorrectly) {
  SiteBuilder b(universe_, "test.com", origin_);
  b.add_direct("cdn.a.net", "/1.png", html::RefKind::kImage, 1000,
               Category::kCdn);
  b.add_inline_loader("metrics.b.io", "/m.js", 2000, Category::kAnalytics);
  b.add_script_with_induced(
      "ads.c.net", "/loader.js", 3000, Category::kAds,
      {{"img.d.com", "/banner.png", html::RefKind::kImage, 4000,
        Category::kAds}});
  b.add_hidden("track.e.com", "/px.gif", html::RefKind::kImage, 50,
               Category::kAnalytics);
  Site site = b.finish();

  EXPECT_EQ(site.host, "test.com");
  ASSERT_EQ(site.external_hosts.size(), 5u);  // incl. the aggregator host
  EXPECT_EQ(site.external_object_count(), 5u);

  const WebObject* index = universe_.store().find(site.index_url());
  ASSERT_NE(index, nullptr);
  const std::string& html_text = index->body;

  // Tier 1 visible as explicit refs.
  auto refs = html::extract_references(html_text);
  bool saw_direct = false, saw_aggregator = false;
  for (const auto& r : refs) {
    if (r.url == "http://cdn.a.net/1.png") saw_direct = true;
    if (r.url == "http://ads.c.net/loader.js") saw_aggregator = true;
  }
  EXPECT_TRUE(saw_direct);
  EXPECT_TRUE(saw_aggregator);

  // Tier 2 host in text but not as a URL ref.
  EXPECT_NE(html_text.find("metrics.b.io"), std::string::npos);
  for (const auto& r : refs) {
    EXPECT_EQ(r.url.find("metrics.b.io"), std::string::npos);
  }

  // Tier 3: induced object in the aggregator's body, not the page.
  EXPECT_EQ(html_text.find("img.d.com"), std::string::npos);
  const WebObject* loader =
      universe_.store().find("http://ads.c.net/loader.js");
  ASSERT_NE(loader, nullptr);
  EXPECT_NE(loader->body.find("http://img.d.com/banner.png"),
            std::string::npos);
  EXPECT_EQ(loader->induced,
            (std::vector<std::string>{"http://img.d.com/banner.png"}));

  // Hidden: neither in page text nor any script body; only on the index
  // object's hidden list.
  EXPECT_EQ(html_text.find("track.e.com"), std::string::npos);
  EXPECT_EQ(index->hidden_induced,
            (std::vector<std::string>{"http://track.e.com/px.gif"}));
}

TEST_F(SiteBuilderTest, OriginObjectsAreNotExternal) {
  SiteBuilder b(universe_, "test.com", origin_);
  b.add_origin_object("/a.css", html::RefKind::kStylesheet, 500);
  b.add_origin_object("/b.png", html::RefKind::kImage, 500, "static.test.com");
  Site site = b.finish();
  EXPECT_EQ(site.origin_object_count, 2u);
  EXPECT_TRUE(site.external_hosts.empty());
}

TEST_F(SiteBuilderTest, HandlerRegistryWorks) {
  EXPECT_EQ(universe_.handler("test.com"), nullptr);
  universe_.set_handler("test.com", [](const http::Request&, double) {
    return http::Response::text("ok");
  });
  const auto* h = universe_.handler("test.com");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ((*h)(http::Request::get("http://test.com/"), 0.0).body, "ok");
}

TEST_F(SiteBuilderTest, RefTierToString) {
  EXPECT_EQ(to_string(RefTier::kDirect), "direct");
  EXPECT_EQ(to_string(RefTier::kHidden), "hidden");
  EXPECT_EQ(to_string(Category::kSocial), "Social Networking");
}

}  // namespace
}  // namespace oak::page
