// Correctness of the matcher's memoization layer: a cached matcher must be
// observationally identical to an uncached one (across all three tiers),
// memoized verdicts must die with the rule set, and TTL expiry must reach
// back through the memo to the underlying script bodies.
#include <gtest/gtest.h>

#include <map>

#include "core/matcher.h"
#include "core/oak_server.h"

namespace oak::core {
namespace {

// Two matchers over the same mutable script universe — one memoized, one
// not — plus per-URL fetch counters.
class MatchCacheFixture : public ::testing::Test {
 protected:
  MatchCacheFixture() { rebuild(); }

  void rebuild(MatchCacheConfig cache_cfg = {}) {
    auto fetcher = [this](const std::string& url) -> std::optional<std::string> {
      ++fetches_[url];
      auto it = scripts_.find(url);
      if (it == scripts_.end()) return std::nullopt;
      return it->second;
    };
    MatcherConfig cached_cfg;
    cached_cfg.cache = cache_cfg;
    cached_ = std::make_unique<Matcher>(fetcher, cached_cfg);
    MatcherConfig plain_cfg;
    plain_cfg.enable_cache = false;
    plain_ = std::make_unique<Matcher>(fetcher, plain_cfg);
  }

  std::size_t total_fetches() const {
    std::size_t n = 0;
    for (const auto& [url, c] : fetches_) n += c;
    return n;
  }

  std::map<std::string, std::string> scripts_ = {
      {"http://agg.adnet.com/loader.js",
       "load(\"http://creative.cdn-x.net/banner.png\");"},
      {"http://metrics.io/m.js", "var endpoint=\"beacon.metrics.io\";"},
  };
  std::map<std::string, std::size_t> fetches_;
  std::unique_ptr<Matcher> cached_;
  std::unique_ptr<Matcher> plain_;
};

TEST_F(MatchCacheFixture, CachedEqualsUncachedAcrossAllTiers) {
  struct Query {
    std::string rule;
    std::vector<std::string> domains;
    std::vector<std::string> scripts;
  };
  const std::vector<Query> queries = {
      // Tier 1.
      {"<img src=\"http://cdn.a.net/x.png\"/>", {"cdn.a.net"}, {}},
      // Tier 2.
      {"<script>var h=\"beacon.metrics.io\";</script>",
       {"beacon.metrics.io"},
       {"http://metrics.io/m.js"}},
      // Tier 3.
      {"<script src=\"http://agg.adnet.com/loader.js\"></script>",
       {"creative.cdn-x.net"},
       {"http://agg.adnet.com/loader.js"}},
      // Tier 3 candidate that the rule never references.
      {"<img src=\"http://unrelated.com/x.png\"/>",
       {"creative.cdn-x.net"},
       {"http://agg.adnet.com/loader.js"}},
      // Unfetchable script.
      {"<script src=\"http://gone.example.com/x.js\"></script>",
       {"creative.cdn-x.net"},
       {"http://gone.example.com/x.js"}},
      // No violators.
      {"<img src=\"http://cdn.a.net/x.png\"/>", {}, {}},
  };
  // Two passes: the second answers from the memo and must not diverge.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& q : queries) {
      EXPECT_EQ(cached_->match_text(q.rule, q.domains, q.scripts, 1.0),
                plain_->match_text(q.rule, q.domains, q.scripts, 1.0))
          << "pass " << pass << " rule: " << q.rule;
    }
  }
  const MatchCacheStats* stats = cached_->cache_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->memo_hits, queries.size() - 1);  // all but the empty-domain
  EXPECT_EQ(plain_->cache_stats(), nullptr);
}

TEST_F(MatchCacheFixture, MemoAbsorbsRepeatedTier3Work) {
  const std::string rule =
      "<script src=\"http://agg.adnet.com/loader.js\"></script>";
  const std::vector<std::string> scripts = {"http://agg.adnet.com/loader.js"};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cached_->match_text(rule, {"creative.cdn-x.net"}, scripts,
                                  double(i)),
              MatchTier::kExternalScript);
  }
  // One real fetch; nine answers straight from the memo.
  EXPECT_EQ(fetches_["http://agg.adnet.com/loader.js"], 1u);
  EXPECT_EQ(cached_->cache_stats()->memo_hits, 9u);
  EXPECT_EQ(cached_->cache_stats()->memo_misses, 1u);
}

TEST_F(MatchCacheFixture, InvalidateMemoRecomputesButKeepsScriptBodies) {
  const std::string rule =
      "<script src=\"http://agg.adnet.com/loader.js\"></script>";
  const std::vector<std::string> scripts = {"http://agg.adnet.com/loader.js"};
  cached_->match_text(rule, {"creative.cdn-x.net"}, scripts, 0.0);
  cached_->invalidate_memo();
  EXPECT_EQ(cached_->cache_stats()->invalidations, 1u);
  // Recomputed — but the script body survives the memo flush (it belongs to
  // the web, not to the rule set), so no second fetch.
  EXPECT_EQ(cached_->match_text(rule, {"creative.cdn-x.net"}, scripts, 1.0),
            MatchTier::kExternalScript);
  EXPECT_EQ(cached_->cache_stats()->memo_misses, 2u);
  EXPECT_EQ(fetches_["http://agg.adnet.com/loader.js"], 1u);
  EXPECT_EQ(cached_->cache_stats()->script_hits, 1u);
}

TEST_F(MatchCacheFixture, TtlExpiryRefetchesAndChangedBodyFlipsVerdict) {
  MatchCacheConfig cfg;
  cfg.script_ttl_s = 300.0;
  rebuild(cfg);
  const std::string rule =
      "<script src=\"http://agg.adnet.com/loader.js\"></script>";
  const std::vector<std::string> scripts = {"http://agg.adnet.com/loader.js"};
  const std::vector<std::string> violator = {"creative.cdn-x.net"};

  EXPECT_EQ(cached_->match_text(rule, violator, scripts, 0.0),
            MatchTier::kExternalScript);
  EXPECT_EQ(cached_->match_text(rule, violator, scripts, 100.0),
            MatchTier::kExternalScript);
  EXPECT_EQ(fetches_["http://agg.adnet.com/loader.js"], 1u);

  // The aggregator stops serving the creative. Within the TTL window the
  // memoized verdict stands (bounded staleness, by design)…
  scripts_["http://agg.adnet.com/loader.js"] = "load(\"http://other.net/\");";
  EXPECT_EQ(cached_->match_text(rule, violator, scripts, 200.0),
            MatchTier::kExternalScript);
  EXPECT_EQ(fetches_["http://agg.adnet.com/loader.js"], 1u);

  // …but past it, the memo entry expires with the body: re-fetch, observe
  // the change, and flip the verdict.
  EXPECT_EQ(cached_->match_text(rule, violator, scripts, 400.0),
            MatchTier::kNone);
  EXPECT_EQ(fetches_["http://agg.adnet.com/loader.js"], 2u);
  EXPECT_EQ(cached_->cache_stats()->script_refreshes, 1u);
  // The changed body also flushed the memo.
  EXPECT_GE(cached_->cache_stats()->invalidations, 1u);
}

TEST_F(MatchCacheFixture, UnchangedBodyRefreshKeepsVerdict) {
  MatchCacheConfig cfg;
  cfg.script_ttl_s = 300.0;
  rebuild(cfg);
  const std::string rule =
      "<script src=\"http://agg.adnet.com/loader.js\"></script>";
  const std::vector<std::string> scripts = {"http://agg.adnet.com/loader.js"};
  cached_->match_text(rule, {"creative.cdn-x.net"}, scripts, 0.0);
  EXPECT_EQ(cached_->match_text(rule, {"creative.cdn-x.net"}, scripts, 400.0),
            MatchTier::kExternalScript);
  EXPECT_EQ(fetches_["http://agg.adnet.com/loader.js"], 2u);
  EXPECT_EQ(cached_->cache_stats()->script_refreshes, 1u);
  // Same body came back: memoized verdicts stay valid.
  EXPECT_EQ(cached_->cache_stats()->invalidations, 0u);
}

TEST_F(MatchCacheFixture, UnfetchableScriptsAreNegativelyCached) {
  const std::vector<std::string> scripts = {"http://gone.example.com/x.js"};
  // Two different rules both reference the dead script; the failed fetch is
  // remembered, not repeated.
  EXPECT_EQ(cached_->match_text(
                "<script src=\"http://gone.example.com/x.js\"></script>",
                {"creative.cdn-x.net"}, scripts, 0.0),
            MatchTier::kNone);
  EXPECT_EQ(cached_->match_text(
                "<a href=\"http://gone.example.com/x.js\">dead</a>",
                {"creative.cdn-x.net"}, scripts, 1.0),
            MatchTier::kNone);
  EXPECT_EQ(fetches_["http://gone.example.com/x.js"], 1u);
}

TEST_F(MatchCacheFixture, ScriptLruEvictsOldestBody) {
  MatchCacheConfig cfg;
  cfg.script_capacity = 2;
  rebuild(cfg);
  scripts_["http://s1.net/a.js"] = "ref(\"http://v.net/\");";
  scripts_["http://s2.net/b.js"] = "ref(\"http://v.net/\");";
  scripts_["http://s3.net/c.js"] = "ref(\"http://v.net/\");";
  auto rule = [](const std::string& url) {
    return "<script src=\"" + url + "\"></script>";
  };
  for (const char* url :
       {"http://s1.net/a.js", "http://s2.net/b.js", "http://s3.net/c.js"}) {
    EXPECT_EQ(cached_->match_text(rule(url), {"v.net"}, {url}, 0.0),
              MatchTier::kExternalScript);
  }
  // s3 evicted s1. A fresh question about s1 (new domains → memo miss) must
  // refetch it; s3 is still resident.
  EXPECT_EQ(cached_->match_text(rule("http://s1.net/a.js"), {"w.net"},
                                {"http://s1.net/a.js"}, 0.0),
            MatchTier::kNone);
  EXPECT_EQ(fetches_["http://s1.net/a.js"], 2u);
  EXPECT_EQ(cached_->match_text(rule("http://s3.net/c.js"), {"w.net"},
                                {"http://s3.net/c.js"}, 0.0),
            MatchTier::kNone);
  EXPECT_EQ(fetches_["http://s3.net/c.js"], 1u);
}

TEST(MatchCacheMemo, CapacityResetIsWholesale) {
  MatchCacheConfig cfg;
  cfg.memo_capacity = 2;
  MatchCache cache(cfg);
  const MatchCache::MemoKey k1{1, 1, 1}, k2{2, 2, 2}, k3{3, 3, 3};
  cache.memo_store(k1, MatchTier::kDirect, 0.0);
  cache.memo_store(k2, MatchTier::kText, 0.0);
  EXPECT_EQ(cache.memo_size(), 2u);
  cache.memo_store(k3, MatchTier::kNone, 0.0);  // hits capacity → reset
  EXPECT_EQ(cache.memo_size(), 1u);
  EXPECT_FALSE(cache.memo_lookup(k1, 0.0).has_value());
  EXPECT_EQ(cache.memo_lookup(k3, 0.0), MatchTier::kNone);
}

TEST(MatchCacheHash, VectorHashSeparatesElementBoundaries) {
  EXPECT_NE(fnv1a(std::vector<std::string>{"ab", "c"}),
            fnv1a(std::vector<std::string>{"a", "bc"}));
  EXPECT_NE(fnv1a(std::vector<std::string>{}),
            fnv1a(std::vector<std::string>{""}));
}

// The server owns the invalidation contract: rule churn flushes the memo.
TEST(MatchCacheServer, RuleChurnInvalidatesMemo) {
  page::WebUniverse universe(net::NetworkConfig{.seed = 3, .horizon_s = 0});
  OakConfig cfg;
  cfg.detector.min_population = 4;
  OakServer server(universe, "t.com", cfg);
  const int keep = server.add_rule(make_domain_rule("keep", "slow.net",
                                                    {"alt.net"}));
  const int churn = server.add_rule(make_domain_rule("churn", "other.net",
                                                     {"alt.net"}));

  browser::PerfReport report;
  report.page_url = "http://t.com/index.html";
  report.entries.push_back(
      {"http://t.com/index.html", "t.com", "10.0.0.1", 4000, 0, 0.09});
  for (int i = 0; i < 3; ++i) {
    const std::string host = "ok" + std::to_string(i) + ".net";
    report.entries.push_back({"http://" + host + "/x.js", host,
                              "10.0.1." + std::to_string(i), 9000, 0.1, 0.1});
  }
  report.entries.push_back(
      {"http://slow.net/x.js", "slow.net", "10.0.2.1", 9000, 0.1, 5.0});

  const MatchCacheStats* stats = server.matcher().cache_stats();
  ASSERT_NE(stats, nullptr);

  // Warm the memo, then churn the rule set: each change flushes it.
  server.analyze("u1", report, 0.0);
  EXPECT_GT(stats->memo_misses, 0u);
  server.add_rule(make_domain_rule("new", "third.net", {"alt.net"}));
  EXPECT_EQ(stats->invalidations, 1u);
  server.analyze("u1", report, 1.0);  // re-warm
  ASSERT_TRUE(server.remove_rule(churn, 2.0));
  EXPECT_EQ(stats->invalidations, 2u);
  (void)keep;
}

}  // namespace
}  // namespace oak::core
