// StringArena recycling semantics (util/arena.h). The per-shard ingest
// arena is cleared before every report; the contract that makes that safe
// and fast is (a) views handed out during one report stay stable until the
// next clear(), (b) clear() retains every block so steady-state ingest
// allocates nothing, and (c) the intern table forgets its entries but keeps
// its capacity.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/arena.h"

namespace oak::util {
namespace {

// One "report" worth of traffic: a mix of store()s and duplicate intern()s
// spanning several blocks at the test's small block size.
void simulate_report(StringArena& arena, int salt) {
  // Fixed-width salt: same-shaped reports must cost the same bytes, or the
  // no-growth assertion would be comparing different workloads.
  char salt_str[8];
  std::snprintf(salt_str, sizeof salt_str, "%05d", salt % 100000);
  std::vector<std::string_view> views;
  for (int i = 0; i < 40; ++i) {
    const std::string host = "host-" + std::to_string(i % 8) + ".example";
    const std::string url = "http://" + host + "/obj-" + std::to_string(i) +
                            "-" + salt_str + ".js";
    views.push_back(arena.intern(host));
    views.push_back(arena.store(url));
  }
  // Within the report every view must still read back what was written.
  for (std::string_view v : views) {
    ASSERT_FALSE(v.empty());
    ASSERT_TRUE(v.find("host-") != std::string_view::npos ||
                v.find("http://") != std::string_view::npos);
  }
}

TEST(StringArena, PointerStabilityWithinReport) {
  StringArena arena(/*block_bytes=*/64);  // force multi-block reports
  std::vector<std::pair<std::string_view, std::string>> stored;
  for (int i = 0; i < 100; ++i) {
    const std::string s = "payload-" + std::to_string(i) + std::string(i % 37, 'x');
    stored.emplace_back(arena.store(s), s);
  }
  ASSERT_GT(arena.block_count(), 1u);
  // Later allocations (including block appends) never move earlier bytes.
  for (const auto& [view, owned] : stored) EXPECT_EQ(view, owned);
}

TEST(StringArena, InternDedupsByPointerWithinReport) {
  StringArena arena(64);
  const std::string_view a = arena.intern("cdn.example");
  const std::string_view b = arena.intern("cdn.example");
  EXPECT_EQ(a.data(), b.data());  // pointer identity, not just equality
  EXPECT_EQ(arena.unique_strings(), 1u);
  EXPECT_EQ(arena.intern_hits(), 1u);
}

TEST(StringArena, NoCapacityGrowthAcross10kClearedReports) {
  StringArena arena(64);
  // Warm up: the first report establishes the high-water mark.
  simulate_report(arena, 0);
  arena.clear();
  simulate_report(arena, 1);
  const std::size_t blocks = arena.block_count();
  const std::size_t capacity = arena.capacity_bytes();
  ASSERT_GT(blocks, 1u);

  for (int r = 2; r < 10'000; ++r) {
    arena.clear();
    simulate_report(arena, r);
    ASSERT_EQ(arena.block_count(), blocks) << "report " << r;
    ASSERT_EQ(arena.capacity_bytes(), capacity) << "report " << r;
  }
}

TEST(StringArena, ClearResetsInternTable) {
  StringArena arena(64);
  const std::string_view before = arena.intern("stable.example");
  arena.intern("stable.example");
  EXPECT_EQ(arena.intern_hits(), 1u);

  arena.clear();
  EXPECT_EQ(arena.unique_strings(), 0u);
  EXPECT_EQ(arena.intern_hits(), 0u);
  EXPECT_EQ(arena.bytes_used(), 0u);

  // Re-interning after clear() is a fresh store (no stale hit against the
  // wiped table), and dedup works anew within the new report.
  const std::string_view again = arena.intern("stable.example");
  EXPECT_EQ(arena.unique_strings(), 1u);
  EXPECT_EQ(arena.intern_hits(), 0u);
  EXPECT_EQ(again, before);  // same bytes, recycled storage
  const std::string_view dup = arena.intern("stable.example");
  EXPECT_EQ(dup.data(), again.data());
  EXPECT_EQ(arena.intern_hits(), 1u);
}

TEST(StringArena, OversizedStringsRecycleToo) {
  StringArena arena(64);
  const std::string big(1000, 'b');
  arena.store(big);
  arena.store("tail");  // lands after the oversized block
  arena.clear();
  const std::size_t capacity = arena.capacity_bytes();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(arena.store(big), big);
    arena.clear();
  }
  EXPECT_EQ(arena.capacity_bytes(), capacity);
}

TEST(StringArena, EmptyStringInternHasStablePointer) {
  StringArena arena;
  const std::string_view e1 = arena.intern("");
  EXPECT_NE(e1.data(), nullptr);
  EXPECT_TRUE(e1.empty());
  const std::string_view e2 = arena.intern("");
  EXPECT_EQ(e1.data(), e2.data());
}

TEST(StringArena, ReleaseDropsRetention) {
  StringArena arena(64);
  simulate_report(arena, 0);
  ASSERT_GT(arena.capacity_bytes(), 0u);
  arena.release();
  EXPECT_EQ(arena.block_count(), 0u);
  EXPECT_EQ(arena.capacity_bytes(), 0u);
  // Still usable afterwards.
  EXPECT_EQ(arena.intern("back"), "back");
}

}  // namespace
}  // namespace oak::util
