// A/B holdback policy and the treated-vs-holdback lift estimate.
#include <gtest/gtest.h>

#include "browser/browser.h"
#include "core/analytics.h"
#include "core/oak_server.h"

namespace oak::core {
namespace {

TEST(HoldbackPolicy, StableAndProportional) {
  Policy p;
  p.holdback_fraction = 0.3;
  std::size_t held = 0;
  constexpr int kUsers = 4000;
  for (int i = 0; i < kUsers; ++i) {
    const std::string uid = "user" + std::to_string(i);
    const bool h = p.in_holdback(uid);
    EXPECT_EQ(h, p.in_holdback(uid));  // stable
    if (h) ++held;
  }
  EXPECT_NEAR(double(held) / kUsers, 0.3, 0.03);

  p.holdback_fraction = 0.0;
  EXPECT_FALSE(p.in_holdback("anyone"));
  p.holdback_fraction = 1.0;
  EXPECT_TRUE(p.in_holdback("anyone"));
}

class HoldbackFixture : public ::testing::Test {
 protected:
  HoldbackFixture()
      : universe_(net::NetworkConfig{.seed = 91, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("ab.example", net.server(origin_).addr());
    net::ServerConfig sick;
    sick.chronic_degradation = 25.0;
    universe_.dns().bind("slow.net", net.server(net.add_server(sick)).addr());
    universe_.dns().bind(
        "fast.net", net.server(net.add_server(net::ServerConfig{})).addr());
    for (int i = 0; i < 4; ++i) {
      universe_.dns().bind(
          "p" + std::to_string(i) + ".net",
          net.server(net.add_server(net::ServerConfig{})).addr());
    }
    page::SiteBuilder b(universe_, "ab.example", origin_);
    b.add_direct("slow.net", "/x.js", html::RefKind::kScript, 15'000,
                 page::Category::kCdn);
    for (int i = 0; i < 4; ++i) {
      b.add_direct("p" + std::to_string(i) + ".net", "/x.js",
                   html::RefKind::kScript, 15'000, page::Category::kCdn);
    }
    site_ = b.finish();
    universe_.store().replicate("http://slow.net/x.js",
                                "http://fast.net/x.js");
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  page::Site site_;
};

TEST_F(HoldbackFixture, HeldBackUsersNeverGetRewrites) {
  OakConfig cfg;
  cfg.policy.holdback_fraction = 0.5;
  OakServer oak(universe_, "ab.example", cfg);
  oak.add_rule(make_domain_rule("switch", "slow.net", {"fast.net"}));
  oak.install();

  browser::BrowserConfig bc;
  bc.use_cache = false;
  std::size_t rewritten = 0, held = 0;
  for (int u = 0; u < 12; ++u) {
    browser::Browser b(universe_, universe_.network().add_client({}), bc);
    b.load(site_.index_url(), 0.0);
    auto second = b.load(site_.index_url(), 300.0);
    const bool got_rewrite =
        second.page_html.find("fast.net") != std::string::npos;
    const std::string uid = second.report.user_id;
    if (cfg.policy.in_holdback(uid)) {
      ++held;
      EXPECT_FALSE(got_rewrite) << uid;
    } else {
      ++rewritten;
      EXPECT_TRUE(got_rewrite) << uid;
    }
  }
  EXPECT_GT(held, 0u);
  EXPECT_GT(rewritten, 0u);
}

TEST_F(HoldbackFixture, LiftEstimateShowsOakFaster) {
  OakConfig cfg;
  cfg.policy.holdback_fraction = 0.5;
  OakServer oak(universe_, "ab.example", cfg);
  oak.add_rule(make_domain_rule("switch", "slow.net", {"fast.net"}));
  oak.install();

  browser::BrowserConfig bc;
  bc.use_cache = false;
  for (int u = 0; u < 16; ++u) {
    browser::Browser b(universe_, universe_.network().add_client({}), bc);
    // Several loads so treated users spend most loads on the fast mirror.
    for (int i = 0; i < 5; ++i) b.load(site_.index_url(), i * 300.0);
  }
  SiteAnalytics audit(oak);
  const LiftEstimate& lift = audit.lift();
  ASSERT_TRUE(lift.valid());
  EXPECT_GT(lift.treated_users, 0u);
  EXPECT_GT(lift.holdback_users, 0u);
  // The held-back group keeps paying the 25x provider: their mean PLT must
  // exceed the treated group's decisively.
  EXPECT_GT(lift.ratio, 1.3);
  // The lift block shows up in both export formats.
  EXPECT_NE(audit.to_json().dump().find("\"lift\""), std::string::npos);
  EXPECT_NE(audit.to_report().find("lift:"), std::string::npos);
}

TEST_F(HoldbackFixture, LiftAbsentWithoutHoldback) {
  OakServer oak(universe_, "ab.example", OakConfig{});
  oak.add_rule(make_domain_rule("switch", "slow.net", {"fast.net"}));
  oak.install();
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser b(universe_, universe_.network().add_client({}), bc);
  b.load(site_.index_url(), 0.0);
  SiteAnalytics audit(oak);
  EXPECT_FALSE(audit.lift().valid());
  EXPECT_EQ(audit.to_json().find("lift"), nullptr);
}

TEST_F(HoldbackFixture, HoldbackFlagSurvivesSnapshot) {
  OakConfig cfg;
  cfg.policy.holdback_fraction = 1.0;  // everyone held back
  OakServer oak(universe_, "ab.example", cfg);
  oak.add_rule(make_domain_rule("switch", "slow.net", {"fast.net"}));
  oak.install();
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser b(universe_, universe_.network().add_client({}), bc);
  auto res = b.load(site_.index_url(), 0.0);

  OakServer restored(universe_, "ab.example", cfg);
  restored.add_rule(make_domain_rule("switch", "slow.net", {"fast.net"}));
  restored.import_state(util::Json::parse(oak.export_state().dump()));
  const UserProfile* p = restored.profile(res.report.user_id);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->holdback);
  EXPECT_GT(p->plt_count, 0u);
  EXPECT_GT(p->mean_plt_s(), 0.0);
}

}  // namespace
}  // namespace oak::core
