// End-to-end integration tests: the full Oak loop of Figs. 4 & 5 —
// load -> report -> violator detection -> rule activation -> modified page
// -> faster subsequent loads — driven through the real browser, network and
// server components together.
#include <gtest/gtest.h>

#include "browser/browser.h"
#include "core/oak_server.h"
#include "util/stats.h"

namespace oak {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  EndToEnd() : universe_(net::NetworkConfig{.seed = 77, .horizon_s = 0}) {
    net::Network& net = universe_.network();

    net::ServerConfig ocfg;
    ocfg.name = "origin";
    ocfg.bandwidth_bps = 300e6;
    ocfg.base_processing_s = 0.008;
    origin_ = net.add_server(ocfg);
    universe_.dns().bind("news.com", net.server(origin_).addr());

    // Four healthy externals plus one chronically slow one, plus an
    // alternative for the slow provider.
    for (int i = 0; i < 4; ++i) {
      net::ServerConfig cfg;
      cfg.name = "healthy" + std::to_string(i);
      net::ServerId sid = net.add_server(cfg);
      const std::string host = "cdn" + std::to_string(i) + ".fast.net";
      universe_.dns().bind(host, net.server(sid).addr());
      healthy_hosts_.push_back(host);
    }
    net::ServerConfig sick;
    sick.name = "sick";
    sick.chronic_degradation = 30.0;
    universe_.dns().bind("slow.ads.net",
                         net.server(net.add_server(sick)).addr());
    net::ServerConfig altc;
    altc.name = "alt";
    universe_.dns().bind("fast.ads.net",
                         net.server(net.add_server(altc)).addr());

    page::SiteBuilder b(universe_, "news.com", origin_);
    for (const auto& h : healthy_hosts_) {
      b.add_direct(h, "/lib.js", html::RefKind::kScript, 20'000,
                   page::Category::kCdn);
    }
    // kCdn keeps the script cacheable, which the alias test relies on.
    b.add_direct("slow.ads.net", "/ad.js", html::RefKind::kScript, 20'000,
                 page::Category::kCdn);
    site_ = b.finish();
    universe_.store().replicate("http://slow.ads.net/ad.js",
                                "http://fast.ads.net/ad.js");

    oak_ = std::make_unique<core::OakServer>(universe_, "news.com",
                                             core::OakConfig{});
    oak_->add_rule(
        core::make_domain_rule("ads", "slow.ads.net", {"fast.ads.net"}));
    oak_->install();
  }

  browser::Browser make_browser(net::Region region = net::Region::kNorthAmerica,
                                bool cache = false) {
    net::ClientConfig cc;
    cc.region = region;
    browser::BrowserConfig bc;
    bc.use_cache = cache;
    return browser::Browser(universe_, universe_.network().add_client(cc), bc);
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::vector<std::string> healthy_hosts_;
  page::Site site_;
  std::unique_ptr<core::OakServer> oak_;
};

TEST_F(EndToEnd, FullLoopSwitchesProviderAndImprovesLoadTime) {
  auto browser = make_browser();
  auto first = browser.load(site_.index_url(), 0.0);
  ASSERT_EQ(first.page_status, 200);
  ASSERT_TRUE(first.report_delivered);

  // Oak saw the report and flagged the sick provider for this user.
  ASSERT_EQ(oak_->user_count(), 1u);
  const core::UserProfile& profile =
      *oak_->profile(first.report.user_id);
  EXPECT_EQ(profile.active.size(), 1u);

  auto second = browser.load(site_.index_url(), 300.0);
  bool saw_alt = false;
  for (const auto& e : second.report.entries) {
    EXPECT_NE(e.host, "slow.ads.net");
    if (e.host == "fast.ads.net") saw_alt = true;
  }
  EXPECT_TRUE(saw_alt);
  EXPECT_EQ(second.missing_objects, 0u);
  // Dropping a 30x-degraded provider must shorten the load decisively.
  EXPECT_LT(second.plt_s, first.plt_s * 0.7);
}

TEST_F(EndToEnd, CookieIdentityPersistsAcrossLoads) {
  auto browser = make_browser();
  auto first = browser.load(site_.index_url(), 0.0);
  auto second = browser.load(site_.index_url(), 100.0);
  // The cookie arrives with the first response, before the report is built,
  // so even the first report carries the identity.
  EXPECT_FALSE(first.report.user_id.empty());
  EXPECT_EQ(first.report.user_id, second.report.user_id);
  EXPECT_EQ(oak_->user_count(), 1u);
}

TEST_F(EndToEnd, UsersAreIsolated) {
  auto alice = make_browser();
  auto bob = make_browser(net::Region::kEurope);
  alice.load(site_.index_url(), 0.0);
  // Bob never reported; his page must stay on the default provider.
  auto bob_load = bob.load(site_.index_url(), 10.0);
  bool bob_sees_default = false;
  for (const auto& e : bob_load.report.entries) {
    if (e.host == "slow.ads.net") bob_sees_default = true;
  }
  EXPECT_TRUE(bob_sees_default);
  EXPECT_EQ(oak_->user_count(), 2u);
}

TEST_F(EndToEnd, Type2AliasFeedsBrowserCache) {
  // With caching on: load once (cache fills, incl. slow provider's script),
  // Oak activates the switch, and the rewritten URL is satisfied from cache
  // via the alias instead of re-downloading.
  auto browser = make_browser(net::Region::kNorthAmerica, /*cache=*/true);
  auto first = browser.load(site_.index_url(), 0.0);
  ASSERT_TRUE(first.report_delivered);
  auto second = browser.load(site_.index_url(), 60.0);
  bool fetched_alt = false;
  for (const auto& e : second.report.entries) {
    if (e.host == "fast.ads.net") fetched_alt = true;
  }
  EXPECT_FALSE(fetched_alt) << "aliased object should come from cache";
  EXPECT_GT(second.cache_hits, 0u);
}

TEST_F(EndToEnd, ReportsAreOffCriticalPath) {
  auto browser = make_browser();
  auto res = browser.load(site_.index_url(), 0.0);
  EXPECT_GT(res.report_upload_s, 0.0);
  // PLT is computed before the report upload begins.
  EXPECT_GT(res.plt_s, 0.0);
  EXPECT_LT(res.report_bytes, 10 * 1024u);  // Fig. 15 territory
}

TEST_F(EndToEnd, DecisionLogRecordsTheSwitch) {
  auto browser = make_browser();
  browser.load(site_.index_url(), 0.0);
  browser.load(site_.index_url(), 60.0);
  const auto& log = oak_->decision_log();
  EXPECT_EQ(log.count(core::DecisionType::kActivate), 1u);
  EXPECT_GE(log.count(core::DecisionType::kServeModified), 1u);
  auto activations = log.by_type(core::DecisionType::kActivate);
  ASSERT_EQ(activations.size(), 1u);
  EXPECT_FALSE(activations[0].violator_ip.empty());
  EXPECT_GT(activations[0].distance, 0.0);
}

TEST_F(EndToEnd, RelativeDetectionSparesSlowClients) {
  // A client behind a terrible last mile sees *every* server as slow;
  // relative detection must not flag the ad provider more eagerly for them.
  net::ClientConfig cc;
  cc.region = net::Region::kAsia;
  cc.downlink_bps = 2e6;
  cc.last_mile_rtt_s = 0.300;
  cc.jitter_sigma = 0.30;
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser slow_client(universe_,
                               universe_.network().add_client(cc), bc);
  auto res = slow_client.load(site_.index_url(), 0.0);
  EXPECT_EQ(res.page_status, 200);
  EXPECT_TRUE(res.report_delivered);
  // Whatever the verdict for the sick server, none of the healthy
  // providers may be flagged for this client.
  const core::UserProfile* p = oak_->profile(res.report.user_id);
  ASSERT_NE(p, nullptr);
  EXPECT_LE(p->active.size(), 1u);
}

}  // namespace
}  // namespace oak
