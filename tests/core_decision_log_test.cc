#include <gtest/gtest.h>

#include "core/decision_log.h"

namespace oak::core {
namespace {

Decision make(double t, const std::string& user, int rule, DecisionType type,
              double distance = 1.0) {
  return Decision{t, user, rule, type, "10.0.0.1", distance, 0};
}

TEST(DecisionLog, RecordAndQuery) {
  DecisionLog log;
  EXPECT_EQ(log.size(), 0u);
  log.record(make(1, "u1", 1, DecisionType::kActivate));
  log.record(make(2, "u1", 1, DecisionType::kDeactivate));
  log.record(make(3, "u2", 1, DecisionType::kActivate));
  log.record(make(4, "u2", 2, DecisionType::kActivate));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.count(DecisionType::kActivate), 3u);
  EXPECT_EQ(log.count(DecisionType::kDeactivate), 1u);
  EXPECT_EQ(log.count(DecisionType::kExpire), 0u);
  EXPECT_EQ(log.by_type(DecisionType::kActivate).size(), 3u);
}

TEST(DecisionLog, UsersActivatingDeduplicates) {
  DecisionLog log;
  log.record(make(1, "u1", 1, DecisionType::kActivate));
  log.record(make(2, "u1", 1, DecisionType::kActivate));  // re-activation
  log.record(make(3, "u2", 1, DecisionType::kActivate));
  log.record(make(4, "u1", 1, DecisionType::kDeactivate));  // ignored
  auto users = log.users_activating();
  ASSERT_EQ(users.size(), 1u);
  EXPECT_EQ(users[1], (std::set<std::string>{"u1", "u2"}));
  auto counts = log.activations_per_rule();
  EXPECT_EQ(counts[1], 3u);
}

TEST(DecisionLog, PreservesOrderAndClear) {
  DecisionLog log;
  for (int i = 0; i < 5; ++i) {
    log.record(make(i, "u", i, DecisionType::kActivate));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(log.entries()[std::size_t(i)].time, double(i));
  }
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(DecisionLog, TypeNames) {
  EXPECT_EQ(to_string(DecisionType::kActivate), "activate");
  EXPECT_EQ(to_string(DecisionType::kDeactivate), "deactivate");
  EXPECT_EQ(to_string(DecisionType::kAdvanceAlternative),
            "advance-alternative");
  EXPECT_EQ(to_string(DecisionType::kKeepAlternative), "keep-alternative");
  EXPECT_EQ(to_string(DecisionType::kExpire), "expire");
  EXPECT_EQ(to_string(DecisionType::kServeModified), "serve-modified");
}

}  // namespace
}  // namespace oak::core
