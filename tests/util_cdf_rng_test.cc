#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/cdf.h"
#include "util/rng.h"

namespace oak::util {
namespace {

TEST(Cdf, FractionsAndQuantiles) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(50), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(100), 1.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_above(51), 0.5);
  EXPECT_NEAR(c.quantile(0.5), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 100.0);
}

TEST(Cdf, EmptyIsSafe) {
  Cdf c;
  EXPECT_EQ(c.fraction_at_or_below(1), 0.0);
  EXPECT_EQ(c.quantile(0.5), 0.0);
  EXPECT_TRUE(c.points().empty());
}

TEST(Cdf, PointsMonotoneAndComplete) {
  Cdf c;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) c.add(rng.uniform(0, 10));
  auto pts = c.points(40);
  ASSERT_FALSE(pts.empty());
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].value, pts[i - 1].value);
    EXPECT_GT(pts[i].fraction, pts[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(pts.back().fraction, 1.0);
}

TEST(Cdf, AddAllAndInterleavedReads) {
  Cdf c;
  c.add_all({3, 1, 2});
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 2.0);
  c.add(0);  // must invalidate sorted state
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, ForkIndependentOfDrawCount) {
  Rng a(7), b(7);
  (void)a.uniform(0, 1);  // consume from one parent only
  Rng fa = a.fork(3), fb = b.fork(3);
  EXPECT_DOUBLE_EQ(fa.uniform(0, 1), fb.uniform(0, 1));
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a = Rng::forked(7, 1);
  Rng b = Rng::forked(7, 2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform(0, 1) != b.uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    saw_lo |= v == 1;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdges) {
  Rng r(5);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, LognormalMedianIsCalibrated) {
  Rng r(9);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(r.lognormal_median(2.0, 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 2.0, 0.05);
}

TEST(Rng, ParetoWithinBounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double x = r.pareto(10.0, 100.0, 1.2);
    EXPECT_GE(x, 10.0 * 0.999);
    EXPECT_LE(x, 100.0 * 1.001);
  }
}

TEST(Rng, ZipfSkewsLow) {
  Rng r(13);
  int low = 0, high = 0;
  for (int i = 0; i < 2000; ++i) {
    std::size_t z = r.zipf(100, 1.0);
    EXPECT_LT(z, 100u);
    if (z < 10) ++low;
    if (z >= 90) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(Rng, WeightedRespectsZeros) {
  Rng r(17);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.weighted(w), 1u);
  }
}

TEST(StableHash, DistinctAndStable) {
  EXPECT_EQ(stable_hash("abc"), stable_hash("abc"));
  EXPECT_NE(stable_hash("abc"), stable_hash("abd"));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
}

}  // namespace
}  // namespace oak::util
