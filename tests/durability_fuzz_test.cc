// Crash-recovery fuzz: kill the journaling server at a randomized byte
// offset, recover, and demand the recovered export_state() be byte-identical
// to the state an uninterrupted oracle had after exactly the operations
// whose journal records were fully written. Torn tail records must be
// dropped, never misparsed.
//
// Mechanics: every operation (page serve, report POST, rule churn) appends
// exactly one journal record, and FaultFile burns a CrashPlan's global byte
// budget in append order — so `plan->complete_appends` after the run IS the
// index of the oracle state the disk must recover to. Budgets are drawn
// uniformly over the full journal byte range, which lands kills in varint
// headers, CRC words and payload bodies alike.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/durability.h"
#include "core/sharded_server.h"
#include "http/cookies.h"
#include "util/rng.h"

namespace oak::core {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 4;
constexpr int kTrialsPerCase = 110;  // three cases ⇒ 330 randomized kill points

class FuzzFixture : public ::testing::Test {
 protected:
  FuzzFixture() : universe_(net::NetworkConfig{.seed = 23, .horizon_s = 0}) {
    root_ = fs::path(::testing::TempDir()) /
            ("oak_fuzz_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(root_);

    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("busy.com", net.server(origin_).addr());
    for (const char* host : {"x0.net", "x1.net", "x2.net", "x3.net",
                             "alt.net"}) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      universe_.dns().bind(host, net.server(sid).addr());
      ips_[host] = net.server(sid).addr().to_string();
    }
    page::SiteBuilder b(universe_, "busy.com", origin_);
    for (int i = 0; i < 4; ++i) {
      b.add_direct("x" + std::to_string(i) + ".net", "/o.js",
                   html::RefKind::kScript, 9000, page::Category::kCdn);
    }
    site_ = b.finish();
    universe_.store().replicate("http://x0.net/o.js", "http://alt.net/o.js");
    cfg_.detector.min_population = 4;
    wire_ = report_wire();
  }

  ~FuzzFixture() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::string report_wire() {
    browser::PerfReport r;
    r.page_url = site_.index_url();
    r.entries.push_back(
        {site_.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    for (int i = 0; i < 4; ++i) {
      const std::string host = "x" + std::to_string(i) + ".net";
      r.entries.push_back({"http://" + host + "/o.js", host, ips_[host], 9000,
                           0.1, i == 0 ? 4.0 : 0.10 + 0.01 * i});
    }
    return r.serialize();
  }

  // The mixed workload, one journal append per op. Stops early when the
  // op budget runs out (used to split phases).
  void apply_ops(ShardedOakServer& s, std::size_t first, std::size_t count) {
    for (std::size_t i = first; i < first + count; ++i) {
      const std::size_t kind = i % 10;
      const double t = double(i) * 0.25;
      if (kind == 3 && rule_id_ == 0) {
        rule_id_ = s.add_rule(make_domain_rule("direct", "x0.net",
                                               {"alt.net"}));
      } else if (kind == 8 && rule_id_ != 0) {
        s.remove_rule(rule_id_, t);
        rule_id_ = 0;
      } else if (kind == 6) {
        // Cookie-less fresh request (mints a uid, sometimes 404s).
        http::Request req = http::Request::get(
            i % 20 == 6 ? "http://busy.com/absent" : site_.index_url());
        s.handle(req, t);
      } else if (kind % 2 == 0) {
        http::Request get = http::Request::get(site_.index_url());
        get.headers.set("Cookie", cookie(i));
        s.handle(get, t);
      } else {
        http::Request post =
            http::Request::post("http://busy.com/oak/report", wire_);
        post.headers.set("Cookie", cookie(i));
        s.handle(post, t);
      }
    }
  }

  static std::string cookie(std::size_t i) {
    return std::string(http::kOakUserCookie) + "=fz" +
           std::to_string(i % 7);
  }

  OakConfig durable_config(const fs::path& dir,
                           std::shared_ptr<durability::CrashPlan> plan) {
    OakConfig cfg = cfg_;
    cfg.durability.enabled = true;
    cfg.durability.dir = dir.string();
    if (plan) {
      cfg.durability.file_factory = [plan](const std::string& path) {
        return std::make_unique<durability::FaultFile>(
            durability::PosixFile::open_append(path), plan);
      };
    }
    return cfg;
  }

  // Oracle states: export_state().dump() after op 0..count, from an
  // uninterrupted non-durable run of the identical stream.
  std::vector<std::string> oracle_states(std::size_t count) {
    rule_id_ = 0;
    ShardedOakServer plain(universe_, "busy.com", cfg_, kShards);
    std::vector<std::string> states;
    states.reserve(count + 1);
    states.push_back(plain.export_state().dump());
    for (std::size_t i = 0; i < count; ++i) {
      apply_ops(plain, i, 1);
      states.push_back(plain.export_state().dump());
    }
    return states;
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::map<std::string, std::string> ips_;
  page::Site site_;
  OakConfig cfg_;
  std::string wire_;
  fs::path root_;
  int rule_id_ = 0;
};

TEST_F(FuzzFixture, KillAtRandomOffsetRecoversToOracleState) {
  constexpr std::size_t kOps = 60;
  const std::vector<std::string> oracle = oracle_states(kOps);

  // Dry run to learn the total journal byte volume (no kill).
  std::uint64_t total_bytes = 0;
  {
    auto plan = std::make_shared<durability::CrashPlan>(~0ull);
    rule_id_ = 0;
    ShardedOakServer s(universe_, "busy.com",
                       durable_config(root_ / "dry", plan), kShards);
    apply_ops(s, 0, kOps);
    total_bytes = plan->written;
    ASSERT_EQ(plan->complete_appends, kOps);  // 1:1 ops-to-appends invariant
    EXPECT_EQ(s.export_state().dump(), oracle.back());
  }
  ASSERT_GT(total_bytes, 0u);

  util::Rng rng(0xDEAD5EED);
  for (int trial = 0; trial < kTrialsPerCase; ++trial) {
    const fs::path dir = root_ / ("t" + std::to_string(trial));
    // +16 occasionally overshoots the workload: the no-crash path must
    // round-trip through the same machinery too.
    const std::uint64_t budget = std::uint64_t(
        rng.uniform_int(1, std::int64_t(total_bytes) + 16));
    auto plan = std::make_shared<durability::CrashPlan>(budget);
    {
      rule_id_ = 0;
      ShardedOakServer s(universe_, "busy.com", durable_config(dir, plan),
                         kShards);
      apply_ops(s, 0, kOps);
    }  // dtor = the kill: in-memory state beyond the budget dies here

    const std::uint64_t survived = plan->complete_appends;
    ASSERT_LE(survived, kOps);
    ShardedOakServer recovered(universe_, "busy.com",
                               durable_config(dir, nullptr), kShards);
    const auto report = recovered.recovery_report();
    EXPECT_TRUE(report.performed);
    EXPECT_EQ(recovered.export_state().dump(), oracle[survived])
        << "budget=" << budget << " survived=" << survived;
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
}

// Same contract across a compaction: phase 1, an explicit compact() (fsync,
// snapshot, truncated journals), then phase 2 killed at a random offset.
// Recovery must stitch snapshot + phase-2 journal suffix back together.
TEST_F(FuzzFixture, KillAfterCompactionRecoversToOracleState) {
  constexpr std::size_t kPhase1 = 30;
  constexpr std::size_t kPhase2 = 30;
  const std::vector<std::string> oracle = oracle_states(kPhase1 + kPhase2);

  std::uint64_t phase1_bytes = 0, total_bytes = 0;
  {
    auto plan = std::make_shared<durability::CrashPlan>(~0ull);
    rule_id_ = 0;
    ShardedOakServer s(universe_, "busy.com",
                       durable_config(root_ / "dry", plan), kShards);
    apply_ops(s, 0, kPhase1);
    phase1_bytes = plan->written;
    s.compact();
    apply_ops(s, kPhase1, kPhase2);
    total_bytes = plan->written;
    ASSERT_EQ(plan->complete_appends, kPhase1 + kPhase2);
    EXPECT_EQ(s.export_state().dump(), oracle.back());
  }
  ASSERT_GT(total_bytes, phase1_bytes);

  util::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < kTrialsPerCase; ++trial) {
    const fs::path dir = root_ / ("t" + std::to_string(trial));
    // Kill strictly after the compaction point: a dead process cannot run
    // compact(), so budgets below phase1_bytes would be simulating one.
    const std::uint64_t budget =
        phase1_bytes +
        std::uint64_t(rng.uniform_int(
            1, std::int64_t(total_bytes - phase1_bytes) + 16));
    auto plan = std::make_shared<durability::CrashPlan>(budget);
    {
      rule_id_ = 0;
      ShardedOakServer s(universe_, "busy.com", durable_config(dir, plan),
                         kShards);
      apply_ops(s, 0, kPhase1);
      s.compact();
      apply_ops(s, kPhase1, kPhase2);
    }

    const std::uint64_t survived = plan->complete_appends;
    ASSERT_GE(survived, kPhase1);
    ShardedOakServer recovered(universe_, "busy.com",
                               durable_config(dir, nullptr), kShards);
    EXPECT_EQ(recovered.export_state().dump(), oracle[survived])
        << "budget=" << budget << " survived=" << survived;
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
}

// Eviction/replay parity: the same contract with the tiered user store on.
// A hot tier of 2 users per shard — far below the 7-cookie population plus
// fresh mints — keeps demotions and fault-ins churning under every kill
// point, and the mid-run compact() folds the cold spill files alongside the
// snapshot. The oracle stays untiered: replaying the journal through the
// tiered store must land on byte-identical exports, and the spill file
// (ephemeral, rebuilt by replay) must never leak into the durability state.
TEST_F(FuzzFixture, TieredKillFuzzRecoversToUntieredOracle) {
  constexpr std::size_t kPhase1 = 25;
  constexpr std::size_t kPhase2 = 25;
  const std::vector<std::string> oracle = oracle_states(kPhase1 + kPhase2);

  auto tiered_config = [&](const fs::path& dir,
                           std::shared_ptr<durability::CrashPlan> plan) {
    OakConfig cfg = durable_config(dir, plan);
    cfg.user_store.hot_capacity = 2;  // per shard
    cfg.user_store.cold_buckets = 64;
    return cfg;
  };

  std::uint64_t phase1_bytes = 0, total_bytes = 0;
  {
    auto plan = std::make_shared<durability::CrashPlan>(~0ull);
    rule_id_ = 0;
    ShardedOakServer s(universe_, "busy.com",
                       tiered_config(root_ / "dry", plan), kShards);
    apply_ops(s, 0, kPhase1);
    phase1_bytes = plan->written;
    s.compact();
    apply_ops(s, kPhase1, kPhase2);
    total_bytes = plan->written;
    // Tiering must not change the journal byte stream (input journaling
    // records requests, not profiles) nor the uninterrupted final state.
    ASSERT_EQ(plan->complete_appends, kPhase1 + kPhase2);
    EXPECT_GT(s.metrics_snapshot().counter("oak_user_demotions_total"), 0u);
    EXPECT_EQ(s.export_state().dump(), oracle.back());
  }
  ASSERT_GT(total_bytes, phase1_bytes);

  util::Rng rng(0xBADC01D5);
  for (int trial = 0; trial < kTrialsPerCase; ++trial) {
    const fs::path dir = root_ / ("t" + std::to_string(trial));
    const std::uint64_t budget =
        phase1_bytes +
        std::uint64_t(rng.uniform_int(
            1, std::int64_t(total_bytes - phase1_bytes) + 16));
    auto plan = std::make_shared<durability::CrashPlan>(budget);
    {
      rule_id_ = 0;
      ShardedOakServer s(universe_, "busy.com", tiered_config(dir, plan),
                         kShards);
      apply_ops(s, 0, kPhase1);
      s.compact();
      apply_ops(s, kPhase1, kPhase2);
    }

    const std::uint64_t survived = plan->complete_appends;
    ASSERT_GE(survived, kPhase1);
    ShardedOakServer recovered(universe_, "busy.com",
                               tiered_config(dir, nullptr), kShards);
    EXPECT_EQ(recovered.export_state().dump(), oracle[survived])
        << "budget=" << budget << " survived=" << survived;
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
}

}  // namespace
}  // namespace oak::core
