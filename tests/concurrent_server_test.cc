// Concurrency tests: many client threads hammering one Oak front — page
// requests, report POSTs, audits and snapshots interleaved.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/concurrent_server.h"

namespace oak::core {
namespace {

class ConcurrentFixture : public ::testing::Test {
 protected:
  ConcurrentFixture()
      : universe_(net::NetworkConfig{.seed = 6, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("busy.com", net.server(origin_).addr());
    for (int i = 0; i < 4; ++i) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      const std::string host = "x" + std::to_string(i) + ".net";
      universe_.dns().bind(host, net.server(sid).addr());
      ips_.push_back(net.server(sid).addr().to_string());
    }
    universe_.dns().bind(
        "alt.net", net.server(net.add_server(net::ServerConfig{})).addr());

    page::SiteBuilder b(universe_, "busy.com", origin_);
    for (int i = 0; i < 4; ++i) {
      b.add_direct("x" + std::to_string(i) + ".net", "/o.js",
                   html::RefKind::kScript, 9000, page::Category::kCdn);
    }
    site_ = b.finish();
    universe_.store().replicate("http://x0.net/o.js", "http://alt.net/o.js");

    OakConfig cfg;
    cfg.detector.min_population = 4;
    server_ = std::make_unique<ConcurrentOakServer>(universe_, "busy.com",
                                                    cfg);
    server_->add_rule(make_domain_rule("r", "x0.net", {"alt.net"}));
  }

  std::string slow_report_wire(const std::string& uid) {
    browser::PerfReport r;
    r.user_id = uid;
    r.page_url = site_.index_url();
    r.entries.push_back(
        {site_.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    for (int i = 0; i < 4; ++i) {
      r.entries.push_back({"http://x" + std::to_string(i) + ".net/o.js",
                           "x" + std::to_string(i) + ".net",
                           ips_[std::size_t(i)], 9000, 0.1,
                           i == 0 ? 4.0 : 0.10 + 0.01 * i});
    }
    return r.serialize();
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::vector<std::string> ips_;
  page::Site site_;
  std::unique_ptr<ConcurrentOakServer> server_;
};

TEST_F(ConcurrentFixture, ParallelUsersAllServedAndTracked) {
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string uid = "worker" + std::to_string(t);
      const std::string cookie =
          std::string(http::kOakUserCookie) + "=" + uid;
      for (int i = 0; i < kRequestsPerThread; ++i) {
        http::Request get = http::Request::get(site_.index_url());
        get.headers.set("Cookie", cookie);
        if (!server_->handle(get, double(i)).ok()) failures++;
        http::Request post = http::Request::post(
            "http://busy.com/oak/report", slow_report_wire(uid));
        post.headers.set("Cookie", cookie);
        if (server_->handle(post, double(i) + 0.5).status >= 400) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->user_count(), std::size_t(kThreads));
  EXPECT_EQ(server_->reports_processed(),
            std::size_t(kThreads) * kRequestsPerThread);
  // Every user ends with the rule active.
  for (int t = 0; t < kThreads; ++t) {
    const UserProfile* p =
        server_->unsynchronized().profile("worker" + std::to_string(t));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->active.size(), 1u);
  }
}

TEST_F(ConcurrentFixture, SnapshotsAndAuditsRaceWithTraffic) {
  std::atomic<bool> stop{false};
  std::atomic<int> snapshots{0};
  std::thread auditor([&] {
    while (!stop.load()) {
      util::Json snap = server_->export_state();
      SiteAnalytics audit = server_->audit();
      // Snapshots must always be internally consistent and parseable.
      util::Json reparsed = util::Json::parse(snap.dump());
      EXPECT_EQ(reparsed.at("site").as_string(), "busy.com");
      (void)audit.summary();
      snapshots++;
    }
  });
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      const std::string uid = "c" + std::to_string(t);
      for (int i = 0; i < 100; ++i) {
        http::Request post = http::Request::post(
            "http://busy.com/oak/report", slow_report_wire(uid));
        post.headers.set("Cookie",
                         std::string(http::kOakUserCookie) + "=" + uid);
        server_->handle(post, double(i));
      }
    });
  }
  for (auto& th : clients) th.join();
  stop = true;
  auditor.join();
  EXPECT_GT(snapshots.load(), 0);
  EXPECT_EQ(server_->user_count(), 4u);
}

TEST_F(ConcurrentFixture, RuleChurnDuringTraffic) {
  std::atomic<bool> stop{false};
  std::thread operator_thread([&] {
    int next = 100;
    while (!stop.load()) {
      Rule r = make_domain_rule("tmp" + std::to_string(next), "x1.net",
                                {"alt.net"});
      r.id = next;
      int id = server_->add_rule(std::move(r));
      server_->remove_rule(id, 0.0);
      ++next;
    }
  });
  for (int i = 0; i < 200; ++i) {
    http::Request post = http::Request::post("http://busy.com/oak/report",
                                             slow_report_wire("churn-user"));
    post.headers.set("Cookie",
                     std::string(http::kOakUserCookie) + "=churn-user");
    EXPECT_LT(server_->handle(post, double(i)).status, 400);
  }
  stop = true;
  operator_thread.join();
  // The permanent rule is still configured and active for the user.
  EXPECT_EQ(
      server_->unsynchronized().profile("churn-user")->active.count(1), 1u);
}

}  // namespace
}  // namespace oak::core
