#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace oak::util {
namespace {

TEST(JsonDump, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3.5).dump(), "-3.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(JsonDump, IntegralNumbersHaveNoFraction) {
  EXPECT_EQ(Json(1000000.0).dump(), "1000000");
  EXPECT_EQ(Json(0.0).dump(), "0");
}

TEST(JsonDump, EscapesStrings) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(JsonDump, ArraysAndObjects) {
  JsonArray a = {Json(1), Json("x"), Json(nullptr)};
  EXPECT_EQ(Json(a).dump(), "[1,\"x\",null]");
  JsonObject o;
  o["b"] = Json(2);
  o["a"] = Json(1);
  // std::map sorts keys -> deterministic output.
  EXPECT_EQ(Json(o).dump(), "{\"a\":1,\"b\":2}");
}

TEST(JsonDump, EmptyContainers) {
  EXPECT_EQ(Json(JsonArray{}).dump(), "[]");
  EXPECT_EQ(Json(JsonObject{}).dump(), "{}");
}

TEST(JsonParse, RoundTripsNested) {
  const std::string text =
      R"({"a":[1,2,{"b":"x"}],"c":null,"d":true,"e":-1.25e2})";
  Json j = Json::parse(text);
  EXPECT_EQ(j.at("c"), Json(nullptr));
  EXPECT_EQ(j.at("d"), Json(true));
  EXPECT_DOUBLE_EQ(j.at("e").as_number(), -125.0);
  EXPECT_EQ(j.at("a").as_array()[2].at("b").as_string(), "x");
  // Round trip.
  EXPECT_EQ(Json::parse(j.dump()), j);
}

TEST(JsonParse, Whitespace) {
  Json j = Json::parse("  { \"a\" :\n[ 1 , 2 ]\t} ");
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
}

TEST(JsonParse, StringEscapes) {
  Json j = Json::parse(R"("a\"\\\/\n\tA")");
  EXPECT_EQ(j.as_string(), "a\"\\/\n\tA");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");       // é
  EXPECT_EQ(Json::parse(R"("中")").as_string(), "\xe4\xb8\xad");   // 中
  EXPECT_EQ(Json::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");  // 😀 via surrogate pair
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{} extra"), JsonError);
  EXPECT_THROW(Json::parse("{1:2}"), JsonError);
}

TEST(JsonAccess, TypeMismatchThrows) {
  Json j(42);
  EXPECT_THROW(j.as_string(), JsonError);
  EXPECT_THROW(j.as_array(), JsonError);
  EXPECT_THROW(j.at("k"), JsonError);
  EXPECT_EQ(j.find("k"), nullptr);
}

TEST(JsonAccess, FindAndAt) {
  Json j = Json::parse(R"({"x":1})");
  EXPECT_NE(j.find("x"), nullptr);
  EXPECT_EQ(j.find("y"), nullptr);
  EXPECT_THROW(j.at("y"), JsonError);
  EXPECT_EQ(j.at("x").as_int(), 1);
}

TEST(JsonAccess, SubscriptBuildsObjects) {
  Json j;
  j["a"] = Json(1);
  j["b"]["c"] = Json("deep");
  EXPECT_EQ(j.dump(), R"({"a":1,"b":{"c":"deep"}})");
}

TEST(JsonDump, PrettyIsReparsable) {
  Json j = Json::parse(R"({"a":[1,2],"b":{"c":null}})");
  Json j2 = Json::parse(j.dump_pretty());
  EXPECT_EQ(j, j2);
}

TEST(JsonDump, NanBecomesNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

// --- Parser hardening (shared limits with util::JsonScanner).

TEST(JsonHardening, AcceptsNestingUpToLimit) {
  std::string doc(kMaxJsonDepth, '[');
  doc += "0";
  doc += std::string(kMaxJsonDepth, ']');
  EXPECT_NO_THROW(Json::parse(doc));

  std::string objs;
  for (std::size_t i = 0; i < kMaxJsonDepth; ++i) objs += "{\"k\":";
  objs += "1";
  objs += std::string(kMaxJsonDepth, '}');
  EXPECT_NO_THROW(Json::parse(objs));
}

TEST(JsonHardening, RejectsNestingBeyondLimit) {
  std::string doc(kMaxJsonDepth + 1, '[');
  doc += "0";
  doc += std::string(kMaxJsonDepth + 1, ']');
  EXPECT_THROW(Json::parse(doc), JsonError);
  // Unbalanced runaway nesting fails on depth, not on end-of-input.
  EXPECT_THROW(Json::parse(std::string(100'000, '[')), JsonError);
}

TEST(JsonHardening, RejectsNonFiniteNumbers) {
  for (const char* doc :
       {"1e999", "-1e999", "1e99999999", "[1e400]", "{\"x\":-1e400}"}) {
    EXPECT_THROW(Json::parse(doc), JsonError) << doc;
  }
  // Large but finite still parses.
  EXPECT_NO_THROW(Json::parse("1e308"));
  EXPECT_NO_THROW(Json::parse("-1.5e-300"));
}

}  // namespace
}  // namespace oak::util
