#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <sstream>

#include "core/grouping.h"

namespace oak::core {
namespace {

browser::ReportEntry entry(const std::string& url, const std::string& host,
                           const std::string& ip, std::uint64_t size,
                           double time) {
  return browser::ReportEntry{url, host, ip, size, 0.0, time};
}

TEST(Grouping, GroupsByIpNotHost) {
  // Two hostnames on one front-end IP must group together — "keeping track
  // of all related domain names" (§4.2).
  browser::PerfReport r;
  r.entries.push_back(entry("http://a.com/1", "a.com", "10.0.0.1", 100, 0.1));
  r.entries.push_back(entry("http://b.com/2", "b.com", "10.0.0.1", 100, 0.2));
  r.entries.push_back(entry("http://c.com/3", "c.com", "10.0.0.2", 100, 0.3));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].ip, "10.0.0.1");
  EXPECT_EQ(obs[0].domains, (std::vector<std::string>{"a.com", "b.com"}));
  EXPECT_EQ(obs[0].object_count, 2u);
  EXPECT_EQ(obs[1].domains, (std::vector<std::string>{"c.com"}));
}

TEST(Grouping, SmallLargeSplitAtThreshold) {
  browser::PerfReport r;
  const std::uint64_t th = kDefaultSmallObjectBytes;  // 50 KB
  r.entries.push_back(entry("u1", "a.com", "10.0.0.1", th - 1, 0.2));
  r.entries.push_back(entry("u2", "a.com", "10.0.0.1", th, 2.0));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 1u);
  ASSERT_EQ(obs[0].small_times.size(), 1u);  // strictly below threshold
  ASSERT_EQ(obs[0].large_tputs.size(), 1u);
  EXPECT_DOUBLE_EQ(obs[0].small_times[0], 0.2);
  EXPECT_DOUBLE_EQ(obs[0].large_tputs[0], static_cast<double>(th) / 2.0);
}

TEST(Grouping, AveragesAreMeans) {
  browser::PerfReport r;
  r.entries.push_back(entry("u1", "a.com", "10.0.0.1", 100, 0.1));
  r.entries.push_back(entry("u2", "a.com", "10.0.0.1", 100, 0.3));
  r.entries.push_back(entry("u3", "a.com", "10.0.0.1", 100'000, 1.0));
  r.entries.push_back(entry("u4", "a.com", "10.0.0.1", 200'000, 1.0));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_DOUBLE_EQ(obs[0].avg_small_time(), 0.2);
  EXPECT_DOUBLE_EQ(obs[0].avg_large_tput(), 150'000.0);
  EXPECT_EQ(obs[0].byte_count, 300'200u);
}

TEST(Grouping, CustomThreshold) {
  browser::PerfReport r;
  r.entries.push_back(entry("u1", "a.com", "10.0.0.1", 500, 0.1));
  auto obs = group_by_server(r, /*small_threshold_bytes=*/100);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_TRUE(obs[0].small_times.empty());
  EXPECT_EQ(obs[0].large_tputs.size(), 1u);
}

TEST(Grouping, ZeroTimeLargeObjectSkipped) {
  browser::PerfReport r;
  r.entries.push_back(entry("u1", "a.com", "10.0.0.1", 100'000, 0.0));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_TRUE(obs[0].large_tputs.empty());  // no division by zero
}

TEST(Grouping, EmptyReport) {
  browser::PerfReport r;
  EXPECT_TRUE(group_by_server(r).empty());
}

TEST(Grouping, FailedEntriesCountAsFailuresNotTimings) {
  browser::PerfReport r;
  r.entries.push_back(entry("u1", "a.com", "10.0.0.1", 1000, 0.1));
  browser::ReportEntry dead =
      entry("u2", "a.com", "10.0.0.1", 0, 1.5);  // burned 1.5s, no bytes
  dead.error = "refused";
  r.entries.push_back(dead);
  browser::ReportEntry slow_dead =
      entry("u3", "a.com", "10.0.0.1", 100'000, 5.0);
  slow_dead.error = "timeout";
  r.entries.push_back(slow_dead);
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 1u);
  // Failures are attempts (object_count) and failures (failure_count), but
  // never timing samples — a burned budget is not a measurement of the
  // server's speed.
  EXPECT_EQ(obs[0].object_count, 3u);
  EXPECT_EQ(obs[0].failure_count, 2u);
  ASSERT_EQ(obs[0].small_times.size(), 1u);
  EXPECT_DOUBLE_EQ(obs[0].small_times[0], 0.1);
  EXPECT_TRUE(obs[0].large_tputs.empty());
  EXPECT_DOUBLE_EQ(obs[0].failure_rate(), 2.0 / 3.0);
}

TEST(Grouping, ResolutionFailuresNameNoServer) {
  // An entry with an empty ip (DNS never resolved) has no server to group
  // under; it must not fabricate an "" observation.
  browser::PerfReport r;
  browser::ReportEntry nx = entry("u1", "gone.com", "", 0, 0.0);
  nx.error = "dns";
  r.entries.push_back(nx);
  r.entries.push_back(entry("u2", "a.com", "10.0.0.1", 10, 0.1));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].ip, "10.0.0.1");
}

TEST(Grouping, FailureRateZeroWhenNoAttempts) {
  ServerObservation o;
  EXPECT_DOUBLE_EQ(o.failure_rate(), 0.0);
}

TEST(Grouping, PreservesFirstAppearanceOrder) {
  browser::PerfReport r;
  r.entries.push_back(entry("u1", "z.com", "10.0.0.9", 1, 0.1));
  r.entries.push_back(entry("u2", "a.com", "10.0.0.1", 1, 0.1));
  r.entries.push_back(entry("u3", "z.com", "10.0.0.9", 1, 0.1));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].ip, "10.0.0.9");
  EXPECT_EQ(obs[1].ip, "10.0.0.1");
}

TEST(Grouping, FirstAppearanceOrderUnderInterleavedIps) {
  // Heavily interleaved IPs: observation order must equal the order in which
  // each IP first appears, regardless of how entries alternate afterwards.
  browser::PerfReport r;
  const char* ips[] = {"10.0.0.3", "10.0.0.1", "10.0.0.2"};
  for (int round = 0; round < 4; ++round) {
    for (const char* ip : ips) {
      r.entries.push_back(entry("u", "h.com", ip, 10, 0.1));
    }
  }
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 3u);
  EXPECT_EQ(obs[0].ip, "10.0.0.3");
  EXPECT_EQ(obs[1].ip, "10.0.0.1");
  EXPECT_EQ(obs[2].ip, "10.0.0.2");
}

// ---------------------------------------------------------------------------
// Regression: byte-compare the flat-structure grouping against the seed
// implementation (linear scan + std::set<std::string> domains) over a corpus
// of randomized reports with heavy IP/domain sharing.

namespace seed {

struct Observation {
  std::string ip;
  std::set<std::string> domains;
  std::vector<double> small_times;
  std::vector<double> large_tputs;
  std::size_t object_count = 0;
  std::uint64_t byte_count = 0;
};

// Verbatim port of the seed group_by_server (commit e79ae42).
std::vector<Observation> group(const browser::PerfReport& report,
                               std::uint64_t small_threshold_bytes) {
  std::vector<Observation> out;
  auto find = [&](const std::string& ip) -> Observation& {
    for (auto& o : out) {
      if (o.ip == ip) return o;
    }
    out.push_back(Observation{});
    out.back().ip = ip;
    return out.back();
  };
  for (const auto& e : report.entries) {
    Observation& obs = find(e.ip);
    obs.domains.insert(e.host);
    obs.object_count += 1;
    obs.byte_count += e.size;
    if (e.size < small_threshold_bytes) {
      obs.small_times.push_back(e.time_s);
    } else if (e.time_s > 0.0) {
      obs.large_tputs.push_back(static_cast<double>(e.size) / e.time_s);
    }
  }
  return out;
}

}  // namespace seed

// One canonical byte encoding shared by both shapes; domains are emitted in
// iteration order, so set-vs-vector ordering differences would show up here.
template <typename Obs>
std::string serialize_observations(const std::vector<Obs>& obs) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& o : obs) {
    os << "ip=" << o.ip << ";domains=";
    for (const auto& d : o.domains) os << d << ",";
    os << ";n=" << o.object_count << ";bytes=" << o.byte_count << ";small=";
    for (double t : o.small_times) os << t << ",";
    os << ";large=";
    for (double t : o.large_tputs) os << t << ",";
    os << "\n";
  }
  return os.str();
}

TEST(Grouping, ByteIdenticalToSeedImplementation) {
  std::mt19937 rng(20260805);
  std::uniform_int_distribution<int> ip_pick(0, 7);
  std::uniform_int_distribution<int> host_pick(0, 11);
  std::uniform_int_distribution<std::uint64_t> size_pick(0, 200'000);
  std::uniform_real_distribution<double> time_pick(0.0, 3.0);
  std::uniform_int_distribution<int> len_pick(0, 40);

  for (int trial = 0; trial < 200; ++trial) {
    browser::PerfReport r;
    const int n = len_pick(rng);
    for (int i = 0; i < n; ++i) {
      // Many hosts per IP and many IPs per host: the shared-front-end case
      // the domain set exists for.
      const std::string ip = "10.0.0." + std::to_string(ip_pick(rng));
      const std::string host = "h" + std::to_string(host_pick(rng)) + ".com";
      r.entries.push_back(
          entry("http://" + host + "/o" + std::to_string(i), host, ip,
                size_pick(rng), time_pick(rng)));
    }
    ASSERT_EQ(serialize_observations(group_by_server(r)),
              serialize_observations(seed::group(r, kDefaultSmallObjectBytes)))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace oak::core
