#include <gtest/gtest.h>

#include "core/grouping.h"

namespace oak::core {
namespace {

browser::ReportEntry entry(const std::string& url, const std::string& host,
                           const std::string& ip, std::uint64_t size,
                           double time) {
  return browser::ReportEntry{url, host, ip, size, 0.0, time};
}

TEST(Grouping, GroupsByIpNotHost) {
  // Two hostnames on one front-end IP must group together — "keeping track
  // of all related domain names" (§4.2).
  browser::PerfReport r;
  r.entries.push_back(entry("http://a.com/1", "a.com", "10.0.0.1", 100, 0.1));
  r.entries.push_back(entry("http://b.com/2", "b.com", "10.0.0.1", 100, 0.2));
  r.entries.push_back(entry("http://c.com/3", "c.com", "10.0.0.2", 100, 0.3));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].ip, "10.0.0.1");
  EXPECT_EQ(obs[0].domains, (std::set<std::string>{"a.com", "b.com"}));
  EXPECT_EQ(obs[0].object_count, 2u);
  EXPECT_EQ(obs[1].domains, (std::set<std::string>{"c.com"}));
}

TEST(Grouping, SmallLargeSplitAtThreshold) {
  browser::PerfReport r;
  const std::uint64_t th = kDefaultSmallObjectBytes;  // 50 KB
  r.entries.push_back(entry("u1", "a.com", "10.0.0.1", th - 1, 0.2));
  r.entries.push_back(entry("u2", "a.com", "10.0.0.1", th, 2.0));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 1u);
  ASSERT_EQ(obs[0].small_times.size(), 1u);  // strictly below threshold
  ASSERT_EQ(obs[0].large_tputs.size(), 1u);
  EXPECT_DOUBLE_EQ(obs[0].small_times[0], 0.2);
  EXPECT_DOUBLE_EQ(obs[0].large_tputs[0], static_cast<double>(th) / 2.0);
}

TEST(Grouping, AveragesAreMeans) {
  browser::PerfReport r;
  r.entries.push_back(entry("u1", "a.com", "10.0.0.1", 100, 0.1));
  r.entries.push_back(entry("u2", "a.com", "10.0.0.1", 100, 0.3));
  r.entries.push_back(entry("u3", "a.com", "10.0.0.1", 100'000, 1.0));
  r.entries.push_back(entry("u4", "a.com", "10.0.0.1", 200'000, 1.0));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_DOUBLE_EQ(obs[0].avg_small_time(), 0.2);
  EXPECT_DOUBLE_EQ(obs[0].avg_large_tput(), 150'000.0);
  EXPECT_EQ(obs[0].byte_count, 300'200u);
}

TEST(Grouping, CustomThreshold) {
  browser::PerfReport r;
  r.entries.push_back(entry("u1", "a.com", "10.0.0.1", 500, 0.1));
  auto obs = group_by_server(r, /*small_threshold_bytes=*/100);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_TRUE(obs[0].small_times.empty());
  EXPECT_EQ(obs[0].large_tputs.size(), 1u);
}

TEST(Grouping, ZeroTimeLargeObjectSkipped) {
  browser::PerfReport r;
  r.entries.push_back(entry("u1", "a.com", "10.0.0.1", 100'000, 0.0));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_TRUE(obs[0].large_tputs.empty());  // no division by zero
}

TEST(Grouping, EmptyReport) {
  browser::PerfReport r;
  EXPECT_TRUE(group_by_server(r).empty());
}

TEST(Grouping, PreservesFirstAppearanceOrder) {
  browser::PerfReport r;
  r.entries.push_back(entry("u1", "z.com", "10.0.0.9", 1, 0.1));
  r.entries.push_back(entry("u2", "a.com", "10.0.0.1", 1, 0.1));
  r.entries.push_back(entry("u3", "z.com", "10.0.0.9", 1, 0.1));
  auto obs = group_by_server(r);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].ip, "10.0.0.9");
  EXPECT_EQ(obs[1].ip, "10.0.0.1");
}

}  // namespace
}  // namespace oak::core
