// Bounds the cost of the oak::obs instrumentation on the ingest hot path:
// the same reports pushed through a metrics-on and a metrics-off server,
// timed as min-of-several-runs (minimum is the noise-robust statistic for
// "how fast can this go"). The bound is deliberately loose — four timer
// pairs and a dozen relaxed atomic ops against a full decode+detect+match
// pipeline should cost a few percent, and anything past the bound means an
// accidental lock or allocation crept onto the hot path.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "browser/report.h"
#include "core/oak_server.h"
#include "page/site.h"

namespace oak::core {
namespace {

class ObsOverheadFixture : public ::testing::Test {
 protected:
  ObsOverheadFixture()
      : universe_(net::NetworkConfig{.seed = 11, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("shop.com", net.server(origin_).addr());
    page::SiteBuilder b(universe_, "shop.com", origin_);
    for (int i = 0; i < 6; ++i) {
      const std::string host = "ext" + std::to_string(i) + ".cdn.net";
      net::ServerId sid = net.add_server(net::ServerConfig{});
      universe_.dns().bind(host, net.server(sid).addr());
      hosts_.push_back(host);
      ips_.push_back(net.server(sid).addr().to_string());
      b.add_direct(host, "/obj.png", html::RefKind::kImage, 10'000,
                   page::Category::kCdn);
    }
    site_ = b.finish();

    browser::PerfReport r;
    r.user_id = "u1";
    r.page_url = site_.index_url();
    r.plt_s = 1.2;
    r.entries.push_back(
        {site_.index_url(), "shop.com", "10.0.0.1", 5000, 0, 0.09});
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      r.entries.push_back({"http://" + hosts_[i] + "/obj.png", hosts_[i],
                           ips_[i], 10'000, 0.1, 0.10 + 0.01 * double(i)});
    }
    wire_ = r.serialize();
  }

  // Wall time for `reports` POSTs into a fresh server with the given config.
  double run_once(bool metrics_on, int reports) {
    OakConfig cfg;
    cfg.metrics = metrics_on;
    OakServer server(universe_, "shop.com", cfg);
    server.add_rule(make_domain_rule("r", hosts_[0], {"ext1.cdn.net"}));
    http::Request post =
        http::Request::post("http://shop.com/oak/report", wire_);
    post.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u1");
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reports; ++i) {
      server.handle(post, 0.001 * i);
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  }

  double best_of(bool metrics_on, int runs, int reports) {
    double best = 1e9;
    for (int i = 0; i < runs; ++i) {
      best = std::min(best, run_once(metrics_on, reports));
    }
    return best;
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::vector<std::string> hosts_;
  std::vector<std::string> ips_;
  page::Site site_;
  std::string wire_;
};

TEST_F(ObsOverheadFixture, InstrumentedIngestWithinNoiseOfDisabled) {
  constexpr int kReports = 400;
  constexpr int kRuns = 5;
  // Warm up allocators and caches on both configurations.
  run_once(true, 50);
  run_once(false, 50);
  const double with_obs = best_of(true, kRuns, kReports);
  const double without = best_of(false, kRuns, kReports);
  // CI-recorded bound: instrumented may not exceed 1.5x the runtime-disabled
  // floor (expected delta is single-digit percent; 1.5x absorbs scheduler
  // noise on shared runners without ever masking an O(ingest) regression).
  EXPECT_LT(with_obs, without * 1.5 + 1e-3)
      << "instrumented=" << with_obs << "s disabled=" << without << "s";
}

TEST_F(ObsOverheadFixture, RuntimeDisabledRecordsNothing) {
  OakConfig cfg;
  cfg.metrics = false;
  OakServer server(universe_, "shop.com", cfg);
  http::Request post =
      http::Request::post("http://shop.com/oak/report", wire_);
  post.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u1");
  server.handle(post, 0.0);
  obs::MetricsSnapshot snap = server.metrics_snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

}  // namespace
}  // namespace oak::core
