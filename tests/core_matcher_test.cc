#include <gtest/gtest.h>

#include <map>

#include "core/matcher.h"

namespace oak::core {
namespace {

// A matcher backed by an in-memory script universe.
class MatcherFixture : public ::testing::Test {
 protected:
  MatcherFixture() {
    scripts_["http://agg.adnet.com/loader.js"] =
        "load(\"http://creative.cdn-x.net/banner.png\");";
    scripts_["http://metrics.io/m.js"] = "var endpoint=\"beacon.metrics.io\";";
    matcher_ = std::make_unique<Matcher>(
        [this](const std::string& url) -> std::optional<std::string> {
          auto it = scripts_.find(url);
          if (it == scripts_.end()) return std::nullopt;
          return it->second;
        });
  }
  std::map<std::string, std::string> scripts_;
  std::unique_ptr<Matcher> matcher_;
};

TEST_F(MatcherFixture, Tier1DirectInclude) {
  const std::string rule = "<img src=\"http://cdn.a.net/x.png\"/>";
  EXPECT_EQ(matcher_->match_text(rule, {"cdn.a.net"}), MatchTier::kDirect);
  EXPECT_EQ(matcher_->match_text(rule, {"other.net"}), MatchTier::kNone);
}

TEST_F(MatcherFixture, Tier1RequiresExactHost) {
  const std::string rule = "<img src=\"http://sub.cdn.a.net/x.png\"/>";
  // Only the host the client actually resolved counts; sibling domains of
  // the same provider do not short-circuit the match.
  EXPECT_EQ(matcher_->match_text(rule, {"cdn.a.net"}), MatchTier::kText);
}

TEST_F(MatcherFixture, Tier2TextMention) {
  // An inline script building the URL programmatically: no parseable src,
  // but the hostname is present in text.
  const std::string rule =
      "<script>var h=\"beacon.metrics.io\";go(h+\"/p\");</script>";
  EXPECT_EQ(matcher_->match_text(rule, {"beacon.metrics.io"}),
            MatchTier::kText);
}

TEST_F(MatcherFixture, Tier2CanBeDisabled) {
  MatcherConfig cfg;
  cfg.enable_text = false;
  cfg.enable_external_scripts = false;
  Matcher strict(nullptr, cfg);
  const std::string rule = "<script>var h=\"x.io\";</script>";
  EXPECT_EQ(strict.match_text(rule, {"x.io"}), MatchTier::kNone);
}

TEST_F(MatcherFixture, Tier3ThroughExternalScript) {
  // Fig. 6: the rule references the aggregator script; the violator is the
  // downstream server only the script body names.
  const std::string rule =
      "<script src=\"http://agg.adnet.com/loader.js\"></script>";
  EXPECT_EQ(matcher_->match_text(rule, {"creative.cdn-x.net"},
                                 {"http://agg.adnet.com/loader.js"}),
            MatchTier::kExternalScript);
}

TEST_F(MatcherFixture, Tier3RequiresScriptInReport) {
  const std::string rule =
      "<script src=\"http://agg.adnet.com/loader.js\"></script>";
  // The client never reported loading the script -> no expansion.
  EXPECT_EQ(matcher_->match_text(rule, {"creative.cdn-x.net"}, {}),
            MatchTier::kNone);
}

TEST_F(MatcherFixture, Tier3RequiresRuleToReferenceScript) {
  const std::string rule = "<img src=\"http://unrelated.com/x.png\"/>";
  EXPECT_EQ(matcher_->match_text(rule, {"creative.cdn-x.net"},
                                 {"http://agg.adnet.com/loader.js"}),
            MatchTier::kNone);
}

TEST_F(MatcherFixture, Tier3UnfetchableScriptIsSkipped) {
  const std::string rule =
      "<script src=\"http://gone.example.com/x.js\"></script>";
  EXPECT_EQ(matcher_->match_text(rule, {"creative.cdn-x.net"},
                                 {"http://gone.example.com/x.js"}),
            MatchTier::kNone);
}

TEST_F(MatcherFixture, LowestTierWins) {
  // When a rule matches both directly and via script, report tier 1.
  const std::string rule =
      "<img src=\"http://creative.cdn-x.net/b.png\"/>"
      "<script src=\"http://agg.adnet.com/loader.js\"></script>";
  EXPECT_EQ(matcher_->match_text(rule, {"creative.cdn-x.net"},
                                 {"http://agg.adnet.com/loader.js"}),
            MatchTier::kDirect);
}

TEST_F(MatcherFixture, DomainRulesMatchByText) {
  Rule r = make_domain_rule("switch", "slow.ads.net", {"fast.ads.net"});
  EXPECT_EQ(matcher_->match_rule(r, {"slow.ads.net"}), MatchTier::kText);
  EXPECT_EQ(matcher_->match_rule(r, {"unrelated.net"}), MatchTier::kNone);
}

TEST_F(MatcherFixture, EmptyDomainsNeverMatch) {
  EXPECT_EQ(matcher_->match_text("anything", {}), MatchTier::kNone);
}

TEST(ReportScriptUrls, FiltersByPathExtension) {
  auto scripts = report_script_urls({"http://a.com/x.js", "http://b.com/y.png",
                                     "http://c.com/z.js?v=2", "not-a-url"});
  EXPECT_EQ(scripts, (std::vector<std::string>{"http://a.com/x.js",
                                               "http://c.com/z.js?v=2"}));
}

TEST(MatchTierNames, Strings) {
  EXPECT_EQ(to_string(MatchTier::kNone), "none");
  EXPECT_EQ(to_string(MatchTier::kDirect), "direct");
  EXPECT_EQ(to_string(MatchTier::kText), "text");
  EXPECT_EQ(to_string(MatchTier::kExternalScript), "external-script");
}

}  // namespace
}  // namespace oak::core
