#include <gtest/gtest.h>

#include "core/violator.h"

#include <cmath>

namespace oak::core {
namespace {

browser::ReportEntry entry(const std::string& ip, std::uint64_t size,
                           double time) {
  static int n = 0;
  return browser::ReportEntry{"http://h" + std::to_string(n++) + ".com/x",
                              "h.com", ip, size, 0.0, time};
}

// A report with 5 servers of small objects; server 0 takes `slow_time`,
// the rest take ~0.1s.
browser::PerfReport small_object_report(double slow_time) {
  browser::PerfReport r;
  r.entries.push_back(entry("10.0.0.1", 1000, slow_time));
  r.entries.push_back(entry("10.0.0.2", 1000, 0.10));
  r.entries.push_back(entry("10.0.0.3", 1000, 0.11));
  r.entries.push_back(entry("10.0.0.4", 1000, 0.09));
  r.entries.push_back(entry("10.0.0.5", 1000, 0.105));
  return r;
}

TEST(Violator, DetectsSlowSmallObjectServer) {
  auto res = detect_violators(small_object_report(1.0));
  ASSERT_EQ(res.violators.size(), 1u);
  EXPECT_EQ(res.violators[0].ip, "10.0.0.1");
  EXPECT_TRUE(res.violators[0].by_time);
  EXPECT_FALSE(res.violators[0].by_tput);
  EXPECT_GT(res.violators[0].severity(), 2.0);
}

TEST(Violator, NoViolatorWhenAllSimilar) {
  auto res = detect_violators(small_object_report(0.105));
  EXPECT_TRUE(res.violators.empty());
}

TEST(Violator, ThresholdIsRelativeNotAbsolute) {
  // Everything 10x slower but equally spread: still no violator. This is
  // the property that keeps Oak quiet for clients on slow links (§4.2.1).
  browser::PerfReport r;
  r.entries.push_back(entry("10.0.0.1", 1000, 1.0));
  r.entries.push_back(entry("10.0.0.2", 1000, 1.1));
  r.entries.push_back(entry("10.0.0.3", 1000, 0.9));
  r.entries.push_back(entry("10.0.0.4", 1000, 1.05));
  EXPECT_TRUE(detect_violators(r).violators.empty());
}

TEST(Violator, DetectsLowThroughputServer) {
  browser::PerfReport r;
  // Large objects: 100 KB each. Server 1 gets 10 KB/s, others ~1 MB/s.
  r.entries.push_back(entry("10.0.0.1", 100'000, 10.0));
  r.entries.push_back(entry("10.0.0.2", 100'000, 0.10));
  r.entries.push_back(entry("10.0.0.3", 100'000, 0.11));
  r.entries.push_back(entry("10.0.0.4", 100'000, 0.09));
  r.entries.push_back(entry("10.0.0.5", 100'000, 0.10));
  auto res = detect_violators(r);
  ASSERT_EQ(res.violators.size(), 1u);
  EXPECT_EQ(res.violators[0].ip, "10.0.0.1");
  EXPECT_TRUE(res.violators[0].by_tput);
  EXPECT_FALSE(res.violators[0].by_time);
}

TEST(Violator, FastServersAreNotViolators) {
  // Asymmetry: only the *worse* direction trips (longer time / lower
  // throughput), never the better one.
  browser::PerfReport r;
  r.entries.push_back(entry("10.0.0.1", 1000, 0.001));  // unusually fast
  r.entries.push_back(entry("10.0.0.2", 1000, 0.10));
  r.entries.push_back(entry("10.0.0.3", 1000, 0.11));
  r.entries.push_back(entry("10.0.0.4", 1000, 0.09));
  r.entries.push_back(entry("10.0.0.5", 1000, 0.10));
  for (const auto& v : detect_violators(r).violators) {
    EXPECT_NE(v.ip, "10.0.0.1");
  }
}

TEST(Violator, EitherMetricSufficient) {
  // A server with fine small-object times but terrible throughput is a
  // violator ("a violation of either type", §4.2.1).
  browser::PerfReport r;
  for (int i = 1; i <= 4; ++i) {
    const std::string ip = "10.0.0." + std::to_string(i);
    r.entries.push_back(entry(ip, 1000, 0.1));
    r.entries.push_back(entry(ip, 100'000, 0.1));
  }
  r.entries.push_back(entry("10.0.0.5", 1000, 0.1));      // fine
  r.entries.push_back(entry("10.0.0.5", 100'000, 50.0));  // terrible
  auto res = detect_violators(r);
  ASSERT_EQ(res.violators.size(), 1u);
  EXPECT_EQ(res.violators[0].ip, "10.0.0.5");
  EXPECT_TRUE(res.violators[0].by_tput);
}

TEST(Violator, MinPopulationSuppressesDetection) {
  browser::PerfReport r;
  r.entries.push_back(entry("10.0.0.1", 1000, 5.0));
  r.entries.push_back(entry("10.0.0.2", 1000, 0.10));
  r.entries.push_back(entry("10.0.0.3", 1000, 0.12));
  DetectorConfig cfg;
  cfg.min_population = 4;
  EXPECT_TRUE(detect_violators(r, cfg).violators.empty());
  cfg.min_population = 3;
  EXPECT_FALSE(detect_violators(r, cfg).violators.empty());
}

TEST(Violator, KParameterWidensTolerance) {
  auto report = small_object_report(0.13);
  DetectorConfig loose;
  loose.k = 8.0;
  EXPECT_TRUE(detect_violators(report, loose).violators.empty());
  DetectorConfig tight;
  tight.k = 2.0;
  EXPECT_FALSE(detect_violators(report, tight).violators.empty());
}

TEST(Violator, SeverityGrowsWithDeviation) {
  auto mild = detect_violators(small_object_report(0.5));
  auto severe = detect_violators(small_object_report(5.0));
  ASSERT_EQ(mild.violators.size(), 1u);
  ASSERT_EQ(severe.violators.size(), 1u);
  EXPECT_GT(severe.violators[0].severity(), mild.violators[0].severity());
}

TEST(Violator, SeverityFiniteEvenWithZeroMad) {
  browser::PerfReport r;
  r.entries.push_back(entry("10.0.0.1", 1000, 0.1));
  r.entries.push_back(entry("10.0.0.2", 1000, 0.1));
  r.entries.push_back(entry("10.0.0.3", 1000, 0.1));
  r.entries.push_back(entry("10.0.0.4", 1000, 0.1));
  r.entries.push_back(entry("10.0.0.5", 1000, 9.0));
  auto res = detect_violators(r);
  ASSERT_EQ(res.violators.size(), 1u);
  EXPECT_TRUE(std::isfinite(res.violators[0].severity()));
  EXPECT_GT(res.violators[0].severity(), 0.0);
}

TEST(Violator, CarriesDomainsFromGrouping) {
  browser::PerfReport r = small_object_report(2.0);
  r.entries[0].host = "slow-a.com";
  r.entries.push_back(browser::ReportEntry{"http://slow-b.com/y",
                                           "slow-b.com", "10.0.0.1", 1000,
                                           0.0, 2.0});
  auto res = detect_violators(r);
  ASSERT_EQ(res.violators.size(), 1u);
  EXPECT_EQ(res.violators[0].domains,
            (std::vector<std::string>{"slow-a.com", "slow-b.com"}));
}

TEST(Violator, SummariesExposed) {
  auto res = detect_violators(small_object_report(1.0));
  EXPECT_EQ(res.observations.size(), 5u);
  EXPECT_GT(res.time_summary.med, 0.0);
  EXPECT_GT(res.time_summary.mad, 0.0);
  EXPECT_EQ(res.tput_summary.n, 0u);
}

TEST(Violator, AbsoluteModeUsesFixedBounds) {
  browser::PerfReport r;
  r.entries.push_back(entry("10.0.0.1", 1000, 0.5));
  r.entries.push_back(entry("10.0.0.2", 1000, 1.5));
  r.entries.push_back(entry("10.0.0.3", 100'000, 10.0));  // 10 KB/s
  DetectorConfig cfg;
  cfg.mode = DetectionMode::kAbsolute;
  cfg.absolute_time_s = 1.0;
  cfg.absolute_tput_bps = 50'000.0;
  auto res = detect_violators(r, cfg);
  ASSERT_EQ(res.violators.size(), 2u);
  EXPECT_EQ(res.violators[0].ip, "10.0.0.2");
  EXPECT_TRUE(res.violators[0].by_time);
  EXPECT_EQ(res.violators[1].ip, "10.0.0.3");
  EXPECT_TRUE(res.violators[1].by_tput);
}

TEST(Violator, AbsoluteModeIgnoresPopulationFloor) {
  // Absolute bounds apply even to a single server — there is no MAD to
  // degenerate (and no relativity to exploit).
  browser::PerfReport r;
  r.entries.push_back(entry("10.0.0.1", 1000, 5.0));
  DetectorConfig cfg;
  cfg.mode = DetectionMode::kAbsolute;
  cfg.absolute_time_s = 1.0;
  EXPECT_EQ(detect_violators(r, cfg).violators.size(), 1u);
}

browser::ReportEntry failed_entry(const std::string& ip,
                                  const std::string& code,
                                  double burned = 1.0) {
  browser::ReportEntry e = entry(ip, 0, burned);
  e.error = code;
  return e;
}

// 5 servers with *identical* small-object times: statistically silent, so
// only the hard-failure rule can add violators. 1.0 (not 0.1) so that
// per-server means stay bit-exact — mean({0.1,0.1,0.1}) lands one ulp above
// the median and trips the zero-MAD check.
browser::PerfReport flat_report() {
  browser::PerfReport r;
  for (int i = 1; i <= 5; ++i) {
    r.entries.push_back(entry("10.0.0." + std::to_string(i), 1000, 1.0));
  }
  return r;
}

TEST(Violator, HardFailuresFlagDeadServer) {
  // The case MAD cannot see: a dead server contributes no timing sample.
  browser::PerfReport r = flat_report();
  r.entries.push_back(failed_entry("10.0.0.6", "refused"));
  r.entries.push_back(failed_entry("10.0.0.6", "refused"));
  auto res = detect_violators(r);
  ASSERT_EQ(res.violators.size(), 1u);
  EXPECT_EQ(res.violators[0].ip, "10.0.0.6");
  EXPECT_TRUE(res.violators[0].by_failure);
  EXPECT_FALSE(res.violators[0].by_time);
  EXPECT_EQ(res.violators[0].failure_count, 2u);
  EXPECT_DOUBLE_EQ(res.violators[0].failure_rate, 1.0);
}

TEST(Violator, HardFailureSeverityDominatesStatisticalOnes) {
  // A dead server must always lose history comparisons against a merely
  // slow one: its severity saturates above any finite MAD distance.
  browser::PerfReport r = small_object_report(50.0);  // huge time distance
  r.entries.push_back(failed_entry("10.0.0.6", "timeout"));
  auto res = detect_violators(r);
  ASSERT_EQ(res.violators.size(), 2u);
  const auto& slow = res.violators[0];
  const auto& dead = res.violators[1];
  ASSERT_TRUE(slow.by_time);
  ASSERT_TRUE(dead.by_failure);
  EXPECT_GT(dead.severity(), slow.severity());
}

TEST(Violator, HardFailuresIgnorePopulationFloorAndMode) {
  // One server, one failure: no MAD population, yet still flagged — in both
  // detection modes.
  browser::PerfReport r;
  r.entries.push_back(failed_entry("10.0.0.1", "refused"));
  DetectorConfig rel;
  rel.min_population = 100;
  auto res = detect_violators(r, rel);
  ASSERT_EQ(res.violators.size(), 1u);
  EXPECT_TRUE(res.violators[0].by_failure);
  DetectorConfig abs;
  abs.mode = DetectionMode::kAbsolute;
  ASSERT_EQ(detect_violators(r, abs).violators.size(), 1u);
  EXPECT_TRUE(detect_violators(r, abs).violators[0].by_failure);
}

TEST(Violator, FailureRateBelowThresholdDoesNotFire) {
  // 1 failure out of 4 attempts = 25% < the 50% default: a flaky-but-alive
  // server is left to the statistical rules.
  browser::PerfReport r = flat_report();
  r.entries.push_back(entry("10.0.0.6", 1000, 1.0));
  r.entries.push_back(entry("10.0.0.6", 1000, 1.0));
  r.entries.push_back(entry("10.0.0.6", 1000, 1.0));
  r.entries.push_back(failed_entry("10.0.0.6", "trunc"));
  EXPECT_TRUE(detect_violators(r).violators.empty());
}

TEST(Violator, MinHardFailuresFloor) {
  browser::PerfReport r = flat_report();
  r.entries.push_back(failed_entry("10.0.0.6", "refused"));
  DetectorConfig cfg;
  cfg.min_hard_failures = 2;
  EXPECT_TRUE(detect_violators(r, cfg).violators.empty());
  cfg.min_hard_failures = 1;
  EXPECT_EQ(detect_violators(r, cfg).violators.size(), 1u);
}

TEST(Violator, AbsoluteModeIsNotScaleInvariant) {
  // The §6 objection, as a test: scaling every observation (a slower
  // client) changes the absolute verdicts but not the relative ones.
  browser::PerfReport base = small_object_report(1.0);
  browser::PerfReport scaled = base;
  for (auto& e : scaled.entries) e.time_s *= 10.0;

  DetectorConfig abs;
  abs.mode = DetectionMode::kAbsolute;
  abs.absolute_time_s = 0.5;
  EXPECT_EQ(detect_violators(base, abs).violators.size(), 1u);
  EXPECT_EQ(detect_violators(scaled, abs).violators.size(), 5u);  // all flagged

  DetectorConfig rel;
  EXPECT_EQ(detect_violators(base, rel).violators.size(),
            detect_violators(scaled, rel).violators.size());
}

}  // namespace
}  // namespace oak::core
