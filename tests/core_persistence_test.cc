#include <gtest/gtest.h>

#include "core/oak_server.h"

namespace oak::core {
namespace {

class PersistenceFixture : public ::testing::Test {
 protected:
  PersistenceFixture()
      : universe_(net::NetworkConfig{.seed = 8, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("persist.com", net.server(origin_).addr());
    for (int i = 0; i < 3; ++i) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      const std::string host = "e" + std::to_string(i) + ".net";
      universe_.dns().bind(host, net.server(sid).addr());
      hosts_.push_back(host);
      ips_.push_back(net.server(sid).addr().to_string());
    }
    universe_.dns().bind(
        "alt.net", net.server(net.add_server(net::ServerConfig{})).addr());

    page::SiteBuilder b(universe_, "persist.com", origin_);
    for (const auto& h : hosts_) {
      b.add_direct(h, "/o.js", html::RefKind::kScript, 9'000,
                   page::Category::kCdn);
    }
    site_ = b.finish();
    universe_.store().replicate("http://" + hosts_[0] + "/o.js",
                                "http://alt.net/o.js");
  }

  std::unique_ptr<OakServer> make_server() {
    OakConfig cfg;
    cfg.detector.min_population = 4;
    auto server = std::make_unique<OakServer>(universe_, "persist.com", cfg);
    server->add_rule(make_domain_rule("switch", hosts_[0], {"alt.net"}));
    return server;
  }

  browser::PerfReport slow_report() {
    browser::PerfReport r;
    r.entries.push_back(
        {site_.index_url(), "persist.com", "10.0.0.1", 4000, 0, 0.09});
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      r.entries.push_back({"http://" + hosts_[i] + "/o.js", hosts_[i],
                           ips_[i], 9'000, 0.1,
                           i == 0 ? 4.0 : 0.10 + 0.01 * double(i)});
    }
    return r;
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::vector<std::string> hosts_;
  std::vector<std::string> ips_;
  page::Site site_;
};

TEST_F(PersistenceFixture, SnapshotRoundTripsProfilesAndLog) {
  auto before = make_server();
  before->analyze("u1", slow_report(), 10.0);
  before->analyze("u2", slow_report(), 20.0);
  ASSERT_EQ(before->user_count(), 2u);
  ASSERT_EQ(before->decision_log().count(DecisionType::kActivate), 2u);

  // Serialize to text (what would be written to disk) and restore into a
  // freshly-constructed server with the same rule configuration.
  const std::string snapshot = before->export_state().dump();
  auto after = make_server();
  after->import_state(util::Json::parse(snapshot));

  EXPECT_EQ(after->user_count(), 2u);
  EXPECT_EQ(after->reports_processed(), 2u);
  const UserProfile* u1 = after->profile("u1");
  ASSERT_NE(u1, nullptr);
  ASSERT_EQ(u1->active.size(), 1u);
  const ActiveRule& ar = u1->active.begin()->second;
  EXPECT_EQ(ar.violator_ip, ips_[0]);
  EXPECT_GT(ar.violation_distance, 0.0);
  EXPECT_DOUBLE_EQ(ar.activated_at, 10.0);
  EXPECT_EQ(after->decision_log().size(), before->decision_log().size());
}

TEST_F(PersistenceFixture, RestoredServerKeepsServingRewrittenPages) {
  auto before = make_server();
  before->analyze("u1", slow_report(), 0.0);
  const std::string snapshot = before->export_state().dump();

  auto after = make_server();
  after->import_state(util::Json::parse(snapshot));
  http::Request req = http::Request::get(site_.index_url());
  req.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u1");
  http::Response resp = after->handle(req, 100.0);
  EXPECT_NE(resp.body.find("alt.net"), std::string::npos)
      << "restored activation must still rewrite the page";
}

TEST_F(PersistenceFixture, UserIdCounterSurvivesRestart) {
  auto before = make_server();
  // Two anonymous users get issued cookies u1, u2.
  before->handle(http::Request::get(site_.index_url()), 0.0);
  before->handle(http::Request::get(site_.index_url()), 1.0);
  const std::string snapshot = before->export_state().dump();

  auto after = make_server();
  after->import_state(util::Json::parse(snapshot));
  http::Response resp =
      after->handle(http::Request::get(site_.index_url()), 2.0);
  auto cookies = resp.headers.get_all("Set-Cookie");
  ASSERT_EQ(cookies.size(), 1u);
  // A fresh visitor must not collide with a pre-restart identity.
  EXPECT_NE(cookies[0].find("oak_uid=u3"), std::string::npos) << cookies[0];
}

TEST_F(PersistenceFixture, PendingViolationsAndBansSurvive) {
  auto before = make_server();
  before->config().policy.default_min_violations = 3;
  before->analyze("u1", slow_report(), 0.0);
  before->analyze("u1", slow_report(), 1.0);
  ASSERT_TRUE(before->profile("u1")->active.empty());  // 2 of 3 violations
  const std::string snapshot = before->export_state().dump();

  auto after = make_server();
  after->config().policy.default_min_violations = 3;
  after->import_state(util::Json::parse(snapshot));
  // The third violation lands after the restart and completes activation.
  after->analyze("u1", slow_report(), 2.0);
  EXPECT_EQ(after->profile("u1")->active.size(), 1u);
}

TEST_F(PersistenceFixture, MalformedSnapshotsRejected) {
  auto server = make_server();
  EXPECT_THROW(server->import_state(util::Json::parse("{}")),
               util::JsonError);
  EXPECT_THROW(server->import_state(util::Json::parse(
                   R"({"version":99,"users":{},"log":[]})")),
               util::JsonError);
  // A failed import must not clobber existing state.
  server->analyze("u1", slow_report(), 0.0);
  try {
    server->import_state(util::Json::parse(R"({"version":1})"));
    FAIL() << "expected JsonError";
  } catch (const util::JsonError&) {
  }
  EXPECT_EQ(server->user_count(), 1u);
}

TEST_F(PersistenceFixture, SnapshotIsDeterministic) {
  auto a = make_server();
  auto b = make_server();
  a->analyze("u1", slow_report(), 0.0);
  b->analyze("u1", slow_report(), 0.0);
  EXPECT_EQ(a->export_state().dump(), b->export_state().dump());
}

}  // namespace
}  // namespace oak::core
