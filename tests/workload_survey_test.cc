// Tests for the survey driver, the §5.3 experiment driver, runtime rule
// removal, and network weather determinism — the pieces the figure benches
// stand on.
#include <gtest/gtest.h>

#include "core/oak_server.h"
#include "workload/existing_experiment.h"
#include "workload/survey.h"

namespace oak {
namespace {

TEST(Survey, ProducesOneLoadPerSitePerVantagePoint) {
  page::CorpusConfig cfg;
  cfg.seed = 3;
  cfg.num_sites = 12;
  cfg.num_providers = 60;
  page::Corpus corpus(cfg);
  auto vps = workload::make_vantage_points(corpus.universe().network(), 4);
  workload::SurveyOptions opt;
  auto loads = workload::run_outlier_survey(corpus, vps, opt);
  ASSERT_EQ(loads.size(), 12u * 4u);
  for (const auto& l : loads) {
    EXPECT_LT(l.site_index, 12u);
    EXPECT_LT(l.vp_index, 4u);
    EXPECT_FALSE(l.report.entries.empty());
    EXPECT_GT(l.report_bytes, 0u);
    // Detection ran: observations mirror the report grouping.
    EXPECT_FALSE(l.detection.observations.empty());
  }
}

TEST(Survey, DeterministicForSameSeedAndTime) {
  auto run = [] {
    page::CorpusConfig cfg;
    cfg.seed = 9;
    cfg.num_sites = 8;
    cfg.num_providers = 50;
    page::Corpus corpus(cfg);
    auto vps = workload::make_vantage_points(corpus.universe().network(), 3);
    workload::SurveyOptions opt;
    opt.start_time = 7 * 3600.0;
    auto loads = workload::run_outlier_survey(corpus, vps, opt);
    std::vector<std::size_t> violator_counts;
    for (const auto& l : loads) {
      violator_counts.push_back(l.detection.violators.size());
    }
    return violator_counts;
  };
  EXPECT_EQ(run(), run());
}

TEST(RouteWeather, DeterministicAndDayGranular) {
  net::NetworkConfig cfg;
  cfg.seed = 5;
  net::Network net(cfg);
  net::ServerId s = net.add_server(net::ServerConfig{});
  const double w1 = net.route_weather(0, s, 1000.0);
  EXPECT_DOUBLE_EQ(w1, net.route_weather(0, s, 2000.0));   // same day
  EXPECT_DOUBLE_EQ(w1, net.route_weather(0, s, 86399.0));  // still day 0
  EXPECT_GT(w1, 0.0);
  // Different clients see different weather to the same server.
  bool differs = false;
  for (net::ClientId c = 1; c < 8; ++c) {
    if (net.route_weather(c, s, 1000.0) != w1) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(ExistingExperiment, SmallRunProducesConsistentRecord) {
  workload::ExistingExperimentOptions opt;
  opt.loads_per_condition = 2;
  opt.vantage_points = 4;
  auto result = workload::run_existing_experiment(opt);
  EXPECT_EQ(result.users_per_site, 4u);
  EXPECT_EQ(result.table2_rows.size(), 10u);
  EXPECT_FALSE(result.outcomes.empty());
  for (const auto& o : result.outcomes) {
    EXPECT_LT(o.site_index, 10u);
    EXPECT_LT(o.client_index, 4u);
    // Oak-condition activity was sampled once per load.
    if (!o.active_per_load.empty()) {
      EXPECT_EQ(o.active_per_load.size(), 2u);
    }
    // moved paths only exist for outcomes whose rule actually activated.
    if (!o.moved_paths.empty()) {
      EXPECT_TRUE(o.activated_ever);
    }
  }
  // Fig. 14 bookkeeping covers every rule of every site, activated or not.
  std::size_t rules = 0;
  for (const auto& [site, domains] : result.activations) {
    rules += domains.size();
  }
  EXPECT_GT(rules, 50u);
}

TEST(ExistingExperiment, CanonicalDomainStripsMirrors) {
  bool was_mirror = false;
  EXPECT_EQ(workload::canonical_domain("na.mirror.cdn.x.com", &was_mirror),
            "cdn.x.com");
  EXPECT_TRUE(was_mirror);
  EXPECT_EQ(workload::canonical_domain("cdn.x.com", &was_mirror), "cdn.x.com");
  EXPECT_FALSE(was_mirror);
  EXPECT_EQ(workload::canonical_domain("eu.mirror.a.b", nullptr), "a.b");
}

TEST(RemoveRule, RetiresRuleEverywhere) {
  page::WebUniverse universe(net::NetworkConfig{.seed = 2, .horizon_s = 0});
  net::Network& net = universe.network();
  net::ServerId origin = net.add_server(net::ServerConfig{});
  universe.dns().bind("rm.com", net.server(origin).addr());
  std::vector<std::string> ips;
  for (int i = 0; i < 4; ++i) {
    net::ServerId sid = net.add_server(net::ServerConfig{});
    universe.dns().bind("h" + std::to_string(i) + ".net",
                        net.server(sid).addr());
    ips.push_back(net.server(sid).addr().to_string());
  }
  universe.dns().bind("alt.net",
                      net.server(net.add_server(net::ServerConfig{})).addr());
  page::SiteBuilder b(universe, "rm.com", origin);
  for (int i = 0; i < 4; ++i) {
    b.add_direct("h" + std::to_string(i) + ".net", "/o.js",
                 html::RefKind::kScript, 9000, page::Category::kCdn);
  }
  page::Site site = b.finish();
  universe.store().replicate("http://h0.net/o.js", "http://alt.net/o.js");

  core::OakConfig cfg;
  cfg.detector.min_population = 4;
  core::OakServer oak(universe, "rm.com", cfg);
  int rid = oak.add_rule(core::make_domain_rule("r", "h0.net", {"alt.net"}));

  browser::PerfReport r;
  r.entries.push_back({site.index_url(), "rm.com", "10.0.0.1", 4000, 0, 0.09});
  for (int i = 0; i < 4; ++i) {
    r.entries.push_back({"http://h" + std::to_string(i) + ".net/o.js",
                         "h" + std::to_string(i) + ".net", ips[std::size_t(i)],
                         9000, 0.1, i == 0 ? 4.0 : 0.10 + 0.01 * i});
  }
  oak.analyze("u1", r, 0.0);
  ASSERT_EQ(oak.profile("u1")->active.count(rid), 1u);

  EXPECT_TRUE(oak.remove_rule(rid, 10.0));
  EXPECT_EQ(oak.rules().size(), 0u);
  EXPECT_TRUE(oak.profile("u1")->active.empty());
  EXPECT_EQ(oak.decision_log().count(core::DecisionType::kExpire), 1u);
  // Pages served afterwards are the default again.
  http::Request req = http::Request::get(site.index_url());
  req.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u1");
  EXPECT_NE(oak.handle(req, 11.0).body.find("h0.net"), std::string::npos);
  EXPECT_FALSE(oak.remove_rule(999, 12.0));
}

}  // namespace
}  // namespace oak
