#include <gtest/gtest.h>

#include "browser/browser.h"
#include "workload/benchmark_site.h"
#include "workload/existing_sites.h"
#include "workload/sensitivity.h"
#include "workload/vantage.h"

namespace oak::workload {
namespace {

TEST(Vantage, PaperMix) {
  net::Network net;
  auto vps = make_vantage_points(net, 25);
  ASSERT_EQ(vps.size(), 25u);
  std::size_t na = 0, eu = 0, as_oc = 0;
  for (const auto& vp : vps) {
    switch (vp.region) {
      case net::Region::kNorthAmerica: ++na; break;
      case net::Region::kEurope: ++eu; break;
      case net::Region::kAsia:
      case net::Region::kOceania: ++as_oc; break;
      default: break;
    }
  }
  EXPECT_EQ(na, 13u);  // "half of which are in North America"
  EXPECT_GT(eu, 4u);
  EXPECT_GT(as_oc, 4u);
  EXPECT_EQ(na + eu + as_oc, 25u);
}

TEST(Vantage, RegionTrio) {
  net::Network net;
  auto trio = make_region_trio(net);
  ASSERT_EQ(trio.size(), 3u);
  EXPECT_EQ(trio[0].region, net::Region::kNorthAmerica);
  EXPECT_EQ(trio[1].region, net::Region::kEurope);
  EXPECT_EQ(trio[2].region, net::Region::kAsia);
}

TEST(Sensitivity, OakSwitchesAwayFromDelayedServer) {
  SensitivityScenario scenario(71);
  scenario.set_injected_delay(3.0);
  net::ClientConfig cc;
  cc.region = net::Region::kNorthAmerica;
  net::ClientId cid = scenario.universe().network().add_client(cc);
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser b(scenario.universe(), cid, bc);
  // First load sees the delay and reports it; second load is rewritten.
  b.load(scenario.oak_site_url(), 0.0);
  auto second = b.load(scenario.oak_site_url(), 60.0);
  bool uses_alt = false;
  for (const auto& e : second.report.entries) {
    if (e.host == "alt0.sensnet.net") uses_alt = true;
    EXPECT_NE(e.host, "ext0.sensnet.net");
  }
  EXPECT_TRUE(uses_alt);
  EXPECT_EQ(second.missing_objects, 0u);
}

TEST(Sensitivity, NoDelayNoSwitch) {
  SensitivityScenario scenario(72);
  net::ClientConfig cc;
  net::ClientId cid = scenario.universe().network().add_client(cc);
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser b(scenario.universe(), cid, bc);
  b.load(scenario.oak_site_url(), 0.0);
  auto second = b.load(scenario.oak_site_url(), 60.0);
  bool uses_default = false;
  for (const auto& e : second.report.entries) {
    if (e.host == "ext0.sensnet.net") uses_default = true;
  }
  EXPECT_TRUE(uses_default);
}

TEST(BenchmarkSite, StructureMatchesPaper) {
  BenchmarkSiteScenario s;
  EXPECT_EQ(s.set_hosts().size(), 5u);
  EXPECT_EQ(s.alt_hosts().size(), 5u);
  EXPECT_EQ(s.degraded_sets().size(), 2u);
  EXPECT_EQ(s.oak().rules().size(), 5u);
  // All 24 external objects exist plus replicas.
  for (const auto& h : s.set_hosts()) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(s.universe().store().has(
          "http://" + h + "/set/f" + std::to_string(i) + ".bin"));
    }
  }
  for (const auto& h : s.alt_hosts()) {
    EXPECT_TRUE(s.universe().store().has("http://" + h + "/set/f0.bin"));
  }
}

TEST(BenchmarkSite, DefaultAndOakPagesLoadFully) {
  BenchmarkSiteScenario s;
  net::ClientId cid = s.universe().network().add_client(net::ClientConfig{});
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser b(s.universe(), cid, bc);
  auto oak_load = b.load(s.oak_site_url(), 0.0);
  auto def_load = b.load(s.default_site_url(), 0.0);
  EXPECT_EQ(oak_load.missing_objects, 0u);
  EXPECT_EQ(def_load.missing_objects, 0u);
  // 1 index + 24 objects.
  EXPECT_EQ(def_load.report.entries.size(), 25u);
}

TEST(ExistingSites, BuildsTenPaperSites) {
  ExistingSitesScenario scenario;
  ASSERT_EQ(scenario.sites().size(), 10u);
  std::size_t h1 = 0, h2 = 0;
  for (const auto& s : scenario.sites()) {
    (s.h2 ? h2 : h1)++;
    EXPECT_FALSE(s.domains.empty());
    EXPECT_NE(s.oak, nullptr);
    EXPECT_EQ(s.oak->rules().size(), s.domains.size());
  }
  EXPECT_EQ(h1, 5u);
  EXPECT_EQ(h2, 5u);
  EXPECT_EQ(scenario.clients().size(), 25u);
}

TEST(ExistingSites, MirrorsResolvableAndReplicated) {
  ExistingSitesScenario scenario;
  auto& uni = scenario.universe();
  for (const auto& s : scenario.sites()) {
    for (const auto& hu : s.site->external_hosts) {
      for (net::Region r : kMirrorRegions) {
        const std::string mhost = mirror_host(r, hu.host);
        EXPECT_TRUE(uni.dns().resolve(mhost)) << mhost;
        for (const auto& url : hu.object_urls) {
          auto mirrored = util::replace_host(url, mhost);
          ASSERT_TRUE(mirrored);
          EXPECT_TRUE(uni.store().has(*mirrored)) << *mirrored;
        }
      }
    }
  }
}

TEST(ExistingSites, ClosestMirrorSelection) {
  EXPECT_EQ(closest_mirror_index("24.1.2.3"), 0u);
  EXPECT_EQ(closest_mirror_index("81.1.2.3"), 1u);
  EXPECT_EQ(closest_mirror_index("119.1.2.3"), 2u);
  EXPECT_EQ(closest_mirror_index("133.1.2.3"), 2u);
  EXPECT_EQ(closest_mirror_index("not-an-ip"), 0u);
}

TEST(ExistingSites, OakEnabledLoadWorksEndToEnd) {
  ExistingSitesScenario scenario;
  const auto& sut = scenario.sites()[0];
  net::ClientId cid = scenario.clients()[0].client;
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser b(scenario.universe(), cid, bc);
  auto res = b.load(sut.site->index_url(), 0.0);
  EXPECT_EQ(res.page_status, 200);
  EXPECT_EQ(res.missing_objects, 0u);
  EXPECT_TRUE(res.report_delivered);
  EXPECT_GT(sut.oak->reports_processed(), 0u);
}

}  // namespace
}  // namespace oak::workload
