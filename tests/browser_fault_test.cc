// Browser resilience under injected faults: timeouts, bounded retries with
// DNS re-resolution, graceful degradation, failure-aware reports, and the
// report-upload failure path.
#include <gtest/gtest.h>

#include "browser/browser.h"
#include "core/violator.h"
#include "net/fault.h"
#include "page/site.h"

namespace oak::browser {
namespace {

class FaultBrowserFixture : public ::testing::Test {
 protected:
  FaultBrowserFixture()
      : universe_(net::NetworkConfig{.seed = 31, .horizon_s = 0}) {
    net::ServerConfig origin_cfg;
    origin_cfg.name = "origin";
    origin_ = universe_.network().add_server(origin_cfg);
    universe_.dns().bind("site.com",
                         universe_.network().server(origin_).addr());

    net::ServerConfig a_cfg;
    a_cfg.name = "ext-a";
    ext_a_ = universe_.network().add_server(a_cfg);
    universe_.dns().bind("cdn.ext.net",
                         universe_.network().server(ext_a_).addr());

    net::ServerConfig b_cfg;
    b_cfg.name = "ext-b";
    ext_b_ = universe_.network().add_server(b_cfg);

    page::SiteBuilder b(universe_, "site.com", origin_);
    b.add_direct("cdn.ext.net", "/small.png", html::RefKind::kImage, 4'000,
                 page::Category::kCdn);
    b.add_direct("cdn.ext.net", "/big.bin", html::RefKind::kImage, 90'000,
                 page::Category::kCdn);
    b.add_script_with_induced("cdn.ext.net", "/agg.js", 3'000,
                              page::Category::kAds,
                              {{"cdn.ext.net", "/induced.png",
                                html::RefKind::kImage, 6'000,
                                page::Category::kAds}});
    site_ = b.finish();
  }

  net::ClientId make_client() {
    return universe_.network().add_client(net::ClientConfig{});
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  net::ServerId ext_a_ = net::kInvalidServer;
  net::ServerId ext_b_ = net::kInvalidServer;
  page::Site site_;
};

TEST_F(FaultBrowserFixture, GracefulDegradationUnderProviderOutage) {
  universe_.network().faults().add_window(
      net::FaultWindow{ext_a_, net::FaultType::kConnectRefused, 0.0, 1e9});
  Browser browser(universe_, make_client());
  LoadResult res = browser.load(site_.index_url(), 0.0);

  // The page still completes: the dead provider degrades, never blocks.
  EXPECT_EQ(res.page_status, 200);
  EXPECT_EQ(res.missing_objects, 0u);
  EXPECT_EQ(res.failed_objects, 3u);  // small + big + script
  EXPECT_GT(res.fetch_retries, 0u);
  EXPECT_GT(res.plt_s, 0.0);

  std::size_t refused = 0;
  bool induced_seen = false;
  for (const auto& e : res.report.entries) {
    if (e.url == "http://cdn.ext.net/induced.png") induced_seen = true;
    if (e.failed()) {
      ++refused;
      EXPECT_EQ(e.error, "refused");
      EXPECT_EQ(e.size, 0u);
      EXPECT_FALSE(e.ip.empty());
    }
  }
  // 3 objects x (1 attempt + 2 retries) failure samples, and the dead
  // script's induced child was never discovered.
  EXPECT_EQ(refused, 9u);
  EXPECT_FALSE(induced_seen);
}

TEST_F(FaultBrowserFixture, FailedEntriesSurviveTheWire) {
  universe_.network().faults().add_window(
      net::FaultWindow{ext_a_, net::FaultType::kConnectRefused, 0.0, 1e9});
  Browser browser(universe_, make_client());
  LoadResult res = browser.load(site_.index_url(), 0.0);
  const std::string wire = res.report.serialize();
  EXPECT_NE(wire.find("\"err\""), std::string::npos);
  PerfReport back = PerfReport::deserialize(wire);
  ASSERT_EQ(back.entries.size(), res.report.entries.size());
  for (std::size_t i = 0; i < back.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].error, res.report.entries[i].error);
  }
}

TEST_F(FaultBrowserFixture, StallRespectsFetchTimeoutBudget) {
  universe_.network().faults().add_window(
      net::FaultWindow{ext_a_, net::FaultType::kStall, 0.0, 1e9});
  BrowserConfig cfg;
  cfg.fetch_timeout_s = 2.0;
  Browser browser(universe_, make_client(), cfg);
  LoadResult res = browser.load(site_.index_url(), 0.0);
  EXPECT_EQ(res.page_status, 200);
  EXPECT_EQ(res.failed_objects, 3u);
  for (const auto& e : res.report.entries) {
    if (!e.failed()) continue;
    EXPECT_EQ(e.error, "timeout");
    EXPECT_DOUBLE_EQ(e.time_s, 2.0);
  }
  // Each failed object burned its attempts' budgets.
  EXPECT_GT(res.plt_s, 2.0);
}

TEST_F(FaultBrowserFixture, DnsChurnStaleIpRecoversViaRetry) {
  BrowserConfig cfg;
  cfg.use_cache = false;
  Browser browser(universe_, make_client(), cfg);
  LoadResult first = browser.load(site_.index_url(), 0.0);
  EXPECT_EQ(first.failed_objects, 0u);

  // The provider moves to a new front-end; the old one stops answering.
  const net::IpAddr old_ip = universe_.network().server(ext_a_).addr();
  const net::IpAddr new_ip = universe_.network().server(ext_b_).addr();
  universe_.dns().unbind("cdn.ext.net");
  universe_.dns().bind("cdn.ext.net", new_ip);
  EXPECT_TRUE(universe_.dns().reverse(old_ip).empty());
  ASSERT_EQ(universe_.dns().reverse(new_ip),
            std::vector<std::string>{"cdn.ext.net"});
  universe_.network().faults().add_window(
      net::FaultWindow{ext_a_, net::FaultType::kConnectRefused, 5.0, 1e9});

  // Within the browser's DNS TTL: the stale cached IP surfaces a *typed*
  // failure (not a crash, not a silent hit on the wrong server), then the
  // retry re-resolves and lands on the new front-end.
  LoadResult second = browser.load(site_.index_url(), 10.0);
  EXPECT_EQ(second.page_status, 200);
  EXPECT_EQ(second.failed_objects, 0u);
  EXPECT_GT(second.fetch_retries, 0u);
  bool stale_failure = false, fresh_success = false;
  for (const auto& e : second.report.entries) {
    if (e.host != "cdn.ext.net") continue;
    if (e.failed() && e.ip == old_ip.to_string()) stale_failure = true;
    if (!e.failed() && e.ip == new_ip.to_string()) fresh_success = true;
  }
  EXPECT_TRUE(stale_failure);
  EXPECT_TRUE(fresh_success);
}

TEST_F(FaultBrowserFixture, UnresolvableHostRecordsTypedDnsFailure) {
  page::SiteBuilder b(universe_, "site.com", origin_);
  // Stored object whose hostname has no DNS record: discovery finds it,
  // resolution fails.
  b.add_direct("unbound-host.net", "/x.png", html::RefKind::kImage, 1000,
               page::Category::kCdn);
  page::Site site = b.finish();
  Browser browser(universe_, make_client());
  LoadResult res = browser.load(site.index_url(), 0.0);
  EXPECT_EQ(res.missing_objects, 1u);
  EXPECT_EQ(res.failed_objects, 1u);
  bool found = false;
  for (const auto& e : res.report.entries) {
    if (e.host != "unbound-host.net") continue;
    found = true;
    EXPECT_EQ(e.error, "dns");
    EXPECT_TRUE(e.ip.empty());
    EXPECT_DOUBLE_EQ(e.time_s, 0.0);
  }
  EXPECT_TRUE(found);
}

TEST_F(FaultBrowserFixture, ReportUploadFailureIsNotRetried) {
  int posts = 0;
  universe_.set_handler(
      "site.com", [&](const http::Request& req, double) -> http::Response {
        if (req.method == http::Method::kPost) {
          ++posts;
          return http::Response::text("", 204);
        }
        const page::WebObject* obj =
            universe_.store().find("http://site.com/index.html");
        return http::Response::html(obj->body);
      });
  // The origin dies just after the navigation instant: the index fetch (at
  // t = 0) sails through, the report upload (at t = plt > 0) is refused.
  universe_.network().faults().add_window(
      net::FaultWindow{origin_, net::FaultType::kConnectRefused, 1e-6, 1e9});
  Browser browser(universe_, make_client());
  LoadResult res = browser.load(site_.index_url(), 0.0);
  EXPECT_EQ(res.page_status, 200);
  EXPECT_FALSE(res.report_delivered);
  EXPECT_EQ(posts, 0);  // the handler never saw the POST
  EXPECT_GT(res.report_upload_s, 0.0);  // the one attempt burned real time
  // Telemetry is never worth user time: the upload is one attempt, outside
  // the retry machinery (no retry was recorded for it).
  EXPECT_EQ(res.fetch_retries, 0u);
}

TEST_F(FaultBrowserFixture, IndexOutageFailsThePageGracefully) {
  universe_.network().faults().add_window(
      net::FaultWindow{origin_, net::FaultType::kConnectRefused, 0.0, 1e9});
  Browser browser(universe_, make_client());
  LoadResult res = browser.load(site_.index_url(), 0.0);
  EXPECT_EQ(res.page_status, 504);
  EXPECT_TRUE(res.page_html.empty());
  EXPECT_FALSE(res.report_delivered);
  EXPECT_GE(res.failed_objects, 1u);
  EXPECT_GT(res.plt_s, 0.0);
  // All three index attempts are in the report as failure samples.
  std::size_t refused = 0;
  for (const auto& e : res.report.entries) {
    if (e.failed()) ++refused;
  }
  EXPECT_EQ(refused, 3u);
}

TEST_F(FaultBrowserFixture, RetryBackoffIsClampedUnderLongRetryBudgets) {
  // Regression: the backoff used to be retry_backoff_s * (1 << attempt) —
  // undefined for attempt >= 31 (UBSan aborted here) and astronomically
  // large well before that (attempt 30 waits ~3.4 simulated years). With
  // the exponent clamped and max_backoff_s capping the deterministic term,
  // a 40-retry budget against a persistently dead provider degrades into
  // steady ~max_backoff polling and a bounded PLT.
  universe_.network().faults().add_window(
      net::FaultWindow{ext_a_, net::FaultType::kConnectRefused, 0.0, 1e12});
  BrowserConfig cfg;
  cfg.max_retries = 40;
  cfg.retry_backoff_s = 0.1;
  cfg.max_backoff_s = 30.0;
  Browser browser(universe_, make_client(), cfg);
  LoadResult res = browser.load(site_.index_url(), 0.0);

  EXPECT_EQ(res.page_status, 200);
  EXPECT_EQ(res.failed_objects, 3u);
  EXPECT_EQ(res.fetch_retries, 3u * 40u);
  // Worst case per object: 41 attempts, each <= ~1 RTT + 2*max_backoff.
  // The unclamped shift put this over 1e8 simulated seconds.
  EXPECT_GT(res.plt_s, 0.0);
  EXPECT_LT(res.plt_s, 41.0 * 61.0);
}

TEST_F(FaultBrowserFixture, UncappedBackoffStillGrowsExponentially) {
  // max_backoff_s = 0 disables the cap but the exponent clamp must still
  // hold: attempts past 30 reuse the 2^30 factor instead of shifting into
  // undefined behaviour.
  universe_.network().faults().add_window(
      net::FaultWindow{ext_a_, net::FaultType::kConnectRefused, 0.0, 1e12});
  BrowserConfig cfg;
  cfg.max_retries = 34;
  cfg.retry_backoff_s = 1e-9;
  cfg.max_backoff_s = 0.0;
  Browser browser(universe_, make_client(), cfg);
  LoadResult res = browser.load(site_.index_url(), 0.0);
  EXPECT_EQ(res.failed_objects, 3u);
  EXPECT_EQ(res.fetch_retries, 3u * 34u);
  // Deterministic terms sum to ~2^35 * 1e-9 ≈ 34s per object (plus jitter
  // up to the same again); finite either way.
  EXPECT_LT(res.plt_s, 1e4);
}

TEST_F(FaultBrowserFixture, ResourceTimingApiMissesCrossOriginFailures) {
  universe_.network().faults().add_window(
      net::FaultWindow{ext_a_, net::FaultType::kConnectRefused, 0.0, 1e9});

  BrowserConfig modified;
  modified.report_mechanism = ReportMechanism::kModifiedClient;
  Browser mc(universe_, make_client(), modified);
  LoadResult mc_res = mc.load(site_.index_url(), 0.0);
  auto mc_det = core::detect_violators(mc_res.report);
  bool mc_flags_ext = false;
  const std::string ext_ip =
      universe_.network().server(ext_a_).addr().to_string();
  for (const auto& v : mc_det.violators) {
    if (v.ip == ext_ip) {
      mc_flags_ext = true;
      EXPECT_TRUE(v.by_failure);
    }
  }
  EXPECT_TRUE(mc_flags_ext);

  // Resource Timing: the failing provider never sent Timing-Allow-Origin,
  // so its entries (failures included) are invisible to page script — Oak
  // detects nothing there. The asymmetry the paper's §6 warns about.
  BrowserConfig rta;
  rta.report_mechanism = ReportMechanism::kResourceTimingApi;
  Browser rb(universe_, make_client(), rta);
  LoadResult rta_res = rb.load(site_.index_url(), 0.0);
  for (const auto& e : rta_res.report.entries) {
    EXPECT_NE(e.host, "cdn.ext.net");
  }
  auto rta_det = core::detect_violators(rta_res.report);
  for (const auto& v : rta_det.violators) {
    EXPECT_NE(v.ip, ext_ip);
  }
}

}  // namespace
}  // namespace oak::browser
