// util/framing.h: CRC-32, varints and the length+checksum frame format the
// durability journal is built on. The load-bearing property is the torn-tail
// contract: a frame prefix cut at ANY byte must read back as kTruncated (or
// kCorrupt), never as a shorter valid frame — and flipping any byte must
// never produce a silently different payload.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/framing.h"

namespace oak::util {
namespace {

TEST(Crc32, KnownVectors) {
  // The standard IEEE CRC-32 check values.
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, SeedChainsIncrementally) {
  const std::string data = "hello, journal";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    // crc32 exposes the pre/post-conditioned value, so chaining re-seeds
    // with the previous output.
    const std::uint32_t whole = crc32(data);
    const std::uint32_t part =
        crc32(std::string_view(data).substr(split),
              crc32(std::string_view(data).substr(0, split)));
    EXPECT_EQ(part, whole) << "split at " << split;
  }
}

TEST(Varint, RoundTripsEdgeValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 ~0ull};
  for (std::uint64_t v : cases) {
    std::string buf;
    put_uvarint(buf, v);
    std::size_t pos = 0;
    std::uint64_t out = 0;
    ASSERT_TRUE(get_uvarint(buf, pos, out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, TruncatedAndOverlongFail) {
  std::string buf;
  put_uvarint(buf, ~0ull);  // 10 bytes
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::size_t pos = 0;
    std::uint64_t out = 0;
    EXPECT_FALSE(get_uvarint(buf.substr(0, cut), pos, out)) << cut;
    EXPECT_EQ(pos, 0u);  // pos untouched on failure
  }
  // 10 continuation bytes can never complete a uint64.
  std::string overlong(10, char(0x80));
  std::size_t pos = 0;
  std::uint64_t out = 0;
  EXPECT_FALSE(get_uvarint(overlong, pos, out));
}

TEST(Fixed, RoundTripsAndBounds) {
  std::string buf;
  put_fixed32(buf, 0xDEADBEEFu);
  put_fixed64(buf, 0x0123456789ABCDEFull);
  put_double_bits(buf, -0.0);
  std::size_t pos = 0;
  std::uint32_t w32 = 0;
  std::uint64_t w64 = 0;
  double d = 1.0;
  ASSERT_TRUE(get_fixed32(buf, pos, w32));
  ASSERT_TRUE(get_fixed64(buf, pos, w64));
  ASSERT_TRUE(get_double_bits(buf, pos, d));
  EXPECT_EQ(w32, 0xDEADBEEFu);
  EXPECT_EQ(w64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(std::signbit(d));  // -0.0 survives bit-exactly
  EXPECT_EQ(pos, buf.size());
  EXPECT_FALSE(get_fixed32(buf, pos, w32));  // nothing left
}

TEST(LengthValue, RoundTripAndOverflowSafety) {
  std::string buf;
  put_lv(buf, "abc");
  put_lv(buf, "");
  put_lv(buf, std::string(300, 'x'));
  std::size_t pos = 0;
  std::string_view a, b, c;
  ASSERT_TRUE(get_lv(buf, pos, a));
  ASSERT_TRUE(get_lv(buf, pos, b));
  ASSERT_TRUE(get_lv(buf, pos, c));
  EXPECT_EQ(a, "abc");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 300u);
  EXPECT_EQ(pos, buf.size());

  // A length claiming more bytes than remain must fail, including the
  // huge-length case where `pos + len` would wrap.
  std::string evil;
  put_uvarint(evil, ~0ull);
  pos = 0;
  std::string_view out;
  EXPECT_FALSE(get_lv(evil, pos, out));
}

TEST(Frame, RoundTripsMultipleFrames) {
  std::string buf;
  append_frame(buf, "first");
  append_frame(buf, "");
  append_frame(buf, std::string(1000, 'z'));
  std::size_t pos = 0;
  std::string_view p;
  ASSERT_EQ(read_frame(buf, pos, p), FrameStatus::kOk);
  EXPECT_EQ(p, "first");
  ASSERT_EQ(read_frame(buf, pos, p), FrameStatus::kOk);
  EXPECT_EQ(p, "");
  ASSERT_EQ(read_frame(buf, pos, p), FrameStatus::kOk);
  EXPECT_EQ(p.size(), 1000u);
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(read_frame(buf, pos, p), FrameStatus::kTruncated);  // clean EOF
}

// The crash contract: cutting a valid frame at EVERY possible byte must
// report truncation (or, where the cut leaves a self-inconsistent prefix,
// corruption) — never a valid frame, and pos must stay at the cut frame's
// start so the journal resumes appending there.
TEST(Frame, EveryPrefixIsTornNeverMisparsed) {
  std::string frame;
  append_frame(frame, "payload with some length to cut at many offsets");
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const std::string prefix = frame.substr(0, cut);
    std::size_t pos = 0;
    std::string_view p;
    const FrameStatus st = read_frame(prefix, pos, p);
    EXPECT_NE(st, FrameStatus::kOk) << "cut at " << cut;
    EXPECT_EQ(pos, 0u) << "cut at " << cut;
  }
}

// Same, with a complete frame in front: the first frame must still parse,
// the torn second must not consume bytes.
TEST(Frame, TornTailAfterValidFrame) {
  std::string buf;
  append_frame(buf, "intact");
  const std::size_t intact_end = buf.size();
  std::string tail;
  append_frame(tail, "about to be torn");
  for (std::size_t cut = 0; cut < tail.size(); ++cut) {
    const std::string whole = buf + tail.substr(0, cut);
    std::size_t pos = 0;
    std::string_view p;
    ASSERT_EQ(read_frame(whole, pos, p), FrameStatus::kOk);
    EXPECT_EQ(p, "intact");
    EXPECT_EQ(pos, intact_end);
    EXPECT_NE(read_frame(whole, pos, p), FrameStatus::kOk) << cut;
    EXPECT_EQ(pos, intact_end) << cut;
  }
}

// Flip every byte of a frame: the reader must flag the damage (truncated
// headers or corrupt body), never return a different payload as kOk.
TEST(Frame, EveryBitflipIsDetected) {
  std::string frame;
  append_frame(frame, "checksummed payload");
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x41);
    std::size_t pos = 0;
    std::string_view p;
    // CRC covers every payload byte and the length byte pins the frame
    // extent, so no single-byte flip can read back as a valid frame.
    EXPECT_NE(read_frame(bad, pos, p), FrameStatus::kOk) << "flip at " << i;
  }
}

TEST(Frame, InsaneLengthIsCorruptNotTruncated) {
  // A length beyond kMaxFramePayload can't be satisfied by more data
  // arriving; recovery must classify it as corruption, not wait for bytes.
  std::string buf;
  put_uvarint(buf, kMaxFramePayload + 1);
  std::size_t pos = 0;
  std::string_view p;
  EXPECT_EQ(read_frame(buf, pos, p), FrameStatus::kCorrupt);
}

}  // namespace
}  // namespace oak::util
