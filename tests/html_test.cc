#include <gtest/gtest.h>

#include "html/build.h"
#include "html/extract.h"
#include "html/tokenizer.h"

namespace oak::html {
namespace {

TEST(Tokenizer, TagsTextComments) {
  const std::string doc = "<!DOCTYPE html><p class=\"x\">hi</p><!-- c -->";
  auto tokens = tokenize(doc);
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].type, TokenType::kDoctype);
  EXPECT_EQ(tokens[1].type, TokenType::kStartTag);
  EXPECT_EQ(tokens[1].name, "p");
  EXPECT_EQ(tokens[1].attr("class"), "x");
  EXPECT_EQ(tokens[2].type, TokenType::kText);
  EXPECT_EQ(tokens[2].raw(doc), "hi");
  EXPECT_EQ(tokens[3].type, TokenType::kEndTag);
  EXPECT_EQ(tokens[4].type, TokenType::kComment);
}

TEST(Tokenizer, AttributeQuotingVariants) {
  auto tokens = tokenize("<img src='a.png' width=10 async data-x=\"q\"/>");
  ASSERT_EQ(tokens.size(), 1u);
  const Token& t = tokens[0];
  EXPECT_TRUE(t.self_closing);
  EXPECT_EQ(t.attr("src"), "a.png");
  EXPECT_EQ(t.attr("width"), "10");
  EXPECT_TRUE(t.has_attr("async"));
  EXPECT_EQ(t.attr("async"), "");
  EXPECT_EQ(t.attr("data-x"), "q");
}

TEST(Tokenizer, UppercaseNamesNormalized) {
  auto tokens = tokenize("<IMG SRC=\"x\"><//  ");
  EXPECT_EQ(tokens[0].name, "img");
  EXPECT_EQ(tokens[0].attr("src"), "x");
}

TEST(Tokenizer, ScriptBodyIsCdata) {
  const std::string doc =
      "<script>if (a < b) { x(\"<img src='fake.png'>\"); }</script><p>t</p>";
  auto tokens = tokenize(doc);
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].name, "script");
  EXPECT_EQ(tokens[1].type, TokenType::kText);
  EXPECT_TRUE(std::string(tokens[1].raw(doc)).find("fake.png") !=
              std::string::npos);
  EXPECT_EQ(tokens[2].type, TokenType::kEndTag);
  // The fake img inside the script is NOT a tag.
  for (const auto& t : tokens) EXPECT_NE(t.name, "img");
}

TEST(Tokenizer, BareLessThanIsText) {
  auto tokens = tokenize("1 < 2");
  for (const auto& t : tokens) EXPECT_EQ(t.type, TokenType::kText);
}

TEST(Tokenizer, UnterminatedTagDoesNotCrash) {
  auto tokens = tokenize("<img src=\"x");
  ASSERT_FALSE(tokens.empty());
}

TEST(Tokenizer, OffsetsCoverSource) {
  const std::string doc = "<a href=\"x\">y</a>";
  auto tokens = tokenize(doc);
  std::size_t covered = 0;
  for (const auto& t : tokens) covered += t.end - t.begin;
  EXPECT_EQ(covered, doc.size());
}

TEST(InlineScripts, ExtractsBodiesAndSkipsExternal) {
  const std::string doc =
      "<script src=\"http://x.com/a.js\"></script>"
      "<script>var inline1 = 1;</script>"
      "<script>var inline2 = 2;</script>";
  auto scripts = inline_scripts(doc);
  ASSERT_EQ(scripts.size(), 2u);
  EXPECT_EQ(scripts[0].body, "var inline1 = 1;");
  EXPECT_EQ(scripts[1].body, "var inline2 = 2;");
}

TEST(InlineScripts, EmptyBody) {
  auto scripts = inline_scripts("<script></script>");
  ASSERT_EQ(scripts.size(), 1u);
  EXPECT_EQ(scripts[0].body, "");
}

TEST(Extract, FindsAllReferenceKinds) {
  const std::string doc =
      "<img src=\"http://i.com/a.png\"/>"
      "<script src=\"http://j.com/b.js\"></script>"
      "<link rel=\"stylesheet\" href=\"http://c.com/s.css\"/>"
      "<iframe src=\"http://f.com/ad\"></iframe>"
      "<video src=\"http://v.com/m.mp4\"></video>"
      "<source src=\"http://i2.com/p.png\"/>";
  auto refs = extract_references(doc);
  ASSERT_EQ(refs.size(), 6u);
  EXPECT_EQ(refs[0].kind, RefKind::kImage);
  EXPECT_EQ(refs[1].kind, RefKind::kScript);
  EXPECT_EQ(refs[2].kind, RefKind::kStylesheet);
  EXPECT_EQ(refs[3].kind, RefKind::kFrame);
  EXPECT_EQ(refs[4].kind, RefKind::kMedia);
  EXPECT_EQ(refs[5].url, "http://i2.com/p.png");
}

TEST(Extract, SkipsRelativeAndNonResourceLinks) {
  const std::string doc =
      "<img src=\"/local/a.png\"/>"
      "<link rel=\"canonical\" href=\"http://x.com/\"/>"
      "<a href=\"http://x.com/page\">link</a>";
  EXPECT_TRUE(extract_references(doc).empty());
}

TEST(Extract, ScriptUrlsOnly) {
  const std::string doc =
      "<script src=\"http://j.com/b.js\"></script>"
      "<img src=\"http://i.com/a.png\"/>";
  EXPECT_EQ(external_script_urls(doc),
            (std::vector<std::string>{"http://j.com/b.js"}));
}

TEST(Build, TagsRoundTripThroughExtraction) {
  const std::string img = img_tag("http://i.com/a.png");
  const std::string js = script_src_tag("http://j.com/b.js");
  const std::string css = stylesheet_tag("http://c.com/s.css");
  auto refs = extract_references(img + js + css);
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0].url, "http://i.com/a.png");
  EXPECT_EQ(refs[1].url, "http://j.com/b.js");
  EXPECT_EQ(refs[2].url, "http://c.com/s.css");
}

TEST(Build, AssembleIsParseable) {
  PageSkeleton sk;
  sk.title = "t";
  sk.head_fragments = {stylesheet_tag("http://c.com/s.css")};
  sk.body_fragments = {img_tag("http://i.com/a.png")};
  const std::string doc = assemble(sk);
  EXPECT_EQ(extract_references(doc).size(), 2u);
  auto tokens = tokenize(doc);
  EXPECT_GT(tokens.size(), 5u);
}

TEST(Build, ProgrammaticLoaderMentionsHostButNoUrl) {
  const std::string s = programmatic_loader_script("cdn.x.com", "/a.js");
  // The host appears in text (tier-2 matchable) but no absolute URL exists
  // (tier-1 must fail).
  EXPECT_NE(s.find("cdn.x.com"), std::string::npos);
  EXPECT_TRUE(extract_references(s).empty());
}

}  // namespace
}  // namespace oak::html
