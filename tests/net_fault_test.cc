#include <gtest/gtest.h>

#include "net/fault.h"
#include "net/network.h"

namespace oak::net {
namespace {

TEST(FaultCodes, ErrorCodeRoundTrip) {
  for (FetchErrorType t :
       {FetchErrorType::kDns, FetchErrorType::kDnsTimeout,
        FetchErrorType::kRefused, FetchErrorType::kTimeout,
        FetchErrorType::kTruncated}) {
    EXPECT_EQ(error_from_code(error_code(t)), t);
    EXPECT_FALSE(error_code(t).empty());
  }
  EXPECT_TRUE(error_code(FetchErrorType::kNone).empty());
  EXPECT_EQ(error_from_code(""), FetchErrorType::kNone);
  EXPECT_EQ(error_from_code("no-such-code"), FetchErrorType::kNone);
}

TEST(FaultInjector, WindowActivation) {
  FaultInjector inj(FaultInjectorConfig{}, 7);
  inj.add_window(FaultWindow{2, FaultType::kConnectRefused, 100.0, 200.0});
  EXPECT_NE(inj.active(2, 0, 100.0), nullptr);
  EXPECT_NE(inj.active(2, 0, 150.0), nullptr);
  EXPECT_EQ(inj.active(2, 0, 99.9), nullptr);
  EXPECT_EQ(inj.active(2, 0, 200.0), nullptr);  // end is exclusive
  EXPECT_EQ(inj.active(1, 0, 150.0), nullptr);  // other server
}

TEST(FaultInjector, EarliestAddedWindowWins) {
  FaultInjector inj(FaultInjectorConfig{}, 7);
  inj.add_window(FaultWindow{2, FaultType::kStall, 0.0, 500.0});
  inj.add_window(FaultWindow{2, FaultType::kConnectRefused, 0.0, 500.0});
  const FaultWindow* w = inj.active(2, 0, 10.0);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->type, FaultType::kStall);
}

TEST(FaultInjector, FlappingDutyCycle) {
  FaultInjector inj(FaultInjectorConfig{}, 7);
  FaultWindow w{3, FaultType::kConnectRefused, 1000.0, 2000.0};
  w.flap_period_s = 10.0;
  w.flap_duty = 0.3;
  inj.add_window(w);
  // First 3s of every 10s period are faulted.
  EXPECT_NE(inj.active(3, 0, 1001.0), nullptr);
  EXPECT_EQ(inj.active(3, 0, 1005.0), nullptr);
  EXPECT_NE(inj.active(3, 0, 1012.0), nullptr);
  EXPECT_EQ(inj.active(3, 0, 1019.0), nullptr);
}

TEST(FaultInjector, ClientFractionMembershipIsStableAndSeeded) {
  FaultInjector a(FaultInjectorConfig{}, 42);
  FaultInjector b(FaultInjectorConfig{}, 42);
  FaultWindow w{0, FaultType::kConnectRefused, 0.0, 100.0};
  w.client_fraction = 0.5;
  a.add_window(w);
  b.add_window(w);
  int affected = 0;
  for (ClientId c = 0; c < 200; ++c) {
    const bool hit = a.affects(a.windows()[0], 0, c);
    // Stable across repeated queries and across same-seed injectors.
    EXPECT_EQ(hit, a.affects(a.windows()[0], 0, c));
    EXPECT_EQ(hit, b.affects(b.windows()[0], 0, c));
    EXPECT_EQ(hit, a.active(0, c, 50.0) != nullptr);
    if (hit) ++affected;
  }
  EXPECT_GT(affected, 60);   // ~100 expected out of 200
  EXPECT_LT(affected, 140);
}

class FaultyNetworkFixture : public ::testing::Test {
 protected:
  FaultyNetworkFixture() : net_(NetworkConfig{.seed = 5}) {
    ServerConfig sc;
    sc.name = "s";
    server_ = net_.add_server(sc);
    client_ = net_.add_client(ClientConfig{});
  }
  Network net_;
  ServerId server_ = kInvalidServer;
  ClientId client_ = 0;
};

TEST_F(FaultyNetworkFixture, NoFaultPreservesFetchAndRngStream) {
  util::Rng r1(99), r2(99);
  FetchTiming plain = net_.fetch(client_, server_, 40'000, 10.0, r1);
  FetchOutcome oc = net_.fetch_outcome(client_, server_, 40'000, 10.0, r2);
  ASSERT_FALSE(oc.failed());
  EXPECT_DOUBLE_EQ(oc.timing.total(), plain.total());
  EXPECT_DOUBLE_EQ(oc.timing.dns, plain.dns);
  EXPECT_DOUBLE_EQ(oc.timing.download, plain.download);
  // Both paths consumed the identical rng sequence.
  EXPECT_DOUBLE_EQ(r1.uniform(0.0, 1.0), r2.uniform(0.0, 1.0));
}

TEST_F(FaultyNetworkFixture, TimeoutBudgetConvertsSlowFetchToError) {
  util::Rng rng(3);
  FetchOutcome oc = net_.fetch_outcome(client_, server_, 1'000'000, 0.0, rng,
                                       true, true, /*timeout_s=*/1e-4);
  ASSERT_TRUE(oc.failed());
  EXPECT_EQ(oc.error.type, FetchErrorType::kTimeout);
  EXPECT_DOUBLE_EQ(oc.error.elapsed_s, 1e-4);
}

TEST_F(FaultyNetworkFixture, RefusedBurnsRoughlyOneRtt) {
  net_.faults().add_window(
      FaultWindow{server_, FaultType::kConnectRefused, 0.0, 1e9});
  util::Rng rng(3);
  FetchOutcome oc = net_.fetch_outcome(client_, server_, 40'000, 5.0, rng);
  ASSERT_TRUE(oc.failed());
  EXPECT_EQ(oc.error.type, FetchErrorType::kRefused);
  EXPECT_GT(oc.error.elapsed_s, 0.0);
  EXPECT_LT(oc.error.elapsed_s, 2.0);
}

TEST_F(FaultyNetworkFixture, NxdomainOnlyBitesColdResolution) {
  net_.faults().add_window(
      FaultWindow{server_, FaultType::kDnsNxdomain, 0.0, 1e9});
  util::Rng rng(3);
  FetchOutcome cold = net_.fetch_outcome(client_, server_, 1000, 5.0, rng);
  ASSERT_TRUE(cold.failed());
  EXPECT_EQ(cold.error.type, FetchErrorType::kDns);
  // A warm client cache never touches the resolver.
  FetchOutcome warm = net_.fetch_outcome(client_, server_, 1000, 5.0, rng,
                                         /*cold_dns=*/false);
  EXPECT_FALSE(warm.failed());
}

TEST_F(FaultyNetworkFixture, BlackholeBurnsResolverTimeout) {
  net_.faults().add_window(
      FaultWindow{server_, FaultType::kDnsBlackhole, 0.0, 1e9});
  util::Rng rng(3);
  FetchOutcome oc = net_.fetch_outcome(client_, server_, 1000, 5.0, rng);
  ASSERT_TRUE(oc.failed());
  EXPECT_EQ(oc.error.type, FetchErrorType::kDnsTimeout);
  EXPECT_DOUBLE_EQ(oc.error.elapsed_s,
                   net_.faults().config().resolver_timeout_s);
  // A caller budget tighter than the resolver's surfaces as a timeout.
  FetchOutcome budgeted = net_.fetch_outcome(client_, server_, 1000, 5.0,
                                             rng, true, true, 2.0);
  ASSERT_TRUE(budgeted.failed());
  EXPECT_EQ(budgeted.error.type, FetchErrorType::kTimeout);
  EXPECT_DOUBLE_EQ(budgeted.error.elapsed_s, 2.0);
}

TEST_F(FaultyNetworkFixture, StallBurnsWholeBudget) {
  net_.faults().add_window(FaultWindow{server_, FaultType::kStall, 0.0, 1e9});
  util::Rng rng(3);
  FetchOutcome oc = net_.fetch_outcome(client_, server_, 40'000, 5.0, rng,
                                       true, true, /*timeout_s=*/3.0);
  ASSERT_TRUE(oc.failed());
  EXPECT_EQ(oc.error.type, FetchErrorType::kTimeout);
  EXPECT_DOUBLE_EQ(oc.error.elapsed_s, 3.0);
  // Without a budget the OS-level stall bound applies.
  FetchOutcome unbudgeted =
      net_.fetch_outcome(client_, server_, 40'000, 5.0, rng);
  ASSERT_TRUE(unbudgeted.failed());
  EXPECT_GT(unbudgeted.error.elapsed_s,
            net_.faults().config().max_stall_s);
}

TEST_F(FaultyNetworkFixture, TruncateFailsPartwayThroughBody) {
  net_.faults().add_window(
      FaultWindow{server_, FaultType::kTruncate, 0.0, 1e9});
  util::Rng r1(3), r2(3);
  FetchTiming full = net_.fetch(client_, server_, 400'000, 5.0, r1);
  FetchOutcome oc = net_.fetch_outcome(client_, server_, 400'000, 5.0, r2);
  ASSERT_TRUE(oc.failed());
  EXPECT_EQ(oc.error.type, FetchErrorType::kTruncated);
  EXPECT_GT(oc.error.elapsed_s, full.dns + full.connect + full.ttfb);
  EXPECT_LT(oc.error.elapsed_s, full.total());
}

TEST_F(FaultyNetworkFixture, FaultedOutcomesAreDeterministic) {
  net_.faults().add_window(
      FaultWindow{server_, FaultType::kConnectRefused, 0.0, 1e9});
  util::Rng r1(17), r2(17);
  FetchOutcome a = net_.fetch_outcome(client_, server_, 9000, 42.0, r1);
  FetchOutcome b = net_.fetch_outcome(client_, server_, 9000, 42.0, r2);
  ASSERT_TRUE(a.failed());
  ASSERT_TRUE(b.failed());
  EXPECT_EQ(a.error.type, b.error.type);
  EXPECT_DOUBLE_EQ(a.error.elapsed_s, b.error.elapsed_s);
}

}  // namespace
}  // namespace oak::net
