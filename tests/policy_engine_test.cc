// PolicyEngine unit tests: strategy behaviors, Subnet boundaries, policy
// JSON round-trips, and racing-cohort stability across export/import.
#include <gtest/gtest.h>

#include "core/oak_server.h"
#include "core/policy.h"

namespace oak::core {
namespace {

Rule two_alt_rule(int id) {
  Rule r = make_domain_rule("switch", "slow.net", {"alt0.net", "alt1.net"});
  r.id = id;
  return r;
}

std::string user_in_cohort(int rule_id, int cohort) {
  for (int i = 0;; ++i) {
    std::string uid = "user" + std::to_string(i);
    if (PolicyEngine::cohort_of(uid, rule_id) == cohort) return uid;
  }
}

// --- Subnet boundaries (docs/RULES.md table) ------------------------------

TEST(Subnet, PrefixZeroMatchesEverything) {
  auto s = Subnet::parse("10.0.0.0/0");
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->contains(*net::IpAddr::parse("10.0.0.1")));
  EXPECT_TRUE(s->contains(*net::IpAddr::parse("255.255.255.255")));
  EXPECT_TRUE(s->contains(net::IpAddr{}));
}

TEST(Subnet, Slash32DemandsExactMatch) {
  auto s = Subnet::parse("192.168.1.7/32");
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->contains(*net::IpAddr::parse("192.168.1.7")));
  EXPECT_FALSE(s->contains(*net::IpAddr::parse("192.168.1.8")));
}

TEST(Subnet, OverlongPrefixBehavesAsSlash32) {
  // An IPv6-length prefix on an IPv4 base must not shift out of range;
  // it clamps to exact-match semantics.
  auto s = Subnet::parse("192.168.1.7/128");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->prefix_len, 128);
  EXPECT_TRUE(s->contains(*net::IpAddr::parse("192.168.1.7")));
  EXPECT_FALSE(s->contains(*net::IpAddr::parse("192.168.1.6")));
}

TEST(Subnet, BareAddressMeansSlash32) {
  auto s = Subnet::parse("10.1.2.3");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->prefix_len, 32);
  EXPECT_TRUE(s->contains(*net::IpAddr::parse("10.1.2.3")));
  EXPECT_FALSE(s->contains(*net::IpAddr::parse("10.1.2.4")));
}

TEST(Subnet, RejectsMalformedInput) {
  EXPECT_FALSE(Subnet::parse("::1/64").has_value());  // IPv6 literal
  EXPECT_FALSE(Subnet::parse("10.0.0.1/129").has_value());
  EXPECT_FALSE(Subnet::parse("10.0.0.1/-1").has_value());
  EXPECT_FALSE(Subnet::parse("10.0.0.1/abc").has_value());
  EXPECT_FALSE(Subnet::parse("not-an-ip/8").has_value());
  EXPECT_FALSE(Subnet::parse("").has_value());
}

TEST(Subnet, OrdinaryPrefixMasksLowBits) {
  auto s = Subnet::parse("10.20.0.0/16");
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->contains(*net::IpAddr::parse("10.20.255.1")));
  EXPECT_FALSE(s->contains(*net::IpAddr::parse("10.21.0.1")));
  EXPECT_EQ(s->to_string(), "10.20.0.0/16");
}

// --- Policy JSON round-trip ----------------------------------------------

TEST(PolicyJson, RoundTripsStrategyTable) {
  Policy p;
  p.default_min_violations = 3;
  p.selection = AlternativeSelection::kRoundRobin;
  p.allow_reactivation = false;
  p.holdback_fraction = 0.25;
  p.client_filter = Subnet::parse("10.0.0.0/8");
  p.default_strategy = "race-fast";
  p.record_context = true;

  StrategyConfig racing;
  racing.name = "race-fast";
  racing.kind = StrategyKind::kRacing;
  racing.racing.min_samples = 7;
  p.strategies.push_back(racing);

  StrategyConfig hyst;
  hyst.name = "sticky";
  hyst.kind = StrategyKind::kHysteresis;
  hyst.hysteresis.cooldown_s = 120.0;
  hyst.hysteresis.keep_margin = 2.0;
  p.strategies.push_back(hyst);

  StrategyConfig scoped;
  scoped.name = "by-office";
  scoped.kind = StrategyKind::kScoped;
  scoped.routes.push_back({*Subnet::parse("10.1.0.0/16"), "race-fast"});
  scoped.fallback = "sticky";
  p.strategies.push_back(scoped);

  const util::Json j = policy_to_json(p);
  const Policy q = policy_from_json(j);
  EXPECT_EQ(policy_to_json(q).dump(), j.dump());
  EXPECT_EQ(q.default_min_violations, 3);
  EXPECT_EQ(q.selection, AlternativeSelection::kRoundRobin);
  EXPECT_FALSE(q.allow_reactivation);
  EXPECT_DOUBLE_EQ(q.holdback_fraction, 0.25);
  EXPECT_EQ(q.default_strategy, "race-fast");
  EXPECT_TRUE(q.record_context);
  ASSERT_EQ(q.strategies.size(), 3u);
  EXPECT_EQ(q.strategies[0].racing.min_samples, 7u);
  EXPECT_DOUBLE_EQ(q.strategies[1].hysteresis.cooldown_s, 120.0);
  ASSERT_EQ(q.strategies[2].routes.size(), 1u);
  EXPECT_EQ(q.strategies[2].routes[0].strategy, "race-fast");
  EXPECT_EQ(q.strategies[2].fallback, "sticky");
}

TEST(PolicyJson, HoldbackBoundaryIsHalfOpen) {
  // Held back iff holdback_bucket(uid) < fraction * 10'000.
  Policy p;
  const std::string uid = "boundary-user";
  const std::uint32_t bucket = Policy::holdback_bucket(uid);
  p.holdback_fraction = double(bucket) / 10'000.0;  // bucket == threshold
  EXPECT_FALSE(p.in_holdback(uid));                 // strictly-less-than
  p.holdback_fraction = double(bucket + 1) / 10'000.0;
  EXPECT_TRUE(p.in_holdback(uid));
}

// --- Engine construction validation --------------------------------------

TEST(PolicyEngineCtor, RejectsInconsistentTables) {
  {
    Policy p;
    StrategyConfig a;
    a.name = "dup";
    p.strategies.push_back(a);
    p.strategies.push_back(a);
    EXPECT_THROW(PolicyEngine(p, nullptr), std::invalid_argument);
  }
  {
    Policy p;
    StrategyConfig s;
    s.name = "routed";
    s.kind = StrategyKind::kScoped;
    s.routes.push_back({*Subnet::parse("10.0.0.0/8"), "no-such"});
    p.strategies.push_back(s);
    EXPECT_THROW(PolicyEngine(p, nullptr), std::invalid_argument);
  }
  {
    Policy p;
    p.default_strategy = "missing";
    EXPECT_THROW(PolicyEngine(p, nullptr), std::invalid_argument);
  }
}

// --- Paper strategy (seed parity at unit level) ---------------------------

TEST(PaperStrategy, ThresholdAndLinearProgression) {
  Policy p;
  p.default_min_violations = 2;
  PolicyEngine eng(p, nullptr);
  Rule r = two_alt_rule(5);
  UserProfile u;
  u.user_id = "u1";

  EXPECT_FALSE(eng.on_rule_violation(r, u, 2.0, 0.0).has_value());
  EXPECT_EQ(u.pending_violations.at(5), 1);
  auto c = eng.on_rule_violation(r, u, 2.0, 1.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->alternative_index, 0u);
  EXPECT_EQ(c->cohort, -1);
  EXPECT_EQ(u.pending_violations.count(5), 0u);  // consumed on activation

  // Linear: the next activation advances to alternative 1 and saturates.
  c = eng.on_rule_violation(r, u, 2.0, 2.0);
  ASSERT_FALSE(c.has_value());  // threshold counts from zero again
  c = eng.on_rule_violation(r, u, 2.0, 3.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->alternative_index, 1u);
}

// --- Racing strategy ------------------------------------------------------

class RacingFixture : public ::testing::Test {
 protected:
  RacingFixture() {
    policy_.default_strategy = "racing";
    StrategyConfig sc;
    sc.name = "racing";  // shadow the built-in with a tiny threshold
    sc.kind = StrategyKind::kRacing;
    sc.racing.min_samples = 2;
    policy_.strategies.push_back(sc);
    engine_ = std::make_unique<PolicyEngine>(policy_, nullptr);
    rule_ = two_alt_rule(7);
  }

  // Activate the rule for `user` and feed `n` post-activation PLT samples.
  void race(UserProfile& user, double plt, int n,
            std::vector<Decision>* events) {
    auto c = engine_->on_rule_violation(rule_, user, 2.0, 0.0);
    ASSERT_TRUE(c.has_value());
    ActiveRule ar;
    ar.rule_id = rule_.id;
    ar.alternative_index = c->alternative_index;
    user.active[rule_.id] = ar;
    for (int i = 0; i < n; ++i) {
      engine_->observe_report(user, plt, double(i),
                              [this](int) { return &rule_; }, events);
    }
  }

  Policy policy_;
  std::unique_ptr<PolicyEngine> engine_;
  Rule rule_;
};

TEST_F(RacingFixture, CohortsActivateTheirOwnAlternative) {
  UserProfile u0, u1;
  u0.user_id = user_in_cohort(rule_.id, 0);
  u1.user_id = user_in_cohort(rule_.id, 1);

  auto c0 = engine_->on_rule_violation(rule_, u0, 2.0, 0.0);
  auto c1 = engine_->on_rule_violation(rule_, u1, 2.0, 0.0);
  ASSERT_TRUE(c0.has_value());
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c0->alternative_index, 0u);
  EXPECT_EQ(c0->cohort, 0);
  EXPECT_EQ(c1->alternative_index, 1u);
  EXPECT_EQ(c1->cohort, 1);
  // The cohort is remembered in the profile (it persists in snapshots).
  EXPECT_EQ(u0.race.at(rule_.id).cohort, 0);
  EXPECT_EQ(u1.race.at(rule_.id).cohort, 1);
}

TEST_F(RacingFixture, WinnerDeclaredAndUsedForLaterActivations) {
  UserProfile u0, u1;
  u0.user_id = user_in_cohort(rule_.id, 0);
  u1.user_id = user_in_cohort(rule_.id, 1);
  std::vector<Decision> events;
  race(u0, /*plt=*/5.0, /*n=*/2, &events);  // cohort 0: slow alternative
  EXPECT_TRUE(events.empty());              // cohort 1 has no samples yet
  race(u1, /*plt=*/1.0, /*n=*/2, &events);

  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, DecisionType::kRaceWinner);
  EXPECT_EQ(events[0].rule_id, rule_.id);
  EXPECT_EQ(events[0].alternative_index, 1u);  // the faster cohort

  auto rs = engine_->race_state(rule_.id);
  ASSERT_TRUE(rs.has_value());
  EXPECT_TRUE(rs->decided);
  EXPECT_EQ(rs->winner, 1);
  EXPECT_LE(rs->mean(1), rs->mean(0));

  // A brand-new cohort-0 user now gets the winner, not their cohort.
  UserProfile u2;
  for (int i = 0;; ++i) {
    std::string cand = "later-" + std::to_string(i);
    if (PolicyEngine::cohort_of(cand, rule_.id) == 0) {
      u2.user_id = std::move(cand);
      break;
    }
  }
  auto c = engine_->on_rule_violation(rule_, u2, 2.0, 50.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->alternative_index, 1u);
  EXPECT_EQ(c->cohort, -1);  // no longer racing
}

TEST_F(RacingFixture, AggregatesRebuildFromProfiles) {
  UserProfile u0, u1;
  u0.user_id = user_in_cohort(rule_.id, 0);
  u1.user_id = user_in_cohort(rule_.id, 1);
  race(u0, 5.0, 2, nullptr);
  race(u1, 1.0, 2, nullptr);
  const auto live = engine_->race_state(rule_.id);
  ASSERT_TRUE(live.has_value());
  ASSERT_TRUE(live->decided);

  // Import path: reset, fold the profiles, finalize. The rebuilt verdict
  // must match the live one exactly (determinism contract, DESIGN.md §15).
  engine_->reset_race_state();
  EXPECT_FALSE(engine_->race_state(rule_.id).has_value());
  engine_->fold_profile(u0);
  engine_->fold_profile(u1);
  engine_->finalize_races([this](int) { return &rule_; });
  const auto rebuilt = engine_->race_state(rule_.id);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->decided, live->decided);
  EXPECT_EQ(rebuilt->winner, live->winner);
  EXPECT_EQ(rebuilt->count[0], live->count[0]);
  EXPECT_EQ(rebuilt->count[1], live->count[1]);
  EXPECT_DOUBLE_EQ(rebuilt->plt_sum[0], live->plt_sum[0]);
  EXPECT_DOUBLE_EQ(rebuilt->plt_sum[1], live->plt_sum[1]);
}

// --- Hysteresis strategy --------------------------------------------------

class HysteresisFixture : public ::testing::Test {
 protected:
  HysteresisFixture() {
    policy_.default_strategy = "hysteresis";
    StrategyConfig sc;
    sc.name = "hysteresis";
    sc.kind = StrategyKind::kHysteresis;
    sc.hysteresis.cooldown_s = 100.0;
    sc.hysteresis.keep_margin = 1.5;
    policy_.strategies.push_back(sc);
    engine_ = std::make_unique<PolicyEngine>(policy_, nullptr);
    rule_ = two_alt_rule(9);
  }

  Policy policy_;
  std::unique_ptr<PolicyEngine> engine_;
  Rule rule_;
};

TEST_F(HysteresisFixture, KeepMarginToleratesModeratelyWorseAlternative) {
  UserProfile u;
  u.user_id = "u1";
  ActiveRule ar;
  ar.rule_id = rule_.id;
  ar.violation_distance = 2.0;

  // Seed min-distance would advance at alt_distance >= 2.0; the margin
  // keeps the alternative until 1.5 x 2.0 = 3.0.
  EXPECT_EQ(engine_->on_alternative_violation(rule_, u, ar, 2.5,
                                              HistoryMode::kMinDistance),
            HistoryAction::kKeep);
  EXPECT_EQ(engine_->on_alternative_violation(rule_, u, ar, 3.5,
                                              HistoryMode::kMinDistance),
            HistoryAction::kAdvance);
}

TEST_F(HysteresisFixture, CooldownSuppressesReactivation) {
  UserProfile u;
  u.user_id = "u1";
  // First activation fires normally (min_violations defaults to 1).
  ASSERT_TRUE(engine_->on_rule_violation(rule_, u, 2.0, 0.0).has_value());

  // A deactivation at t=10 arms the cooldown until t=110.
  engine_->on_deactivated(rule_, u, 10.0);
  EXPECT_DOUBLE_EQ(u.cooldown_until.at(rule_.id), 110.0);

  // Violations inside the window are suppressed and not counted.
  EXPECT_FALSE(engine_->on_rule_violation(rule_, u, 2.0, 50.0).has_value());
  EXPECT_EQ(u.pending_violations.count(rule_.id), 0u);

  // After the window the rule re-arms (and the stale entry is dropped).
  EXPECT_TRUE(engine_->on_rule_violation(rule_, u, 2.0, 120.0).has_value());
  EXPECT_EQ(u.cooldown_until.count(rule_.id), 0u);
}

// --- Scoped strategy ------------------------------------------------------

TEST(ScopedStrategy, RoutesBySubnetWithFallback) {
  Policy p;
  StrategyConfig scoped;
  scoped.name = "by-net";
  scoped.kind = StrategyKind::kScoped;
  scoped.routes.push_back({*Subnet::parse("10.0.0.0/8"), "racing"});
  scoped.fallback = "paper";
  p.strategies.push_back(scoped);
  p.default_strategy = "by-net";
  PolicyEngine eng(p, nullptr);
  Rule r = two_alt_rule(3);

  // Inside the subnet: racing semantics (cohort recorded on activation).
  UserProfile inside;
  inside.user_id = user_in_cohort(r.id, 1);
  inside.client_ip = "10.1.2.3";
  auto ci = eng.on_rule_violation(r, inside, 2.0, 0.0);
  ASSERT_TRUE(ci.has_value());
  EXPECT_EQ(ci->cohort, 1);
  EXPECT_EQ(ci->alternative_index, 1u);

  // Outside: the paper fallback (no cohort, linear selection).
  UserProfile outside;
  outside.user_id = inside.user_id;
  outside.client_ip = "192.168.0.1";
  auto co = eng.on_rule_violation(r, outside, 2.0, 0.0);
  ASSERT_TRUE(co.has_value());
  EXPECT_EQ(co->cohort, -1);
  EXPECT_EQ(co->alternative_index, 0u);
}

// --- Rule-file / admin wiring --------------------------------------------

TEST(RulePolicyField, UnknownStrategyRejectedByAddRule) {
  page::WebUniverse universe(net::NetworkConfig{.seed = 5, .horizon_s = 0});
  net::Network& net = universe.network();
  const net::ServerId origin = net.add_server(net::ServerConfig{});
  universe.dns().bind("site.test", net.server(origin).addr());
  OakServer oak(universe, "site.test", OakConfig{});

  Rule bad = make_domain_rule("r", "slow.net", {"alt.net"});
  bad.policy = "no-such-strategy";
  EXPECT_THROW(oak.add_rule(bad), std::invalid_argument);

  Rule good = make_domain_rule("r", "slow.net", {"alt.net"});
  good.policy = "racing";  // built-in
  EXPECT_NO_THROW(oak.add_rule(good));
}

}  // namespace
}  // namespace oak::core
