#include <gtest/gtest.h>

#include "browser/browser.h"
#include "core/trace.h"

namespace oak::core {
namespace {

class TraceFixture : public ::testing::Test {
 protected:
  TraceFixture() : universe_(net::NetworkConfig{.seed = 55, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("traced.com", net.server(origin_).addr());
    net::ServerConfig sick;
    sick.chronic_degradation = 15.0;
    universe_.dns().bind("bad.net", net.server(net.add_server(sick)).addr());
    universe_.dns().bind(
        "alt.net", net.server(net.add_server(net::ServerConfig{})).addr());
    for (int i = 0; i < 4; ++i) {
      universe_.dns().bind(
          "p" + std::to_string(i) + ".net",
          net.server(net.add_server(net::ServerConfig{})).addr());
    }
    page::SiteBuilder b(universe_, "traced.com", origin_);
    b.add_direct("bad.net", "/x.js", html::RefKind::kScript, 12'000,
                 page::Category::kCdn);
    for (int i = 0; i < 4; ++i) {
      b.add_direct("p" + std::to_string(i) + ".net", "/x.js",
                   html::RefKind::kScript, 12'000, page::Category::kCdn);
    }
    site_ = b.finish();
    universe_.store().replicate("http://bad.net/x.js", "http://alt.net/x.js");
  }

  std::unique_ptr<OakServer> make_server(double k = 2.0) {
    OakConfig cfg;
    cfg.detector.k = k;
    auto server = std::make_unique<OakServer>(universe_, "traced.com", cfg);
    server->add_rule(make_domain_rule("switch", "bad.net", {"alt.net"}));
    return server;
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  page::Site site_;
};

TEST_F(TraceFixture, RecordingHandlerCapturesLiveTraffic) {
  auto server = make_server();
  ReportTrace trace;
  universe_.set_handler("traced.com", recording_handler(*server, trace));

  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser alice(universe_, universe_.network().add_client({}), bc);
  alice.load(site_.index_url(), 0.0);
  alice.load(site_.index_url(), 60.0);

  ASSERT_EQ(trace.size(), 2u);
  // Reports upload after the load finishes, so the record is stamped later
  // than navigation start.
  EXPECT_GE(trace.records()[1].time, 60.0);
  EXPECT_FALSE(trace.records()[0].user_id.empty());
  EXPECT_FALSE(trace.records()[0].report.entries.empty());
  // The server still processed the reports normally.
  EXPECT_EQ(server->reports_processed(), 2u);
}

TEST_F(TraceFixture, JsonlRoundTrip) {
  auto server = make_server();
  ReportTrace trace;
  universe_.set_handler("traced.com", recording_handler(*server, trace));
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser b(universe_, universe_.network().add_client({}), bc);
  b.load(site_.index_url(), 0.0);

  const std::string jsonl = trace.to_jsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
  ReportTrace back = ReportTrace::from_jsonl(jsonl);
  ASSERT_EQ(back.size(), trace.size());
  EXPECT_EQ(back.records()[0].user_id, trace.records()[0].user_id);
  EXPECT_EQ(back.records()[0].report.entries.size(),
            trace.records()[0].report.entries.size());
  EXPECT_EQ(back.to_jsonl(), jsonl);
  EXPECT_THROW(ReportTrace::from_jsonl("not json\n"), util::JsonError);
}

TEST_F(TraceFixture, ReplayReproducesDecisions) {
  // Record a live run...
  auto live = make_server();
  ReportTrace trace;
  universe_.set_handler("traced.com", recording_handler(*live, trace));
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser b(universe_, universe_.network().add_client({}), bc);
  for (int i = 0; i < 3; ++i) b.load(site_.index_url(), i * 60.0);
  const std::size_t live_activations =
      live->decision_log().count(DecisionType::kActivate);
  ASSERT_GT(live_activations, 0u);

  // ...and replay it into a fresh server: identical decisions.
  auto offline = make_server();
  const std::size_t replay_activations = trace.replay_into(*offline);
  EXPECT_EQ(replay_activations, live_activations);
  const auto live_users = live->decision_log().users_activating();
  const auto offline_users = offline->decision_log().users_activating();
  EXPECT_EQ(live_users, offline_users);
}

TEST_F(TraceFixture, WhatIfReplayWithStricterDetector) {
  auto live = make_server(/*k=*/2.0);
  ReportTrace trace;
  universe_.set_handler("traced.com", recording_handler(*live, trace));
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser b(universe_, universe_.network().add_client({}), bc);
  for (int i = 0; i < 3; ++i) b.load(site_.index_url(), i * 60.0);

  // An absurdly lax detector would never have activated anything.
  auto what_if = make_server(/*k=*/10'000.0);
  EXPECT_EQ(trace.replay_into(*what_if), 0u);
}

}  // namespace
}  // namespace oak::core
