#include "util/url.h"

#include <gtest/gtest.h>

namespace oak::util {
namespace {

TEST(ParseUrl, Basic) {
  auto u = parse_url("http://example.com/path/to?x=1");
  ASSERT_TRUE(u);
  EXPECT_EQ(u->scheme, "http");
  EXPECT_EQ(u->host, "example.com");
  EXPECT_EQ(u->path, "/path/to");
  EXPECT_EQ(u->query, "x=1");
}

TEST(ParseUrl, DefaultsPathToSlash) {
  auto u = parse_url("https://Example.COM");
  ASSERT_TRUE(u);
  EXPECT_EQ(u->host, "example.com");  // lowercased
  EXPECT_EQ(u->path, "/");
  EXPECT_EQ(u->query, "");
}

TEST(ParseUrl, QueryAtRoot) {
  auto u = parse_url("http://a.com/?q=1");
  ASSERT_TRUE(u);
  EXPECT_EQ(u->path, "/");
  EXPECT_EQ(u->query, "q=1");
}

TEST(ParseUrl, Rejections) {
  EXPECT_FALSE(parse_url("not a url"));
  EXPECT_FALSE(parse_url("://missing-scheme.com"));
  EXPECT_FALSE(parse_url("http://"));
  EXPECT_FALSE(parse_url("http://bad host/"));
  EXPECT_FALSE(parse_url("/relative/path"));
}

TEST(ParseUrl, RoundTrip) {
  const std::string s = "http://a.b.c/p/q?r=s";
  EXPECT_EQ(parse_url(s)->to_string(), s);
  EXPECT_EQ(parse_url("http://a.com")->to_string(), "http://a.com/");
}

TEST(RegistrableDomain, LastTwoLabels) {
  EXPECT_EQ(registrable_domain("a.b.c.com"), "c.com");
  EXPECT_EQ(registrable_domain("x.com"), "x.com");
  EXPECT_EQ(registrable_domain("com"), "com");
}

TEST(SameSite, SubdomainsAreInternal) {
  // Fig. 1: "We do not consider sub-domains of the original domain to be
  // outside hosts."
  EXPECT_TRUE(same_site("static.example.com", "example.com"));
  EXPECT_TRUE(same_site("example.com", "example.com"));
  EXPECT_TRUE(same_site("www.example.com", "static.example.com"));
  EXPECT_FALSE(same_site("cdn.other.net", "example.com"));
}

TEST(ExtractHostnames, FindsInFreeText) {
  auto hosts = extract_hostnames(
      "var h=\"cdn.foo.net\"; load('http://a.b.org/x.js') // ver 1.2.3");
  EXPECT_EQ(hosts, (std::vector<std::string>{"cdn.foo.net", "a.b.org"}));
}

TEST(ExtractHostnames, RejectsVersionNumbersAndBareWords) {
  EXPECT_TRUE(extract_hostnames("version 10.2.33 of thing").empty());
  EXPECT_TRUE(extract_hostnames("no hostnames here").empty());
}

TEST(ExtractHostnames, LowercasesAndTrimsPunctuation) {
  auto hosts = extract_hostnames("Visit WWW.Example.COM.");
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0], "www.example.com");
}

TEST(ReplaceHost, SwapsHostOnly) {
  EXPECT_EQ(*replace_host("http://a.com/x?q=1", "b.net"),
            "http://b.net/x?q=1");
  EXPECT_FALSE(replace_host("nonsense", "b.net"));
}

}  // namespace
}  // namespace oak::util
