#include "util/url.h"

#include <gtest/gtest.h>

namespace oak::util {
namespace {

TEST(ParseUrl, Basic) {
  auto u = parse_url("http://example.com/path/to?x=1");
  ASSERT_TRUE(u);
  EXPECT_EQ(u->scheme, "http");
  EXPECT_EQ(u->host, "example.com");
  EXPECT_EQ(u->path, "/path/to");
  EXPECT_EQ(u->query, "x=1");
}

TEST(ParseUrl, DefaultsPathToSlash) {
  auto u = parse_url("https://Example.COM");
  ASSERT_TRUE(u);
  EXPECT_EQ(u->host, "example.com");  // lowercased
  EXPECT_EQ(u->path, "/");
  EXPECT_EQ(u->query, "");
}

TEST(ParseUrl, QueryAtRoot) {
  auto u = parse_url("http://a.com/?q=1");
  ASSERT_TRUE(u);
  EXPECT_EQ(u->path, "/");
  EXPECT_EQ(u->query, "q=1");
}

TEST(ParseUrl, Rejections) {
  EXPECT_FALSE(parse_url("not a url"));
  EXPECT_FALSE(parse_url("://missing-scheme.com"));
  EXPECT_FALSE(parse_url("http://"));
  EXPECT_FALSE(parse_url("http://bad host/"));
  EXPECT_FALSE(parse_url("/relative/path"));
}

TEST(ParseUrl, AuthorityEdgeCases) {
  struct Case {
    const char* input;
    bool ok;
    const char* host;   // when ok
    int port;           // when ok
    const char* path;   // when ok
  };
  const Case cases[] = {
      // Userinfo is stripped; the *last* '@' delimits it (WHATWG).
      {"http://user@h.com/x", true, "h.com", 0, "/x"},
      {"http://u:pw@h.com/", true, "h.com", 0, "/"},
      {"http://a@b@h.com/", true, "h.com", 0, "/"},
      {"http://u:pw@h.com:8080/x", true, "h.com", 8080, "/x"},
      // Ports parse, bound-check, and normalize.
      {"http://h.com:80/x", true, "h.com", 80, "/x"},
      {"http://h.com:65535/", true, "h.com", 65535, "/"},
      {"http://h.com:0/", true, "h.com", 0, "/"},   // ":0" == unspecified
      {"http://h.com:/", true, "h.com", 0, "/"},    // bare ":" too
      {"http://h.com:65536/", false, "", 0, ""},    // out of range
      {"http://h.com:8a/", false, "", 0, ""},       // non-numeric
      {"http://h.com:-1/", false, "", 0, ""},
      // An authority that is empty once userinfo/port are gone names no
      // server.
      {"http:///x", false, "", 0, ""},
      {"http://:8080/", false, "", 0, ""},
      {"http://u@/", false, "", 0, ""},
      {"http://u@:80/x", false, "", 0, ""},
      // Case-folding still applies after stripping.
      {"http://U@H.COM:90", true, "h.com", 90, "/"},
  };
  for (const Case& c : cases) {
    auto u = parse_url(c.input);
    EXPECT_EQ(bool(u), c.ok) << c.input;
    if (!u || !c.ok) continue;
    EXPECT_EQ(u->host, c.host) << c.input;
    EXPECT_EQ(u->port, c.port) << c.input;
    EXPECT_EQ(u->path, c.path) << c.input;
  }
}

TEST(ParseUrl, PortRoundTrips) {
  EXPECT_EQ(parse_url("http://h.com:8080/a?b=c")->to_string(),
            "http://h.com:8080/a?b=c");
  // Unspecified and explicit-zero ports normalize away.
  EXPECT_EQ(parse_url("http://h.com:0/a")->to_string(), "http://h.com/a");
  EXPECT_EQ(parse_url("http://h.com/a")->to_string(), "http://h.com/a");
}

TEST(ParseUrl, RoundTrip) {
  const std::string s = "http://a.b.c/p/q?r=s";
  EXPECT_EQ(parse_url(s)->to_string(), s);
  EXPECT_EQ(parse_url("http://a.com")->to_string(), "http://a.com/");
}

TEST(RegistrableDomain, LastTwoLabels) {
  EXPECT_EQ(registrable_domain("a.b.c.com"), "c.com");
  EXPECT_EQ(registrable_domain("x.com"), "x.com");
  EXPECT_EQ(registrable_domain("com"), "com");
}

TEST(SameSite, SubdomainsAreInternal) {
  // Fig. 1: "We do not consider sub-domains of the original domain to be
  // outside hosts."
  EXPECT_TRUE(same_site("static.example.com", "example.com"));
  EXPECT_TRUE(same_site("example.com", "example.com"));
  EXPECT_TRUE(same_site("www.example.com", "static.example.com"));
  EXPECT_FALSE(same_site("cdn.other.net", "example.com"));
}

TEST(ExtractHostnames, FindsInFreeText) {
  auto hosts = extract_hostnames(
      "var h=\"cdn.foo.net\"; load('http://a.b.org/x.js') // ver 1.2.3");
  EXPECT_EQ(hosts, (std::vector<std::string>{"cdn.foo.net", "a.b.org"}));
}

TEST(ExtractHostnames, RejectsVersionNumbersAndBareWords) {
  EXPECT_TRUE(extract_hostnames("version 10.2.33 of thing").empty());
  EXPECT_TRUE(extract_hostnames("no hostnames here").empty());
}

TEST(ExtractHostnames, LowercasesAndTrimsPunctuation) {
  auto hosts = extract_hostnames("Visit WWW.Example.COM.");
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0], "www.example.com");
}

TEST(ReplaceHost, SwapsHostOnly) {
  EXPECT_EQ(*replace_host("http://a.com/x?q=1", "b.net"),
            "http://b.net/x?q=1");
  EXPECT_FALSE(replace_host("nonsense", "b.net"));
}

TEST(ReplaceHost, PreservesPortAndDropsUserinfo) {
  EXPECT_EQ(*replace_host("http://a.com:9090/x?q=1", "b.net"),
            "http://b.net:9090/x?q=1");
  EXPECT_EQ(*replace_host("http://me@a.com/x", "b.net"), "http://b.net/x");
}

}  // namespace
}  // namespace oak::util
