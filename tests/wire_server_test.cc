// oak::wire::Server over real sockets: routing, hostile-input behavior,
// slowloris deadlines, the three shedding layers, pipelining, and graceful
// drain (including the WAL-verified zero-acknowledged-loss property).
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "browser/report.h"
#include "core/sharded_server.h"
#include "page/site.h"
#include "wire/client.h"
#include "wire/server.h"

namespace oak::wire {
namespace {

using core::OakConfig;
using core::ShardedOakServer;

void sleep_s(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

class WireFixture : public ::testing::Test {
 protected:
  WireFixture() : universe_(net::NetworkConfig{.seed = 17, .horizon_s = 0}) {
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("busy.com", net.server(origin_).addr());
    net::ServerId sid = net.add_server(net::ServerConfig{});
    universe_.dns().bind("x0.net", net.server(sid).addr());
    x0_ip_ = net.server(sid).addr().to_string();

    page::SiteBuilder b(universe_, "busy.com", origin_);
    b.add_direct("x0.net", "/o.js", html::RefKind::kScript, 9000,
                 page::Category::kCdn);
    site_ = b.finish();
  }

  ~WireFixture() override {
    srv_.reset();  // server first: it holds a reference into oak_
    oak_.reset();
  }

  // Build the serving plane + front-end. Callers tweak the configs, then
  // boot(); srv_ is started and listening on an ephemeral port.
  void boot(WireConfig wc = {}, OakConfig oc = {},
            std::function<void()> on_drained = nullptr) {
    oak_ = std::make_unique<ShardedOakServer>(universe_, "busy.com", oc, 4);
    wc.worker_threads = 2;
    srv_ = std::make_unique<Server>(*oak_, wc);
    if (on_drained) srv_->set_on_drained(std::move(on_drained));
    srv_->start();
  }

  BlockingClient client(double timeout_s = 5.0) {
    BlockingClient cli;
    EXPECT_TRUE(cli.connect("127.0.0.1", srv_->port(), timeout_s));
    return cli;
  }

  std::string report_wire() {
    browser::PerfReport r;
    r.page_url = site_.index_url();
    r.entries.push_back(
        {site_.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    r.entries.push_back(
        {"http://x0.net/o.js", "x0.net", x0_ip_, 9000, 0.1, 4.0});
    return r.serialize();
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::string x0_ip_;
  page::Site site_;
  std::unique_ptr<ShardedOakServer> oak_;
  std::unique_ptr<Server> srv_;
};

TEST_F(WireFixture, ServesPageAndMintsCookie) {
  boot();
  BlockingClient cli = client();
  auto resp = cli.request("GET", site_.index_path, {{"Host", "busy.com"}});
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_FALSE(resp->body.empty());
  const std::string cookie = resp->headers.get("set-cookie").value_or("");
  EXPECT_NE(cookie.find(http::kOakUserCookie), std::string::npos) << cookie;
}

TEST_F(WireFixture, ReportPostIngestsAndBadBodyIs400) {
  boot();
  BlockingClient cli = client();
  auto ok =
      cli.request("POST", "/oak/report", {{"Host", "busy.com"}}, report_wire());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, 204);
  EXPECT_EQ(oak_->reports_processed(), 1u);

  auto bad = cli.request("POST", "/oak/report", {{"Host", "busy.com"}},
                         "{not json");
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->status, 400);
  EXPECT_EQ(oak_->reports_processed(), 1u);
}

TEST_F(WireFixture, UnknownPage404) {
  boot();
  BlockingClient cli = client();
  auto resp = cli.request("GET", "/no-such-page", {{"Host", "busy.com"}});
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
}

TEST_F(WireFixture, UnroutedMethodGets405WithAllow) {
  boot();
  BlockingClient cli = client();
  ASSERT_TRUE(cli.send_raw("BREW /pot HTTP/1.1\r\nHost: busy.com\r\n\r\n"));
  auto resp = cli.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 405);
  EXPECT_EQ(resp->headers.get("allow").value_or(""), http::kAllowedMethods);
  // The request was well-formed, so the connection stays usable.
  auto next = cli.request("GET", site_.index_path, {{"Host", "busy.com"}});
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->status, 200);
}

TEST_F(WireFixture, RoutedButWrongMethodGets405) {
  boot();
  BlockingClient cli = client();
  auto resp = cli.request("PUT", site_.index_path, {{"Host", "busy.com"}});
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 405);
  EXPECT_FALSE(resp->headers.get("allow").value_or("").empty());
}

TEST_F(WireFixture, HeadOmitsBodyButKeepsFraming) {
  boot();
  BlockingClient cli = client();
  auto head = cli.request("HEAD", site_.index_path, {{"Host", "busy.com"}});
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->status, 200);
  EXPECT_TRUE(head->body.empty());
  const std::string cl = head->headers.get("content-length").value_or("0");
  EXPECT_GT(std::stoul(cl), 0u);  // advertises the GET body it didn't send
  // Framing intact: the next request on the same connection still parses.
  auto get = cli.request("GET", site_.index_path, {{"Host", "busy.com"}});
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(get->status, 200);
  EXPECT_EQ(std::to_string(get->body.size()), cl);
}

TEST_F(WireFixture, MetricsEndpointsExposeWirePlane) {
  boot();
  BlockingClient cli = client();
  auto prom = cli.request("GET", "/metrics");
  ASSERT_TRUE(prom.has_value());
  EXPECT_EQ(prom->status, 200);
  EXPECT_NE(prom->body.find("oak_wire_requests_total"), std::string::npos);
  EXPECT_NE(prom->body.find("oak_wire_conns_active"), std::string::npos);

  auto js = cli.request("GET", "/metrics.json");
  ASSERT_TRUE(js.has_value());
  EXPECT_EQ(js->status, 200);
  EXPECT_NE(js->body.find("oak_wire_requests_total"), std::string::npos);
}

TEST_F(WireFixture, AdminRulesCrudRoundTrip) {
  boot();
  BlockingClient cli = client();
  auto empty = cli.request("GET", "/admin/rules");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->status, 200);

  const std::string rule_file =
      "rule \"shed-x0\" {\n"
      "  type: 2\n"
      "  default: \"x0.net\"\n"
      "  alt: \"alt.net\"\n"
      "}\n";
  auto added = cli.request("POST", "/admin/rules", {}, rule_file);
  ASSERT_TRUE(added.has_value());
  ASSERT_EQ(added->status, 201) << added->body;
  ASSERT_EQ(oak_->rules().size(), 1u);
  const int id = oak_->rules()[0].id;

  auto listed = cli.request("GET", "/admin/rules");
  ASSERT_TRUE(listed.has_value());
  EXPECT_NE(listed->body.find("shed-x0"), std::string::npos);

  auto gone =
      cli.request("DELETE", "/admin/rules/" + std::to_string(id));
  ASSERT_TRUE(gone.has_value());
  EXPECT_EQ(gone->status, 200);
  EXPECT_TRUE(oak_->rules().empty());

  auto again =
      cli.request("DELETE", "/admin/rules/" + std::to_string(id));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->status, 404);

  auto bad_rules = cli.request("POST", "/admin/rules", {}, "rule ??? {\n");
  ASSERT_TRUE(bad_rules.has_value());
  EXPECT_EQ(bad_rules->status, 400);
}

TEST_F(WireFixture, AdminHealthReportsDrainState) {
  boot();
  BlockingClient cli = client();
  auto live = cli.request("GET", "/admin/health");
  ASSERT_TRUE(live.has_value());
  EXPECT_NE(live->body.find("\"ok\""), std::string::npos);
}

TEST_F(WireFixture, ParseErrorAnswers400ThenCloses) {
  boot();
  BlockingClient cli = client();
  ASSERT_TRUE(cli.send_raw("GARBAGE\r\n\r\n"));
  auto resp = cli.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 400);
  EXPECT_FALSE(resp->keep_alive);
  EXPECT_TRUE(cli.read_all().empty());  // server closed after the 4xx
}

TEST_F(WireFixture, PipelinedRequestsAnsweredInOrder) {
  boot();
  BlockingClient cli = client();
  const std::string h = "busy.com";
  ASSERT_TRUE(cli.send_raw(
      "GET " + site_.index_path + " HTTP/1.1\r\nHost: " + h + "\r\n\r\n" +
      "GET /nope HTTP/1.1\r\nHost: " + h + "\r\n\r\n" +
      "GET /admin/health HTTP/1.1\r\nHost: " + h + "\r\n\r\n"));
  int statuses[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    auto resp = cli.read_response();
    ASSERT_TRUE(resp.has_value()) << "response " << i;
    statuses[i] = resp->status;
  }
  EXPECT_EQ(statuses[0], 200);
  EXPECT_EQ(statuses[1], 404);
  EXPECT_EQ(statuses[2], 200);
}

TEST_F(WireFixture, SlowlorisHeaderDeadline408) {
  WireConfig wc;
  wc.header_deadline_s = 0.25;
  boot(wc);
  BlockingClient cli = client();
  ASSERT_TRUE(cli.send_raw("GET / HTTP/1.1\r\nHo"));  // ...and stall
  auto resp = cli.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 408);
  EXPECT_TRUE(cli.read_all().empty());
  EXPECT_GE(srv_->metrics_snapshot().counter("oak_wire_timeout_header_total"),
            1u);
}

TEST_F(WireFixture, IdleKeepAliveDeadlineCloses) {
  WireConfig wc;
  wc.idle_deadline_s = 0.25;
  boot(wc);
  BlockingClient cli = client();
  auto resp = cli.request("GET", "/admin/health");
  ASSERT_TRUE(resp.has_value());
  sleep_s(0.6);
  EXPECT_TRUE(cli.read_all().empty());  // idle conn reaped
  EXPECT_GE(srv_->metrics_snapshot().counter("oak_wire_timeout_idle_total"),
            1u);
}

TEST_F(WireFixture, ConnectionCapShedsAtAccept) {
  WireConfig wc;
  wc.max_connections = 1;
  boot(wc);
  BlockingClient first = client();
  auto ok = first.request("GET", "/admin/health");
  ASSERT_TRUE(ok.has_value());

  BlockingClient second = client();
  auto shed = second.read_response();  // server speaks first: 503 + close
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, 503);
  EXPECT_FALSE(shed->headers.get("retry-after").value_or("").empty());
  EXPECT_GE(srv_->metrics_snapshot().counter("oak_wire_shed_conn_cap_total"),
            1u);
}

TEST_F(WireFixture, DispatchDepthSheds503) {
  WireConfig wc;
  wc.dispatch_depth = 0;  // every request overflows the queue
  boot(wc);
  BlockingClient cli = client();
  auto resp = cli.request("GET", "/admin/health");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 503);
  EXPECT_FALSE(resp->headers.get("retry-after").value_or("").empty());
  EXPECT_GE(srv_->metrics_snapshot().counter("oak_wire_shed_dispatch_total"),
            1u);
}

TEST_F(WireFixture, BackpressureShedsReportsButServesPages) {
  WireConfig wc;
  wc.shed_pressure = 0.0;  // treat any pressure (even 0) as overload
  boot(wc);
  BlockingClient cli = client();
  auto post =
      cli.request("POST", "/oak/report", {{"Host", "busy.com"}}, report_wire());
  ASSERT_TRUE(post.has_value());
  EXPECT_EQ(post->status, 503);
  EXPECT_EQ(oak_->reports_processed(), 0u);

  auto get = cli.request("GET", site_.index_path, {{"Host", "busy.com"}});
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(get->status, 200);  // page plane unaffected
  EXPECT_GE(
      srv_->metrics_snapshot().counter("oak_wire_shed_backpressure_total"),
      1u);
}

TEST_F(WireFixture, SigtermDrainsAndRunsOnDrained) {
  std::atomic<bool> drained{false};
  WireConfig wc;
  wc.loops = 2;  // the signal must stop every loop, not just one
  boot(wc, {}, [&] { drained.store(true); });
  srv_->install_signal_drain(SIGTERM);
  BlockingClient idle = client();  // an idle conn drain must reap
  auto warm = idle.request("GET", "/admin/health");
  ASSERT_TRUE(warm.has_value());

  ::kill(::getpid(), SIGTERM);
  srv_->join();
  EXPECT_TRUE(drained.load());
  EXPECT_TRUE(srv_->draining());
  EXPECT_TRUE(idle.read_all().empty());  // closed by drain

  // Fully down: new connections are refused.
  BlockingClient late;
  EXPECT_FALSE(late.connect("127.0.0.1", srv_->port(), 0.5));
}

TEST_F(WireFixture, GracefulDrainLosesNoAcknowledgedReports) {
  const std::string dir =
      ::testing::TempDir() + "/oak_wire_drain_test";
  std::filesystem::remove_all(dir);
  OakConfig oc;
  oc.durability.enabled = true;
  oc.durability.dir = dir;
  // Multi-loop drain is the hard case: the kernel spreads the loader
  // connections across SO_REUSEPORT listeners, so the
  // zero-acknowledged-loss property has to hold on every loop at once.
  WireConfig wc;
  wc.loops = 3;
  boot(wc, oc);
  ASSERT_EQ(srv_->loop_count(), 3u);

  const std::string wire = report_wire();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> acked{0};
  std::vector<std::thread> loaders;
  for (int t = 0; t < 4; ++t) {
    loaders.emplace_back([&] {
      BlockingClient cli;
      if (!cli.connect("127.0.0.1", srv_->port(), 2.0)) return;
      while (!stop.load()) {
        auto resp =
            cli.request("POST", "/oak/report", {{"Host", "busy.com"}}, wire);
        if (!resp.has_value()) {
          // Connection died (likely drain). Reconnect until refused.
          cli.close();
          if (!cli.connect("127.0.0.1", srv_->port(), 2.0)) return;
          continue;
        }
        if (resp->status == 204) acked.fetch_add(1);
        if (!resp->keep_alive) {
          cli.close();
          if (!cli.connect("127.0.0.1", srv_->port(), 2.0)) return;
        }
      }
    });
  }

  sleep_s(0.4);  // let load build
  const auto drain_start = std::chrono::steady_clock::now();
  srv_->request_drain();
  srv_->join();
  const double drain_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - drain_start)
                             .count();
  stop.store(true);
  for (auto& th : loaders) th.join();

  EXPECT_GT(acked.load(), 0u);
  EXPECT_LT(drain_s, srv_->config().drain_deadline_s + 2.0);
  // Every acknowledged report is on the live server...
  EXPECT_GE(oak_->reports_processed(), acked.load());

  // ...and — the real gate — on disk: recover a fresh instance from the
  // WAL and count again. A 2xx the client saw must have been journaled
  // before it was written to the socket.
  srv_.reset();
  oak_.reset();
  ShardedOakServer recovered(universe_, "busy.com", oc, 4);
  EXPECT_TRUE(recovered.recovery_report().performed);
  EXPECT_GE(recovered.reports_processed(), acked.load());
  std::filesystem::remove_all(dir);
}

TEST_F(WireFixture, OversizedBodySheds413BeforeBuffering) {
  WireConfig wc;
  wc.limits.max_body_bytes = 64;
  boot(wc);
  BlockingClient cli = client();
  ASSERT_TRUE(cli.send_raw("POST /oak/report HTTP/1.1\r\nHost: busy.com\r\n"
                           "Content-Length: 100000\r\n\r\n"));
  auto resp = cli.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 413);  // refused at the header, body never read
}

TEST_F(WireFixture, MultiLoopServesAndExposesPerLoopMetrics) {
  WireConfig wc;
  wc.loops = 3;
  boot(wc);
  ASSERT_EQ(srv_->loop_count(), 3u);

  // Enough connections that the kernel's SO_REUSEPORT hash exercises the
  // listeners; which loop gets which conn is the kernel's business, but
  // every conn must be served and the per-loop accept counters must sum
  // to the total.
  const int kConns = 12;
  for (int i = 0; i < kConns; ++i) {
    BlockingClient cli = client();
    auto page = cli.request("GET", site_.index_path, {{"Host", "busy.com"}});
    ASSERT_TRUE(page.has_value());
    EXPECT_EQ(page->status, 200);
    auto rep = cli.request("POST", "/oak/report", {{"Host", "busy.com"}},
                           report_wire());
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->status, 204);
  }
  EXPECT_EQ(oak_->reports_processed(), static_cast<std::size_t>(kConns));

  const obs::MetricsSnapshot snap = srv_->metrics_snapshot();
  EXPECT_EQ(snap.gauge("oak_wire_loops"), 3.0);
  std::uint64_t per_loop_accepts = 0;
  for (int i = 0; i < 3; ++i) {
    const std::string prefix = "oak_wire_loop_" + std::to_string(i);
    ASSERT_TRUE(snap.counters.count(prefix + "_accepts_total")) << prefix;
    ASSERT_TRUE(snap.gauges.count(prefix + "_conns_active")) << prefix;
    ASSERT_TRUE(snap.histograms.count(prefix + "_lag_seconds")) << prefix;
    per_loop_accepts += snap.counter(prefix + "_accepts_total");
  }
  EXPECT_EQ(per_loop_accepts, snap.counter("oak_wire_conns_accepted_total"));
  // No stray loop_3 instruments.
  EXPECT_FALSE(snap.counters.count("oak_wire_loop_3_accepts_total"));

  // Both expositions carry the per-loop names.
  BlockingClient cli = client();
  auto prom = cli.request("GET", "/metrics");
  ASSERT_TRUE(prom.has_value());
  EXPECT_NE(prom->body.find("oak_wire_loop_0_accepts_total"),
            std::string::npos);
  auto js = cli.request("GET", "/metrics.json");
  ASSERT_TRUE(js.has_value());
  EXPECT_NE(js->body.find("oak_wire_loop_0_lag_seconds"), std::string::npos);
}

TEST_F(WireFixture, PipelinedReportsAnswerInOrderAndCoalesceWrites) {
  boot();
  BlockingClient cli = client();
  const std::string wire = report_wire();
  // Warm up: first request mints the cookie so pipelined reports share
  // one uid (and thus one shard) like a real beacon stream.
  auto warm =
      cli.request("POST", "/oak/report", {{"Host", "busy.com"}}, wire);
  ASSERT_TRUE(warm.has_value());
  ASSERT_EQ(warm->status, 204);
  std::string cookie;
  if (auto sc = warm->headers.get("set-cookie")) {
    cookie = sc->substr(0, sc->find(';'));
  }
  ASSERT_FALSE(cookie.empty());

  const int kPipelined = 6;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) {
    burst += "POST /oak/report HTTP/1.1\r\nHost: busy.com\r\nCookie: " +
             cookie + "\r\nContent-Length: " + std::to_string(wire.size()) +
             "\r\n\r\n" + wire;
  }
  ASSERT_TRUE(cli.send_raw(burst));
  for (int i = 0; i < kPipelined; ++i) {
    auto resp = cli.read_response();
    ASSERT_TRUE(resp.has_value()) << "response " << i;
    EXPECT_EQ(resp->status, 204) << "response " << i;
  }
  EXPECT_EQ(oak_->reports_processed(),
            static_cast<std::size_t>(kPipelined + 1));

  // Barrier before snapshotting: the writev counters are bumped after
  // sendmsg() returns, so on a busy box the client can read the burst
  // responses (and snapshot) before the loop thread runs the bookkeeping.
  // A follow-up request's response bytes are sent after those bumps in
  // loop-thread program order, so reading it orders the snapshot after
  // them.
  auto barrier = cli.request("GET", "/admin/health", {{"Host", "busy.com"}});
  ASSERT_TRUE(barrier.has_value());
  ASSERT_EQ(barrier->status, 200);

  const obs::MetricsSnapshot snap = srv_->metrics_snapshot();
  // The whole burst ran shard-affine on the loop thread...
  EXPECT_GE(snap.counter("oak_wire_affine_ingests_total"),
            static_cast<std::uint64_t>(kPipelined + 1));
  // ...and its responses coalesced: at least one gathered write carried
  // more than one response buffer (the burst flush; the barrier request
  // adds one single-buffer write, which keeps the inequality strict).
  EXPECT_GT(snap.counter("oak_wire_writev_buffers_total"),
            snap.counter("oak_wire_writev_calls_total"));
}

TEST_F(WireFixture, AffineIngestOffFallsBackToWorkerPool) {
  WireConfig wc;
  wc.affine_ingest = false;
  boot(wc);
  BlockingClient cli = client();
  auto resp =
      cli.request("POST", "/oak/report", {{"Host", "busy.com"}}, report_wire());
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 204);
  EXPECT_EQ(oak_->reports_processed(), 1u);
  const obs::MetricsSnapshot snap = srv_->metrics_snapshot();
  EXPECT_EQ(snap.counter("oak_wire_affine_ingests_total"), 0u);
}

TEST_F(WireFixture, IPv6LoopbackListenerServes) {
  WireConfig wc;
  wc.bind_addr = "::1";
  wc.loops = 2;
  try {
    boot(wc);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "IPv6 loopback unavailable: " << e.what();
  }
  BlockingClient cli;
  ASSERT_TRUE(cli.connect("::1", srv_->port(), 5.0));
  auto page = cli.request("GET", site_.index_path, {{"Host", "busy.com"}});
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(page->status, 200);
  auto rep = cli.request("POST", "/oak/report", {{"Host", "busy.com"}},
                         report_wire());
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->status, 204);
  EXPECT_EQ(oak_->reports_processed(), 1u);
}

}  // namespace
}  // namespace oak::wire
