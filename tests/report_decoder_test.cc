#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "browser/report.h"
#include "browser/report_decoder.h"
#include "util/arena.h"
#include "util/json.h"

namespace oak::browser {
namespace {

// The contract under test: for every byte string, the streaming decoder and
// the DOM decoder either both throw util::JsonError or both produce
// bit-identical PerfReports (compared via the canonical wire encoding).
// Returns true when the input was accepted.
bool differential(const std::string& wire) {
  bool dom_ok = true;
  PerfReport dom;
  try {
    dom = PerfReport::deserialize(wire);
  } catch (const util::JsonError&) {
    dom_ok = false;
  }

  bool stream_ok = true;
  util::StringArena arena;
  ReportView view;
  try {
    view = decode_report_view(wire, arena);
  } catch (const util::JsonError&) {
    stream_ok = false;
  }

  EXPECT_EQ(dom_ok, stream_ok) << "verdict divergence on: " << wire;
  if (dom_ok && stream_ok) {
    EXPECT_EQ(view.materialize().serialize(), dom.serialize())
        << "field divergence on: " << wire;
    // The owned-PerfReport convenience path must agree too.
    EXPECT_EQ(decode_report(wire).serialize(), dom.serialize());
  }
  return dom_ok && stream_ok;
}

TEST(ReportDecoder, RoundTripsOwnSerialization) {
  PerfReport r;
  r.user_id = "u42";
  r.page_url = "http://site.com/index.html";
  r.plt_s = 1.75;
  r.entries.push_back({"http://site.com/a.js", "site.com", "10.0.0.1", 1234,
                       0.1, 0.25});
  r.entries.push_back({"http://cdn.net/big.png", "cdn.net", "10.0.0.2",
                       400'000, 0.2, 1.5});
  EXPECT_TRUE(differential(r.serialize()));

  const PerfReport decoded = decode_report(r.serialize());
  EXPECT_EQ(decoded.user_id, "u42");
  EXPECT_EQ(decoded.page_url, "http://site.com/index.html");
  EXPECT_DOUBLE_EQ(decoded.plt_s, 1.75);
  ASSERT_EQ(decoded.entries.size(), 2u);
  EXPECT_EQ(decoded.entries[0].url, "http://site.com/a.js");
  EXPECT_EQ(decoded.entries[1].size, 400'000u);
}

TEST(ReportDecoder, InternsHostAndIp) {
  PerfReport r;
  r.user_id = "u";
  r.page_url = "p";
  for (int i = 0; i < 20; ++i) {
    r.entries.push_back({"http://h.com/o" + std::to_string(i), "h.com",
                         "10.0.0.1", 10, 0.0, 0.1});
  }
  util::StringArena arena;
  const ReportView view = decode_report_view(r.serialize(), arena);
  ASSERT_EQ(view.entries.size(), 20u);
  for (const auto& e : view.entries) {
    // Pointer identity, not just equality: one arena copy per distinct
    // host/ip is what gives grouping its fast path.
    EXPECT_EQ(e.host.data(), view.entries[0].host.data());
    EXPECT_EQ(e.ip.data(), view.entries[0].ip.data());
  }
  EXPECT_EQ(arena.intern_hits(), 2u * 19u);
}

TEST(ReportDecoder, EscapedAndUnicodeStrings) {
  const char* wires[] = {
      // Escapes in every string field.
      R"({"uid":"u\n1","page":"http://s.com/\"q\"","plt":1,"entries":[)"
      R"({"url":"http://s.com/a\tb","host":"s.com","ip":"10.0.0.1",)"
      R"("size":10,"start":0,"time":0.1}]})",
      // Unicode escapes incl. a surrogate pair (spelled \uXXXX on the wire).
      "{\"uid\":\"\\u0041\\u00e9\\ud83d\\ude00\",\"page\":\"p\","
      "\"plt\":0,\"entries\":[]}",
      // NUL escape inside a string.
      "{\"uid\":\"a\\u0000b\",\"page\":\"p\",\"plt\":0,\"entries\":[]}",
  };
  for (const char* w : wires) EXPECT_TRUE(differential(w)) << w;

  const PerfReport r = decode_report(wires[1]);
  EXPECT_EQ(r.user_id, "A\xc3\xa9\xf0\x9f\x98\x80");
  const PerfReport nul = decode_report(wires[2]);
  EXPECT_EQ(nul.user_id, std::string("a\0b", 3));
}

TEST(ReportDecoder, NumericEdgeCases) {
  const char* accepted[] = {
      // Large-but-finite values, exponents, negatives, fractional sizes.
      R"({"uid":"u","page":"p","plt":1e300,"entries":[]})",
      R"({"uid":"u","page":"p","plt":-2.5e-3,"entries":[]})",
      R"({"uid":"u","page":"p","plt":0,"entries":[{"url":"u","host":"h",)"
      R"("ip":"i","size":1.7e9,"start":0,"time":3}]})",
      R"({"uid":"u","page":"p","plt":0,"entries":[{"url":"u","host":"h",)"
      R"("ip":"i","size":2.5,"start":0,"time":3}]})",
  };
  for (const char* w : accepted) EXPECT_TRUE(differential(w)) << w;

  const char* rejected[] = {
      // Non-finite plt — both decoders reject.
      R"({"uid":"u","page":"p","plt":1e999,"entries":[]})",
      R"({"uid":"u","page":"p","plt":-1e999,"entries":[]})",
  };
  for (const char* w : rejected) EXPECT_FALSE(differential(w)) << w;

  // size uses the DOM's llround conversion — 2.5 rounds to 3, not 2.
  const PerfReport r = decode_report(accepted[3]);
  EXPECT_EQ(r.entries[0].size, 3u);
}

TEST(ReportDecoder, ErrorFieldRoundTrips) {
  PerfReport r;
  r.user_id = "u";
  r.page_url = "p";
  r.entries.push_back({"http://h.com/ok", "h.com", "10.0.0.1", 9, 0.0, 0.1});
  r.entries.push_back(
      {"http://h.com/dead", "h.com", "10.0.0.1", 0, 0.2, 1.5, "refused"});
  r.entries.push_back({"http://x.net/gone", "x.net", "", 0, 0.3, 0.0, "dns"});
  const std::string wire = r.serialize();
  // Backward compat: "err" appears once per *failed* entry only, so a
  // failure-free report stays byte-identical to the old format.
  std::size_t err_keys = 0;
  for (std::size_t pos = wire.find("\"err\""); pos != std::string::npos;
       pos = wire.find("\"err\"", pos + 1)) {
    ++err_keys;
  }
  EXPECT_EQ(err_keys, 2u);
  EXPECT_TRUE(differential(wire));
  const PerfReport back = decode_report(wire);
  ASSERT_EQ(back.entries.size(), 3u);
  EXPECT_FALSE(back.entries[0].failed());
  EXPECT_EQ(back.entries[1].error, "refused");
  EXPECT_EQ(back.entries[2].error, "dns");

  PerfReport clean;
  clean.user_id = "u";
  clean.page_url = "p";
  clean.entries.push_back(
      {"http://h.com/ok", "h.com", "10.0.0.1", 9, 0.0, 0.1});
  EXPECT_EQ(clean.serialize().find("err"), std::string::npos);
}

TEST(ReportDecoder, ErrorFieldValidation) {
  // Mistyped err: both decoders reject.
  EXPECT_FALSE(differential(
      R"({"uid":"u","page":"p","plt":0,"entries":[{"url":"u","host":"h",)"
      R"("ip":"i","size":1,"start":0,"time":1,"err":7}]})"));
  EXPECT_FALSE(differential(
      R"({"uid":"u","page":"p","plt":0,"entries":[{"url":"u","host":"h",)"
      R"("ip":"i","size":1,"start":0,"time":1,"err":null}]})"));
  // Duplicate err keys: last occurrence wins, matching the DOM.
  const char* dup =
      R"({"uid":"u","page":"p","plt":0,"entries":[{"url":"u","host":"h",)"
      R"("ip":"i","size":1,"start":0,"time":1,"err":"dns","err":"timeout"}]})";
  EXPECT_TRUE(differential(dup));
  EXPECT_EQ(decode_report(dup).entries[0].error, "timeout");
  // An explicit empty err is legal and means "not failed".
  const char* empty =
      R"({"uid":"u","page":"p","plt":0,"entries":[{"url":"u","host":"h",)"
      R"("ip":"i","size":1,"start":0,"time":1,"err":""}]})";
  EXPECT_TRUE(differential(empty));
  EXPECT_FALSE(decode_report(empty).entries[0].failed());
}

TEST(ReportDecoder, ErrorCodesAreInterned) {
  PerfReport r;
  r.user_id = "u";
  r.page_url = "p";
  for (int i = 0; i < 10; ++i) {
    r.entries.push_back({"http://h.com/o" + std::to_string(i), "h.com",
                         "10.0.0.1", 0, 0.0, 0.1, "timeout"});
  }
  util::StringArena arena;
  const ReportView view = decode_report_view(r.serialize(), arena);
  ASSERT_EQ(view.entries.size(), 10u);
  for (const auto& e : view.entries) {
    EXPECT_EQ(e.error.data(), view.entries[0].error.data());
  }
}

TEST(ReportDecoder, DuplicateKeysLastWins) {
  // std::map semantics: the DOM keeps the last occurrence, even when an
  // earlier occurrence had the wrong type. The streaming decoder must agree.
  const char* wires[] = {
      R"({"uid":"first","uid":"second","page":"p","plt":0,"entries":[]})",
      R"({"uid":5,"uid":"ok","page":"p","plt":0,"entries":[]})",
      R"({"entries":[5],"uid":"u","page":"p","plt":0,"entries":[]})",
      R"({"uid":"u","page":"p","plt":"no","plt":2,"entries":[]})",
      R"({"uid":"u","page":"p","plt":0,"entries":[{"url":"a","url":"b",)"
      R"("host":"h","ip":"i","size":1,"start":0,"time":1}]})",
  };
  for (const char* w : wires) EXPECT_TRUE(differential(w)) << w;
  EXPECT_EQ(decode_report(wires[0]).user_id, "second");
  EXPECT_EQ(decode_report(wires[4]).entries[0].url, "b");
}

TEST(ReportDecoder, UnknownKeysIgnoredButValidated) {
  EXPECT_TRUE(differential(
      R"({"uid":"u","page":"p","plt":0,"extra":{"deep":[1,{"x":null}]},)"
      R"("entries":[]})"));
  // Unknown key with malformed value: still rejected by both.
  EXPECT_FALSE(differential(
      R"({"uid":"u","page":"p","plt":0,"extra":[1,,2],"entries":[]})"));
}

TEST(ReportDecoder, MissingAndMistypedFieldsRejected) {
  const char* wires[] = {
      R"({"page":"p","plt":0,"entries":[]})",                  // no uid
      R"({"uid":"u","plt":0,"entries":[]})",                   // no page
      R"({"uid":"u","page":"p","entries":[]})",                // no plt
      R"({"uid":"u","page":"p","plt":0})",                     // no entries
      R"({"uid":7,"page":"p","plt":0,"entries":[]})",          // uid not str
      R"({"uid":"u","page":"p","plt":"x","entries":[]})",      // plt not num
      R"({"uid":"u","page":"p","plt":0,"entries":{}})",        // not array
      R"({"uid":"u","page":"p","plt":0,"entries":[7]})",       // not object
      R"({"uid":"u","page":"p","plt":0,"entries":[{"url":"u","host":"h",)"
      R"("ip":"i","size":1,"start":0}]})",                     // entry no time
      R"([])",                                                 // root not obj
      R"("report")",                                           // root scalar
  };
  for (const char* w : wires) EXPECT_FALSE(differential(w)) << w;
}

// Randomized differential sweep: valid reports with adversarial strings and
// numbers, then byte-level mutations of their wire images. Both decoders
// must agree on every input.
TEST(ReportDecoder, DifferentialOnRandomizedReports) {
  std::mt19937 rng(987654);
  std::uniform_int_distribution<int> entry_count(0, 30);
  std::uniform_int_distribution<int> str_len(0, 24);
  std::uniform_int_distribution<int> char_pick(0, 255);
  std::uniform_real_distribution<double> small_d(0.0, 10.0);
  std::uniform_int_distribution<std::uint64_t> size_pick(0, 1'000'000);

  auto random_string = [&](int max_len) {
    std::string s;
    const int n = str_len(rng) % (max_len + 1);
    for (int i = 0; i < n; ++i) {
      // Full byte range: forces escape paths (control chars, quotes,
      // backslashes) and non-ASCII through serialize().
      s.push_back(static_cast<char>(char_pick(rng)));
    }
    return s;
  };

  for (int trial = 0; trial < 300; ++trial) {
    PerfReport r;
    r.user_id = random_string(12);
    r.page_url = random_string(24);
    r.plt_s = small_d(rng);
    const int n = entry_count(rng);
    for (int i = 0; i < n; ++i) {
      ReportEntry e;
      e.url = random_string(24);
      e.host = "h" + std::to_string(trial % 5) + ".com";
      e.ip = "10.0.0." + std::to_string(trial % 7);
      e.size = size_pick(rng);
      e.start_s = small_d(rng);
      e.time_s = small_d(rng);
      r.entries.push_back(std::move(e));
    }
    const std::string wire = r.serialize();
    EXPECT_TRUE(differential(wire));

    // Mutations: flip a byte / truncate / duplicate a chunk. Whatever the
    // DOM decoder says about the damaged bytes, the scanner must echo.
    std::string mutated = wire;
    switch (trial % 3) {
      case 0:
        if (!mutated.empty()) {
          mutated[std::size_t(trial * 7) % mutated.size()] =
              static_cast<char>(char_pick(rng));
        }
        break;
      case 1:
        mutated.resize(mutated.size() / 2);
        break;
      default:
        mutated += mutated.substr(mutated.size() / 3);
        break;
    }
    differential(mutated);  // EXPECTs inside check agreement either way
  }
}

TEST(ReportDecoder, TruncationsAllAgree) {
  PerfReport r;
  r.user_id = "user\t1";
  r.page_url = "http://s.com/p";
  r.plt_s = 2.0;
  r.entries.push_back({"http://s.com/a", "s.com", "10.0.0.1", 99, 0.0, 0.5});
  const std::string wire = r.serialize();
  // Every prefix of a valid wire image: both decoders must reject all of
  // them (except the full string) with identical verdicts.
  for (std::size_t len = 0; len <= wire.size(); ++len) {
    const bool ok = differential(wire.substr(0, len));
    EXPECT_EQ(ok, len == wire.size()) << "prefix length " << len;
  }
}

TEST(ReportDecoder, ArenaClearInvalidatesButReusesMemory) {
  util::StringArena arena;
  PerfReport r;
  r.user_id = "u";
  r.page_url = "p";
  r.entries.push_back({"http://h.com/x", "h.com", "10.0.0.1", 5, 0.0, 0.1});
  const std::string wire = r.serialize();

  (void)decode_report_view(wire, arena);
  const std::size_t bytes_after_first = arena.bytes_used();
  EXPECT_GT(bytes_after_first, 0u);
  for (int i = 0; i < 100; ++i) {
    arena.clear();
    (void)decode_report_view(wire, arena);
  }
  // Steady-state ingestion reuses the first block: same footprint every
  // report, no growth across clear() cycles.
  EXPECT_EQ(arena.bytes_used(), bytes_after_first);
}

}  // namespace
}  // namespace oak::browser
