// ChaosScenario determinism and the headline robustness claims, at test
// scale (the full sweep lives in bench/chaos_sweep).
#include <gtest/gtest.h>

#include "browser/browser.h"
#include "core/decision_log.h"
#include "util/stats.h"
#include "workload/chaos.h"
#include "workload/vantage.h"

namespace oak::workload {
namespace {

ChaosScenario::Options mini_options() {
  ChaosScenario::Options opt;
  opt.seed = 23;
  opt.providers = 8;
  opt.outage_fraction = 0.25;
  opt.onset_s = 600.0;
  opt.duration_s = 2400.0;
  return opt;
}

TEST(ChaosScenario, TopologyAndScheduleAreDeterministic) {
  ChaosScenario a(mini_options());
  ChaosScenario b(mini_options());
  EXPECT_EQ(a.provider_hosts(), b.provider_hosts());
  EXPECT_EQ(a.mirror_hosts(), b.mirror_hosts());
  ASSERT_EQ(a.faulted_providers(), b.faulted_providers());
  EXPECT_EQ(a.faulted_providers().size(), 2u);  // 25% of 8
  ASSERT_EQ(a.universe().network().faults().windows().size(),
            b.universe().network().faults().windows().size());
  for (std::size_t i = 0;
       i < a.universe().network().faults().windows().size(); ++i) {
    const auto& wa = a.universe().network().faults().windows()[i];
    const auto& wb = b.universe().network().faults().windows()[i];
    EXPECT_EQ(wa.server, wb.server);
    EXPECT_EQ(wa.type, wb.type);
    EXPECT_DOUBLE_EQ(wa.start, wb.start);
    EXPECT_DOUBLE_EQ(wa.end, wb.end);
  }
}

TEST(ChaosScenario, SameSeedSweepsProduceIdenticalPltSequences) {
  std::vector<double> plts[2];
  std::vector<bool> delivered[2];
  for (int run = 0; run < 2; ++run) {
    ChaosScenario scenario(mini_options());
    auto vps = make_vantage_points(scenario.universe().network(), 3);
    browser::BrowserConfig bc;
    bc.use_cache = false;
    bc.fetch_timeout_s = 5.0;
    std::vector<browser::Browser> fleet;
    for (const auto& vp : vps) {
      fleet.emplace_back(scenario.universe(), vp.client, bc);
    }
    for (double t = 0.0; t < 3600.0; t += 300.0) {
      for (auto& br : fleet) {
        browser::LoadResult r = br.load(scenario.oak_site_url(), t);
        plts[run].push_back(r.plt_s);
        delivered[run].push_back(r.report_delivered);
      }
    }
  }
  // Byte-identical schedules and rng streams: not "close", *equal*.
  ASSERT_EQ(plts[0].size(), plts[1].size());
  for (std::size_t i = 0; i < plts[0].size(); ++i) {
    EXPECT_EQ(plts[0][i], plts[1][i]) << "load " << i;
  }
  EXPECT_EQ(delivered[0], delivered[1]);
}

TEST(ChaosScenario, OakMitigatesProviderOutageVanillaDoesNot) {
  ChaosScenario scenario(mini_options());
  const double onset = scenario.options().onset_s;
  const double horizon = onset + scenario.options().duration_s;
  auto vps = make_vantage_points(scenario.universe().network(), 4);
  browser::BrowserConfig bc;
  bc.use_cache = false;
  bc.fetch_timeout_s = 5.0;
  struct Pair {
    browser::Browser oak, def;
    Pair(ChaosScenario& s, net::ClientId c, const browser::BrowserConfig& b)
        : oak(s.universe(), c, b), def(s.universe(), c, b) {}
  };
  std::vector<Pair> fleet;
  for (const auto& vp : vps) fleet.emplace_back(scenario, vp.client, bc);

  std::vector<double> oak_base, oak_out, def_base, def_out;
  for (double t = 0.0; t < horizon; t += 300.0) {
    for (auto& p : fleet) {
      const double oak_plt = p.oak.load(scenario.oak_site_url(), t).plt_s;
      const double def_plt =
          p.def.load(scenario.default_site_url(), t).plt_s;
      (t < onset ? oak_base : oak_out).push_back(oak_plt);
      (t < onset ? def_base : def_out).push_back(def_plt);
    }
  }
  const double oak_deg =
      util::median_inplace(oak_out) / util::median_inplace(oak_base);
  const double def_deg =
      util::median_inplace(def_out) / util::median_inplace(def_base);
  // Oak routes around the dead providers; the vanilla fleet keeps burning
  // retries against them for the whole outage.
  EXPECT_LT(oak_deg, def_deg);

  // Mitigation is observable and attributable in the decision log.
  bool activated_after_onset = false;
  for (const auto& d : scenario.oak().decision_log().entries()) {
    if (d.type == core::DecisionType::kActivate && d.time >= onset) {
      activated_after_onset = true;
      break;
    }
  }
  EXPECT_TRUE(activated_after_onset);
}

TEST(ChaosScenario, OriginFlapLosesReportsButNeverRetriesUploads) {
  ChaosScenario::Options opt;
  opt.seed = 29;
  opt.providers = 4;
  opt.outage_fraction = 0.0;  // providers stay healthy
  opt.fault_origin = true;
  opt.onset_s = 300.0;
  opt.duration_s = 1800.0;
  opt.flap_period_s = 600.0;
  opt.flap_duty = 0.5;
  ChaosScenario scenario(opt);
  auto vps = make_vantage_points(scenario.universe().network(), 2);
  browser::BrowserConfig bc;
  bc.use_cache = false;
  bc.fetch_timeout_s = 5.0;
  std::vector<browser::Browser> fleet;
  for (const auto& vp : vps) {
    fleet.emplace_back(scenario.universe(), vp.client, bc);
  }
  std::size_t lost = 0, delivered = 0;
  for (double t = opt.onset_s; t < opt.onset_s + opt.duration_s;
       t += 150.0) {
    for (auto& br : fleet) {
      browser::LoadResult r = br.load(scenario.oak_site_url(), t);
      if (r.report_delivered) {
        ++delivered;
        // A clean load through a healthy origin: the upload either made it
        // in its single attempt or didn't — no retry machinery ran.
        EXPECT_EQ(r.fetch_retries, 0u) << "at t=" << t;
      } else {
        ++lost;
      }
    }
  }
  // The flap has both phases: reports die in the down half and flow in the
  // up half.
  EXPECT_GT(lost, 0u);
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace oak::workload
