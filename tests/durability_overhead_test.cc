// Bounds the journaling tax on the ingest hot path: the same report stream
// pushed through a journal-on and a journal-off ShardedOakServer, timed as
// min-of-several-runs. The acceptance bound is journal-on ≤ 1.3x journal-off
// (the ISSUE's ceiling): an append is one encode + one buffered fwrite under
// a lock the request already holds, so the expected delta is small, and
// anything past the bound means an fsync, an allocation storm or a new lock
// crept onto the request path.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "browser/report.h"
#include "core/sharded_server.h"
#include "page/site.h"

namespace oak::core {
namespace {

namespace fs = std::filesystem;

class DurabilityOverheadFixture : public ::testing::Test {
 protected:
  DurabilityOverheadFixture()
      : universe_(net::NetworkConfig{.seed = 11, .horizon_s = 0}) {
    dir_ = fs::path(::testing::TempDir()) / "oak_dur_overhead";
    fs::remove_all(dir_);
    net::Network& net = universe_.network();
    origin_ = net.add_server(net::ServerConfig{.name = "origin"});
    universe_.dns().bind("shop.com", net.server(origin_).addr());
    page::SiteBuilder b(universe_, "shop.com", origin_);
    for (int i = 0; i < 6; ++i) {
      const std::string host = "ext" + std::to_string(i) + ".cdn.net";
      net::ServerId sid = net.add_server(net::ServerConfig{});
      universe_.dns().bind(host, net.server(sid).addr());
      hosts_.push_back(host);
      ips_.push_back(net.server(sid).addr().to_string());
      b.add_direct(host, "/obj.png", html::RefKind::kImage, 10'000,
                   page::Category::kCdn);
    }
    site_ = b.finish();

    browser::PerfReport r;
    r.user_id = "u1";
    r.page_url = site_.index_url();
    r.plt_s = 1.2;
    r.entries.push_back(
        {site_.index_url(), "shop.com", "10.0.0.1", 5000, 0, 0.09});
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      r.entries.push_back({"http://" + hosts_[i] + "/obj.png", hosts_[i],
                           ips_[i], 10'000, 0.1, 0.10 + 0.01 * double(i)});
    }
    wire_ = r.serialize();
  }

  ~DurabilityOverheadFixture() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  // Wall time for `reports` POSTs into a fresh sharded server.
  double run_once(bool journal_on, int reports) {
    OakConfig cfg;
    if (journal_on) {
      std::error_code ec;
      fs::remove_all(dir_, ec);
      cfg.durability.enabled = true;
      cfg.durability.dir = dir_.string();
    }
    ShardedOakServer server(universe_, "shop.com", cfg, 4);
    server.add_rule(make_domain_rule("r", hosts_[0], {"ext1.cdn.net"}));
    http::Request post =
        http::Request::post("http://shop.com/oak/report", wire_);
    post.headers.set("Cookie", std::string(http::kOakUserCookie) + "=u1");
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reports; ++i) {
      server.handle(post, 0.001 * i);
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  }

  double best_of(bool journal_on, int runs, int reports) {
    double best = 1e9;
    for (int i = 0; i < runs; ++i) {
      best = std::min(best, run_once(journal_on, reports));
    }
    return best;
  }

  page::WebUniverse universe_;
  net::ServerId origin_ = net::kInvalidServer;
  std::vector<std::string> hosts_;
  std::vector<std::string> ips_;
  page::Site site_;
  std::string wire_;
  fs::path dir_;
};

TEST_F(DurabilityOverheadFixture, JournaledIngestWithinBound) {
  constexpr int kReports = 400;
  constexpr int kRuns = 5;
  // Warm both configurations (allocators, page cache, journal dir).
  run_once(true, 50);
  run_once(false, 50);
  const double with_journal = best_of(true, kRuns, kReports);
  const double without = best_of(false, kRuns, kReports);
  // The ISSUE's acceptance ceiling. 3ms of absolute slack keeps a sub-
  // millisecond denominator from turning scheduler noise into a failure.
  EXPECT_LT(with_journal, without * 1.3 + 3e-3)
      << "journal-on=" << with_journal << "s journal-off=" << without << "s";
}

}  // namespace
}  // namespace oak::core
