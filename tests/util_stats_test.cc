#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace oak::util {
namespace {

TEST(Median, EmptyIsZero) {
  EXPECT_EQ(median({}), 0.0);
}

TEST(Median, SingleElement) {
  std::vector<double> v = {3.5};
  EXPECT_DOUBLE_EQ(median(v), 3.5);
}

TEST(Median, OddCount) {
  std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(v), 5.0);
}

TEST(Median, EvenCountAveragesMiddle) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Median, DoesNotMutateInput) {
  std::vector<double> v = {3.0, 1.0, 2.0};
  (void)median(v);
  EXPECT_EQ(v, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Median, HandlesDuplicates) {
  std::vector<double> v = {2.0, 2.0, 2.0, 7.0};
  EXPECT_DOUBLE_EQ(median(v), 2.0);
}

TEST(Mad, PaperDefinition) {
  // MAD = median_i(|x_i - median_j(x_j)|)
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 100.0};
  // median = 3; deviations = {2,1,0,1,97}; MAD = 1.
  EXPECT_DOUBLE_EQ(mad(v), 1.0);
}

TEST(Mad, RobustToSingleOutlierMagnitude) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8, 1000};
  std::vector<double> b = {1, 2, 3, 4, 5, 6, 7, 8, 1e9};
  EXPECT_DOUBLE_EQ(mad(a), mad(b));
}

TEST(Mad, TooFewSamplesIsZero) {
  std::vector<double> v = {42.0};
  EXPECT_EQ(mad(v), 0.0);
  EXPECT_EQ(mad({}), 0.0);
}

TEST(Mad, ConstantSampleIsZero) {
  std::vector<double> v = {5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(mad(v), 0.0);
}

TEST(MeanStddev, Basic) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138089935299395, 1e-12);
}

TEST(MeanStddev, DegenerateCases) {
  EXPECT_EQ(mean({}), 0.0);
  std::vector<double> one = {3.0};
  EXPECT_EQ(stddev(one), 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(MinMax, Basic) {
  std::vector<double> v = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(v), -1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 7.0);
  EXPECT_EQ(min_of({}), 0.0);
}

TEST(MadSummary, MatchesComponents) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 100.0};
  MadSummary s = mad_summary(v);
  EXPECT_DOUBLE_EQ(s.med, median(v));
  EXPECT_DOUBLE_EQ(s.mad, mad(v));
  EXPECT_EQ(s.n, v.size());
}

TEST(MadThreshold, AboveAndBelow) {
  // The paper's violator criterion with k = 2.
  std::vector<double> v = {1.0, 1.1, 0.9, 1.05, 0.95};
  MadSummary s = mad_summary(v);
  EXPECT_TRUE(above_mad(s.med + 2.0 * s.mad + 0.001, s, 2.0));
  EXPECT_FALSE(above_mad(s.med + 2.0 * s.mad, s, 2.0));  // strict inequality
  EXPECT_TRUE(below_mad(s.med - 2.0 * s.mad - 0.001, s, 2.0));
  EXPECT_FALSE(below_mad(s.med - 2.0 * s.mad, s, 2.0));
}

TEST(MadDistance, SignedAndNormalized) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  MadSummary s = mad_summary(v);  // median 3, MAD 1
  EXPECT_DOUBLE_EQ(mad_distance(5.0, s), 2.0);
  EXPECT_DOUBLE_EQ(mad_distance(1.0, s), -2.0);
  EXPECT_DOUBLE_EQ(mad_distance(3.0, s), 0.0);
}

TEST(MadDistance, ZeroMadDegenerates) {
  std::vector<double> v = {2.0, 2.0, 2.0};
  MadSummary s = mad_summary(v);
  EXPECT_EQ(mad_distance(2.0, s), 0.0);
  EXPECT_TRUE(std::isinf(mad_distance(3.0, s)));
  EXPECT_GT(mad_distance(3.0, s), 0.0);
  EXPECT_LT(mad_distance(1.0, s), 0.0);
}

}  // namespace
}  // namespace oak::util
