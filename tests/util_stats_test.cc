#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace oak::util {
namespace {

TEST(Median, EmptyIsZero) {
  EXPECT_EQ(median({}), 0.0);
}

TEST(Median, SingleElement) {
  std::vector<double> v = {3.5};
  EXPECT_DOUBLE_EQ(median(v), 3.5);
}

TEST(Median, OddCount) {
  std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(v), 5.0);
}

TEST(Median, EvenCountAveragesMiddle) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Median, DoesNotMutateInput) {
  std::vector<double> v = {3.0, 1.0, 2.0};
  (void)median(v);
  EXPECT_EQ(v, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Median, HandlesDuplicates) {
  std::vector<double> v = {2.0, 2.0, 2.0, 7.0};
  EXPECT_DOUBLE_EQ(median(v), 2.0);
}

TEST(Mad, PaperDefinition) {
  // MAD = median_i(|x_i - median_j(x_j)|)
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 100.0};
  // median = 3; deviations = {2,1,0,1,97}; MAD = 1.
  EXPECT_DOUBLE_EQ(mad(v), 1.0);
}

TEST(Mad, RobustToSingleOutlierMagnitude) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8, 1000};
  std::vector<double> b = {1, 2, 3, 4, 5, 6, 7, 8, 1e9};
  EXPECT_DOUBLE_EQ(mad(a), mad(b));
}

TEST(Mad, TooFewSamplesIsZero) {
  std::vector<double> v = {42.0};
  EXPECT_EQ(mad(v), 0.0);
  EXPECT_EQ(mad({}), 0.0);
}

TEST(Mad, ConstantSampleIsZero) {
  std::vector<double> v = {5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(mad(v), 0.0);
}

TEST(MeanStddev, Basic) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138089935299395, 1e-12);
}

TEST(MeanStddev, DegenerateCases) {
  EXPECT_EQ(mean({}), 0.0);
  std::vector<double> one = {3.0};
  EXPECT_EQ(stddev(one), 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(MinMax, Basic) {
  std::vector<double> v = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(v), -1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 7.0);
  EXPECT_EQ(min_of({}), 0.0);
}

TEST(MadSummary, MatchesComponents) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 100.0};
  MadSummary s = mad_summary(v);
  EXPECT_DOUBLE_EQ(s.med, median(v));
  EXPECT_DOUBLE_EQ(s.mad, mad(v));
  EXPECT_EQ(s.n, v.size());
}

TEST(MadThreshold, AboveAndBelow) {
  // The paper's violator criterion with k = 2.
  std::vector<double> v = {1.0, 1.1, 0.9, 1.05, 0.95};
  MadSummary s = mad_summary(v);
  EXPECT_TRUE(above_mad(s.med + 2.0 * s.mad + 0.001, s, 2.0));
  EXPECT_FALSE(above_mad(s.med + 2.0 * s.mad, s, 2.0));  // strict inequality
  EXPECT_TRUE(below_mad(s.med - 2.0 * s.mad - 0.001, s, 2.0));
  EXPECT_FALSE(below_mad(s.med - 2.0 * s.mad, s, 2.0));
}

TEST(MadDistance, SignedAndNormalized) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  MadSummary s = mad_summary(v);  // median 3, MAD 1
  EXPECT_DOUBLE_EQ(mad_distance(5.0, s), 2.0);
  EXPECT_DOUBLE_EQ(mad_distance(1.0, s), -2.0);
  EXPECT_DOUBLE_EQ(mad_distance(3.0, s), 0.0);
}

// --- Selection-based (nth_element) summaries vs a sort-based reference.

double median_by_sort(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return (xs[mid - 1] + xs[mid]) / 2.0;
}

double mad_by_sort(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double med = median_by_sort(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - med));
  return median_by_sort(dev);
}

TEST(SelectionStats, MedianInplaceMatchesSortReference) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> val(-100.0, 100.0);
  std::uniform_int_distribution<int> len(1, 200);
  std::uniform_int_distribution<int> dup(0, 3);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<double> xs;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) {
      // Duplicate-heavy mixes: most values snapped to a coarse grid.
      const double x = val(rng);
      xs.push_back(dup(rng) == 0 ? x : std::round(x / 10.0) * 10.0);
    }
    const double want = median_by_sort(xs);
    std::vector<double> scratch = xs;
    EXPECT_DOUBLE_EQ(median_inplace(scratch), want) << "trial " << trial;
    EXPECT_DOUBLE_EQ(median(xs), want);
  }
}

TEST(SelectionStats, OddEvenAndDuplicateHeavyCases) {
  // Odd, even, all-equal, two-element, and adversarial even splits where a
  // naive "both middles via one nth_element" would go wrong.
  const std::vector<std::vector<double>> cases = {
      {1.0},
      {2.0, 1.0},
      {3.0, 1.0, 2.0},
      {4.0, 1.0, 3.0, 2.0},
      {5.0, 5.0, 5.0, 5.0},
      {1.0, 1.0, 1.0, 9.0},
      {9.0, 1.0, 9.0, 1.0},
      {2.0, 2.0, 1.0, 3.0, 2.0, 2.0},
  };
  for (const auto& xs : cases) {
    std::vector<double> scratch = xs;
    EXPECT_DOUBLE_EQ(median_inplace(scratch), median_by_sort(xs));
  }
}

TEST(SelectionStats, MadSummaryInplaceMatchesReference) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> val(0.0, 5.0);
  std::uniform_int_distribution<int> len(0, 60);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> xs;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) xs.push_back(val(rng));

    std::vector<double> scratch = xs;
    const MadSummary s = mad_summary_inplace(scratch);
    EXPECT_EQ(s.n, xs.size());
    EXPECT_DOUBLE_EQ(s.med, median_by_sort(xs)) << "trial " << trial;
    EXPECT_DOUBLE_EQ(s.mad, mad_by_sort(xs)) << "trial " << trial;

    // And the copying wrappers agree with the in-place core.
    const MadSummary c = mad_summary(xs);
    EXPECT_DOUBLE_EQ(c.med, s.med);
    EXPECT_DOUBLE_EQ(c.mad, s.mad);
  }
}

double percentile_by_sort(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs[lo];
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

TEST(SelectionStats, PercentileMatchesSortReference) {
  // The selection-based percentile (nth_element + min-of-upper-partition)
  // must agree bit-for-bit with the textbook sort-then-interpolate version,
  // across sizes, duplicate-heavy mixes, and the full p range including the
  // exact-integer ranks where frac == 0.
  std::mt19937 rng(123);
  std::uniform_real_distribution<double> val(-50.0, 50.0);
  std::uniform_int_distribution<int> len(1, 150);
  std::uniform_int_distribution<int> dup(0, 2);
  std::uniform_real_distribution<double> pct(0.0, 100.0);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<double> xs;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) {
      const double x = val(rng);
      xs.push_back(dup(rng) == 0 ? x : std::round(x));
    }
    const double ps[] = {0.0,   pct(rng), 25.0, 50.0,
                         90.0,  99.0,     pct(rng), 100.0};
    for (double p : ps) {
      EXPECT_DOUBLE_EQ(percentile(xs, p), percentile_by_sort(xs, p))
          << "trial " << trial << " p=" << p << " n=" << n;
    }
    // Exact-integer ranks (frac == 0) hit every order statistic directly.
    if (xs.size() > 1) {
      const std::size_t k = trial % xs.size();
      const double p_exact =
          100.0 * static_cast<double>(k) / static_cast<double>(xs.size() - 1);
      EXPECT_DOUBLE_EQ(percentile(xs, p_exact),
                       percentile_by_sort(xs, p_exact))
          << "trial " << trial << " exact rank " << k;
    }
  }
}

TEST(SelectionStats, InplaceConsumesButDoesNotResize) {
  std::vector<double> xs = {5.0, 1.0, 4.0, 2.0, 3.0};
  const MadSummary s = mad_summary_inplace(xs);
  EXPECT_DOUBLE_EQ(s.med, 3.0);
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  EXPECT_EQ(xs.size(), 5u);  // contents are scratch now, size preserved
}

TEST(MadDistance, ZeroMadDegenerates) {
  std::vector<double> v = {2.0, 2.0, 2.0};
  MadSummary s = mad_summary(v);
  EXPECT_EQ(mad_distance(2.0, s), 0.0);
  EXPECT_TRUE(std::isinf(mad_distance(3.0, s)));
  EXPECT_GT(mad_distance(3.0, s), 0.0);
  EXPECT_LT(mad_distance(1.0, s), 0.0);
}

}  // namespace
}  // namespace oak::util
