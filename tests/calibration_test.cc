// Calibration guard-rails.
//
// The figure reproductions rest on corpus/network statistics that were
// calibrated against the paper (EXPERIMENTS.md §Calibration). These tests
// pin those statistics — on a reduced corpus for speed — with tolerances
// wide enough for benign edits but tight enough that a change which would
// bend a figure fails loudly here instead of silently in the bench output.
#include <gtest/gtest.h>

#include <set>

#include "page/corpus.h"
#include "util/cdf.h"
#include "util/stats.h"
#include "workload/survey.h"

namespace oak {
namespace {

page::Corpus& calibration_corpus() {
  static page::Corpus* corpus = [] {
    page::CorpusConfig cfg;
    cfg.seed = 42;
    cfg.num_sites = 150;
    return new page::Corpus(cfg);
  }();
  return *corpus;
}

TEST(Calibration, ExternalObjectFraction) {
  // Fig. 1: median ~0.75.
  std::vector<double> fracs;
  for (const auto& site : calibration_corpus().sites()) {
    const double ext = double(site.external_object_count());
    const double total = ext + double(site.origin_object_count);
    if (total > 0) fracs.push_back(ext / total);
  }
  const double med = util::median(fracs);
  EXPECT_GT(med, 0.65);
  EXPECT_LT(med, 0.85);
}

TEST(Calibration, OutlierRatesAndPersistence) {
  // Figs. 2 & 3: >60% of loads see >=1 outlier but well under 100%;
  // 4+ outliers around 10-30%; about half of day-0 outliers vanish a day
  // later.
  page::Corpus& corpus = calibration_corpus();
  auto vps = workload::make_vantage_points(corpus.universe().network(), 10);
  workload::SurveyOptions opt;
  opt.start_time = 12 * 3600.0;
  auto day0 = workload::run_outlier_survey(corpus, vps, opt);
  opt.start_time += 86400.0;
  auto day1 = workload::run_outlier_survey(corpus, vps, opt);

  util::Cdf counts;
  util::Cdf vanish;
  auto ips = [](const workload::SurveyLoad& l) {
    std::set<std::string> out;
    for (const auto& v : l.detection.violators) out.insert(v.ip);
    return out;
  };
  for (std::size_t i = 0; i < day0.size(); ++i) {
    counts.add(double(day0[i].detection.violators.size()));
    auto before = ips(day0[i]);
    if (before.empty()) continue;
    auto after = ips(day1[i]);
    std::size_t missing = 0;
    for (const auto& ip : before) {
      if (!after.count(ip)) ++missing;
    }
    vanish.add(double(missing) / double(before.size()));
  }
  const double at_least_one = counts.fraction_at_or_above(1.0);
  EXPECT_GT(at_least_one, 0.55);
  EXPECT_LT(at_least_one, 0.92);
  const double at_least_four = counts.fraction_at_or_above(4.0);
  EXPECT_GT(at_least_four, 0.05);
  EXPECT_LT(at_least_four, 0.35);
  const double median_vanish = vanish.quantile(0.5);
  EXPECT_GT(median_vanish, 0.25);
  EXPECT_LT(median_vanish, 0.75);
}

TEST(Calibration, MatcherTierMix) {
  // Fig. 8 feedstock: the per-host tier distribution.
  std::size_t direct = 0, inline_t = 0, script = 0, hidden = 0;
  for (const auto& site : calibration_corpus().sites()) {
    for (const auto& hu : site.external_hosts) {
      switch (hu.tier) {
        case page::RefTier::kDirect: ++direct; break;
        case page::RefTier::kInlineScript: ++inline_t; break;
        case page::RefTier::kViaExternalScript: ++script; break;
        case page::RefTier::kHidden: ++hidden; break;
      }
    }
  }
  const double total = double(direct + inline_t + script + hidden);
  ASSERT_GT(total, 0);
  // Direct carries the aggregator bump; hidden must stay a real minority
  // share or Fig. 8's unmatched residue disappears.
  EXPECT_NEAR(direct / total, 0.47, 0.12);
  EXPECT_GT(hidden / total, 0.10);
  EXPECT_GT(inline_t / total, 0.05);
  EXPECT_GT(script / total, 0.05);
}

TEST(Calibration, ProviderHealthMix) {
  // Table 1 / Fig. 3 feedstock: some providers are sick, most are not, and
  // the unhealthy mass sits in ads/analytics rather than CDNs/fonts.
  std::size_t unhealthy = 0, unhealthy_adsish = 0;
  const auto& providers = calibration_corpus().providers();
  for (const auto& p : providers) {
    if (p.chronically_degraded || p.has_blind_spot) {
      ++unhealthy;
      if (p.category == page::Category::kAds ||
          p.category == page::Category::kAnalytics ||
          p.category == page::Category::kSocial) {
        ++unhealthy_adsish;
      }
    }
  }
  EXPECT_GT(unhealthy, providers.size() / 50);
  EXPECT_LT(unhealthy, providers.size() / 2);
  EXPECT_GE(unhealthy_adsish * 2, unhealthy);  // at least half ads-ish
}

TEST(Calibration, PaperSitesKeepTheirStructure) {
  // Table 2 depends on exact host counts and home regions.
  page::Corpus& corpus = calibration_corpus();
  struct Expect {
    const char* host;
    std::size_t count;
  };
  for (const Expect& e : std::initializer_list<Expect>{
           {"youtube.com", 9}, {"msn.com", 12}, {"ok.ru", 19},
           {"flipkart.com", 24}, {"xhamster.com", 26}}) {
    const page::Site* site = corpus.site_by_host(e.host);
    ASSERT_NE(site, nullptr) << e.host;
    EXPECT_EQ(site->external_host_count(), e.count) << e.host;
  }
  EXPECT_EQ(corpus.universe()
                .network()
                .server(corpus.site_by_host("qunar.com")->origin_server)
                .region(),
            net::Region::kAsia);
}

}  // namespace
}  // namespace oak
