#!/usr/bin/env python3
"""Fail CI on broken relative links in the repo's markdown docs.

Scans README.md, DESIGN.md and docs/*.md for markdown links and images.
External links (http/https/mailto) are out of scope — this catches the
common failure mode where a doc is renamed or moved and a relative link
quietly rots.

Anchors into other markdown files ("FILE.md#section") are resolved against
GitHub-style heading slugs of the target file, so a renamed section breaks
CI the same way a renamed file does. Bare "#section" links are checked
against the containing file's own headings.

Additionally, every top-level *.md (plus docs/*.md) is scanned for
references to BENCH_*.json artifacts: docs routinely cite bench results
by filename outside of markdown-link syntax, and a cited artifact that
was never checked in (or got renamed) rots just as quietly as a broken
link — that exact failure shipped once with BENCH_chaos.json.

Usage: python3 tools/check_links.py [repo_root]
Exit status: 0 when every relative link and BENCH reference resolves,
1 otherwise.
"""

import pathlib
import re
import sys

# [text](target) and ![alt](target); target ends at the first unescaped ')'.
# Reference-style definitions `[id]: target` are matched separately.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

# Bare mentions like `BENCH_wire.json` anywhere in prose or code spans.
# BENCH artifacts live in the repo root by convention.
BENCH_REF = re.compile(r"\bBENCH_[A-Za-z0-9_]+\.json\b")

SKIP_PREFIXES = ("http://", "https://", "mailto:")

HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
# GitHub's slugger: lowercase, drop everything but word chars / spaces /
# hyphens (after stripping inline-code backticks), spaces to hyphens.
SLUG_DROP = re.compile(r"[^\w\- ]")


def slugs_of(path: pathlib.Path):
    slugs = set()
    for match in HEADING.finditer(path.read_text(encoding="utf-8")):
        title = match.group(1).replace("`", "")
        slug = SLUG_DROP.sub("", title.lower()).strip().replace(" ", "-")
        slugs.add(slug)
    return slugs


def doc_files(root: pathlib.Path):
    for name in ("README.md", "DESIGN.md"):
        path = root / name
        if path.is_file():
            yield path
    yield from sorted((root / "docs").glob("*.md"))


def bench_doc_files(root: pathlib.Path):
    for path in sorted(root.glob("*.md")):
        # ROADMAP.md names bench artifacts that future PRs will produce;
        # everywhere else a BENCH citation is a claim about a checked-in
        # result.
        if path.name == "ROADMAP.md":
            continue
        yield path
    yield from sorted((root / "docs").glob("*.md"))


def targets_in(text: str):
    for match in INLINE_LINK.finditer(text):
        yield match.group(1)
    for match in REF_DEF.finditer(text):
        yield match.group(1)


def check(root: pathlib.Path) -> int:
    broken = []
    slug_cache = {}
    for doc in doc_files(root):
        text = doc.read_text(encoding="utf-8")
        for target in targets_in(text):
            if target.startswith(SKIP_PREFIXES):
                continue
            rel, _, anchor = target.partition("#")
            resolved = (doc.parent / rel).resolve() if rel else doc
            if not resolved.exists():
                broken.append((doc.relative_to(root), target))
                continue
            if anchor and resolved.suffix == ".md":
                if resolved not in slug_cache:
                    slug_cache[resolved] = slugs_of(resolved)
                if anchor not in slug_cache[resolved]:
                    broken.append((doc.relative_to(root), target))
    for doc, target in broken:
        print(f"BROKEN  {doc}: {target}")

    missing_bench = []
    for doc in bench_doc_files(root):
        text = doc.read_text(encoding="utf-8")
        for name in sorted(set(BENCH_REF.findall(text))):
            if not (root / name).is_file():
                missing_bench.append((doc.relative_to(root), name))
    for doc, name in missing_bench:
        print(f"MISSING BENCH  {doc}: cites {name} but it is not checked in")

    if broken or missing_bench:
        print(
            f"{len(broken)} broken relative link(s), "
            f"{len(missing_bench)} missing BENCH artifact reference(s)"
        )
        return 1
    print("all relative links and BENCH references resolve")
    return 0


if __name__ == "__main__":
    repo_root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    sys.exit(check(repo_root.resolve()))
