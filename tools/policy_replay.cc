// policy_replay: the operator's decision-replay driver (docs/POLICIES.md).
//
// Three modes, all deterministic:
//
//   record   Drive a seeded ChaosScenario with context recording on and
//            write a self-contained replay bundle: the rule file text, the
//            recording policy, the history mode and the decision log
//            (decisions + per-report contexts).
//   replay   Re-decide a recorded bundle under a candidate policy and
//            write {"score": ..., "decisions": [...]}. Two invocations
//            over the same bundle are byte-identical (CI asserts this).
//   compare  Replay the bundle under several candidate policies and print
//            a score table side by side.
//
// Candidate policies are named strategies ("paper", "racing",
// "hysteresis", or any operator strategy in the bundle's table) — applied
// as the default strategy for every rule — or "@file.json", a full Policy
// document as produced by core::policy_to_json.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "core/decision_log.h"
#include "core/policy.h"
#include "core/policy_replay.h"
#include "core/rule_parser.h"
#include "util/json.h"
#include "workload/chaos.h"
#include "workload/vantage.h"

namespace {

using namespace oak;

constexpr int kBundleVersion = 1;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  policy_replay record [--scenario NAME] [--seed N] [--policy P]\n"
      "                       [--horizon-s S] --out FILE\n"
      "      scenarios: outage-refused (default), outage-stall,\n"
      "                 outage-truncate, racing\n"
      "  policy_replay replay --log FILE [--policy P] [--out FILE]\n"
      "  policy_replay compare --log FILE --policy P [--policy P ...]\n"
      "\n"
      "  P is a strategy name (paper|racing|hysteresis|<operator name>),\n"
      "  applied as the default strategy for every rule, or @policy.json\n"
      "  (a full core::policy_to_json document).\n");
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "policy_replay: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "policy_replay: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << text;
}

struct Args {
  std::string mode;
  std::string scenario = "outage-refused";
  std::uint64_t seed = 23;
  double horizon_s = 0.0;  // 0 = scenario default
  std::string log_path;
  std::string out_path;
  std::vector<std::string> policies;
};

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.mode = argv[1];
  if (a.mode != "record" && a.mode != "replay" && a.mode != "compare")
    usage();
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--scenario") {
      a.scenario = value();
    } else if (flag == "--seed") {
      a.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--horizon-s") {
      a.horizon_s = std::strtod(value().c_str(), nullptr);
    } else if (flag == "--log") {
      a.log_path = value();
    } else if (flag == "--out") {
      a.out_path = value();
    } else if (flag == "--policy") {
      a.policies.push_back(value());
    } else {
      usage();
    }
  }
  return a;
}

// --- record ---------------------------------------------------------------

core::Policy recording_policy(const std::string& spec) {
  core::Policy p;
  if (!spec.empty()) {
    if (spec[0] == '@') {
      p = core::policy_from_json(util::Json::parse(read_file(spec.substr(1))));
    } else {
      p.default_strategy = spec;
    }
  }
  p.record_context = true;
  return p;
}

int run_record(const Args& args) {
  workload::ChaosScenario::Options opt;
  opt.seed = args.seed;
  if (args.scenario == "outage-refused") {
    opt.fault = net::FaultType::kConnectRefused;
  } else if (args.scenario == "outage-stall") {
    opt.fault = net::FaultType::kStall;
  } else if (args.scenario == "outage-truncate") {
    opt.fault = net::FaultType::kTruncate;
  } else if (args.scenario == "racing") {
    opt.fault = net::FaultType::kConnectRefused;
    opt.racing_mirrors = true;
  } else {
    std::fprintf(stderr, "policy_replay: unknown scenario '%s'\n",
                 args.scenario.c_str());
    return 2;
  }
  opt.policy = recording_policy(args.policies.empty() ? std::string()
                                                      : args.policies[0]);
  if (args.out_path.empty()) usage();

  workload::ChaosScenario scenario(opt);
  auto vps = workload::make_vantage_points(scenario.universe().network(), 8);
  browser::BrowserConfig bc;
  bc.use_cache = false;
  bc.fetch_timeout_s = 5.0;
  std::vector<std::unique_ptr<browser::Browser>> fleet;
  for (const auto& vp : vps) {
    fleet.push_back(std::make_unique<browser::Browser>(scenario.universe(),
                                                       vp.client, bc));
  }

  const double horizon = args.horizon_s > 0.0
                             ? args.horizon_s
                             : opt.onset_s + opt.duration_s + 1800.0;
  constexpr double kInterval = 300.0;
  for (double t = 0.0; t < horizon; t += kInterval) {
    for (auto& b : fleet) b->load(scenario.oak_site_url(), t);
  }

  util::JsonObject bundle;
  bundle["version"] = std::int64_t(kBundleVersion);
  bundle["scenario"] = args.scenario;
  bundle["seed"] = std::int64_t(args.seed);
  bundle["history"] =
      std::int64_t(static_cast<int>(scenario.oak().config().history));
  bundle["rules"] = core::format_rules(scenario.oak().rules());
  // The rule file format carries no ids (the server assigns them), but the
  // contexts reference rules BY id — record them, parallel to parse order.
  util::JsonArray rule_ids;
  for (const auto& r : scenario.oak().rules()) rule_ids.push_back(r.id);
  bundle["rule_ids"] = std::move(rule_ids);
  bundle["policy"] = core::policy_to_json(scenario.oak().config().policy);
  bundle["log"] = scenario.oak().decision_log().to_json();

  const auto& log = scenario.oak().decision_log();
  write_file(args.out_path,
             util::Json(std::move(bundle)).dump_pretty(2) + "\n");
  std::printf("recorded %s: %zu decisions, %zu contexts -> %s\n",
              args.scenario.c_str(), log.entries().size(),
              log.contexts().size(), args.out_path.c_str());
  return 0;
}

// --- replay / compare -----------------------------------------------------

struct Bundle {
  std::vector<core::Rule> rules;
  core::Policy policy;  // the policy that recorded the log
  core::HistoryMode history = core::HistoryMode::kMinDistance;
  core::DecisionLog log;
};

Bundle load_bundle(const std::string& path) {
  const util::Json doc = util::Json::parse(read_file(path));
  if (const util::Json* v = doc.find("version");
      !v || v->as_int() != kBundleVersion) {
    std::fprintf(stderr, "policy_replay: %s: unsupported bundle version\n",
                 path.c_str());
    std::exit(1);
  }
  Bundle b;
  b.rules = core::parse_rules(doc.at("rules").as_string());
  const auto& ids = doc.at("rule_ids").as_array();
  if (ids.size() != b.rules.size()) {
    std::fprintf(stderr, "policy_replay: %s: rule_ids/rules mismatch\n",
                 path.c_str());
    std::exit(1);
  }
  for (std::size_t i = 0; i < b.rules.size(); ++i) {
    b.rules[i].id = static_cast<int>(ids[i].as_int());
  }
  b.policy = core::policy_from_json(doc.at("policy"));
  b.history = static_cast<core::HistoryMode>(doc.at("history").as_int());
  b.log = core::DecisionLog::from_json(doc.at("log"));
  return b;
}

// Resolve a candidate spec against the bundle: a name swaps the default
// strategy (clearing per-rule overrides so the candidate governs every
// rule); "@file" replaces the whole policy document.
core::Policy candidate_policy(const Bundle& bundle, const std::string& spec,
                              std::vector<core::Rule>* rules) {
  core::Policy p = bundle.policy;
  if (!spec.empty() && spec[0] == '@') {
    p = core::policy_from_json(util::Json::parse(read_file(spec.substr(1))));
  } else if (!spec.empty()) {
    p.default_strategy = spec;
    for (auto& r : *rules) r.policy.clear();
  }
  p.record_context = false;
  return p;
}

int run_replay(const Args& args) {
  if (args.log_path.empty()) usage();
  Bundle bundle = load_bundle(args.log_path);
  std::vector<core::Rule> rules = bundle.rules;
  const std::string spec = args.policies.empty() ? "" : args.policies[0];
  const core::Policy policy = candidate_policy(bundle, spec, &rules);

  core::PolicyReplayer replayer(rules, policy, bundle.history);
  for (const auto& ctx : bundle.log.contexts()) replayer.step(ctx);

  const std::string out = replayer.result_json().dump_pretty(2) + "\n";
  if (args.out_path.empty()) {
    std::fputs(out.c_str(), stdout);
  } else {
    write_file(args.out_path, out);
    const core::ReplayScore s = replayer.score();
    std::printf("replayed %zu contexts under '%s': %zu activations, "
                "observed %.3fs est %.3fs -> %s\n",
                s.reports + s.serve_ticks,
                spec.empty() ? "(recorded)" : spec.c_str(), s.activations,
                s.observed_mean_plt_s, s.estimated_mean_plt_s,
                args.out_path.c_str());
  }
  return 0;
}

int run_compare(const Args& args) {
  if (args.log_path.empty() || args.policies.empty()) usage();
  Bundle bundle = load_bundle(args.log_path);
  std::printf("%-14s %9s %9s %9s %9s %12s %12s\n", "policy", "reports",
              "mitig.", "activ.", "deact.", "observed-plt", "est-plt");
  for (const std::string& spec : args.policies) {
    std::vector<core::Rule> rules = bundle.rules;
    const core::Policy policy = candidate_policy(bundle, spec, &rules);
    core::PolicyReplayer replayer(rules, policy, bundle.history);
    for (const auto& ctx : bundle.log.contexts()) replayer.step(ctx);
    const core::ReplayScore s = replayer.score();
    std::printf("%-14s %9zu %9zu %9zu %9zu %11.3fs %11.3fs\n", spec.c_str(),
                s.reports, s.mitigated_reports, s.activations,
                s.deactivations, s.observed_mean_plt_s,
                s.estimated_mean_plt_s);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.mode == "record") return run_record(args);
  if (args.mode == "replay") return run_replay(args);
  return run_compare(args);
}
