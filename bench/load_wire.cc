// Wire load harness: open-loop rate sweep and soak against a live
// oak::wire::Server, gating the overload-shedding contract.
//
// Closed-loop clients slow down when the server slows down, which hides
// congestion collapse. This harness is open-loop: each client thread sends
// on an absolute schedule derived from the target rate, and latency is
// measured from the *scheduled* arrival time — so queueing delay and
// coordinated omission are charged to the server, not hidden by the client.
//
// Phases:
//   peak   closed-loop burst to find the server's max goodput (2xx/s)
//   sweep  open-loop at 0.25x / 0.5x / 1.0x / 2.0x peak; per-point goodput,
//          shed rate, and latency percentiles
//   soak   sustained 0.5x peak; RSS sampled before/after (with malloc_trim)
//          to bound allocator drift
//
// Gates (exit code 0 iff all pass):
//   * goodput at 2.0x overload >= 80% of the best sweep goodput — shedding
//     refuses excess load instead of collapsing under it;
//   * p99 latency at 0.5x load bounded (the uncongested regime is fast);
//   * soak RSS drift <= 1.1x (no per-request leak on the hot path);
//   * zero 5xx anywhere.
//
// Usage: load_wire [scale] — scale divides durations for CI smoke runs.
// Merges the "load" and "soak" sections into BENCH_wire.json (wire_fuzz
// owns the "fuzz" section).
#include <malloc.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "browser/report.h"
#include "core/sharded_server.h"
#include "http/cookies.h"
#include "page/site.h"
#include "util/json.h"
#include "wire/client.h"
#include "wire/server.h"

namespace {

using namespace oak;
using Clock = std::chrono::steady_clock;

double now_s() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

std::size_t rss_bytes() {
  malloc_trim(0);  // return freed arenas so VmRSS reflects live data
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::size_t(std::atoll(line.c_str() + 6)) * 1024;
    }
  }
  return 0;
}

struct Env {
  page::WebUniverse universe{net::NetworkConfig{.seed = 11, .horizon_s = 0}};
  page::Site site;
  std::string report;

  Env() {
    net::Network& net = universe.network();
    net::ServerId origin = net.add_server(net::ServerConfig{.name = "origin"});
    universe.dns().bind("busy.com", net.server(origin).addr());
    net::ServerId cdn = net.add_server(net::ServerConfig{});
    universe.dns().bind("x0.net", net.server(cdn).addr());

    page::SiteBuilder b(universe, "busy.com", origin);
    b.add_direct("x0.net", "/o.js", html::RefKind::kScript, 9000,
                 page::Category::kCdn);
    site = b.finish();

    browser::PerfReport r;
    r.page_url = site.index_url();
    r.entries.push_back(
        {site.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    r.entries.push_back({"http://x0.net/o.js", "x0.net",
                         net.server(cdn).addr().to_string(), 9000, 0.1, 4.0});
    report = r.serialize();
  }
};

struct RunStats {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;    // 2xx
  std::uint64_t shed = 0;  // 503
  std::uint64_t err = 0;   // other statuses, parse failures, conn errors
  std::uint64_t s5xx = 0;  // 5xx (gated to zero; also counted in err)
  double duration_s = 0.0;
  std::vector<double> lat;  // seconds, from scheduled arrival to response

  double goodput() const { return duration_s > 0 ? ok / duration_s : 0; }
  double pct(double p) {
    if (lat.empty()) return 0.0;
    std::sort(lat.begin(), lat.end());
    const std::size_t i = std::size_t(p * double(lat.size() - 1));
    return lat[i];
  }
};

// One client thread: POST reports over a keep-alive connection. When
// rate_per_thread > 0 the sends follow an absolute open-loop schedule;
// when 0 the loop is closed (back-to-back), used only to find the peak.
// Each thread carries a stable oak_uid cookie (as real browsers do), so the
// benchmark measures the wire plane's per-request cost — not the server's
// by-design user-state growth when every request mints a new user.
void client_main(std::uint16_t port, const std::string& body,
                 const std::string& cookie, double rate_per_thread,
                 double until_s, bool record_lat, RunStats* out) {
  wire::BlockingClient cli;
  bool connected = cli.connect("127.0.0.1", port, 5.0);
  const double interval =
      rate_per_thread > 0 ? 1.0 / rate_per_thread : 0.0;
  double next_t = now_s();
  while (true) {
    const double t = now_s();
    if (t >= until_s) break;
    if (interval > 0) {
      if (t < next_t) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(next_t - t));
      }
      if (now_s() >= until_s) break;
    }
    const double sched = interval > 0 ? next_t : now_s();
    next_t += interval;

    if (!connected) {
      cli = wire::BlockingClient();
      connected = cli.connect("127.0.0.1", port, 5.0);
      if (!connected) {
        ++out->sent;
        ++out->err;
        continue;
      }
    }
    ++out->sent;
    auto resp = cli.request("POST", "/oak/report",
                            {{"Host", "busy.com"}, {"Cookie", cookie}}, body);
    if (!resp) {
      ++out->err;
      connected = false;
      continue;
    }
    if (record_lat) out->lat.push_back(now_s() - sched);
    if (resp->status >= 200 && resp->status < 300) {
      ++out->ok;
    } else if (resp->status == 503) {
      ++out->shed;
    } else {
      ++out->err;
      if (resp->status >= 500) ++out->s5xx;
    }
    if (!resp->keep_alive) connected = false;
  }
}

RunStats run_load(std::uint16_t port, const std::string& body, double rate,
                  double duration_s, std::size_t threads,
                  bool record_lat = true) {
  std::vector<RunStats> per(threads);
  std::vector<std::string> cookies(threads);
  std::vector<std::thread> ts;
  const double until = now_s() + duration_s;
  const double per_rate = rate > 0 ? rate / double(threads) : 0.0;
  const double start = now_s();
  for (std::size_t i = 0; i < threads; ++i) {
    cookies[i] =
        std::string(http::kOakUserCookie) + "=bench" + std::to_string(i);
    ts.emplace_back(client_main, port, std::cref(body), std::cref(cookies[i]),
                    per_rate, until, record_lat, &per[i]);
  }
  for (auto& t : ts) t.join();
  RunStats total;
  total.duration_s = now_s() - start;
  for (RunStats& p : per) {
    total.sent += p.sent;
    total.ok += p.ok;
    total.shed += p.shed;
    total.err += p.err;
    total.s5xx += p.s5xx;
    total.lat.insert(total.lat.end(), p.lat.begin(), p.lat.end());
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 1;
  if (argc > 1) scale = std::size_t(std::max(1, std::atoi(argv[1])));

  Env env;
  core::ShardedOakServer oak(env.universe, "busy.com", {}, 4);
  wire::WireConfig wc;
  wire::Server srv(oak, wc);
  srv.start();
  const std::uint16_t port = srv.port();

  const std::size_t kThreads = 16;
  const double peak_s = std::max(2.0 / double(scale), 1.0);
  const double point_s = std::max(3.0 / double(scale), 1.0);
  const double soak_s = std::max(20.0 / double(scale), 4.0);

  // --- Peak: closed-loop burst. The number itself only anchors the sweep.
  std::printf("load_wire: measuring closed-loop peak (%.1fs)...\n", peak_s);
  RunStats peak = run_load(port, env.report, 0.0, peak_s, kThreads);
  const double peak_rps = std::max(peak.goodput(), 100.0);
  std::printf("  peak goodput %.0f req/s (%llu ok, %llu shed, %llu err)\n",
              peak_rps, (unsigned long long)peak.ok,
              (unsigned long long)peak.shed, (unsigned long long)peak.err);

  // --- Open-loop sweep.
  const double fracs[] = {0.25, 0.5, 1.0, 2.0};
  struct Point {
    double frac, rate, goodput, shed_frac, p50, p99;
    std::uint64_t sent, ok, shed, err, s5xx;
  };
  std::vector<Point> points;
  for (double f : fracs) {
    const double rate = f * peak_rps;
    RunStats s = run_load(port, env.report, rate, point_s, kThreads);
    Point p{f,      rate,
            s.goodput(),
            s.sent ? double(s.shed) / double(s.sent) : 0.0,
            s.pct(0.50),
            s.pct(0.99),
            s.sent, s.ok, s.shed, s.err, s.s5xx};
    points.push_back(p);
    std::printf(
        "  %.2fx: offered %.0f/s -> goodput %.0f/s, shed %.1f%%, "
        "p50 %.1fms p99 %.1fms (%llu err, %llu 5xx)\n",
        f, rate, p.goodput, 100 * p.shed_frac, 1e3 * p.p50, 1e3 * p.p99,
        (unsigned long long)s.err, (unsigned long long)s.s5xx);
  }

  double best_goodput = 0.0;
  for (const Point& p : points) best_goodput = std::max(best_goodput, p.goodput);
  const Point& half = points[1];      // 0.5x
  const Point& overload = points.back();  // 2.0x

  // --- Soak at 0.5x: steady-state RSS drift. The baseline is taken after a
  // warmup run so first-touch allocations (arena blocks, queue capacities,
  // allocator fragmentation plateau) don't masquerade as per-request drift;
  // the soak itself records no latency samples so the harness adds nothing
  // to the measurement.
  const double warmup_s = std::max(soak_s / 4.0, 2.0);
  std::printf("load_wire: soak warmup at 0.5x for %.0fs...\n", warmup_s);
  run_load(port, env.report, 0.5 * peak_rps, warmup_s, kThreads, false);
  const std::size_t rss_before = rss_bytes();
  std::printf("load_wire: soak at 0.5x for %.0fs (rss %.1f MB)...\n", soak_s,
              rss_before / 1048576.0);
  RunStats soak =
      run_load(port, env.report, 0.5 * peak_rps, soak_s, kThreads, false);
  const std::size_t rss_after = rss_bytes();
  const double rss_drift =
      rss_before ? double(rss_after) / double(rss_before) : 1.0;
  std::printf("  soak: %llu ok, %llu err; rss %.1f -> %.1f MB (%.3fx)\n",
              (unsigned long long)soak.ok, (unsigned long long)soak.err,
              rss_before / 1048576.0, rss_after / 1048576.0, rss_drift);

  srv.stop();
  const auto snap = srv.metrics_snapshot();

  const std::uint64_t total_5xx =
      peak.s5xx + overload.s5xx + half.s5xx + points[0].s5xx +
      points[2].s5xx + soak.s5xx;
  const bool gate_goodput = overload.goodput >= 0.8 * best_goodput;
  const bool gate_p99 = half.p99 <= 0.25;  // 250 ms, uncongested regime
  const bool gate_rss = rss_drift <= 1.1;
  const bool gate_5xx = total_5xx == 0 &&
                        snap.counter("oak_wire_responses_5xx_total") == 0;
  const bool pass = gate_goodput && gate_p99 && gate_rss && gate_5xx;

  // --- Merge into BENCH_wire.json.
  util::JsonObject root;
  {
    std::ifstream in("BENCH_wire.json");
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      try {
        root = util::Json::parse(ss.str()).as_object();
      } catch (const std::exception&) {
        root.clear();
      }
    }
  }
  util::JsonObject load;
  load["scale"] = scale;
  load["client_threads"] = kThreads;
  load["peak_goodput_rps"] = peak_rps;
  util::JsonArray sweep;
  for (const Point& p : points) {
    util::JsonObject o;
    o["offered_x_peak"] = p.frac;
    o["offered_rps"] = p.rate;
    o["goodput_rps"] = p.goodput;
    o["shed_fraction"] = p.shed_frac;
    o["p50_ms"] = 1e3 * p.p50;
    o["p99_ms"] = 1e3 * p.p99;
    o["sent"] = p.sent;
    o["ok"] = p.ok;
    o["shed"] = p.shed;
    o["errors"] = p.err;
    sweep.push_back(util::Json(std::move(o)));
  }
  load["sweep"] = std::move(sweep);
  auto gate = [](bool ok, double value, double required,
                 const std::string& direction) {
    util::JsonObject g;
    g["value"] = value;
    g["required"] = required;
    g["direction"] = direction;
    g["status"] = std::string(ok ? "pass" : "fail");
    return util::Json(std::move(g));
  };
  util::JsonObject lgates;
  lgates["overload_goodput_vs_best"] =
      gate(gate_goodput,
           best_goodput > 0 ? overload.goodput / best_goodput : 0.0, 0.8,
           "at_least");
  lgates["p99_at_half_load_ms"] = gate(gate_p99, 1e3 * half.p99, 250.0,
                                       "at_most");
  lgates["responses_5xx"] = gate(gate_5xx, double(total_5xx), 0.0, "at_most");
  load["gates"] = std::move(lgates);
  load["status"] =
      std::string(gate_goodput && gate_p99 && gate_5xx ? "pass" : "fail");
  root["load"] = std::move(load);

  util::JsonObject soak_o;
  soak_o["duration_s"] = soak.duration_s;
  soak_o["offered_rps"] = 0.5 * peak_rps;
  soak_o["goodput_rps"] = soak.goodput();
  soak_o["requests_ok"] = soak.ok;
  soak_o["rss_before_bytes"] = rss_before;
  soak_o["rss_after_bytes"] = rss_after;
  soak_o["rss_drift"] = rss_drift;
  util::JsonObject sgates;
  sgates["rss_drift"] = gate(gate_rss, rss_drift, 1.1, "at_most");
  soak_o["gates"] = std::move(sgates);
  soak_o["status"] = std::string(gate_rss ? "pass" : "fail");
  root["soak"] = std::move(soak_o);

  std::ofstream("BENCH_wire.json")
      << util::Json(root).dump_pretty(2) << "\n";

  std::printf("gate overload_goodput: %.2f of best (need >= 0.80)  [%s]\n",
              best_goodput > 0 ? overload.goodput / best_goodput : 0.0,
              gate_goodput ? "PASS" : "FAIL");
  std::printf("gate p99@0.5x: %.1f ms (need <= 250)  [%s]\n", 1e3 * half.p99,
              gate_p99 ? "PASS" : "FAIL");
  std::printf("gate soak rss drift: %.3fx (need <= 1.10)  [%s]\n", rss_drift,
              gate_rss ? "PASS" : "FAIL");
  std::printf("gate 5xx: %llu (need 0)  [%s]\n",
              (unsigned long long)total_5xx, gate_5xx ? "PASS" : "FAIL");
  std::printf("load_wire: %s (wrote BENCH_wire.json)\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
