// Wire load harness: open-loop rate sweep and soak against a live
// oak::wire::Server, gating the overload-shedding contract.
//
// Closed-loop clients slow down when the server slows down, which hides
// congestion collapse. This harness is open-loop: each client thread sends
// on an absolute schedule derived from the target rate, and latency is
// measured from the *scheduled* arrival time — so queueing delay and
// coordinated omission are charged to the server, not hidden by the client.
//
// Phases:
//   peak      closed-loop burst to find the server's max goodput (2xx/s)
//   sweep     open-loop at 0.25x / 0.5x / 1.0x / 2.0x peak; per-point
//             goodput, shed rate, and latency percentiles
//   soak      sustained 0.5x peak; RSS sampled before/after (with
//             malloc_trim) to bound allocator drift
//   multiloop loops=1 vs loops=N (N = min(cores, shards)) over a shared
//             absolute rate grid; the number that matters is the knee —
//             the first offered rate whose p99 exceeds 250 ms — which the
//             extra loops must move right, not just peak goodput
//
// Gates (exit code 0 iff all pass):
//   * goodput at 2.0x overload >= 80% of the best sweep goodput — shedding
//     refuses excess load instead of collapsing under it;
//   * p99 latency at 0.5x load bounded (the uncongested regime is fast);
//   * soak RSS drift <= 1.1x (no per-request leak on the hot path);
//   * zero 5xx anywhere;
//   * multiloop (>= 4 cores only; recorded "skipped" below that, mirroring
//     load_concurrent's convention): loops=N peak >= 1.3x loops=1 peak and
//     the p99 knee at a strictly higher offered rate.
//
// Usage: load_wire [scale] — scale divides durations for CI smoke runs.
// Merges the "load", "soak", and "multiloop" sections into BENCH_wire.json
// (wire_fuzz owns the "fuzz" section).
#include <malloc.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "browser/report.h"
#include "core/sharded_server.h"
#include "http/cookies.h"
#include "page/site.h"
#include "util/json.h"
#include "wire/client.h"
#include "wire/server.h"

namespace {

using namespace oak;
using Clock = std::chrono::steady_clock;

double now_s() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

std::size_t rss_bytes() {
  malloc_trim(0);  // return freed arenas so VmRSS reflects live data
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::size_t(std::atoll(line.c_str() + 6)) * 1024;
    }
  }
  return 0;
}

struct Env {
  page::WebUniverse universe{net::NetworkConfig{.seed = 11, .horizon_s = 0}};
  page::Site site;
  std::string report;

  Env() {
    net::Network& net = universe.network();
    net::ServerId origin = net.add_server(net::ServerConfig{.name = "origin"});
    universe.dns().bind("busy.com", net.server(origin).addr());
    net::ServerId cdn = net.add_server(net::ServerConfig{});
    universe.dns().bind("x0.net", net.server(cdn).addr());

    page::SiteBuilder b(universe, "busy.com", origin);
    b.add_direct("x0.net", "/o.js", html::RefKind::kScript, 9000,
                 page::Category::kCdn);
    site = b.finish();

    browser::PerfReport r;
    r.page_url = site.index_url();
    r.entries.push_back(
        {site.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    r.entries.push_back({"http://x0.net/o.js", "x0.net",
                         net.server(cdn).addr().to_string(), 9000, 0.1, 4.0});
    report = r.serialize();
  }
};

struct RunStats {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;    // 2xx
  std::uint64_t shed = 0;  // 503
  std::uint64_t err = 0;   // other statuses, parse failures, conn errors
  std::uint64_t s5xx = 0;  // 5xx (gated to zero; also counted in err)
  double duration_s = 0.0;
  std::vector<double> lat;  // seconds, from scheduled arrival to response

  double goodput() const { return duration_s > 0 ? ok / duration_s : 0; }
  double pct(double p) {
    if (lat.empty()) return 0.0;
    std::sort(lat.begin(), lat.end());
    const std::size_t i = std::size_t(p * double(lat.size() - 1));
    return lat[i];
  }
};

// One client thread: POST reports over a keep-alive connection. When
// rate_per_thread > 0 the sends follow an absolute open-loop schedule;
// when 0 the loop is closed (back-to-back), used only to find the peak.
// Each thread carries a stable oak_uid cookie (as real browsers do), so the
// benchmark measures the wire plane's per-request cost — not the server's
// by-design user-state growth when every request mints a new user.
void client_main(std::uint16_t port, const std::string& body,
                 const std::string& cookie, double rate_per_thread,
                 double until_s, bool record_lat, RunStats* out) {
  wire::BlockingClient cli;
  bool connected = cli.connect("127.0.0.1", port, 5.0);
  const double interval =
      rate_per_thread > 0 ? 1.0 / rate_per_thread : 0.0;
  double next_t = now_s();
  while (true) {
    const double t = now_s();
    if (t >= until_s) break;
    if (interval > 0) {
      if (t < next_t) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(next_t - t));
      }
      if (now_s() >= until_s) break;
    }
    const double sched = interval > 0 ? next_t : now_s();
    next_t += interval;

    if (!connected) {
      cli = wire::BlockingClient();
      connected = cli.connect("127.0.0.1", port, 5.0);
      if (!connected) {
        ++out->sent;
        ++out->err;
        continue;
      }
    }
    ++out->sent;
    auto resp = cli.request("POST", "/oak/report",
                            {{"Host", "busy.com"}, {"Cookie", cookie}}, body);
    if (!resp) {
      ++out->err;
      connected = false;
      continue;
    }
    if (record_lat) out->lat.push_back(now_s() - sched);
    if (resp->status >= 200 && resp->status < 300) {
      ++out->ok;
    } else if (resp->status == 503) {
      ++out->shed;
    } else {
      ++out->err;
      if (resp->status >= 500) ++out->s5xx;
    }
    if (!resp->keep_alive) connected = false;
  }
}

RunStats run_load(std::uint16_t port, const std::string& body, double rate,
                  double duration_s, std::size_t threads,
                  bool record_lat = true) {
  std::vector<RunStats> per(threads);
  std::vector<std::string> cookies(threads);
  std::vector<std::thread> ts;
  const double until = now_s() + duration_s;
  const double per_rate = rate > 0 ? rate / double(threads) : 0.0;
  const double start = now_s();
  for (std::size_t i = 0; i < threads; ++i) {
    cookies[i] =
        std::string(http::kOakUserCookie) + "=bench" + std::to_string(i);
    ts.emplace_back(client_main, port, std::cref(body), std::cref(cookies[i]),
                    per_rate, until, record_lat, &per[i]);
  }
  for (auto& t : ts) t.join();
  RunStats total;
  total.duration_s = now_s() - start;
  for (RunStats& p : per) {
    total.sent += p.sent;
    total.ok += p.ok;
    total.shed += p.shed;
    total.err += p.err;
    total.s5xx += p.s5xx;
    total.lat.insert(total.lat.end(), p.lat.begin(), p.lat.end());
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 1;
  if (argc > 1) scale = std::size_t(std::max(1, std::atoi(argv[1])));

  Env env;
  core::ShardedOakServer oak(env.universe, "busy.com", {}, 4);
  wire::WireConfig wc;
  wire::Server srv(oak, wc);
  srv.start();
  const std::uint16_t port = srv.port();

  const std::size_t kThreads = 16;
  const double peak_s = std::max(2.0 / double(scale), 1.0);
  const double point_s = std::max(3.0 / double(scale), 1.0);
  const double soak_s = std::max(20.0 / double(scale), 4.0);

  // --- Peak: closed-loop burst. The number itself only anchors the sweep.
  std::printf("load_wire: measuring closed-loop peak (%.1fs)...\n", peak_s);
  RunStats peak = run_load(port, env.report, 0.0, peak_s, kThreads);
  const double peak_rps = std::max(peak.goodput(), 100.0);
  std::printf("  peak goodput %.0f req/s (%llu ok, %llu shed, %llu err)\n",
              peak_rps, (unsigned long long)peak.ok,
              (unsigned long long)peak.shed, (unsigned long long)peak.err);

  // --- Open-loop sweep.
  const double fracs[] = {0.25, 0.5, 1.0, 2.0};
  struct Point {
    double frac, rate, goodput, shed_frac, p50, p99;
    std::uint64_t sent, ok, shed, err, s5xx;
  };
  std::vector<Point> points;
  for (double f : fracs) {
    const double rate = f * peak_rps;
    RunStats s = run_load(port, env.report, rate, point_s, kThreads);
    Point p{f,      rate,
            s.goodput(),
            s.sent ? double(s.shed) / double(s.sent) : 0.0,
            s.pct(0.50),
            s.pct(0.99),
            s.sent, s.ok, s.shed, s.err, s.s5xx};
    points.push_back(p);
    std::printf(
        "  %.2fx: offered %.0f/s -> goodput %.0f/s, shed %.1f%%, "
        "p50 %.1fms p99 %.1fms (%llu err, %llu 5xx)\n",
        f, rate, p.goodput, 100 * p.shed_frac, 1e3 * p.p50, 1e3 * p.p99,
        (unsigned long long)s.err, (unsigned long long)s.s5xx);
  }

  double best_goodput = 0.0;
  for (const Point& p : points) best_goodput = std::max(best_goodput, p.goodput);
  const Point& half = points[1];      // 0.5x
  const Point& overload = points.back();  // 2.0x

  // --- Soak at 0.5x: steady-state RSS drift. The baseline is taken after a
  // warmup run so first-touch allocations (arena blocks, queue capacities,
  // allocator fragmentation plateau) don't masquerade as per-request drift;
  // the soak itself records no latency samples so the harness adds nothing
  // to the measurement. Warmup runs in slices until RSS actually plateaus
  // (two consecutive samples within 1%) rather than for a fixed time: a
  // short fixed warmup can sample the baseline mid-plateau and the
  // remaining first-touch growth reads as several-MB "drift".
  const double warmup_slice_s = 2.0;
  const double warmup_min_s = 4.0;
  const double warmup_cap_s = 24.0;
  std::printf("load_wire: soak warmup at 0.5x until RSS plateaus...\n");
  double warmed_s = 0.0;
  std::size_t rss_prev = 0;
  std::size_t rss_before = 0;
  while (true) {
    run_load(port, env.report, 0.5 * peak_rps, warmup_slice_s, kThreads,
             false);
    warmed_s += warmup_slice_s;
    rss_before = rss_bytes();
    const bool settled =
        rss_prev != 0 && double(rss_before) <= double(rss_prev) * 1.01;
    if ((warmed_s >= warmup_min_s && settled) || warmed_s >= warmup_cap_s)
      break;
    rss_prev = rss_before;
  }
  std::printf("  warmup settled after %.0fs (rss %.1f MB)\n", warmed_s,
              rss_before / 1048576.0);
  std::printf("load_wire: soak at 0.5x for %.0fs (rss %.1f MB)...\n", soak_s,
              rss_before / 1048576.0);
  RunStats soak =
      run_load(port, env.report, 0.5 * peak_rps, soak_s, kThreads, false);
  const std::size_t rss_after = rss_bytes();
  const double rss_drift =
      rss_before ? double(rss_after) / double(rss_before) : 1.0;
  std::printf("  soak: %llu ok, %llu err; rss %.1f -> %.1f MB (%.3fx)\n",
              (unsigned long long)soak.ok, (unsigned long long)soak.err,
              rss_before / 1048576.0, rss_after / 1048576.0, rss_drift);

  srv.stop();
  const auto snap = srv.metrics_snapshot();

  const std::uint64_t total_5xx =
      peak.s5xx + overload.s5xx + half.s5xx + points[0].s5xx +
      points[2].s5xx + soak.s5xx;
  const bool gate_goodput = overload.goodput >= 0.8 * best_goodput;
  const bool gate_p99 = half.p99 <= 0.25;  // 250 ms, uncongested regime
  const bool gate_rss = rss_drift <= 1.1;
  const bool gate_5xx = total_5xx == 0 &&
                        snap.counter("oak_wire_responses_5xx_total") == 0;
  const bool pass = gate_goodput && gate_p99 && gate_rss && gate_5xx;

  // --- Merge into BENCH_wire.json.
  util::JsonObject root;
  {
    std::ifstream in("BENCH_wire.json");
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      try {
        root = util::Json::parse(ss.str()).as_object();
      } catch (const std::exception&) {
        root.clear();
      }
    }
  }
  util::JsonObject load;
  load["scale"] = scale;
  load["client_threads"] = kThreads;
  load["peak_goodput_rps"] = peak_rps;
  util::JsonArray sweep;
  for (const Point& p : points) {
    util::JsonObject o;
    o["offered_x_peak"] = p.frac;
    o["offered_rps"] = p.rate;
    o["goodput_rps"] = p.goodput;
    o["shed_fraction"] = p.shed_frac;
    o["p50_ms"] = 1e3 * p.p50;
    o["p99_ms"] = 1e3 * p.p99;
    o["sent"] = p.sent;
    o["ok"] = p.ok;
    o["shed"] = p.shed;
    o["errors"] = p.err;
    sweep.push_back(util::Json(std::move(o)));
  }
  load["sweep"] = std::move(sweep);
  auto gate = [](bool ok, double value, double required,
                 const std::string& direction) {
    util::JsonObject g;
    g["value"] = value;
    g["required"] = required;
    g["direction"] = direction;
    g["status"] = std::string(ok ? "pass" : "fail");
    return util::Json(std::move(g));
  };
  util::JsonObject lgates;
  lgates["overload_goodput_vs_best"] =
      gate(gate_goodput,
           best_goodput > 0 ? overload.goodput / best_goodput : 0.0, 0.8,
           "at_least");
  lgates["p99_at_half_load_ms"] = gate(gate_p99, 1e3 * half.p99, 250.0,
                                       "at_most");
  lgates["responses_5xx"] = gate(gate_5xx, double(total_5xx), 0.0, "at_most");
  load["gates"] = std::move(lgates);
  load["status"] =
      std::string(gate_goodput && gate_p99 && gate_5xx ? "pass" : "fail");
  root["load"] = std::move(load);

  util::JsonObject soak_o;
  soak_o["duration_s"] = soak.duration_s;
  soak_o["offered_rps"] = 0.5 * peak_rps;
  soak_o["goodput_rps"] = soak.goodput();
  soak_o["requests_ok"] = soak.ok;
  soak_o["rss_before_bytes"] = rss_before;
  soak_o["rss_after_bytes"] = rss_after;
  soak_o["rss_drift"] = rss_drift;
  util::JsonObject sgates;
  sgates["rss_drift"] = gate(gate_rss, rss_drift, 1.1, "at_most");
  soak_o["gates"] = std::move(sgates);
  soak_o["status"] = std::string(gate_rss ? "pass" : "fail");
  root["soak"] = std::move(soak_o);

  // --- Multiloop matrix: loops=1 vs loops=N over one absolute rate grid.
  // Below 4 cores the comparison is physically meaningless (the loops
  // timeshare one core), so the gates are recorded as skipped rather than
  // silently passing or flakily failing.
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t nloops = std::min<std::size_t>(cores, 4);  // 4 shards
  bool ml_pass = true;
  util::JsonObject ml;
  ml["cores"] = cores;
  ml["loops_n"] = nloops;
  auto skipped_gate = [] {
    util::JsonObject g;
    g["status"] = std::string("skipped");
    return util::Json(std::move(g));
  };
  if (cores < 4) {
    std::printf("load_wire: multiloop matrix skipped (%zu cores < 4)\n",
                cores);
    util::JsonObject mgates;
    mgates["peak_goodput_ratio"] = skipped_gate();
    mgates["knee_moves_right"] = skipped_gate();
    mgates["responses_5xx"] = skipped_gate();
    ml["gates"] = std::move(mgates);
    ml["status"] = std::string("skipped");
  } else {
    struct MlRun {
      std::size_t loops = 0;
      double peak = 0.0;
      double knee_rps = 0.0;  // 0 = no knee inside the sweep
      std::uint64_t s5xx = 0;
      util::JsonArray pts;
    };
    const double kneeslice[] = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
    double grid_anchor = 0.0;  // loops=1 peak, measured first
    auto measure = [&](std::size_t loops) {
      MlRun run;
      run.loops = loops;
      wire::WireConfig mwc;
      mwc.loops = loops;
      wire::Server msrv(oak, mwc);
      msrv.start();
      std::printf("load_wire: multiloop loops=%zu peak (%.1fs)...\n", loops,
                  peak_s);
      RunStats mp = run_load(msrv.port(), env.report, 0.0, peak_s, kThreads);
      run.peak = mp.goodput();
      run.s5xx += mp.s5xx;
      if (grid_anchor == 0.0) grid_anchor = std::max(run.peak, 100.0);
      for (double f : kneeslice) {
        const double rate = f * grid_anchor;
        RunStats s =
            run_load(msrv.port(), env.report, rate, point_s, kThreads);
        const double p99 = s.pct(0.99);
        run.s5xx += s.s5xx;
        if (run.knee_rps == 0.0 && p99 > 0.25) run.knee_rps = rate;
        util::JsonObject o;
        o["offered_rps"] = rate;
        o["goodput_rps"] = s.goodput();
        o["p99_ms"] = 1e3 * p99;
        o["shed_fraction"] =
            s.sent ? double(s.shed) / double(s.sent) : 0.0;
        run.pts.push_back(util::Json(std::move(o)));
        std::printf("  loops=%zu @ %.0f/s: goodput %.0f/s p99 %.1fms\n",
                    loops, rate, s.goodput(), 1e3 * p99);
      }
      msrv.stop();
      return run;
    };
    MlRun one = measure(1);
    MlRun many = measure(nloops);

    const double ratio = one.peak > 0 ? many.peak / one.peak : 0.0;
    const bool gate_ratio = ratio >= 1.3;
    // Knee: first offered rate where p99 exceeds 250 ms; 0 means the knee
    // is beyond the sweep. Moving right = loops=N keeps p99 in budget at
    // rates where loops=1 already lost it.
    const bool gate_knee =
        many.knee_rps == 0.0 ||
        (one.knee_rps != 0.0 && many.knee_rps > one.knee_rps);
    const bool gate_ml_5xx = one.s5xx + many.s5xx == 0;
    ml_pass = gate_ratio && gate_knee && gate_ml_5xx;

    util::JsonArray runs;
    for (MlRun* r : {&one, &many}) {
      util::JsonObject o;
      o["loops"] = r->loops;
      o["peak_goodput_rps"] = r->peak;
      o["knee_found"] = r->knee_rps != 0.0;
      o["knee_rps"] = r->knee_rps;
      o["sweep"] = std::move(r->pts);
      runs.push_back(util::Json(std::move(o)));
    }
    ml["runs"] = std::move(runs);
    util::JsonObject mgates;
    mgates["peak_goodput_ratio"] = gate(gate_ratio, ratio, 1.3, "at_least");
    {
      util::JsonObject g;
      g["loops1_knee_rps"] = one.knee_rps;
      g["loopsN_knee_rps"] = many.knee_rps;
      g["status"] = std::string(gate_knee ? "pass" : "fail");
      mgates["knee_moves_right"] = util::Json(std::move(g));
    }
    mgates["responses_5xx"] =
        gate(gate_ml_5xx, double(one.s5xx + many.s5xx), 0.0, "at_most");
    ml["gates"] = std::move(mgates);
    ml["status"] = std::string(ml_pass ? "pass" : "fail");
    std::printf("gate multiloop peak ratio: %.2fx (need >= 1.30)  [%s]\n",
                ratio, gate_ratio ? "PASS" : "FAIL");
    std::printf(
        "gate multiloop knee: loops=1 %.0f/s -> loops=%zu %s  [%s]\n",
        one.knee_rps, nloops,
        many.knee_rps == 0.0 ? "beyond sweep"
                             : std::to_string(int(many.knee_rps)).c_str(),
        gate_knee ? "PASS" : "FAIL");
  }
  root["multiloop"] = std::move(ml);
  const bool pass_all = pass && ml_pass;

  std::ofstream("BENCH_wire.json")
      << util::Json(root).dump_pretty(2) << "\n";

  std::printf("gate overload_goodput: %.2f of best (need >= 0.80)  [%s]\n",
              best_goodput > 0 ? overload.goodput / best_goodput : 0.0,
              gate_goodput ? "PASS" : "FAIL");
  std::printf("gate p99@0.5x: %.1f ms (need <= 250)  [%s]\n", 1e3 * half.p99,
              gate_p99 ? "PASS" : "FAIL");
  std::printf("gate soak rss drift: %.3fx (need <= 1.10)  [%s]\n", rss_drift,
              gate_rss ? "PASS" : "FAIL");
  std::printf("gate 5xx: %llu (need 0)  [%s]\n",
              (unsigned long long)total_5xx, gate_5xx ? "PASS" : "FAIL");
  std::printf("load_wire: %s (wrote BENCH_wire.json)\n",
              pass_all ? "PASS" : "FAIL");
  return pass_all ? 0 : 1;
}
