// Chaos sweep: Oak-enabled vs vanilla fleets under injected faults.
//
// Four runs over the ChaosScenario, all deterministic in the seed:
//
//   outage-refused    10% of third parties refuse connections for 2h;
//   outage-stall      same outage, but transfers hang until the browser
//                     timeout fires (the expensive failure mode);
//   outage-truncate   same outage, transfers reset mid-body;
//   origin-flap       the *origin* flaps (30% duty); providers stay
//                     healthy. Measures report-upload loss: reports die
//                     with the origin, never retried off the critical path.
//
// Per outage run: median PLT degradation (outage window vs pre-onset
// baseline) for both fleets, and Oak's time-to-mitigation (first rule
// activation after onset). The origin-flap run reports the report-loss
// rate during the flap window.
//
// Emits BENCH_chaos.json. Acceptance: on every provider-outage run the Oak
// fleet's median PLT degradation is strictly smaller than the vanilla
// fleet's, and mitigation happened. The simulated outcome of two same-seed
// invocations is identical (pinned by tests/chaos_test.cc at scenario
// level); only each run's "metrics" exposition varies, since its stage
// histograms record wall-clock timings.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "core/decision_log.h"
#include "obs/metrics.h"
#include "util/json.h"
#include "util/stats.h"
#include "workload/chaos.h"
#include "workload/harness.h"
#include "workload/vantage.h"

namespace {

using namespace oak;

struct RunSpec {
  const char* name;
  net::FaultType fault;
  double flap_period_s;
  double flap_duty;
  bool fault_origin;
  double outage_fraction;
};

struct RunResult {
  util::JsonObject json;
  double oak_degradation = 0.0;
  double vanilla_degradation = 0.0;
  double time_to_mitigation_s = -1.0;
  double report_loss_rate = 0.0;
  bool provider_outage = false;
};

RunResult run_one(const RunSpec& spec) {
  workload::ChaosScenario::Options opt;
  opt.fault = spec.fault;
  opt.flap_period_s = spec.flap_period_s;
  opt.flap_duty = spec.flap_duty;
  opt.fault_origin = spec.fault_origin;
  opt.outage_fraction = spec.outage_fraction;
  workload::ChaosScenario scenario(opt);

  auto vps =
      workload::make_vantage_points(scenario.universe().network(), 16);
  // One client-side registry per run: browser PLT/retry/report-loss
  // instruments plus the network's fetch/fault counters, exported alongside
  // the server's ingest metrics in the BENCH file.
  auto client_metrics = std::make_unique<obs::MetricsRegistry>();
  scenario.universe().network().set_metrics(client_metrics.get());
  browser::BrowserConfig bc;
  bc.use_cache = false;
  // A tight budget keeps stalled transfers from dominating the sweep while
  // still dwarfing any healthy fetch.
  bc.fetch_timeout_s = 5.0;
  bc.metrics = client_metrics.get();

  struct Pair {
    std::unique_ptr<browser::Browser> oak, def;
  };
  std::vector<Pair> fleet;
  for (const auto& vp : vps) {
    Pair p;
    p.oak = std::make_unique<browser::Browser>(scenario.universe(),
                                               vp.client, bc);
    p.def = std::make_unique<browser::Browser>(scenario.universe(),
                                               vp.client, bc);
    fleet.push_back(std::move(p));
  }

  const double onset = opt.onset_s;
  const double offset_end = opt.onset_s + opt.duration_s;
  constexpr double kInterval = 300.0;
  const double horizon = offset_end + 1800.0;

  std::vector<double> oak_base, oak_outage, def_base, def_outage;
  std::size_t outage_loads = 0, outage_lost = 0;
  std::size_t base_loads = 0, base_lost = 0;
  std::size_t oak_failed_objects = 0, def_failed_objects = 0;

  for (double t = 0.0; t < horizon; t += kInterval) {
    const bool in_outage = t >= onset && t < offset_end;
    const bool in_base = t < onset;
    for (auto& p : fleet) {
      browser::LoadResult ro = p.oak->load(scenario.oak_site_url(), t);
      browser::LoadResult rd = p.def->load(scenario.default_site_url(), t);
      oak_failed_objects += ro.failed_objects;
      def_failed_objects += rd.failed_objects;
      if (in_outage) {
        oak_outage.push_back(ro.plt_s);
        def_outage.push_back(rd.plt_s);
        ++outage_loads;
        if (!ro.report_delivered) ++outage_lost;
      } else if (in_base) {
        oak_base.push_back(ro.plt_s);
        def_base.push_back(rd.plt_s);
        ++base_loads;
        if (!ro.report_delivered) ++base_lost;
      }
    }
  }

  RunResult r;
  r.provider_outage = !scenario.faulted_providers().empty();
  const double oak_base_med = util::median_inplace(oak_base);
  const double def_base_med = util::median_inplace(def_base);
  const double oak_out_med = util::median_inplace(oak_outage);
  const double def_out_med = util::median_inplace(def_outage);
  r.oak_degradation = oak_base_med > 0.0 ? oak_out_med / oak_base_med : 0.0;
  r.vanilla_degradation =
      def_base_med > 0.0 ? def_out_med / def_base_med : 0.0;

  for (const auto& d : scenario.oak().decision_log().entries()) {
    if (d.type == core::DecisionType::kActivate && d.time >= onset) {
      r.time_to_mitigation_s = d.time - onset;
      break;
    }
  }
  r.report_loss_rate =
      outage_loads == 0
          ? 0.0
          : static_cast<double>(outage_lost) /
                static_cast<double>(outage_loads);

  util::JsonObject j;
  j["name"] = std::string(spec.name);
  j["fault"] = std::string(net::to_string(spec.fault));
  j["faulted_providers"] =
      static_cast<std::int64_t>(scenario.faulted_providers().size());
  j["oak_plt_baseline_median_s"] = oak_base_med;
  j["oak_plt_outage_median_s"] = oak_out_med;
  j["vanilla_plt_baseline_median_s"] = def_base_med;
  j["vanilla_plt_outage_median_s"] = def_out_med;
  j["oak_degradation"] = r.oak_degradation;
  j["vanilla_degradation"] = r.vanilla_degradation;
  j["time_to_mitigation_s"] = r.time_to_mitigation_s;
  j["oak_failed_objects"] = static_cast<std::int64_t>(oak_failed_objects);
  j["vanilla_failed_objects"] =
      static_cast<std::int64_t>(def_failed_objects);
  j["report_loss_rate_baseline"] =
      base_loads == 0 ? 0.0
                      : static_cast<double>(base_lost) /
                            static_cast<double>(base_loads);
  j["report_loss_rate_outage"] = r.report_loss_rate;
  // Client-plane (browser PLT/retries/report-loss, net fetch/fault counters)
  // and server-plane (ingest stages, activations) metrics in one exposition.
  obs::MetricsSnapshot metrics = client_metrics->snapshot();
  metrics.merge(scenario.oak().metrics_snapshot());
  j["metrics"] = metrics.to_json();
  scenario.universe().network().set_metrics(nullptr);
  r.json = std::move(j);
  return r;
}

}  // namespace

int main() {
  workload::print_banner("Chaos sweep",
                         "Oak vs vanilla under injected faults");

  const RunSpec specs[] = {
      {"outage-refused", net::FaultType::kConnectRefused, 0.0, 1.0, false,
       0.1},
      {"outage-stall", net::FaultType::kStall, 0.0, 1.0, false, 0.1},
      {"outage-truncate", net::FaultType::kTruncate, 0.0, 1.0, false, 0.1},
      {"origin-flap", net::FaultType::kConnectRefused, 900.0, 0.3, true,
       0.0},
  };

  util::JsonArray runs;
  bool degradation_pass = true;
  bool mitigated_pass = true;
  double origin_flap_loss = 0.0;
  for (const RunSpec& spec : specs) {
    RunResult r = run_one(spec);
    std::printf("%-16s oak x%.3f  vanilla x%.3f  mitigation %.0fs  "
                "report-loss %.2f\n",
                spec.name, r.oak_degradation, r.vanilla_degradation,
                r.time_to_mitigation_s, r.report_loss_rate);
    if (r.provider_outage) {
      degradation_pass =
          degradation_pass && r.oak_degradation < r.vanilla_degradation;
      mitigated_pass = mitigated_pass && r.time_to_mitigation_s >= 0.0;
    } else {
      origin_flap_loss = r.report_loss_rate;
    }
    runs.emplace_back(std::move(r.json));
  }

  util::JsonObject root;
  root["bench"] = std::string("chaos_sweep");
  root["runs"] = std::move(runs);
  util::JsonObject acceptance;
  acceptance["oak_degrades_less_than_vanilla"] = degradation_pass;
  acceptance["mitigation_observed"] = mitigated_pass;
  acceptance["origin_flap_report_loss_rate"] = origin_flap_loss;
  acceptance["origin_flap_reports_lost"] = origin_flap_loss > 0.0;
  const bool pass =
      degradation_pass && mitigated_pass && origin_flap_loss > 0.0;
  acceptance["pass"] = pass;
  root["acceptance"] = std::move(acceptance);

  std::ofstream("BENCH_chaos.json")
      << util::Json(std::move(root)).dump_pretty(2) << "\n";
  std::printf("\nacceptance: %s\nwrote BENCH_chaos.json\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
