// Figure 12 (+ Table 2): fraction of correct rule choices Oak made on the
// replicated existing sites, for the four condition groups H1-Close, H1-Far,
// H2-Close and H2-Far.
//
// Ground truth per (site, client, rule): compare the default-condition
// object timings against the forced-condition timings; whichever is faster
// for the majority of the rule's objects defines the correct setting
// (enable/disable). Oak's *choices* are its activation decisions — each
// transition of the rule's state (off->on = choose the alternate,
// on->off = revert) is one choice, correct when it moves toward the ground
// truth. Only rules that were activated at least once count — a rule that
// never fires leaves the page identical to the default (paper §5.3).
//
// Paper shape: ~80% of H1 choices fully correct, ~74% for H2 (more rules,
// more varied results); errors concentrate in Oak's experiential first
// loads ("Oak must use a server before it has information about it").
#include <cstdio>

#include "util/cdf.h"
#include "workload/existing_experiment.h"
#include "workload/harness.h"

namespace {

enum class Truth { kEnable, kDisable, kIndistinguishable };

// Compare forced (alternative) against default timings over the rule's
// objects. An object only counts as a win when the margin is decisive
// (>10%); rules whose two conditions are statistically identical — e.g.
// domains only reachable through dynamic scripts, where the rewrite is a
// textual no-op — have no wrong answer ("the difference is within normal
// variations", §5.3).
Truth ground_truth(const oak::workload::RuleOutcome& o) {
  int alt_wins = 0, def_wins = 0;
  for (const auto& [path, def] : o.sums[0]) {
    auto it = o.sums[1].find(path);
    if (it == o.sums[1].end() || def.second == 0 || it->second.second == 0) {
      continue;
    }
    const double def_mean = def.first / def.second;
    const double alt_mean = it->second.first / it->second.second;
    if (alt_mean < def_mean * 0.9) {
      ++alt_wins;
    } else if (def_mean < alt_mean * 0.9) {
      ++def_wins;
    }
  }
  if (alt_wins == def_wins) return Truth::kIndistinguishable;
  return alt_wins > def_wins ? Truth::kEnable : Truth::kDisable;
}

}  // namespace

int main() {
  using namespace oak;
  workload::print_banner("Figure 12", "fraction of correct rule choices");

  workload::ExistingExperimentOptions opt;
  auto result = workload::run_existing_experiment(opt);

  workload::print_table("Table 2: selected sites",
                        {"Site", "Group", "ExternalHosts"},
                        result.table2_rows);

  util::Cdf groups[4];  // H1-Close, H1-Far, H2-Close, H2-Far
  const char* names[4] = {"H1-Close", "H1-Far", "H2-Close", "H2-Far"};
  for (const auto& o : result.outcomes) {
    if (!o.activated_ever || o.active_per_load.empty()) continue;
    const Truth truth = ground_truth(o);
    std::size_t choices = 0, correct = 0;
    bool prev = false;  // rules start deactivated
    for (bool active : o.active_per_load) {
      if (active != prev) {
        ++choices;
        // off->on chooses the alternate; on->off reverts to the default.
        const bool chose_alternate = active;
        if (truth == Truth::kIndistinguishable ||
            chose_alternate == (truth == Truth::kEnable)) {
          ++correct;
        }
      }
      prev = active;
    }
    if (choices == 0) continue;
    groups[(o.h2 ? 2 : 0) + (o.close ? 0 : 1)].add(double(correct) /
                                                   double(choices));
  }
  for (int g = 0; g < 4; ++g) {
    workload::print_cdf(names[g], groups[g]);
    workload::print_stat(std::string(names[g]) + " fully-correct fraction",
                         groups[g].fraction_at_or_above(1.0));
  }
  return 0;
}
