// Figure 1: CDF of the fraction of objects with non-origin hostnames across
// the Alexa Top 500 (paper §2). Paper shape: median ~= 0.75.
//
// Sub-domains of the origin are NOT external (the corpus generator serves a
// share of origin objects from "static.<site>"); the fraction counts
// objects, not hosts.
#include <cstdio>

#include "page/corpus.h"
#include "util/cdf.h"
#include "workload/harness.h"

int main() {
  using namespace oak;
  workload::print_banner("Figure 1",
                         "fraction of non-origin objects per site");
  page::CorpusConfig cfg;
  cfg.seed = 42;
  cfg.num_sites = 500;
  page::Corpus corpus(cfg);

  util::Cdf cdf;
  for (const auto& site : corpus.sites()) {
    const double ext = static_cast<double>(site.external_object_count());
    const double total = ext + static_cast<double>(site.origin_object_count);
    if (total > 0) cdf.add(ext / total);
  }
  workload::print_cdf("external-fraction", cdf);
  workload::print_stat("median external fraction (paper ~0.75)",
                       cdf.quantile(0.5));
  return 0;
}
