// Ablation: transport model — HTTP/1.1 connection pools vs HTTP/2
// multiplexing (DESIGN.md §5; the paper's §3 notes Oak "is entirely
// compatible with such improvements" to the transport).
//
// Loads a corpus slice under both transports and compares (a) page load
// times and (b) Oak's violator detection: the *report contents* change
// (connection setup amortizes differently) but the relative MAD criterion
// should keep flagging the same sick servers — Oak is transport-agnostic.
#include <cstdio>
#include <set>

#include "browser/browser.h"
#include "core/violator.h"
#include "page/corpus.h"
#include "util/cdf.h"
#include "workload/harness.h"
#include "workload/vantage.h"

int main() {
  using namespace oak;
  workload::print_banner("Ablation", "HTTP/1.1 pools vs HTTP/2 multiplexing");
  page::CorpusConfig cfg;
  cfg.seed = 42;
  cfg.num_sites = 250;
  page::Corpus corpus(cfg);
  auto vps = workload::make_vantage_points(corpus.universe().network(), 5);

  util::Cdf plt_h1, plt_h2, speedup;
  std::size_t loads = 0, same_violators = 0, h1_total = 0, h2_total = 0;
  for (const auto& vp : vps) {
    browser::BrowserConfig c1;
    c1.use_cache = false;
    c1.send_report = false;
    browser::BrowserConfig c2 = c1;
    c2.use_h2 = true;
    browser::Browser b1(corpus.universe(), vp.client, c1);
    browser::Browser b2(corpus.universe(), vp.client, c2);
    for (std::size_t s = 0; s < corpus.sites().size(); ++s) {
      const double t = 8 * 3600.0 + double(s);
      auto l1 = b1.load(corpus.sites()[s].index_url(), t);
      auto l2 = b2.load(corpus.sites()[s].index_url(), t);
      plt_h1.add(l1.plt_s);
      plt_h2.add(l2.plt_s);
      if (l2.plt_s > 0) speedup.add(l1.plt_s / l2.plt_s);
      ++loads;

      auto d1 = core::detect_violators(l1.report);
      auto d2 = core::detect_violators(l2.report);
      std::set<std::string> v1, v2;
      for (const auto& v : d1.violators) v1.insert(v.ip);
      for (const auto& v : d2.violators) v2.insert(v.ip);
      h1_total += v1.size();
      h2_total += v2.size();
      for (const auto& ip : v1) {
        if (v2.count(ip)) ++same_violators;
      }
    }
  }
  workload::print_cdf("plt-h1", plt_h1);
  workload::print_cdf("plt-h2", plt_h2);
  workload::print_stat("median PLT h1 (s)", plt_h1.quantile(0.5));
  workload::print_stat("median PLT h2 (s)", plt_h2.quantile(0.5));
  workload::print_stat("median h1/h2 speedup", speedup.quantile(0.5));
  workload::print_stat("violators per load h1",
                       double(h1_total) / double(loads));
  workload::print_stat("violators per load h2",
                       double(h2_total) / double(loads));
  workload::print_stat(
      "h1 violators also flagged under h2 (agreement)",
      h1_total == 0 ? 1.0 : double(same_violators) / double(h1_total));
  return 0;
}
