// Figure 2 + Table 1: the §2 outlier survey.
//
// Fig. 2 — CDF of the number of performance outliers per site, observed by
// loading each of the 500 corpus sites from 25 vantage points and running
// Oak's MAD-based detection on every report. A site's count is the number of
// distinct violating servers seen across its vantage points.
// Paper shape: >60% of sites have >=1 outlier; ~20% have >=4; tail ~14.
//
// Table 1 — the most frequently seen outlier domains with their categories;
// ads / analytics / social dominate.
#include <cstdio>
#include <map>
#include <set>

#include "page/corpus.h"
#include "util/cdf.h"
#include "workload/harness.h"
#include "workload/survey.h"

int main() {
  using namespace oak;
  workload::print_banner("Figure 2", "outliers per site from 25 vantage points");
  page::CorpusConfig cfg;
  cfg.seed = 42;
  cfg.num_sites = 500;
  page::Corpus corpus(cfg);
  auto vps = workload::make_vantage_points(corpus.universe().network(), 25);

  workload::SurveyOptions opt;
  opt.start_time = 12 * 3600.0;  // mid-day UTC
  auto loads = workload::run_outlier_survey(corpus, vps, opt);

  // One sample per (site, vantage point) measurement: the number of
  // violating servers that load observed. (The union across vantage points
  // would count every client-specific problem once per site and saturate
  // the distribution; the paper's counts are consistent with per-
  // measurement statistics.)
  std::map<std::string, std::size_t> domain_freq;
  util::Cdf cdf;
  for (const auto& l : loads) {
    cdf.add(double(l.detection.violators.size()));
    for (const auto& v : l.detection.violators) {
      for (const auto& d : v.domains) {
        if (corpus.provider_of(d) != nullptr) domain_freq[d]++;
      }
    }
  }
  workload::print_cdf("outliers-per-site", cdf);
  workload::print_stat("fraction of sites with >=1 outlier (paper >0.6)",
                       cdf.fraction_at_or_above(1.0));
  workload::print_stat("fraction of sites with >=4 outliers (paper ~0.2)",
                       cdf.fraction_at_or_above(4.0));

  // Table 1.
  std::vector<std::pair<std::size_t, std::string>> ranked;
  for (const auto& [d, n] : domain_freq) ranked.push_back({n, d});
  std::sort(ranked.rbegin(), ranked.rend());
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < ranked.size() && i < 10; ++i) {
    rows.push_back({ranked[i].second,
                    page::to_string(corpus.category_of(ranked[i].second)),
                    std::to_string(ranked[i].first)});
  }
  workload::print_table("Table 1: most frequent outliers",
                        {"Site", "Category", "Occurrences"}, rows);
  return 0;
}
