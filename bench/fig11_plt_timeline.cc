// Figure 11: average PLT ratio (default / Oak) over 3 days on the §5.2
// benchmark site. The two degraded default servers collapse during their
// local daytime; Oak, having switched the affected sets to healthy
// alternates, holds steady.
//
// Paper shape: ratio near 1 at night, rising past 10x at the daily peaks,
// with the same diurnal period every day.
#include <cstdio>

#include "browser/browser.h"
#include "util/stats.h"
#include "workload/benchmark_site.h"
#include "workload/harness.h"
#include "workload/vantage.h"

int main() {
  using namespace oak;
  workload::print_banner("Figure 11", "avg PLT ratio over 3 days");

  workload::BenchmarkSiteScenario scenario;
  auto vps =
      workload::make_vantage_points(scenario.universe().network(), 25);

  browser::BrowserConfig bc;
  bc.use_cache = false;

  constexpr double kInterval = 1800.0;
  constexpr int kLoads = 144;  // 72 h

  struct Pair {
    std::unique_ptr<browser::Browser> oak, def;
  };
  std::vector<Pair> browsers;
  for (const auto& vp : vps) {
    Pair p;
    p.oak =
        std::make_unique<browser::Browser>(scenario.universe(), vp.client, bc);
    p.def =
        std::make_unique<browser::Browser>(scenario.universe(), vp.client, bc);
    browsers.push_back(std::move(p));
  }

  std::vector<std::pair<double, double>> series, spread;
  for (int i = 0; i < kLoads; ++i) {
    const double t = i * kInterval;
    std::vector<double> ratios;
    for (auto& p : browsers) {
      double plt_oak = p.oak->load(scenario.oak_site_url(), t).plt_s;
      double plt_def = p.def->load(scenario.default_site_url(), t).plt_s;
      ratios.push_back(plt_def / plt_oak);
    }
    series.push_back({t / 3600.0, util::mean(ratios)});
    spread.push_back({t / 3600.0, util::stddev(ratios)});
  }
  workload::print_series("plt-ratio", series, "hour", "avg default/oak PLT");
  workload::print_series("plt-ratio-stddev", spread, "hour", "stddev");

  double peak = 0;
  for (const auto& [h, r] : series) peak = std::max(peak, r);
  workload::print_stat("peak daily ratio (paper >10x)", peak);
  return 0;
}
