// Policy ablation: the engine's two hard promises, then the what-if sweep.
//
// Gate 1 — seed parity. One chaos run under the default policy with
// context recording on. The live decision stream (minus kServeModified,
// a serving-plane event) must be byte-identical to
//   (a) an embedded oracle that transcribes the pre-engine seed policy
//       flow over the recorded contexts, and
//   (b) core::PolicyReplayer under the recorded configuration,
// and two replayer passes must dump identically (determinism).
//
// Gate 2 — racing convergence. A chaos run with racing mirrors: every
// rule lists a chronically slow mirror as alternative 0 and the fast one
// as alternative 1, so linear progression settles on the slow host. Under
// the "racing" strategy at least one race must decide, every decided race
// must pick the fast mirror (winner alternative 1), and the winner
// cohort's mean PLT must not exceed the loser's.
//
// Sweep — each recorded run is then re-decided offline under the three
// built-in strategies (paper / racing / hysteresis) via replay_and_score;
// the score rows land in BENCH_policy.json next to the gates.
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "core/decision_log.h"
#include "core/policy.h"
#include "core/policy_replay.h"
#include "util/json.h"
#include "workload/chaos.h"
#include "workload/harness.h"
#include "workload/vantage.h"

namespace {

using namespace oak;

// --- Seed-policy oracle ---------------------------------------------------
//
// A line-for-line transcription of the policy flow as it stood before the
// PolicyEngine refactor: min-violation threshold, linear/round-robin
// alternative progression, min-distance history, reactivation ban. Driven
// by recorded contexts; exists only to pin "default engine == seed".
class SeedOracle {
 public:
  SeedOracle(std::vector<core::Rule> rules, const core::Policy& policy,
             core::HistoryMode history)
      : rules_(std::move(rules)), policy_(policy), history_(history) {}

  void step(const core::ReportContext& ctx) {
    core::UserProfile& user = users_[ctx.user_id];
    if (user.user_id.empty()) user.user_id = ctx.user_id;
    if (ctx.serve_only) {
      expire(user, ctx.time);
      return;
    }
    expire(user, ctx.time);
    review(user, ctx);
    consider(user, ctx);
  }

  const core::DecisionLog& log() const { return log_; }

 private:
  const core::Rule* rule(int id) const {
    for (const auto& r : rules_) {
      if (r.id == id) return &r;
    }
    return nullptr;
  }

  void expire(core::UserProfile& user, double now) {
    for (auto it = user.active.begin(); it != user.active.end();) {
      if (it->second.expires_at > 0.0 && now >= it->second.expires_at) {
        log_.record(core::Decision{now, user.user_id, it->first,
                                   core::DecisionType::kExpire, "", 0.0,
                                   it->second.alternative_index});
        it = user.active.erase(it);
      } else {
        ++it;
      }
    }
  }

  void review(core::UserProfile& user, const core::ReportContext& ctx) {
    if (ctx.rule_matches.empty() && ctx.alt_matches.empty()) return;
    if (history_ == core::HistoryMode::kAlwaysKeep) return;
    const double now = ctx.time;
    for (auto it = user.active.begin(); it != user.active.end();) {
      core::ActiveRule& ar = it->second;
      const core::Rule* r = rule(ar.rule_id);
      if (!r || r->type == core::RuleType::kRemove ||
          r->alternatives.empty()) {
        ++it;
        continue;
      }
      const std::size_t idx =
          std::min(ar.alternative_index, r->alternatives.size() - 1);
      const core::ContextAltMatch* hit = nullptr;
      for (const auto& m : ctx.alt_matches) {
        if (m.rule_id == ar.rule_id && m.alt_index == idx) {
          hit = &m;
          break;
        }
      }
      if (!hit) {
        ++it;
        continue;
      }
      const double alt_distance = hit->severity;
      // Seed verdict: keep iff min-distance says the alternative still
      // sits closer to the median; otherwise advance while alternatives
      // remain, else deactivate (+ ban when reactivation is off).
      if (history_ == core::HistoryMode::kMinDistance &&
          alt_distance < ar.violation_distance) {
        log_.record(core::Decision{now, user.user_id, ar.rule_id,
                                   core::DecisionType::kKeepAlternative,
                                   hit->violator_ip, alt_distance, idx});
        ++it;
      } else if (idx + 1 < r->alternatives.size()) {
        ar.alternative_index = idx + 1;
        log_.record(core::Decision{now, user.user_id, ar.rule_id,
                                   core::DecisionType::kAdvanceAlternative,
                                   hit->violator_ip, alt_distance,
                                   ar.alternative_index});
        ++it;
      } else {
        log_.record(core::Decision{now, user.user_id, ar.rule_id,
                                   core::DecisionType::kDeactivate,
                                   hit->violator_ip, alt_distance, idx});
        if (!policy_.allow_reactivation) user.banned.insert(ar.rule_id);
        user.pending_violations.erase(ar.rule_id);
        it = user.active.erase(it);
      }
    }
  }

  void consider(core::UserProfile& user, const core::ReportContext& ctx) {
    if (ctx.rule_matches.empty()) return;
    const double now = ctx.time;
    for (const auto& r : rules_) {
      if (user.active.count(r.id) != 0 || user.banned.count(r.id) != 0)
        continue;
      const core::ContextRuleMatch* hit = nullptr;
      for (const auto& m : ctx.rule_matches) {
        if (m.rule_id == r.id) {
          hit = &m;
          break;
        }
      }
      if (!hit) continue;
      const int required =
          std::max(r.min_violations, policy_.default_min_violations);
      const int seen = ++user.pending_violations[r.id];
      if (seen < required) continue;
      user.pending_violations.erase(r.id);

      const std::size_t n = r.alternatives.size();
      std::size_t alt = 0;
      std::size_t& next = user.next_alternative[r.id];
      if (policy_.selection == core::AlternativeSelection::kLinear) {
        alt = std::min(next, n - 1);
      } else {
        alt = next % n;
      }
      next = alt + 1;

      core::ActiveRule ar;
      ar.rule_id = r.id;
      ar.alternative_index = alt;
      ar.activated_at = now;
      ar.expires_at = r.ttl_s > 0.0 ? now + r.ttl_s : 0.0;
      ar.violation_distance = hit->severity;
      ar.violator_ip = hit->violator_ip;
      user.active[r.id] = ar;
      log_.record(core::Decision{now, user.user_id, r.id,
                                 core::DecisionType::kActivate,
                                 hit->violator_ip, ar.violation_distance,
                                 alt});
    }
  }

  std::vector<core::Rule> rules_;
  core::Policy policy_;
  core::HistoryMode history_;
  std::map<std::string, core::UserProfile> users_;
  core::DecisionLog log_;
};

// --- Live chaos runs ------------------------------------------------------

struct LiveRun {
  std::string name;
  std::unique_ptr<workload::ChaosScenario> scenario;
};

LiveRun run_chaos(const std::string& name,
                  workload::ChaosScenario::Options opt,
                  std::size_t fleet_size) {
  opt.policy.record_context = true;
  LiveRun run;
  run.name = name;
  run.scenario = std::make_unique<workload::ChaosScenario>(opt);
  workload::ChaosScenario& sc = *run.scenario;

  auto vps = workload::make_vantage_points(sc.universe().network(),
                                           fleet_size);
  browser::BrowserConfig bc;
  bc.use_cache = false;
  bc.fetch_timeout_s = 5.0;
  std::vector<std::unique_ptr<browser::Browser>> fleet;
  for (const auto& vp : vps) {
    fleet.push_back(
        std::make_unique<browser::Browser>(sc.universe(), vp.client, bc));
  }
  const double horizon = opt.onset_s + opt.duration_s + 1800.0;
  for (double t = 0.0; t < horizon; t += 300.0) {
    for (auto& b : fleet) b->load(sc.oak_site_url(), t);
  }
  return run;
}

std::vector<core::Decision> minus_serve(const core::DecisionLog& log) {
  std::vector<core::Decision> out;
  for (const auto& d : log.entries()) {
    if (d.type != core::DecisionType::kServeModified) out.push_back(d);
  }
  return out;
}

util::Json decisions_json(const std::vector<core::Decision>& ds) {
  util::JsonArray a;
  for (const auto& d : ds) a.push_back(core::decision_to_json(d));
  return util::Json(std::move(a));
}

}  // namespace

int main() {
  workload::print_banner("Policy ablation",
                         "seed parity, racing convergence, what-if sweep");

  // --- Gate 1: seed parity on the default policy ------------------------
  workload::ChaosScenario::Options base;
  base.fault = net::FaultType::kConnectRefused;
  LiveRun parity = run_chaos("outage-refused", base, 8);
  core::OakServer& oak = parity.scenario->oak();
  const auto& contexts = oak.decision_log().contexts();
  const std::vector<core::Decision> live = minus_serve(oak.decision_log());

  SeedOracle oracle(oak.rules(), oak.config().policy, oak.config().history);
  for (const auto& c : contexts) oracle.step(c);
  const std::string live_dump = decisions_json(live).dump();
  const bool oracle_parity =
      decisions_json(oracle.log().entries()).dump() == live_dump;

  core::PolicyReplayer rep1(oak.rules(), oak.config().policy,
                            oak.config().history);
  core::PolicyReplayer rep2(oak.rules(), oak.config().policy,
                            oak.config().history);
  for (const auto& c : contexts) {
    rep1.step(c);
    rep2.step(c);
  }
  const bool replayer_parity =
      decisions_json(rep1.log().entries()).dump() == live_dump;
  const bool replay_deterministic =
      rep1.result_json().dump() == rep2.result_json().dump();
  std::printf("seed parity: oracle %s  replayer %s  deterministic %s\n",
              oracle_parity ? "PASS" : "FAIL",
              replayer_parity ? "PASS" : "FAIL",
              replay_deterministic ? "PASS" : "FAIL");

  // --- Gate 2: racing converges on the fast mirror ----------------------
  // Few concurrent races and a large fleet: the race signal is whole-page
  // PLT, so concurrently raced rules pollute each other's cohort means —
  // one faulted provider keeps the decided races on rules with a real,
  // sustained signal, and 24 users average the cross-rule noise down.
  workload::ChaosScenario::Options racing = base;
  racing.racing_mirrors = true;
  racing.providers = 3;
  racing.outage_fraction = 0.34;
  racing.slow_mirror_degradation = 12.0;
  racing.policy.default_strategy = "racing";
  LiveRun race = run_chaos("racing-mirrors", racing, 24);
  const core::OakServer& roak = race.scenario->oak();
  std::size_t decided = 0, fast_winners = 0;
  bool winner_mean_ok = true;
  util::JsonArray race_rows;
  for (const auto& r : roak.rules()) {
    const auto rs = roak.policy_engine().race_state(r.id);
    if (!rs) continue;
    util::JsonObject row;
    row["rule"] = r.id;
    row["decided"] = rs->decided;
    row["winner"] = rs->winner;
    row["mean_slow_alt_s"] = rs->mean(0);
    row["mean_fast_alt_s"] = rs->mean(1);
    row["samples_slow"] = std::int64_t(rs->count[0]);
    row["samples_fast"] = std::int64_t(rs->count[1]);
    race_rows.push_back(std::move(row));
    if (!rs->decided) continue;
    ++decided;
    // Alternative 1 is the healthy mirror; alternative 0 the chronically
    // slow one (workload/chaos.h racing_mirrors).
    if (rs->winner == 1) ++fast_winners;
    const int loser = 1 - rs->winner;
    winner_mean_ok =
        winner_mean_ok && rs->mean(rs->winner) <= rs->mean(loser);
  }
  const bool racing_converged = decided > 0 && fast_winners == decided;
  std::printf("racing: %zu races decided, %zu picked the fast mirror -> %s\n",
              decided, fast_winners, racing_converged ? "PASS" : "FAIL");

  // --- Sweep: replay every run under each built-in strategy -------------
  workload::ChaosScenario::Options stall = base;
  stall.fault = net::FaultType::kStall;
  LiveRun stall_run = run_chaos("outage-stall", stall, 8);

  const char* kCandidates[] = {"paper", "racing", "hysteresis"};
  util::JsonArray sweep;
  const LiveRun* runs[] = {&parity, &stall_run, &race};
  for (const LiveRun* run : runs) {
    const core::OakServer& s = run->scenario->oak();
    util::JsonObject row;
    row["scenario"] = run->name;
    row["recorded_strategy"] = s.config().policy.default_strategy.empty()
                                   ? std::string("paper")
                                   : s.config().policy.default_strategy;
    row["contexts"] =
        std::int64_t(s.decision_log().contexts().size());
    util::JsonArray candidates;
    for (const char* cand : kCandidates) {
      std::vector<core::Rule> rules = s.rules();
      for (auto& r : rules) r.policy.clear();
      core::Policy p = s.config().policy;
      p.default_strategy = cand;
      p.record_context = false;
      const core::ReplayScore score = core::replay_and_score(
          std::move(rules), p, s.config().history,
          s.decision_log().contexts());
      util::JsonObject c;
      c["policy"] = std::string(cand);
      c["score"] = score.to_json();
      candidates.push_back(std::move(c));
      std::printf("%-16s %-10s activ %5zu deact %5zu mitig %5zu "
                  "est-plt %.3fs\n",
                  run->name.c_str(), cand, score.activations,
                  score.deactivations, score.mitigated_reports,
                  score.estimated_mean_plt_s);
    }
    row["candidates"] = std::move(candidates);
    sweep.push_back(std::move(row));
  }

  // --- Emit --------------------------------------------------------------
  util::JsonObject root;
  root["bench"] = std::string("policy_ablation");
  root["sweep"] = std::move(sweep);
  root["races"] = std::move(race_rows);
  util::JsonObject acceptance;
  acceptance["seed_parity_oracle"] = oracle_parity;
  acceptance["seed_parity_replayer"] = replayer_parity;
  acceptance["replay_deterministic"] = replay_deterministic;
  acceptance["races_decided"] = std::int64_t(decided);
  acceptance["racing_converged_to_fast_mirror"] = racing_converged;
  acceptance["racing_winner_mean_not_worse"] = winner_mean_ok;
  const bool pass = oracle_parity && replayer_parity &&
                    replay_deterministic && racing_converged &&
                    winner_mean_ok;
  acceptance["pass"] = pass;
  root["acceptance"] = std::move(acceptance);

  std::ofstream("BENCH_policy.json")
      << util::Json(std::move(root)).dump_pretty(2) << "\n";
  std::printf("\nacceptance: %s\nwrote BENCH_policy.json\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
