// Ablation: the §4.2.3 rule-history policy (DESIGN.md §5).
//
// Scenario: the default provider is moderately degraded and the first
// alternative is intermittently worse (heavy congestion weather). Compare
// mean PLT under the paper's min-distance history rule against the two
// naive baselines. Min-distance should track the better side; always-keep
// gets stuck on a bad alternate, always-revert thrashes back onto the bad
// default.
#include <cstdio>

#include "browser/browser.h"
#include "core/oak_server.h"
#include "util/stats.h"
#include "workload/harness.h"

namespace {

using namespace oak;

double run(core::HistoryMode mode, std::uint64_t seed) {
  page::WebUniverse universe(net::NetworkConfig{.seed = seed,
                                                .horizon_s = 7 * 86400.0});
  net::Network& net = universe.network();
  net::ServerConfig ocfg;
  ocfg.name = "origin";
  net::ServerId origin = net.add_server(ocfg);
  universe.dns().bind("hist.example.com", net.server(origin).addr());

  // Three peers so the MAD population is meaningful.
  for (int i = 0; i < 3; ++i) {
    net::ServerConfig cfg;
    cfg.name = "peer" + std::to_string(i);
    universe.dns().bind("peer" + std::to_string(i) + ".net",
                        net.server(net.add_server(cfg)).addr());
  }
  // Default provider: chronically 5x degraded.
  net::ServerConfig sick;
  sick.name = "default-provider";
  sick.chronic_degradation = 5.0;
  universe.dns().bind("slow.provider.net",
                      net.server(net.add_server(sick)).addr());
  // Alternative: healthy baseline but violent congestion weather.
  net::ServerConfig flaky;
  flaky.name = "alt-provider";
  flaky.congestion_rate_per_day = 8.0;
  flaky.congestion_mean_duration_s = 2 * 3600.0;
  flaky.congestion_mean_severity = 2.5;  // mild: usually still beats default
  universe.dns().bind("flaky.provider.net",
                      net.server(net.add_server(flaky)).addr());

  page::SiteBuilder b(universe, "hist.example.com", origin);
  for (int i = 0; i < 3; ++i) {
    b.add_direct("peer" + std::to_string(i) + ".net", "/lib.js",
                 html::RefKind::kScript, 15'000, page::Category::kCdn);
  }
  b.add_direct("slow.provider.net", "/asset.js", html::RefKind::kScript,
               15'000, page::Category::kAds);
  page::Site site = b.finish();
  universe.store().replicate("http://slow.provider.net/asset.js",
                             "http://flaky.provider.net/asset.js");

  core::OakConfig cfg;
  cfg.history = mode;
  // Re-activation takes five fresh violations: a needless revert parks the
  // user on the sick default for several loads.
  cfg.policy.default_min_violations = 5;
  core::OakServer oak(universe, "hist.example.com", cfg);
  oak.add_rule(core::make_domain_rule("switch", "slow.provider.net",
                                      {"flaky.provider.net"}));
  oak.install();

  net::ClientConfig cc;
  cc.region = net::Region::kNorthAmerica;
  browser::BrowserConfig bc;
  bc.use_cache = false;
  browser::Browser browser(universe, net.add_client(cc), bc);

  // Phase 1: the alternative is mildly flaky but clearly better than the
  // chronic default — reverting on every blip is the mistake.
  // Phase 2 (halfway): the roles flip — the default recovers and the
  // alternative rots — now clinging to the alternative is the mistake.
  // The paper's min-distance rule is the only policy that survives both.
  net::ServerId alt_server =
      net.server_by_ip(*universe.dns().resolve("flaky.provider.net"));
  net::ServerId def_server =
      net.server_by_ip(*universe.dns().resolve("slow.provider.net"));
  std::vector<double> plts;
  for (int i = 0; i < 200; ++i) {
    if (i == 100) {
      net.server(alt_server).set_chronic_degradation(12.0);
      net.server(def_server).set_chronic_degradation(1.0);
    }
    plts.push_back(browser.load(site.index_url(), i * 1800.0).plt_s);
  }
  return util::mean(plts);
}

}  // namespace

int main() {
  workload::print_banner("Ablation", "rule-history policy");
  std::printf("# policy\tmean_PLT_s (lower is better)\n");
  struct Row {
    const char* name;
    core::HistoryMode mode;
  };
  for (const Row& row : {Row{"min-distance (paper)",
                             core::HistoryMode::kMinDistance},
                         Row{"always-keep", core::HistoryMode::kAlwaysKeep},
                         Row{"always-revert",
                             core::HistoryMode::kAlwaysRevert}}) {
    double total = 0;
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      total += run(row.mode, seed);
    }
    std::printf("%s\t%.4f\n", row.name, total / 3.0);
  }
  return 0;
}
