// Report-ingestion throughput: sharded + memoized serving plane vs the
// single-mutex baseline.
//
// M client threads POST performance reports at one site. Each report names
// several MAD violators, so ingestion pays the full §4.2.2 bill: grouping,
// detection, and a three-tier connection-dependency probe of every
// configured rule against every violator — including tier-3 script fetches
// and a rule set padded with realistic multi-KB rule bodies that never
// match (the worst case: each probe scans the whole text).
//
// Configurations:
//   single-mutex-nocache   ConcurrentOakServer, match cache disabled — the
//                          pre-sharding seed behavior, the baseline.
//   sharded-{1,4,8,16}     ShardedOakServer with the per-shard match cache.
//
// Emits BENCH_concurrency.json (reports/sec, cache hit rates, contention
// counts per run) and prints the acceptance line: sharded-8 at 8 threads
// must clear 3x the baseline. On a single-core host the win comes almost
// entirely from memoization; sharding adds headroom with real cores.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/concurrent_server.h"
#include "core/sharded_server.h"
#include "http/cookies.h"
#include "util/rng.h"

namespace {

using namespace oak;

constexpr const char* kViolators[] = {"v0.net", "v1.net", "v2.net"};
constexpr const char* kHealthy[] = {"ok0.net", "ok1.net", "ok2.net",
                                    "ok3.net", "ok4.net"};
constexpr std::size_t kFillerRules = 20;
constexpr std::size_t kFillerBytes = 8 * 1024;

// A multi-KB rule body with URL-shaped references that resolve to hosts no
// report ever blames — every probe tokenizes and scans all of it for
// nothing, exactly like a real operator's big template rules.
std::string filler_text(std::size_t index) {
  util::Rng rng(1000 + index);
  std::string text = "<div class=\"widget-" + std::to_string(index) + "\">\n";
  while (text.size() < kFillerBytes) {
    const std::string h = "asset" + std::to_string(rng.uniform_int(0, 500)) +
                          ".static" + std::to_string(index) + ".example";
    text += "<script src=\"http://" + h + "/w" +
            std::to_string(rng.uniform_int(0, 99)) + ".js\"></script>\n"
            "<p>module " + std::to_string(rng.uniform_int(0, 1 << 20)) +
            " configuration block</p>\n";
  }
  text += "</div>\n";
  return text;
}

std::vector<core::Rule> build_rules() {
  std::vector<core::Rule> rules;
  // Rules that actually fire: one per violator (tier 1/2) and one reached
  // only through the aggregator script body (tier 3).
  for (const char* v : kViolators) {
    rules.push_back(core::make_domain_rule(std::string("switch-") + v, v,
                                           {"alt." + std::string(v)}));
  }
  rules.push_back(
      core::make_domain_rule("via-script", "agg.net", {"alt.agg.net"}));
  for (std::size_t i = 0; i < kFillerRules; ++i) {
    rules.push_back(core::make_source_rule(
        "filler" + std::to_string(i), filler_text(i),
        {"<!-- widget " + std::to_string(i) + " disabled -->"}));
  }
  return rules;
}

struct Workload {
  page::WebUniverse universe{net::NetworkConfig{.seed = 29, .horizon_s = 0}};
  std::string wire;  // one report: 3 direct violators + a tier-3 one

  Workload() {
    net::Network& net = universe.network();
    net::ServerId origin = net.add_server(net::ServerConfig{.name = "origin"});
    universe.dns().bind("busy.com", net.server(origin).addr());
    std::map<std::string, std::string> ips;
    auto bind = [&](const std::string& host) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      universe.dns().bind(host, net.server(sid).addr());
      ips[host] = net.server(sid).addr().to_string();
    };
    for (const char* h : kViolators) bind(h);
    for (const char* h : kHealthy) bind(h);
    bind("agg.net");
    bind("hidden.cdn.net");

    page::SiteBuilder b(universe, "busy.com", origin);
    for (const char* h : kViolators) {
      b.add_direct(h, "/o.js", html::RefKind::kScript, 9000,
                   page::Category::kCdn);
    }
    for (const char* h : kHealthy) {
      b.add_direct(h, "/o.js", html::RefKind::kScript, 9000,
                   page::Category::kCdn);
    }
    b.add_script_with_induced(
        "agg.net", "/loader.js", 4000, page::Category::kAds,
        {{"hidden.cdn.net", "/pix.png", html::RefKind::kImage, 7000,
          page::Category::kAds}});
    page::Site site = b.finish();

    browser::PerfReport r;
    r.page_url = site.index_url();
    r.entries.push_back(
        {site.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    double slow = 4.0;
    for (const char* h : kViolators) {
      r.entries.push_back(
          {"http://" + std::string(h) + "/o.js", h, ips[h], 9000, 0.1, slow});
      slow -= 0.4;
    }
    for (const char* h : kHealthy) {
      r.entries.push_back(
          {"http://" + std::string(h) + "/o.js", h, ips[h], 9000, 0.1, 0.11});
    }
    r.entries.push_back({"http://agg.net/loader.js", "agg.net", ips["agg.net"],
                         4000, 0.1, 0.12});
    r.entries.push_back({"http://hidden.cdn.net/pix.png", "hidden.cdn.net",
                         ips["hidden.cdn.net"], 7000, 0.1, 3.2});
    wire = r.serialize();
  }
};

struct RunResult {
  std::string config;
  std::size_t shards = 0;  // 0 = single-mutex baseline
  double seconds = 0.0;
  double reports_per_sec = 0.0;
  double memo_hit_rate = 0.0;
  double script_hit_rate = 0.0;
  std::uint64_t contentions = 0;
};

// Drive `threads` client threads, each POSTing `reports` reports under its
// own user id, against any server exposing handle(). Returns wall seconds.
template <typename ServerT>
double drive(ServerT& server, const Workload& w, int threads, int reports) {
  std::vector<std::thread> pool;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const std::string cookie =
          std::string(http::kOakUserCookie) + "=bench-u" + std::to_string(t);
      for (int i = 0; i < reports; ++i) {
        http::Request post =
            http::Request::post("http://busy.com/oak/report", w.wire);
        post.headers.set("Cookie", cookie);
        http::Response resp = server.handle(post, double(i));
        if (resp.status >= 400) {
          std::fprintf(stderr, "report rejected: %d\n", resp.status);
          std::abort();
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

RunResult run_baseline(int threads, int reports) {
  Workload w;
  core::OakConfig cfg;
  cfg.matcher.enable_cache = false;  // the seed's matcher: no memoization
  core::ConcurrentOakServer server(w.universe, "busy.com", cfg);
  for (auto& r : build_rules()) server.add_rule(std::move(r));
  RunResult res;
  res.config = "single-mutex-nocache";
  res.seconds = drive(server, w, threads, reports);
  res.reports_per_sec = double(threads) * reports / res.seconds;
  return res;
}

RunResult run_sharded(std::size_t shards, int threads, int reports,
                      util::Json* metrics_out = nullptr) {
  Workload w;
  core::ShardedOakServer server(w.universe, "busy.com", core::OakConfig{},
                                shards);
  server.add_rules(build_rules());
  RunResult res;
  res.config = "sharded-" + std::to_string(shards);
  res.shards = shards;
  res.seconds = drive(server, w, threads, reports);
  res.reports_per_sec = double(threads) * reports / res.seconds;
  const core::MatchCacheStats cache = server.match_cache_stats();
  res.memo_hit_rate = cache.memo_hit_rate();
  res.script_hit_rate = cache.script_hit_rate();
  res.contentions = server.shard_stats().contentions;
  // Merged per-shard obs snapshot: stage latency histograms plus ingest
  // counters for exactly the traffic this run timed.
  if (metrics_out != nullptr) *metrics_out = server.metrics_json();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 8;
  int reports = 250;
  if (argc > 1) threads = std::max(1, std::atoi(argv[1]));
  if (argc > 2) reports = std::max(1, std::atoi(argv[2]));

  std::printf("report ingestion: %d threads x %d reports, %zu rules "
              "(%zu x %zuKB filler)\n\n",
              threads, reports, 4 + kFillerRules, kFillerRules,
              kFillerBytes / 1024);
  std::printf("%-22s %10s %12s %10s %10s %12s\n", "config", "seconds",
              "reports/s", "memo-hit", "script-hit", "contentions");

  std::vector<RunResult> runs;
  util::Json stage_metrics;
  runs.push_back(run_baseline(threads, reports));
  for (std::size_t shards : {1u, 4u, 8u, 16u}) {
    // The acceptance configuration (8 shards) also exports its merged obs
    // snapshot into the BENCH file.
    runs.push_back(run_sharded(shards, threads, reports,
                               shards == 8 ? &stage_metrics : nullptr));
  }

  const double baseline_rps = runs[0].reports_per_sec;
  util::JsonArray out_runs;
  double sharded8_speedup = 0.0;
  for (const RunResult& r : runs) {
    std::printf("%-22s %10.3f %12.0f %9.1f%% %9.1f%% %12llu\n",
                r.config.c_str(), r.seconds, r.reports_per_sec,
                100.0 * r.memo_hit_rate, 100.0 * r.script_hit_rate,
                static_cast<unsigned long long>(r.contentions));
    util::JsonObject o;
    o["config"] = r.config;
    o["shards"] = r.shards;
    o["threads"] = threads;
    o["reports_per_thread"] = reports;
    o["seconds"] = r.seconds;
    o["reports_per_sec"] = r.reports_per_sec;
    o["speedup_vs_baseline"] = r.reports_per_sec / baseline_rps;
    o["memo_hit_rate"] = r.memo_hit_rate;
    o["script_cache_hit_rate"] = r.script_hit_rate;
    o["shard_contentions"] = r.contentions;
    out_runs.push_back(util::Json(std::move(o)));
    if (r.shards == 8) sharded8_speedup = r.reports_per_sec / baseline_rps;
  }

  util::JsonObject root;
  root["bench"] = std::string("load_concurrent");
  root["threads"] = threads;
  root["reports_per_thread"] = reports;
  root["runs"] = std::move(out_runs);
  root["metrics"] = std::move(stage_metrics);
  util::JsonObject acceptance;
  acceptance["sharded8_speedup"] = sharded8_speedup;
  acceptance["required"] = 3.0;
  acceptance["pass"] = sharded8_speedup >= 3.0;
  root["acceptance"] = std::move(acceptance);

  std::ofstream("BENCH_concurrency.json")
      << util::Json(std::move(root)).dump_pretty(2) << "\n";

  std::printf("\nsharded-8 speedup vs single-mutex baseline: %.2fx "
              "(required >= 3.00x) -> %s\n",
              sharded8_speedup, sharded8_speedup >= 3.0 ? "PASS" : "FAIL");
  std::printf("wrote BENCH_concurrency.json\n");
  return sharded8_speedup >= 3.0 ? 0 : 1;
}
