// Report-ingestion throughput: the multi-core scaling matrix.
//
// M client threads POST performance reports at one site. Each report names
// several MAD violators, so ingestion pays the full §4.2.2 bill: grouping,
// detection, and a three-tier connection-dependency probe of every
// configured rule against every violator — including tier-3 script fetches
// and a rule set padded with realistic multi-KB rule bodies that never
// match (the worst case for an unmemoized matcher).
//
// Configurations:
//   single-mutex-nocache   ConcurrentOakServer, match cache disabled — the
//                          pre-sharding seed behavior, the legacy baseline
//                          (run at the top thread count only).
//   sharded-{1,4,8,16}     ShardedOakServer with the per-shard match cache
//                          and the batched ingest queue, swept over
//                          {1,2,4,8} client threads (the matrix).
//   sharded-8-direct       queue disabled (one lock acquisition per
//                          request) at the top thread count — isolates what
//                          batching buys.
//
// Every cell is best-of-REPS wall time. Emits BENCH_concurrency.json with
// the matrix, the merged obs snapshot of the acceptance configuration
// (including oak_ingest_queue_* health), and three acceptance gates:
//
//   legacy      sharded-8 >= 3x the single-mutex baseline (top threads);
//   multicore   sharded-8 >= 3x sharded-1 at 8 threads — enforced only
//               when the host has >= 4 real cores (scaling needs cores;
//               on fewer the gate is recorded as skipped);
//   floor       sharded-N at least 0.9x sharded-1 at EVERY thread count
//               (sharding must never lose; 0.9 is the measured run-to-run
//               noise floor of this bench, see docs/OPERATIONS.md).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/concurrent_server.h"
#include "core/sharded_server.h"
#include "http/cookies.h"
#include "util/rng.h"

namespace {

using namespace oak;

constexpr const char* kViolators[] = {"v0.net", "v1.net", "v2.net"};
constexpr const char* kHealthy[] = {"ok0.net", "ok1.net", "ok2.net",
                                    "ok3.net", "ok4.net"};
constexpr std::size_t kFillerRules = 20;
constexpr std::size_t kFillerBytes = 8 * 1024;
constexpr int kReps = 3;  // best-of per cell (absorbs scheduler outliers,
                          // which dominate contended cells on small hosts)

// A multi-KB rule body with URL-shaped references that resolve to hosts no
// report ever blames — every probe tokenizes and scans all of it for
// nothing, exactly like a real operator's big template rules.
std::string filler_text(std::size_t index) {
  util::Rng rng(1000 + index);
  std::string text = "<div class=\"widget-" + std::to_string(index) + "\">\n";
  while (text.size() < kFillerBytes) {
    const std::string h = "asset" + std::to_string(rng.uniform_int(0, 500)) +
                          ".static" + std::to_string(index) + ".example";
    text += "<script src=\"http://" + h + "/w" +
            std::to_string(rng.uniform_int(0, 99)) + ".js\"></script>\n"
            "<p>module " + std::to_string(rng.uniform_int(0, 1 << 20)) +
            " configuration block</p>\n";
  }
  text += "</div>\n";
  return text;
}

std::vector<core::Rule> build_rules() {
  std::vector<core::Rule> rules;
  // Rules that actually fire: one per violator (tier 1/2) and one reached
  // only through the aggregator script body (tier 3).
  for (const char* v : kViolators) {
    rules.push_back(core::make_domain_rule(std::string("switch-") + v, v,
                                           {"alt." + std::string(v)}));
  }
  rules.push_back(
      core::make_domain_rule("via-script", "agg.net", {"alt.agg.net"}));
  for (std::size_t i = 0; i < kFillerRules; ++i) {
    rules.push_back(core::make_source_rule(
        "filler" + std::to_string(i), filler_text(i),
        {"<!-- widget " + std::to_string(i) + " disabled -->"}));
  }
  return rules;
}

struct Workload {
  page::WebUniverse universe{net::NetworkConfig{.seed = 29, .horizon_s = 0}};
  std::string wire;  // one report: 3 direct violators + a tier-3 one

  Workload() {
    net::Network& net = universe.network();
    net::ServerId origin = net.add_server(net::ServerConfig{.name = "origin"});
    universe.dns().bind("busy.com", net.server(origin).addr());
    std::map<std::string, std::string> ips;
    auto bind = [&](const std::string& host) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      universe.dns().bind(host, net.server(sid).addr());
      ips[host] = net.server(sid).addr().to_string();
    };
    for (const char* h : kViolators) bind(h);
    for (const char* h : kHealthy) bind(h);
    bind("agg.net");
    bind("hidden.cdn.net");

    page::SiteBuilder b(universe, "busy.com", origin);
    for (const char* h : kViolators) {
      b.add_direct(h, "/o.js", html::RefKind::kScript, 9000,
                   page::Category::kCdn);
    }
    for (const char* h : kHealthy) {
      b.add_direct(h, "/o.js", html::RefKind::kScript, 9000,
                   page::Category::kCdn);
    }
    b.add_script_with_induced(
        "agg.net", "/loader.js", 4000, page::Category::kAds,
        {{"hidden.cdn.net", "/pix.png", html::RefKind::kImage, 7000,
          page::Category::kAds}});
    page::Site site = b.finish();

    browser::PerfReport r;
    r.page_url = site.index_url();
    r.entries.push_back(
        {site.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    double slow = 4.0;
    for (const char* h : kViolators) {
      r.entries.push_back(
          {"http://" + std::string(h) + "/o.js", h, ips[h], 9000, 0.1, slow});
      slow -= 0.4;
    }
    for (const char* h : kHealthy) {
      r.entries.push_back(
          {"http://" + std::string(h) + "/o.js", h, ips[h], 9000, 0.1, 0.11});
    }
    r.entries.push_back({"http://agg.net/loader.js", "agg.net", ips["agg.net"],
                         4000, 0.1, 0.12});
    r.entries.push_back({"http://hidden.cdn.net/pix.png", "hidden.cdn.net",
                         ips["hidden.cdn.net"], 7000, 0.1, 3.2});
    wire = r.serialize();
  }
};

struct RunResult {
  std::string config;
  std::size_t shards = 0;  // 0 = single-mutex baseline
  int threads = 0;
  double seconds = 0.0;
  double reports_per_sec = 0.0;
  double memo_hit_rate = 0.0;
  double script_hit_rate = 0.0;
  std::uint64_t contentions = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t batches = 0;
  std::uint64_t backpressure = 0;

  double mean_batch() const {
    return batches == 0 ? 0.0 : double(enqueued) / double(batches);
  }
};

// Drive `threads` client threads, each POSTing `reports` reports under its
// own user id, against any server exposing handle(). Returns wall seconds.
template <typename ServerT>
double drive(ServerT& server, const Workload& w, int threads, int reports) {
  std::vector<std::thread> pool;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const std::string cookie =
          std::string(http::kOakUserCookie) + "=bench-u" + std::to_string(t);
      for (int i = 0; i < reports; ++i) {
        http::Request post =
            http::Request::post("http://busy.com/oak/report", w.wire);
        post.headers.set("Cookie", cookie);
        http::Response resp = server.handle(post, double(i));
        if (resp.status >= 400) {
          std::fprintf(stderr, "report rejected: %d\n", resp.status);
          std::abort();
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Untimed reports per thread before each timed window. Steady-state
// ingestion is what the gates mean: per-shard memo/digest warmup is a
// fixed cost that amortizes to nothing in production but would dominate a
// short timed run (and would punish high shard counts for having N cold
// caches instead of one).
constexpr int kWarmup = 100;

RunResult run_baseline(int threads, int reports) {
  RunResult best;
  for (int rep = 0; rep < kReps; ++rep) {
    Workload w;
    core::OakConfig cfg;
    cfg.matcher.enable_cache = false;  // the seed's matcher: no memoization
    core::ConcurrentOakServer server(w.universe, "busy.com", cfg);
    for (auto& r : build_rules()) server.add_rule(std::move(r));
    RunResult res;
    res.config = "single-mutex-nocache";
    res.threads = threads;
    // No cache to warm, but keep the phases symmetric with the sharded runs
    // (profiles exist, rules activated) so the timed windows compare alike.
    drive(server, w, threads, std::min(kWarmup, 10));
    res.seconds = drive(server, w, threads, reports);
    res.reports_per_sec = double(threads) * reports / res.seconds;
    if (rep == 0 || res.reports_per_sec > best.reports_per_sec) best = res;
  }
  return best;
}

std::uint64_t counter_or_zero(const obs::MetricsSnapshot& snap,
                              const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

RunResult run_sharded(std::size_t shards, int threads, int reports,
                      bool queue_enabled, util::Json* metrics_out = nullptr) {
  RunResult best;
  for (int rep = 0; rep < kReps; ++rep) {
    Workload w;
    core::OakConfig cfg;
    cfg.ingest_queue.enabled = queue_enabled;
    core::ShardedOakServer server(w.universe, "busy.com", cfg, shards);
    server.add_rules(build_rules());
    RunResult res;
    res.config = "sharded-" + std::to_string(shards) +
                 (queue_enabled ? "" : "-direct");
    res.shards = shards;
    res.threads = threads;
    drive(server, w, threads, kWarmup);  // warm per-shard memos, untimed
    res.seconds = drive(server, w, threads, reports);
    res.reports_per_sec = double(threads) * reports / res.seconds;
    const core::MatchCacheStats cache = server.match_cache_stats();
    res.memo_hit_rate = cache.memo_hit_rate();
    res.script_hit_rate = cache.script_hit_rate();
    res.contentions = server.shard_stats().contentions;
    const obs::MetricsSnapshot snap = server.metrics_snapshot();
    res.enqueued = counter_or_zero(snap, "oak_ingest_enqueued_total");
    res.batches = counter_or_zero(snap, "oak_ingest_batches_total");
    res.backpressure = counter_or_zero(snap, "oak_ingest_backpressure_total");
    const bool better =
        rep == 0 || res.reports_per_sec > best.reports_per_sec;
    if (better) {
      best = res;
      // Merged per-shard obs snapshot: stage latency histograms plus the
      // ingest-queue health counters for exactly the traffic this run timed.
      if (metrics_out != nullptr) *metrics_out = server.metrics_json();
    }
  }
  return best;
}

util::Json run_to_json(const RunResult& r, int reports, double rel_to) {
  util::JsonObject o;
  o["config"] = r.config;
  o["shards"] = r.shards;
  o["threads"] = r.threads;
  o["reports_per_thread"] = reports;
  o["seconds"] = r.seconds;
  o["reports_per_sec"] = r.reports_per_sec;
  if (rel_to > 0.0) o["speedup_vs_baseline"] = r.reports_per_sec / rel_to;
  o["memo_hit_rate"] = r.memo_hit_rate;
  o["script_cache_hit_rate"] = r.script_hit_rate;
  o["shard_contentions"] = r.contentions;
  o["queue_enqueued"] = r.enqueued;
  o["queue_batches"] = r.batches;
  o["queue_mean_batch"] = r.mean_batch();
  o["queue_backpressure"] = r.backpressure;
  return util::Json(std::move(o));
}

void print_run(const RunResult& r) {
  std::printf("%-18s %3dT %10.3f %12.0f %9.1f%% %11.1f %12llu %12llu\n",
              r.config.c_str(), r.threads, r.seconds, r.reports_per_sec,
              100.0 * r.memo_hit_rate, r.mean_batch(),
              static_cast<unsigned long long>(r.contentions),
              static_cast<unsigned long long>(r.backpressure));
}

}  // namespace

int main(int argc, char** argv) {
  int reports = 250;  // per thread, per cell
  if (argc > 1) reports = std::max(1, std::atoi(argv[1]));
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const std::vector<std::size_t> shard_counts = {1, 4, 8, 16};
  const int max_threads = thread_counts.back();

  std::printf("report ingestion matrix: {1,2,4,8} threads x sharded "
              "{1,4,8,16}, %d reports/thread, %zu rules (%zu x %zuKB "
              "filler), best of %d, %u core(s)\n\n",
              reports, 4 + kFillerRules, kFillerRules, kFillerBytes / 1024,
              kReps, cores);
  std::printf("%-18s %4s %10s %12s %10s %11s %12s %12s\n", "config", "thr",
              "seconds", "reports/s", "memo-hit", "mean-batch", "contentions",
              "backpressure");

  // Legacy baseline (top thread count only; it is ~20x slower per report).
  const RunResult baseline = run_baseline(max_threads, reports);
  print_run(baseline);

  // The matrix. rps[threads][shards] drives the gates below.
  std::vector<RunResult> matrix;
  util::Json stage_metrics;
  double sharded1_at[9] = {0.0};  // indexed by thread count
  double sharded8_at8 = 0.0, sharded8_at_max = 0.0;
  for (int threads : thread_counts) {
    for (std::size_t shards : shard_counts) {
      const bool acceptance_cell = threads == max_threads && shards == 8;
      RunResult r = run_sharded(shards, threads, reports, /*queue=*/true,
                                acceptance_cell ? &stage_metrics : nullptr);
      print_run(r);
      if (shards == 1) sharded1_at[threads] = r.reports_per_sec;
      if (shards == 8 && threads == 8) sharded8_at8 = r.reports_per_sec;
      if (shards == 8 && threads == max_threads) {
        sharded8_at_max = r.reports_per_sec;
      }
      matrix.push_back(std::move(r));
    }
  }

  // Queue-off comparison: what batching buys at the contended corner.
  const RunResult direct =
      run_sharded(8, max_threads, reports, /*queue=*/false);
  print_run(direct);

  // --- Gates.
  const double legacy_speedup = sharded8_at_max / baseline.reports_per_sec;
  const bool legacy_pass = legacy_speedup >= 3.0;

  const bool multicore_enforced = cores >= 4;
  const double multicore_ratio =
      sharded1_at[8] > 0.0 ? sharded8_at8 / sharded1_at[8] : 0.0;
  const bool multicore_pass = !multicore_enforced || multicore_ratio >= 3.0;

  constexpr double kFloor = 0.9;
  bool floor_pass = true;
  std::string floor_worst = "none";
  double floor_worst_ratio = 1e9;
  for (const RunResult& r : matrix) {
    if (r.shards == 1) continue;
    const double base = sharded1_at[r.threads];
    if (base <= 0.0) continue;
    const double ratio = r.reports_per_sec / base;
    if (ratio < floor_worst_ratio) {
      floor_worst_ratio = ratio;
      floor_worst = r.config + "@" + std::to_string(r.threads) + "T";
    }
    if (ratio < kFloor) floor_pass = false;
  }

  util::JsonArray out_runs;
  out_runs.push_back(run_to_json(baseline, reports, 0.0));
  for (const RunResult& r : matrix) {
    out_runs.push_back(run_to_json(r, reports, baseline.reports_per_sec));
  }
  out_runs.push_back(run_to_json(direct, reports, baseline.reports_per_sec));

  util::JsonObject root;
  root["bench"] = std::string("load_concurrent");
  root["hardware_concurrency"] = static_cast<std::size_t>(cores);
  root["reports_per_thread"] = reports;
  root["reps_best_of"] = static_cast<std::size_t>(kReps);
  {
    core::OakConfig defaults;
    util::JsonObject q;
    q["enabled"] = defaults.ingest_queue.enabled;
    q["depth"] = defaults.ingest_queue.depth;
    q["max_batch"] = defaults.ingest_queue.max_batch;
    q["handoff_after"] = defaults.ingest_queue.handoff_after;
    root["queue"] = std::move(q);
  }
  root["runs"] = std::move(out_runs);
  root["metrics"] = std::move(stage_metrics);

  // Each gate carries an explicit status: "pass", "fail", or "skipped".
  // A skipped gate (e.g. multicore scaling on a small host) must be
  // distinguishable from a passing one in the checked-in JSON — readers
  // should never mistake "could not measure" for "measured and fine".
  util::JsonObject acceptance;
  acceptance["hardware_concurrency"] = static_cast<std::size_t>(cores);
  {
    util::JsonObject g;
    g["speedup"] = legacy_speedup;
    g["required"] = 3.0;
    g["status"] = std::string(legacy_pass ? "pass" : "fail");
    acceptance["legacy_vs_single_mutex"] = std::move(g);
  }
  {
    util::JsonObject g;
    g["enforced"] = multicore_enforced;
    g["sharded8_vs_sharded1_at_8t"] = multicore_ratio;
    g["required"] = 3.0;
    g["status"] = std::string(!multicore_enforced    ? "skipped"
                              : multicore_ratio >= 3.0 ? "pass"
                                                       : "fail");
    acceptance["multicore_scaling"] = std::move(g);
  }
  {
    util::JsonObject g;
    g["floor"] = kFloor;
    g["worst_cell"] = floor_worst;
    g["worst_ratio"] = floor_worst_ratio;
    g["status"] = std::string(floor_pass ? "pass" : "fail");
    acceptance["sharding_never_loses"] = std::move(g);
  }
  root["acceptance"] = std::move(acceptance);

  std::ofstream("BENCH_concurrency.json")
      << util::Json(std::move(root)).dump_pretty(2) << "\n";

  std::printf("\nlegacy: sharded-8 vs single-mutex at %dT: %.2fx "
              "(>= 3.00x) -> %s\n",
              max_threads, legacy_speedup, legacy_pass ? "PASS" : "FAIL");
  if (multicore_enforced) {
    std::printf("multicore: sharded-8 vs sharded-1 at 8T: %.2fx (>= 3.00x, "
                "%u cores) -> %s\n",
                multicore_ratio, cores, multicore_pass ? "PASS" : "FAIL");
  } else {
    std::printf("multicore: sharded-8 vs sharded-1 at 8T: %.2fx — gate "
                "SKIPPED (%u core(s) < 4; scaling needs real cores)\n",
                multicore_ratio, cores);
  }
  std::printf("floor: worst sharded-N vs sharded-1 = %.2fx at %s "
              "(>= %.2fx) -> %s\n",
              floor_worst_ratio, floor_worst.c_str(), kFloor,
              floor_pass ? "PASS" : "FAIL");
  std::printf("wrote BENCH_concurrency.json\n");

  const bool ok = legacy_pass && multicore_pass && floor_pass;
  return ok ? 0 : 1;
}
