// Ablation: the 2·MAD threshold (DESIGN.md §5).
//
// On a labeled synthetic workload — reports whose ground truth says exactly
// which server is degraded (or that none is) — sweep k and report detection
// power at two fault severities against the per-server false-flag rate.
// k = 2 (the paper's choice) keeps strong faults near-certain and mild
// faults likely while flagging few healthy servers.
#include <cstdio>

#include "core/violator.h"
#include "util/rng.h"
#include "workload/harness.h"

namespace {

oak::browser::PerfReport synth_report(oak::util::Rng& rng, int bad,
                                      double severity) {
  oak::browser::PerfReport r;
  const int servers = 8 + int(rng.uniform_int(0, 6));
  for (int s = 0; s < servers; ++s) {
    const std::string ip = "10.0.0." + std::to_string(s + 1);
    const int objects = 2 + int(rng.uniform_int(0, 2));
    for (int o = 0; o < objects; ++o) {
      double t = rng.lognormal_median(0.12, 0.20);
      if (s == bad) t *= severity;
      r.entries.push_back({"http://h" + std::to_string(s) + ".com/o" +
                               std::to_string(o),
                           "h" + std::to_string(s) + ".com", ip, 2000, 0.0,
                           t});
    }
  }
  return r;
}

}  // namespace

int main() {
  using namespace oak;
  workload::print_banner("Ablation", "MAD threshold k sweep");
  constexpr int kTrials = 2000;

  std::printf("# k\tTPR@1.5x\tTPR@2.5x\tper-server FPR\n");
  for (double k : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0}) {
    util::Rng rng(404);
    core::DetectorConfig cfg;
    cfg.k = k;
    int tp3 = 0, tp6 = 0;
    long flags = 0, healthy = 0;
    for (int i = 0; i < kTrials; ++i) {
      for (double severity : {1.5, 2.5}) {
        auto pos = synth_report(rng, /*bad=*/0, severity);
        auto res = core::detect_violators(pos, cfg);
        for (const auto& v : res.violators) {
          if (v.ip == "10.0.0.1") {
            (severity == 1.5 ? tp3 : tp6)++;
            break;
          }
        }
      }
      auto neg = synth_report(rng, /*bad=*/-1, 1.0);
      auto res = core::detect_violators(neg, cfg);
      healthy += long(res.observations.size());
      flags += long(res.violators.size());
    }
    std::printf("%.1f\t%.4f\t%.4f\t%.4f\n", k, double(tp3) / kTrials,
                double(tp6) / kTrials, double(flags) / double(healthy));
  }
  std::printf(
      "# paper uses k=2: clear faults (2.5x) near-certain, subtle ones (1.5x)\n"
      "# mostly caught, while few healthy servers are flagged\n");
  return 0;
}
