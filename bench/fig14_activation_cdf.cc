// Figure 14 (+ Table 3): individual vs. common problems.
//
// For every rule on every site, the fraction of that site's users who ever
// activated it, CDF'd over rules. Paper shape: 80% of rules are activated
// by no more than ~18% of users (client-specific problems — a resource that
// is simply far from that user), while a small set of rules fires for large
// user fractions (provider-wide problems; fonts/ads dominate).
#include <algorithm>
#include <cstdio>

#include "util/cdf.h"
#include "util/strings.h"
#include "workload/existing_experiment.h"
#include "workload/harness.h"

int main() {
  using namespace oak;
  workload::print_banner("Figure 14", "rule activation by fraction of users");

  workload::ExistingExperimentOptions opt;
  auto result = workload::run_existing_experiment(opt);

  util::Cdf cdf;
  struct RuleShare {
    double share;
    std::string domain;
    std::string site;
  };
  std::vector<RuleShare> shares;
  for (const auto& [site, rules] : result.activations) {
    for (const auto& [domain, users] : rules) {
      const double share =
          double(users.size()) / double(result.users_per_site);
      cdf.add(share);
      shares.push_back({share, domain, site});
    }
  }
  workload::print_cdf("user-fraction-per-rule", cdf);
  workload::print_stat("rules below 18% of users (paper ~0.8)",
                       cdf.fraction_at_or_below(0.18));

  // Table 3: individual (<18%) vs common (>18%) providers.
  std::sort(shares.begin(), shares.end(),
            [](const RuleShare& a, const RuleShare& b) {
              return a.share > b.share;
            });
  std::vector<std::vector<std::string>> rows;
  std::size_t shown = 0;
  for (const auto& s : shares) {
    if (s.share <= 0.18) break;
    rows.push_back({s.domain, util::format("%.0f%%", s.share * 100.0),
                    s.site, "common"});
    if (++shown >= 5) break;
  }
  std::size_t indiv = 0;
  for (auto it = shares.rbegin(); it != shares.rend() && indiv < 5; ++it) {
    if (it->share > 0.18 || it->share == 0.0) continue;
    rows.push_back({it->domain, util::format("%.0f%%", it->share * 100.0),
                    it->site, "individual"});
    ++indiv;
  }
  workload::print_table("Table 3: individual vs common providers",
                        {"Domain", "Activation%", "Site", "Class"}, rows);
  return 0;
}
