// Ablation: relative (median + 2·MAD) vs absolute thresholds (DESIGN.md §5;
// paper §6).
//
// "While Oak could employ absolute conditions of performance, for example a
// maximum time or minimum throughput for a specific object, we chose to
// focus on relative performance. ... By doing so Oak is able to accommodate
// clients who may encounter generally poor performance."
//
// Setup: one chronically sick provider among healthy peers, measured by two
// client classes — broadband NA and a narrow satellite-like link. The
// absolute threshold is tuned so it separates sick from healthy perfectly
// *for the broadband client*; the ablation shows what that same number does
// to the slow client (everything looks sick) and what a threshold tuned for
// the slow client does to the fast one (nothing looks sick). The relative
// rule needs no tuning and is correct for both.
#include <cstdio>

#include "browser/browser.h"
#include "core/violator.h"
#include "page/site.h"
#include "util/rng.h"
#include "workload/harness.h"

using namespace oak;

namespace {

struct ClassResult {
  double sick_detected = 0;   // fraction of loads flagging the sick server
  double healthy_flagged = 0; // avg healthy servers flagged per load
};

ClassResult run_class(page::WebUniverse& universe, const page::Site& site,
                      net::ClientId client, const std::string& sick_ip,
                      const core::DetectorConfig& cfg, int loads) {
  browser::BrowserConfig bc;
  bc.use_cache = false;
  bc.send_report = false;
  browser::Browser b(universe, client, bc);
  ClassResult out;
  for (int i = 0; i < loads; ++i) {
    auto res = b.load(site.index_url(), i * 600.0);
    auto det = core::detect_violators(res.report, cfg);
    bool sick = false;
    int healthy = 0;
    for (const auto& v : det.violators) {
      if (v.ip == sick_ip) {
        sick = true;
      } else {
        ++healthy;
      }
    }
    out.sick_detected += sick ? 1.0 : 0.0;
    out.healthy_flagged += healthy;
  }
  out.sick_detected /= loads;
  out.healthy_flagged /= loads;
  return out;
}

}  // namespace

int main() {
  workload::print_banner("Ablation", "relative vs absolute detection");

  page::WebUniverse universe(net::NetworkConfig{.seed = 17, .horizon_s = 0});
  net::Network& net = universe.network();
  net::ServerId origin = net.add_server(net::ServerConfig{.name = "origin"});
  universe.dns().bind("abs.example", net.server(origin).addr());
  net::ServerConfig sick_cfg;
  sick_cfg.name = "sick";
  sick_cfg.chronic_degradation = 8.0;
  net::ServerId sick_server = net.add_server(sick_cfg);
  universe.dns().bind("sick.net", net.server(sick_server).addr());
  const std::string sick_ip = net.server(sick_server).addr().to_string();
  for (int i = 0; i < 6; ++i) {
    universe.dns().bind("h" + std::to_string(i) + ".net",
                        net.server(net.add_server(net::ServerConfig{})).addr());
  }

  page::SiteBuilder builder(universe, "abs.example", origin);
  builder.add_direct("sick.net", "/o.js", html::RefKind::kScript, 20'000,
                     page::Category::kAds);
  for (int i = 0; i < 6; ++i) {
    builder.add_direct("h" + std::to_string(i) + ".net", "/o.js",
                       html::RefKind::kScript, 20'000, page::Category::kCdn);
  }
  page::Site site = builder.finish();

  net::ClientConfig broadband;
  broadband.name = "broadband";
  broadband.downlink_bps = 50e6;
  broadband.last_mile_rtt_s = 0.010;
  net::ClientId fast = net.add_client(broadband);
  net::ClientConfig satellite;
  satellite.name = "satellite";
  satellite.downlink_bps = 1.5e6;
  satellite.last_mile_rtt_s = 0.350;
  satellite.jitter_sigma = 0.45;
  net::ClientId slow = net.add_client(satellite);

  constexpr int kLoads = 100;
  core::DetectorConfig relative;  // the paper's rule, untouched

  core::DetectorConfig abs_fast;  // tuned on the broadband client
  abs_fast.mode = core::DetectionMode::kAbsolute;
  abs_fast.absolute_time_s = 0.35;

  core::DetectorConfig abs_slow;  // tuned on the satellite client
  abs_slow.mode = core::DetectionMode::kAbsolute;
  abs_slow.absolute_time_s = 3.0;

  struct Row {
    const char* detector;
    const char* client;
    ClassResult r;
  };
  std::vector<Row> rows = {
      {"relative 2-MAD", "broadband",
       run_class(universe, site, fast, sick_ip, relative, kLoads)},
      {"relative 2-MAD", "satellite",
       run_class(universe, site, slow, sick_ip, relative, kLoads)},
      {"absolute@0.35s", "broadband",
       run_class(universe, site, fast, sick_ip, abs_fast, kLoads)},
      {"absolute@0.35s", "satellite",
       run_class(universe, site, slow, sick_ip, abs_fast, kLoads)},
      {"absolute@3.0s", "broadband",
       run_class(universe, site, fast, sick_ip, abs_slow, kLoads)},
      {"absolute@3.0s", "satellite",
       run_class(universe, site, slow, sick_ip, abs_slow, kLoads)},
  };
  std::printf("# detector\tclient\tsick-detected\thealthy-flagged/load\n");
  for (const auto& row : rows) {
    std::printf("%-16s %-10s %12.2f %18.2f\n", row.detector, row.client,
                row.r.sick_detected, row.r.healthy_flagged);
  }
  std::printf(
      "# one absolute number cannot serve both clients: tuned for broadband\n"
      "# it drowns the satellite user in false flags; tuned for satellite it\n"
      "# goes blind on broadband. The relative rule needs no tuning (§6).\n");
  return 0;
}
