// Ablation: report mechanism — modified client vs Resource Timing API
// (paper §6, Alternative Mechanisms).
//
// "For the resource timing API to function with external objects, which is
// the purpose of Oak, the external provider must explicitly include an
// authorizing header. This opt-in behavior means many providers are not
// visible with the API, rendering Oak less effective."
//
// We load the corpus once with each mechanism and compare (a) how much of
// each page the report covers and (b) violator recall: of the violators a
// full-visibility report reveals, how many survive in the opt-in-filtered
// report.
#include <cstdio>
#include <set>

#include "browser/browser.h"
#include "core/violator.h"
#include "page/corpus.h"
#include "util/cdf.h"
#include "workload/harness.h"
#include "workload/vantage.h"

int main() {
  using namespace oak;
  workload::print_banner("Ablation",
                         "modified client vs Resource Timing API");
  page::CorpusConfig cfg;
  cfg.seed = 42;
  cfg.num_sites = 250;
  page::Corpus corpus(cfg);
  auto vps = workload::make_vantage_points(corpus.universe().network(), 5);

  util::Cdf coverage;       // RTA-visible fraction of the report
  std::size_t full_viol = 0, rta_viol = 0;
  std::size_t loads = 0, loads_with_loss = 0;

  for (const auto& vp : vps) {
    browser::BrowserConfig full_cfg;
    full_cfg.use_cache = false;
    full_cfg.send_report = false;
    browser::BrowserConfig rta_cfg = full_cfg;
    rta_cfg.report_mechanism = browser::ReportMechanism::kResourceTimingApi;
    browser::Browser full(corpus.universe(), vp.client, full_cfg);
    browser::Browser rta(corpus.universe(), vp.client, rta_cfg);
    for (std::size_t s = 0; s < corpus.sites().size(); ++s) {
      const double t = 8 * 3600.0 + double(s);
      auto full_load = full.load(corpus.sites()[s].index_url(), t);
      auto rta_load = rta.load(corpus.sites()[s].index_url(), t);
      ++loads;
      if (!full_load.report.entries.empty()) {
        coverage.add(double(rta_load.report.entries.size()) /
                     double(full_load.report.entries.size()));
      }

      auto full_det = core::detect_violators(full_load.report);
      auto rta_det = core::detect_violators(rta_load.report);
      std::set<std::string> rta_ips;
      for (const auto& v : rta_det.violators) rta_ips.insert(v.ip);
      bool lost = false;
      for (const auto& v : full_det.violators) {
        ++full_viol;
        if (rta_ips.count(v.ip)) {
          ++rta_viol;
        } else {
          lost = true;
        }
      }
      if (lost) ++loads_with_loss;
    }
  }

  workload::print_cdf("rta-report-coverage", coverage);
  workload::print_stat("median report coverage under RTA",
                       coverage.quantile(0.5));
  workload::print_stat(
      "violator recall under RTA (modified client = 1.0)",
      full_viol == 0 ? 1.0 : double(rta_viol) / double(full_viol));
  workload::print_stat("fraction of loads losing >=1 violator",
                       double(loads_with_loss) / double(loads));
  std::printf(
      "# the paper's conclusion: \"client modification is the best solution"
      " at present\"\n");
  return 0;
}
