// Microbenchmarks (google-benchmark) for Oak's hot paths: the per-report
// analysis pipeline (grouping + MAD detection + matching) runs on every
// client report, and the page rewrite runs on every page serve.
#include <benchmark/benchmark.h>

#include "core/matcher.h"
#include "core/oak_server.h"
#include "browser/browser.h"
#include "http/cookies.h"
#include "core/modifier.h"
#include "core/violator.h"
#include "html/tokenizer.h"
#include "page/corpus.h"
#include "util/rng.h"

namespace {

using namespace oak;

browser::PerfReport make_report(int servers, int objects_per_server) {
  util::Rng rng(7);
  browser::PerfReport r;
  for (int s = 0; s < servers; ++s) {
    const std::string ip = "10.0." + std::to_string(s / 256) + "." +
                           std::to_string(s % 256);
    const std::string host = "host" + std::to_string(s) + ".cdn.net";
    for (int o = 0; o < objects_per_server; ++o) {
      r.entries.push_back(
          {"http://" + host + "/obj" + std::to_string(o) + ".js", host, ip,
           static_cast<std::uint64_t>(rng.pareto(1e3, 5e5, 1.2)), 0.0,
           rng.lognormal_median(0.1, 0.3)});
    }
  }
  return r;
}

std::string corpus_page() {
  page::CorpusConfig cfg;
  cfg.seed = 71;
  cfg.num_sites = 12;
  page::Corpus corpus(cfg);
  return corpus.universe()
      .store()
      .find(corpus.sites()[9].index_url())  // an H2 page
      ->body;
}

void BM_ViolatorDetection(benchmark::State& state) {
  auto report = make_report(int(state.range(0)), 4);
  for (auto _ : state) {
    auto res = core::detect_violators(report);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ViolatorDetection)->Arg(8)->Arg(32)->Arg(128);

void BM_ReportSerialize(benchmark::State& state) {
  auto report = make_report(int(state.range(0)), 4);
  for (auto _ : state) {
    std::string wire = report.serialize();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_ReportSerialize)->Arg(8)->Arg(64);

void BM_ReportParse(benchmark::State& state) {
  const std::string wire = make_report(int(state.range(0)), 4).serialize();
  for (auto _ : state) {
    auto report = browser::PerfReport::deserialize(wire);
    benchmark::DoNotOptimize(report);
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
}
BENCHMARK(BM_ReportParse)->Arg(8)->Arg(64);

void BM_MatcherTiers(benchmark::State& state) {
  static const std::string page = corpus_page();
  core::MatcherConfig cfg;
  cfg.enable_cache = false;  // every iteration pays the full 3-tier scan
  core::Matcher matcher(nullptr, cfg);
  const std::vector<std::string> domains = {"stats.g.doubleclick.net"};
  for (auto _ : state) {
    auto tier = matcher.match_text(page, domains);
    benchmark::DoNotOptimize(tier);
  }
  state.SetBytesProcessed(state.iterations() * page.size());
}
BENCHMARK(BM_MatcherTiers);

// Same question through the memo: after the first iteration every answer is
// a hash lookup. The gap to BM_MatcherTiers is what the sharded server's
// per-shard cache saves on repeated reports.
void BM_MatcherTiersMemoized(benchmark::State& state) {
  static const std::string page = corpus_page();
  core::Matcher matcher(nullptr);
  const std::vector<std::string> domains = {"stats.g.doubleclick.net"};
  for (auto _ : state) {
    auto tier = matcher.match_text(page, domains);
    benchmark::DoNotOptimize(tier);
  }
  state.SetBytesProcessed(state.iterations() * page.size());
}
BENCHMARK(BM_MatcherTiersMemoized);

void BM_PageRewrite(benchmark::State& state) {
  static const std::string page = corpus_page();
  core::Rule rule = core::make_domain_rule("switch", "stats.g.doubleclick.net",
                                           {"na.mirror.doubleclick.net"});
  rule.id = 1;
  for (auto _ : state) {
    auto out = core::apply_rules(page, "/index.html", {{&rule, 0}});
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * page.size());
}
BENCHMARK(BM_PageRewrite);

void BM_Tokenize(benchmark::State& state) {
  static const std::string page = corpus_page();
  for (auto _ : state) {
    auto tokens = html::tokenize(page);
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(state.iterations() * page.size());
}
BENCHMARK(BM_Tokenize);

void BM_CorpusGeneration(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    page::CorpusConfig cfg;
    cfg.seed = seed++;
    cfg.num_sites = std::size_t(state.range(0));
    cfg.num_providers = 80;
    page::Corpus corpus(cfg);
    benchmark::DoNotOptimize(corpus.sites().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CorpusGeneration)->Arg(25)->Arg(100)->Unit(benchmark::kMillisecond);

// A full simulated page load including report assembly — the unit of work
// every figure bench repeats tens of thousands of times.
void BM_BrowserPageLoad(benchmark::State& state) {
  static page::Corpus* corpus = [] {
    page::CorpusConfig cfg;
    cfg.seed = 71;
    cfg.num_sites = 12;
    return new page::Corpus(cfg);
  }();
  static net::ClientId cid =
      corpus->universe().network().add_client(net::ClientConfig{});
  browser::BrowserConfig bc;
  bc.use_cache = false;
  bc.send_report = false;
  browser::Browser b(corpus->universe(), cid, bc);
  double t = 0;
  for (auto _ : state) {
    auto res = b.load(corpus->sites()[9].index_url(), t);
    benchmark::DoNotOptimize(res.plt_s);
    t += 1.0;
  }
}
BENCHMARK(BM_BrowserPageLoad);

void BM_OakServePersonalizedPage(benchmark::State& state) {
  static page::Corpus* corpus = [] {
    page::CorpusConfig cfg;
    cfg.seed = 72;
    cfg.num_sites = 12;
    return new page::Corpus(cfg);
  }();
  const page::Site& site = corpus->sites()[9];
  static core::OakServer* oak = [&] {
    auto* server =
        new core::OakServer(corpus->universe(), site.host, core::OakConfig{});
    // Domain rules for every external host; force-all exercises the full
    // rewrite path on each serve.
    std::set<std::string> domains;
    for (const auto& hu : site.external_hosts) domains.insert(hu.host);
    for (const auto& d : domains) {
      server->add_rule(core::make_domain_rule("r-" + d, d, {"alt." + d}));
    }
    server->config().force_all_rules = true;
    return server;
  }();
  http::Request req = http::Request::get(site.index_url());
  req.headers.set("Cookie", std::string(http::kOakUserCookie) + "=bench");
  for (auto _ : state) {
    auto resp = oak->handle(req, 0.0);
    benchmark::DoNotOptimize(resp.body.size());
  }
}
BENCHMARK(BM_OakServePersonalizedPage);

// The obs overhead case: one full report ingest through handle(), with the
// per-server registry recording (metrics=true) vs runtime-disabled
// (metrics=false, all instrument pointers null). The pair bounds what the
// five stage timers + counters cost on the hot path; tests/obs_overhead_test
// enforces the ratio in CI.
void BM_IngestObs(benchmark::State& state) {
  static page::WebUniverse universe(net::NetworkConfig{.seed = 9,
                                                       .horizon_s = 0});
  static bool bound = [] {
    universe.dns().bind("obs.com",
                        universe.network()
                            .server(universe.network().add_server({}))
                            .addr());
    return true;
  }();
  (void)bound;
  core::OakConfig cfg;
  cfg.metrics = state.range(0) != 0;
  core::OakServer server(universe, "obs.com", cfg);
  server.add_rule(core::make_domain_rule("r", "host0.cdn.net", {"alt.net"}));
  const std::string wire = make_report(8, 2).serialize();
  http::Request post = http::Request::post("http://obs.com/oak/report", wire);
  post.headers.set("Cookie", std::string(http::kOakUserCookie) + "=bench");
  double t = 0.0;
  for (auto _ : state) {
    auto resp = server.handle(post, t);
    benchmark::DoNotOptimize(resp.status);
    t += 0.001;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(cfg.metrics ? "metrics-on" : "metrics-off");
}
BENCHMARK(BM_IngestObs)->Arg(0)->Arg(1);

void BM_StateSnapshot(benchmark::State& state) {
  static page::WebUniverse universe(net::NetworkConfig{.seed = 3,
                                                       .horizon_s = 0});
  static core::OakServer* oak = [] {
    universe.dns().bind("snap.com",
                        universe.network()
                            .server(universe.network().add_server({}))
                            .addr());
    auto* server = new core::OakServer(universe, "snap.com", {});
    server->add_rule(core::make_domain_rule("r", "x.net", {"y.net"}));
    // Populate a few hundred profiles.
    util::Rng rng(4);
    for (int u = 0; u < 300; ++u) {
      browser::PerfReport r;
      for (int s = 0; s < 6; ++s) {
        r.entries.push_back({"http://h" + std::to_string(s) + ".net/o",
                             "h" + std::to_string(s) + ".net",
                             "10.0.0." + std::to_string(s + 1), 2000, 0,
                             rng.uniform(0.05, 0.3)});
      }
      server->analyze("user" + std::to_string(u), r, double(u));
    }
    return server;
  }();
  for (auto _ : state) {
    std::string snap = oak->export_state().dump();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_StateSnapshot);

}  // namespace

BENCHMARK_MAIN();
