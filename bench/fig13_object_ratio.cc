// Figure 13: per-object ratio of default load time to the time under Oak's
// choice, for Oak-protected objects whose rule activated, across the four
// condition groups.
//
// Ratio > 1 means Oak's choice beat the default. Paper shape: H1-Close is
// near-even (improvement in ~57% of cases — alternates and defaults are
// comparable when everything is close and healthy); H1-Far ~66%, H2-Close
// ~80%, H2-Far ~77% improved.
#include <cstdio>

#include "util/cdf.h"
#include "workload/existing_experiment.h"
#include "workload/harness.h"

int main() {
  using namespace oak;
  workload::print_banner("Figure 13", "default/oak object-time ratio");

  workload::ExistingExperimentOptions opt;
  auto result = workload::run_existing_experiment(opt);

  util::Cdf groups[4];
  const char* names[4] = {"H1-Close", "H1-Far", "H2-Close", "H2-Far"};
  for (const auto& o : result.outcomes) {
    if (!o.activated_ever) continue;
    for (const auto& [path, def] : o.sums[0]) {
      if (!o.moved_paths.count(path)) continue;  // Oak never redirected it
      auto it = o.sums[2].find(path);  // the Oak condition
      if (it == o.sums[2].end() || def.second == 0 || it->second.second == 0) {
        continue;
      }
      const double def_mean = def.first / def.second;
      const double oak_mean = it->second.first / it->second.second;
      if (oak_mean <= 0) continue;
      groups[(o.h2 ? 2 : 0) + (o.close ? 0 : 1)].add(def_mean / oak_mean);
    }
  }
  for (int g = 0; g < 4; ++g) {
    workload::print_cdf(names[g], groups[g]);
    workload::print_stat(std::string(names[g]) + " improved fraction (ratio>1)",
                         groups[g].fraction_at_or_above(1.0));
  }
  return 0;
}
