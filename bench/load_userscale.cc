// Population-scale user-state tiering: memory stays O(hot set), not O(users).
//
// Four measurements over the TieredUserStore-backed OakServer, one JSON
// (BENCH_userscale.json) and one exit code:
//
//   sweep        serve + lookup throughput and fault-in rate as the user
//                population grows 10k -> 1M through a fixed 4096-slot hot
//                tier, with the resident-set size at each step.
//   soak (gate)  grow one server's population 100x past the hot capacity
//                (10k -> 1M users) and demand RSS growth <= 1.15x — the
//                bounded-memory claim, measured on the real process.
//   neutrality   report-ingest throughput with a fully-hot working set,
//   (gate)       tiered vs untiered: the clock/index bookkeeping must cost
//                <= 10% (ratio >= 0.9x) when nothing ever demotes.
//   transparency end-of-run export_state() with a hot tier far smaller than
//   (gate)       the population, byte-compared against an untiered run of
//                the same seeded request stream — eviction must be
//                invisible.
//
// `load_userscale [scale]`: populations are divided by `scale` (default 1)
// so CI smoke runs can use e.g. `load_userscale 100`. The checked-in JSON
// is from a full run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "core/oak_server.h"
#include "http/cookies.h"
#include "util/rng.h"

namespace {

using namespace oak;

constexpr std::size_t kHotCapacity = 4096;
constexpr int kReps = 3;  // best-of for the timed throughput cells

// Resident set size from /proc/self/status. malloc_trim first so freed
// allocator arenas are returned to the kernel — the gate is about memory
// the process actually holds, not about glibc's caching mood.
std::size_t rss_bytes() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::size_t(std::atoll(line.c_str() + 6)) * 1024;
    }
  }
  return 0;
}

struct Env {
  page::WebUniverse universe{net::NetworkConfig{.seed = 7, .horizon_s = 0}};
  page::Site site;
  std::string wire;  // one healthy report (no violators, full detection cost)

  Env() {
    net::Network& net = universe.network();
    net::ServerId origin = net.add_server(net::ServerConfig{.name = "origin"});
    universe.dns().bind("busy.com", net.server(origin).addr());
    std::map<std::string, std::string> ips;
    for (const char* host : {"c0.net", "c1.net", "c2.net"}) {
      net::ServerId sid = net.add_server(net::ServerConfig{});
      universe.dns().bind(host, net.server(sid).addr());
      ips[host] = net.server(sid).addr().to_string();
    }
    page::SiteBuilder b(universe, "busy.com", origin);
    for (int i = 0; i < 3; ++i) {
      b.add_direct("c" + std::to_string(i) + ".net", "/o.js",
                   html::RefKind::kScript, 9000, page::Category::kCdn);
    }
    site = b.finish();

    browser::PerfReport r;
    r.page_url = site.index_url();
    r.entries.push_back(
        {site.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    for (int i = 0; i < 3; ++i) {
      const std::string host = "c" + std::to_string(i) + ".net";
      r.entries.push_back({"http://" + host + "/o.js", host, ips[host], 9000,
                           0.1, 0.10 + 0.01 * i});
    }
    wire = r.serialize();
  }
};

std::string cookie(std::size_t user) {
  return std::string(http::kOakUserCookie) + "=us" + std::to_string(user);
}

// One page serve under user `u`; aborts on any non-2xx (a bench that
// silently 404s measures nothing).
void serve_one(core::OakServer& s, const Env& env, std::size_t u, double t) {
  http::Request get = http::Request::get(env.site.index_url());
  get.headers.set("Cookie", cookie(u));
  http::Response resp = s.handle(get, t);
  if (resp.status >= 400) {
    std::fprintf(stderr, "serve rejected: %d\n", resp.status);
    std::abort();
  }
}

// Grow the population to `target` users (first contact serves a page).
// Returns wall seconds.
double grow_to(core::OakServer& s, const Env& env, std::size_t target) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t u = s.user_count(); u < target; ++u) {
    serve_one(s, env, u, double(u) * 1e-3);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct SweepRow {
  std::size_t population = 0;
  double grow_seconds = 0.0;
  double grow_users_per_sec = 0.0;
  double lookup_rps = 0.0;
  double faultin_rate = 0.0;  // fault-ins per uniform-random lookup
  std::size_t hot = 0;
  std::size_t cold = 0;
  std::uint64_t demotions = 0;
  std::uint64_t faultins = 0;
  std::uint64_t cold_file_bytes = 0;
  std::size_t rss = 0;
};

util::Json row_to_json(const SweepRow& r) {
  util::JsonObject o;
  o["population"] = r.population;
  o["grow_seconds"] = r.grow_seconds;
  o["grow_users_per_sec"] = r.grow_users_per_sec;
  o["lookup_rps"] = r.lookup_rps;
  o["faultin_rate"] = r.faultin_rate;
  o["users_hot"] = r.hot;
  o["users_cold"] = r.cold;
  o["demotions_total"] = r.demotions;
  o["faultins_total"] = r.faultins;
  o["cold_file_mb"] = double(r.cold_file_bytes) / (1024.0 * 1024.0);
  o["rss_mb"] = double(r.rss) / (1024.0 * 1024.0);
  return util::Json(std::move(o));
}

// Timed report-ingest window over a resident working set: round-robin
// healthy reports from `users` distinct users. Returns reports/sec,
// best of kReps.
double ingest_rps(core::OakServer& s, const Env& env, std::size_t users,
                  int reports) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reports; ++i) {
      http::Request post =
          http::Request::post("http://busy.com/oak/report", env.wire);
      post.headers.set("Cookie", cookie(std::size_t(i) % users));
      http::Response resp = s.handle(post, double(i));
      if (resp.status >= 400) {
        std::fprintf(stderr, "report rejected: %d\n", resp.status);
        std::abort();
      }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    best = std::max(best, double(reports) / secs);
  }
  return best;
}

util::Json gate_json(const char* metric, double value, double required,
                     bool at_least, bool pass) {
  util::JsonObject g;
  g[metric] = value;
  g["required"] = required;
  g["direction"] = std::string(at_least ? ">=" : "<=");
  g["status"] = std::string(pass ? "pass" : "fail");
  return util::Json(std::move(g));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 1;  // divide populations (CI smoke: load_userscale 100)
  if (argc > 1) scale = std::max(1, std::atoi(argv[1]));

  const std::size_t kBasePop = std::max<std::size_t>(10'000 / scale, 100);
  const std::size_t kMaxPop = std::max<std::size_t>(1'000'000 / scale, 10'000);
  const std::size_t hot_capacity = std::min(kHotCapacity, kBasePop / 2);

  std::printf(
      "user-scale tiering: hot capacity %zu, population %zu -> %zu "
      "(scale 1/%zu)\n\n",
      hot_capacity, kBasePop, kMaxPop, scale);

  Env env;

  // --- Sweep + soak: one tiered server grown through the populations,
  // cold-tier metadata provisioned up front for the target population per
  // the docs/OPERATIONS.md sizing worksheet (16 bloom bits + 1 bucket head
  // per 8 expected cold users). Provisioned metadata is part of the base
  // RSS; past it, per-user memory cost is zero — which is exactly what the
  // soak gate below measures.
  core::OakConfig tiered_cfg;
  tiered_cfg.user_store.hot_capacity = hot_capacity;
  tiered_cfg.user_store.cold_buckets = kMaxPop / 8;
  tiered_cfg.user_store.bloom_bits = std::uint64_t(kMaxPop) * 16;
  core::OakServer tiered(env.universe, "busy.com", tiered_cfg);

  std::vector<std::size_t> populations;
  for (std::size_t p = kBasePop; p < kMaxPop; p *= 10) populations.push_back(p);
  populations.push_back(kMaxPop);

  std::printf("%12s %10s %12s %12s %10s %10s %8s\n", "population", "grow-s",
              "grow-u/s", "lookup/s", "faultin%", "cold-MB", "rss-MB");

  util::Rng lookup_rng(99);
  std::vector<SweepRow> rows;
  std::size_t rss_base = 0;
  for (std::size_t pop : populations) {
    SweepRow row;
    row.population = pop;
    row.grow_seconds = grow_to(tiered, env, pop);
    row.grow_users_per_sec =
        row.grow_seconds > 0.0 ? double(pop) / row.grow_seconds : 0.0;

    // Uniform-random lookups across the whole population: most touch cold.
    const std::uint64_t faultins_before =
        tiered.user_store().stats().faultins;
    const int lookups = int(std::min<std::size_t>(pop, 20'000));
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < lookups; ++i) {
      const std::size_t u =
          std::size_t(lookup_rng.uniform_int(0, std::int64_t(pop) - 1));
      serve_one(tiered, env, u, 1e6 + double(i));
    }
    const double lookup_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    row.lookup_rps = double(lookups) / lookup_secs;
    row.faultin_rate =
        double(tiered.user_store().stats().faultins - faultins_before) /
        double(lookups);
    row.hot = tiered.user_store().hot_count();
    row.cold = tiered.user_store().cold_count();
    row.demotions = tiered.user_store().stats().demotions;
    row.faultins = tiered.user_store().stats().faultins;
    row.cold_file_bytes = tiered.user_store().cold_file_bytes();
    row.rss = rss_bytes();
    if (pop == kBasePop) rss_base = row.rss;
    std::printf("%12zu %10.2f %12.0f %12.0f %9.1f%% %10.1f %8.1f\n", pop,
                row.grow_seconds, row.grow_users_per_sec, row.lookup_rps,
                100.0 * row.faultin_rate,
                double(row.cold_file_bytes) / (1024.0 * 1024.0),
                double(row.rss) / (1024.0 * 1024.0));
    rows.push_back(row);
  }

  // --- Gate 1: bounded memory. The sweep IS the soak: the same process
  // grew 100x past the hot capacity; compare end RSS against the base
  // population's RSS.
  const std::size_t rss_end = rows.back().rss;
  const double growth = double(kMaxPop) / double(kBasePop);
  const double rss_ratio =
      rss_base > 0 ? double(rss_end) / double(rss_base) : 1e9;
  const bool soak_pass = growth >= 100.0 && rss_ratio <= 1.15;

  // --- Gate 2: hot-path neutrality. Fully-hot working set (population well
  // under capacity): the tier must not tax the common case.
  const std::size_t neutral_users = std::max<std::size_t>(hot_capacity / 2, 8);
  const int neutral_reports = 4000;
  double untiered_rps = 0.0, tiered_hot_rps = 0.0;
  {
    core::OakConfig plain_cfg;
    core::OakServer plain(env.universe, "busy.com", plain_cfg);
    grow_to(plain, env, neutral_users);
    untiered_rps = ingest_rps(plain, env, neutral_users, neutral_reports);

    core::OakConfig hot_cfg;
    hot_cfg.user_store.hot_capacity = hot_capacity;
    core::OakServer hot(env.universe, "busy.com", hot_cfg);
    grow_to(hot, env, neutral_users);
    tiered_hot_rps = ingest_rps(hot, env, neutral_users, neutral_reports);
  }
  const double neutrality = untiered_rps > 0.0 ? tiered_hot_rps / untiered_rps
                                               : 0.0;
  const bool neutral_pass = neutrality >= 0.9;

  // --- Gate 3: eviction transparency. Same seeded stream through a tiered
  // (tiny hot tier) and an untiered server; exports must be byte-identical.
  const std::size_t transp_users = std::max<std::size_t>(kBasePop / 4, 64);
  bool transparent = false;
  {
    auto run = [&](std::size_t capacity) {
      core::OakConfig cfg;
      cfg.user_store.hot_capacity = capacity;
      core::OakServer s(env.universe, "busy.com", cfg);
      util::Rng rng(1234);  // the shared seed: identical streams by design
      for (std::size_t i = 0; i < transp_users * 2; ++i) {
        const std::size_t u =
            std::size_t(rng.uniform_int(0, std::int64_t(transp_users) - 1));
        if (i % 5 == 4) {
          http::Request post =
              http::Request::post("http://busy.com/oak/report", env.wire);
          post.headers.set("Cookie", cookie(u));
          s.handle(post, double(i));
        } else {
          serve_one(s, env, u, double(i));
        }
      }
      return s.export_state().dump();
    };
    transparent = run(/*capacity=*/64) == run(/*capacity=*/0);
  }

  // --- Emit.
  util::JsonObject root;
  root["bench"] = std::string("load_userscale");
  root["hardware_concurrency"] = static_cast<std::size_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  root["scale_divisor"] = scale;
  root["hot_capacity"] = hot_capacity;
  root["cold_buckets"] = std::size_t(kMaxPop / 8);
  root["bloom_bits"] = std::size_t(kMaxPop) * 16;
  util::JsonArray sweep;
  for (const SweepRow& r : rows) sweep.push_back(row_to_json(r));
  root["sweep"] = std::move(sweep);

  util::JsonObject acceptance;
  {
    util::JsonObject g;
    g["population_growth"] = growth;
    g["growth_required"] = 100.0;
    g["rss_base_mb"] = double(rss_base) / (1024.0 * 1024.0);
    g["rss_end_mb"] = double(rss_end) / (1024.0 * 1024.0);
    g["rss_ratio"] = rss_ratio;
    g["rss_ratio_max"] = 1.15;
    g["status"] = std::string(soak_pass ? "pass" : "fail");
    acceptance["bounded_memory_soak"] = std::move(g);
  }
  {
    util::JsonObject g;
    g["untiered_reports_per_sec"] = untiered_rps;
    g["tiered_hot_reports_per_sec"] = tiered_hot_rps;
    g["ratio"] = neutrality;
    g["required"] = 0.9;
    g["status"] = std::string(neutral_pass ? "pass" : "fail");
    acceptance["hot_path_neutrality"] = std::move(g);
  }
  {
    util::JsonObject g;
    g["population"] = transp_users;
    g["hot_capacity"] = static_cast<std::size_t>(64);
    g["export_byte_identical"] = transparent;
    g["status"] = std::string(transparent ? "pass" : "fail");
    acceptance["eviction_transparency"] = std::move(g);
  }
  root["acceptance"] = std::move(acceptance);

  std::ofstream("BENCH_userscale.json")
      << util::Json(std::move(root)).dump_pretty(2) << "\n";

  std::printf(
      "\nsoak: %zu -> %zu users (%.0fx), RSS %.1f -> %.1f MB = %.3fx "
      "(<= 1.15x) -> %s\n",
      kBasePop, kMaxPop, growth, double(rss_base) / (1024.0 * 1024.0),
      double(rss_end) / (1024.0 * 1024.0), rss_ratio,
      soak_pass ? "PASS" : "FAIL");
  std::printf(
      "neutrality: tiered-hot %.0f vs untiered %.0f reports/s = %.3fx "
      "(>= 0.90x) -> %s\n",
      tiered_hot_rps, untiered_rps, neutrality, neutral_pass ? "PASS" : "FAIL");
  std::printf("transparency: export with capacity 64 vs untiered -> %s\n",
              transparent ? "PASS (byte-identical)" : "FAIL");
  std::printf("wrote BENCH_userscale.json\n");

  return (soak_pass && neutral_pass && transparent) ? 0 : 1;
}
