// Figure 3: outlier persistence. Re-run the §2 survey 1, 2 and 5 days later
// and measure, per (site, vantage point), the fraction of day-0 outliers
// that vanished.
//
// Paper shape: ~52% of outliers change after a single day (transient
// congestion), and the surviving set stays nearly constant at 2 and 5 days
// (chronic degradation, blind spots) — Oak must handle both kinds.
#include <cstdio>
#include <map>
#include <set>

#include "page/corpus.h"
#include "util/cdf.h"
#include "workload/harness.h"
#include "workload/survey.h"

int main() {
  using namespace oak;
  workload::print_banner("Figure 3", "fraction of outliers vanished over time");
  page::CorpusConfig cfg;
  cfg.seed = 42;
  cfg.num_sites = 500;
  page::Corpus corpus(cfg);
  auto vps = workload::make_vantage_points(corpus.universe().network(), 25);

  constexpr double kDay = 86400.0;
  auto survey_at = [&](double t0) {
    workload::SurveyOptions opt;
    opt.start_time = t0;
    return workload::run_outlier_survey(corpus, vps, opt);
  };

  // Day-0 baseline plus day 1 / 2 / 5.
  auto base = survey_at(12 * 3600.0);
  std::map<int, std::vector<workload::SurveyLoad>> later;
  for (int day : {1, 2, 5}) {
    later[day] = survey_at(12 * 3600.0 + day * kDay);
  }

  auto violator_set = [](const workload::SurveyLoad& l) {
    std::set<std::string> ips;
    for (const auto& v : l.detection.violators) ips.insert(v.ip);
    return ips;
  };

  for (int day : {1, 2, 5}) {
    util::Cdf cdf;
    const auto& again = later[day];
    for (std::size_t i = 0; i < base.size(); ++i) {
      auto before = violator_set(base[i]);
      if (before.empty()) continue;
      auto after = violator_set(again[i]);
      std::size_t missing = 0;
      for (const auto& ip : before) {
        if (!after.count(ip)) ++missing;
      }
      cdf.add(double(missing) / double(before.size()));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%d-day", day);
    workload::print_cdf(label, cdf);
  }
  return 0;
}
