// Ablation: the 50 KB small/large split (DESIGN.md §5).
//
// Servers serve heterogeneous mixes of tiny beacons (2 KB) and media
// (400 KB). Oak times small objects and computes throughput for large ones.
// Pushing the split to an extreme funnels both classes into one metric,
// where a server's average reflects its size mix rather than its health —
// false flags rise and subtle faults drown.
#include <cstdio>

#include "core/violator.h"
#include "util/rng.h"
#include "workload/harness.h"

namespace {

// Each server gets a random mix; server `bad` is degraded: `lat_mult` on
// per-request latency, `bw_div` on transfer rate.
oak::browser::PerfReport mixed_report(oak::util::Rng& rng, int bad,
                                      double lat_mult, double bw_div) {
  oak::browser::PerfReport r;
  const int servers = 10;
  for (int s = 0; s < servers; ++s) {
    const std::string ip = "10.0.0." + std::to_string(s + 1);
    const std::string host = "h" + std::to_string(s) + ".com";
    const int beacons = 1 + int(rng.uniform_int(0, 2));
    const int media = int(rng.uniform_int(0, 3));
    double lat = rng.lognormal_median(0.08, 0.15);
    double bw = rng.lognormal_median(2e6, 0.15);  // bytes/sec
    if (s == bad) {
      lat *= lat_mult;
      bw /= bw_div;
    }
    for (int b = 0; b < beacons; ++b) {
      r.entries.push_back({"http://" + host + "/b" + std::to_string(b), host,
                           ip, 2000, 0,
                           lat * rng.lognormal_median(1.0, 0.15)});
    }
    for (int m = 0; m < media; ++m) {
      r.entries.push_back({"http://" + host + "/m" + std::to_string(m), host,
                           ip, 400'000, 0,
                           lat + 400'000.0 / (bw *
                                              rng.lognormal_median(1.0, 0.15))});
    }
  }
  return r;
}

}  // namespace

int main() {
  using namespace oak;
  workload::print_banner("Ablation", "small/large object split sweep");
  constexpr int kTrials = 1500;

  std::printf("# split_KB\tTPR_latency_fault\tTPR_bw_fault\tper-server FPR\n");
  for (std::uint64_t split_kb : {1ull, 10ull, 50ull, 200ull, 1000ull}) {
    core::DetectorConfig cfg;
    cfg.small_threshold_bytes = split_kb * 1024;
    util::Rng rng(505);
    int lat_hits = 0, bw_hits = 0;
    long flags = 0, healthy = 0;
    for (int i = 0; i < kTrials; ++i) {
      auto lat_fault = mixed_report(rng, 0, /*lat=*/3.0, /*bw=*/1.0);
      for (const auto& v : core::detect_violators(lat_fault, cfg).violators) {
        if (v.ip == "10.0.0.1") {
          ++lat_hits;
          break;
        }
      }
      auto bw_fault = mixed_report(rng, 0, 1.0, /*bw=*/3.0);
      for (const auto& v : core::detect_violators(bw_fault, cfg).violators) {
        if (v.ip == "10.0.0.1") {
          ++bw_hits;
          break;
        }
      }
      auto clean = mixed_report(rng, -1, 1.0, 1.0);
      auto res = core::detect_violators(clean, cfg);
      healthy += long(res.observations.size());
      flags += long(res.violators.size());
    }
    std::printf("%llu\t%.3f\t%.3f\t%.3f\n",
                static_cast<unsigned long long>(split_kb),
                double(lat_hits) / kTrials, double(bw_hits) / kTrials,
                double(flags) / double(healthy));
  }
  std::printf(
      "# a mid-range split (the paper's 50KB) catches both fault classes\n"
      "# with the lowest false-flag rate; extreme splits mix size classes\n"
      "# into one metric and pay for it in FPR\n");
  return 0;
}
