// Figure 15: distribution of serialized performance-report sizes when an
// Oak client loads the Alexa Top 500 (paper §6, Overhead).
//
// Paper shape: median below 10 KB, worst case ~345 KB; reports upload after
// the page finishes, off the user-visible critical path.
#include <cstdio>

#include "page/corpus.h"
#include "util/cdf.h"
#include "workload/harness.h"
#include "workload/survey.h"

int main() {
  using namespace oak;
  workload::print_banner("Figure 15", "performance report sizes");
  page::CorpusConfig cfg;
  cfg.seed = 42;
  cfg.num_sites = 500;
  page::Corpus corpus(cfg);
  auto vps = workload::make_vantage_points(corpus.universe().network(), 1);

  workload::SurveyOptions opt;
  opt.start_time = 9 * 3600.0;
  auto loads = workload::run_outlier_survey(corpus, vps, opt);

  util::Cdf bytes;
  for (const auto& l : loads) bytes.add(double(l.report_bytes));
  workload::print_cdf("report-bytes", bytes);
  workload::print_stat("median report KB (paper <10KB)",
                       bytes.quantile(0.5) / 1024.0);
  workload::print_stat("max report KB (paper ~345KB worst case)",
                       bytes.quantile(1.0) / 1024.0);
  return 0;
}
