// Figure 8: fraction of contacted servers that the matcher can tie to the
// index page, treating the entire index as a single rule (paper §4.2.2).
//
// Three cumulative tiers: strict includes only (paper median 42%), plus
// free-text domain mentions (60%), plus one level of external-JavaScript
// expansion (81%). The residue is dynamically-decided loads no rule text
// can reach.
#include <cstdio>

#include "browser/browser.h"
#include "core/grouping.h"
#include "core/matcher.h"
#include "page/corpus.h"
#include "util/cdf.h"
#include "util/url.h"
#include "workload/harness.h"

int main() {
  using namespace oak;
  workload::print_banner("Figure 8", "matched-server fraction at 3 tiers");
  page::CorpusConfig cfg;
  cfg.seed = 42;
  cfg.num_sites = 500;
  page::Corpus corpus(cfg);

  net::ClientConfig cc;
  cc.name = "match-probe";
  net::ClientId cid = corpus.universe().network().add_client(cc);
  browser::BrowserConfig bcfg;
  bcfg.use_cache = false;
  bcfg.send_report = false;
  browser::Browser probe(corpus.universe(), cid, bcfg);

  auto fetch_script =
      [&](const std::string& url) -> std::optional<std::string> {
    const page::WebObject* obj = corpus.universe().store().find(url);
    if (!obj || obj->body.empty()) return std::nullopt;
    return obj->body;
  };

  core::MatcherConfig direct_only{.enable_text = false,
                                  .enable_external_scripts = false};
  core::MatcherConfig with_text{.enable_text = true,
                                .enable_external_scripts = false};
  core::MatcherConfig full{.enable_text = true,
                           .enable_external_scripts = true};
  core::Matcher m_direct(fetch_script, direct_only);
  core::Matcher m_text(fetch_script, with_text);
  core::Matcher m_full(fetch_script, full);

  util::Cdf cdf_direct, cdf_text, cdf_full;
  for (std::size_t s = 0; s < corpus.sites().size(); ++s) {
    const page::Site& site = corpus.sites()[s];
    auto res = probe.load(site.index_url(), 3600.0 + double(s));
    const std::string& index_html = res.page_html;

    std::vector<std::string> urls;
    for (const auto& e : res.report.entries) urls.push_back(e.url);
    auto scripts = core::report_script_urls(urls);

    // Group contacted servers exactly as Oak would; skip the origin.
    auto obs = core::group_by_server(res.report);
    std::size_t total = 0, hit_direct = 0, hit_text = 0, hit_full = 0;
    for (const auto& o : obs) {
      bool external = true;
      for (const auto& d : o.domains) {
        if (util::same_site(d, site.host)) external = false;
      }
      if (!external) continue;
      ++total;
      std::vector<std::string> domains(o.domains.begin(), o.domains.end());
      if (m_direct.match_text(index_html, domains, scripts) !=
          core::MatchTier::kNone) {
        ++hit_direct;
      }
      if (m_text.match_text(index_html, domains, scripts) !=
          core::MatchTier::kNone) {
        ++hit_text;
      }
      if (m_full.match_text(index_html, domains, scripts) !=
          core::MatchTier::kNone) {
        ++hit_full;
      }
    }
    if (total == 0) continue;
    cdf_direct.add(double(hit_direct) / double(total));
    cdf_text.add(double(hit_text) / double(total));
    cdf_full.add(double(hit_full) / double(total));
  }

  workload::print_cdf("strict-includes", cdf_direct);
  workload::print_cdf("plus-text-match", cdf_text);
  workload::print_cdf("plus-external-js", cdf_full);
  workload::print_stat("median strict (paper ~0.42)", cdf_direct.quantile(0.5));
  workload::print_stat("median +text (paper ~0.60)", cdf_text.quantile(0.5));
  workload::print_stat("median +ext-js (paper ~0.81)", cdf_full.quantile(0.5));
  return 0;
}
