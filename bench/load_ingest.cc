// Report-decode and ingest throughput: streaming zero-copy decoder vs the
// Json-DOM baseline.
//
// Two layers:
//
//   decode-*    tight single-thread loop over serialized reports, nothing
//               but wire bytes -> report. `decode-dom` is
//               PerfReport::deserialize (DOM node + heap key per member);
//               `decode-stream-view` is decode_report_view into a reused
//               arena (the server's actual ingest path); `decode-stream-own`
//               adds the materialize() copy for callers that keep the
//               report.
//
//   server-*    full ingest_report through ShardedOakServer::handle at 1
//               and 8 shards, single client thread, empty rule set — the
//               decode + grouping + detection pipeline without matcher
//               noise, in both IngestDecode modes.
//
// Reports come in two mixes: small (~8 entries, the common page) and large
// (~120 entries, media-heavy pages), over a handful of servers so the
// interning arena sees realistic host/IP repetition.
//
// A third layer rides along since the durability work: `server-stream-s8`
// rerun with the write-ahead journal on (fresh directory, no per-append
// fsync), min-of-runs against a journal-off control. Acceptance: journaled
// ingest <= 1.3x the journal-off time.
//
// Emits BENCH_ingest.json. Acceptance: single-thread streaming decode must
// clear 3x the DOM decoder on the combined mix, and the journal overhead
// ratio must stay within its bound.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "browser/report.h"
#include "browser/report_decoder.h"
#include "core/sharded_server.h"
#include "http/cookies.h"
#include "util/arena.h"
#include "util/rng.h"

namespace {

using namespace oak;

// One mix of serialized reports plus the byte volume of a full pass.
struct Corpus {
  std::string name;
  std::vector<std::string> wires;
  std::size_t bytes = 0;
};

Corpus make_corpus(const std::string& name, int reports, int entries,
                   std::uint64_t seed) {
  util::Rng rng(seed);
  Corpus c;
  c.name = name;
  for (int r = 0; r < reports; ++r) {
    browser::PerfReport rep;
    rep.user_id = "bench-u" + std::to_string(r % 16);
    rep.page_url = "http://busy.com/p" + std::to_string(r % 32) + ".html";
    rep.plt_s = 0.5 + 0.01 * double(r % 100);
    for (int e = 0; e < entries; ++e) {
      // ~12 servers with several domains each: the repetition profile the
      // interning arena and grouping index are built for.
      const int server = int(rng.uniform_int(0, 11));
      const std::string host =
          "cdn" + std::to_string(server) + (e % 3 ? ".assets" : "") + ".net";
      browser::ReportEntry entry;
      entry.url = "http://" + host + "/obj/" + std::to_string(r) + "/" +
                  std::to_string(e) + (e % 4 ? ".js" : ".png");
      entry.host = host;
      entry.ip = "10.0.1." + std::to_string(server);
      entry.size = std::uint64_t(rng.uniform_int(200, 150'000));
      entry.start_s = 0.01 * double(e);
      entry.time_s = 0.05 + 0.001 * double(rng.uniform_int(0, 400));
      rep.entries.push_back(std::move(entry));
    }
    std::string wire = rep.serialize();
    c.bytes += wire.size();
    c.wires.push_back(std::move(wire));
  }
  return c;
}

struct RunResult {
  std::string config;
  std::string corpus;
  double seconds = 0.0;
  double reports_per_sec = 0.0;
  double mb_per_sec = 0.0;
};

template <typename Fn>
RunResult time_decode(const std::string& config, const Corpus& corpus,
                      int passes, Fn&& decode_one) {
  // Warm-up pass (page in the wires, size scratch buffers).
  for (const std::string& w : corpus.wires) decode_one(w);
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    for (const std::string& w : corpus.wires) decode_one(w);
  }
  RunResult res;
  res.config = config;
  res.corpus = corpus.name;
  res.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  const double n = double(passes) * double(corpus.wires.size());
  res.reports_per_sec = n / res.seconds;
  res.mb_per_sec =
      double(passes) * double(corpus.bytes) / res.seconds / (1024.0 * 1024.0);
  return res;
}

RunResult run_server(const std::string& config, const Corpus& corpus,
                     int passes, std::size_t shards,
                     core::IngestDecode decode,
                     util::Json* metrics_out = nullptr,
                     const std::string& journal_dir = "") {
  page::WebUniverse universe{net::NetworkConfig{.seed = 7, .horizon_s = 0}};
  core::OakConfig cfg;
  cfg.ingest_decode = decode;
  if (!journal_dir.empty()) {
    // Fresh journal directory per run: recovery/compaction state from a
    // previous repetition must not shift what this one measures.
    std::error_code ec;
    std::filesystem::remove_all(journal_dir, ec);
    cfg.durability.enabled = true;
    cfg.durability.dir = journal_dir;
  }
  core::ShardedOakServer server(universe, "busy.com", cfg, shards);

  const std::string cookie = std::string(http::kOakUserCookie) + "=bench-u0";
  auto post_all = [&] {
    for (const std::string& w : corpus.wires) {
      http::Request post = http::Request::post("http://busy.com/oak/report", w);
      post.headers.set("Cookie", cookie);
      http::Response resp = server.handle(post, 0.0);
      if (resp.status >= 400) {
        std::fprintf(stderr, "report rejected: %d\n", resp.status);
        std::abort();
      }
    }
  };
  post_all();  // warm-up
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) post_all();
  RunResult res;
  res.config = config;
  res.corpus = corpus.name;
  res.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  const double n = double(passes) * double(corpus.wires.size());
  res.reports_per_sec = n / res.seconds;
  res.mb_per_sec =
      double(passes) * double(corpus.bytes) / res.seconds / (1024.0 * 1024.0);
  // Per-stage latency distributions for the whole run (decode/group/detect/
  // match histograms, ingest counters) — merged across shards.
  if (metrics_out != nullptr) *metrics_out = server.metrics_json();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  int passes = 30;
  if (argc > 1) passes = std::max(1, std::atoi(argv[1]));

  const Corpus small = make_corpus("small-8", 400, 8, 11);
  const Corpus large = make_corpus("large-120", 60, 120, 13);
  Corpus mixed;
  mixed.name = "mixed";
  for (const Corpus* c : {&small, &large}) {
    mixed.wires.insert(mixed.wires.end(), c->wires.begin(), c->wires.end());
    mixed.bytes += c->bytes;
  }

  std::printf("report decode/ingest: %d passes; corpora: small-8 (%zu x ~%zuB)"
              ", large-120 (%zu x ~%zuB)\n\n",
              passes, small.wires.size(), small.bytes / small.wires.size(),
              large.wires.size(), large.bytes / large.wires.size());
  std::printf("%-24s %-10s %10s %12s %10s\n", "config", "corpus", "seconds",
              "reports/s", "MB/s");

  std::vector<RunResult> runs;
  util::StringArena arena;
  const Corpus* corpora[] = {&small, &large, &mixed};
  for (const Corpus* c : corpora) {
    runs.push_back(time_decode("decode-dom", *c, passes, [](const std::string& w) {
      browser::PerfReport r = browser::PerfReport::deserialize(w);
      (void)r;
    }));
    runs.push_back(
        time_decode("decode-stream-view", *c, passes, [&](const std::string& w) {
          arena.clear();
          browser::ReportView v = browser::decode_report_view(w, arena);
          (void)v;
        }));
    runs.push_back(
        time_decode("decode-stream-own", *c, passes, [](const std::string& w) {
          browser::PerfReport r = browser::decode_report(w);
          (void)r;
        }));
  }

  // Server-level ingest (decode + grouping + detection), both decoders, at
  // 1 and 8 shards. Fewer passes: each report runs the whole pipeline.
  const int server_passes = std::max(1, passes / 10);
  util::Json stage_metrics;
  for (std::size_t shards : {std::size_t(1), std::size_t(8)}) {
    const std::string tag = "-s" + std::to_string(shards);
    runs.push_back(run_server("server-dom" + tag, mixed, server_passes, shards,
                              core::IngestDecode::kDom));
    // The 8-shard streaming run also contributes its obs exposition: stage
    // histograms for the exact traffic the throughput number describes.
    runs.push_back(run_server("server-stream" + tag, mixed, server_passes,
                              shards, core::IngestDecode::kStreaming,
                              shards == 8 ? &stage_metrics : nullptr));
  }

  // Journal overhead: the 8-shard streaming ingest with the write-ahead
  // journal on, min-of-kOverheadRuns against a journal-off control measured
  // the same way. Min-of-runs because the bound is about the code path, not
  // the scheduler: one preemption in a ~100ms run is a 10% swing.
  constexpr int kOverheadRuns = 3;
  const std::string journal_dir =
      (std::filesystem::temp_directory_path() / "oak_bench_journal").string();
  double journal_on_s = 1e9;
  double journal_off_s = 1e9;
  RunResult journal_run;
  for (int rep = 0; rep < kOverheadRuns; ++rep) {
    journal_off_s = std::min(
        journal_off_s, run_server("server-stream-s8", mixed, server_passes, 8,
                                  core::IngestDecode::kStreaming)
                           .seconds);
    RunResult on = run_server("server-stream-s8-journal", mixed, server_passes,
                              8, core::IngestDecode::kStreaming, nullptr,
                              journal_dir);
    if (on.seconds < journal_on_s) {
      journal_on_s = on.seconds;
      journal_run = on;
    }
  }
  {
    std::error_code ec;
    std::filesystem::remove_all(journal_dir, ec);
  }
  runs.push_back(journal_run);
  const double journal_overhead =
      journal_off_s > 0.0 ? journal_on_s / journal_off_s : 0.0;
  const bool journal_ok = journal_overhead <= 1.3;

  double dom_mixed_rps = 0.0;
  double stream_mixed_rps = 0.0;
  util::JsonArray out_runs;
  for (const RunResult& r : runs) {
    std::printf("%-24s %-10s %10.3f %12.0f %10.1f\n", r.config.c_str(),
                r.corpus.c_str(), r.seconds, r.reports_per_sec, r.mb_per_sec);
    util::JsonObject o;
    o["config"] = r.config;
    o["corpus"] = r.corpus;
    o["seconds"] = r.seconds;
    o["reports_per_sec"] = r.reports_per_sec;
    o["mb_per_sec"] = r.mb_per_sec;
    out_runs.push_back(util::Json(std::move(o)));
    if (r.corpus == "mixed" && r.config == "decode-dom") {
      dom_mixed_rps = r.reports_per_sec;
    }
    if (r.corpus == "mixed" && r.config == "decode-stream-view") {
      stream_mixed_rps = r.reports_per_sec;
    }
  }

  const double speedup =
      dom_mixed_rps > 0.0 ? stream_mixed_rps / dom_mixed_rps : 0.0;

  util::JsonObject root;
  root["bench"] = std::string("load_ingest");
  root["passes"] = passes;
  root["runs"] = std::move(out_runs);
  root["metrics"] = std::move(stage_metrics);
  util::JsonObject acceptance;
  acceptance["streaming_decode_speedup"] = speedup;
  acceptance["required"] = 3.0;
  acceptance["pass"] = speedup >= 3.0;
  acceptance["journal_overhead"] = journal_overhead;
  acceptance["journal_required_max"] = 1.3;
  acceptance["journal_pass"] = journal_ok;
  root["acceptance"] = std::move(acceptance);

  std::ofstream("BENCH_ingest.json")
      << util::Json(std::move(root)).dump_pretty(2) << "\n";

  std::printf("\nstreaming decode speedup vs DOM on mixed corpus: %.2fx "
              "(required >= 3.00x) -> %s\n",
              speedup, speedup >= 3.0 ? "PASS" : "FAIL");
  std::printf("journal-on ingest overhead: %.2fx journal-off "
              "(required <= 1.30x, min of %d runs) -> %s\n",
              journal_overhead, kOverheadRuns, journal_ok ? "PASS" : "FAIL");
  std::printf("wrote BENCH_ingest.json\n");
  return (speedup >= 3.0 && journal_ok) ? 0 : 1;
}
