// Figure 9: sensitivity of detection to injected delay, per client profile.
//
// A page pulls objects from 5 NA external servers; one server injects a
// delay swept from 250ms to 5s. For each (profile, delay) we run 20
// iterations, loading both the Oak-fronted and the default variant of the
// page, and report the average PLT ratio default/Oak.
//
// Paper shape: the NA client (tight baseline spread) triggers the switch
// from ~0.75s; EU needs >2s; the cross-global AS client only reacts by ~5s —
// the MAD criterion is relative to each client's own spread. A fourth
// profile adds the paper's closing remark: the same principle covers
// "scenarios of reduced functionality, for example when using a mobile
// device" (§5.1) — a nearby but slow, jittery cellular link behaves like a
// distant one.
#include <cstdio>

#include "browser/browser.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/harness.h"
#include "workload/sensitivity.h"
#include "workload/vantage.h"

int main() {
  using namespace oak;
  workload::print_banner("Figure 9", "PLT ratio vs injected delay by profile");

  const std::vector<double> delays = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0,
                                      2.5,  3.0, 3.5,  4.0, 5.0};
  constexpr int kIterations = 20;

  // PlanetLab-style vantage points: modest, distance-degraded links and
  // noisy paths. The absolute spread of object times (and therefore the
  // detection threshold, in seconds) grows with distance.
  struct Profile {
    const char* label;
    net::Region region;
    double downlink_bps;
    double last_mile_rtt_s;
    double jitter_sigma;
  };
  const Profile profiles[] = {
      {"NA", net::Region::kNorthAmerica, 20e6, 0.020, 0.50},
      {"EU", net::Region::kEurope, 8e6, 0.030, 0.50},
      {"AS", net::Region::kAsia, 3e6, 0.045, 0.50},
      {"NA-mobile", net::Region::kNorthAmerica, 2e6, 0.080, 0.70},
  };

  for (const Profile& profile : profiles) {
    std::vector<std::pair<double, double>> series;
    std::vector<std::pair<double, double>> spread;
    for (double delay : delays) {
      // Fresh scenario per delay — Oak starts with no history — but the
      // same seed across the sweep: one testbed, eleven delay settings.
      workload::SensitivityScenario scenario(
          1000 + util::stable_hash(profile.label) % 97);
      scenario.set_injected_delay(delay);
      net::ClientConfig cc;
      cc.name = "client";
      cc.region = profile.region;
      cc.jitter_sigma = profile.jitter_sigma;
      cc.downlink_bps = profile.downlink_bps;
      cc.last_mile_rtt_s = profile.last_mile_rtt_s;
      net::ClientId cid = scenario.universe().network().add_client(cc);
      browser::BrowserConfig bc;
      bc.use_cache = false;
      browser::Browser oak_browser(scenario.universe(), cid, bc);
      browser::Browser def_browser(scenario.universe(), cid, bc);

      std::vector<double> ratios;
      for (int it = 0; it < kIterations; ++it) {
        const double t = 3600.0 + it * 120.0;
        double plt_oak = oak_browser.load(scenario.oak_site_url(), t).plt_s;
        double plt_def =
            def_browser.load(scenario.default_site_url(), t).plt_s;
        ratios.push_back(plt_def / plt_oak);
      }
      series.push_back({delay, util::mean(ratios)});
      spread.push_back({delay, util::stddev(ratios)});
    }
    const std::string code = profile.label;
    workload::print_series("plt-ratio-" + code, series, "delay_s",
                           "avg default/oak PLT ratio");
    workload::print_series("plt-ratio-stddev-" + code, spread, "delay_s",
                           "stddev");
  }
  return 0;
}
