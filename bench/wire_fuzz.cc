// Wire fuzz harness: a seed-deterministic malformed-input corpus driven
// through a live oak::wire::Server over real sockets.
//
// The contract being gated (ISSUE robustness criteria):
//   * the server never crashes or leaks, whatever the bytes (run under
//     ASan in CI — the ci wire-fuzz job);
//   * every malformed input is answered with a 4xx or a clean close —
//     never a 5xx, never a hang past the deadlines;
//   * known smuggling/framing attacks get the specific 4xx the parser
//     contract promises.
//
// Corpus families (≥ 10k cases total at scale 1):
//   truncation   every-byte prefixes of valid requests (shutdown_write
//                after the prefix, so the server sees EOF, not a stall)
//   bitflip      random single/multi bit flips in valid requests
//   mutate       random insert/delete/overwrite of bytes
//   framing      structured attacks: oversized lines/headers/bodies,
//                duplicate or non-numeric Content-Length, Transfer-Encoding,
//                CRLF injection, obs-fold, bare LF
//   garbage      pure random bytes, random lengths
//   pipeline     one valid request followed by garbage on the same conn
//
// Usage: wire_fuzz [scale [seed]] — scale divides the corpus (CI smoke
// uses a larger divisor); seed makes every run reproducible.
//
// Writes/updates the "fuzz" section of BENCH_wire.json; exit 0 iff every
// gate passes.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "browser/report.h"
#include "core/sharded_server.h"
#include "page/site.h"
#include "util/json.h"
#include "wire/client.h"
#include "wire/server.h"

namespace {

using namespace oak;

struct Env {
  page::WebUniverse universe{net::NetworkConfig{.seed = 7, .horizon_s = 0}};
  page::Site site;
  std::string report;

  Env() {
    net::Network& net = universe.network();
    net::ServerId origin = net.add_server(net::ServerConfig{.name = "origin"});
    universe.dns().bind("busy.com", net.server(origin).addr());
    net::ServerId cdn = net.add_server(net::ServerConfig{});
    universe.dns().bind("x0.net", net.server(cdn).addr());

    page::SiteBuilder b(universe, "busy.com", origin);
    b.add_direct("x0.net", "/o.js", html::RefKind::kScript, 9000,
                 page::Category::kCdn);
    site = b.finish();

    browser::PerfReport r;
    r.page_url = site.index_url();
    r.entries.push_back(
        {site.index_url(), "busy.com", "10.0.0.1", 4000, 0, 0.09});
    r.entries.push_back({"http://x0.net/o.js", "x0.net",
                         net.server(cdn).addr().to_string(), 9000, 0.1, 4.0});
    report = r.serialize();
  }
};

// What one corpus case did to its connection.
struct Outcome {
  std::vector<int> statuses;  // every response parsed off the wire
  bool clean = false;         // EOF reached within the read budget
  double elapsed_s = 0.0;
};

// Send exact bytes, half-close, then read whatever comes back until EOF.
// The timeout is the hang detector: the server owes either responses or a
// close, and with the client's FIN already delivered it must not sit.
Outcome drive(std::uint16_t port, const std::string& bytes,
              double timeout_s) {
  Outcome out;
  const auto start = std::chrono::steady_clock::now();
  wire::BlockingClient cli;
  if (!cli.connect("127.0.0.1", port, timeout_s)) return out;
  cli.send_raw(bytes);  // ignore failures: the server may already have RST
  cli.shutdown_write();

  std::string wire = cli.read_all();
  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  out.clean = out.elapsed_s < timeout_s * 0.9;

  // Parse response statuses out of the byte stream (responses are
  // well-formed by construction — the server wrote them).
  std::size_t pos = 0;
  while (pos + 12 <= wire.size() && wire.compare(pos, 5, "HTTP/") == 0) {
    out.statuses.push_back(std::atoi(wire.c_str() + pos + 9));
    const std::size_t head_end = wire.find("\r\n\r\n", pos);
    if (head_end == std::string::npos) break;
    std::size_t body_len = 0;
    const std::size_t cl = wire.find("Content-Length: ", pos);
    if (cl != std::string::npos && cl < head_end) {
      body_len = std::size_t(std::atoll(wire.c_str() + cl + 16));
    }
    pos = head_end + 4 + body_len;
  }
  return out;
}

std::string rand_bytes(std::mt19937_64& rng, std::size_t n) {
  std::string s(n, '\0');
  for (char& c : s) c = char(rng() & 0xff);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 1;
  if (argc > 1) scale = std::size_t(std::max(1, std::atoi(argv[1])));
  const std::uint64_t seed =
      (argc > 2) ? std::strtoull(argv[2], nullptr, 0) : 20260808ull;
  std::mt19937_64 rng(seed);

  Env env;
  core::ShardedOakServer oak(env.universe, "busy.com", {}, 4);
  wire::WireConfig wc;
  wc.worker_threads = 2;
  // The corpus runs against a multi-loop server: hostile-input handling
  // must hold on whichever SO_REUSEPORT loop the kernel hashes a conn to,
  // even when the loops timeshare one core.
  wc.loops = 2;
  // Short deadlines: the fuzz client half-closes, so nothing should ever
  // wait these out — they exist to bound a bug, not the happy path.
  wc.header_deadline_s = 2.0;
  wc.idle_deadline_s = 2.0;
  wc.write_deadline_s = 2.0;
  wire::Server srv(oak, wc);
  srv.start();
  const std::uint16_t port = srv.port();
  const double kReadBudget = 5.0;

  // --- Seeds: valid requests of each interesting shape.
  const std::string host = "busy.com";
  const std::vector<std::string> seeds = {
      "GET " + env.site.index_path + " HTTP/1.1\r\nHost: " + host +
          "\r\n\r\n",
      "POST /oak/report HTTP/1.1\r\nHost: " + host +
          "\r\nContent-Length: " + std::to_string(env.report.size()) +
          "\r\n\r\n" + env.report,
      "HEAD " + env.site.index_path + " HTTP/1.1\r\nHost: " + host +
          "\r\nAccept: */*\r\nUser-Agent: fuzz\r\n\r\n",
      "GET /metrics HTTP/1.1\r\nHost: " + host + "\r\n\r\n",
      "DELETE /admin/rules/7 HTTP/1.1\r\nHost: " + host + "\r\n\r\n",
  };

  // --- Structured framing attacks with the status the parser owes.
  struct Framing {
    std::string wire;
    int expect;  // 0 = any 4xx or clean close
  };
  std::vector<Framing> framing = {
      {"GET / HTTP/1.1\nHost: h\r\n\r\n", 400},               // bare LF
      {"GET / HTTP/1.1\r\nHost : h\r\n\r\n", 400},            // space-colon
      {"GET / HTTP/1.1\r\nHost: h\r\n cont\r\n\r\n", 400},    // obs-fold
      {"GET / HTTP/2.0\r\nHost: h\r\n\r\n", 400},             // bad version
      {"GET http://h/ HTTP/1.1\r\nHost: h\r\n\r\n", 400},     // absolute-form
      {"GET / HTTP/1.1\r\n\r\n", 400},                        // no Host
      {"GET / HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\n", 400},  // dup Host
      {"POST /oak/report HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: "
       "chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
       400},  // TE smuggle
      {"POST /oak/report HTTP/1.1\r\nHost: h\r\nContent-Length: "
       "4\r\nContent-Length: 16\r\n\r\nbody",
       400},  // dup CL
      {"POST /oak/report HTTP/1.1\r\nHost: h\r\nContent-Length: 4, "
       "4\r\n\r\nbody",
       400},  // CL list
      {"POST /oak/report HTTP/1.1\r\nHost: h\r\nContent-Length: "
       "-1\r\n\r\n",
       400},  // negative CL
      {"POST /oak/report HTTP/1.1\r\nHost: h\r\nContent-Length: "
       "18446744073709551617\r\n\r\n",
       400},  // CL overflow
      {"POST /oak/report HTTP/1.1\r\nHost: h\r\nContent-Length: "
       "9999999\r\n\r\n",
       413},  // over body cap
      {"GET /" + std::string(64 * 1024, 'a') + " HTTP/1.1\r\nHost: h\r\n\r\n",
       414},  // line cap
      {"GET / HTTP/1.1\r\nHost: h\r\nX: " + std::string(64 * 1024, 'v') +
           "\r\n\r\n",
       431},  // header-bytes cap
      {"GET / HTTP/1.1\r\nHost: h\r\nEvil: a\rb\r\n\r\n", 400},  // stray CR
      {"GET / HTTP/1.1\r\nHost: h\r\nX: a\x01z\r\n\r\n", 400},   // ctl byte
  };
  {  // header-count cap
    std::string wire = "GET / HTTP/1.1\r\nHost: h\r\n";
    for (int i = 0; i < 200; ++i) wire += "X" + std::to_string(i) + ": v\r\n";
    framing.push_back({wire + "\r\n", 431});
  }

  std::size_t cases = 0, truncation_cases = 0;
  std::size_t resp_2xx = 0, resp_4xx = 0, resp_5xx = 0;
  std::size_t clean_closes = 0, hangs = 0, misclassified = 0;

  auto account = [&](const Outcome& o) {
    ++cases;
    if (!o.clean) ++hangs;
    bool any = false;
    for (int s : o.statuses) {
      any = true;
      if (s >= 200 && s < 300) ++resp_2xx;
      else if (s >= 400 && s < 500) ++resp_4xx;
      else if (s >= 500) ++resp_5xx;
    }
    if (!any && o.clean) ++clean_closes;
  };

  // --- Family 1: every-byte truncations of every seed.
  for (const std::string& s : seeds) {
    for (std::size_t cut = 0; cut < s.size(); ++cut) {
      account(drive(port, s.substr(0, cut), kReadBudget));
      ++truncation_cases;
    }
  }

  // --- Family 2: structured framing attacks (exact classification gate).
  for (const Framing& f : framing) {
    const Outcome o = drive(port, f.wire, kReadBudget);
    account(o);
    const int got = o.statuses.empty() ? 0 : o.statuses.front();
    if (f.expect != 0 && got != f.expect) {
      ++misclassified;
      std::printf("MISCLASSIFIED (want %d, got %d): %.60s\n", f.expect, got,
                  f.wire.c_str());
    }
  }

  // --- Families 3-6: randomized, seed-deterministic.
  const std::size_t random_cases =
      std::max<std::size_t>(10'000 / scale, 200);
  for (std::size_t i = 0; i < random_cases; ++i) {
    std::string wire = seeds[rng() % seeds.size()];
    switch (rng() % 4) {
      case 0: {  // bit flips
        const int flips = 1 + int(rng() % 8);
        for (int f = 0; f < flips; ++f) {
          wire[rng() % wire.size()] ^= char(1u << (rng() % 8));
        }
        break;
      }
      case 1: {  // insert/delete/overwrite
        const int edits = 1 + int(rng() % 6);
        for (int e = 0; e < edits; ++e) {
          const std::size_t at = rng() % (wire.size() + 1);
          switch (rng() % 3) {
            case 0:
              wire.insert(at, 1, char(rng() & 0xff));
              break;
            case 1:
              if (at < wire.size()) wire.erase(at, 1);
              break;
            default:
              if (at < wire.size()) wire[at] = char(rng() & 0xff);
              break;
          }
        }
        break;
      }
      case 2:  // pure garbage
        wire = rand_bytes(rng, 1 + rng() % 2048);
        break;
      default:  // valid request, garbage pipelined behind it
        wire += rand_bytes(rng, 1 + rng() % 512);
        break;
    }
    account(drive(port, wire, kReadBudget));
  }

  // --- Shut down and check the server's own accounting.
  const auto pre_drain = srv.metrics_snapshot();
  srv.stop();
  const auto snap = srv.metrics_snapshot();
  const double active = snap.gauge("oak_wire_conns_active");
  const std::uint64_t accepted = snap.counter("oak_wire_conns_accepted_total");
  const std::uint64_t closed = snap.counter("oak_wire_conns_closed_total");

  const bool gate_cases = cases >= std::max<std::size_t>(10'000 / scale, 200);
  const bool gate_5xx = resp_5xx == 0;
  const bool gate_hangs = hangs == 0;
  const bool gate_class = misclassified == 0;
  const bool gate_conns = active == 0.0 && closed == accepted;
  const bool pass =
      gate_cases && gate_5xx && gate_hangs && gate_class && gate_conns;

  // --- Merge into BENCH_wire.json (load_wire owns the other sections).
  util::JsonObject root;
  {
    std::ifstream in("BENCH_wire.json");
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      try {
        root = util::Json::parse(ss.str()).as_object();
      } catch (const std::exception&) {
        root.clear();
      }
    }
  }
  util::JsonObject fuzz;
  fuzz["seed"] = seed;
  fuzz["scale"] = scale;
  fuzz["cases"] = cases;
  fuzz["truncation_cases"] = truncation_cases;
  fuzz["framing_cases"] = framing.size();
  fuzz["responses_2xx"] = resp_2xx;
  fuzz["responses_4xx"] = resp_4xx;
  fuzz["responses_5xx"] = resp_5xx;
  fuzz["clean_closes"] = clean_closes;
  fuzz["hangs"] = hangs;
  fuzz["misclassified"] = misclassified;
  fuzz["parse_errors_counted"] =
      pre_drain.counter("oak_wire_parse_errors_total");
  fuzz["conns_accepted"] = accepted;
  fuzz["conns_closed"] = closed;
  util::JsonObject gates;
  auto gate = [](bool ok, const std::string& why) {
    util::JsonObject g;
    g["status"] = std::string(ok ? "pass" : "fail");
    g["requirement"] = why;
    return util::Json(std::move(g));
  };
  gates["corpus_size"] = gate(gate_cases, ">= 10000/scale cases");
  gates["no_5xx"] = gate(gate_5xx, "parse failures never answer 5xx");
  gates["no_hangs"] = gate(gate_hangs, "every conn resolves before deadline");
  gates["classification"] =
      gate(gate_class, "known framing attacks get their exact 4xx");
  gates["conn_accounting"] =
      gate(gate_conns, "every accepted conn closed, none leaked");
  fuzz["gates"] = std::move(gates);
  fuzz["status"] = std::string(pass ? "pass" : "fail");
  root["fuzz"] = std::move(fuzz);
  std::ofstream("BENCH_wire.json")
      << util::Json(root).dump_pretty(2) << "\n";

  std::printf(
      "\nwire_fuzz: %zu cases (%zu truncations, %zu framing) -> "
      "%zu x 2xx, %zu x 4xx, %zu x 5xx, %zu clean closes, %zu hangs, "
      "%zu misclassified\n",
      cases, truncation_cases, framing.size(), resp_2xx, resp_4xx, resp_5xx,
      clean_closes, hangs, misclassified);
  std::printf("conns: accepted %llu closed %llu active %.0f\n",
              (unsigned long long)accepted, (unsigned long long)closed,
              active);
  std::printf("wire_fuzz: %s (wrote BENCH_wire.json)\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
