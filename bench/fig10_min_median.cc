// Figure 10: min/median throughput ratio across the six object sets of the
// §5.2 benchmark site, with and without Oak, 25 clients, loads every 30
// minutes for 72 hours.
//
// A consistently-served page has min ~ median (ratio near 1); a page with a
// lagging set drags the minimum down. Paper shape: Oak lifts the median
// ratio from ~0.3 to ~0.7 and pushes ~90% of loads above 0.5.
#include <cstdio>
#include <map>

#include "browser/browser.h"
#include "util/cdf.h"
#include "util/stats.h"
#include "util/url.h"
#include "workload/benchmark_site.h"
#include "workload/harness.h"
#include "workload/vantage.h"

namespace {

// Map an entry host to its object-set index: set hosts are
// "setK.default.net" / "setK.alt.net"; origin-set objects live under
// "/set0/" on the site host.
int set_of(const oak::browser::ReportEntry& e) {
  if (e.host.rfind("set", 0) == 0 && e.host.size() > 3) {
    return e.host[3] - '0';
  }
  if (e.url.find("/set0/") != std::string::npos) return 0;
  return -1;
}

double min_median_ratio(const oak::browser::PerfReport& report) {
  std::map<int, std::vector<double>> tput;
  for (const auto& e : report.entries) {
    int s = set_of(e);
    if (s < 0 || e.time_s <= 0) continue;
    tput[s].push_back(double(e.size) / e.time_s);
  }
  std::vector<double> per_set;
  for (auto& [s, v] : tput) per_set.push_back(oak::util::mean(v));
  if (per_set.size() < 2) return 1.0;
  return oak::util::min_of(per_set) / oak::util::median(per_set);
}

}  // namespace

int main() {
  using namespace oak;
  workload::print_banner("Figure 10", "min/median set-throughput ratio");

  workload::BenchmarkSiteScenario scenario;
  auto vps =
      workload::make_vantage_points(scenario.universe().network(), 25);

  browser::BrowserConfig bc;
  bc.use_cache = false;  // the paper sets no-cache headers on all objects

  util::Cdf oak_cdf, def_cdf;
  constexpr double kInterval = 1800.0;
  constexpr int kLoads = 144;  // every 30 min for 72 h

  for (const auto& vp : vps) {
    browser::Browser oak_browser(scenario.universe(), vp.client, bc);
    browser::Browser def_browser(scenario.universe(), vp.client, bc);
    for (int i = 0; i < kLoads; ++i) {
      const double t = i * kInterval;
      auto oak_load = oak_browser.load(scenario.oak_site_url(), t);
      auto def_load = def_browser.load(scenario.default_site_url(), t);
      oak_cdf.add(min_median_ratio(oak_load.report));
      def_cdf.add(min_median_ratio(def_load.report));
    }
  }

  workload::print_cdf("oak", oak_cdf);
  workload::print_cdf("default", def_cdf);
  workload::print_stat("median ratio default (paper ~0.3)",
                       def_cdf.quantile(0.5));
  workload::print_stat("median ratio oak (paper ~0.7)", oak_cdf.quantile(0.5));
  workload::print_stat("oak loads with ratio > 0.5 (paper ~0.9)",
                       oak_cdf.fraction_at_or_above(0.5));
  return 0;
}
