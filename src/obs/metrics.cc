#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace oak::obs {

namespace {

// Prometheus le-label / JSON bound formatting: shortest round-trippable-ish
// form, stable across platforms for the spec bounds we generate.
std::string format_bound(double b) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", b);
  return buf;
}

}  // namespace

Histogram::Histogram(HistogramSpec spec)
    : spec_(spec), counts_(spec.buckets + 1) {
  bounds_.reserve(spec_.buckets);
  double b = spec_.least_bound;
  for (std::size_t i = 0; i < spec_.buckets; ++i) {
    bounds_.push_back(b);
    b *= spec_.growth;
  }
}

void Histogram::observe(double v) {
  if constexpr (!kEnabled) {
    (void)v;
    return;
  }
  if (std::isnan(v)) return;  // a NaN sample poisons sum and orders nowhere
  // First bucket whose upper bound admits v; past the last finite bound the
  // sample lands in the +Inf overflow slot.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) {
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.spec = spec_;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t HistogramSnapshot::count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  return total;
}

double HistogramSnapshot::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double HistogramSnapshot::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    seen += counts[i];
    if (static_cast<double>(seen) < target) continue;
    // Log-interpolate inside the bucket; the overflow bucket and the first
    // bucket have no lower/upper bound to interpolate toward, so report
    // their finite edge.
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    if (i == 0) return bounds[0];
    const double lo = bounds[i - 1];
    const double hi = bounds[i];
    const double into =
        (target - static_cast<double>(seen - counts[i])) /
        static_cast<double>(counts[i]);
    return lo * std::pow(hi / lo, std::clamp(into, 0.0, 1.0));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (counts.empty()) {
    *this = other;
    return;
  }
  if (other.counts.empty()) return;
  if (!(spec == other.spec)) {
    throw std::invalid_argument(
        "HistogramSnapshot::merge: mismatched bucket specs");
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  sum += other.sum;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_bound(v) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cum += h.counts[i];
      // Empty leading/inner buckets are elided (the cumulative form stays
      // correct); the +Inf bucket always prints so count is recoverable.
      const bool is_inf = i >= h.bounds.size();
      if (h.counts[i] == 0 && !is_inf) continue;
      const std::string le = is_inf ? "+Inf" : format_bound(h.bounds[i]);
      out += name + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) + "\n";
    }
    out += name + "_sum " + format_bound(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

util::Json MetricsSnapshot::to_json() const {
  util::JsonObject root;
  util::JsonObject cs;
  for (const auto& [name, v] : counters) cs[name] = v;
  root["counters"] = std::move(cs);
  util::JsonObject gs;
  for (const auto& [name, v] : gauges) gs[name] = v;
  root["gauges"] = std::move(gs);
  util::JsonObject hs;
  for (const auto& [name, h] : histograms) {
    util::JsonObject o;
    o["count"] = h.count();
    o["sum"] = h.sum;
    o["mean"] = h.mean();
    o["p50"] = h.quantile(0.50);
    o["p90"] = h.quantile(0.90);
    o["p99"] = h.quantile(0.99);
    util::JsonArray buckets;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      util::JsonObject b;
      b["le"] = i < h.bounds.size() ? util::Json(h.bounds[i])
                                    : util::Json(std::string("+Inf"));
      b["n"] = h.counts[i];
      buckets.emplace_back(std::move(b));
    }
    o["buckets"] = std::move(buckets);
    hs[name] = std::move(o);
  }
  root["histograms"] = std::move(hs);
  return util::Json(std::move(root));
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      HistogramSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(spec);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace(name, h->snapshot());
  }
  return s;
}

}  // namespace oak::obs
