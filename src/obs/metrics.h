// Observability for the Oak serving path (oak::obs).
//
// The operator workflow of §5–§6 needs to see what Oak is doing — which
// servers violate, which rules fire, how long each ingest stage takes — and
// the north star ("heavy traffic ... as fast as the hardware allows") is
// unverifiable without first-class metrics on the hot path. This module is a
// lock-light metrics registry in the Prometheus mold:
//
//  * Counter   — monotonically increasing atomic (relaxed increments);
//  * Gauge     — last-written atomic double (set/add);
//  * Histogram — fixed, log-spaced buckets with atomic per-bucket counts
//                plus a CAS-accumulated sum. Log spacing covers microseconds
//                to minutes in ~28 buckets, and identical specs make
//                per-shard histograms mergeable by plain addition.
//
// Concurrency model: registration (name → instrument) takes a mutex and is
// expected to happen once, at wiring time; callers cache the returned
// reference and the hot path is nothing but relaxed atomic arithmetic. One
// registry per shard keeps even that uncontended; ShardedOakServer merges
// per-shard snapshots on demand.
//
// Snapshots are plain value types (MetricsSnapshot) with merge(), a
// Prometheus-style text exposition and a JSON exposition (reused by the
// BENCH_* emitters so bench output carries per-stage latency distributions).
//
// Disabled mode: compiling with -DOAK_OBS_DISABLED (CMake: -DOAK_OBS=OFF)
// turns every record operation — increments, observations, and the timer's
// clock reads — into nothing, while keeping the registry/snapshot API intact
// so instrumented call sites need no #ifdefs. The enabled mode is itself
// cheap enough to stay within benchmark noise (see bench/micro_core's
// BM_IngestObs* pair and tests/obs_overhead_test.cc).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace oak::obs {

#if defined(OAK_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if constexpr (kEnabled) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) {
    if constexpr (kEnabled) v_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if constexpr (kEnabled) {
      double cur = v_.load(std::memory_order_relaxed);
      while (!v_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
      }
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Log-spaced bucket layout: finite bucket i covers values up to
// least_bound · growth^i; anything larger lands in the implicit +Inf
// overflow bucket. Two histograms merge iff their specs are identical.
struct HistogramSpec {
  double least_bound = 1e-6;  // upper bound of the first bucket
  double growth = 2.0;        // bucket-to-bucket ratio
  std::size_t buckets = 28;   // finite buckets (excludes +Inf)

  // 1 µs … ~134 s in 28 doubling buckets: spans a DNS lookup to a stalled
  // transfer waiting out a 2-minute budget.
  static HistogramSpec latency() { return HistogramSpec{}; }
  // 64 B … 2 GiB in 26 doubling buckets: report and object sizes.
  static HistogramSpec bytes() { return HistogramSpec{64.0, 2.0, 26}; }

  bool operator==(const HistogramSpec&) const = default;
};

struct HistogramSnapshot {
  HistogramSpec spec;
  std::vector<double> bounds;          // finite upper bounds, size spec.buckets
  std::vector<std::uint64_t> counts;   // size spec.buckets + 1 (last = +Inf)
  double sum = 0.0;

  std::uint64_t count() const;
  double mean() const;
  // Interpolated quantile estimate from the bucket layout (q in [0,1]).
  // Uses the bucket's log-midpoint span; exact enough for dashboards.
  double quantile(double q) const;
  // Merging demands identical specs; throws std::invalid_argument otherwise.
  void merge(const HistogramSnapshot& other);
};

class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);

  void observe(double v);
  const HistogramSpec& spec() const { return spec_; }
  HistogramSnapshot snapshot() const;

 private:
  HistogramSpec spec_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // buckets + overflow
  std::atomic<double> sum_{0.0};
};

// A consistent copy of one registry (or a merge of several). Counters and
// histograms merge by addition; gauges also merge by addition — every gauge
// in this code base is a shard-local quantity (cache sizes, shard counts)
// whose fleet-wide value is the sum.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void merge(const MetricsSnapshot& other);

  // Convenience lookups; zero / empty when absent.
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  // Prometheus text exposition (one block per metric, name-sorted).
  std::string to_prometheus() const;
  // JSON exposition: histograms carry only their non-empty buckets plus
  // sum/count and p50/p90/p99 estimates, so BENCH_* files stay compact.
  util::Json to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; returned references live as long as the registry.
  // A histogram re-requested with a different spec keeps its original one.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       HistogramSpec spec = HistogramSpec::latency());

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Times a scope into a histogram. A null histogram (instrumentation off at
// runtime) skips the clock reads entirely; OAK_OBS_DISABLED compiles the
// whole thing away.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if constexpr (kEnabled) {
      if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Record now instead of at scope exit (idempotent).
  void stop() {
    if constexpr (kEnabled) {
      if (h_ == nullptr) return;
      const auto end = std::chrono::steady_clock::now();
      h_->observe(std::chrono::duration<double>(end - start_).count());
      h_ = nullptr;
    }
  }

 private:
  Histogram* h_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace oak::obs
