// Resource-reference extraction: which URLs does a block of HTML load?
//
// This powers both the simulated browser (what to fetch) and Oak's matcher
// tier 1 ("Did the rule contain a reference to an explicit object hosted on a
// domain that resolved to the violating server?" — a scan for src/href
// attributes, paper §4.2.2).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace oak::html {

enum class RefKind {
  kImage,       // <img src>, <source src>
  kScript,      // <script src>
  kStylesheet,  // <link rel=stylesheet href>
  kFrame,       // <iframe src>
  kMedia,       // <video src>, <audio src>
  kOther,
};

std::string to_string(RefKind k);

struct ResourceRef {
  std::string url;
  RefKind kind = RefKind::kOther;
  std::size_t tag_begin = 0;  // byte range of the owning tag
  std::size_t tag_end = 0;
};

// Explicit (tier-1) references: absolute URLs found in resource-bearing
// attributes of tags.
std::vector<ResourceRef> extract_references(std::string_view html);

// URLs of external scripts only (tier-3 expansion inputs).
std::vector<std::string> external_script_urls(std::string_view html);

}  // namespace oak::html
