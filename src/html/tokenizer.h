// A small HTML tokenizer.
//
// Oak does not need a full DOM: rule application is *textual* (rules carry
// literal blocks of page text, paper §4.1) and matching needs only (a) tags
// with resource attributes and (b) inline <script> bodies. The tokenizer
// yields tags with parsed attributes plus the byte range each token covers in
// the source, so extraction and diagnostics can always point back at the
// original text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace oak::html {

enum class TokenType {
  kStartTag,   // <name attr=...> (includes self-closing)
  kEndTag,     // </name>
  kText,       // character data
  kComment,    // <!-- ... -->
  kDoctype,    // <!DOCTYPE ...>
};

struct Attribute {
  std::string name;   // lowercased
  std::string value;  // unquoted
};

struct Token {
  TokenType type = TokenType::kText;
  std::string name;  // tag name, lowercased; empty for text/comment
  std::vector<Attribute> attributes;
  bool self_closing = false;
  std::size_t begin = 0;  // byte offset of token start in source
  std::size_t end = 0;    // one past the last byte

  std::string_view raw(std::string_view source) const {
    return source.substr(begin, end - begin);
  }

  // First value of attribute `name` (lowercase), or empty.
  std::string attr(std::string_view name) const;
  bool has_attr(std::string_view name) const;
};

// Tokenize an HTML document. <script> and <style> element bodies are emitted
// as a single kText token (their content is CDATA-like; '<' inside a script
// must not open tags).
std::vector<Token> tokenize(std::string_view html);

// Convenience: an inline script with its body and source span.
struct InlineScript {
  std::string body;
  std::size_t begin = 0;  // offset of the <script> tag
  std::size_t end = 0;    // one past </script>
};

// All <script> elements without a src attribute.
std::vector<InlineScript> inline_scripts(std::string_view html);

}  // namespace oak::html
