#include "html/tokenizer.h"

#include <cctype>

#include "util/strings.h"

namespace oak::html {

std::string Token::attr(std::string_view name) const {
  for (const auto& a : attributes) {
    if (a.name == name) return a.value;
  }
  return {};
}

bool Token::has_attr(std::string_view name) const {
  for (const auto& a : attributes) {
    if (a.name == name) return true;
  }
  return false;
}

namespace {

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == ':';
}

// Parse attributes within a tag, between `pos` and `end` (exclusive of '>').
std::vector<Attribute> parse_attributes(std::string_view s) {
  std::vector<Attribute> attrs;
  std::size_t i = 0;
  const std::size_t n = s.size();
  while (i < n) {
    while (i < n && (std::isspace(static_cast<unsigned char>(s[i])) ||
                     s[i] == '/')) {
      ++i;
    }
    if (i >= n) break;
    std::size_t name_start = i;
    while (i < n && is_name_char(s[i])) ++i;
    if (i == name_start) {
      ++i;  // skip stray character
      continue;
    }
    Attribute a;
    a.name = util::to_lower(s.substr(name_start, i - name_start));
    while (i < n && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i < n && s[i] == '=') {
      ++i;
      while (i < n && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
      if (i < n && (s[i] == '"' || s[i] == '\'')) {
        char quote = s[i++];
        std::size_t vstart = i;
        while (i < n && s[i] != quote) ++i;
        a.value = std::string(s.substr(vstart, i - vstart));
        if (i < n) ++i;  // closing quote
      } else {
        std::size_t vstart = i;
        while (i < n && !std::isspace(static_cast<unsigned char>(s[i])) &&
               s[i] != '/') {
          ++i;
        }
        a.value = std::string(s.substr(vstart, i - vstart));
      }
    }
    attrs.push_back(std::move(a));
  }
  return attrs;
}

// Find the matching "</name" close tag at or after `from` (case-insensitive).
std::size_t find_close_tag(std::string_view html, std::string_view name,
                           std::size_t from) {
  const std::string needle = "</" + std::string(name);
  std::size_t i = from;
  while (i + needle.size() <= html.size()) {
    if (util::icontains(html.substr(i, needle.size()), needle)) {
      // Confirm it is exactly here (icontains on a window of needle size is
      // equality up to case).
      return i;
    }
    ++i;
  }
  return std::string_view::npos;
}

}  // namespace

std::vector<Token> tokenize(std::string_view html) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = html.size();
  while (i < n) {
    if (html[i] != '<') {
      std::size_t start = i;
      while (i < n && html[i] != '<') ++i;
      Token t;
      t.type = TokenType::kText;
      t.begin = start;
      t.end = i;
      tokens.push_back(std::move(t));
      continue;
    }
    // '<' at i.
    if (i + 3 < n && html.compare(i, 4, "<!--") == 0) {
      std::size_t close = html.find("-->", i + 4);
      std::size_t end = close == std::string_view::npos ? n : close + 3;
      Token t;
      t.type = TokenType::kComment;
      t.begin = i;
      t.end = end;
      tokens.push_back(std::move(t));
      i = end;
      continue;
    }
    if (i + 1 < n && html[i + 1] == '!') {
      std::size_t close = html.find('>', i);
      std::size_t end = close == std::string_view::npos ? n : close + 1;
      Token t;
      t.type = TokenType::kDoctype;
      t.begin = i;
      t.end = end;
      tokens.push_back(std::move(t));
      i = end;
      continue;
    }
    bool end_tag = i + 1 < n && html[i + 1] == '/';
    std::size_t name_start = i + (end_tag ? 2 : 1);
    std::size_t j = name_start;
    while (j < n && is_name_char(html[j])) ++j;
    if (j == name_start) {
      // A bare '<' in text.
      Token t;
      t.type = TokenType::kText;
      t.begin = i;
      t.end = i + 1;
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    std::string name = util::to_lower(html.substr(name_start, j - name_start));
    std::size_t close = html.find('>', j);
    std::size_t tag_end = close == std::string_view::npos ? n : close + 1;
    Token t;
    t.type = end_tag ? TokenType::kEndTag : TokenType::kStartTag;
    t.name = name;
    t.begin = i;
    t.end = tag_end;
    if (!end_tag && close != std::string_view::npos) {
      std::string_view inner = html.substr(j, close - j);
      t.self_closing = !inner.empty() && inner.back() == '/';
      t.attributes = parse_attributes(inner);
    }
    tokens.push_back(t);
    i = tag_end;
    // Raw-text elements: consume the body up to the close tag as one text
    // token so '<' inside scripts/styles never opens tags.
    if (!end_tag && !t.self_closing && (name == "script" || name == "style")) {
      std::size_t body_start = i;
      std::size_t close_at = find_close_tag(html, name, i);
      std::size_t body_end = close_at == std::string_view::npos ? n : close_at;
      if (body_end > body_start) {
        Token body;
        body.type = TokenType::kText;
        body.begin = body_start;
        body.end = body_end;
        tokens.push_back(std::move(body));
      }
      i = body_end;
    }
  }
  return tokens;
}

std::vector<InlineScript> inline_scripts(std::string_view html) {
  std::vector<InlineScript> out;
  auto tokens = tokenize(html);
  for (std::size_t k = 0; k < tokens.size(); ++k) {
    const Token& t = tokens[k];
    if (t.type != TokenType::kStartTag || t.name != "script" ||
        t.self_closing || t.has_attr("src")) {
      continue;
    }
    InlineScript s;
    s.begin = t.begin;
    s.end = t.end;
    if (k + 1 < tokens.size() && tokens[k + 1].type == TokenType::kText) {
      s.body = std::string(tokens[k + 1].raw(html));
      s.end = tokens[k + 1].end;
    }
    // Extend through the close tag when present.
    if (k + 2 < tokens.size() && tokens[k + 2].type == TokenType::kEndTag &&
        tokens[k + 2].name == "script") {
      s.end = tokens[k + 2].end;
    } else if (k + 1 < tokens.size() &&
               tokens[k + 1].type == TokenType::kEndTag &&
               tokens[k + 1].name == "script") {
      s.end = tokens[k + 1].end;
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace oak::html
