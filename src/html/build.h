// HTML construction helpers used by the synthetic page generator and tests.
// Emission is deliberately canonical (double quotes, lowercase tags) so that
// textual rules authored against generated pages match byte-for-byte.
#pragma once

#include <string>
#include <vector>

namespace oak::html {

std::string img_tag(const std::string& url);
std::string script_src_tag(const std::string& url);
std::string stylesheet_tag(const std::string& url);
std::string iframe_tag(const std::string& url);
std::string inline_script_tag(const std::string& body);

// An inline script that builds a URL for `host` programmatically — the
// tier-2 matching case: no well-formed URL, but the domain appears in text.
std::string programmatic_loader_script(const std::string& host,
                                       const std::string& path);

struct PageSkeleton {
  std::string title;
  std::vector<std::string> head_fragments;
  std::vector<std::string> body_fragments;
};

// Assemble a complete document from fragments.
std::string assemble(const PageSkeleton& skeleton);

}  // namespace oak::html
