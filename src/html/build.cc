#include "html/build.h"

namespace oak::html {

std::string img_tag(const std::string& url) {
  return "<img src=\"" + url + "\"/>";
}

std::string script_src_tag(const std::string& url) {
  return "<script src=\"" + url + "\"></script>";
}

std::string stylesheet_tag(const std::string& url) {
  return "<link rel=\"stylesheet\" href=\"" + url + "\"/>";
}

std::string iframe_tag(const std::string& url) {
  return "<iframe src=\"" + url + "\"></iframe>";
}

std::string inline_script_tag(const std::string& body) {
  return "<script>" + body + "</script>";
}

std::string programmatic_loader_script(const std::string& host,
                                       const std::string& path) {
  // Mirrors the common pattern of analytics snippets: the URL is assembled
  // at runtime, so only the bare hostname appears in the page text.
  return inline_script_tag(
      "(function(){var h=\"" + host +
      "\";var e=document.createElement(\"script\");"
      "e.src=(\"https:\"==document.location.protocol?\"https://\":\"http://\")+h+\"" +
      path + "\";document.body.appendChild(e);})();");
}

std::string assemble(const PageSkeleton& skeleton) {
  std::string out = "<!DOCTYPE html>\n<html>\n<head>\n<title>" +
                    skeleton.title + "</title>\n";
  for (const auto& f : skeleton.head_fragments) {
    out += f;
    out += '\n';
  }
  out += "</head>\n<body>\n";
  for (const auto& f : skeleton.body_fragments) {
    out += f;
    out += '\n';
  }
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace oak::html
