#include "html/extract.h"

#include "html/tokenizer.h"
#include "util/strings.h"
#include "util/url.h"

namespace oak::html {

std::string to_string(RefKind k) {
  switch (k) {
    case RefKind::kImage: return "image";
    case RefKind::kScript: return "script";
    case RefKind::kStylesheet: return "stylesheet";
    case RefKind::kFrame: return "frame";
    case RefKind::kMedia: return "media";
    case RefKind::kOther: return "other";
  }
  return "?";
}

std::vector<ResourceRef> extract_references(std::string_view html) {
  std::vector<ResourceRef> refs;
  for (const Token& t : tokenize(html)) {
    if (t.type != TokenType::kStartTag) continue;
    std::string url;
    RefKind kind = RefKind::kOther;
    if (t.name == "img" || t.name == "source") {
      url = t.attr("src");
      kind = RefKind::kImage;
    } else if (t.name == "script") {
      url = t.attr("src");
      kind = RefKind::kScript;
    } else if (t.name == "link") {
      if (util::to_lower(t.attr("rel")) == "stylesheet") {
        url = t.attr("href");
        kind = RefKind::kStylesheet;
      }
    } else if (t.name == "iframe") {
      url = t.attr("src");
      kind = RefKind::kFrame;
    } else if (t.name == "video" || t.name == "audio") {
      url = t.attr("src");
      kind = RefKind::kMedia;
    }
    if (url.empty()) continue;
    // Only absolute URLs participate: relative paths stay on the origin and
    // are not subject to provider switching.
    if (!util::parse_url(url)) continue;
    refs.push_back(ResourceRef{std::move(url), kind, t.begin, t.end});
  }
  return refs;
}

std::vector<std::string> external_script_urls(std::string_view html) {
  std::vector<std::string> out;
  for (const auto& ref : extract_references(html)) {
    if (ref.kind == RefKind::kScript) out.push_back(ref.url);
  }
  return out;
}

}  // namespace oak::html
