#include "browser/report.h"

namespace oak::browser {

util::Json PerfReport::to_json() const {
  util::JsonObject root;
  root["uid"] = user_id;
  root["page"] = page_url;
  root["plt"] = plt_s;
  util::JsonArray entries_json;
  entries_json.reserve(entries.size());
  for (const auto& e : entries) {
    util::JsonObject o;
    o["url"] = e.url;
    o["host"] = e.host;
    o["ip"] = e.ip;
    o["size"] = e.size;
    o["start"] = e.start_s;
    o["time"] = e.time_s;
    if (!e.error.empty()) o["err"] = e.error;
    entries_json.emplace_back(std::move(o));
  }
  root["entries"] = std::move(entries_json);
  return util::Json(std::move(root));
}

std::string PerfReport::serialize() const { return to_json().dump(); }

PerfReport PerfReport::deserialize(const std::string& text) {
  util::Json j = util::Json::parse(text);
  PerfReport r;
  r.user_id = j.at("uid").as_string();
  r.page_url = j.at("page").as_string();
  r.plt_s = j.at("plt").as_number();
  for (const auto& e : j.at("entries").as_array()) {
    ReportEntry entry;
    entry.url = e.at("url").as_string();
    entry.host = e.at("host").as_string();
    entry.ip = e.at("ip").as_string();
    entry.size = static_cast<std::uint64_t>(e.at("size").as_int());
    entry.start_s = e.at("start").as_number();
    entry.time_s = e.at("time").as_number();
    if (const util::Json* err = e.find("err")) entry.error = err->as_string();
    r.entries.push_back(std::move(entry));
  }
  return r;
}

}  // namespace oak::browser
