// Client performance reports — the HAR-lite wire format.
//
// Paper §4 / §5 (Implementation): the client reports back, per loaded
// object, "the loaded URL, the size of the loaded object, and the timing
// information of that object", plus its identifying cookie, via HTTP POST.
// Fig. 15 measures the byte size of these serialized reports, so the format
// here is the actual wire format, not an in-memory convenience.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace oak::browser {

struct ReportEntry {
  std::string url;
  std::string host;  // hostname the URL named
  std::string ip;    // address actually contacted (dotted quad); empty when
                     // resolution itself failed
  std::uint64_t size = 0;
  double start_s = 0.0;  // offset from navigation start
  double time_s = 0.0;   // full fetch duration (dns+connect+ttfb+download),
                         // or the time burned before the fetch failed
  // Failure code ("dns", "dns_timeout", "refused", "timeout", "trunc" — see
  // net::error_code); empty for a successful fetch. On the wire the "err"
  // member is emitted only when non-empty, so reports without failures are
  // byte-identical to the pre-failure format (Fig. 15 sizes unchanged).
  std::string error;

  bool failed() const { return !error.empty(); }
};

struct PerfReport {
  std::string user_id;
  std::string page_url;
  double plt_s = 0.0;
  std::vector<ReportEntry> entries;

  util::Json to_json() const;
  // Compact wire encoding; its .size() is what Fig. 15 plots.
  std::string serialize() const;
  // Throws util::JsonError on malformed input.
  static PerfReport deserialize(const std::string& text);
};

}  // namespace oak::browser
