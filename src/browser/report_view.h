// Non-owning view of one performance report — the ingestion currency.
//
// PerfReport (browser/report.h) owns its strings and is what clients build
// and serialize. The server side never needs ownership: grouping, violator
// detection and matching only read the fields, and the few strings that
// survive ingestion (violator IPs/domains, script URLs) are copied at the
// point they are retained. ReportView carries std::string_view fields that
// alias either the POSTed wire buffer or the ingest arena (zero-copy path,
// browser/report_decoder.h) or an owned PerfReport (ReportView::of, used by
// replay/analyze entry points) — so the whole pipeline downstream of the
// decoder is one implementation either way.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "browser/report.h"

namespace oak::browser {

struct ReportEntryView {
  std::string_view url;
  std::string_view host;
  std::string_view ip;
  std::uint64_t size = 0;
  double start_s = 0.0;
  double time_s = 0.0;
  std::string_view error;  // failure code; empty for a successful fetch

  bool failed() const { return !error.empty(); }
};

struct ReportView {
  std::string_view user_id;
  std::string_view page_url;
  double plt_s = 0.0;
  std::vector<ReportEntryView> entries;

  // View over an owned report; valid while `report` is.
  static ReportView of(const PerfReport& report);

  // Owned copy (the inverse of `of`; used to compare the zero-copy decoder
  // against the DOM oracle bit for bit).
  PerfReport materialize() const;
};

}  // namespace oak::browser
