#include "browser/report_decoder.h"

#include <cmath>
#include <string>

#include "util/json_stream.h"

namespace oak::browser {

namespace {

using util::JsonEvent;
using util::JsonScanner;

// Last-seen value of one report field. The DOM path stores members in a
// std::map, so a duplicate key silently replaces the earlier value — even
// one of the wrong type. The decoder mirrors that by recording only the
// last occurrence and validating at end-of-object.
struct Slot {
  enum Kind : unsigned char { kAbsent, kString, kNumber, kOther };
  Kind kind = kAbsent;
  std::string_view sv;  // kString payload; stable (wire or arena bytes)
  double num = 0.0;     // kNumber payload
};

// Drive the scanner past the rest of a container whose Begin event was
// already consumed.
void drain_container(JsonScanner& s) {
  const std::size_t base = s.depth() - 1;
  while (s.depth() > base) s.next();
}

// Consume one value and record it. String payloads that escaped decoding
// placed in the scanner's scratch buffer are copied into the arena so they
// survive later events; clean ones stay views into the wire. `intern`
// dedups hosts/IPs, which repeat across most entries of a report.
Slot read_value(JsonScanner& s, util::StringArena& arena, bool intern) {
  Slot slot;
  switch (s.next()) {
    case JsonEvent::kString:
      slot.kind = Slot::kString;
      if (intern) {
        slot.sv = arena.intern(s.text());
      } else {
        slot.sv = s.string_escaped() ? arena.store(s.text()) : s.text();
      }
      break;
    case JsonEvent::kNumber:
      slot.kind = Slot::kNumber;
      slot.num = s.number();
      break;
    case JsonEvent::kBeginObject:
    case JsonEvent::kBeginArray:
      slot.kind = Slot::kOther;
      drain_container(s);
      break;
    default:  // bool / null
      slot.kind = Slot::kOther;
      break;
  }
  return slot;
}

// Error-code-style field checks (errors must be *recorded*, not thrown: a
// later duplicate "entries" array can still supersede a bad candidate).
// Messages mirror Json::at/as_* so both decoders read the same.
bool take_string(const Slot& slot, const char* key, std::string_view* out,
                 std::string* err) {
  if (slot.kind == Slot::kAbsent) {
    *err = std::string("json: missing key '") + key + "'";
    return false;
  }
  if (slot.kind != Slot::kString) {
    *err = "json: not a string";
    return false;
  }
  *out = slot.sv;
  return true;
}

bool take_number(const Slot& slot, const char* key, double* out,
                 std::string* err) {
  if (slot.kind == Slot::kAbsent) {
    *err = std::string("json: missing key '") + key + "'";
    return false;
  }
  if (slot.kind != Slot::kNumber) {
    *err = "json: not a number";
    return false;
  }
  *out = slot.num;
  return true;
}

// Parse one entry object (Begin event already consumed). On success pushes
// the entry; on the first semantic error records it in `err` (and still
// finishes consuming the object, keeping the scanner in sync).
void parse_entry(JsonScanner& s, util::StringArena& arena,
                 std::vector<ReportEntryView>* out, std::string* err) {
  Slot url, host, ip, size, start, time, errc;
  while (true) {
    JsonEvent e = s.next();
    if (e == JsonEvent::kEndObject) break;
    // Only kKey is possible here; compare before the next event recycles
    // the scratch buffer.
    const std::string_view key = s.text();
    if (key == "url") url = read_value(s, arena, /*intern=*/false);
    else if (key == "host") host = read_value(s, arena, /*intern=*/true);
    else if (key == "ip") ip = read_value(s, arena, /*intern=*/true);
    else if (key == "size") size = read_value(s, arena, false);
    else if (key == "start") start = read_value(s, arena, false);
    else if (key == "time") time = read_value(s, arena, false);
    else if (key == "err") errc = read_value(s, arena, /*intern=*/true);
    else s.skip_value();
  }
  if (!err->empty()) return;  // an earlier element already decided the verdict

  // Field validation in the DOM path's order (report.cc) so the first
  // error matches.
  ReportEntryView entry;
  double num = 0.0;
  if (!take_string(url, "url", &entry.url, err)) return;
  if (!take_string(host, "host", &entry.host, err)) return;
  if (!take_string(ip, "ip", &entry.ip, err)) return;
  if (!take_number(size, "size", &num, err)) return;
  // Exactly as_int()'s conversion: llround, then unsigned cast.
  entry.size = static_cast<std::uint64_t>(std::llround(num));
  if (!take_number(start, "start", &entry.start_s, err)) return;
  if (!take_number(time, "time", &entry.time_s, err)) return;
  // "err" is optional on the wire (emitted only for failed fetches); when
  // present it must be a string, mirroring find("err")->as_string().
  if (errc.kind != Slot::kAbsent) {
    if (errc.kind != Slot::kString) {
      *err = "json: not a string";
      return;
    }
    entry.error = errc.sv;
  }
  out->push_back(entry);
}

}  // namespace

void decode_report_view(std::string_view wire, util::StringArena& arena,
                        ReportView& out) {
  // Recycle the caller's entries vector: steady-state ingest re-decodes
  // same-shaped reports into the same capacity without touching the heap.
  std::vector<ReportEntryView> entries = std::move(out.entries);
  entries.clear();
  out = ReportView{};

  JsonScanner s(wire);
  const bool is_object = s.next() == JsonEvent::kBeginObject;

  Slot uid, page, plt;
  bool entries_seen = false;
  std::string entries_err;  // last "entries" value was not an array
  std::string entry_err;    // first bad element/field in the last candidate

  if (is_object) {
    while (true) {
      JsonEvent e = s.next();
      if (e == JsonEvent::kEndObject) break;
      const std::string_view key = s.text();
      if (key == "uid") {
        uid = read_value(s, arena, false);
      } else if (key == "page") {
        page = read_value(s, arena, false);
      } else if (key == "plt") {
        plt = read_value(s, arena, false);
      } else if (key == "entries") {
        // Last occurrence wins wholesale: reset any earlier candidate.
        entries_seen = true;
        entries.clear();
        entries_err.clear();
        entry_err.clear();
        JsonEvent v = s.next();
        if (v == JsonEvent::kBeginArray) {
          entries.reserve(16);
          while (true) {
            JsonEvent el = s.next();
            if (el == JsonEvent::kEndArray) break;
            if (el == JsonEvent::kBeginObject) {
              parse_entry(s, arena, &entries, &entry_err);
            } else {
              if (entry_err.empty()) entry_err = "json: not an object";
              if (el == JsonEvent::kBeginArray) drain_container(s);
            }
          }
        } else {
          entries_err = "json: not an array";
          if (v == JsonEvent::kBeginObject) drain_container(s);
        }
      } else {
        s.skip_value();
      }
    }
  } else {
    // The DOM path still parses the whole document (and checks trailing
    // bytes) before at("uid") rejects a non-object root; do the same so
    // syntax errors win on exactly the same inputs. A scalar root is
    // already fully consumed; an array root still needs draining.
    while (s.depth() > 0) s.next();
  }
  s.next();  // consume kEnd — rejects trailing bytes like Json::parse

  if (!is_object) throw util::JsonError("json: not an object");

  std::string err;
  if (!take_string(uid, "uid", &out.user_id, &err) ||
      !take_string(page, "page", &out.page_url, &err) ||
      !take_number(plt, "plt", &out.plt_s, &err)) {
    throw util::JsonError(err);
  }
  if (!entries_seen) throw util::JsonError("json: missing key 'entries'");
  if (!entries_err.empty()) throw util::JsonError(entries_err);
  if (!entry_err.empty()) throw util::JsonError(entry_err);
  out.entries = std::move(entries);
}

ReportView decode_report_view(std::string_view wire,
                              util::StringArena& arena) {
  ReportView view;
  decode_report_view(wire, arena, view);
  return view;
}

PerfReport decode_report(std::string_view wire) {
  util::StringArena arena;
  return decode_report_view(wire, arena).materialize();
}

}  // namespace oak::browser
