#include "browser/browser.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "html/extract.h"
#include "page/inline_eval.h"
#include "util/strings.h"
#include "util/url.h"

namespace oak::browser {

namespace {
// Alias header values are either "<alias-url> <canonical-url>" or
// "host:<alias-host> host:<canonical-host>".
void apply_alias_header(http::BrowserCache& cache, const std::string& value) {
  auto parts = util::split_nonempty(value, ' ');
  if (parts.size() != 2) return;
  constexpr std::string_view kHostPrefix = "host:";
  if (util::starts_with(parts[0], kHostPrefix) &&
      util::starts_with(parts[1], kHostPrefix)) {
    cache.add_host_alias(parts[0].substr(kHostPrefix.size()),
                         parts[1].substr(kHostPrefix.size()));
  } else {
    cache.add_alias(parts[0], parts[1]);
  }
}
}  // namespace

Browser::Browser(page::WebUniverse& universe, net::ClientId client,
                 BrowserConfig cfg)
    : universe_(universe),
      client_(client),
      cfg_(cfg),
      rng_(util::Rng::forked(universe.network().seed(),
                             0xb0b0ull + client)) {
  if (cfg_.metrics != nullptr) {
    obs::MetricsRegistry& m = *cfg_.metrics;
    metrics_.plt = &m.histogram("oak_browser_plt_seconds");
    metrics_.report_bytes =
        &m.histogram("oak_browser_report_bytes", obs::HistogramSpec::bytes());
    metrics_.loads = &m.counter("oak_browser_loads_total");
    metrics_.fetch_retries = &m.counter("oak_browser_fetch_retries_total");
    metrics_.failed_objects = &m.counter("oak_browser_failed_objects_total");
    metrics_.reports_delivered =
        &m.counter("oak_browser_reports_delivered_total");
    metrics_.reports_lost = &m.counter("oak_browser_reports_lost_total");
  }
}

net::FetchOutcome Browser::fetch_with_retries(
    const std::string& url, const std::string& host, std::uint64_t bytes,
    double now, Resolved* res, double* start, bool new_connection,
    LoadResult* out) {
  for (int attempt = 0;; ++attempt) {
    net::FetchOutcome oc = universe_.network().fetch_outcome(
        client_, res->server, bytes, now + *start, rng_, res->was_cold,
        new_connection, cfg_.fetch_timeout_s);
    if (!oc.failed()) return oc;
    // Every failed attempt becomes its own report entry (size 0, typed
    // code): a flaky server accumulates failure samples server-side even
    // when a retry eventually succeeds.
    out->report.entries.push_back(
        ReportEntry{url, host, res->ip.to_string(), 0, *start,
                    oc.error.elapsed_s,
                    std::string(net::error_code(oc.error.type))});
    if (attempt >= cfg_.max_retries) return oc;
    ++out->fetch_retries;
    // Backoff doubles per attempt but with the exponent clamped (1 << 31 is
    // undefined, and 2^30 seconds already exceeds any plausible budget) and
    // the deterministic term capped at max_backoff_s, so a generous retry
    // budget degrades into steady polling rather than geometric waits.
    double base = std::ldexp(cfg_.retry_backoff_s, std::min(attempt, 30));
    if (cfg_.max_backoff_s > 0.0) base = std::min(base, cfg_.max_backoff_s);
    *start += oc.error.elapsed_s + base + rng_.uniform(0.0, base);
    // The failure may mean the cached address went stale (the provider
    // moved front-ends): drop it and resolve afresh before retrying.
    dns_cache_.erase(host);
    auto fresh = resolve(host, now + *start);
    if (!fresh) {
      out->report.entries.push_back(ReportEntry{
          url, host, "", 0, *start, 0.0,
          std::string(net::error_code(net::FetchErrorType::kDns))});
      net::FetchOutcome fail;
      fail.error = net::FetchError{net::FetchErrorType::kDns, 0.0};
      return fail;
    }
    *res = *fresh;
    new_connection = true;
  }
}

std::optional<Browser::Resolved> Browser::resolve(const std::string& host,
                                                  double now) {
  auto it = dns_cache_.find(host);
  if (it != dns_cache_.end() && it->second.expires_at > now) {
    net::ServerId sid = universe_.network().server_by_ip(it->second.ip);
    if (sid != net::kInvalidServer) {
      return Resolved{sid, it->second.ip, /*was_cold=*/false};
    }
  }
  auto ip = universe_.dns().resolve(host);
  if (!ip) return {};
  net::ServerId sid = universe_.network().server_by_ip(*ip);
  if (sid == net::kInvalidServer) return {};
  dns_cache_[host] = DnsCacheEntry{*ip, now + cfg_.dns_ttl_s};
  return Resolved{sid, *ip, /*was_cold=*/true};
}

LoadResult Browser::load(const std::string& url, double now) {
  LoadResult out;
  if (metrics_.loads != nullptr) metrics_.loads->inc();
  auto parsed = util::parse_url(url);
  if (!parsed) {
    out.page_status = 400;
    return out;
  }
  const std::string& origin_host = parsed->host;

  auto origin_res = resolve(origin_host, now);
  if (!origin_res) {
    out.page_status = 502;
    return out;
  }

  // --- 1. Fetch the index page (through the Oak handler when present).
  http::Request req = http::Request::get(url);
  req.client_ip = universe_.network().client(client_).addr.to_string();
  cookies_.attach(origin_host, req.headers);
  http::Response resp;
  const page::WebUniverse::Handler* handler =
      universe_.handler(origin_host);
  if (handler) {
    resp = (*handler)(req, now);
  } else if (const page::WebObject* index = universe_.store().find(url)) {
    resp = http::Response::html(index->body);
  } else {
    resp = http::Response::not_found();
  }
  out.page_status = resp.status;
  cookies_.ingest(origin_host, resp.headers);
  for (const auto& alias : resp.headers.get_all(http::kOakAliasHeader)) {
    apply_alias_header(cache_, alias);
  }
  if (!resp.ok()) return out;
  out.page_html = resp.body;

  Resolved origin = *origin_res;
  double index_start = 0.0;
  net::FetchOutcome index_oc =
      fetch_with_retries(url, origin_host, resp.body.size(), now, &origin,
                         &index_start, /*new_connection=*/true, &out);
  if (index_oc.failed()) {
    // Navigation failed: no page, no discovery — and nothing to upload to,
    // so the report dies with the load (report loss under origin outages).
    out.page_status = 504;
    out.page_html.clear();
    out.plt_s = index_start + index_oc.elapsed();
    out.report.page_url = url;
    out.report.plt_s = out.plt_s;
    if (auto uid = cookies_.get(origin_host, http::kOakUserCookie)) {
      out.report.user_id = *uid;
    }
    ++out.failed_objects;
    if (metrics_.loads != nullptr) {
      metrics_.plt->observe(out.plt_s);
      metrics_.fetch_retries->inc(out.fetch_retries);
      metrics_.failed_objects->inc(out.failed_objects);
      if (cfg_.send_report && handler) metrics_.reports_lost->inc();
    }
    return out;
  }
  const double t_index = index_start + index_oc.timing.total();
  out.report.entries.push_back(ReportEntry{
      url, origin_host, origin.ip.to_string(), resp.body.size(), index_start,
      index_oc.timing.total()});

  // --- 2. Resource discovery from the returned HTML text.
  struct Pending {
    std::string url;
    double at;  // discovery time relative to navigation start
  };
  std::deque<Pending> queue;
  for (const auto& ref : html::extract_references(resp.body)) {
    queue.push_back({ref.url, t_index});
  }
  for (const auto& il : page::evaluate_inline_scripts(resp.body)) {
    queue.push_back({il.url(), t_index});
  }
  // Hidden loads belong to the page identity, not its (possibly rewritten)
  // text; Oak never touches them, so the original entry is authoritative.
  if (const page::WebObject* index_obj = universe_.store().find(url)) {
    for (const auto& h : index_obj->hidden_induced) {
      queue.push_back({h, t_index});
    }
  }

  // --- 3. Scheduling with per-host connection slots (HTTP/1.1) or one
  // multiplexed connection per host (HTTP/2).
  std::map<std::string, HostSlots> slots;
  std::map<std::string, H2Conn> h2_conns;
  double plt = t_index;
  while (!queue.empty()) {
    Pending p = queue.front();
    queue.pop_front();
    auto obj_url = util::parse_url(p.url);
    if (!obj_url) {
      ++out.missing_objects;
      continue;
    }

    const page::WebObject* obj = universe_.store().find(p.url);

    if (cfg_.use_cache && cache_.lookup(p.url, now + p.at)) {
      ++out.cache_hits;
      plt = std::max(plt, p.at);
      if (obj) {
        for (const auto& child : obj->induced) queue.push_back({child, p.at});
        for (const auto& child : obj->hidden_induced) {
          queue.push_back({child, p.at});
        }
      }
      continue;
    }

    if (!obj) {
      ++out.missing_objects;
      continue;
    }
    auto res = resolve(obj_url->host, now + p.at);
    if (!res) {
      // NXDOMAIN: a failure the report should still carry even though no
      // server was ever contacted (ip stays empty, zero time burned).
      out.report.entries.push_back(ReportEntry{
          p.url, obj_url->host, "", 0, p.at, 0.0,
          std::string(net::error_code(net::FetchErrorType::kDns))});
      ++out.missing_objects;
      ++out.failed_objects;
      continue;
    }

    double start = p.at;
    bool new_conn = true;
    std::pair<HostSlots*, std::size_t> h1_slot{nullptr, 0};
    if (cfg_.use_h2) {
      // One connection per host; streams multiplex freely once the
      // connection is up.
      H2Conn& conn = h2_conns[obj_url->host];
      if (conn.open) {
        new_conn = false;
        start = std::max(p.at, conn.setup_done);
      }
    } else {
      HostSlots& hs = slots[obj_url->host];
      // Prefer an idle established connection; otherwise open a new one
      // while under the per-host limit; otherwise queue on the
      // earliest-free slot.
      std::size_t slot = 0;
      bool found_idle = false;
      for (std::size_t i = 0; i < hs.free_at.size(); ++i) {
        if (hs.free_at[i] <= p.at) {
          slot = i;
          found_idle = true;
          break;
        }
      }
      if (!found_idle) {
        if (static_cast<int>(hs.free_at.size()) <
            cfg_.max_connections_per_host) {
          hs.free_at.push_back(p.at);
          hs.connected.push_back(false);
          slot = hs.free_at.size() - 1;
        } else {
          slot = static_cast<std::size_t>(
              std::min_element(hs.free_at.begin(), hs.free_at.end()) -
              hs.free_at.begin());
        }
      }
      new_conn = !hs.connected[slot];
      start = std::max(p.at, hs.free_at[slot]);
      h1_slot = {&hs, slot};
    }
    Resolved robj = *res;
    net::FetchOutcome oc = fetch_with_retries(
        p.url, obj_url->host, obj->size, now, &robj, &start, new_conn, &out);
    const double done = start + oc.elapsed();
    if (cfg_.use_h2) {
      H2Conn& conn = h2_conns[obj_url->host];
      if (!oc.failed() && !conn.open) {
        conn.open = true;
        conn.setup_done = start + oc.timing.dns + oc.timing.connect;
      }
    } else {
      h1_slot.first->free_at[h1_slot.second] = done;
      // A refused/broken attempt leaves no connection behind.
      h1_slot.first->connected[h1_slot.second] = !oc.failed();
    }
    plt = std::max(plt, done);

    if (oc.failed()) {
      // Graceful degradation: the time burned counts against PLT, the
      // failed attempts are already in the report, and the load carries on
      // without this object (its induced children are never discovered —
      // a dead aggregator takes its dependents with it).
      ++out.failed_objects;
      continue;
    }

    out.report.entries.push_back(ReportEntry{p.url, obj_url->host,
                                             robj.ip.to_string(), obj->size,
                                             start, oc.timing.total()});
    if (cfg_.use_cache && obj->max_age_s > 0.0) {
      cache_.store(p.url, obj->size, now + done, obj->max_age_s);
    }
    for (const auto& child : obj->induced) queue.push_back({child, done});
    for (const auto& child : obj->hidden_induced) {
      queue.push_back({child, done});
    }
  }

  // --- 4. Report assembly and upload.
  if (cfg_.report_mechanism == ReportMechanism::kResourceTimingApi) {
    // The Resource Timing API hides cross-origin entries unless the
    // provider sent Timing-Allow-Origin; same-origin objects are always
    // visible to page script.
    std::erase_if(out.report.entries, [&](const ReportEntry& e) {
      if (util::same_site(e.host, origin_host)) return false;
      const page::WebObject* obj = universe_.store().find(e.url);
      return obj == nullptr || !obj->timing_allow_origin;
    });
  }
  out.plt_s = plt;
  out.report.page_url = url;
  out.report.plt_s = plt;
  if (auto uid = cookies_.get(origin_host, http::kOakUserCookie)) {
    out.report.user_id = *uid;
  }
  const std::string wire = out.report.serialize();
  out.report_bytes = wire.size();
  if (cfg_.send_report && handler) {
    // One attempt, never retried: reports are advisory and strictly off
    // the critical path (§6) — burning user time re-uploading telemetry
    // would invert the tool's purpose. The origin only sees the POST when
    // the transfer actually completed.
    net::FetchOutcome upload = universe_.network().fetch_outcome(
        client_, origin.server, wire.size(), now + plt, rng_,
        /*cold_dns=*/false, /*new_connection=*/true, cfg_.fetch_timeout_s);
    out.report_upload_s = upload.elapsed();
    if (!upload.failed()) {
      http::Request post = http::Request::post(
          "http://" + origin_host + "/oak/report", wire);
      post.client_ip = universe_.network().client(client_).addr.to_string();
      cookies_.attach(origin_host, post.headers);
      http::Response rr = (*handler)(post, now + plt);
      out.report_delivered = rr.ok();
    }
  }
  if (metrics_.loads != nullptr) {
    metrics_.plt->observe(out.plt_s);
    metrics_.report_bytes->observe(static_cast<double>(out.report_bytes));
    metrics_.fetch_retries->inc(out.fetch_retries);
    metrics_.failed_objects->inc(out.failed_objects);
    if (cfg_.send_report && handler) {
      (out.report_delivered ? metrics_.reports_delivered
                            : metrics_.reports_lost)
          ->inc();
    }
  }
  return out;
}

}  // namespace oak::browser
