// The Oak-enabled client: a simulated browser.
//
// Substitutes for the paper's modified WebKit/PhantomJS. One Browser is one
// user: it keeps a cookie jar (the Oak identity), an object cache (with
// alias support for type-2 rewrites), a DNS cache, and a private jitter
// stream. load() performs a full page load:
//
//   1. GET the index — through the origin's registered handler when one
//      exists (that is where Oak sits), else from the static store;
//   2. discover resources from the *returned* HTML text: explicit
//      src/href references, inline programmatic loaders (evaluated from
//      text, so Oak's rewrites change what is loaded), external-script
//      induction and the page's hidden loads;
//   3. schedule fetches with per-host connection limits and DNS/connection
//      reuse, computing each object's timing via the network model;
//   4. assemble the HAR-lite performance report and POST it back to the
//      origin (off the critical path — "performance reports are uploaded …
//      after the page has been downloaded", §6).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "browser/report.h"
#include "http/cache.h"
#include "http/cookies.h"
#include "http/message.h"
#include "obs/metrics.h"
#include "page/site.h"
#include "util/rng.h"

namespace oak::browser {

// How performance data reaches Oak (paper §6, Alternative Mechanisms):
//  * kModifiedClient — the paper's approach: a modified browser reports
//    every fetched object;
//  * kResourceTimingApi — page JavaScript reads the W3C Resource Timing
//    API. Cross-origin entries are only visible when the provider opted in
//    with a Timing-Allow-Origin header, so most third parties are invisible
//    and Oak loses exactly the objects it exists to manage.
enum class ReportMechanism { kModifiedClient, kResourceTimingApi };

struct BrowserConfig {
  int max_connections_per_host = 6;
  double dns_ttl_s = 300.0;
  bool use_cache = true;
  bool send_report = true;
  ReportMechanism report_mechanism = ReportMechanism::kModifiedClient;
  // HTTP/2-style transport: one connection per host, unlimited concurrent
  // streams (no per-connection queueing). Oak itself is transport-agnostic
  // — reports look the same — but PLTs and the relative cost of connection
  // setup change (see bench/ablate_h2).
  bool use_h2 = false;
  // Resilience. Each fetch gets a wall-clock budget (0 = unlimited) and on
  // failure is retried up to max_retries times with exponential backoff
  // plus jitter; between attempts the cached DNS entry is dropped and the
  // name re-resolved, so a provider that moved front-ends is found again.
  double fetch_timeout_s = 60.0;
  int max_retries = 2;
  double retry_backoff_s = 0.1;  // attempt i waits base·2^i + U(0, base·2^i)
  // Ceiling on the deterministic backoff term (the jitter adds at most the
  // same again), so a long retry budget degrades into steady polling rather
  // than hour-long waits. 0 disables the cap.
  double max_backoff_s = 30.0;
  // Optional fleet-side instrumentation: PLT / report-size distributions,
  // load, retry and report-delivery counters. Must outlive the browser.
  obs::MetricsRegistry* metrics = nullptr;
};

struct LoadResult {
  PerfReport report;          // what was (or would be) POSTed to Oak
  double plt_s = 0.0;         // page load time
  std::string page_html;      // body the origin returned (post-Oak-rewrite)
  int page_status = 200;
  std::size_t cache_hits = 0;
  std::size_t missing_objects = 0;  // URLs with no backing object (404s)
  std::size_t failed_objects = 0;   // fetches that failed every attempt
  std::size_t fetch_retries = 0;    // failed attempts that were retried
  std::size_t report_bytes = 0;     // serialized report size (Fig. 15)
  double report_upload_s = 0.0;     // upload duration, not part of PLT
  bool report_delivered = false;
};

class Browser {
 public:
  Browser(page::WebUniverse& universe, net::ClientId client,
          BrowserConfig cfg = {});

  // Load `url` starting at simulated time `now` (seconds).
  LoadResult load(const std::string& url, double now);

  http::CookieJar& cookies() { return cookies_; }
  http::BrowserCache& cache() { return cache_; }
  void clear_dns_cache() { dns_cache_.clear(); }
  net::ClientId client() const { return client_; }

 private:
  struct Resolved {
    net::ServerId server;
    net::IpAddr ip;
    bool was_cold;
  };
  // Resolve through the client DNS cache; nullopt for unknown hosts.
  std::optional<Resolved> resolve(const std::string& host, double now);

  // One logical fetch: bounded retries with backoff, DNS re-resolution
  // between attempts, and one failed-attempt report entry per error (size
  // 0, typed code) so the server sees every failure sample. On return
  // *start is the start of the final attempt and *res names the server it
  // contacted.
  net::FetchOutcome fetch_with_retries(const std::string& url,
                                       const std::string& host,
                                       std::uint64_t bytes, double now,
                                       Resolved* res, double* start,
                                       bool new_connection, LoadResult* out);

  // Per-host connection slots used by the scheduler during one load.
  struct HostSlots {
    std::vector<double> free_at;  // per-slot availability
    std::vector<bool> connected;  // slot has an established connection
  };
  // Per-host HTTP/2 connection state during one load.
  struct H2Conn {
    bool open = false;
    double setup_done = 0.0;  // when the connection became usable
  };

  // Instrument pointers resolved once at construction (null when
  // cfg_.metrics is null, which also skips the per-load recording).
  struct BrowserMetrics {
    obs::Histogram* plt = nullptr;
    obs::Histogram* report_bytes = nullptr;
    obs::Counter* loads = nullptr;
    obs::Counter* fetch_retries = nullptr;
    obs::Counter* failed_objects = nullptr;
    obs::Counter* reports_delivered = nullptr;
    obs::Counter* reports_lost = nullptr;
  };

  page::WebUniverse& universe_;
  net::ClientId client_;
  BrowserConfig cfg_;
  BrowserMetrics metrics_;
  util::Rng rng_;
  http::CookieJar cookies_;
  http::BrowserCache cache_;
  struct DnsCacheEntry {
    net::IpAddr ip;
    double expires_at;
  };
  std::map<std::string, DnsCacheEntry> dns_cache_;
};

}  // namespace oak::browser
