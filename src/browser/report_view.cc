#include "browser/report_view.h"

namespace oak::browser {

ReportView ReportView::of(const PerfReport& report) {
  ReportView view;
  view.user_id = report.user_id;
  view.page_url = report.page_url;
  view.plt_s = report.plt_s;
  view.entries.reserve(report.entries.size());
  for (const auto& e : report.entries) {
    view.entries.push_back(ReportEntryView{e.url, e.host, e.ip, e.size,
                                           e.start_s, e.time_s, e.error});
  }
  return view;
}

PerfReport ReportView::materialize() const {
  PerfReport report;
  report.user_id = std::string(user_id);
  report.page_url = std::string(page_url);
  report.plt_s = plt_s;
  report.entries.reserve(entries.size());
  for (const auto& e : entries) {
    ReportEntry entry;
    entry.url = std::string(e.url);
    entry.host = std::string(e.host);
    entry.ip = std::string(e.ip);
    entry.size = e.size;
    entry.start_s = e.start_s;
    entry.time_s = e.time_s;
    entry.error = std::string(e.error);
    report.entries.push_back(std::move(entry));
  }
  return report;
}

}  // namespace oak::browser
