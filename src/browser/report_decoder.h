// Zero-copy streaming report decoder — the ingestion fast path.
//
// PerfReport::deserialize parses the wire bytes into a util::Json DOM (a
// std::map node and a heap key string per object member) and then copies
// every field out of it. For the server, which ingests millions of these,
// that DOM is pure overhead. decode_report_view walks the bytes once with
// util::JsonScanner and materializes a ReportView directly: URL/uid/page
// strings are views into the wire buffer (or into the arena when they
// contained escapes), and host/ip strings are interned in the arena so the
// dozens of entries a real page load reports collapse onto one stored copy
// per server — which also gives grouping pointer-identity fast paths.
//
// Contract (held by tests/report_decoder_test.cc against the DOM oracle):
// for every byte string, decode_report() and PerfReport::deserialize()
// either both throw util::JsonError or both produce bit-identical
// PerfReports. That includes the DOM path's std::map semantics — duplicate
// keys resolve to the last occurrence, unknown keys are ignored (but still
// validated), key order is irrelevant — so the decoder defers type checks
// to end-of-object instead of failing on the first occurrence.
#pragma once

#include <string_view>

#include "browser/report_view.h"
#include "util/arena.h"

namespace oak::browser {

// Decode wire bytes into a view without constructing the Json DOM. The
// returned view aliases `wire` and `arena`; it is valid while both live and
// the arena is not clear()ed. Throws util::JsonError on exactly the inputs
// PerfReport::deserialize rejects.
ReportView decode_report_view(std::string_view wire,
                              util::StringArena& arena);

// Recycling variant: decodes into `out`, reusing its entries vector's
// capacity across reports (pairs with StringArena::clear()'s block
// retention for allocation-free steady-state ingest). On throw `out` is
// left default-constructed.
void decode_report_view(std::string_view wire, util::StringArena& arena,
                        ReportView& out);

// Streaming decode to an owned PerfReport. Same accept/reject behavior and
// bit-identical fields vs PerfReport::deserialize, without the DOM.
PerfReport decode_report(std::string_view wire);

}  // namespace oak::browser
