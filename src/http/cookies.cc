#include "http/cookies.h"

#include "util/strings.h"

namespace oak::http {

std::map<std::string, std::string> parse_cookie_header(
    const std::string& value) {
  std::map<std::string, std::string> out;
  for (const auto& piece : util::split(value, ';')) {
    auto kv = util::trim(piece);
    std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    out[std::string(util::trim(kv.substr(0, eq)))] =
        std::string(util::trim(kv.substr(eq + 1)));
  }
  return out;
}

std::string to_cookie_header(const std::map<std::string, std::string>& jar) {
  std::string out;
  for (const auto& [k, v] : jar) {
    if (!out.empty()) out += "; ";
    out += k + "=" + v;
  }
  return out;
}

void CookieJar::set(const std::string& site, const std::string& name,
                    const std::string& value) {
  jars_[site][name] = value;
}

std::optional<std::string> CookieJar::get(const std::string& site,
                                          const std::string& name) const {
  auto it = jars_.find(site);
  if (it == jars_.end()) return {};
  auto jt = it->second.find(name);
  if (jt == it->second.end()) return {};
  return jt->second;
}

void CookieJar::ingest(const std::string& site,
                       const Headers& response_headers) {
  for (const auto& sc : response_headers.get_all("Set-Cookie")) {
    // Only the name=value part matters in the simulation; attributes
    // (Path/Expires/...) are ignored.
    auto first = util::split(sc, ';');
    if (first.empty()) continue;
    std::size_t eq = first[0].find('=');
    if (eq == std::string::npos || eq == 0) continue;
    set(site, std::string(util::trim(first[0].substr(0, eq))),
        std::string(util::trim(first[0].substr(eq + 1))));
  }
}

void CookieJar::attach(const std::string& site, Headers& request_headers) const {
  auto it = jars_.find(site);
  if (it == jars_.end() || it->second.empty()) return;
  request_headers.set("Cookie", to_cookie_header(it->second));
}

}  // namespace oak::http
