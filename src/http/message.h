// HTTP request/response values exchanged between the simulated browser,
// the Oak server and the backing web server.
#pragma once

#include <string>

#include "http/headers.h"
#include "util/url.h"

namespace oak::http {

enum class Method { kGet, kPost };

std::string to_string(Method m);

struct Request {
  Method method = Method::kGet;
  util::Url url;
  Headers headers;
  std::string body;       // POST payload (performance reports)
  std::string client_ip;  // dotted quad of the requesting client (may be "")

  static Request get(const std::string& url);
  static Request post(const std::string& url, std::string body);
};

struct Response {
  int status = 200;
  Headers headers;
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }

  static Response not_found();
  static Response text(std::string body, int status = 200);
  static Response html(std::string body);
};

// Custom response header carrying type-2 aliases (paper §4.3): each value is
// "<alternative-url> <default-url>", telling the browser a cached copy of the
// default URL may satisfy the alternative URL.
inline constexpr const char* kOakAliasHeader = "X-Oak-Alias";

// Cookie used to carry the per-user Oak identity.
inline constexpr const char* kOakUserCookie = "oak_uid";

}  // namespace oak::http
