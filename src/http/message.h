// HTTP request/response values exchanged between the simulated browser,
// the Oak server and the backing web server — and, since the wire
// front-end (src/wire), between real sockets and the serving plane.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "http/headers.h"
#include "util/url.h"

namespace oak::http {

// The methods the servers route. Anything else on the wire is a valid but
// unsupported token: the front-end answers 405 with an Allow header listing
// these (kAllowedMethods).
enum class Method { kGet, kHead, kPost, kPut, kDelete };

// Exhaustive — every enumerator renders; there is no "?" fallback.
std::string to_string(Method m);

// Map a wire token to the enum; nullopt for any unrecognized method.
// Case-sensitive, as HTTP methods are.
std::optional<Method> parse_method(std::string_view token);

// The Allow header value advertising every routed method.
inline constexpr const char* kAllowedMethods = "GET, HEAD, POST, PUT, DELETE";

struct Request {
  Method method = Method::kGet;
  util::Url url;
  Headers headers;
  std::string body;       // POST payload (performance reports)
  std::string client_ip;  // dotted quad of the requesting client (may be "")

  static Request get(const std::string& url);
  static Request post(const std::string& url, std::string body);
};

struct Response {
  int status = 200;
  Headers headers;
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }

  static Response not_found();
  static Response text(std::string body, int status = 200);
  static Response html(std::string body);
  static Response json(std::string body, int status = 200);
};

// Canonical reason phrase for a status code ("OK", "Bad Request", ...);
// "Status" for codes without one. The wire layer writes these on the
// status line.
const char* status_reason(int status);

// Custom response header carrying type-2 aliases (paper §4.3): each value is
// "<alternative-url> <default-url>", telling the browser a cached copy of the
// default URL may satisfy the alternative URL.
inline constexpr const char* kOakAliasHeader = "X-Oak-Alias";

// Cookie used to carry the per-user Oak identity.
inline constexpr const char* kOakUserCookie = "oak_uid";

}  // namespace oak::http
