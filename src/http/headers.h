// HTTP header collection: ordered, case-insensitive names, repeatable.
//
// Hardened for the wire front-end (src/wire): the collection enforces its
// own growth caps and rejects names/values carrying CR/LF/NUL at add()
// time, so a response assembled from attacker-influenced strings can never
// smuggle an extra header or split a response — even if a caller above
// forgot to validate. The wire parser applies tighter, configurable limits
// first; these are the backstop invariants of the type itself.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace oak::http {

class Headers {
 public:
  // Backstop caps enforced by add()/set(). The wire parser's own limits
  // (wire::ParserLimits) are tighter and configurable; these bound what any
  // code path — including response assembly — can accumulate.
  static constexpr std::size_t kMaxCount = 256;
  static constexpr std::size_t kMaxWireBytes = 256 * 1024;

  // Append a header (does not replace existing ones with the same name).
  // Returns false — and leaves the collection untouched — when the header
  // is invalid (empty name, or CR/LF/NUL anywhere in name or value: the
  // response-splitting class) or when accepting it would exceed kMaxCount
  // entries or kMaxWireBytes of serialized size.
  bool add(std::string_view name, std::string_view value);
  // Replace all headers with this name by a single one. Same validation as
  // add(); on rejection existing entries with the name are left in place.
  bool set(std::string_view name, std::string_view value);
  void remove(std::string_view name);

  // Would add() accept this pair? (Validation only — ignores the caps.)
  static bool valid_entry(std::string_view name, std::string_view value);

  // First value with this name.
  std::optional<std::string> get(std::string_view name) const;
  std::vector<std::string> get_all(std::string_view name) const;
  bool has(std::string_view name) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }
  std::size_t size() const { return entries_.size(); }

  // Serialized size in bytes ("Name: value\r\n" per header) — contributes to
  // report-overhead accounting. Maintained incrementally; O(1).
  std::size_t wire_size() const { return wire_size_; }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  std::size_t wire_size_ = 0;
};

// Case-insensitive ASCII equality for header names.
bool header_name_equal(std::string_view a, std::string_view b);

}  // namespace oak::http
