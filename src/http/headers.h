// HTTP header collection: ordered, case-insensitive names, repeatable.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace oak::http {

class Headers {
 public:
  // Append a header (does not replace existing ones with the same name).
  void add(std::string_view name, std::string_view value);
  // Replace all headers with this name by a single one.
  void set(std::string_view name, std::string_view value);
  void remove(std::string_view name);

  // First value with this name.
  std::optional<std::string> get(std::string_view name) const;
  std::vector<std::string> get_all(std::string_view name) const;
  bool has(std::string_view name) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }
  std::size_t size() const { return entries_.size(); }

  // Serialized size in bytes ("Name: value\r\n" per header) — contributes to
  // report-overhead accounting.
  std::size_t wire_size() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Case-insensitive ASCII equality for header names.
bool header_name_equal(std::string_view a, std::string_view b);

}  // namespace oak::http
