#include "http/cache.h"

#include "util/url.h"

namespace oak::http {

void BrowserCache::store(const std::string& url, std::uint64_t size,
                         double now, double max_age_s) {
  if (max_age_s <= 0.0) return;
  entries_[url] = CacheEntry{size, now, max_age_s};
}

void BrowserCache::add_alias(const std::string& alias_url,
                             const std::string& canonical_url) {
  if (alias_url == canonical_url) return;
  aliases_[alias_url] = canonical_url;
}

std::optional<CacheEntry> BrowserCache::lookup(const std::string& url,
                                               double now) const {
  auto fresh = [&](const CacheEntry& e) {
    return now - e.stored_at <= e.max_age_s;
  };
  if (auto it = entries_.find(url); it != entries_.end() && fresh(it->second)) {
    return it->second;
  }
  if (auto a = aliases_.find(url); a != aliases_.end()) {
    if (auto it = entries_.find(a->second);
        it != entries_.end() && fresh(it->second)) {
      return it->second;
    }
  }
  if (!host_aliases_.empty()) {
    if (auto parsed = util::parse_url(url)) {
      if (auto h = host_aliases_.find(parsed->host);
          h != host_aliases_.end()) {
        if (auto canonical = util::replace_host(url, h->second)) {
          if (auto it = entries_.find(*canonical);
              it != entries_.end() && fresh(it->second)) {
            return it->second;
          }
        }
      }
    }
  }
  return {};
}

void BrowserCache::add_host_alias(const std::string& alias_host,
                                  const std::string& canonical_host) {
  if (alias_host == canonical_host) return;
  host_aliases_[alias_host] = canonical_host;
}

bool BrowserCache::has_alias(const std::string& alias_url) const {
  return aliases_.count(alias_url) > 0;
}

void BrowserCache::clear() {
  entries_.clear();
  aliases_.clear();
}

}  // namespace oak::http
