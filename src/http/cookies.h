// Cookie handling: Oak identifies each user by a cookie issued on first
// contact (paper §4: "the server responds with the default version of the
// requested page and an identifying cookie").
#pragma once

#include <map>
#include <optional>
#include <string>

#include "http/headers.h"

namespace oak::http {

// Parse a "Cookie:" request-header value ("a=1; b=2") into a map.
std::map<std::string, std::string> parse_cookie_header(
    const std::string& value);

// Serialize cookies into a "Cookie:" header value.
std::string to_cookie_header(const std::map<std::string, std::string>& jar);

// Per-site cookie jar kept by the simulated browser.
class CookieJar {
 public:
  void set(const std::string& site, const std::string& name,
           const std::string& value);
  std::optional<std::string> get(const std::string& site,
                                 const std::string& name) const;

  // Apply "Set-Cookie" response headers for `site`.
  void ingest(const std::string& site, const Headers& response_headers);
  // Attach a "Cookie" header for `site` (no-op when the jar is empty).
  void attach(const std::string& site, Headers& request_headers) const;

 private:
  std::map<std::string, std::map<std::string, std::string>> jars_;
};

}  // namespace oak::http
