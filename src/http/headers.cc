#include "http/headers.h"

#include <cctype>

namespace oak::http {

bool header_name_equal(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void Headers::add(std::string_view name, std::string_view value) {
  entries_.emplace_back(std::string(name), std::string(value));
}

void Headers::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

void Headers::remove(std::string_view name) {
  std::erase_if(entries_, [&](const auto& e) {
    return header_name_equal(e.first, name);
  });
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (header_name_equal(n, name)) return v;
  }
  return {};
}

std::vector<std::string> Headers::get_all(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& [n, v] : entries_) {
    if (header_name_equal(n, name)) out.push_back(v);
  }
  return out;
}

bool Headers::has(std::string_view name) const {
  return get(name).has_value();
}

std::size_t Headers::wire_size() const {
  std::size_t n = 0;
  for (const auto& [name, value] : entries_) {
    n += name.size() + 2 + value.size() + 2;  // "Name: value\r\n"
  }
  return n;
}

}  // namespace oak::http
