#include "http/headers.h"

#include <cctype>

namespace oak::http {

namespace {

constexpr std::size_t entry_wire_size(std::string_view name,
                                      std::string_view value) {
  return name.size() + 2 + value.size() + 2;  // "Name: value\r\n"
}

}  // namespace

bool header_name_equal(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool Headers::valid_entry(std::string_view name, std::string_view value) {
  if (name.empty()) return false;
  for (char c : name) {
    if (c == '\r' || c == '\n' || c == '\0') return false;
  }
  for (char c : value) {
    if (c == '\r' || c == '\n' || c == '\0') return false;
  }
  return true;
}

bool Headers::add(std::string_view name, std::string_view value) {
  if (!valid_entry(name, value)) return false;
  if (entries_.size() >= kMaxCount) return false;
  const std::size_t added = entry_wire_size(name, value);
  if (wire_size_ + added > kMaxWireBytes) return false;
  entries_.emplace_back(std::string(name), std::string(value));
  wire_size_ += added;
  return true;
}

bool Headers::set(std::string_view name, std::string_view value) {
  if (!valid_entry(name, value)) return false;
  remove(name);
  return add(name, value);
}

void Headers::remove(std::string_view name) {
  std::erase_if(entries_, [&](const auto& e) {
    if (!header_name_equal(e.first, name)) return false;
    wire_size_ -= entry_wire_size(e.first, e.second);
    return true;
  });
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (header_name_equal(n, name)) return v;
  }
  return {};
}

std::vector<std::string> Headers::get_all(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& [n, v] : entries_) {
    if (header_name_equal(n, name)) out.push_back(v);
  }
  return out;
}

bool Headers::has(std::string_view name) const {
  return get(name).has_value();
}

}  // namespace oak::http
