// Browser object cache with Oak alias support.
//
// Paper §4.3: a type-2 rewrite changes a resource's URL while the bytes stay
// identical, which would defeat the browser cache ("the browser may re-fetch
// an identical object, ignoring a usable copy in its cache"). Oak announces
// such rewrites via a custom response header; the cache honors the alias so
// the old entry satisfies the new URL.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace oak::http {

struct CacheEntry {
  std::uint64_t size = 0;
  double stored_at = 0.0;
  double max_age_s = 0.0;  // 0 => not cacheable (always revalidate)
};

class BrowserCache {
 public:
  // Record a downloaded object.
  void store(const std::string& url, std::uint64_t size, double now,
             double max_age_s);

  // Register an alias: requests for `alias_url` may be served by the entry
  // stored under `canonical_url` (Oak type-2 rewrites).
  void add_alias(const std::string& alias_url,
                 const std::string& canonical_url);

  // Host-level alias for domain-wide type-2 rules: any URL on `alias_host`
  // may be served by the same path cached under `canonical_host`.
  void add_host_alias(const std::string& alias_host,
                      const std::string& canonical_host);

  // A fresh entry for `url`, following at most one alias hop.
  std::optional<CacheEntry> lookup(const std::string& url, double now) const;

  bool has_alias(const std::string& alias_url) const;
  void clear();
  std::size_t entry_count() const { return entries_.size(); }
  std::size_t alias_count() const { return aliases_.size(); }

 private:
  std::map<std::string, CacheEntry> entries_;
  std::map<std::string, std::string> aliases_;
  std::map<std::string, std::string> host_aliases_;
};

}  // namespace oak::http
