#include "http/message.h"

#include <stdexcept>

namespace oak::http {

std::string to_string(Method m) {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kPost: return "POST";
  }
  return "?";
}

Request Request::get(const std::string& url) {
  Request r;
  r.method = Method::kGet;
  auto parsed = util::parse_url(url);
  if (!parsed) throw std::invalid_argument("bad url: " + url);
  r.url = *parsed;
  return r;
}

Request Request::post(const std::string& url, std::string body) {
  Request r = get(url);
  r.method = Method::kPost;
  r.body = std::move(body);
  r.headers.set("Content-Type", "application/json");
  return r;
}

Response Response::not_found() {
  Response r;
  r.status = 404;
  r.body = "not found";
  return r;
}

Response Response::text(std::string body, int status) {
  Response r;
  r.status = status;
  r.headers.set("Content-Type", "text/plain");
  r.body = std::move(body);
  return r;
}

Response Response::html(std::string body) {
  Response r;
  r.headers.set("Content-Type", "text/html");
  r.body = std::move(body);
  return r;
}

}  // namespace oak::http
