#include "http/message.h"

#include <stdexcept>

namespace oak::http {

std::string to_string(Method m) {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kHead: return "HEAD";
    case Method::kPost: return "POST";
    case Method::kPut: return "PUT";
    case Method::kDelete: return "DELETE";
  }
  // Unreachable for in-range enumerators; keeps -Wreturn-type quiet for
  // out-of-range casts without reintroducing a routable "?" method.
  throw std::invalid_argument("invalid http::Method");
}

std::optional<Method> parse_method(std::string_view token) {
  if (token == "GET") return Method::kGet;
  if (token == "HEAD") return Method::kHead;
  if (token == "POST") return Method::kPost;
  if (token == "PUT") return Method::kPut;
  if (token == "DELETE") return Method::kDelete;
  return std::nullopt;
}

Request Request::get(const std::string& url) {
  Request r;
  r.method = Method::kGet;
  auto parsed = util::parse_url(url);
  if (!parsed) throw std::invalid_argument("bad url: " + url);
  r.url = *parsed;
  return r;
}

Request Request::post(const std::string& url, std::string body) {
  Request r = get(url);
  r.method = Method::kPost;
  r.body = std::move(body);
  r.headers.set("Content-Type", "application/json");
  return r;
}

Response Response::not_found() {
  Response r;
  r.status = 404;
  r.body = "not found";
  return r;
}

Response Response::text(std::string body, int status) {
  Response r;
  r.status = status;
  r.headers.set("Content-Type", "text/plain");
  r.body = std::move(body);
  return r;
}

Response Response::html(std::string body) {
  Response r;
  r.headers.set("Content-Type", "text/html");
  r.body = std::move(body);
  return r;
}

Response Response::json(std::string body, int status) {
  Response r;
  r.status = status;
  r.headers.set("Content-Type", "application/json");
  r.body = std::move(body);
  return r;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

}  // namespace oak::http
