// Umbrella header: the public API of the Oak reproduction.
//
// Most programs need only this. The sub-headers remain individually
// includable for faster builds; see README.md ("Architecture") for the
// layer-by-layer tour.
//
//   #include "oak.h"
//
//   oak::page::WebUniverse web({.seed = 1});
//   oak::core::OakServer server(web, "example.com", {});
//   oak::browser::Browser user(web, client_id);
#pragma once

// Substrate: statistics, simulated network, HTTP, HTML, the web universe.
#include "net/network.h"     // IWYU pragma: export
#include "page/corpus.h"     // IWYU pragma: export
#include "page/site.h"       // IWYU pragma: export
#include "util/cdf.h"        // IWYU pragma: export
#include "util/stats.h"      // IWYU pragma: export

// The client.
#include "browser/browser.h"  // IWYU pragma: export

// Oak proper.
#include "core/analytics.h"          // IWYU pragma: export
#include "core/concurrent_server.h"  // IWYU pragma: export
#include "core/fleet.h"              // IWYU pragma: export
#include "core/oak_server.h"         // IWYU pragma: export
#include "core/rule_parser.h"        // IWYU pragma: export
#include "core/trace.h"              // IWYU pragma: export

// Experiment scaffolding (vantage points, scenario builders, survey).
#include "workload/existing_experiment.h"  // IWYU pragma: export
#include "workload/survey.h"               // IWYU pragma: export
