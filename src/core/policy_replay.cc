#include "core/policy_replay.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oak::core {

PolicyReplayer::PolicyReplayer(std::vector<Rule> rules, const Policy& policy,
                               HistoryMode history)
    : rules_(std::move(rules)), policy_(policy), history_(history) {
  engine_ = std::make_unique<PolicyEngine>(policy_, nullptr);
  for (const auto& r : rules_) {
    if (!r.policy.empty() && !engine_->has_strategy(r.policy)) {
      throw std::invalid_argument("replay rule '" + r.name +
                                  "' names policy '" + r.policy +
                                  "' but no such strategy exists");
    }
  }
}

PolicyReplayer::~PolicyReplayer() = default;

const Rule* PolicyReplayer::rule(int id) const {
  for (const auto& r : rules_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

UserProfile& PolicyReplayer::profile(const ReportContext& ctx) {
  UserProfile& user = users_[ctx.user_id];
  if (user.user_id.empty()) user.user_id = ctx.user_id;
  if (!ctx.client_ip.empty()) user.client_ip = ctx.client_ip;
  return user;
}

void PolicyReplayer::expire_rules(UserProfile& user, double now) {
  // Same half-open boundary as OakServer::expire_rules.
  for (auto it = user.active.begin(); it != user.active.end();) {
    if (it->second.expires_at > 0.0 && now >= it->second.expires_at) {
      log_.record(Decision{now, user.user_id, it->first, DecisionType::kExpire,
                           "", 0.0, it->second.alternative_index});
      it = user.active.erase(it);
    } else {
      ++it;
    }
  }
}

void PolicyReplayer::step(const ReportContext& ctx) {
  UserProfile& user = profile(ctx);
  if (ctx.serve_only) {
    // A page serve advances expiry time but decides nothing else.
    ++serve_ticks_;
    expire_rules(user, ctx.time);
    return;
  }

  ++user.reports_received;
  const bool plt_accepted = std::isfinite(ctx.plt_s) && ctx.plt_s > 0.0;
  if (plt_accepted) {
    user.plt_sum_s += ctx.plt_s;
    ++user.plt_count;
  }

  // Scoring snapshot: was the candidate's mitigation live when this report
  // (measuring the *previous* page load) arrived? Taken before this
  // report's own decisions mutate the active set, mirroring the racing
  // sample semantics in OakServer::process_report.
  expire_rules(user, ctx.time);
  Sample sample;
  sample.time = ctx.time;
  sample.plt_s = plt_accepted ? ctx.plt_s : 0.0;
  sample.violating = !ctx.rule_matches.empty();
  for (const auto& m : ctx.rule_matches) {
    if (user.active.count(m.rule_id) != 0) {
      sample.mitigated_live = true;
      break;
    }
  }
  samples_.push_back(sample);

  if (plt_accepted) {
    race_events_.clear();
    engine_->observe_report(user, ctx.plt_s, ctx.time,
                            [this](int id) { return rule(id); },
                            &race_events_);
    for (Decision& d : race_events_) log_.record(std::move(d));
  }
  review_active(user, ctx);
  consider_activations(user, ctx);
}

void PolicyReplayer::review_active(UserProfile& user,
                                   const ReportContext& ctx) {
  if (ctx.rule_matches.empty() && ctx.alt_matches.empty()) return;
  if (history_ == HistoryMode::kAlwaysKeep) return;
  const double now = ctx.time;
  for (auto it = user.active.begin(); it != user.active.end();) {
    ActiveRule& ar = it->second;
    const Rule* r = rule(ar.rule_id);
    if (!r || r->type == RuleType::kRemove || r->alternatives.empty()) {
      ++it;
      continue;
    }
    const std::size_t idx =
        std::min(ar.alternative_index, r->alternatives.size() - 1);
    // The recorded first-match for this (rule, alternative) pair stands in
    // for the live matcher probe.
    const ContextAltMatch* alt_violation = nullptr;
    for (const auto& m : ctx.alt_matches) {
      if (m.rule_id == ar.rule_id && m.alt_index == idx) {
        alt_violation = &m;
        break;
      }
    }
    if (!alt_violation) {
      ++it;
      continue;
    }
    const double alt_distance = alt_violation->severity;
    switch (engine_->on_alternative_violation(*r, user, ar, alt_distance,
                                              history_)) {
      case HistoryAction::kKeep:
        log_.record(Decision{now, user.user_id, ar.rule_id,
                             DecisionType::kKeepAlternative,
                             alt_violation->violator_ip, alt_distance, idx});
        ++it;
        break;
      case HistoryAction::kAdvance:
        ar.alternative_index = idx + 1;
        log_.record(Decision{now, user.user_id, ar.rule_id,
                             DecisionType::kAdvanceAlternative,
                             alt_violation->violator_ip, alt_distance,
                             ar.alternative_index});
        ++it;
        break;
      case HistoryAction::kDeactivate:
        log_.record(Decision{now, user.user_id, ar.rule_id,
                             DecisionType::kDeactivate,
                             alt_violation->violator_ip, alt_distance, idx});
        engine_->on_deactivated(*r, user, now);
        user.pending_violations.erase(ar.rule_id);
        it = user.active.erase(it);
        break;
    }
  }
}

void PolicyReplayer::consider_activations(UserProfile& user,
                                          const ReportContext& ctx) {
  if (ctx.rule_matches.empty()) return;
  const double now = ctx.time;
  for (const auto& r : rules_) {
    if (user.active.count(r.id) != 0 || user.banned.count(r.id) != 0) continue;
    const ContextRuleMatch* hit = nullptr;
    for (const auto& m : ctx.rule_matches) {
      if (m.rule_id == r.id) {
        hit = &m;
        break;
      }
    }
    if (!hit) continue;
    auto choice = engine_->on_rule_violation(r, user, hit->severity, now);
    if (!choice) continue;
    ActiveRule ar;
    ar.rule_id = r.id;
    ar.alternative_index = choice->alternative_index;
    ar.activated_at = now;
    ar.expires_at = r.ttl_s > 0.0 ? now + r.ttl_s : 0.0;
    ar.violation_distance = hit->severity;
    ar.violator_ip = hit->violator_ip;
    user.active[r.id] = ar;
    log_.record(Decision{now, user.user_id, r.id, DecisionType::kActivate,
                         hit->violator_ip, ar.violation_distance,
                         ar.alternative_index});
  }
}

ReplayScore PolicyReplayer::score(double bucket_s) const {
  ReplayScore s;
  s.reports = samples_.size();
  s.serve_ticks = serve_ticks_;
  s.activations = log_.count(DecisionType::kActivate);
  s.deactivations = log_.count(DecisionType::kDeactivate);
  s.expirations = log_.count(DecisionType::kExpire);
  s.race_winners = log_.count(DecisionType::kRaceWinner);

  // Healthy baseline per time bucket: mean PLT of non-violating reports.
  std::map<std::int64_t, std::pair<double, std::size_t>> healthy;
  for (const Sample& smp : samples_) {
    if (smp.plt_s <= 0.0 || smp.violating) continue;
    auto& h = healthy[std::int64_t(smp.time / bucket_s)];
    h.first += smp.plt_s;
    h.second += 1;
  }

  double observed_sum = 0.0, estimated_sum = 0.0;
  std::size_t plt_n = 0;
  for (const Sample& smp : samples_) {
    if (smp.violating) {
      ++s.violation_reports;
      if (smp.mitigated_live) {
        ++s.mitigated_reports;
      } else {
        ++s.unmitigated_reports;
      }
    }
    if (smp.plt_s <= 0.0) continue;
    ++plt_n;
    observed_sum += smp.plt_s;
    double est = smp.plt_s;
    if (smp.violating && smp.mitigated_live) {
      auto it = healthy.find(std::int64_t(smp.time / bucket_s));
      if (it != healthy.end() && it->second.second > 0) {
        est = it->second.first / double(it->second.second);
        ++s.substituted_reports;
      }
    }
    estimated_sum += est;
  }
  if (plt_n > 0) {
    s.observed_mean_plt_s = observed_sum / double(plt_n);
    s.estimated_mean_plt_s = estimated_sum / double(plt_n);
  }
  return s;
}

util::Json ReplayScore::to_json() const {
  util::JsonObject o;
  o["reports"] = reports;
  o["serve_ticks"] = serve_ticks;
  o["violation_reports"] = violation_reports;
  o["mitigated_reports"] = mitigated_reports;
  o["unmitigated_reports"] = unmitigated_reports;
  o["activations"] = activations;
  o["deactivations"] = deactivations;
  o["expirations"] = expirations;
  o["race_winners"] = race_winners;
  o["observed_mean_plt_s"] = observed_mean_plt_s;
  o["estimated_mean_plt_s"] = estimated_mean_plt_s;
  o["substituted_reports"] = substituted_reports;
  return util::Json(std::move(o));
}

util::Json PolicyReplayer::result_json(double bucket_s) const {
  util::JsonObject o;
  o["score"] = score(bucket_s).to_json();
  util::JsonArray decisions;
  for (const auto& d : log_.entries()) {
    decisions.push_back(decision_to_json(d));
  }
  o["decisions"] = std::move(decisions);
  return util::Json(std::move(o));
}

ReplayScore replay_and_score(std::vector<Rule> rules, const Policy& policy,
                             HistoryMode history,
                             const std::vector<ReportContext>& contexts,
                             double bucket_s) {
  PolicyReplayer replayer(std::move(rules), policy, history);
  for (const auto& c : contexts) replayer.step(c);
  return replayer.score(bucket_s);
}

}  // namespace oak::core
