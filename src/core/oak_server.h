// The Oak server (paper §4, Figs. 4 & 5).
//
// Sits beside a site's web server (here: in front of the static object
// store) and performs Oak's two interactions:
//
//  * Page serving — identify the user by cookie (issuing one on first
//    contact), load the default page, apply the user's active rules within
//    scope, attach type-2 cache-alias headers, and deliver the customized
//    page. Everything is per-user: "any changes that a user observes are in
//    direct response to the performance that the user reported" (§4.3).
//
//  * Report ingestion — accept the client's POSTed performance report,
//    group by server, detect MAD violators, re-examine active rules whose
//    alternative is now violating (the §4.2.3 history rule: keep whichever
//    side sits closer to the median), and activate operator rules that match
//    a violator through the three-tier connection-dependency test, subject
//    to policy (minimum violations, client filters, alternative selection).
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "browser/report_view.h"
#include "core/decision_log.h"
#include "core/durability_options.h"
#include "core/matcher.h"
#include "core/modifier.h"
#include "core/policy.h"
#include "core/rule.h"
#include "core/user_store.h"
#include "core/violator.h"
#include "http/message.h"
#include "obs/metrics.h"
#include "util/arena.h"
#include "util/flat_map.h"
#include "util/json.h"
#include "page/site.h"

namespace oak::core {

// HistoryMode (what to do when an activated alternative itself becomes a
// violator) lives in core/policy.h with the rest of the policy vocabulary.

// How ingest_report() turns wire bytes into a report.
//   kStreaming     zero-copy SAX decode into the ingest arena (fast path);
//   kDom           legacy Json-DOM decode (PerfReport::deserialize);
//   kDifferential  run both, demand bit-identical reports and identical
//                  accept/reject verdicts — the CI oracle. Divergence is a
//                  decoder bug, reported by throwing std::logic_error.
enum class IngestDecode { kStreaming, kDom, kDifferential };

// Batched hand-off between request threads and a shard's single-threaded
// core (ShardedOakServer; the single-threaded OakServer ignores this).
// Instead of every thread fighting for the shard mutex per request, requests
// park in a small per-shard queue and one thread — the combiner — drains
// them in batches while holding the shard lock once per batch. See
// DESIGN.md §6.
struct IngestQueueConfig {
  bool enabled = true;
  // Pending (unclaimed) ops per shard before producers block — the
  // back-pressure bound. Memory is not the concern (ops live on producer
  // stacks); this bounds batch latency and combiner turn length.
  std::size_t depth = 128;
  // Ops executed per shard-lock acquisition. The amortization unit: one
  // lock + one batch of reports.
  std::size_t max_batch = 32;
  // A combiner whose own request is done hands the role off after this many
  // ops in one turn, so sustained load rotates the combining work across
  // threads instead of pinning it on whoever arrived first.
  std::size_t handoff_after = 256;
};

struct OakConfig {
  DetectorConfig detector;
  MatcherConfig matcher;
  Policy policy;
  HistoryMode history = HistoryMode::kMinDistance;
  IngestDecode ingest_decode = IngestDecode::kStreaming;
  std::string report_path = "/oak/report";
  // Master switch: when false Oak serves default pages and ignores reports
  // (the paper's baseline condition).
  bool enabled = true;
  // Evaluation mode: every rule applied for every user regardless of
  // reports (the paper's "Oak with all rules activated" condition, §5.3).
  bool force_all_rules = false;
  // Runtime switch for the oak::obs instrumentation. When false the stage
  // timers never read the clock and no counters are touched; the registry
  // still exists (snapshots are simply empty). Compile-time removal is
  // -DOAK_OBS_DISABLED (see src/obs/metrics.h).
  bool metrics = true;
  // Crash-consistent persistence (core/durability.h): per-shard write-ahead
  // journal + periodic snapshot, honoured by ShardedOakServer (the
  // single-threaded OakServer ignores it; durability is a property of the
  // concurrent entry point). Off by default.
  durability::Options durability;
  // Batched MPSC hand-off for the sharded request plane (ShardedOakServer
  // only).
  IngestQueueConfig ingest_queue;
  // Tiered user-state store (core/user_store.h): hot_capacity bounds the
  // in-memory profiles per shard; everyone else lives in the cold spill
  // file and faults back in on their next request. Default (hot_capacity
  // == 0) keeps every profile hot — the pre-tiering behavior.
  UserStoreConfig user_store;
};

class OakServer {
 public:
  OakServer(page::WebUniverse& universe, std::string site_host,
            OakConfig cfg = {});

  // Returns the rule id (assigned when the rule arrives with id 0).
  int add_rule(Rule rule);
  void add_rules(std::vector<Rule> rules);
  // Retire a rule at runtime: deactivates it in every profile (logged as an
  // expiration) and removes it from the rule set. Returns false for an
  // unknown id.
  bool remove_rule(int rule_id, double now);

  // Register this server as the universe's handler for the site host.
  void install();

  http::Response handle(const http::Request& req, double now);

  // --- Introspection (tests, experiment harnesses, auditing).
  const OakConfig& config() const { return cfg_; }
  OakConfig& config() { return cfg_; }
  const std::vector<Rule>& rules() const { return rules_; }
  const Rule* rule(int id) const;
  const DecisionLog& decision_log() const { return log_; }
  // The pluggable policy engine (core/policy.h): per-rule strategy
  // resolution and the derived racing aggregates.
  const PolicyEngine& policy_engine() const { return *engine_; }
  PolicyEngine& policy_engine() { return *engine_; }
  // One index probe for hot users; a cold hit transparently faults the
  // profile in (logically const — observable state is identical to the
  // profile never having been demoted). Does not touch the LRU clock, so
  // introspection cannot rejuvenate idle users. The pointer is valid only
  // until the next request or store mutation.
  const UserProfile* profile(const std::string& user_id) const;
  // Visit every profile — hot and cold — in ascending user-id order (the
  // iteration order the snapshot/export format pins). Cold profiles are
  // materialized transiently without promotion.
  void for_each_profile(
      const std::function<void(const UserProfile&)>& fn) const {
    users_.for_each_sorted(fn);
  }
  std::size_t user_count() const { return users_.size(); }
  const TieredUserStore& user_store() const { return users_; }
  TieredUserStore& user_store() { return users_; }
  // Rewrite the cold spill file keeping only live records; wired into the
  // sharded server's snapshot compaction cut.
  void compact_user_store() { users_.compact_cold(); }
  std::size_t reports_processed() const { return reports_processed_; }
  // Rule-id allocation state, exposed so the durability snapshot can
  // preserve it: after recovery a fresh rule must not reuse the id of one
  // retired before the crash (stale per-profile bans would attach to it).
  int next_rule_id() const { return next_rule_id_; }
  void reserve_rule_ids(int next) {
    next_rule_id_ = std::max(next_rule_id_, next);
  }
  const std::string& site_host() const { return site_host_; }
  page::WebUniverse& universe() { return universe_; }
  // The §4.2.2 matcher (and its memoization counters, when enabled).
  const Matcher& matcher() const { return *matcher_; }

  // --- Observability (src/obs). Per-server registry: counters for the
  // serve/ingest planes, latency histograms for the five ingest stages
  // (decode → group → detect → match → modify). In ShardedOakServer each
  // shard's registry is merged into one fleet view on snapshot.
  obs::MetricsRegistry& metrics_registry() { return metrics_; }
  const obs::MetricsRegistry& metrics_registry() const { return metrics_; }
  // Registry snapshot with the match-cache counters folded in (the cache
  // keeps plain tallies, not atomics — it is shard-local by design).
  obs::MetricsSnapshot metrics_snapshot() const;

  // Run one report through the analysis pipeline directly (harness entry
  // point that skips HTTP framing).
  DetectionResult analyze(const std::string& user_id,
                          const browser::PerfReport& report, double now);

  // --- State persistence (core/persistence.cc). export_state/import_state
  // produce and consume the versioned JSON snapshot document — the unit of
  // backup, migration and audit. A production deployment does not rely on
  // snapshots alone: ShardedOakServer layers the oak::durability contract
  // on top (core/durability.h) — every state-mutating request is appended
  // to a checksummed per-shard write-ahead journal, compaction periodically
  // folds the journal into a snapshot-<epoch>.json + MANIFEST pair, and
  // recovery after a crash loads the latest committed snapshot and replays
  // the journal suffix (torn tail records dropped by design), reproducing
  // this document byte-for-byte. Rules themselves are configuration, not
  // state, and are NOT part of *this* snapshot; import expects the same
  // rule set to be configured (the durability envelope carries the rules
  // separately so recovery can rebuild them).
  util::Json export_state() const;
  // Replaces all user state and the decision log. Throws util::JsonError on
  // malformed input.
  void import_state(const util::Json& snapshot);

 private:
  http::Response serve_page(const http::Request& req, double now);
  http::Response ingest_report(const http::Request& req, double now);
  void process_report(UserProfile& user, const browser::ReportView& report,
                      double now, DetectionResult* out_detection);
  // `domain_hashes[i]` is fnv1a(detection.violators[i].domains) and
  // `scripts_hash` is fnv1a(scripts) — computed once per report in
  // process_report and threaded through so the matcher's memo probes skip
  // rehashing per (rule × violator).
  void review_active_rules(UserProfile& user, const DetectionResult& detection,
                           const std::vector<std::string>& scripts,
                           const std::vector<std::uint64_t>& domain_hashes,
                           std::uint64_t scripts_hash, double now);
  void consider_activations(UserProfile& user,
                            const DetectionResult& detection,
                            const std::vector<std::string>& scripts,
                            const std::vector<std::uint64_t>& domain_hashes,
                            std::uint64_t scripts_hash, double now);
  void expire_rules(UserProfile& user, double now);
  // Capture the policy-independent replay context for one report: every
  // rule's (and every alternative's) first matching violator, via the
  // memoized matcher (Policy::record_context).
  void record_report_context(UserProfile& user,
                             const DetectionResult& detection,
                             const std::vector<std::string>& scripts,
                             const std::vector<std::uint64_t>& domain_hashes,
                             std::uint64_t scripts_hash, double plt_s,
                             double now);
  UserProfile& user_for(const http::Request& req, http::Response& resp,
                        double now);
  // Find-or-create through the store's uid index (one hash probe on the hot
  // path; demotion/fault-in only runs when tiering is configured).
  UserProfile& profile_ref(const std::string& user_id, double now);

  // Instrument pointers resolved once in the constructor; all null when
  // cfg_.metrics is false, which a null-histogram ScopedTimer turns into a
  // no-clock-read no-op.
  struct Instruments {
    obs::Histogram* decode = nullptr;
    obs::Histogram* group = nullptr;
    obs::Histogram* detect = nullptr;
    obs::Histogram* match = nullptr;
    obs::Histogram* modify = nullptr;
    obs::Histogram* report_bytes = nullptr;
    obs::Counter* reports_ingested = nullptr;
    obs::Counter* reports_rejected = nullptr;
    obs::Counter* pages_served = nullptr;
    obs::Counter* pages_modified = nullptr;
    obs::Counter* activations = nullptr;
    obs::Counter* expirations = nullptr;
    obs::Counter* deactivations = nullptr;
    obs::Counter* contexts_recorded = nullptr;
  };

  page::WebUniverse& universe_;
  std::string site_host_;
  OakConfig cfg_;
  std::unique_ptr<Matcher> matcher_;
  std::unique_ptr<PolicyEngine> engine_;
  std::vector<Rule> rules_;
  int next_rule_id_ = 1;
  // All per-user state, hot and cold (core/user_store.h). Untiered by
  // default; cfg_.user_store.hot_capacity bounds resident profiles.
  // Declared after cfg_ (construction reads cfg_.user_store).
  TieredUserStore users_;
  std::size_t next_user_ = 1;
  std::size_t reports_processed_ = 0;
  DecisionLog log_;
  obs::MetricsRegistry metrics_;
  Instruments obs_;
  // Backs the string_views of the report being ingested; cleared per report.
  // Anything retained past process_report() is copied into owned strings.
  util::StringArena ingest_arena_;
  // Per-report scratch recycled across ingests (capacity survives clear();
  // with the arena's block retention, steady-state ingest allocates
  // nothing). Valid only inside one ingest_report/process_report call.
  browser::ReportView view_scratch_;
  std::vector<std::string_view> urls_scratch_;
  std::vector<std::string> scripts_scratch_;
  std::vector<std::uint64_t> domain_hash_scratch_;
  // Racing kRaceWinner events staged by PolicyEngine::observe_report.
  std::vector<Decision> race_events_scratch_;
};

}  // namespace oak::core
