#include "core/matcher.h"

#include "html/extract.h"
#include "util/strings.h"
#include "util/url.h"

namespace oak::core {

std::string to_string(MatchTier t) {
  switch (t) {
    case MatchTier::kNone: return "none";
    case MatchTier::kDirect: return "direct";
    case MatchTier::kText: return "text";
    case MatchTier::kExternalScript: return "external-script";
  }
  return "?";
}

Matcher::Matcher(ScriptFetcher fetch_script, MatcherConfig cfg)
    : fetch_script_(std::move(fetch_script)), cfg_(cfg) {}

bool Matcher::direct_include(const std::string& text,
                             const std::vector<std::string>& domains) const {
  for (const auto& ref : html::extract_references(text)) {
    auto parsed = util::parse_url(ref.url);
    if (!parsed) continue;
    for (const auto& d : domains) {
      if (parsed->host == d) return true;
    }
  }
  return false;
}

bool Matcher::text_mention(const std::string& text,
                           const std::vector<std::string>& domains) const {
  // Substring scan — the paper performs "a regular expression search of the
  // rules for the domains associated with each violator".
  for (const auto& d : domains) {
    if (!d.empty() && util::contains(text, d)) return true;
  }
  return false;
}

MatchTier Matcher::match_text(
    const std::string& rule_text,
    const std::vector<std::string>& violator_domains,
    const std::vector<std::string>& scripts) const {
  if (violator_domains.empty()) return MatchTier::kNone;
  if (direct_include(rule_text, violator_domains)) return MatchTier::kDirect;
  if (cfg_.enable_text && text_mention(rule_text, violator_domains)) {
    return MatchTier::kText;
  }
  if (cfg_.enable_external_scripts && fetch_script_) {
    for (const auto& script_url : scripts) {
      auto parsed = util::parse_url(script_url);
      if (!parsed) continue;
      // Is this script referenced by the rule (tier 1/2 on its own domain)?
      const std::vector<std::string> script_domain = {parsed->host};
      const bool labeled = direct_include(rule_text, script_domain) ||
                           text_mention(rule_text, script_domain);
      if (!labeled) continue;
      auto body = fetch_script_(script_url);
      if (!body) continue;
      if (direct_include(*body, violator_domains) ||
          text_mention(*body, violator_domains)) {
        return MatchTier::kExternalScript;
      }
    }
  }
  return MatchTier::kNone;
}

MatchTier Matcher::match_rule(const Rule& rule,
                              const std::vector<std::string>& violator_domains,
                              const std::vector<std::string>& scripts) const {
  return match_text(rule.default_text, violator_domains, scripts);
}

std::vector<std::string> report_script_urls(
    const std::vector<std::string>& entry_urls) {
  std::vector<std::string> out;
  for (const auto& u : entry_urls) {
    auto parsed = util::parse_url(u);
    if (parsed && util::ends_with(parsed->path, ".js")) out.push_back(u);
  }
  return out;
}

}  // namespace oak::core
