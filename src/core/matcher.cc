#include "core/matcher.h"

#include <algorithm>

#include "html/extract.h"
#include "util/strings.h"
#include "util/url.h"

namespace oak::core {

std::string to_string(MatchTier t) {
  switch (t) {
    case MatchTier::kNone: return "none";
    case MatchTier::kDirect: return "direct";
    case MatchTier::kText: return "text";
    case MatchTier::kExternalScript: return "external-script";
  }
  return "?";
}

Matcher::Matcher(ScriptFetcher fetch_script, MatcherConfig cfg)
    : fetch_script_(std::move(fetch_script)), cfg_(cfg) {
  if (cfg_.enable_cache) cache_ = std::make_unique<MatchCache>(cfg_.cache);
}

Matcher::~Matcher() = default;

void Matcher::invalidate_memo() {
  if (cache_) cache_->invalidate_memo();
  rule_text_hash_.clear();
  text_digest_.clear();
  // Body digests are keyed by body hash and stay correct across rule churn,
  // but clearing here bounds their growth at no correctness cost.
  body_digest_.clear();
}

const MatchCacheStats* Matcher::cache_stats() const {
  return cache_ ? &cache_->stats() : nullptr;
}

Matcher::RuleDigest Matcher::build_digest(std::uint64_t text_hash,
                                          const std::string& text) {
  RuleDigest d;
  d.text_hash = text_hash;
  for (const auto& ref : html::extract_references(text)) {
    auto parsed = util::parse_url(ref.url);
    if (parsed && !parsed->host.empty()) d.ref_hosts.push_back(parsed->host);
  }
  std::sort(d.ref_hosts.begin(), d.ref_hosts.end());
  d.ref_hosts.erase(std::unique(d.ref_hosts.begin(), d.ref_hosts.end()),
                    d.ref_hosts.end());
  return d;
}

const Matcher::RuleDigest& Matcher::digest_for(std::uint64_t text_hash,
                                               const std::string& text) const {
  if (const RuleDigest* d = text_digest_.find(text_hash)) return *d;
  RuleDigest& slot = text_digest_[text_hash];
  slot = build_digest(text_hash, text);
  return slot;
}

const Matcher::RuleDigest& Matcher::body_digest_for(
    std::uint64_t body_hash, const std::string& body) const {
  if (const RuleDigest* d = body_digest_.find(body_hash)) return *d;
  RuleDigest& slot = body_digest_[body_hash];
  slot = build_digest(body_hash, body);
  return slot;
}

bool Matcher::text_mention(const std::string& text,
                           const std::vector<std::string>& domains) const {
  // Substring scan — the paper performs "a regular expression search of the
  // rules for the domains associated with each violator".
  for (const auto& d : domains) {
    if (!d.empty() && util::contains(text, d)) return true;
  }
  return false;
}

std::optional<std::string> Matcher::fetch_body(const std::string& url,
                                               double now) const {
  if (cache_) return cache_->script_body(url, now, fetch_script_);
  return fetch_script_(url);
}

MatchTier Matcher::compute(const RuleDigest& digest,
                           const std::string& rule_text,
                           const std::vector<std::string>& violator_domains,
                           const std::vector<std::string>& scripts,
                           double now) const {
  // Tier 1: explicit reference to a violator domain. The digest has already
  // paid the extract_references() pass; this is domains × log(ref_hosts).
  for (const auto& d : violator_domains) {
    if (std::binary_search(digest.ref_hosts.begin(), digest.ref_hosts.end(),
                           d)) {
      return MatchTier::kDirect;
    }
  }
  if (cfg_.enable_text && text_mention(rule_text, violator_domains)) {
    return MatchTier::kText;
  }
  if (cfg_.enable_external_scripts && fetch_script_) {
    for (const auto& script_url : scripts) {
      auto parsed = util::parse_url(script_url);
      if (!parsed || parsed->host.empty()) continue;
      // Is this script referenced by the rule (tier 1/2 on its own domain)?
      const bool labeled =
          std::binary_search(digest.ref_hosts.begin(), digest.ref_hosts.end(),
                             parsed->host) ||
          util::contains(rule_text, parsed->host);
      if (!labeled) continue;
      auto body = fetch_body(script_url, now);
      if (!body) continue;
      const RuleDigest& body_digest = body_digest_for(fnv1a(*body), *body);
      for (const auto& d : violator_domains) {
        if (std::binary_search(body_digest.ref_hosts.begin(),
                               body_digest.ref_hosts.end(), d)) {
          return MatchTier::kExternalScript;
        }
      }
      if (text_mention(*body, violator_domains)) {
        return MatchTier::kExternalScript;
      }
    }
  }
  return MatchTier::kNone;
}

MatchTier Matcher::match_hashed(std::uint64_t text_hash,
                                const std::string& rule_text,
                                const std::vector<std::string>& violator_domains,
                                std::uint64_t domains_hash,
                                const std::vector<std::string>& scripts,
                                std::uint64_t scripts_hash, double now) const {
  if (!cache_) {
    return compute(digest_for(text_hash, rule_text), rule_text,
                   violator_domains, scripts, now);
  }
  // The reported script set is part of the key: tier 3 depends on which
  // scripts the client loaded, and including it keeps the memo exact.
  const MatchCache::MemoKey key{text_hash, domains_hash, scripts_hash};
  if (auto memo = cache_->memo_lookup(key, now)) return *memo;
  // compute() may invalidate the memo (TTL refresh with a changed body);
  // the store below then records the verdict under the fresh body.
  const MatchTier tier = compute(digest_for(text_hash, rule_text), rule_text,
                                 violator_domains, scripts, now);
  cache_->memo_store(key, tier, now);
  return tier;
}

MatchTier Matcher::match_text(const std::string& rule_text,
                              const std::vector<std::string>& violator_domains,
                              const std::vector<std::string>& scripts,
                              double now) const {
  if (violator_domains.empty()) return MatchTier::kNone;
  return match_hashed(fnv1a(rule_text), rule_text, violator_domains,
                      fnv1a(violator_domains), scripts, fnv1a(scripts), now);
}

MatchTier Matcher::match_text(const std::string& rule_text,
                              const std::vector<std::string>& violator_domains,
                              std::uint64_t domains_hash,
                              const std::vector<std::string>& scripts,
                              std::uint64_t scripts_hash, double now) const {
  if (violator_domains.empty()) return MatchTier::kNone;
  return match_hashed(fnv1a(rule_text), rule_text, violator_domains,
                      domains_hash, scripts, scripts_hash, now);
}

MatchTier Matcher::match_rule(const Rule& rule,
                              const std::vector<std::string>& violator_domains,
                              const std::vector<std::string>& scripts,
                              double now) const {
  return match_rule(rule, violator_domains, fnv1a(violator_domains), scripts,
                    fnv1a(scripts), now);
}

MatchTier Matcher::match_rule(const Rule& rule,
                              const std::vector<std::string>& violator_domains,
                              std::uint64_t domains_hash,
                              const std::vector<std::string>& scripts,
                              std::uint64_t scripts_hash, double now) const {
  if (violator_domains.empty()) return MatchTier::kNone;
  if (rule.id == 0) {
    return match_text(rule.default_text, violator_domains, domains_hash,
                      scripts, scripts_hash, now);
  }
  std::uint64_t* cached = rule_text_hash_.find(rule.id);
  const std::uint64_t text_hash =
      cached ? *cached
             : (rule_text_hash_[rule.id] = fnv1a(rule.default_text));
  return match_hashed(text_hash, rule.default_text, violator_domains,
                      domains_hash, scripts, scripts_hash, now);
}

std::vector<std::string> report_script_urls(
    const std::vector<std::string>& entry_urls) {
  std::vector<std::string> out;
  for (const auto& u : entry_urls) {
    auto parsed = util::parse_url(u);
    if (parsed && util::ends_with(parsed->path, ".js")) out.push_back(u);
  }
  return out;
}

std::vector<std::string> report_script_urls(
    std::span<const std::string_view> entry_urls) {
  std::vector<std::string> out;
  for (const auto& u : entry_urls) {
    auto parsed = util::parse_url(u);
    if (parsed && util::ends_with(parsed->path, ".js")) {
      out.push_back(std::string(u));
    }
  }
  return out;
}

void report_script_urls(std::span<const std::string_view> entry_urls,
                        std::vector<std::string>& out) {
  // Overwrite-in-place so surviving slots reuse their string capacity.
  std::size_t n = 0;
  for (const auto& u : entry_urls) {
    auto parsed = util::parse_url(u);
    if (!parsed || !util::ends_with(parsed->path, ".js")) continue;
    if (n < out.size()) {
      out[n].assign(u.data(), u.size());
    } else {
      out.emplace_back(u);
    }
    ++n;
  }
  out.resize(n);
}

}  // namespace oak::core
