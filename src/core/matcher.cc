#include "core/matcher.h"

#include "html/extract.h"
#include "util/strings.h"
#include "util/url.h"

namespace oak::core {

std::string to_string(MatchTier t) {
  switch (t) {
    case MatchTier::kNone: return "none";
    case MatchTier::kDirect: return "direct";
    case MatchTier::kText: return "text";
    case MatchTier::kExternalScript: return "external-script";
  }
  return "?";
}

Matcher::Matcher(ScriptFetcher fetch_script, MatcherConfig cfg)
    : fetch_script_(std::move(fetch_script)), cfg_(cfg) {
  if (cfg_.enable_cache) cache_ = std::make_unique<MatchCache>(cfg_.cache);
}

Matcher::~Matcher() = default;

void Matcher::invalidate_memo() {
  if (cache_) cache_->invalidate_memo();
  rule_text_hash_.clear();
}

const MatchCacheStats* Matcher::cache_stats() const {
  return cache_ ? &cache_->stats() : nullptr;
}

bool Matcher::direct_include(const std::string& text,
                             const std::vector<std::string>& domains) const {
  for (const auto& ref : html::extract_references(text)) {
    auto parsed = util::parse_url(ref.url);
    if (!parsed) continue;
    for (const auto& d : domains) {
      if (parsed->host == d) return true;
    }
  }
  return false;
}

bool Matcher::text_mention(const std::string& text,
                           const std::vector<std::string>& domains) const {
  // Substring scan — the paper performs "a regular expression search of the
  // rules for the domains associated with each violator".
  for (const auto& d : domains) {
    if (!d.empty() && util::contains(text, d)) return true;
  }
  return false;
}

std::optional<std::string> Matcher::fetch_body(const std::string& url,
                                               double now) const {
  if (cache_) return cache_->script_body(url, now, fetch_script_);
  return fetch_script_(url);
}

MatchTier Matcher::compute(const std::string& rule_text,
                           const std::vector<std::string>& violator_domains,
                           const std::vector<std::string>& scripts,
                           double now) const {
  if (direct_include(rule_text, violator_domains)) return MatchTier::kDirect;
  if (cfg_.enable_text && text_mention(rule_text, violator_domains)) {
    return MatchTier::kText;
  }
  if (cfg_.enable_external_scripts && fetch_script_) {
    for (const auto& script_url : scripts) {
      auto parsed = util::parse_url(script_url);
      if (!parsed) continue;
      // Is this script referenced by the rule (tier 1/2 on its own domain)?
      const std::vector<std::string> script_domain = {parsed->host};
      const bool labeled = direct_include(rule_text, script_domain) ||
                           text_mention(rule_text, script_domain);
      if (!labeled) continue;
      auto body = fetch_body(script_url, now);
      if (!body) continue;
      if (direct_include(*body, violator_domains) ||
          text_mention(*body, violator_domains)) {
        return MatchTier::kExternalScript;
      }
    }
  }
  return MatchTier::kNone;
}

MatchTier Matcher::match_hashed(std::uint64_t text_hash,
                                const std::string& rule_text,
                                const std::vector<std::string>& violator_domains,
                                const std::vector<std::string>& scripts,
                                double now) const {
  // The reported script set is part of the key: tier 3 depends on which
  // scripts the client loaded, and including it keeps the memo exact.
  const MatchCache::MemoKey key{text_hash, fnv1a(violator_domains),
                                fnv1a(scripts)};
  if (auto memo = cache_->memo_lookup(key, now)) return *memo;
  // compute() may invalidate the memo (TTL refresh with a changed body);
  // the store below then records the verdict under the fresh body.
  const MatchTier tier = compute(rule_text, violator_domains, scripts, now);
  cache_->memo_store(key, tier, now);
  return tier;
}

MatchTier Matcher::match_text(const std::string& rule_text,
                              const std::vector<std::string>& violator_domains,
                              const std::vector<std::string>& scripts,
                              double now) const {
  if (violator_domains.empty()) return MatchTier::kNone;
  if (!cache_) return compute(rule_text, violator_domains, scripts, now);
  return match_hashed(fnv1a(rule_text), rule_text, violator_domains, scripts,
                      now);
}

MatchTier Matcher::match_rule(const Rule& rule,
                              const std::vector<std::string>& violator_domains,
                              const std::vector<std::string>& scripts,
                              double now) const {
  if (violator_domains.empty()) return MatchTier::kNone;
  if (!cache_ || rule.id == 0) {
    return match_text(rule.default_text, violator_domains, scripts, now);
  }
  auto it = rule_text_hash_.find(rule.id);
  if (it == rule_text_hash_.end()) {
    it = rule_text_hash_.emplace(rule.id, fnv1a(rule.default_text)).first;
  }
  return match_hashed(it->second, rule.default_text, violator_domains,
                      scripts, now);
}

std::vector<std::string> report_script_urls(
    const std::vector<std::string>& entry_urls) {
  std::vector<std::string> out;
  for (const auto& u : entry_urls) {
    auto parsed = util::parse_url(u);
    if (parsed && util::ends_with(parsed->path, ".js")) out.push_back(u);
  }
  return out;
}

std::vector<std::string> report_script_urls(
    std::span<const std::string_view> entry_urls) {
  std::vector<std::string> out;
  for (const auto& u : entry_urls) {
    auto parsed = util::parse_url(u);
    if (parsed && util::ends_with(parsed->path, ".js")) {
      out.push_back(std::string(u));
    }
  }
  return out;
}

}  // namespace oak::core
