#include "core/sharded_server.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "core/rule_parser.h"
#include "http/cookies.h"
#include "util/strings.h"

namespace oak::core {

namespace {

// Rebuild the HTTP request a journaled record described and run it through
// the shard's core. Only the fields OakServer's state machine reads are
// restored (method, url, oak_uid cookie, body, client_ip); response-only
// details are irrelevant to replay.
void replay_record(OakServer& server, const durability::Record& rec) {
  switch (rec.kind) {
    case durability::RecordKind::kRequest: {
      http::Request req;
      req.method =
          rec.request.post ? http::Method::kPost : http::Method::kGet;
      // The journaled URL is the to_string() of a URL that parsed at admit
      // time, so it parses back; a failure would mean journal corruption
      // that survived the CRC, which scan_journal_file rules out.
      auto url = util::parse_url(rec.request.path);
      if (!url) return;
      req.url = *url;
      req.body = rec.request.body;
      req.client_ip = rec.request.client_ip;
      req.headers.set("Cookie", std::string(http::kOakUserCookie) + "=" +
                                    rec.request.uid);
      server.handle(req, rec.request.now);
      break;
    }
    case durability::RecordKind::kAddRule: {
      std::vector<Rule> rules = parse_rules(rec.add_rule.rule_text);
      for (Rule& r : rules) {
        r.id = static_cast<int>(rec.add_rule.rule_id);
        server.add_rule(std::move(r));
      }
      break;
    }
    case durability::RecordKind::kRemoveRule:
      server.remove_rule(static_cast<int>(rec.remove_rule.rule_id),
                         rec.remove_rule.now);
      break;
  }
}

// Control records apply to every shard; request records to one. Merge the
// two seq-ascending streams so each shard replays its mutations in the
// order they originally happened.
std::vector<const durability::Record*> merge_for_shard(
    const std::vector<durability::Record>& ctl,
    const std::vector<durability::Record>& mine) {
  std::vector<const durability::Record*> out;
  out.reserve(ctl.size() + mine.size());
  std::size_t a = 0, b = 0;
  while (a < ctl.size() || b < mine.size()) {
    if (b == mine.size() ||
        (a < ctl.size() && ctl[a].seq() < mine[b].seq())) {
      out.push_back(&ctl[a++]);
    } else {
      out.push_back(&mine[b++]);
    }
  }
  return out;
}

}  // namespace

ShardedOakServer::ShardedOakServer(page::WebUniverse& universe,
                                   std::string site_host, OakConfig cfg,
                                   std::size_t num_shards)
    : universe_(universe), site_host_(std::move(site_host)), cfg_(cfg) {
  if (num_shards == 0) num_shards = 1;
  // A zero bound would deadlock the first producer; a zero batch would spin.
  if (cfg_.ingest_queue.depth == 0) cfg_.ingest_queue.depth = 1;
  if (cfg_.ingest_queue.max_batch == 0) cfg_.ingest_queue.max_batch = 1;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    OakConfig shard_cfg = cfg_;
    // Tiered stores spill per shard: a named spill_dir gets one file per
    // shard (they are truncated-on-open caches, so sharing one would be a
    // correctness bug, not just contention); the anonymous default already
    // creates a distinct unlinked file per store.
    if (shard_cfg.user_store.hot_capacity > 0 &&
        !shard_cfg.user_store.spill_dir.empty() &&
        shard_cfg.user_store.cold_file.empty()) {
      shard_cfg.user_store.cold_file =
          shard_cfg.user_store.spill_dir + "/cold-" + std::to_string(i) +
          ".dat";
    }
    shard->server = std::make_unique<OakServer>(universe_, site_host_,
                                                shard_cfg);
    if (cfg_.metrics && cfg_.ingest_queue.enabled) {
      // Queue health lives in the shard's own registry so the merged
      // snapshot (and the bench JSON) carries it per fleet: depth gauges sum
      // across shards, batch-size histograms merge by addition.
      obs::MetricsRegistry& reg = shard->server->metrics_registry();
      shard->q_depth = &reg.gauge("oak_ingest_queue_depth");
      // 1..64 in doubling buckets — batch sizes, not latencies.
      shard->q_batch_size = &reg.histogram("oak_ingest_batch_size",
                                           obs::HistogramSpec{1.0, 2.0, 7});
      shard->q_enqueued = &reg.counter("oak_ingest_enqueued_total");
      shard->q_batches = &reg.counter("oak_ingest_batches_total");
      shard->q_backpressure = &reg.counter("oak_ingest_backpressure_total");
    }
    shards_.push_back(std::move(shard));
  }
  if (cfg_.durability.enabled) enable_durability_();
}

void ShardedOakServer::enable_durability_() {
  dur_ = std::make_unique<durability::Manager>(cfg_.durability, shards_.size(),
                                               cfg_.metrics);
  durability::Manager::Startup su = dur_->startup();

  // 1. Rules the journal suffix was written against, with their pinned ids.
  int next_rule_id = 1;
  if (su.have_snapshot && !su.legacy) {
    for (const auto& entry : su.snapshot.rules) {
      std::vector<Rule> parsed = parse_rules(entry.text);
      for (Rule& r : parsed) {
        r.id = static_cast<int>(entry.id);
        for (auto& shard : shards_) shard->server->add_rule(r);
      }
    }
    next_rule_id = static_cast<int>(su.snapshot.next_rule_id);
  }
  for (const auto& rec : su.ctl) {
    if (rec.kind == durability::RecordKind::kAddRule) {
      next_rule_id =
          std::max(next_rule_id, static_cast<int>(rec.add_rule.rule_id) + 1);
    }
  }

  // 2. Snapshot state (legacy: a bare pre-journal export_state document —
  // state restored, no suffix to replay, rules are operator configuration).
  if (su.have_snapshot && !su.legacy) {
    import_state(su.snapshot.state);
  } else if (su.legacy) {
    import_state(su.legacy_state);
  }

  // 3. Parallel per-shard replay. Construction is single-threaded and each
  // replay thread touches only its own shard's OakServer, so no locks.
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t replayed = su.ctl.size();
  for (const auto& list : su.shards) replayed += list.size();
  if (replayed > 0) {
    std::vector<std::thread> threads;
    threads.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      threads.emplace_back([this, i, &su] {
        for (const durability::Record* rec :
             merge_for_shard(su.ctl, su.shards[i])) {
          replay_record(*shards_[i]->server, *rec);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double replay_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // 4. Counter restoration. next_user_ must clear every uid ever minted —
  // including those whose request left no profile (a fresh mint that 404'd),
  // which is exactly why the minted value rides in the record.
  std::size_t next_user = next_user_.load();
  for (const auto& list : su.shards) {
    for (const auto& rec : list) {
      if (rec.kind == durability::RecordKind::kRequest &&
          rec.request.minted != 0) {
        next_user = std::max(
            next_user, static_cast<std::size_t>(rec.request.minted) + 1);
      }
    }
  }
  next_user_.store(next_user);
  for (auto& shard : shards_) shard->server->reserve_rule_ids(next_rule_id);
  dur_->seed_seq(su.max_seq);

  // 5. Go live. A bootstrap (no manifest yet, including the legacy upgrade)
  // commits its baseline via an initial compaction *before* serving, so a
  // crash at any later point recovers from a committed snapshot.
  dur_->start_recording();
  dur_->note_recovery(replayed, replay_s);
  if (su.bootstrap) compact();
}

std::size_t ShardedOakServer::shard_for(const std::string& user_id) const {
  return std::hash<std::string>{}(user_id) % shards_.size();
}

std::unique_lock<std::mutex> ShardedOakServer::lock_shard(Shard& s) const {
  std::unique_lock<std::mutex> lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    s.contended.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

int ShardedOakServer::add_rule(Rule rule) {
  std::unique_lock<std::shared_mutex> rules_lock(rules_mu_);
  // The first shard validates and (for id 0) assigns the id; the others
  // receive the rule with the id pinned, keeping the sets identical. A
  // validation failure throws before any shard is touched.
  const int id = shards_[0]->server->add_rule(rule);
  rule.id = id;
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    shards_[i]->server->add_rule(rule);
  }
  if (dur_ && dur_->recording()) {
    // One control record under the exclusive rule lock: rule churn is a
    // cross-shard mutation, and a single record can never tear across
    // shards the way N per-shard copies could.
    durability::Record rec;
    rec.kind = durability::RecordKind::kAddRule;
    rec.add_rule.seq = dur_->next_seq();
    rec.add_rule.rule_id = id;
    rec.add_rule.rule_text = format_rules({rule});
    dur_->append_control(rec);
  }
  return id;
}

void ShardedOakServer::add_rules(std::vector<Rule> rules) {
  for (auto& r : rules) add_rule(std::move(r));
}

bool ShardedOakServer::remove_rule(int rule_id, double now) {
  std::unique_lock<std::shared_mutex> rules_lock(rules_mu_);
  bool removed = false;
  for (auto& shard : shards_) {
    removed = shard->server->remove_rule(rule_id, now) || removed;
  }
  if (removed && dur_ && dur_->recording()) {
    durability::Record rec;
    rec.kind = durability::RecordKind::kRemoveRule;
    rec.remove_rule.seq = dur_->next_seq();
    rec.remove_rule.now = now;
    rec.remove_rule.rule_id = rule_id;
    dur_->append_control(rec);
  }
  return removed;
}

http::Response ShardedOakServer::handle(const http::Request& req, double now) {
  std::string uid;
  if (auto cookie = req.headers.get("Cookie")) {
    auto jar = http::parse_cookie_header(*cookie);
    auto it = jar.find(http::kOakUserCookie);
    if (it != jar.end()) uid = it->second;
  }
  return handle_for_user(req, now, std::move(uid));
}

http::Response ShardedOakServer::handle_for_user(const http::Request& req,
                                                 double now,
                                                 std::string uid) {
  // Mint the identity here (one atomic counter, no shard involvement) and
  // hand the core a request that already carries it; the Set-Cookie is
  // attached on the way out, exactly as the single-threaded server does.
  const bool fresh = uid.empty();
  std::uint64_t minted = 0;
  http::Request with_cookie;
  const http::Request* effective = &req;
  if (fresh) {
    minted = next_user_.fetch_add(1, std::memory_order_relaxed);
    uid = util::format("u%zu", static_cast<std::size_t>(minted));
    with_cookie = req;
    const std::string pair = std::string(http::kOakUserCookie) + "=" + uid;
    if (auto cookie = req.headers.get("Cookie")) {
      with_cookie.headers.set("Cookie", *cookie + "; " + pair);
    } else {
      with_cookie.headers.set("Cookie", pair);
    }
    effective = &with_cookie;
  }

  http::Response resp;
  {
    std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
    const std::size_t shard_index = shard_for(uid);
    Shard& shard = *shards_[shard_index];

    PendingOp op;
    op.req = effective;
    op.now = now;
    op.uid = &uid;
    op.fresh = fresh;
    op.minted = minted;

    if (!cfg_.ingest_queue.enabled) {
      // Direct mode: the pre-queue behavior — one lock acquisition per
      // request, no batching.
      auto shard_lock = lock_shard(shard);
      execute_op(shard_index, shard, op);
    } else {
      std::unique_lock<std::mutex> ql(shard.qmu);
      // Back-pressure: a full queue blocks the producer until a batch
      // drains. Ops live on producer stacks, so this bounds batch latency
      // and combiner turn length, not memory.
      if (shard.queue.size() >= cfg_.ingest_queue.depth) {
        if (shard.q_backpressure != nullptr) shard.q_backpressure->inc();
        shard.qcv.wait(ql, [&] {
          return shard.queue.size() < cfg_.ingest_queue.depth;
        });
      }
      shard.queue.push_back(&op);
      shard.q_pending.store(shard.queue.size(), std::memory_order_relaxed);
      if (shard.q_enqueued != nullptr) shard.q_enqueued->inc();
      if (shard.q_depth != nullptr) {
        shard.q_depth->set(static_cast<double>(shard.queue.size()));
      }
      while (!op.done) {
        if (!shard.combiner_active) {
          // Become the combiner: drain the queue (our own op included) in
          // batches, one shard-lock acquisition per batch.
          shard.combiner_active = true;
          combine(shard_index, shard, ql, op);
        } else {
          shard.qcv.wait(ql);
        }
      }
    }
    resp = std::move(op.resp);
  }
  // Threshold compaction runs outside the serving locks; one thread wins
  // the flag and pays the pause, the rest keep serving. The reset is
  // RAII-scoped: a compaction that throws (disk full, fsync error) must not
  // leave compacting_ latched true, which would disable compaction for the
  // life of the process.
  if (dur_ && dur_->should_compact() &&
      !compacting_.exchange(true, std::memory_order_acq_rel)) {
    struct Reset {
      std::atomic<bool>& flag;
      ~Reset() { flag.store(false, std::memory_order_release); }
    } reset{compacting_};
    try {
      compact();
    } catch (...) {
      compact_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return resp;
}

void ShardedOakServer::execute_op(std::size_t shard_index, Shard& shard,
                                  PendingOp& op) {
  shard.handled.fetch_add(1, std::memory_order_relaxed);
  op.resp = shard.server->handle(*op.req, op.now);
  const bool tracked = shard.server->profile(*op.uid) != nullptr;
  // Only advertise the minted id if the core actually kept a profile (a
  // 404 or a disabled Oak tracks nobody and should set no cookie).
  if (op.fresh && tracked) {
    op.resp.headers.add("Set-Cookie",
                        std::string(http::kOakUserCookie) + "=" + *op.uid);
  }
  // Journal under the shard lock already held. `fresh` requests are
  // journaled even when untracked: the minted counter value must survive a
  // crash or recovery would re-issue the same uid to a different user.
  if (dur_ && dur_->recording() && (op.fresh || tracked)) {
    const std::string path = op.req->url.to_string();
    durability::RequestRecordView rec;
    rec.seq = dur_->next_seq();
    rec.now = op.now;
    rec.post = op.req->method == http::Method::kPost;
    rec.minted = op.minted;
    rec.uid = *op.uid;
    rec.client_ip = op.req->client_ip;
    rec.path = path;
    rec.body = op.req->body;
    dur_->append_request(shard_index, rec);
  }
}

void ShardedOakServer::combine(std::size_t shard_index, Shard& shard,
                               std::unique_lock<std::mutex>& ql,
                               PendingOp& own) {
  const std::size_t max_batch = cfg_.ingest_queue.max_batch;
  std::vector<PendingOp*> batch;
  batch.reserve(max_batch);
  std::size_t processed = 0;
  while (!shard.queue.empty()) {
    // Claim a batch in enqueue order — per-shard FIFO, so a user's requests
    // (one in flight at a time; producers block until done) execute in the
    // order they arrived, exactly as direct mode would.
    const std::size_t n = std::min(shard.queue.size(), max_batch);
    batch.assign(shard.queue.begin(),
                 shard.queue.begin() + static_cast<std::ptrdiff_t>(n));
    shard.queue.erase(shard.queue.begin(),
                      shard.queue.begin() + static_cast<std::ptrdiff_t>(n));
    shard.q_pending.store(shard.queue.size(), std::memory_order_relaxed);
    if (shard.q_depth != nullptr) {
      shard.q_depth->set(static_cast<double>(shard.queue.size()));
    }
    ql.unlock();
    {
      // One lock acquisition amortized over the whole batch — the point of
      // the exercise. qmu is never held across this region.
      auto shard_lock = lock_shard(shard);
      for (PendingOp* op : batch) execute_op(shard_index, shard, *op);
    }
    ql.lock();
    for (PendingOp* op : batch) op->done = true;
    if (shard.q_batches != nullptr) shard.q_batches->inc();
    if (shard.q_batch_size != nullptr) {
      shard.q_batch_size->observe(static_cast<double>(n));
    }
    // Wake completed producers and anyone blocked on back-pressure.
    shard.qcv.notify_all();
    processed += n;
    // Hand off once our own request is served and we've done a fair share:
    // a woken producer (or the next arrival) takes over the role.
    if (own.done && processed >= cfg_.ingest_queue.handoff_after) break;
  }
  shard.combiner_active = false;
  if (!shard.queue.empty()) shard.qcv.notify_all();
}

double ShardedOakServer::ingest_pressure() const {
  if (!cfg_.ingest_queue.enabled || cfg_.ingest_queue.depth == 0) return 0.0;
  std::size_t worst = 0;
  for (const auto& shard : shards_) {
    worst = std::max(worst,
                     shard->q_pending.load(std::memory_order_relaxed));
  }
  return std::min(1.0, static_cast<double>(worst) /
                           static_cast<double>(cfg_.ingest_queue.depth));
}

std::size_t ShardedOakServer::ingest_queue_pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->q_pending.load(std::memory_order_relaxed);
  }
  return total;
}

void ShardedOakServer::install() {
  universe_.set_handler(site_host_,
                        [this](const http::Request& req, double now) {
                          return handle(req, now);
                        });
}

std::size_t ShardedOakServer::user_count() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    total += shard->server->user_count();
  }
  return total;
}

std::size_t ShardedOakServer::reports_processed() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    total += shard->server->reports_processed();
  }
  return total;
}

std::vector<Rule> ShardedOakServer::rules() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  return shards_[0]->server->rules();
}

std::optional<UserProfile> ShardedOakServer::profile(
    const std::string& user_id) const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  Shard& shard = *shards_[shard_for(user_id)];
  auto lock = lock_shard(shard);
  const UserProfile* p = shard.server->profile(user_id);
  if (!p) return std::nullopt;
  return *p;
}

DecisionLog ShardedOakServer::merged_decision_log() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.push_back(lock_shard(*shard));

  std::vector<Decision> merged;
  for (const auto& shard : shards_) {
    const auto& entries = shard->server->decision_log().entries();
    merged.insert(merged.end(), entries.begin(), entries.end());
  }
  // Stable by timestamp: same-time decisions keep shard-index order, which
  // is deterministic for a given user→shard mapping.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Decision& a, const Decision& b) {
                     return a.time < b.time;
                   });
  DecisionLog log;
  for (auto& d : merged) log.record(std::move(d));

  // Replay contexts merge the same way, so a bundle recorded against a
  // sharded deployment replays in one global time order.
  std::vector<ReportContext> contexts;
  for (const auto& shard : shards_) {
    const auto& cs = shard->server->decision_log().contexts();
    contexts.insert(contexts.end(), cs.begin(), cs.end());
  }
  std::stable_sort(contexts.begin(), contexts.end(),
                   [](const ReportContext& a, const ReportContext& b) {
                     return a.time < b.time;
                   });
  for (auto& c : contexts) log.record_context(std::move(c));
  return log;
}

std::size_t ShardedOakServer::decision_count(DecisionType t) const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    total += shard->server->decision_log().count(t);
  }
  return total;
}

util::Json ShardedOakServer::export_state() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  // Lock every shard (index order) for one consistent cut, then merge the
  // per-shard snapshots into OakServer's schema.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.push_back(lock_shard(*shard));
  return export_state_locked();
}

util::Json ShardedOakServer::export_state_locked() const {
  util::Json merged = shards_[0]->server->export_state();
  util::JsonObject& users = merged["users"].as_object();
  util::JsonArray& log = merged["log"].as_array();
  std::size_t reports = shards_[0]->server->reports_processed();
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    util::Json part = shards_[i]->server->export_state();
    for (auto& [uid, u] : part["users"].as_object()) {
      users[uid] = std::move(u);
    }
    for (auto& d : part["log"].as_array()) log.push_back(std::move(d));
    reports += shards_[i]->server->reports_processed();
  }
  std::stable_sort(log.begin(), log.end(),
                   [](const util::Json& a, const util::Json& b) {
                     return a.at("t").as_number() < b.at("t").as_number();
                   });
  merged["reports_processed"] = reports;
  merged["next_user"] = next_user_.load();
  return merged;
}

durability::SnapshotEnvelope ShardedOakServer::make_envelope_locked() const {
  durability::SnapshotEnvelope env;
  for (const Rule& r : shards_[0]->server->rules()) {
    env.rules.push_back({r.id, format_rules({r})});
  }
  env.next_rule_id = shards_[0]->server->next_rule_id();
  env.state = export_state_locked();
  return env;
}

void ShardedOakServer::compact() {
  const bool tiered = cfg_.user_store.hot_capacity > 0;
  if ((!dur_ || !dur_->recording()) && !tiered) return;
  // Shared on the rule lock is enough to freeze the rule set (churn is
  // exclusive); all shard locks give the consistent cut.
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.push_back(lock_shard(*shard));
  if (dur_ && dur_->recording()) dur_->compact(make_envelope_locked());
  // The snapshot cut is also the natural moment to fold the cold spill
  // files: dead records (stale demotions) are dropped alongside the
  // journal's, under the same consistent cut.
  if (tiered) {
    for (const auto& shard : shards_) shard->server->compact_user_store();
  }
}

void ShardedOakServer::import_state(const util::Json& snapshot) {
  std::unique_lock<std::shared_mutex> rules_lock(rules_mu_);
  // Partition the snapshot by user hash. All reads of `snapshot` (and thus
  // all schema validation that could throw here) happen before any shard
  // commits.
  const auto& users = snapshot.at("users").as_object();
  const auto& log = snapshot.at("log").as_array();
  const std::size_t next_user =
      static_cast<std::size_t>(snapshot.at("next_user").as_int());
  const auto total_reports = snapshot.at("reports_processed").as_int();

  std::vector<util::JsonObject> shard_users(shards_.size());
  std::vector<util::JsonArray> shard_logs(shards_.size());
  for (const auto& [uid, u] : users) shard_users[shard_for(uid)][uid] = u;
  for (const auto& d : log) {
    shard_logs[shard_for(d.at("user").as_string())].push_back(d);
  }

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    util::JsonObject part;
    part["version"] = snapshot.at("version");
    part["site"] = site_host_;
    part["next_user"] = next_user;
    // The aggregate counter lives on shard 0 so the fleet-wide sum is exact.
    part["reports_processed"] = i == 0 ? total_reports : 0;
    part["users"] = std::move(shard_users[i]);
    part["log"] = std::move(shard_logs[i]);
    shards_[i]->server->import_state(util::Json(std::move(part)));
  }
  next_user_.store(next_user);
}

SiteAnalytics ShardedOakServer::audit(std::optional<double> now) const {
  // Materialize the merged state into a scratch single-threaded server and
  // audit that — SiteAnalytics stays a pure function of one OakServer.
  util::Json snapshot = export_state();
  // The scratch server is untiered regardless of cfg_: it exists for one
  // read-only pass over the merged state, and spinning up spill files to
  // then fault every profile back out of them would serve nothing.
  OakConfig scratch_cfg = cfg_;
  scratch_cfg.user_store = UserStoreConfig{};
  OakServer scratch(universe_, site_host_, scratch_cfg);
  for (const Rule& r : rules()) scratch.add_rule(r);
  scratch.import_state(snapshot);
  SiteAnalytics analytics(scratch, now);

  // The legacy counters struct is now a projection of the merged registry.
  analytics.set_concurrency(
      ConcurrencyCounters::from_metrics(metrics_snapshot(), shards_.size()));
  return analytics;
}

obs::MetricsSnapshot ShardedOakServer::metrics_snapshot() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  // Incremental per-shard cut: lock one shard, fold it in, release, move
  // on. Counters are monotone and gauges merge by addition, so the merged
  // view is a valid (slightly time-skewed) observation — not worth stalling
  // the whole serving plane for, the way an all-shard cut would while a
  // combiner holds a shard lock for a full batch.
  obs::MetricsSnapshot merged;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    merged.merge(shard->server->metrics_snapshot());
  }
  if (dur_) merged.merge(dur_->metrics_snapshot());
  if (cfg_.metrics) {
    // The wrapper's own serving-plane tallies are plain atomics, not
    // registry instruments (they predate oak::obs and feed shard_stats());
    // fold them in here so one exposition carries the whole story.
    std::uint64_t handled = 0, contended = 0;
    for (const auto& shard : shards_) {
      handled += shard->handled.load(std::memory_order_relaxed);
      contended += shard->contended.load(std::memory_order_relaxed);
    }
    merged.counters["oak_requests_total"] += handled;
    merged.counters["oak_shard_contentions_total"] += contended;
    merged.counters["oak_compact_failures_total"] +=
        compact_failures_.load(std::memory_order_relaxed);
    merged.gauges["oak_shards"] += static_cast<double>(shards_.size());
  }
  return merged;
}

std::string ShardedOakServer::metrics_text() const {
  return metrics_snapshot().to_prometheus();
}

util::Json ShardedOakServer::metrics_json() const {
  return metrics_snapshot().to_json();
}

MatchCacheStats ShardedOakServer::match_cache_stats() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  MatchCacheStats total;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    if (const MatchCacheStats* s = shard->server->matcher().cache_stats()) {
      total += *s;
    }
  }
  return total;
}

ShardedOakServer::ShardStats ShardedOakServer::shard_stats() const {
  ShardStats s;
  s.shards = shards_.size();
  for (const auto& shard : shards_) {
    s.requests_handled += shard->handled.load(std::memory_order_relaxed);
    s.contentions += shard->contended.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace oak::core
