#include "core/sharded_server.h"

#include <algorithm>
#include <functional>

#include "http/cookies.h"
#include "util/strings.h"

namespace oak::core {

ShardedOakServer::ShardedOakServer(page::WebUniverse& universe,
                                   std::string site_host, OakConfig cfg,
                                   std::size_t num_shards)
    : universe_(universe), site_host_(std::move(site_host)), cfg_(cfg) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->server = std::make_unique<OakServer>(universe_, site_host_, cfg_);
    shards_.push_back(std::move(shard));
  }
}

std::size_t ShardedOakServer::shard_for(const std::string& user_id) const {
  return std::hash<std::string>{}(user_id) % shards_.size();
}

std::unique_lock<std::mutex> ShardedOakServer::lock_shard(Shard& s) const {
  std::unique_lock<std::mutex> lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    s.contended.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

int ShardedOakServer::add_rule(Rule rule) {
  std::unique_lock<std::shared_mutex> rules_lock(rules_mu_);
  // The first shard validates and (for id 0) assigns the id; the others
  // receive the rule with the id pinned, keeping the sets identical. A
  // validation failure throws before any shard is touched.
  const int id = shards_[0]->server->add_rule(rule);
  rule.id = id;
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    shards_[i]->server->add_rule(rule);
  }
  return id;
}

void ShardedOakServer::add_rules(std::vector<Rule> rules) {
  for (auto& r : rules) add_rule(std::move(r));
}

bool ShardedOakServer::remove_rule(int rule_id, double now) {
  std::unique_lock<std::shared_mutex> rules_lock(rules_mu_);
  bool removed = false;
  for (auto& shard : shards_) {
    removed = shard->server->remove_rule(rule_id, now) || removed;
  }
  return removed;
}

http::Response ShardedOakServer::handle(const http::Request& req, double now) {
  std::string uid;
  if (auto cookie = req.headers.get("Cookie")) {
    auto jar = http::parse_cookie_header(*cookie);
    auto it = jar.find(http::kOakUserCookie);
    if (it != jar.end()) uid = it->second;
  }

  // Mint the identity here (one atomic counter, no shard involvement) and
  // hand the core a request that already carries it; the Set-Cookie is
  // attached on the way out, exactly as the single-threaded server does.
  const bool fresh = uid.empty();
  http::Request with_cookie;
  const http::Request* effective = &req;
  if (fresh) {
    uid = util::format("u%zu",
                       next_user_.fetch_add(1, std::memory_order_relaxed));
    with_cookie = req;
    const std::string pair = std::string(http::kOakUserCookie) + "=" + uid;
    if (auto cookie = req.headers.get("Cookie")) {
      with_cookie.headers.set("Cookie", *cookie + "; " + pair);
    } else {
      with_cookie.headers.set("Cookie", pair);
    }
    effective = &with_cookie;
  }

  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  Shard& shard = *shards_[shard_for(uid)];
  auto shard_lock = lock_shard(shard);
  shard.handled.fetch_add(1, std::memory_order_relaxed);
  http::Response resp = shard.server->handle(*effective, now);
  // Only advertise the minted id if the core actually kept a profile (a 404
  // or a disabled Oak tracks nobody and should set no cookie).
  if (fresh && shard.server->profile(uid) != nullptr) {
    resp.headers.add("Set-Cookie",
                     std::string(http::kOakUserCookie) + "=" + uid);
  }
  return resp;
}

void ShardedOakServer::install() {
  universe_.set_handler(site_host_,
                        [this](const http::Request& req, double now) {
                          return handle(req, now);
                        });
}

std::size_t ShardedOakServer::user_count() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    total += shard->server->user_count();
  }
  return total;
}

std::size_t ShardedOakServer::reports_processed() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    total += shard->server->reports_processed();
  }
  return total;
}

std::vector<Rule> ShardedOakServer::rules() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  return shards_[0]->server->rules();
}

std::optional<UserProfile> ShardedOakServer::profile(
    const std::string& user_id) const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  Shard& shard = *shards_[shard_for(user_id)];
  auto lock = lock_shard(shard);
  const UserProfile* p = shard.server->profile(user_id);
  if (!p) return std::nullopt;
  return *p;
}

DecisionLog ShardedOakServer::merged_decision_log() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.push_back(lock_shard(*shard));

  std::vector<Decision> merged;
  for (const auto& shard : shards_) {
    const auto& entries = shard->server->decision_log().entries();
    merged.insert(merged.end(), entries.begin(), entries.end());
  }
  // Stable by timestamp: same-time decisions keep shard-index order, which
  // is deterministic for a given user→shard mapping.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Decision& a, const Decision& b) {
                     return a.time < b.time;
                   });
  DecisionLog log;
  for (auto& d : merged) log.record(std::move(d));
  return log;
}

std::size_t ShardedOakServer::decision_count(DecisionType t) const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    total += shard->server->decision_log().count(t);
  }
  return total;
}

util::Json ShardedOakServer::export_state() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  // Lock every shard (index order) for one consistent cut, then merge the
  // per-shard snapshots into OakServer's schema.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.push_back(lock_shard(*shard));

  util::Json merged = shards_[0]->server->export_state();
  util::JsonObject& users = merged["users"].as_object();
  util::JsonArray& log = merged["log"].as_array();
  std::size_t reports = shards_[0]->server->reports_processed();
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    util::Json part = shards_[i]->server->export_state();
    for (auto& [uid, u] : part["users"].as_object()) {
      users[uid] = std::move(u);
    }
    for (auto& d : part["log"].as_array()) log.push_back(std::move(d));
    reports += shards_[i]->server->reports_processed();
  }
  std::stable_sort(log.begin(), log.end(),
                   [](const util::Json& a, const util::Json& b) {
                     return a.at("t").as_number() < b.at("t").as_number();
                   });
  merged["reports_processed"] = reports;
  merged["next_user"] = next_user_.load();
  return merged;
}

void ShardedOakServer::import_state(const util::Json& snapshot) {
  std::unique_lock<std::shared_mutex> rules_lock(rules_mu_);
  // Partition the snapshot by user hash. All reads of `snapshot` (and thus
  // all schema validation that could throw here) happen before any shard
  // commits.
  const auto& users = snapshot.at("users").as_object();
  const auto& log = snapshot.at("log").as_array();
  const std::size_t next_user =
      static_cast<std::size_t>(snapshot.at("next_user").as_int());
  const auto total_reports = snapshot.at("reports_processed").as_int();

  std::vector<util::JsonObject> shard_users(shards_.size());
  std::vector<util::JsonArray> shard_logs(shards_.size());
  for (const auto& [uid, u] : users) shard_users[shard_for(uid)][uid] = u;
  for (const auto& d : log) {
    shard_logs[shard_for(d.at("user").as_string())].push_back(d);
  }

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    util::JsonObject part;
    part["version"] = snapshot.at("version");
    part["site"] = site_host_;
    part["next_user"] = next_user;
    // The aggregate counter lives on shard 0 so the fleet-wide sum is exact.
    part["reports_processed"] = i == 0 ? total_reports : 0;
    part["users"] = std::move(shard_users[i]);
    part["log"] = std::move(shard_logs[i]);
    shards_[i]->server->import_state(util::Json(std::move(part)));
  }
  next_user_.store(next_user);
}

SiteAnalytics ShardedOakServer::audit(std::optional<double> now) const {
  // Materialize the merged state into a scratch single-threaded server and
  // audit that — SiteAnalytics stays a pure function of one OakServer.
  util::Json snapshot = export_state();
  OakServer scratch(universe_, site_host_, cfg_);
  for (const Rule& r : rules()) scratch.add_rule(r);
  scratch.import_state(snapshot);
  SiteAnalytics analytics(scratch, now);

  // The legacy counters struct is now a projection of the merged registry.
  analytics.set_concurrency(
      ConcurrencyCounters::from_metrics(metrics_snapshot(), shards_.size()));
  return analytics;
}

obs::MetricsSnapshot ShardedOakServer::metrics_snapshot() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.push_back(lock_shard(*shard));

  obs::MetricsSnapshot merged;
  for (const auto& shard : shards_) {
    merged.merge(shard->server->metrics_snapshot());
  }
  if (cfg_.metrics) {
    // The wrapper's own serving-plane tallies are plain atomics, not
    // registry instruments (they predate oak::obs and feed shard_stats());
    // fold them in here so one exposition carries the whole story.
    std::uint64_t handled = 0, contended = 0;
    for (const auto& shard : shards_) {
      handled += shard->handled.load(std::memory_order_relaxed);
      contended += shard->contended.load(std::memory_order_relaxed);
    }
    merged.counters["oak_requests_total"] += handled;
    merged.counters["oak_shard_contentions_total"] += contended;
    merged.gauges["oak_shards"] += static_cast<double>(shards_.size());
  }
  return merged;
}

std::string ShardedOakServer::metrics_text() const {
  return metrics_snapshot().to_prometheus();
}

util::Json ShardedOakServer::metrics_json() const {
  return metrics_snapshot().to_json();
}

MatchCacheStats ShardedOakServer::match_cache_stats() const {
  std::shared_lock<std::shared_mutex> rules_lock(rules_mu_);
  MatchCacheStats total;
  for (const auto& shard : shards_) {
    auto lock = lock_shard(*shard);
    if (const MatchCacheStats* s = shard->server->matcher().cache_stats()) {
      total += *s;
    }
  }
  return total;
}

ShardedOakServer::ShardStats ShardedOakServer::shard_stats() const {
  ShardStats s;
  s.shards = shards_.size();
  for (const auto& shard : shards_) {
    s.requests_handled += shard->handled.load(std::memory_order_relaxed);
    s.contentions += shard->contended.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace oak::core
