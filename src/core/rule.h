// Operator-authored rules (paper §4.1).
//
// "These rules consist of: a rule type, a block of text representing a
// default object, a block of text representing an alternative object, a time
// to live, a scope, and a potential list of sub-rules."
//
//   Type 1 (kRemove)            remove the default block entirely
//   Type 2 (kAlternativeSource) same object from an alternative server
//   Type 3 (kAlternativeObject) replace with a non-identical object
//
// §4.2.4 extends this with policy: a rule may carry *multiple* alternatives
// (progressed through linearly by default) and a minimum violation count
// before activation ("only activating a rule after 3 violations").
//
// The default/alternative texts are literal page fragments: a whole tag, an
// inline script, several tags — or just a hostname, which expresses the
// domain-wide replacement rules the §5.3 evaluation generates ("a type 2
// replacement rule for every observed domain").
#pragma once

#include <string>
#include <vector>

#include "util/scope.h"

namespace oak::core {

enum class RuleType {
  kRemove = 1,
  kAlternativeSource = 2,
  kAlternativeObject = 3,
};

std::string to_string(RuleType t);

// A dependent replacement applied only when the parent rule activates
// ("rules may also load sub-rules ... simple replacements which occur only
// if the parent rule is activated").
struct SubRule {
  std::string from;
  std::string to;
};

struct Rule {
  int id = 0;  // assigned by the OakServer when 0
  std::string name;
  RuleType type = RuleType::kAlternativeSource;
  std::string default_text;
  std::vector<std::string> alternatives;  // empty for type 1
  // Activation lifetime. An activation made at time t is live over the
  // half-open interval [t, t + ttl_s): at exactly now == t + ttl_s the rule
  // is already expired — the server will not apply it, expire_rules() reaps
  // it (logging kExpire), and SiteAnalytics counts it as an expiration.
  // Half-open matches every other TTL in the stack (browser DNS cache,
  // match-cache memo/script TTLs), so "ttl_s = horizon" never leaks one
  // extra serve at the boundary. 0 = never expires.
  double ttl_s = 0.0;
  util::Scope scope{"*"};
  std::vector<SubRule> sub_rules;
  int min_violations = 1;  // policy: violations required to activate
  // Named policy strategy handling this rule (core/policy.h). Empty = the
  // engine's default strategy (Policy::default_strategy, itself defaulting
  // to the paper policy). Validated against the strategy table by
  // OakServer::add_rule. Rule-file syntax: `policy: "racing"`.
  std::string policy;

  // Structural validity; fills `why` on failure.
  bool validate(std::string* why = nullptr) const;

  // True when default_text is a bare hostname (domain-wide rule) rather
  // than a literal markup block.
  bool is_domain_rule() const;
};

// Convenience constructors for the common shapes.
Rule make_removal_rule(std::string name, std::string default_text,
                       double ttl_s = 0.0, std::string scope = "*");
Rule make_source_rule(std::string name, std::string default_text,
                      std::vector<std::string> alternatives,
                      double ttl_s = 0.0, std::string scope = "*");
// Domain-wide type 2: replace every occurrence of `domain` with an
// alternative domain.
Rule make_domain_rule(std::string name, std::string domain,
                      std::vector<std::string> alt_domains,
                      double ttl_s = 0.0, std::string scope = "*");

}  // namespace oak::core
