// MAD-based violator detection (paper §4.2.1).
//
// A server is a potential violator when, relative to the other servers the
// same client contacted during the same load,
//     time(x)  > median(time) + k·MAD(time)     (small objects), or
//     tput(x)  < median(tput) − k·MAD(tput)     (large objects),
// with k = 2 in the paper. The measure is *relative*: a client on a slow
// link sees every server as slow and flags none of them, which is exactly
// the behaviour Fig. 9 demonstrates (distant clients need larger injected
// delays before detection fires).
#pragma once

#include <string>
#include <vector>

#include "core/grouping.h"
#include "util/stats.h"

namespace oak::core {

// §6 discusses and rejects absolute thresholds ("a maximum time or minimum
// throughput for a specific object") in favour of the relative MAD rule.
// The absolute mode exists for the ablation that quantifies why: one fixed
// number cannot fit both a broadband and a satellite client.
enum class DetectionMode { kRelative, kAbsolute };

struct DetectorConfig {
  DetectionMode mode = DetectionMode::kRelative;
  double k = 2.0;  // MAD multiplier (relative mode)
  // Absolute-mode thresholds: flag when avg small-object time exceeds, or
  // avg large-object throughput falls below, these fixed bounds.
  double absolute_time_s = 1.0;
  double absolute_tput_bps = 1e6;
  std::uint64_t small_threshold_bytes = kDefaultSmallObjectBytes;
  // Populations smaller than this have a meaningless MAD; detection is
  // skipped for the corresponding metric. With fewer than ~5 servers the
  // median absolute deviation is dominated by one or two samples and the
  // 2-MAD rule misfires in both directions.
  std::size_t min_population = 5;
  // Hard failures: a server whose fetch attempts fail outright at or above
  // this rate is a violator regardless of MAD statistics, detection mode or
  // population floor — a dead server contributes no timing sample at all,
  // which is exactly the case the relative rule cannot see.
  double hard_failure_rate = 0.5;
  std::size_t min_hard_failures = 1;
};

struct Violation {
  std::string ip;
  std::vector<std::string> domains;
  bool by_time = false;
  bool by_tput = false;
  bool by_failure = false;  // hard failures, not statistics, flagged it
  // Positive MAD distances beyond the median in the "worse" direction
  // (0 when that metric did not trip). This is what rule history records:
  // "Oak records the difference between the median performance and the
  // performance of the violator" (§4.2.3).
  double time_distance = 0.0;
  double tput_distance = 0.0;
  // Saturated to the distance ceiling when by_failure: a dead server is
  // strictly worse than any merely-slow one, so the history rule always
  // prefers the statistical violator's side over the hard-failing one.
  double failure_distance = 0.0;
  std::size_t failure_count = 0;
  double failure_rate = 0.0;
  double severity() const {
    double d = time_distance > tput_distance ? time_distance : tput_distance;
    return failure_distance > d ? failure_distance : d;
  }
};

struct DetectionResult {
  std::vector<Violation> violators;
  std::vector<ServerObservation> observations;
  util::MadSummary time_summary;  // over per-server avg small-object times
  util::MadSummary tput_summary;  // over per-server avg large throughputs
};

DetectionResult detect_violators(const browser::PerfReport& report,
                                 const DetectorConfig& cfg = {});

// Detection straight off a decoded view — the zero-copy ingest path.
DetectionResult detect_violators(const browser::ReportView& report,
                                 const DetectorConfig& cfg = {});

// Detection over pre-grouped observations (used when the caller already has
// them or synthesizes them in tests).
DetectionResult detect_violators(std::vector<ServerObservation> observations,
                                 const DetectorConfig& cfg = {});

}  // namespace oak::core
