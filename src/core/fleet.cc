#include "core/fleet.h"

namespace oak::core {

ShardedOakServer& Fleet::site(const std::string& site_host) {
  auto it = servers_.find(site_host);
  if (it == servers_.end()) {
    it = servers_
             .emplace(site_host,
                      std::make_unique<ShardedOakServer>(
                          universe_, site_host, base_config_,
                          shards_per_site_))
             .first;
  }
  return *it->second;
}

const ShardedOakServer* Fleet::find(const std::string& site_host) const {
  auto it = servers_.find(site_host);
  return it == servers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Fleet::hosts() const {
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const auto& [host, server] : servers_) out.push_back(host);
  return out;
}

void Fleet::install_all() {
  for (auto& [host, server] : servers_) server->install();
}

Fleet::FleetSummary Fleet::summary() const {
  FleetSummary s;
  s.sites = servers_.size();
  for (const auto& [host, server] : servers_) {
    s.users += server->user_count();
    s.reports += server->reports_processed();
    s.rules += server->rules().size();
    s.total_activations += server->decision_count(DecisionType::kActivate);
  }
  return s;
}

std::map<std::string, SiteAnalytics> Fleet::audit_all(
    std::optional<double> now) const {
  std::map<std::string, SiteAnalytics> out;
  for (const auto& [host, server] : servers_) {
    out.emplace(host, server->audit(now));
  }
  return out;
}

obs::MetricsSnapshot Fleet::metrics_snapshot() const {
  obs::MetricsSnapshot merged = metrics_.snapshot();
  for (const auto& [host, server] : servers_) {
    merged.merge(server->metrics_snapshot());
  }
  return merged;
}

std::string Fleet::metrics_text() const {
  return metrics_snapshot().to_prometheus();
}

util::Json Fleet::metrics_json() const {
  return metrics_snapshot().to_json();
}

util::Json Fleet::export_state() const {
  util::JsonObject sites;
  for (const auto& [host, server] : servers_) {
    sites[host] = server->export_state();
  }
  util::JsonObject root;
  root["sites"] = std::move(sites);
  return util::Json(std::move(root));
}

void Fleet::import_state(const util::Json& snapshot) {
  const auto& sites = snapshot.at("sites").as_object();
  // Validate targets first so a bad snapshot cannot partially apply.
  for (const auto& [host, state] : sites) {
    if (!servers_.count(host)) {
      throw util::JsonError("fleet snapshot references unknown site: " +
                            host);
    }
  }
  for (const auto& [host, state] : sites) {
    servers_.at(host)->import_state(state);
  }
}

}  // namespace oak::core
