#include "core/match_cache.h"

#include "core/matcher.h"

namespace oak::core {

MatchCacheStats& MatchCacheStats::operator+=(const MatchCacheStats& o) {
  memo_hits += o.memo_hits;
  memo_misses += o.memo_misses;
  script_hits += o.script_hits;
  script_fetches += o.script_fetches;
  script_refreshes += o.script_refreshes;
  invalidations += o.invalidations;
  return *this;
}

std::uint64_t fnv1a(const std::string& s, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a(const std::vector<std::string>& strings) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& s : strings) {
    h = fnv1a(s, h);
    // Separator so {"ab","c"} and {"a","bc"} hash apart.
    h ^= 0x1f;
    h *= 0x100000001b3ull;
  }
  return h;
}

MatchCache::MatchCache(MatchCacheConfig cfg) : cfg_(cfg) {
  // A zero-capacity cache would evict the entry being returned.
  if (cfg_.script_capacity == 0) cfg_.script_capacity = 1;
  if (cfg_.memo_capacity == 0) cfg_.memo_capacity = 1;
}

std::optional<MatchTier> MatchCache::memo_lookup(const MemoKey& key,
                                                 double now) {
  const MemoEntry* e = memo_.find(key);
  const bool fresh = e != nullptr && (cfg_.script_ttl_s <= 0.0 ||
                                      now - e->computed_at < cfg_.script_ttl_s);
  if (!fresh) {
    ++stats_.memo_misses;
    return std::nullopt;
  }
  ++stats_.memo_hits;
  return e->tier;
}

void MatchCache::memo_store(const MemoKey& key, MatchTier tier, double now) {
  // Wholesale reset at capacity: the memo is rebuilt from the hot working
  // set within a handful of reports, which beats tracking per-entry LRU on
  // the fast path.
  if (memo_.size() >= cfg_.memo_capacity) memo_.clear();
  memo_[key] = MemoEntry{tier, now};
}

void MatchCache::invalidate_memo() {
  if (memo_.empty()) return;
  memo_.clear();
  ++stats_.invalidations;
}

const std::optional<std::string>& MatchCache::script_body(
    const std::string& url, double now, const ScriptFetcher& fetch) {
  auto it = scripts_.find(url);
  if (it != scripts_.end()) {
    ScriptEntry& e = *it->second;
    const bool fresh =
        cfg_.script_ttl_s <= 0.0 || now - e.fetched_at < cfg_.script_ttl_s;
    if (fresh) {
      ++stats_.script_hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      return e.body;
    }
    // TTL lapsed: refresh in place. A changed body means memoized tier-3
    // verdicts may be stale.
    ++stats_.script_fetches;
    ++stats_.script_refreshes;
    std::optional<std::string> body = fetch ? fetch(url) : std::nullopt;
    if (body != e.body) invalidate_memo();
    e.body = std::move(body);
    e.fetched_at = now;
    lru_.splice(lru_.begin(), lru_, it->second);
    return e.body;
  }

  ++stats_.script_fetches;
  ScriptEntry e;
  e.url = url;
  e.body = fetch ? fetch(url) : std::nullopt;
  e.fetched_at = now;
  lru_.push_front(std::move(e));
  scripts_[url] = lru_.begin();
  if (scripts_.size() > cfg_.script_capacity) {
    scripts_.erase(lru_.back().url);
    lru_.pop_back();
  }
  return lru_.front().body;
}

}  // namespace oak::core
