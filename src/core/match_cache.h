// Memoization layer for the §4.2.2 connection-dependency matcher.
//
// Per-report matching is O(rules × violators), and every tier-3 probe
// re-fetches and re-scans an external script body. Third-party object
// populations are heavy-tailed but highly repetitive across page loads
// (adPerf, Web View), so the same (rule text, violator domains) questions —
// and the same script bodies — recur on almost every report. MatchCache
// turns that repeated work into hash lookups:
//
//  * a script-body LRU with TTL: external scripts are configuration-stable
//    within a session, so a fetched body is reused until its TTL lapses
//    (negative results — unfetchable scripts — are cached too);
//  * a memo table keyed by (rule-text hash, violator-domain hash, reported-
//    script-set hash) → MatchTier. Including the reported script set in the
//    key keeps the memo exact: tier 3 depends on which scripts the client
//    reported, and reports from the same page load carry the same set.
//
// Invalidation: the owner clears the memo whenever the rule set changes
// (add_rule / remove_rule), and the cache clears it itself when a TTL
// refresh observes a script body that actually changed.
//
// MatchCache is NOT thread-safe; in the sharded server each shard's matcher
// owns its own cache, so lookups never contend across shards.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/flat_map.h"

namespace oak::core {

enum class MatchTier;  // core/matcher.h

struct MatchCacheConfig {
  std::size_t script_capacity = 256;   // LRU entries (positive or negative)
  double script_ttl_s = 300.0;         // 0 = bodies never expire
  std::size_t memo_capacity = 1 << 16; // memo entries before wholesale reset
};

struct MatchCacheStats {
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t script_hits = 0;      // body served from cache
  std::uint64_t script_fetches = 0;   // fetcher actually invoked
  std::uint64_t script_refreshes = 0; // fetches caused by TTL expiry
  std::uint64_t invalidations = 0;    // memo clears (rule churn, body change)

  double memo_hit_rate() const {
    const std::uint64_t total = memo_hits + memo_misses;
    return total == 0 ? 0.0 : double(memo_hits) / double(total);
  }
  double script_hit_rate() const {
    const std::uint64_t total = script_hits + script_fetches;
    return total == 0 ? 0.0 : double(script_hits) / double(total);
  }
  MatchCacheStats& operator+=(const MatchCacheStats& o);
};

// FNV-1a over a string; the building block for memo keys.
std::uint64_t fnv1a(const std::string& s, std::uint64_t seed = 1469598103934665603ull);
std::uint64_t fnv1a(const std::vector<std::string>& strings);

class MatchCache {
 public:
  using ScriptFetcher =
      std::function<std::optional<std::string>(const std::string& url)>;

  explicit MatchCache(MatchCacheConfig cfg = {});

  // --- Memo table.
  struct MemoKey {
    std::uint64_t text_hash = 0;
    std::uint64_t domains_hash = 0;
    std::uint64_t scripts_hash = 0;
    bool operator==(const MemoKey&) const = default;
  };
  // Memo entries share the script TTL: a verdict older than script_ttl_s is
  // treated as a miss, so tier-3 questions re-consult (and re-fetch, when
  // expired) the underlying script bodies instead of pinning a stale answer.
  std::optional<MatchTier> memo_lookup(const MemoKey& key, double now);
  void memo_store(const MemoKey& key, MatchTier tier, double now);
  // Rule set changed: every memoized verdict is suspect.
  void invalidate_memo();

  // --- Script-body cache. Returns the cached body (nullopt = known
  // unfetchable), fetching through `fetch` on miss or TTL expiry. A refresh
  // that observes a changed body invalidates the memo table.
  const std::optional<std::string>& script_body(const std::string& url,
                                                double now,
                                                const ScriptFetcher& fetch);

  const MatchCacheStats& stats() const { return stats_; }
  const MatchCacheConfig& config() const { return cfg_; }
  std::size_t memo_size() const { return memo_.size(); }
  std::size_t script_cache_size() const { return scripts_.size(); }

 private:
  struct MemoKeyHash {
    std::size_t operator()(const MemoKey& k) const {
      std::uint64_t h = k.text_hash;
      h = (h ^ k.domains_hash) * 0x100000001b3ull;
      h = (h ^ k.scripts_hash) * 0x100000001b3ull;
      return std::size_t(h);
    }
  };
  struct ScriptEntry {
    std::string url;
    std::optional<std::string> body;
    double fetched_at = 0.0;
  };

  struct MemoEntry {
    MatchTier tier;
    double computed_at = 0.0;
  };

  MatchCacheConfig cfg_;
  // Open-addressed: the memo never erases single entries (wholesale clear at
  // capacity or on invalidation), which is exactly the discipline
  // util::FlatHashMap requires — and probe locality beats the node-based
  // unordered_map on the per-(rule × violator) hot path.
  util::FlatHashMap<MemoKey, MemoEntry, MemoKeyHash> memo_;
  // LRU: most-recently-used at the front; map values point into the list.
  std::list<ScriptEntry> lru_;
  std::unordered_map<std::string, std::list<ScriptEntry>::iterator> scripts_;
  MatchCacheStats stats_;
};

}  // namespace oak::core
