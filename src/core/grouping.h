// Report grouping (paper §4.2).
//
// "Oak begins by grouping all objects by the IP address to which the client
// ultimately connected, keeping track of all related domain names. We then
// consider the average time for small objects, and the average throughput
// for large objects. Small objects are defined to be any object less than
// 50 KB."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "browser/report.h"
#include "browser/report_view.h"

namespace oak::core {

inline constexpr std::uint64_t kDefaultSmallObjectBytes = 50 * 1024;

struct ServerObservation {
  std::string ip;
  // Sorted, unique. Was a std::set; a flat sorted vector serializes in the
  // identical order with none of the per-node allocation (reports name a
  // handful of domains per server).
  std::vector<std::string> domains;
  std::vector<double> small_times;  // seconds per small object
  std::vector<double> large_tputs;  // bytes/second per large object
  std::size_t object_count = 0;     // fetch attempts, failed ones included
  std::uint64_t byte_count = 0;
  // Attempts that failed outright (entry carried an error code). Failed
  // attempts contribute no timing sample — the time burned before a refused
  // connection is not a service time — but a dead server must still be
  // visible: it is counted here and judged by rate, not by MAD.
  std::size_t failure_count = 0;

  bool has_small() const { return !small_times.empty(); }
  bool has_large() const { return !large_tputs.empty(); }
  double avg_small_time() const;
  double avg_large_tput() const;
  double failure_rate() const {
    return object_count == 0
               ? 0.0
               : static_cast<double>(failure_count) /
                     static_cast<double>(object_count);
  }
};

// Group a report's entries by contacted IP. Observation order follows first
// appearance in the report (deterministic); domains within an observation
// are sorted (the old std::set order). The IP lookup is a flat hash table,
// not a linear scan — third-party-heavy pages contact dozens of servers.
std::vector<ServerObservation> group_by_server(
    const browser::ReportView& report,
    std::uint64_t small_threshold_bytes = kDefaultSmallObjectBytes);

std::vector<ServerObservation> group_by_server(
    const browser::PerfReport& report,
    std::uint64_t small_threshold_bytes = kDefaultSmallObjectBytes);

}  // namespace oak::core
