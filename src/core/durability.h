// Crash-consistent durability for the Oak serving plane (oak::durability).
//
// OakServer::export_state()/import_state() (core/persistence.cc) snapshot
// the per-user state, but a snapshot alone has no crash story: everything
// since the last snapshot dies with the process. This module adds the
// standard database answer — a write-ahead journal per shard plus periodic
// snapshot + journal truncation — arranged so that recovery after a kill at
// *any* byte reproduces a state the uninterrupted run actually passed
// through, byte-identical under export_state().
//
// Design in one paragraph: the journal records *inputs*, not deltas. Every
// state-mutating request admitted by ShardedOakServer (page serve, report
// POST, including the uid it minted) is framed (util/framing.h: varint
// length + CRC32) and appended to its shard's journal under the shard lock
// it already holds; rule add/remove goes to a single control journal under
// the exclusive rule lock. Since OakServer processing is deterministic in
// (request, now, rules, universe), replaying the surviving records through
// the same code reproduces the exact state — there is no second "apply
// delta" code path to drift. A global sequence number stamped inside each
// record's critical section makes the per-shard merge of control and
// request records replay in mutation order.
//
// On-disk layout (Options::dir):
//
//   MANIFEST              epoch, snapshot file, per-journal replay offsets
//   snapshot-<epoch>.json envelope: rules + OakServer export_state
//   wal-ctl.log           control journal (rule churn)
//   wal-<shard>.log       one request journal per shard
//
// Compaction: under all shard locks, write snapshot-<E+1>.json (tmp +
// rename), commit a MANIFEST pointing at it with offsets = current journal
// sizes, then truncate the journals and commit a second MANIFEST with
// offsets 0. A crash between the two commits leaves offsets pointing past
// EOF, which recovery reads as "suffix empty" — correct, the data is all in
// the snapshot. Journals are never destroyed before the manifest that
// obsoletes them is durable.
//
// Recovery: load the manifest (rejecting a format_version newer than this
// binary), import the snapshot, scan each journal from its offset —
// stopping at the first torn or corrupt frame, by design — then replay
// shards in parallel. A directory with no MANIFEST but a bare
// export_state JSON in snapshot.json is accepted as a degraded cold start
// (the pre-journal format: state restored, no journal suffix, rules from
// operator configuration).
//
// Failure injection: FaultFile wraps any AppendFile and burns a CrashPlan's
// global byte budget shared by every file of the simulated process; the
// append that exhausts it is torn mid-record and all later appends write
// nothing — exactly one process crash. tests/durability_fuzz_test.cc drives
// ≥200 randomized kill points through this seam.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/durability_options.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace oak::durability {

// ---------------------------------------------------------------------------
// Files.

class AppendFile {
 public:
  virtual ~AppendFile() = default;
  // Appends, returning the bytes actually written. A short count models a
  // crash mid-write; the journal does not retry — the "process" is dead and
  // the partial frame becomes the torn tail recovery must tolerate.
  virtual std::size_t append(std::string_view bytes) = 0;
  // Flush to the OS and fsync. Returns false on failure (or when "dead").
  virtual bool sync() = 0;
};

class PosixFile final : public AppendFile {
 public:
  // Opens (creating if needed) for append. Throws std::runtime_error when
  // the file cannot be opened.
  static std::unique_ptr<PosixFile> open_append(const std::string& path);
  ~PosixFile() override;

  std::size_t append(std::string_view bytes) override;
  bool sync() override;

 private:
  explicit PosixFile(std::FILE* f) : f_(f) {}
  std::FILE* f_ = nullptr;
};

// One simulated process crash, shared by every FaultFile of that process:
// appends burn a global byte budget in call order; the append that exhausts
// it is written only up to the budget boundary (a torn record) and every
// later append — on any file — writes nothing.
struct CrashPlan {
  explicit CrashPlan(std::uint64_t budget) : budget_bytes(budget) {}
  std::uint64_t budget_bytes = ~0ull;
  std::uint64_t written = 0;
  // Appends fully written before death; the fuzz oracle maps this to "ops
  // whose records survived".
  std::uint64_t complete_appends = 0;
  bool dead() const { return written >= budget_bytes; }
};

class FaultFile final : public AppendFile {
 public:
  FaultFile(std::unique_ptr<AppendFile> inner,
            std::shared_ptr<CrashPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  std::size_t append(std::string_view bytes) override;
  bool sync() override;

 private:
  std::unique_ptr<AppendFile> inner_;
  std::shared_ptr<CrashPlan> plan_;
};

// ---------------------------------------------------------------------------
// Records.

enum class RecordKind : std::uint8_t {
  kRequest = 1,     // one admitted HTTP request (serve or report)
  kAddRule = 2,     // rule added with its pinned id
  kRemoveRule = 3,  // rule retired
};

struct RequestRecord {
  std::uint64_t seq = 0;
  double now = 0.0;
  bool post = false;         // false: GET page serve; true: report POST
  std::uint64_t minted = 0;  // nonzero: uid was freshly minted as u<minted>
  std::string uid;
  std::string client_ip;
  std::string path;  // request path; the site host is configuration
  std::string body;  // report wire bytes (empty for GET)
};

// View-typed twin of RequestRecord for the ingest hot path: encodes to the
// exact same bytes but borrows the request's strings instead of copying
// them. Valid only for the duration of the append call.
struct RequestRecordView {
  std::uint64_t seq = 0;
  double now = 0.0;
  bool post = false;
  std::uint64_t minted = 0;
  std::string_view uid;
  std::string_view client_ip;
  std::string_view path;
  std::string_view body;
};

struct AddRuleRecord {
  std::uint64_t seq = 0;
  std::int64_t rule_id = 0;
  std::string rule_text;  // core/rule_parser.h format_rules() of the one rule
};

struct RemoveRuleRecord {
  std::uint64_t seq = 0;
  double now = 0.0;
  std::int64_t rule_id = 0;
};

struct Record {
  RecordKind kind = RecordKind::kRequest;
  RequestRecord request;
  AddRuleRecord add_rule;
  RemoveRuleRecord remove_rule;

  std::uint64_t seq() const;
};

std::string encode_record(const Record& r);
// Same encoding appended to `out` (not cleared) — the allocation-free form
// the ingest path uses with a reused scratch buffer.
void encode_record_into(const Record& r, std::string& out);
// The body of a kRequest record (everything after the kind byte). Both the
// owning and the view encode paths funnel through this so they cannot
// drift apart.
void encode_request_into(const RequestRecordView& q, std::string& out);
// False on malformed payload (a CRC-passing but undecodable record is
// corruption; the journal scan stops there).
bool decode_record(std::string_view payload, Record& out);

// ---------------------------------------------------------------------------
// Journal.

// Append side of one journal file. Not internally synchronized: callers
// serialize appends with the lock that already guards the matching state
// mutation (shard mutex for request journals, exclusive rule lock for the
// control journal).
class Journal {
 public:
  Journal(std::string path, std::unique_ptr<AppendFile> file,
          std::uint64_t start_bytes)
      : path_(std::move(path)), file_(std::move(file)), bytes_(start_bytes) {}

  // Frames and appends one record payload; returns the framed size. A
  // short (faulted) write is not retried — the simulated process is dead.
  std::size_t append(std::string_view payload);
  // Encode + frame + append in one step, reusing a member scratch buffer so
  // the steady-state ingest path allocates nothing and the payload bytes
  // are written exactly once. Safe because appends are already serialized
  // by the caller's lock (see class comment).
  std::size_t append_record(const Record& r);
  std::size_t append_request(const RequestRecordView& q);
  void sync();
  void close() { file_.reset(); }
  // Rebind after truncation to zero (compaction reset).
  void reset(std::unique_ptr<AppendFile> file) {
    file_ = std::move(file);
    bytes_ = 0;
  }
  const std::string& path() const { return path_; }
  // Logical size: bytes at open plus everything appended since (what the
  // file size *would* be absent injected faults).
  std::uint64_t bytes() const { return bytes_; }

 private:
  // frame_scratch_ holds [header slot][payload]; flush_scratch_ writes the
  // real header flush against the payload and appends from there.
  std::size_t flush_scratch_();

  std::string path_;
  std::unique_ptr<AppendFile> file_;
  std::uint64_t bytes_ = 0;
  std::string frame_scratch_;
};

struct JournalScan {
  std::vector<Record> records;
  std::uint64_t bytes_consumed = 0;  // offset of the last clean frame end
  bool torn = false;  // scan stopped before the end of the file
};

// Reads a journal file from `start_offset`, decoding frames until the end
// or the first torn/corrupt frame. A missing file or an offset at/past EOF
// scans as empty. Never throws on bad bytes — bad bytes are the expected
// crash residue.
JournalScan scan_journal_file(const std::string& path,
                              std::uint64_t start_offset);

// ---------------------------------------------------------------------------
// Manifest and snapshot envelope.

// Bump when the manifest schema changes incompatibly. Recovery refuses a
// manifest written by a newer binary instead of guessing.
inline constexpr int kManifestFormatVersion = 1;
inline constexpr int kSnapshotEnvelopeVersion = 1;

struct Manifest {
  int format_version = kManifestFormatVersion;
  std::uint64_t epoch = 0;
  std::size_t shards = 0;
  std::string snapshot_file;  // empty: no snapshot yet (empty baseline)
  std::uint64_t ctl_offset = 0;
  std::vector<std::uint64_t> shard_offsets;  // one per shard journal

  util::Json to_json() const;
  // Throws std::runtime_error on a newer format_version or schema errors.
  static Manifest from_json(const util::Json& j);
};

// The durable snapshot file: operator rules (with their pinned ids) plus
// the plain export_state document, so recovery rebuilds the rule set the
// journal suffix was written against.
struct SnapshotEnvelope {
  struct RuleEntry {
    std::int64_t id = 0;
    std::string text;  // format_rules() of the one rule
  };
  std::vector<RuleEntry> rules;
  std::int64_t next_rule_id = 1;
  util::Json state;  // OakServer export_state document

  util::Json to_json() const;
  static SnapshotEnvelope from_json(const util::Json& j);
};

struct RecoveryReport {
  bool performed = false;     // durability was enabled and startup ran
  bool legacy = false;        // bare export_state loaded (degraded cold start)
  bool bootstrapped = false;  // no manifest found: fresh baseline written
  std::uint64_t epoch = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t torn_tails = 0;  // journals whose scan stopped early
  std::size_t rules_loaded = 0;  // from the snapshot envelope
  double replay_seconds = 0.0;
};

// ---------------------------------------------------------------------------
// Manager: file layout, manifest dance, metrics. The ShardedOakServer owns
// one and drives it; the Manager knows nothing about Oak state — records in,
// records out.

class Manager {
 public:
  // Throws std::runtime_error on an unusable directory, a manifest written
  // by a newer binary, or a shard-count mismatch (recover with the
  // manifest's shard count, then export/import to resize).
  Manager(Options opts, std::size_t shards, bool metrics_enabled);

  struct Startup {
    bool legacy = false;
    bool bootstrap = false;        // no manifest: baseline must be committed
    bool have_snapshot = false;
    SnapshotEnvelope snapshot;     // valid when have_snapshot && !legacy
    util::Json legacy_state;       // valid when legacy
    std::vector<Record> ctl;       // control journal suffix
    std::vector<std::vector<Record>> shards;  // request journal suffixes
    std::uint64_t torn_tails = 0;
    std::uint64_t max_seq = 0;
  };

  // Reads manifest + snapshot + journal suffixes. Call once, before
  // start_recording().
  Startup startup();

  // Truncates torn tails, re-commits a normalized manifest, and opens the
  // journals for append. After this, append_* and compact() are legal.
  void start_recording();
  bool recording() const { return recording_; }

  // Next global record sequence number. Call inside the critical section
  // that performs the matching state mutation.
  std::uint64_t next_seq() { return seq_.fetch_add(1) + 1; }
  void seed_seq(std::uint64_t max_seen) { seq_.store(max_seen); }

  // Appends (framed) under the caller's locks; see Journal.
  void append_request(std::size_t shard, const RequestRecordView& r);
  void append_control(const Record& r);

  bool should_compact() const;
  // Writes the snapshot + manifest pair and resets the journals. The caller
  // holds every shard lock (consistent cut) and passes the envelope it
  // assembled under them.
  void compact(const SnapshotEnvelope& env);

  // Folds the replay outcome into the report and the recovery instruments.
  void note_recovery(std::uint64_t records_replayed, double replay_seconds);

  const Options& options() const { return opts_; }
  std::uint64_t epoch() const { return epoch_; }
  RecoveryReport& report() { return report_; }
  const RecoveryReport& report() const { return report_; }

  obs::MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

 private:
  std::string file_path(const std::string& name) const;
  std::unique_ptr<AppendFile> open_file(const std::string& path) const;
  void write_manifest(const Manifest& m);
  Manifest current_manifest() const;

  Options opts_;
  std::size_t num_shards_;
  std::uint64_t epoch_ = 0;
  std::string snapshot_file_;  // currently referenced by the manifest
  // Offsets the current manifest replays from (journal bytes at last
  // commit); live journal bytes beyond them are the un-snapshotted suffix.
  std::uint64_t ctl_offset_ = 0;
  std::vector<std::uint64_t> shard_offsets_;
  // Clean scan ends from startup(): where torn tails get truncated and
  // appending resumes.
  bool have_manifest_ = false;
  std::uint64_t consumed_ctl_ = 0;
  std::vector<std::uint64_t> consumed_shards_;
  std::unique_ptr<Journal> ctl_;
  std::vector<std::unique_ptr<Journal>> journals_;
  bool recording_ = false;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> live_bytes_{0};  // appended since last compact
  RecoveryReport report_;

  obs::MetricsRegistry metrics_;
  struct Instruments {
    obs::Counter* appends = nullptr;
    obs::Histogram* append_bytes = nullptr;
    obs::Histogram* sync_seconds = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Gauge* live_bytes = nullptr;
    obs::Gauge* epoch = nullptr;
    obs::Histogram* recovery_seconds = nullptr;
    obs::Counter* replayed = nullptr;
    obs::Counter* torn_tails = nullptr;
  } obs_;
};

// Writes `bytes` to `path` atomically: tmp file, flush + fsync, rename.
// Throws std::runtime_error on IO failure.
void write_file_atomic(const std::string& path, std::string_view bytes);

}  // namespace oak::durability
