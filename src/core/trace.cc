#include "core/trace.h"

#include "http/cookies.h"
#include "util/strings.h"

namespace oak::core {

void ReportTrace::append(double time, const std::string& user_id,
                         const browser::PerfReport& report) {
  records_.push_back(TraceRecord{time, user_id, report});
}

std::string ReportTrace::to_jsonl() const {
  std::string out;
  for (const auto& r : records_) {
    util::JsonObject o;
    o["t"] = r.time;
    o["uid"] = r.user_id;
    o["report"] = r.report.to_json();
    out += util::Json(std::move(o)).dump();
    out += '\n';
  }
  return out;
}

ReportTrace ReportTrace::from_jsonl(const std::string& text) {
  ReportTrace trace;
  for (const auto& line : util::split_nonempty(text, '\n')) {
    util::Json j = util::Json::parse(line);
    TraceRecord rec;
    rec.time = j.at("t").as_number();
    rec.user_id = j.at("uid").as_string();
    rec.report =
        browser::PerfReport::deserialize(j.at("report").dump());
    trace.records_.push_back(std::move(rec));
  }
  return trace;
}

std::size_t ReportTrace::replay_into(OakServer& server) const {
  const std::size_t before =
      server.decision_log().count(DecisionType::kActivate);
  for (const auto& r : records_) {
    server.analyze(r.user_id, r.report, r.time);
  }
  return server.decision_log().count(DecisionType::kActivate) - before;
}

page::WebUniverse::Handler recording_handler(OakServer& server,
                                             ReportTrace& trace) {
  return [&server, &trace](const http::Request& req,
                           double now) -> http::Response {
    if (req.method == http::Method::kPost &&
        req.url.path == server.config().report_path) {
      try {
        browser::PerfReport report =
            browser::PerfReport::deserialize(req.body);
        std::string uid = report.user_id;
        if (auto cookie = req.headers.get("Cookie")) {
          auto jar = http::parse_cookie_header(*cookie);
          auto it = jar.find(http::kOakUserCookie);
          if (it != jar.end()) uid = it->second;
        }
        trace.append(now, uid, report);
      } catch (const util::JsonError&) {
        // Malformed posts are still forwarded so the server replies 400.
      }
    }
    return server.handle(req, now);
  };
}

}  // namespace oak::core
