#include "core/oak_server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "browser/report_decoder.h"
#include "http/cookies.h"
#include "util/strings.h"

namespace oak::core {

OakServer::OakServer(page::WebUniverse& universe, std::string site_host,
                     OakConfig cfg)
    : universe_(universe),
      site_host_(std::move(site_host)),
      cfg_(cfg),
      users_(cfg_.user_store) {
  // Server-side script fetcher: Oak loads externally referenced scripts
  // "directly from the external sources" to widen the match surface.
  auto fetcher = [this](const std::string& url) -> std::optional<std::string> {
    const page::WebObject* obj = universe_.store().find(url);
    if (!obj || obj->body.empty()) return {};
    return obj->body;
  };
  matcher_ = std::make_unique<Matcher>(fetcher, cfg_.matcher);
  engine_ = std::make_unique<PolicyEngine>(cfg_.policy,
                                           cfg_.metrics ? &metrics_ : nullptr);
  if (cfg_.metrics) {
    obs_.decode = &metrics_.histogram("oak_ingest_decode_seconds");
    obs_.group = &metrics_.histogram("oak_ingest_group_seconds");
    obs_.detect = &metrics_.histogram("oak_ingest_detect_seconds");
    obs_.match = &metrics_.histogram("oak_ingest_match_seconds");
    obs_.modify = &metrics_.histogram("oak_serve_modify_seconds");
    obs_.report_bytes = &metrics_.histogram("oak_ingest_report_bytes",
                                            obs::HistogramSpec::bytes());
    obs_.reports_ingested = &metrics_.counter("oak_reports_ingested_total");
    obs_.reports_rejected = &metrics_.counter("oak_reports_rejected_total");
    obs_.pages_served = &metrics_.counter("oak_pages_served_total");
    obs_.pages_modified = &metrics_.counter("oak_pages_modified_total");
    obs_.activations = &metrics_.counter("oak_rule_activations_total");
    obs_.expirations = &metrics_.counter("oak_rule_expirations_total");
    obs_.deactivations = &metrics_.counter("oak_rule_deactivations_total");
    obs_.contexts_recorded =
        &metrics_.counter("oak_policy_contexts_recorded_total");
  }
}

obs::MetricsSnapshot OakServer::metrics_snapshot() const {
  obs::MetricsSnapshot snap = metrics_.snapshot();
  // The match cache tallies with plain integers (it is shard-local and
  // single-threaded by contract), so its counters are folded in at snapshot
  // time rather than double-counted on the hot path.
  if (cfg_.metrics) {
    if (const MatchCacheStats* cs = matcher_->cache_stats()) {
      snap.counters["oak_match_memo_hits_total"] += cs->memo_hits;
      snap.counters["oak_match_memo_misses_total"] += cs->memo_misses;
      snap.counters["oak_match_script_hits_total"] += cs->script_hits;
      snap.counters["oak_match_script_fetches_total"] += cs->script_fetches;
      snap.counters["oak_match_script_refreshes_total"] +=
          cs->script_refreshes;
      snap.counters["oak_match_invalidations_total"] += cs->invalidations;
    }
    // User-store tallies, same pattern: the store counts with plain
    // integers under the shard lock; snapshot time folds them in.
    const UserStoreStats& us = users_.stats();
    snap.gauges["oak_users_hot"] += double(users_.hot_count());
    snap.gauges["oak_users_cold"] += double(users_.cold_count());
    snap.gauges["oak_users_cold_file_bytes"] += double(users_.cold_file_bytes());
    snap.counters["oak_user_demotions_total"] += us.demotions;
    snap.counters["oak_user_faultins_total"] += us.faultins;
    snap.counters["oak_user_cold_compactions_total"] += us.cold_compactions;
  }
  return snap;
}

int OakServer::add_rule(Rule rule) {
  std::string why;
  if (!rule.validate(&why)) {
    throw std::invalid_argument("invalid rule '" + rule.name + "': " + why);
  }
  if (!rule.policy.empty() && !engine_->has_strategy(rule.policy)) {
    throw std::invalid_argument("rule '" + rule.name + "' names policy '" +
                                rule.policy + "' but no such strategy exists");
  }
  if (rule.id == 0) rule.id = next_rule_id_;
  next_rule_id_ = std::max(next_rule_id_, rule.id + 1);
  rules_.push_back(std::move(rule));
  matcher_->invalidate_memo();
  return rules_.back().id;
}

void OakServer::add_rules(std::vector<Rule> rules) {
  for (auto& r : rules) add_rule(std::move(r));
}

bool OakServer::remove_rule(int rule_id, double now) {
  auto it = std::find_if(rules_.begin(), rules_.end(),
                         [&](const Rule& r) { return r.id == rule_id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  matcher_->invalidate_memo();
  // Sorted sweep over every profile, hot and cold — the per-user expiration
  // records must land in the decision log in the same (uid-ascending) order
  // the old std::map iteration produced, tiered or not.
  users_.for_each_sorted_mut([&](UserProfile& profile) {
    bool changed = false;
    auto active = profile.active.find(rule_id);
    if (active != profile.active.end()) {
      log_.record(Decision{now, profile.user_id, rule_id, DecisionType::kExpire,
                           "", 0.0, active->second.alternative_index});
      if (obs_.expirations != nullptr) obs_.expirations->inc();
      profile.active.erase(active);
      changed = true;
    }
    changed |= profile.pending_violations.erase(rule_id) > 0;
    changed |= profile.next_alternative.erase(rule_id) > 0;
    changed |= profile.banned.erase(rule_id) > 0;
    changed |= profile.race.erase(rule_id) > 0;
    changed |= profile.cooldown_until.erase(rule_id) > 0;
    return changed;
  });
  // Retiring a rule retires its race: a re-added rule (even with the same
  // id) starts a fresh one.
  engine_->erase_rule(rule_id);
  return true;
}

void OakServer::install() {
  universe_.set_handler(
      site_host_, [this](const http::Request& req, double now) {
        return handle(req, now);
      });
}

const Rule* OakServer::rule(int id) const {
  for (const auto& r : rules_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

const UserProfile* OakServer::profile(const std::string& user_id) const {
  // Logically const: a cold hit faults the profile back into the hot tier,
  // but the observable state is identical to it never having been demoted.
  // touch=false keeps introspection from feeding the LRU clock.
  return const_cast<TieredUserStore&>(users_).find(user_id, 0.0, false);
}

UserProfile& OakServer::profile_ref(const std::string& user_id, double now) {
  return users_.get_or_create(user_id, now);
}

http::Response OakServer::handle(const http::Request& req, double now) {
  if (req.method == http::Method::kPost && req.url.path == cfg_.report_path) {
    return ingest_report(req, now);
  }
  return serve_page(req, now);
}

UserProfile& OakServer::user_for(const http::Request& req,
                                 http::Response& resp, double now) {
  std::string uid;
  if (auto cookie = req.headers.get("Cookie")) {
    auto jar = http::parse_cookie_header(*cookie);
    auto it = jar.find(http::kOakUserCookie);
    if (it != jar.end()) uid = it->second;
  }
  if (uid.empty()) {
    uid = util::format("u%zu", next_user_++);
    resp.headers.add("Set-Cookie",
                     std::string(http::kOakUserCookie) + "=" + uid);
  }
  UserProfile& user = profile_ref(uid, now);
  if (!req.client_ip.empty()) user.client_ip = req.client_ip;
  return user;
}

void OakServer::expire_rules(UserProfile& user, double now) {
  for (auto it = user.active.begin(); it != user.active.end();) {
    // Half-open lifetime [activated_at, expires_at): a rule is already
    // expired at exactly now == expires_at (see the ttl_s contract in
    // rule.h). SiteAnalytics applies the same comparison when counting
    // expired-but-unreaped actives.
    if (it->second.expires_at > 0.0 && now >= it->second.expires_at) {
      log_.record(Decision{now, user.user_id, it->first, DecisionType::kExpire,
                           "", 0.0, it->second.alternative_index});
      if (obs_.expirations != nullptr) obs_.expirations->inc();
      it = user.active.erase(it);
    } else {
      ++it;
    }
  }
}

http::Response OakServer::serve_page(const http::Request& req, double now) {
  std::string path = req.url.path == "/" ? "/index.html" : req.url.path;
  const std::string url = "http://" + site_host_ + path;
  const page::WebObject* obj = universe_.store().find(url);
  if (!obj) return http::Response::not_found();

  http::Response resp = http::Response::html(obj->body);
  UserProfile& user = user_for(req, resp, now);
  user.pages_served++;
  user.holdback = cfg_.policy.in_holdback(user.user_id);
  if (obs_.pages_served != nullptr) obs_.pages_served->inc();

  // Reap expired rules on every serve while Oak is on — including for
  // holdback or policy-filtered users, whose profiles would otherwise carry
  // stale "active" rules indefinitely (the server never applies an expired
  // rule, but the audit plane would keep counting it as live).
  if (cfg_.enabled) {
    expire_rules(user, now);
    // A serve advances rule-expiry time even though no report arrives, so
    // the replay log needs the tick (core/decision_log.h, serve_only).
    if (cfg_.policy.record_context) {
      ReportContext tick;
      tick.time = now;
      tick.user_id = user.user_id;
      tick.client_ip = user.client_ip;
      tick.serve_only = true;
      log_.record_context(std::move(tick));
      if (obs_.contexts_recorded != nullptr) obs_.contexts_recorded->inc();
    }
  }

  const bool oak_applies = cfg_.enabled &&
                           cfg_.policy.applies_to(req.client_ip) &&
                           !user.holdback;
  if (!oak_applies && !cfg_.force_all_rules) return resp;

  std::vector<AppliedRule> applied;
  if (cfg_.force_all_rules) {
    for (const auto& r : rules_) {
      std::size_t alt = 0;
      if (!r.alternatives.empty() && cfg_.policy.alternative_selector) {
        alt = std::min(cfg_.policy.alternative_selector(
                           user.client_ip, r.alternatives.size()),
                       r.alternatives.size() - 1);
      }
      applied.push_back(AppliedRule{&r, alt});
    }
  } else {
    for (const auto& [rule_id, ar] : user.active) {
      if (const Rule* r = rule(rule_id)) {
        applied.push_back(AppliedRule{r, ar.alternative_index});
      }
    }
  }
  if (applied.empty()) return resp;

  obs::ScopedTimer modify_timer(obs_.modify);
  ModifiedPage modified = apply_rules(resp.body, path, applied);
  modify_timer.stop();
  if (modified.total_replacements() > 0) {
    log_.record(Decision{now, user.user_id, 0, DecisionType::kServeModified,
                         "", 0.0, 0});
    if (obs_.pages_modified != nullptr) obs_.pages_modified->inc();
  }
  resp.body = std::move(modified.html);
  for (const auto& alias : modified.aliases) {
    resp.headers.add(http::kOakAliasHeader, alias);
  }
  return resp;
}

http::Response OakServer::ingest_report(const http::Request& req, double now) {
  http::Response resp = http::Response::text("", 204);
  // A disabled Oak is the paper's baseline web server: it neither tracks
  // users nor processes telemetry.
  if (!cfg_.enabled) return resp;
  UserProfile& user = user_for(req, resp, now);
  if (!cfg_.policy.applies_to(req.client_ip)) {
    return resp;  // accepted, ignored
  }
  // Decode per cfg_.ingest_decode. The view aliases req.body plus the
  // ingest arena; both outlive process_report(), which copies anything it
  // retains (violator IPs/domains, decision-log entries) into owned strings.
  ingest_arena_.clear();
  if (obs_.report_bytes != nullptr) {
    obs_.report_bytes->observe(static_cast<double>(req.body.size()));
  }
  obs::ScopedTimer decode_timer(obs_.decode);
  // Decode into the recycled scratch view: its entries capacity (like the
  // arena's blocks) survives across reports. The views it holds dangle as
  // soon as this request ends — nothing reads it between ingests.
  browser::ReportView& view = view_scratch_;
  browser::PerfReport dom_report;  // backs `view` in the DOM modes
  switch (cfg_.ingest_decode) {
    case IngestDecode::kStreaming:
      try {
        browser::decode_report_view(req.body, ingest_arena_, view);
      } catch (const util::JsonError&) {
        if (obs_.reports_rejected != nullptr) obs_.reports_rejected->inc();
        return http::Response::text("malformed report", 400);
      }
      break;
    case IngestDecode::kDom:
      try {
        dom_report = browser::PerfReport::deserialize(req.body);
      } catch (const util::JsonError&) {
        if (obs_.reports_rejected != nullptr) obs_.reports_rejected->inc();
        return http::Response::text("malformed report", 400);
      }
      view = browser::ReportView::of(dom_report);
      break;
    case IngestDecode::kDifferential: {
      bool stream_ok = true;
      bool dom_ok = true;
      try {
        browser::decode_report_view(req.body, ingest_arena_, view);
      } catch (const util::JsonError&) {
        stream_ok = false;
      }
      try {
        dom_report = browser::PerfReport::deserialize(req.body);
      } catch (const util::JsonError&) {
        dom_ok = false;
      }
      if (stream_ok != dom_ok ||
          (stream_ok &&
           view.materialize().serialize() != dom_report.serialize())) {
        throw std::logic_error(
            "ingest decoder divergence: streaming vs DOM disagree on report");
      }
      if (!stream_ok) {
        if (obs_.reports_rejected != nullptr) obs_.reports_rejected->inc();
        return http::Response::text("malformed report", 400);
      }
      break;
    }
  }
  decode_timer.stop();
  process_report(user, view, now, nullptr);
  return resp;
}

DetectionResult OakServer::analyze(const std::string& user_id,
                                   const browser::PerfReport& report,
                                   double now) {
  UserProfile& user = profile_ref(user_id, now);
  DetectionResult detection;
  process_report(user, browser::ReportView::of(report), now, &detection);
  return detection;
}

void OakServer::process_report(UserProfile& user,
                               const browser::ReportView& report, double now,
                               DetectionResult* out_detection) {
  ++user.reports_received;
  ++reports_processed_;
  if (obs_.reports_ingested != nullptr) obs_.reports_ingested->inc();
  // Reject non-finite and negative PLTs at the accumulator: plt_s comes off
  // the wire, and a single 1e308 sample would push plt_sum_s to +Inf, from
  // where every derived mean (and the treated/holdback lift ratio) becomes
  // Inf or NaN forever.
  const bool plt_accepted = std::isfinite(report.plt_s) && report.plt_s > 0.0;
  if (plt_accepted) {
    user.plt_sum_s += report.plt_s;
    ++user.plt_count;
  }

  obs::ScopedTimer group_timer(obs_.group);
  std::vector<ServerObservation> observations =
      group_by_server(report, cfg_.detector.small_threshold_bytes);
  group_timer.stop();

  obs::ScopedTimer detect_timer(obs_.detect);
  DetectionResult detection =
      detect_violators(std::move(observations), cfg_.detector);
  detect_timer.stop();

  urls_scratch_.clear();
  urls_scratch_.reserve(report.entries.size());
  for (const auto& e : report.entries) urls_scratch_.push_back(e.url);
  report_script_urls(urls_scratch_, scripts_scratch_);
  // Hash hoisting: the matcher memoizes on (text, domains, scripts) hashes.
  // The script set is fixed per report and each violator's domain set is
  // fixed per detection, so hash them once here instead of once per
  // (rule × violator) probe inside the matcher.
  const std::uint64_t scripts_hash = fnv1a(scripts_scratch_);
  domain_hash_scratch_.clear();
  domain_hash_scratch_.reserve(detection.violators.size());
  for (const auto& v : detection.violators) {
    domain_hash_scratch_.push_back(fnv1a(v.domains));
  }

  if (cfg_.policy.record_context) {
    record_report_context(user, detection, scripts_scratch_,
                          domain_hash_scratch_, scripts_hash,
                          plt_accepted ? report.plt_s : 0.0, now);
  }

  expire_rules(user, now);
  // Racing cohort accounting: the report's PLT is a sample for every raced
  // rule still active at this instant (after expiry, before the history
  // verdict — the page this PLT measures was served under the pre-review
  // alternative). PolicyReplayer mirrors this ordering exactly.
  if (plt_accepted) {
    race_events_scratch_.clear();
    engine_->observe_report(user, report.plt_s, now,
                            [this](int id) { return rule(id); },
                            &race_events_scratch_);
    for (Decision& d : race_events_scratch_) log_.record(std::move(d));
  }
  {
    obs::ScopedTimer match_timer(obs_.match);
    review_active_rules(user, detection, scripts_scratch_,
                        domain_hash_scratch_, scripts_hash, now);
    consider_activations(user, detection, scripts_scratch_,
                         domain_hash_scratch_, scripts_hash, now);
  }

  if (out_detection) *out_detection = std::move(detection);
}

void OakServer::record_report_context(
    UserProfile& user, const DetectionResult& detection,
    const std::vector<std::string>& scripts,
    const std::vector<std::uint64_t>& domain_hashes,
    std::uint64_t scripts_hash, double plt_s, double now) {
  ReportContext ctx;
  ctx.time = now;
  ctx.user_id = user.user_id;
  ctx.client_ip = user.client_ip;
  ctx.plt_s = plt_s;
  // Probe every rule and every alternative against the violator set —
  // regardless of what is active or banned for this user — because a
  // candidate policy replayed over this context may have any alternative
  // live at this point. First-match semantics mirror the live loops; the
  // memoized matcher makes the full sweep cheap.
  for (const auto& r : rules_) {
    for (std::size_t vi = 0; vi < detection.violators.size(); ++vi) {
      const Violation& v = detection.violators[vi];
      if (matcher_->match_rule(r, v.domains, domain_hashes[vi], scripts,
                               scripts_hash, now) != MatchTier::kNone) {
        ctx.rule_matches.push_back(
            ContextRuleMatch{r.id, v.severity(), v.ip});
        break;
      }
    }
    for (std::size_t ai = 0; ai < r.alternatives.size(); ++ai) {
      for (std::size_t vi = 0; vi < detection.violators.size(); ++vi) {
        const Violation& v = detection.violators[vi];
        if (matcher_->match_text(r.alternatives[ai], v.domains,
                                 domain_hashes[vi], scripts, scripts_hash,
                                 now) != MatchTier::kNone) {
          ctx.alt_matches.push_back(
              ContextAltMatch{r.id, ai, v.severity(), v.ip});
          break;
        }
      }
    }
  }
  log_.record_context(std::move(ctx));
  if (obs_.contexts_recorded != nullptr) obs_.contexts_recorded->inc();
}

void OakServer::review_active_rules(
    UserProfile& user, const DetectionResult& detection,
    const std::vector<std::string>& scripts,
    const std::vector<std::uint64_t>& domain_hashes,
    std::uint64_t scripts_hash, double now) {
  if (detection.violators.empty()) return;
  if (cfg_.history == HistoryMode::kAlwaysKeep) return;
  for (auto it = user.active.begin(); it != user.active.end();) {
    ActiveRule& ar = it->second;
    const Rule* r = rule(ar.rule_id);
    if (!r || r->type == RuleType::kRemove || r->alternatives.empty()) {
      ++it;
      continue;
    }
    const std::size_t idx =
        std::min(ar.alternative_index, r->alternatives.size() - 1);
    const std::string& alt_text = r->alternatives[idx];

    const Violation* alt_violation = nullptr;
    for (std::size_t vi = 0; vi < detection.violators.size(); ++vi) {
      const Violation& v = detection.violators[vi];
      if (matcher_->match_text(alt_text, v.domains, domain_hashes[vi],
                               scripts, scripts_hash, now) !=
          MatchTier::kNone) {
        alt_violation = &v;
        break;
      }
    }
    if (!alt_violation) {
      ++it;
      continue;
    }

    // The history verdict (§4.2.3 and its strategy variants) is the
    // engine's call; this loop owns the mutation and the logging.
    const double alt_distance = alt_violation->severity();
    switch (engine_->on_alternative_violation(*r, user, ar, alt_distance,
                                              cfg_.history)) {
      case HistoryAction::kKeep:
        log_.record(Decision{now, user.user_id, ar.rule_id,
                             DecisionType::kKeepAlternative, alt_violation->ip,
                             alt_distance, idx});
        ++it;
        break;
      case HistoryAction::kAdvance:
        ar.alternative_index = idx + 1;
        log_.record(Decision{now, user.user_id, ar.rule_id,
                             DecisionType::kAdvanceAlternative,
                             alt_violation->ip, alt_distance,
                             ar.alternative_index});
        ++it;
        break;
      case HistoryAction::kDeactivate:
        log_.record(Decision{now, user.user_id, ar.rule_id,
                             DecisionType::kDeactivate, alt_violation->ip,
                             alt_distance, idx});
        if (obs_.deactivations != nullptr) obs_.deactivations->inc();
        engine_->on_deactivated(*r, user, now);
        user.pending_violations.erase(ar.rule_id);
        it = user.active.erase(it);
        break;
    }
  }
}

void OakServer::consider_activations(
    UserProfile& user, const DetectionResult& detection,
    const std::vector<std::string>& scripts,
    const std::vector<std::uint64_t>& domain_hashes,
    std::uint64_t scripts_hash, double now) {
  if (detection.violators.empty()) return;
  for (const auto& r : rules_) {
    if (user.active.count(r.id) || user.banned.count(r.id)) continue;

    const Violation* hit = nullptr;
    for (std::size_t vi = 0; vi < detection.violators.size(); ++vi) {
      const Violation& v = detection.violators[vi];
      if (matcher_->match_rule(r, v.domains, domain_hashes[vi], scripts,
                               scripts_hash, now) != MatchTier::kNone) {
        hit = &v;
        break;
      }
    }
    if (!hit) continue;

    // Threshold counting and alternative choice are the strategy's call
    // (the built-in "paper" strategy reproduces the seed flow bit-for-bit).
    auto choice = engine_->on_rule_violation(r, user, hit->severity(), now);
    if (!choice) continue;

    ActiveRule ar;
    ar.rule_id = r.id;
    ar.alternative_index = choice->alternative_index;
    ar.activated_at = now;
    ar.expires_at = r.ttl_s > 0.0 ? now + r.ttl_s : 0.0;
    ar.violation_distance = hit->severity();
    ar.violator_ip = hit->ip;
    user.active[r.id] = ar;
    log_.record(Decision{now, user.user_id, r.id, DecisionType::kActivate,
                         hit->ip, ar.violation_distance,
                         ar.alternative_index});
    if (obs_.activations != nullptr) obs_.activations->inc();
  }
}

}  // namespace oak::core
