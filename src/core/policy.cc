#include "core/policy.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "util/rng.h"

namespace oak::core {

std::uint32_t Policy::holdback_bucket(const std::string& user_id) {
  return std::uint32_t(util::stable_hash(user_id) % 10'000);
}

bool Policy::in_holdback(const std::string& user_id) const {
  if (holdback_fraction <= 0.0) return false;
  if (holdback_fraction >= 1.0) return true;
  // Stable assignment: the same user lands on the same side forever. The
  // holdback group is the half-open bucket range [0, fraction * 10'000).
  return double(holdback_bucket(user_id)) < holdback_fraction * 10'000.0;
}

bool Policy::applies_to(const std::string& client_ip_text) const {
  if (!client_filter) return true;
  auto ip = net::IpAddr::parse(client_ip_text);
  if (!ip) return false;  // unknown clients stay on the default page
  return client_filter->contains(*ip);
}

// --- Subnet ---------------------------------------------------------------

std::optional<Subnet> Subnet::parse(const std::string& text) {
  std::string ip_part = text;
  int prefix = 32;
  if (auto slash = text.find('/'); slash != std::string::npos) {
    ip_part = text.substr(0, slash);
    const std::string len = text.substr(slash + 1);
    if (len.empty() || len.size() > 3) return std::nullopt;
    prefix = 0;
    for (char c : len) {
      if (c < '0' || c > '9') return std::nullopt;
      prefix = prefix * 10 + (c - '0');
    }
    if (prefix > 128) return std::nullopt;
  }
  auto base = net::IpAddr::parse(ip_part);
  if (!base) return std::nullopt;
  return Subnet{*base, prefix};
}

std::string Subnet::to_string() const {
  return base.to_string() + "/" + std::to_string(prefix_len);
}

// --- Strategy kinds -------------------------------------------------------

std::string to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::kPaper: return "paper";
    case StrategyKind::kRacing: return "racing";
    case StrategyKind::kHysteresis: return "hysteresis";
    case StrategyKind::kScoped: return "scoped";
  }
  return "paper";
}

std::optional<StrategyKind> strategy_kind_from_string(const std::string& s) {
  if (s == "paper") return StrategyKind::kPaper;
  if (s == "racing") return StrategyKind::kRacing;
  if (s == "hysteresis") return StrategyKind::kHysteresis;
  if (s == "scoped") return StrategyKind::kScoped;
  return std::nullopt;
}

// --- Policy JSON round-trip -----------------------------------------------

util::Json policy_to_json(const Policy& p) {
  util::JsonObject o;
  o["default_min_violations"] = p.default_min_violations;
  o["selection"] = p.selection == AlternativeSelection::kRoundRobin
                       ? "round_robin"
                       : "linear";
  if (p.client_filter) o["client_filter"] = p.client_filter->to_string();
  o["allow_reactivation"] = p.allow_reactivation;
  o["holdback_fraction"] = p.holdback_fraction;
  o["default_strategy"] = p.default_strategy;
  o["record_context"] = p.record_context;
  util::JsonArray strategies;
  for (const auto& s : p.strategies) {
    util::JsonObject so;
    so["name"] = s.name;
    so["kind"] = to_string(s.kind);
    switch (s.kind) {
      case StrategyKind::kRacing:
        so["min_samples"] = std::uint64_t(s.racing.min_samples);
        break;
      case StrategyKind::kHysteresis:
        so["cooldown_s"] = s.hysteresis.cooldown_s;
        so["keep_margin"] = s.hysteresis.keep_margin;
        break;
      case StrategyKind::kScoped: {
        util::JsonArray routes;
        for (const auto& r : s.routes) {
          util::JsonObject ro;
          ro["subnet"] = r.subnet.to_string();
          ro["strategy"] = r.strategy;
          routes.push_back(std::move(ro));
        }
        so["routes"] = std::move(routes);
        so["fallback"] = s.fallback;
        break;
      }
      case StrategyKind::kPaper:
        break;
    }
    strategies.push_back(std::move(so));
  }
  o["strategies"] = std::move(strategies);
  return util::Json(std::move(o));
}

Policy policy_from_json(const util::Json& j) {
  Policy p;
  if (const auto* v = j.find("default_min_violations")) {
    p.default_min_violations = int(v->as_int());
  }
  if (const auto* v = j.find("selection")) {
    p.selection = v->as_string() == "round_robin"
                      ? AlternativeSelection::kRoundRobin
                      : AlternativeSelection::kLinear;
  }
  if (const auto* v = j.find("client_filter")) {
    auto sub = Subnet::parse(v->as_string());
    if (!sub) throw util::JsonError("policy: bad client_filter subnet");
    p.client_filter = *sub;
  }
  if (const auto* v = j.find("allow_reactivation")) {
    p.allow_reactivation = v->as_bool();
  }
  if (const auto* v = j.find("holdback_fraction")) {
    p.holdback_fraction = v->as_number();
  }
  if (const auto* v = j.find("default_strategy")) {
    p.default_strategy = v->as_string();
  }
  if (const auto* v = j.find("record_context")) {
    p.record_context = v->as_bool();
  }
  if (const auto* v = j.find("strategies")) {
    for (const auto& sj : v->as_array()) {
      StrategyConfig s;
      s.name = sj.at("name").as_string();
      auto kind = strategy_kind_from_string(sj.at("kind").as_string());
      if (!kind) throw util::JsonError("policy: unknown strategy kind");
      s.kind = *kind;
      if (const auto* m = sj.find("min_samples")) {
        s.racing.min_samples = std::uint64_t(m->as_int());
      }
      if (const auto* c = sj.find("cooldown_s")) {
        s.hysteresis.cooldown_s = c->as_number();
      }
      if (const auto* m = sj.find("keep_margin")) {
        s.hysteresis.keep_margin = m->as_number();
      }
      if (const auto* r = sj.find("routes")) {
        for (const auto& rj : r->as_array()) {
          auto sub = Subnet::parse(rj.at("subnet").as_string());
          if (!sub) throw util::JsonError("policy: bad route subnet");
          s.routes.push_back(SubnetRoute{*sub, rj.at("strategy").as_string()});
        }
      }
      if (const auto* f = sj.find("fallback")) s.fallback = f->as_string();
      p.strategies.push_back(std::move(s));
    }
  }
  return p;
}

// --- Built-in strategies --------------------------------------------------

namespace {

// The seed alternative-selection flow, verbatim (oak_server.cc pre-engine):
// selector override wins, else linear/round-robin off next_alternative.
std::size_t seed_select_alternative(const Policy& policy, const Rule& r,
                                    UserProfile& user) {
  std::size_t alt_idx = 0;
  if (!r.alternatives.empty() && policy.alternative_selector) {
    alt_idx = std::min(
        policy.alternative_selector(user.client_ip, r.alternatives.size()),
        r.alternatives.size() - 1);
    user.next_alternative[r.id] = alt_idx + 1;
  } else if (!r.alternatives.empty()) {
    std::size_t& next = user.next_alternative[r.id];
    switch (policy.selection) {
      case AlternativeSelection::kLinear:
        alt_idx = std::min(next, r.alternatives.size() - 1);
        break;
      case AlternativeSelection::kRoundRobin:
        alt_idx = next % r.alternatives.size();
        break;
    }
    next = alt_idx + 1;
  }
  return alt_idx;
}

class PaperStrategy : public PolicyStrategy {
 public:
  using PolicyStrategy::PolicyStrategy;

  std::optional<ActivationChoice> on_rule_violation(PolicyEngine& engine,
                                                    const Rule& rule,
                                                    UserProfile& user,
                                                    double /*severity*/,
                                                    double /*now*/) const override {
    if (!count_violation(engine, rule, user)) return std::nullopt;
    return ActivationChoice{
        seed_select_alternative(engine.policy(), rule, user), -1};
  }
};

class RacingStrategy : public PolicyStrategy {
 public:
  using PolicyStrategy::PolicyStrategy;

  std::optional<ActivationChoice> on_rule_violation(PolicyEngine& engine,
                                                    const Rule& rule,
                                                    UserProfile& user,
                                                    double /*severity*/,
                                                    double /*now*/) const override {
    if (!count_violation(engine, rule, user)) return std::nullopt;
    // Racing needs two alternatives to race; degenerate rules fall back to
    // the seed selection.
    if (rule.alternatives.size() < 2) {
      return ActivationChoice{
          seed_select_alternative(engine.policy(), rule, user), -1};
    }
    if (auto rs = engine.race_state(rule.id); rs && rs->decided) {
      // Race over: everyone gets the winner from here on.
      const std::size_t alt = std::size_t(rs->winner);
      user.next_alternative[rule.id] = alt + 1;
      return ActivationChoice{alt, -1};
    }
    // Mid-race: the user's stable cohort picks the raced alternative, and
    // the profile grows an accumulator so post-activation PLT is attributed
    // to the cohort (and survives snapshots — the engine aggregate is
    // rebuilt by folding these).
    const int cohort = PolicyEngine::cohort_of(user.user_id, rule.id);
    const std::size_t alt = std::size_t(cohort);
    user.next_alternative[rule.id] = alt + 1;
    user.race[rule.id].cohort = cohort;
    return ActivationChoice{alt, cohort};
  }
};

class HysteresisStrategy : public PolicyStrategy {
 public:
  using PolicyStrategy::PolicyStrategy;

  std::optional<ActivationChoice> on_rule_violation(PolicyEngine& engine,
                                                    const Rule& rule,
                                                    UserProfile& user,
                                                    double /*severity*/,
                                                    double now) const override {
    if (auto it = user.cooldown_until.find(rule.id);
        it != user.cooldown_until.end()) {
      if (now < it->second) {
        // Inside the cooldown window: the violation neither activates nor
        // counts toward min_violations.
        engine.note_cooldown_suppressed();
        return std::nullopt;
      }
      user.cooldown_until.erase(it);
    }
    if (!count_violation(engine, rule, user)) return std::nullopt;
    return ActivationChoice{
        seed_select_alternative(engine.policy(), rule, user), -1};
  }

  HistoryAction on_alternative_violation(PolicyEngine& engine,
                                         const Rule& rule, UserProfile& user,
                                         const ActiveRule& active,
                                         double alt_distance,
                                         HistoryMode history) const override {
    if (history == HistoryMode::kMinDistance &&
        alt_distance < cfg_.hysteresis.keep_margin * active.violation_distance) {
      // Keeps the paper would not have made (distance in
      // [violation_distance, margin x violation_distance)) are the
      // hysteresis at work; count them.
      if (alt_distance >= active.violation_distance) {
        engine.note_hysteresis_keep();
      }
      return HistoryAction::kKeep;
    }
    return PolicyStrategy::on_alternative_violation(engine, rule, user, active,
                                                    alt_distance, history);
  }

  void on_deactivated(PolicyEngine& engine, const Rule& rule,
                      UserProfile& user, double now) const override {
    PolicyStrategy::on_deactivated(engine, rule, user, now);
    if (cfg_.hysteresis.cooldown_s > 0.0) {
      user.cooldown_until[rule.id] = now + cfg_.hysteresis.cooldown_s;
    }
  }
};

// Scoped strategies are pure routers: PolicyEngine::strategy_for resolves
// them to their route target before any decision method is called, so these
// entry points are unreachable by construction.
class ScopedStrategy : public PolicyStrategy {
 public:
  using PolicyStrategy::PolicyStrategy;

  std::optional<ActivationChoice> on_rule_violation(PolicyEngine&, const Rule&,
                                                    UserProfile&, double,
                                                    double) const override {
    throw std::logic_error("scoped strategy used without route resolution");
  }
};

std::unique_ptr<PolicyStrategy> make_strategy(StrategyConfig cfg) {
  switch (cfg.kind) {
    case StrategyKind::kPaper:
      return std::make_unique<PaperStrategy>(std::move(cfg));
    case StrategyKind::kRacing:
      return std::make_unique<RacingStrategy>(std::move(cfg));
    case StrategyKind::kHysteresis:
      return std::make_unique<HysteresisStrategy>(std::move(cfg));
    case StrategyKind::kScoped:
      return std::make_unique<ScopedStrategy>(std::move(cfg));
  }
  throw std::invalid_argument("unknown strategy kind");
}

}  // namespace

// --- PolicyStrategy shared behavior ---------------------------------------

std::optional<int> PolicyStrategy::count_violation(PolicyEngine& engine,
                                                   const Rule& rule,
                                                   UserProfile& user) const {
  // Seed threshold flow, verbatim: count toward the larger of the rule's
  // own min_violations and the global default, reset the counter on firing.
  const int required = std::max(rule.min_violations,
                                engine.policy().default_min_violations);
  const int seen = ++user.pending_violations[rule.id];
  if (seen < required) return std::nullopt;
  user.pending_violations.erase(rule.id);
  return required;
}

HistoryAction PolicyStrategy::on_alternative_violation(
    PolicyEngine& /*engine*/, const Rule& rule, UserProfile& /*user*/,
    const ActiveRule& active, double alt_distance, HistoryMode history) const {
  // History rule (§4.2.3): keep whichever side lies closer to the median.
  if (history == HistoryMode::kMinDistance &&
      alt_distance < active.violation_distance) {
    return HistoryAction::kKeep;
  }
  const std::size_t idx =
      std::min(active.alternative_index, rule.alternatives.size() - 1);
  return idx + 1 < rule.alternatives.size() ? HistoryAction::kAdvance
                                            : HistoryAction::kDeactivate;
}

void PolicyStrategy::on_deactivated(PolicyEngine& engine, const Rule& rule,
                                    UserProfile& user, double /*now*/) const {
  if (!engine.policy().allow_reactivation) user.banned.insert(rule.id);
}

// --- PolicyEngine ---------------------------------------------------------

PolicyEngine::PolicyEngine(const Policy& policy, obs::MetricsRegistry* metrics)
    : policy_(&policy) {
  // Built-ins first; operator entries append or shadow by name.
  for (const char* name : {"paper", "racing", "hysteresis"}) {
    StrategyConfig cfg;
    cfg.name = name;
    cfg.kind = *strategy_kind_from_string(name);
    strategies_.push_back(make_strategy(std::move(cfg)));
  }
  const std::size_t builtin_count = strategies_.size();
  std::vector<std::string> seen;
  for (const auto& cfg : policy_->strategies) {
    if (cfg.name.empty()) {
      throw std::invalid_argument("policy strategy with empty name");
    }
    if (std::find(seen.begin(), seen.end(), cfg.name) != seen.end()) {
      throw std::invalid_argument("duplicate policy strategy '" + cfg.name +
                                  "'");
    }
    seen.push_back(cfg.name);
    auto shadowed =
        std::find_if(strategies_.begin(), strategies_.end(),
                     [&](const auto& s) { return s->name() == cfg.name; });
    if (shadowed != strategies_.end() &&
        std::size_t(shadowed - strategies_.begin()) < builtin_count) {
      *shadowed = make_strategy(cfg);  // operators may shadow a built-in
    } else {
      strategies_.push_back(make_strategy(cfg));
    }
  }
  // Route and fallback targets must exist and must not themselves be scoped
  // (routing is single-hop by design — see DESIGN.md §15).
  auto check_target = [&](const std::string& name, const char* what) {
    const PolicyStrategy* t = find_strategy(name);
    if (!t) {
      throw std::invalid_argument(std::string("scoped ") + what + " '" + name +
                                  "' names no strategy");
    }
    if (t->kind() == StrategyKind::kScoped) {
      throw std::invalid_argument(std::string("scoped ") + what + " '" + name +
                                  "' may not be scoped");
    }
  };
  for (const auto& s : strategies_) {
    if (s->kind() != StrategyKind::kScoped) continue;
    for (const auto& route : s->config().routes) {
      check_target(route.strategy, "route");
    }
    if (!s->config().fallback.empty()) {
      check_target(s->config().fallback, "fallback");
    }
  }
  if (!policy_->default_strategy.empty() &&
      !find_strategy(policy_->default_strategy)) {
    throw std::invalid_argument("default_strategy '" +
                                policy_->default_strategy +
                                "' names no strategy");
  }
  if (metrics) {
    obs_.decisions = &metrics->counter("oak_policy_decisions_total");
    obs_.activations = &metrics->counter("oak_policy_activations_total");
    obs_.cooldown_suppressed =
        &metrics->counter("oak_policy_cooldown_suppressed_total");
    obs_.hysteresis_keeps =
        &metrics->counter("oak_policy_hysteresis_keeps_total");
    obs_.racing_activations =
        &metrics->counter("oak_policy_racing_activations_total");
    obs_.racing_winners = &metrics->counter("oak_policy_racing_winners_total");
    obs_.winner_activations =
        &metrics->counter("oak_policy_winner_activations_total");
    obs_.scoped_routed = &metrics->counter("oak_policy_scoped_routed_total");
  }
}

PolicyEngine::~PolicyEngine() = default;

const PolicyStrategy* PolicyEngine::find_strategy(
    const std::string& name) const {
  for (const auto& s : strategies_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

bool PolicyEngine::has_strategy(const std::string& name) const {
  return find_strategy(name) != nullptr;
}

const PolicyStrategy& PolicyEngine::strategy_for(
    const Rule& rule, const std::string& client_ip) const {
  const std::string& name = !rule.policy.empty() ? rule.policy
                            : !policy_->default_strategy.empty()
                                ? policy_->default_strategy
                                : std::string();
  const PolicyStrategy* s =
      name.empty() ? strategies_[0].get() : find_strategy(name);
  // add_rule / the constructor validated every reachable name.
  if (!s) s = strategies_[0].get();
  if (s->kind() != StrategyKind::kScoped) return *s;

  // Single-hop routing: first matching subnet wins; fallback (default:
  // "paper") catches everyone else, including unparseable client IPs.
  auto ip = net::IpAddr::parse(client_ip);
  if (ip) {
    for (const auto& route : s->config().routes) {
      if (route.subnet.contains(*ip)) {
        if (obs_.scoped_routed != nullptr) obs_.scoped_routed->inc();
        return *find_strategy(route.strategy);
      }
    }
  }
  const std::string& fb = s->config().fallback;
  return fb.empty() ? *strategies_[0] : *find_strategy(fb);
}

std::optional<ActivationChoice> PolicyEngine::on_rule_violation(
    const Rule& rule, UserProfile& user, double severity, double now) {
  if (obs_.decisions != nullptr) obs_.decisions->inc();
  const PolicyStrategy& s = strategy_for(rule, user.client_ip);
  auto choice = s.on_rule_violation(*this, rule, user, severity, now);
  if (choice) {
    if (obs_.activations != nullptr) obs_.activations->inc();
    if (choice->cohort >= 0) {
      if (obs_.racing_activations != nullptr) obs_.racing_activations->inc();
    } else if (s.kind() == StrategyKind::kRacing &&
               rule.alternatives.size() >= 2) {
      // A racing rule activating outside a cohort means the race is decided
      // and the winner is being replayed.
      if (obs_.winner_activations != nullptr) obs_.winner_activations->inc();
    }
  }
  return choice;
}

HistoryAction PolicyEngine::on_alternative_violation(const Rule& rule,
                                                     UserProfile& user,
                                                     const ActiveRule& active,
                                                     double alt_distance,
                                                     HistoryMode history) {
  if (obs_.decisions != nullptr) obs_.decisions->inc();
  return strategy_for(rule, user.client_ip)
      .on_alternative_violation(*this, rule, user, active, alt_distance,
                                history);
}

void PolicyEngine::on_deactivated(const Rule& rule, UserProfile& user,
                                  double now) {
  strategy_for(rule, user.client_ip).on_deactivated(*this, rule, user, now);
}

void PolicyEngine::observe_report(
    UserProfile& user, double plt_s, double now,
    const std::function<const Rule*(int)>& rule_of,
    std::vector<Decision>* events) {
  if (user.race.empty()) return;  // fast path: nobody racing
  for (auto& [rule_id, stat] : user.race) {
    if (!user.active.count(rule_id)) continue;  // race sample needs the
                                                // alternative live
    const Rule* r = rule_of(rule_id);
    if (!r) continue;
    RaceState& rs = race_[rule_id];
    if (rs.decided) continue;  // race over: aggregates freeze so the winner
                               // recomputes identically after import
    stat.plt_sum += plt_s;
    ++stat.count;
    rs.plt_sum[stat.cohort] += plt_s;
    ++rs.count[stat.cohort];
    const std::uint64_t need = race_min_samples(*r);
    if (rs.count[0] >= need && rs.count[1] >= need) {
      rs.decided = true;
      rs.winner = rs.mean(0) <= rs.mean(1) ? 0 : 1;  // ties go to cohort 0
      if (events != nullptr) {
        events->push_back(Decision{now, user.user_id, rule_id,
                                   DecisionType::kRaceWinner, "",
                                   rs.mean(rs.winner),
                                   std::size_t(rs.winner)});
      }
      if (obs_.racing_winners != nullptr) obs_.racing_winners->inc();
    }
  }
}

std::uint64_t PolicyEngine::race_min_samples(const Rule& rule) const {
  // Resolved rule-wide (not per client): a race has one threshold. A scoped
  // strategy contributes its fallback's options when that is racing.
  const std::string& name = !rule.policy.empty() ? rule.policy
                            : !policy_->default_strategy.empty()
                                ? policy_->default_strategy
                                : std::string("paper");
  const PolicyStrategy* s = find_strategy(name);
  if (s && s->kind() == StrategyKind::kScoped &&
      !s->config().fallback.empty()) {
    s = find_strategy(s->config().fallback);
  }
  if (s && s->kind() == StrategyKind::kRacing) {
    return s->config().racing.min_samples;
  }
  return RacingOptions{}.min_samples;
}

void PolicyEngine::reset_race_state() { race_.clear(); }

void PolicyEngine::fold_profile(const UserProfile& user) {
  for (const auto& [rule_id, stat] : user.race) {
    RaceState& rs = race_[rule_id];
    rs.plt_sum[stat.cohort] += stat.plt_sum;
    rs.count[stat.cohort] += stat.count;
  }
}

void PolicyEngine::finalize_races(
    const std::function<const Rule*(int)>& rule_of) {
  for (auto& [rule_id, rs] : race_) {
    const Rule* r = rule_of(rule_id);
    if (!r) continue;
    const std::uint64_t need = race_min_samples(*r);
    if (rs.count[0] >= need && rs.count[1] >= need) {
      rs.decided = true;
      rs.winner = rs.mean(0) <= rs.mean(1) ? 0 : 1;
    }
  }
}

void PolicyEngine::erase_rule(int rule_id) { race_.erase(rule_id); }

std::optional<RaceState> PolicyEngine::race_state(int rule_id) const {
  const RaceState* rs = race_.at_ptr(rule_id);
  if (!rs) return std::nullopt;
  return *rs;
}

int PolicyEngine::cohort_of(const std::string& user_id, int rule_id) {
  // Salted separately from the holdback bucket (different hash input), so
  // cohort membership and holdback are independent splits of the population.
  //
  // FNV-1a multiplies by an odd prime, so its low bit is just the XOR of the
  // input bytes' low bits — taking `hash & 1` would put e.g. "user0" and
  // "user1" in opposite cohorts for every rule. Fold the high half in first
  // so the cohort bit depends on the whole hash.
  std::uint64_t h =
      util::stable_hash(user_id + "#race" + std::to_string(rule_id));
  h ^= h >> 32;
  h *= 0x9e3779b97f4a7c15ull;
  return int(h >> 63);
}

void PolicyEngine::note_cooldown_suppressed() {
  if (obs_.cooldown_suppressed != nullptr) obs_.cooldown_suppressed->inc();
}

void PolicyEngine::note_hysteresis_keep() {
  if (obs_.hysteresis_keeps != nullptr) obs_.hysteresis_keeps->inc();
}

}  // namespace oak::core
